// Tests for the synthesis-option axes added on top of the paper's flow:
// the extra final-adder architectures (Brent-Kung, carry-select), radix-4
// Booth partial products, and the netlist simplification pass.

#include <gtest/gtest.h>

#include "dpmerge/designs/testcases.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/netlist/sim.h"
#include "dpmerge/netlist/simplify.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/synth/verify.h"

namespace dpmerge::synth {
namespace {

using dfg::Builder;
using dfg::Graph;
using dfg::Operand;

// ---- extra CPA architectures (reuses the fixture pattern of cpa_test) ----

struct AdderFixture {
  netlist::Netlist net;
  AdderFixture(int w, AdderArch arch, bool cin) {
    netlist::Signal a, b;
    for (int i = 0; i < w; ++i) a.bits.push_back(net.new_net());
    for (int i = 0; i < w; ++i) b.bits.push_back(net.new_net());
    net.add_input("a", a);
    net.add_input("b", b);
    netlist::Signal ci;
    if (cin) {
      ci.bits.push_back(net.new_net());
      net.add_input("ci", ci);
    }
    net.add_output("s", cpa(net, arch, a, b, cin ? ci.bit(0) : net.const0()));
  }
  std::uint64_t run(std::uint64_t x, std::uint64_t y, int w, int ci = -1) {
    netlist::Simulator sim(net);
    std::map<std::string, BitVector> in{{"a", BitVector::from_uint(w, x)},
                                        {"b", BitVector::from_uint(w, y)}};
    if (ci >= 0) in["ci"] = BitVector::from_uint(1, static_cast<unsigned>(ci));
    return sim.run(in).at("s").to_uint64();
  }
};

class NewCpaExhaustive
    : public ::testing::TestWithParam<std::tuple<int, AdderArch>> {};

TEST_P(NewCpaExhaustive, AllInputPairs) {
  const auto [w, arch] = GetParam();
  AdderFixture f(w, arch, true);
  const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
  for (std::uint64_t x = 0; x <= mask; ++x) {
    for (std::uint64_t y = 0; y <= mask; ++y) {
      for (int ci = 0; ci <= 1; ++ci) {
        ASSERT_EQ(f.run(x, y, w, ci),
                  (x + y + static_cast<unsigned>(ci)) & mask)
            << to_string(arch) << " w=" << w;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, NewCpaExhaustive,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(AdderArch::BrentKung,
                                         AdderArch::CarrySelect)));

class NewCpaRandomWide
    : public ::testing::TestWithParam<std::tuple<int, AdderArch>> {};

TEST_P(NewCpaRandomWide, MatchesNative) {
  const auto [w, arch] = GetParam();
  AdderFixture f(w, arch, false);
  Rng rng(static_cast<std::uint64_t>(w) * 31 + static_cast<int>(arch));
  const std::uint64_t mask =
      w >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << w) - 1;
  for (int t = 0; t < 60; ++t) {
    const std::uint64_t x = rng.next_u64() & mask;
    const std::uint64_t y = rng.next_u64() & mask;
    ASSERT_EQ(f.run(x, y, w), (x + y) & mask) << to_string(arch);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, NewCpaRandomWide,
    ::testing::Combine(::testing::Values(7, 8, 12, 16, 24, 32, 33, 64),
                       ::testing::Values(AdderArch::BrentKung,
                                         AdderArch::CarrySelect)));

TEST(NewCpa, ArchitectureTradeoffs) {
  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  AdderFixture rip(32, AdderArch::Ripple, false);
  AdderFixture ks(32, AdderArch::KoggeStone, false);
  AdderFixture bk(32, AdderArch::BrentKung, false);
  AdderFixture cs(32, AdderArch::CarrySelect, false);
  const double d_rip = sta.analyze(rip.net).longest_path_ns;
  const double d_ks = sta.analyze(ks.net).longest_path_ns;
  const double d_bk = sta.analyze(bk.net).longest_path_ns;
  const double d_cs = sta.analyze(cs.net).longest_path_ns;
  // Both prefix adders beat ripple comfortably; carry-select in between.
  EXPECT_LT(d_ks, 0.5 * d_rip);
  EXPECT_LT(d_bk, 0.6 * d_rip);
  EXPECT_LT(d_cs, d_rip);
  // Brent-Kung is leaner than Kogge-Stone.
  EXPECT_LT(sta.area(bk.net), sta.area(ks.net));
}

// ---- Booth partial products ----

class BoothMul
    : public ::testing::TestWithParam<std::tuple<Sign, Sign, int, int>> {};

TEST_P(BoothMul, ExhaustiveAgainstEvaluator) {
  const auto [sa, sb, wa, wout] = GetParam();
  Graph g;
  Builder b(g);
  const auto a = b.input("a", wa, sa);
  const auto c = b.input("c", 4, sb);
  const auto m = b.mul(wout, Operand{a, wout, sa}, Operand{c, wout, sb});
  b.output("r", wout, Operand{m});
  SynthOptions opt;
  opt.booth_multipliers = true;
  const auto fr = run_flow(g, Flow::NewMerge, opt);
  dfg::Evaluator ev(g);
  netlist::Simulator sim(fr.net);
  for (std::uint64_t x = 0; x < (1u << wa); ++x) {
    for (std::uint64_t y = 0; y < (1u << 4); ++y) {
      const auto expect = ev.run_outputs(
          {BitVector::from_uint(wa, x), BitVector::from_uint(4, y)})[0];
      const auto got = sim.run({{"a", BitVector::from_uint(wa, x)},
                                {"c", BitVector::from_uint(4, y)}});
      ASSERT_EQ(got.at("r"), expect) << x << "*" << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SignsWidths, BoothMul,
    ::testing::Combine(::testing::Values(Sign::Unsigned, Sign::Signed),
                       ::testing::Values(Sign::Unsigned, Sign::Signed),
                       ::testing::Values(3, 5),
                       ::testing::Values(7, 9, 12)));

TEST(Booth, ReducesGatesOnWideMultipliers) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 16);
  const auto c = b.input("c", 16);
  const auto m = b.mul(32, Operand{a, 32, Sign::Signed},
                       Operand{c, 32, Sign::Signed});
  b.output("r", 32, Operand{m});
  SynthOptions plain;
  SynthOptions booth;
  booth.booth_multipliers = true;
  const auto f1 = run_flow(g, Flow::NewMerge, plain);
  const auto f2 = run_flow(g, Flow::NewMerge, booth);
  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  // Roughly half the rows: measurably fewer gates and less area. Raw delay
  // is *worse* before optimisation in this library — the recode nets
  // (one/two/neg per digit) fan out across the whole row and dominate the
  // unbuffered linear delay model; gate sizing/buffering recovers it.
  EXPECT_LT(f2.net.gate_count(), f1.net.gate_count());
  EXPECT_LT(sta.area(f2.net), sta.area(f1.net));
  Rng rng(9);
  std::string why;
  EXPECT_TRUE(verify_netlist(f2.net, g, 40, rng, &why)) << why;
}

TEST(Booth, AllTestcasesStillCorrect) {
  SynthOptions opt;
  opt.booth_multipliers = true;
  for (const auto& tc : designs::all_testcases()) {
    const auto fr = run_flow(tc.graph, Flow::NewMerge, opt);
    Rng rng(19);
    std::string why;
    EXPECT_TRUE(verify_netlist(fr.net, tc.graph, 24, rng, &why))
        << tc.name << ": " << why;
  }
}

class BoothRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoothRandom, NegatedAndShiftedProducts) {
  Rng rng(GetParam());
  for (int t = 0; t < 4; ++t) {
    dfg::RandomGraphOptions ropt;
    ropt.num_operators = 12;
    ropt.mul_fraction = 0.4;
    ropt.neg_fraction = 0.15;
    ropt.shl_fraction = 0.15;
    const Graph g = dfg::random_graph(rng, ropt);
    SynthOptions opt;
    opt.booth_multipliers = true;
    for (Flow f : {Flow::NoMerge, Flow::NewMerge}) {
      const auto fr = run_flow(g, f, opt);
      Rng vr(GetParam() * 7 + t);
      std::string why;
      ASSERT_TRUE(verify_netlist(fr.net, g, 20, vr, &why))
          << std::string(to_string(f)) << ": " << why;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoothRandom,
                         ::testing::Values(701, 702, 703, 704, 705, 706));

// ---- netlist simplify ----

TEST(Simplify, RemovesDuplicateGates) {
  netlist::Netlist n;
  netlist::Signal a{{n.new_net()}}, b{{n.new_net()}};
  n.add_input("a", a);
  n.add_input("b", b);
  const auto x1 = n.add_gate(netlist::CellType::XOR2, {a.bit(0), b.bit(0)});
  const auto x2 = n.add_gate(netlist::CellType::XOR2, {b.bit(0), a.bit(0)});
  n.add_output("y", netlist::Signal{{n.and2(x1, x2)}});
  netlist::SimplifyStats st;
  const auto s = netlist::simplify(n, &st);
  // xor(a,b) & xor(b,a) == xor(a,b): CSE + and2(x,x) fold -> 1 gate.
  EXPECT_EQ(s.gate_count(), 1);
  EXPECT_LT(st.gates_after, st.gates_before);
}

TEST(Simplify, CollapsesDoubleInverters) {
  netlist::Netlist n;
  netlist::Signal a{{n.new_net()}};
  n.add_input("a", a);
  const auto i1 = n.add_gate(netlist::CellType::INV, {a.bit(0)});
  const auto i2 = n.add_gate(netlist::CellType::INV, {i1});
  n.add_output("y", netlist::Signal{{i2}});
  const auto s = netlist::simplify(n);
  EXPECT_EQ(s.gate_count(), 0);
  EXPECT_EQ(s.outputs()[0].signal.bit(0), s.inputs()[0].signal.bit(0));
}

TEST(Simplify, SweepsDeadLogic) {
  netlist::Netlist n;
  netlist::Signal a{{n.new_net()}}, b{{n.new_net()}};
  n.add_input("a", a);
  n.add_input("b", b);
  n.add_gate(netlist::CellType::AND2, {a.bit(0), b.bit(0)});  // unobserved
  n.add_output("y", netlist::Signal{{n.inv(a.bit(0))}});
  const auto s = netlist::simplify(n);
  EXPECT_EQ(s.gate_count(), 1);
}

class SimplifyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplifyProperty, PreservesFunctionNeverGrows) {
  Rng rng(GetParam());
  for (int t = 0; t < 3; ++t) {
    const Graph g = dfg::random_graph(rng);
    for (Flow f : {Flow::NoMerge, Flow::NewMerge}) {
      auto fr = run_flow(g, f);
      netlist::SimplifyStats st;
      const auto s = netlist::simplify(fr.net, &st);
      EXPECT_LE(s.gate_count(), fr.net.gate_count());
      ASSERT_TRUE(s.validate().empty());
      Rng vr(GetParam() * 13 + t);
      std::string why;
      ASSERT_TRUE(verify_netlist(s, g, 20, vr, &why)) << why;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyProperty,
                         ::testing::Values(801, 802, 803, 804, 805, 806));

TEST(Simplify, HelpsSharedOperandClusters) {
  // Two clusters sharing operand cones leave duplicated XOR/AND pairs that
  // CSE picks up on real designs.
  const auto fr = run_flow(designs::make_d3(), Flow::NewMerge);
  netlist::SimplifyStats st;
  netlist::simplify(fr.net, &st);
  EXPECT_LE(st.gates_after, st.gates_before);
}

}  // namespace
}  // namespace dpmerge::synth
