#include "dpmerge/analysis/info_content.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "dpmerge/designs/figures.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/dfg/random_graph.h"

namespace dpmerge::analysis {
namespace {

using dfg::Builder;
using dfg::Graph;
using dfg::Operand;

constexpr Sign U = Sign::Unsigned;
constexpr Sign S = Sign::Signed;

TEST(InfoContentAlgebra, AddSameSign) {
  // Lemma 5.4: <max{m1, m2} + 1, t>.
  EXPECT_EQ(ic_add({4, U}, {6, U}), (InfoContent{7, U}));
  EXPECT_EQ(ic_add({5, S}, {5, S}), (InfoContent{6, S}));
}

TEST(InfoContentAlgebra, AddMixedSignUsesSoundRule) {
  // DESIGN.md §2: <2,s> + <2,u> can reach 1 + 3 = 4, which needs <4,s>; the
  // paper's literal <3,s> would be unsound.
  EXPECT_EQ(ic_add({2, S}, {2, U}), (InfoContent{4, S}));
  EXPECT_EQ(ic_add({2, U}, {2, S}), (InfoContent{4, S}));
  // When the signed side dominates, no penalty beyond max+1.
  EXPECT_EQ(ic_add({8, S}, {2, U}), (InfoContent{9, S}));
}

TEST(InfoContentAlgebra, AddZeroIsIdentity) {
  EXPECT_EQ(ic_add({0, U}, {5, S}), (InfoContent{5, S}));
  EXPECT_EQ(ic_add({7, U}, {0, U}), (InfoContent{7, U}));
}

TEST(InfoContentAlgebra, SubIsSigned) {
  EXPECT_EQ(ic_sub({4, U}, {4, U}), (InfoContent{5, S}));
  EXPECT_EQ(ic_sub({4, S}, {6, S}), (InfoContent{7, S}));
  EXPECT_EQ(ic_sub({4, U}, {4, S}), (InfoContent{6, S}));
  EXPECT_EQ(ic_sub({6, S}, {2, U}), (InfoContent{7, S}));
}

TEST(InfoContentAlgebra, Mul) {
  EXPECT_EQ(ic_mul({4, U}, {6, U}), (InfoContent{10, U}));
  EXPECT_EQ(ic_mul({4, S}, {6, S}), (InfoContent{10, S}));
  EXPECT_EQ(ic_mul({4, U}, {6, S}), (InfoContent{10, S}));
  EXPECT_EQ(ic_mul({0, U}, {6, S}), (InfoContent{0, U}));
}

TEST(InfoContentAlgebra, Neg) {
  EXPECT_EQ(ic_neg({4, U}), (InfoContent{5, S}));
  EXPECT_EQ(ic_neg({4, S}), (InfoContent{5, S}));
  EXPECT_EQ(ic_neg({0, U}), (InfoContent{0, U}));
}

TEST(InfoContentAlgebra, MeetAndClip) {
  EXPECT_EQ(ic_meet({4, U}, {6, S}), (InfoContent{4, U}));
  EXPECT_EQ(ic_meet({7, S}, {3, U}), (InfoContent{3, U}));
  EXPECT_EQ(ic_clip({9, S}, 6), (InfoContent{6, S}));
  EXPECT_EQ(ic_clip({4, S}, 6), (InfoContent{4, S}));
}

// Exhaustive soundness of the tuple algebra: for every (i1,t1,i2,t2) with
// widths <= 5, every representable operand pair stays within the claimed
// result tuple.
TEST(InfoContentAlgebra, ExhaustiveSoundnessSmall) {
  auto lo = [](InfoContent c) -> std::int64_t {
    return c.sign == U ? 0 : -(std::int64_t{1} << (c.width - 1));
  };
  auto hi = [](InfoContent c) -> std::int64_t {
    return c.sign == U ? (std::int64_t{1} << c.width) - 1
                       : (std::int64_t{1} << (c.width - 1)) - 1;
  };
  auto contains = [&](InfoContent c, std::int64_t v) {
    if (c.width == 0) return v == 0;
    return v >= lo(c) && v <= hi(c);
  };
  for (int i1 = 1; i1 <= 5; ++i1) {
    for (int i2 = 1; i2 <= 5; ++i2) {
      for (Sign t1 : {U, S}) {
        for (Sign t2 : {U, S}) {
          const InfoContent a{i1, t1}, b{i2, t2};
          for (std::int64_t x = lo(a); x <= hi(a); ++x) {
            for (std::int64_t y = lo(b); y <= hi(b); ++y) {
              EXPECT_TRUE(contains(ic_add(a, b), x + y))
                  << a.to_string() << "+" << b.to_string() << " " << x << "," << y;
              EXPECT_TRUE(contains(ic_sub(a, b), x - y))
                  << a.to_string() << "-" << b.to_string() << " " << x << "," << y;
              EXPECT_TRUE(contains(ic_mul(a, b), x * y))
                  << a.to_string() << "*" << b.to_string() << " " << x << "," << y;
            }
            EXPECT_TRUE(contains(ic_neg(a), -x));
          }
        }
      }
    }
  }
}

TEST(IcResize, TruncationKeepsClaim) {
  EXPECT_EQ(ic_resize({3, S}, 8, 5, U), (InfoContent{3, S}));
  EXPECT_EQ(ic_resize({6, S}, 8, 4, S).width, 4);
}

TEST(IcResize, VacuousClaimGetsEdgeSign) {
  EXPECT_EQ(ic_resize({8, U}, 8, 12, S), (InfoContent{8, S}));
  EXPECT_EQ(ic_resize({8, S}, 8, 12, U), (InfoContent{8, U}));
}

TEST(IcResize, SameSignExtension) {
  EXPECT_EQ(ic_resize({3, S}, 8, 12, S), (InfoContent{3, S}));
  EXPECT_EQ(ic_resize({3, U}, 8, 12, U), (InfoContent{3, U}));
}

TEST(IcResize, InterestingCaseUnsignedAcrossSignedEdge) {
  // Section 5's "interesting case": strict unsigned content crossing a
  // signed extension stays unsigned.
  EXPECT_EQ(ic_resize({3, U}, 8, 12, S), (InfoContent{3, U}));
}

TEST(IcResize, SignedContentZeroPadded) {
  // Signed content zero-padded loses structure above the original carrier.
  EXPECT_EQ(ic_resize({3, S}, 8, 12, U), (InfoContent{8, U}));
}

TEST(InfoPropagation, Figure3Walkthrough) {
  // Section 5's narrative: N1/N2 carry 4-bit sums, N3 a 5-bit sum, and the
  // operand entering N4 via e7 is a sign-extension of a 5-bit sum.
  const Graph g = designs::figure3_g5();
  const auto f = designs::figure_nodes(g);
  const auto ia = compute_info_content(g);
  EXPECT_EQ(ia.out(f.n1), (InfoContent{4, S}));
  EXPECT_EQ(ia.out(f.n2), (InfoContent{4, S}));
  EXPECT_EQ(ia.out(f.n3), (InfoContent{5, S}));
  // e7 is n4's first in-edge.
  const auto e7 = g.node(f.n4).in[0];
  EXPECT_EQ(ia.operand(e7), (InfoContent{5, S}));
  EXPECT_EQ(ia.intr(f.n4), (InfoContent{10, S}));
}

TEST(InfoPropagation, Figure1TruncationClipsClaim) {
  const Graph g = designs::figure1_g2();
  const auto f = designs::figure_nodes(g);
  const auto ia = compute_info_content(g);
  // The operands are delivered at w(N1) = 7, so the intrinsic sum claim is
  // 8 bits (the paper's "9-bit sum" counts the pre-truncation 8-bit
  // operands); either way it exceeds w(N1) = 7 — information is lost.
  EXPECT_EQ(ia.intr(f.n1), (InfoContent{8, S}));
  EXPECT_GT(ia.intr(f.n1).width, g.node(f.n1).width);
  EXPECT_EQ(ia.out(f.n1), (InfoContent{7, S}));  // clipped by w(N1)=7
}

TEST(InfoPropagation, RefinementsTightenIntrinsic) {
  const Graph g = designs::figure1_g2();
  const auto f = designs::figure_nodes(g);
  InfoRefinements refs(static_cast<std::size_t>(g.node_count()));
  refs[static_cast<std::size_t>(f.n1.value)] = InfoContent{6, S};
  const auto ia = compute_info_content(g, refs);
  EXPECT_EQ(ia.intr(f.n1), (InfoContent{6, S}));
  EXPECT_EQ(ia.out(f.n1), (InfoContent{6, S}));
}

TEST(InfoPropagation, ConstClaimIsMinimal) {
  Graph g;
  Builder b(g);
  const auto k = b.constant(16, 5);
  const auto a = b.input("a", 16);
  const auto s = b.add(17, Operand{a, 17, S}, Operand{k, 17, S});
  b.output("r", 17, Operand{s});
  const auto ia = compute_info_content(g);
  EXPECT_EQ(ia.out(k), (InfoContent{3, U}));

  Graph g2;
  Builder b2(g2);
  const auto kn = b2.constant(16, -3);
  b2.output("r", 16, Operand{kn});
  const auto ia2 = compute_info_content(g2);
  EXPECT_EQ(ia2.out(kn), (InfoContent{3, S}));
}

// Soundness property (the heart of Definition 5.1): on random DFGs and
// random stimuli, every node result, carried edge value and delivered
// operand is a t-extension of its claimed i least significant bits.
class IcSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IcSoundness, ClaimsHoldOnRandomStimuli) {
  Rng rng(GetParam());
  const Graph g = dfg::random_graph(rng);
  const auto ia = compute_info_content(g);
  dfg::Evaluator ev(g);
  for (int trial = 0; trial < 50; ++trial) {
    const auto results = ev.run(ev.random_inputs(rng));
    for (const auto& n : g.nodes()) {
      const auto claim = ia.out(n.id);
      const auto& v = results[static_cast<std::size_t>(n.id.value)];
      ASSERT_LE(claim.width, v.width());
      EXPECT_TRUE(v.is_extension_of_low(claim.width, claim.sign))
          << "node " << n.id.value << " claim " << claim.to_string()
          << " value " << v.to_string();
    }
    for (const auto& e : g.edges()) {
      const auto carried = ev.carried_on_edge(e.id, results);
      const auto cl_e = ia.edge(e.id);
      EXPECT_TRUE(carried.is_extension_of_low(cl_e.width, cl_e.sign))
          << "edge " << e.id.value << " claim " << cl_e.to_string()
          << " carried " << carried.to_string();
      const auto op = ev.operand_via_edge(e.id, results);
      const auto cl_o = ia.operand(e.id);
      EXPECT_TRUE(op.is_extension_of_low(cl_o.width, cl_o.sign))
          << "edge " << e.id.value << " operand claim " << cl_o.to_string()
          << " operand " << op.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcSoundness,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18, 19,
                                           20, 21, 22));

}  // namespace
}  // namespace dpmerge::analysis
