#include "dpmerge/dfg/io.h"

#include <gtest/gtest.h>

#include "dpmerge/designs/figures.h"
#include "dpmerge/designs/testcases.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/dfg/random_graph.h"

namespace dpmerge::dfg {
namespace {

TEST(Io, ParseMinimalGraph) {
  const std::string text = R"(dfg v1
# a tiny adder
input a 8
input b 8 unsigned
node t add 9
output r 9
edge a t 0 9 signed
edge b t 1 9 unsigned
edge t r 0 9 signed
)";
  const Graph g = parse_graph(text);
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 3);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(g.node(g.inputs()[1]).ext_sign, Sign::Unsigned);
}

TEST(Io, ParseShlExtConst) {
  const std::string text = R"(dfg v1
input a 4
const k 8 -3
node s shl 12 3
node e ext 10 signed
output r 10
edge a s 0 12 signed
edge s e 0 12 unsigned
edge e r 0 10 signed
output r2 8
edge k r2 0 8 signed
)";
  const Graph g = parse_graph(text);
  EXPECT_TRUE(g.validate().empty());
  bool found_shl = false, found_ext = false;
  for (const auto& n : g.nodes()) {
    if (n.kind == OpKind::Shl) {
      found_shl = true;
      EXPECT_EQ(n.shift, 3);
    }
    if (n.kind == OpKind::Extension) {
      found_ext = true;
      EXPECT_EQ(n.ext_sign, Sign::Signed);
    }
    if (n.kind == OpKind::Const) EXPECT_EQ(n.value.to_int64(), -3);
  }
  EXPECT_TRUE(found_shl);
  EXPECT_TRUE(found_ext);
}

TEST(Io, ErrorsCarryLineNumbers) {
  auto expect_throw = [](const std::string& text, const char* frag) {
    try {
      parse_graph(text);
      FAIL() << "expected parse failure for: " << frag;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(frag), std::string::npos)
          << e.what();
    }
  };
  expect_throw("input a 8\n", "dfg v1");
  expect_throw("dfg v1\nbogus x\n", "unknown directive");
  expect_throw("dfg v1\ninput a 0\n", "width must be positive");
  expect_throw("dfg v1\ninput a 8\ninput a 8\n", "duplicate node");
  expect_throw("dfg v1\nnode t add 8\nedge q t 0 8 signed\n", "unknown node");
  expect_throw("dfg v1\ninput a 8\nnode t neg 8\nedge a t 1 8 signed\n",
               "port out of range");
  expect_throw(
      "dfg v1\ninput a 8\nnode t neg 8\nedge a t 0 8 signed\n"
      "edge a t 0 8 signed\n",
      "port already connected");
  expect_throw("dfg v1\nnode s shl 8\n", "shift amount");
  expect_throw("dfg v1\ninput a 8\nnode t add 8\nedge a t 0 8 signed\n",
               "graph invalid");
  expect_throw("", "empty input");
}

TEST(Io, RoundTripPreservesFunction) {
  for (const auto& tc : designs::all_testcases()) {
    const std::string text = to_text(tc.graph);
    const Graph back = parse_graph(text);
    EXPECT_TRUE(back.validate().empty()) << tc.name;
    Rng rng(55);
    std::string why;
    EXPECT_TRUE(equivalent_by_simulation(tc.graph, back, 16, rng, &why))
        << tc.name << ": " << why;
  }
}

TEST(Io, RoundTripFigures) {
  for (const Graph& g : {designs::figure1_g2(), designs::figure3_g5()}) {
    const Graph back = parse_graph(to_text(g));
    EXPECT_EQ(back.node_count(), g.node_count());
    EXPECT_EQ(back.edge_count(), g.edge_count());
    Rng rng(56);
    EXPECT_TRUE(equivalent_by_simulation(g, back, 16, rng));
  }
}

class IoRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoRoundTrip, RandomGraphs) {
  Rng rng(GetParam());
  for (int t = 0; t < 6; ++t) {
    const Graph g = random_graph(rng);
    const Graph back = parse_graph(to_text(g));
    ASSERT_TRUE(back.validate().empty());
    EXPECT_EQ(back.node_count(), g.node_count());
    EXPECT_EQ(back.edge_count(), g.edge_count());
    Rng vr(GetParam() * 3 + t);
    std::string why;
    EXPECT_TRUE(equivalent_by_simulation(g, back, 16, vr, &why)) << why;
    // Double round-trip is a fixpoint.
    EXPECT_EQ(to_text(back), to_text(parse_graph(to_text(back))));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTrip,
                         ::testing::Values(111, 112, 113, 114));

}  // namespace
}  // namespace dpmerge::dfg
