// Tests for the provenance chain: DecisionLog recording in the clusterers,
// netlist gate owner tags surviving synthesis, critical-path attribution
// reconciling with STA, ledger/diff determinism, and the compile-out
// guarantee that provenance never changes an emitted artifact.

#include <cmath>
#include <set>

#include "gtest/gtest.h"

#include "dpmerge/designs/testcases.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/netlist/attribution.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/netlist/verilog.h"
#include "dpmerge/obs/obs.h"
#include "dpmerge/synth/explain.h"
#include "dpmerge/synth/flow.h"

namespace dpmerge {
namespace {

using obs::prov::Decision;
using obs::prov::DecisionId;
using obs::prov::DecisionLog;
using obs::prov::Verdict;

// ---------------------------------------------------------------------------
// DecisionLog basics
// ---------------------------------------------------------------------------

TEST(DecisionLogTest, IdsAreRecordingOrderAndFinalIsLastNodeLevel) {
  DecisionLog log;
  Decision edge;
  edge.node = 3;
  edge.dst_node = 5;
  edge.rule = "cluster.safety2_precision";
  edge.verdict = Verdict::Reject;
  EXPECT_EQ(log.add(edge).value, 0);

  Decision node;
  node.node = 3;
  node.rule = "cluster.safety2_precision";
  node.verdict = Verdict::Reject;
  EXPECT_EQ(log.add(node).value, 1);

  log.next_iteration();
  Decision later;
  later.node = 3;
  later.rule = "cluster.merge";
  later.verdict = Verdict::Accept;
  EXPECT_EQ(log.add(later).value, 2);

  const DecisionId fin = log.final_for_node(3);
  ASSERT_TRUE(fin.valid());
  EXPECT_EQ(fin.value, 2);
  EXPECT_EQ(log.decision(fin).verdict, Verdict::Accept);
  EXPECT_EQ(log.decision(fin).iteration, 1);
  // Per-edge decisions never become "final".
  EXPECT_FALSE(log.final_for_node(5).valid());
  EXPECT_FALSE(log.final_for_node(99).valid());
}

TEST(DecisionLogTest, RejectsForNodeReturnsFinalIterationRejects) {
  DecisionLog log;
  Decision stale;  // iteration 0: superseded by the node's later decision
  stale.node = 2;
  stale.rule = "cluster.safety2_precision";
  stale.verdict = Verdict::Reject;
  log.add(stale);

  log.next_iteration();
  Decision edge;
  edge.node = 2;
  edge.dst_node = 4;
  edge.edge = 7;
  edge.rule = "cluster.synth1_mul_operand";
  edge.verdict = Verdict::Reject;
  log.add(edge);
  Decision fin;
  fin.node = 2;
  fin.rule = "cluster.synth1_mul_operand";
  fin.verdict = Verdict::Reject;
  log.add(fin);

  const auto rejects = log.rejects_for_node(2);
  ASSERT_EQ(rejects.size(), 2u);  // the edge evidence + the node verdict
  EXPECT_EQ(log.decision(rejects[0]).edge, 7);
  EXPECT_EQ(log.decision(rejects[1]).dst_node, -1);
}

TEST(DecisionLogTest, JsonIsWellFormed) {
  DecisionLog log;
  Decision d;
  d.node = 1;
  d.node_op = "Add#1";
  d.rule = "cluster.merge";
  d.verdict = Verdict::Accept;
  d.info_width = 9;
  d.width_savings = 3;
  log.add(d);
  std::string out;
  log.to_json(out);
  EXPECT_NE(out.find("\"cluster.merge\""), std::string::npos);
  EXPECT_NE(out.find("\"accept\""), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
}

// ---------------------------------------------------------------------------
// Clusterer recording on the paper designs
// ---------------------------------------------------------------------------

TEST(ProvenanceRecordingTest, EveryArithOperatorGetsAFinalVerdict) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  for (const auto& tc : designs::all_testcases()) {
    const auto res = synth::run_flow(tc.graph, synth::Flow::NewMerge);
    for (const dfg::Node& n : res.graph.nodes()) {
      if (!dfg::is_arith_operator(n.kind)) continue;
      const DecisionId id = res.decisions.final_for_node(n.id.value);
      ASSERT_TRUE(id.valid())
          << tc.name << ": no final decision for node " << n.id.value;
      // Reject <=> the node roots its own cluster.
      const int ci = res.partition.index_of(n.id);
      ASSERT_GE(ci, 0);
      const bool is_root =
          res.partition.clusters[static_cast<std::size_t>(ci)].root == n.id;
      EXPECT_EQ(res.decisions.decision(id).verdict == Verdict::Reject, is_root)
          << tc.name << " node " << n.id.value << " rule "
          << res.decisions.decision(id).rule;
    }
  }
}

TEST(ProvenanceRecordingTest, AllThreeFlowsRecordDecisions) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  const auto cases = designs::all_testcases();
  for (const auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                          synth::Flow::NewMerge}) {
    const auto res = synth::run_flow(cases[0].graph, flow);
    EXPECT_FALSE(res.decisions.empty())
        << "flow " << synth::to_string(flow) << " recorded nothing";
  }
}

// ---------------------------------------------------------------------------
// Owner tags survive synthesis (property over random graphs)
// ---------------------------------------------------------------------------

TEST(ProvenanceTagTest, EveryGateOwnedByALiveNodeAcrossRandomGraphs) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    const dfg::Graph g = dfg::random_graph(rng);
    for (const auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                            synth::Flow::NewMerge}) {
      const auto res = synth::run_flow(g, flow);
      ASSERT_TRUE(res.net.has_provenance()) << "seed " << seed;
      for (int gi = 0; gi < res.net.gate_count(); ++gi) {
        const int owner = res.net.provenance_owner(netlist::GateId{gi});
        // Synthesis tags every gate with the DFG node being synthesised;
        // the transformed graph only ever grows, so owners stay in range.
        ASSERT_GE(owner, 0) << "seed " << seed << " gate " << gi;
        ASSERT_LT(owner, res.graph.node_count())
            << "seed " << seed << " gate " << gi;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Critical-path attribution reconciles with STA
// ---------------------------------------------------------------------------

TEST(AttributionTest, DelaysSumToWorstPathOnPaperDesigns) {
  const auto& lib = netlist::CellLibrary::tsmc025();
  const netlist::Sta sta(lib);
  for (const auto& tc : designs::all_testcases()) {
    for (const auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                            synth::Flow::NewMerge}) {
      const auto res = synth::run_flow(tc.graph, flow);
      const auto timing = sta.analyze(res.net);
      const auto attr = netlist::attribute_critical_path(res.net, timing);
      EXPECT_NEAR(attr.total_ns, timing.longest_path_ns, 1e-9);
      double sum = 0.0;
      for (const auto& [owner, ns] : attr.delay_by_owner) sum += ns;
      EXPECT_NEAR(sum, timing.longest_path_ns,
                  1e-6 * std::max(1.0, timing.longest_path_ns))
          << tc.name << " " << synth::to_string(flow);
      // Incremental delays are non-negative (arrivals are monotone along
      // the path) and there is one segment per critical-path net.
      EXPECT_EQ(attr.segments.size(), timing.critical_path.size());
      for (const auto& seg : attr.segments) EXPECT_GE(seg.incr_ns, -1e-12);
    }
  }
}

TEST(AttributionTest, LedgerReconcilesAndCoversAreaOnPaperDesigns) {
  const auto& lib = netlist::CellLibrary::tsmc025();
  const netlist::Sta sta(lib);
  for (const auto& tc : designs::all_testcases()) {
    auto res = synth::run_flow(tc.graph, synth::Flow::NewMerge);
    const auto timing = sta.analyze(res.net);
    const auto ledger = synth::build_ledger(res, lib, timing);
    EXPECT_NEAR(ledger.attributed_ns, ledger.total_delay_ns,
                1e-6 * std::max(1.0, ledger.total_delay_ns))
        << tc.name;
    EXPECT_NEAR(ledger.total_area, sta.area(res.net), 1e-6) << tc.name;
    std::int64_t gates = 0;
    for (const auto& e : ledger.entries) gates += e.gates;
    EXPECT_EQ(gates, res.net.gate_count()) << tc.name;
  }
}

TEST(AttributionTest, LedgerJsonIsDeterministicAcrossRuns) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  const auto& lib = netlist::CellLibrary::tsmc025();
  const netlist::Sta sta(lib);
  const auto tc = designs::all_testcases()[3];  // D4: the big width-pruning win
  std::string a, b;
  for (std::string* out : {&a, &b}) {
    const auto res = synth::run_flow(tc.graph, synth::Flow::NewMerge);
    const auto ledger = synth::build_ledger(res, lib, sta.analyze(res.net));
    ledger.to_json(*out);
  }
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Flow-vs-flow diff
// ---------------------------------------------------------------------------

TEST(LedgerDiffTest, NewVsOldNamesADifferingDecisionWhereTable1Differs) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  const auto& lib = netlist::CellLibrary::tsmc025();
  // D4 is the paper's headline delta (39.67% delay reduction new vs old),
  // so the two flows must have decided at least one operator differently.
  const auto tc = designs::all_testcases()[3];
  const auto en = synth::explain_flow(tc.graph, synth::Flow::NewMerge, lib);
  const auto eo = synth::explain_flow(tc.graph, synth::Flow::OldMerge, lib);
  ASSERT_NE(en.timing.longest_path_ns, eo.timing.longest_path_ns);
  const auto diff = synth::diff_explanations(en, eo);
  EXPECT_FALSE(diff.entries.empty());
  std::string json;
  diff.to_json(json);
  EXPECT_NE(json.find("\"entries\""), std::string::npos);
}

TEST(LedgerDiffTest, FlowAgainstItselfIsEmpty) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  const auto& lib = netlist::CellLibrary::tsmc025();
  const auto tc = designs::all_testcases()[0];
  const auto a = synth::explain_flow(tc.graph, synth::Flow::NewMerge, lib);
  const auto b = synth::explain_flow(tc.graph, synth::Flow::NewMerge, lib);
  EXPECT_TRUE(synth::diff_explanations(a, b).entries.empty());
}

// ---------------------------------------------------------------------------
// Provenance never perturbs artifacts
// ---------------------------------------------------------------------------

TEST(ProvenanceNeutralityTest, VerilogIdenticalWithAndWithoutRecording) {
  const auto tc = designs::all_testcases()[1];
  // run_flow records into its own log; a second outer scope must not change
  // anything, and neither does recording at all vs. an obs-disabled build
  // (the tags are side metadata — asserted here via the exported artifact).
  const auto plain = synth::run_flow(tc.graph, synth::Flow::NewMerge);
  obs::prov::DecisionLog outer;
  obs::prov::DecisionScope scope(&outer);
  const auto recorded = synth::run_flow(tc.graph, synth::Flow::NewMerge);
  EXPECT_EQ(netlist::to_verilog(plain.net, "m"),
            netlist::to_verilog(recorded.net, "m"));
}

TEST(ProvenanceNeutralityTest, DotAndLedgerTextAreNonEmpty) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  const auto& lib = netlist::CellLibrary::tsmc025();
  const auto tc = designs::all_testcases()[0];
  const auto e = synth::explain_flow(tc.graph, synth::Flow::NewMerge, lib);
  const std::string dot = synth::provenance_dot(e);
  EXPECT_NE(dot.find("digraph provenance"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(e.ledger.to_text().find("worst path"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FlowReport roll-up and export ordering
// ---------------------------------------------------------------------------

TEST(FlowReportProvenanceTest, TopDecisionsSerializeToJson) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  const auto& lib = netlist::CellLibrary::tsmc025();
  const netlist::Sta sta(lib);
  const auto tc = designs::all_testcases()[3];
  auto res = synth::run_flow(tc.graph, synth::Flow::NewMerge);
  const auto ledger = synth::build_ledger(res, lib, sta.analyze(res.net));
  synth::attach_top_decisions(res.report, ledger);
  ASSERT_FALSE(res.report.top_decisions.empty());
  EXPECT_LE(res.report.top_decisions.size(), 3u);
  EXPECT_GT(res.report.top_decisions[0].delay_ns, 0.0);
  EXPECT_GT(res.report.top_decisions[0].share, 0.0);
  EXPECT_LE(res.report.top_decisions[0].share, 1.0 + 1e-9);
  std::string json;
  res.report.to_json(json);
  EXPECT_NE(json.find("\"top_decisions\""), std::string::npos);
  EXPECT_NE(json.find(res.report.top_decisions[0].label.substr(0, 5)),
            std::string::npos);
}

TEST(FlowReportProvenanceTest, StageExportOrderIsCanonical) {
  obs::FlowReport rep;
  // Stages recorded in a non-canonical order (as a paranoid check policy
  // produces: "check" begins before "cluster" ends up first in memory).
  for (const char* name : {"check", "synth", "opt", "cluster", "normalize"}) {
    obs::StageReport s;
    s.name = name;
    rep.stages.push_back(std::move(s));
  }
  std::string json;
  rep.to_json(json);
  const auto pos = [&](const char* name) {
    return json.find("\"name\":\"" + std::string(name) + "\"");
  };
  EXPECT_LT(pos("normalize"), pos("cluster"));
  EXPECT_LT(pos("cluster"), pos("check"));
  EXPECT_LT(pos("check"), pos("synth"));
  EXPECT_LT(pos("synth"), pos("opt"));
  // The in-memory order is untouched (obs_test relies on execution order).
  EXPECT_EQ(rep.stages.front().name, "check");
}

}  // namespace
}  // namespace dpmerge
