// Crash diagnostics (obs/crash.h): fault-injection tests that fork a child,
// kill it mid-sweep (SIGSEGV in a pool task, an uncaught exception reaching
// std::terminate, a CheckPolicy fatal path), and assert the child's
// dpmerge-crash-<pid>.json names the active stage and sweep.

#include "dpmerge/obs/crash.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "dpmerge/obs/flight_recorder.h"
#include "dpmerge/obs/json.h"
#include "dpmerge/obs/trace.h"
#include "dpmerge/support/thread_pool.h"

namespace obs = dpmerge::obs;
namespace support = dpmerge::support;

namespace {

/// Forks, runs `child` (which must die or _exit on its own), and parses the
/// child's dpmerge-crash-<pid>.json from a fresh temp dir into `doc`.
/// `status` gets the raw waitpid status. Void so ASSERT_* can bail.
template <typename Fn>
void run_crashing_child(Fn child, int* status, obs::JsonValue* doc) {
  char tmpl[] = "/tmp/dpmerge-crash-test-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    child(std::string(dir));
    ::_exit(0);
  }
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::waitpid(pid, status, 0), pid) << "waitpid failed";

  const std::string path =
      std::string(dir) + "/dpmerge-crash-" + std::to_string(pid) + ".json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no crash dump at " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string err;
  ASSERT_TRUE(obs::json_parse(ss.str(), doc, &err)) << err;
  std::remove(path.c_str());
  ::rmdir(dir);
}

TEST(CrashDumpTest, SegvInPoolTaskDumpNamesStageAndSweep) {
  int status = 0;
  obs::JsonValue doc;
  run_crashing_child(
      [](const std::string& dir) {
        obs::CrashOptions o;
        o.dir = dir;
        obs::install_crash_handlers(o);
        obs::set_run_context("crash-test", 42);
        obs::set_current_stage("synth");
        obs::fr_mark("sweep.begin", 1);
        support::ThreadPool pool(3);
        pool.parallel_for(4, [](int i) {
          if (i == 2) {
            obs::fr_set_thread_context("sweep:D4/new-merge");
            obs::Span s("synth.csa.reduce");
            std::raise(SIGSEGV);
          }
        });
      },
      &status, &doc);
  if (::testing::Test::HasFatalFailure()) return;

  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);
  EXPECT_EQ(doc.text("schema"), "dpmerge-crash-v1");
  EXPECT_EQ(doc.text("reason"), "signal");
  EXPECT_EQ(doc.text("detail"), "SIGSEGV");
  EXPECT_EQ(doc.text("stage"), "synth");
  const obs::JsonValue* run = doc.find("run");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->text("tool"), "crash-test");
  EXPECT_EQ(run->num("seed"), 42.0);
  const obs::JsonValue* build = doc.find("build");
  ASSERT_NE(build, nullptr);
  ASSERT_NE(build->find("obs"), nullptr);

  // The crashing thread's state must name the sweep and its open span.
  // (An OBS=OFF build still dumps, but with no recorder data to carry.)
  const obs::JsonValue* threads = doc.find("threads");
  ASSERT_NE(threads, nullptr);
  ASSERT_TRUE(threads->is_array());
  const obs::JsonValue* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  if (!obs::compiled_in()) return;

  bool found_sweep = false;
  for (const obs::JsonValue& t : threads->array) {
    if (t.text("context") != "sweep:D4/new-merge") continue;
    found_sweep = true;
    const obs::JsonValue* stack = t.find("span_stack");
    ASSERT_NE(stack, nullptr);
    ASSERT_FALSE(stack->array.empty());
    EXPECT_EQ(stack->array.back().str, "synth.csa.reduce");
  }
  EXPECT_TRUE(found_sweep) << "no thread state names the sweep";

  // The drained flight recorder rode along.
  bool found_mark = false;
  for (const obs::JsonValue& e : events->array) {
    if (e.text("name") == "sweep.begin") found_mark = true;
  }
  EXPECT_TRUE(found_mark);
}

TEST(CrashDumpTest, UncaughtExceptionDumpCarriesWhat) {
  int status = 0;
  obs::JsonValue doc;
  run_crashing_child(
      [](const std::string& dir) {
        obs::CrashOptions o;
        o.dir = dir;
        obs::install_crash_handlers(o);
        obs::set_run_context("crash-test", 7);
        // Throw across a noexcept boundary so the exception reaches
        // std::terminate even under gtest's own exception guard.
        const auto boom = []() noexcept {
          throw std::runtime_error("boom: width mismatch in cluster 3");
        };
        boom();
      },
      &status, &doc);
  if (::testing::Test::HasFatalFailure()) return;

  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
  EXPECT_EQ(doc.text("reason"), "terminate");
  EXPECT_EQ(doc.text("detail"), "boom: width mismatch in cluster 3");
}

TEST(CrashDumpTest, CheckFailureDumpIsOptInAndOncePerProcess) {
  int status = 0;
  obs::JsonValue doc;
  run_crashing_child(
      [](const std::string& dir) {
        obs::CrashOptions o;
        o.dir = dir;  // dump_on_check_failure defaults to true
        obs::install_crash_handlers(o);
        obs::note_check_failure("net.verify", "gate count mismatch");
        // The process survives a check failure; the latch makes the second
        // note a no-op instead of overwriting the first dump.
        obs::note_check_failure("net.verify.second", "ignored");
      },
      &status, &doc);
  if (::testing::Test::HasFatalFailure()) return;

  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_EQ(doc.text("reason"), "check-failure");
  EXPECT_EQ(doc.text("detail"), "net.verify: gate count mismatch");
}

TEST(CrashDumpTest, NoDumpWhenCheckFailureDumpsDisabled) {
  char tmpl[] = "/tmp/dpmerge-crash-test-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    obs::CrashOptions o;
    o.dir = dir;
    o.dump_on_check_failure = false;
    obs::install_crash_handlers(o);
    obs::note_check_failure("net.verify", "handled finding");
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  const std::string path =
      std::string(dir) + "/dpmerge-crash-" + std::to_string(pid) + ".json";
  std::ifstream in(path);
  EXPECT_FALSE(in.good()) << "unexpected dump at " << path;
  ::rmdir(dir);
}

TEST(CrashDumpTest, BuildCrashJsonIsValidWithoutCrashing) {
  obs::set_run_context("crash-test", 9);
  const std::string body = obs::build_crash_json("unit-test", "no crash");
  std::string err;
  ASSERT_TRUE(obs::json_valid(body, &err)) << err;
  obs::JsonValue doc;
  ASSERT_TRUE(obs::json_parse(body, &doc, &err)) << err;
  EXPECT_EQ(doc.text("schema"), "dpmerge-crash-v1");
  EXPECT_EQ(doc.text("reason"), "unit-test");
  EXPECT_GT(doc.num("pid"), 0.0);
  EXPECT_GE(doc.num("peak_rss_mb"), 0.0);
  ASSERT_NE(doc.find("threads"), nullptr);
  ASSERT_NE(doc.find("events"), nullptr);
}

}  // namespace
