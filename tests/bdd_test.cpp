#include "dpmerge/formal/bdd.h"

#include <gtest/gtest.h>

#include "dpmerge/support/rng.h"

namespace dpmerge::formal {
namespace {

TEST(Bdd, Terminals) {
  Bdd m;
  EXPECT_TRUE(m.is_const(Bdd::kFalse));
  EXPECT_TRUE(m.is_const(Bdd::kTrue));
  EXPECT_EQ(m.bdd_not(Bdd::kFalse), Bdd::kTrue);
  EXPECT_EQ(m.bdd_not(Bdd::kTrue), Bdd::kFalse);
}

TEST(Bdd, VarAndEval) {
  Bdd m;
  const auto x = m.var(0);
  EXPECT_FALSE(m.eval(x, {false}));
  EXPECT_TRUE(m.eval(x, {true}));
}

TEST(Bdd, CanonicityGivesEqualityByRef) {
  Bdd m;
  const auto x = m.var(0), y = m.var(1);
  // x & y == ~(~x | ~y)  (De Morgan)
  EXPECT_EQ(m.bdd_and(x, y),
            m.bdd_not(m.bdd_or(m.bdd_not(x), m.bdd_not(y))));
  // x ^ y == (x | y) & ~(x & y)
  EXPECT_EQ(m.bdd_xor(x, y),
            m.bdd_and(m.bdd_or(x, y), m.bdd_not(m.bdd_and(x, y))));
  // Tautology: x | ~x
  EXPECT_EQ(m.bdd_or(x, m.bdd_not(x)), Bdd::kTrue);
  // Contradiction.
  EXPECT_EQ(m.bdd_and(x, m.bdd_not(x)), Bdd::kFalse);
}

TEST(Bdd, HashConsingDeduplicates) {
  Bdd m;
  const auto before = m.node_count();
  const auto a = m.var(3);
  const auto b = m.var(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(m.node_count(), before + 1);
}

TEST(Bdd, IteMatchesTruthTable) {
  Bdd m;
  const auto f = m.var(0), g = m.var(1), h = m.var(2);
  const auto r = m.ite(f, g, h);
  for (int v = 0; v < 8; ++v) {
    const std::vector<bool> a{(v & 1) != 0, (v & 2) != 0, (v & 4) != 0};
    EXPECT_EQ(m.eval(r, a), a[0] ? a[1] : a[2]) << v;
  }
}

TEST(Bdd, RandomExpressionsMatchBruteForce) {
  // Build random 5-variable expressions two ways and compare to explicit
  // truth-table evaluation.
  Rng rng(77);
  Bdd m;
  for (int t = 0; t < 40; ++t) {
    // A random expression tree over ops {and, or, xor, not}.
    std::vector<Bdd::Ref> stack;
    std::vector<std::string> ops;
    for (int step = 0; step < 24; ++step) {
      if (stack.size() < 2 || rng.chance(0.45)) {
        stack.push_back(m.var(static_cast<int>(rng.uniform(0, 4))));
        continue;
      }
      const auto b = stack.back();
      stack.pop_back();
      const auto a = stack.back();
      stack.pop_back();
      switch (rng.uniform(0, 3)) {
        case 0:
          stack.push_back(m.bdd_and(a, b));
          break;
        case 1:
          stack.push_back(m.bdd_or(a, b));
          break;
        case 2:
          stack.push_back(m.bdd_xor(a, b));
          break;
        default:
          stack.push_back(m.bdd_and(m.bdd_not(a), b));
          break;
      }
    }
    const auto f = stack.back();
    // eval() is itself exercised against all 32 assignments; consistency of
    // the canonical form is checked via double negation.
    EXPECT_EQ(m.bdd_not(m.bdd_not(f)), f);
    for (int v = 0; v < 32; ++v) {
      std::vector<bool> a;
      for (int i = 0; i < 5; ++i) a.push_back((v >> i) & 1);
      // f & ~f must evaluate false everywhere; f | ~f true everywhere.
      EXPECT_FALSE(m.eval(m.bdd_and(f, m.bdd_not(f)), a));
      EXPECT_TRUE(m.eval(m.bdd_or(f, m.bdd_not(f)), a));
    }
  }
}

TEST(Bdd, AnySatFindsWitness) {
  Bdd m;
  const auto x = m.var(0), y = m.var(1), z = m.var(2);
  const auto f = m.bdd_and(m.bdd_and(m.bdd_not(x), y), z);
  const auto sat = m.any_sat(f);
  ASSERT_FALSE(sat.empty());
  std::vector<bool> a(3, false);
  for (const auto& [v, val] : sat) a[static_cast<std::size_t>(v)] = val;
  EXPECT_TRUE(m.eval(f, a));
  EXPECT_TRUE(m.any_sat(Bdd::kFalse).empty());
}

TEST(Bdd, NodeLimitThrows) {
  Bdd m(16);  // absurdly small budget
  EXPECT_THROW(
      {
        Bdd::Ref acc = Bdd::kTrue;
        for (int i = 0; i < 32; ++i) {
          acc = m.bdd_xor(acc, m.var(i));
        }
      },
      BddLimitExceeded);
}

}  // namespace
}  // namespace dpmerge::formal
