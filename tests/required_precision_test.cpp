#include "dpmerge/analysis/required_precision.h"

#include <gtest/gtest.h>

#include "dpmerge/designs/figures.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/dfg/random_graph.h"

namespace dpmerge::analysis {
namespace {

using dfg::Builder;
using dfg::Graph;
using dfg::NodeId;
using dfg::Operand;

TEST(RequiredPrecision, OutputNodeBaseCase) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 16);
  const auto o = b.output("r", 7, Operand{a, 7});
  const auto rp = compute_required_precision(g);
  EXPECT_EQ(rp.r_in(o), 7);
  EXPECT_EQ(rp.r_out(a), 7);
}

TEST(RequiredPrecision, MinAlongPath) {
  // a -> add(w=12) -> output(w=10) through an 8-bit edge: r is limited by
  // the narrowest hop.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 16);
  const auto c = b.input("c", 16);
  const auto s = b.add(12, Operand{a, 12}, Operand{c, 12});
  b.output("r", 10, Operand{s, 8});
  const auto rp = compute_required_precision(g);
  EXPECT_EQ(rp.r_out(s), 8);  // min(w(e)=8, r_in(out)=10)
  EXPECT_EQ(rp.r_in(s), 8);   // min(r_out, w(N)=12)
  EXPECT_EQ(rp.r_out(a), 8);
}

TEST(RequiredPrecision, MaxOverFanout) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 16);
  const auto s = b.add(16, Operand{a}, Operand{a});
  b.output("narrow", 4, Operand{s, 4});
  b.output("wide", 13, Operand{s, 13});
  const auto rp = compute_required_precision(g);
  EXPECT_EQ(rp.r_out(s), 13);  // the widest consumer wins
}

TEST(RequiredPrecision, NodeWidthCapsInputPorts) {
  // A narrow operator caps the precision required of its operands even when
  // its own result is consumed wide.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 16);
  const auto t = b.add(6, Operand{a}, Operand{a});  // 6-bit bottleneck
  const auto s = b.add(16, Operand{t, 16, Sign::Signed}, Operand{a});
  b.output("r", 16, Operand{s});
  const auto rp = compute_required_precision(g);
  EXPECT_EQ(rp.r_out(t), 16);  // consumer wants 16 ...
  EXPECT_EQ(rp.r_in(t), 6);    // ... but the node only keeps 6
  EXPECT_EQ(rp.r_out(a), 16);  // via the direct path to s
}

TEST(RequiredPrecision, Figure2AllFive) {
  // G4 (Figure 2a): the 5-bit output makes the required precision of every
  // signal in the graph 5 bits (Section 4's walkthrough).
  const Graph g = designs::figure2_g4();
  const auto rp = compute_required_precision(g);
  const auto f = designs::figure_nodes(g);
  for (NodeId n : {f.n1, f.n2, f.n3, f.n4}) {
    EXPECT_EQ(rp.r_in(n), 5) << "node " << n.value;
    EXPECT_EQ(rp.r_out(n), 5) << "node " << n.value;
  }
  for (NodeId in : g.inputs()) EXPECT_EQ(rp.r_out(in), 5);
}

TEST(RequiredPrecision, Figure1Is9Or7) {
  const Graph g = designs::figure1_g2();
  const auto rp = compute_required_precision(g);
  const auto f = designs::figure_nodes(g);
  EXPECT_EQ(rp.r_out(f.n1), 9);  // consumer extends to 9
  EXPECT_EQ(rp.r_in(f.n1), 7);   // capped by w(N1) = 7
  EXPECT_EQ(rp.r_out(f.n4), 9);
}

// Soundness property: forcing the bits above r(p_o) of any node's result to
// arbitrary values (by truncating to r and re-extending with either sign)
// never changes any primary output.
class RpSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RpSoundness, HighBitsAreSuperfluous) {
  Rng rng(GetParam());
  const Graph g = dfg::random_graph(rng);
  const auto rp = compute_required_precision(g);
  dfg::Evaluator ev(g);

  for (const auto& n : g.nodes()) {
    if (!dfg::is_operator(n.kind) && n.kind != dfg::OpKind::Input) continue;
    const int r = rp.r_out(n.id);
    if (r >= n.width || r == 0) continue;
    for (Sign garbage : {Sign::Unsigned, Sign::Signed}) {
      // Mutated copy: truncate n's result to r bits, then re-extend with
      // `garbage` sign; consumers read through the re-extension.
      Graph m = g;
      const NodeId trunc = m.insert_extension_after(n.id, r, garbage, n.width);
      m.insert_extension_after(trunc, n.width, garbage, r);
      ASSERT_TRUE(m.validate().empty());
      Rng stim_rng(GetParam() ^ 0x9e3779b9);
      std::string why;
      EXPECT_TRUE(dfg::equivalent_by_simulation(g, m, 24, stim_rng, &why))
          << "node " << n.id.value << " r=" << r << " w=" << n.width << ": "
          << why;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpSoundness,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dpmerge::analysis
