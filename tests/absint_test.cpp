// Property and unit tests for the abstract-interpretation engine behind the
// soundness lint: on random graphs and random stimuli, every concrete value
// the reference interpreter computes must be contained in the abstraction.

#include <gtest/gtest.h>

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/check/absint.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/dfg/random_graph.h"

namespace dpmerge {
namespace {

using check::AbstractValue;
using check::contains;
using dfg::Graph;
using dfg::NodeId;
using dfg::OpKind;

TEST(AbsintProperty, ContainsEveryConcreteValue) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed * 6364136223846793005ull + 1442695040888963407ull);
    dfg::RandomGraphOptions opt;
    opt.num_operators = 4 + static_cast<int>(seed % 13);
    opt.max_width = 4 + static_cast<int>(seed % 29);
    opt.cmp_fraction = 0.15;
    const Graph g = dfg::random_graph(rng, opt);
    const auto aa = check::compute_abstract(g);
    const dfg::Evaluator ev(g);
    for (int trial = 0; trial < 8; ++trial) {
      const auto results = ev.run(ev.random_inputs(rng));
      for (const auto& n : g.nodes()) {
        EXPECT_TRUE(contains(aa.out(n.id),
                             results[static_cast<std::size_t>(n.id.value)]))
            << "seed " << seed << " trial " << trial << " node "
            << n.id.value;
      }
      for (const auto& e : g.edges()) {
        EXPECT_TRUE(contains(aa.edge(e.id), ev.carried_on_edge(e.id, results)))
            << "seed " << seed << " trial " << trial << " edge " << e.id.value;
        EXPECT_TRUE(
            contains(aa.operand(e.id), ev.operand_via_edge(e.id, results)))
            << "seed " << seed << " trial " << trial << " edge " << e.id.value;
      }
    }
  }
}

TEST(AbsintUnit, ConstantsAreExact) {
  Graph g;
  const NodeId c = g.add_const(BitVector::from_uint(8, 0xA5));
  const NodeId o = g.add_node(OpKind::Output, 8, "out");
  g.add_edge(c, o, 0, 8, Sign::Unsigned);
  const auto aa = check::compute_abstract(g);
  const AbstractValue& av = aa.out(c);
  EXPECT_TRUE(av.bits.all_known());
  EXPECT_EQ(av.bits.value.to_uint64(), 0xA5u);
  EXPECT_TRUE(av.range.valid);
  EXPECT_EQ(static_cast<std::uint64_t>(av.range.lo), 0xA5u);
  EXPECT_EQ(static_cast<std::uint64_t>(av.range.hi), 0xA5u);
}

TEST(AbsintUnit, ConstantAddFolds) {
  Graph g;
  const NodeId a = g.add_const(BitVector::from_uint(8, 40));
  const NodeId b = g.add_const(BitVector::from_uint(8, 2));
  const NodeId s = g.add_node(OpKind::Add, 8);
  g.add_edge(a, s, 0, 8, Sign::Unsigned);
  g.add_edge(b, s, 1, 8, Sign::Unsigned);
  const NodeId o = g.add_node(OpKind::Output, 8, "out");
  g.add_edge(s, o, 0, 8, Sign::Unsigned);
  const auto aa = check::compute_abstract(g);
  EXPECT_TRUE(aa.out(s).bits.all_known());
  EXPECT_EQ(aa.out(s).bits.value.to_uint64(), 42u);
}

TEST(AbsintUnit, ShlPinsLowBitsToZero) {
  Graph g;
  const NodeId x = g.add_node(OpKind::Input, 8, "x");
  const NodeId sh = g.add_node(OpKind::Shl, 8);
  g.set_node_shift(sh, 3);
  g.add_edge(x, sh, 0, 8, Sign::Unsigned);
  const NodeId o = g.add_node(OpKind::Output, 8, "out");
  g.add_edge(sh, o, 0, 8, Sign::Unsigned);
  const auto aa = check::compute_abstract(g);
  const auto& kb = aa.out(sh).bits;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(kb.known.bit(i));
    EXPECT_FALSE(kb.value.bit(i));
  }
  EXPECT_FALSE(kb.known.bit(3));
  EXPECT_EQ(kb.known_trailing_zeros(), 3);
}

TEST(AbsintUnit, ZeroExtensionPinsHighBits) {
  Graph g;
  const NodeId x = g.add_node(OpKind::Input, 4, "x");
  const NodeId ext = g.add_node(OpKind::Extension, 8);
  g.set_node_ext_sign(ext, Sign::Unsigned);
  g.add_edge(x, ext, 0, 4, Sign::Unsigned);
  const NodeId o = g.add_node(OpKind::Output, 8, "out");
  g.add_edge(ext, o, 0, 8, Sign::Unsigned);
  const auto aa = check::compute_abstract(g);
  const auto& kb = aa.out(ext).bits;
  for (int i = 4; i < 8; ++i) {
    EXPECT_TRUE(kb.known.bit(i)) << i;
    EXPECT_FALSE(kb.value.bit(i)) << i;
  }
  const auto& itv = aa.out(ext).range;
  ASSERT_TRUE(itv.valid);
  EXPECT_EQ(static_cast<std::uint64_t>(itv.hi), 15u);
}

TEST(AbsintUnit, ComparatorIsDecidedByDisjointIntervals) {
  // x:u4 zero-extended to 8 bits is always < 16; 200 is a constant.
  Graph g;
  const NodeId x = g.add_node(OpKind::Input, 4, "x");
  const NodeId c = g.add_const(BitVector::from_uint(8, 200));
  const NodeId lt = g.add_node(OpKind::LtU, 8);
  g.add_edge(x, lt, 0, 8, Sign::Unsigned);
  g.add_edge(c, lt, 1, 8, Sign::Unsigned);
  const NodeId o = g.add_node(OpKind::Output, 8, "out");
  g.add_edge(lt, o, 0, 1, Sign::Unsigned);
  const auto aa = check::compute_abstract(g);
  const auto& kb = aa.out(lt).bits;
  EXPECT_TRUE(kb.all_known());
  EXPECT_EQ(kb.value.to_uint64(), 1u);  // always true
}

TEST(AbsintUnit, ContradictsUnsignedClaim) {
  const auto av = AbstractValue::constant(BitVector::from_uint(8, 255));
  EXPECT_TRUE(check::contradicts(av, {4, Sign::Unsigned}));
  EXPECT_FALSE(check::contradicts(av, {8, Sign::Unsigned}));
  // 15 genuinely fits in 4 unsigned bits.
  const auto small = AbstractValue::constant(BitVector::from_uint(8, 15));
  EXPECT_FALSE(check::contradicts(small, {4, Sign::Unsigned}));
}

TEST(AbsintUnit, ContradictsSignedClaim) {
  // 0b0111_1111 = 127: a signed 4-bit claim needs bits [3,8) all equal,
  // but bit 3..6 are 1 and bit 7 is 0.
  const auto av = AbstractValue::constant(BitVector::from_uint(8, 127));
  EXPECT_TRUE(check::contradicts(av, {4, Sign::Signed}));
  EXPECT_FALSE(check::contradicts(av, {8, Sign::Signed}));
  // -4 = 0b1111_1100 is a sound signed-3 (even signed-4) claim.
  const auto neg = AbstractValue::constant(BitVector::from_uint(8, 0xFC));
  EXPECT_FALSE(check::contradicts(neg, {3, Sign::Signed}));
  EXPECT_TRUE(check::contradicts(neg, {1, Sign::Signed}));
}

TEST(AbsintUnit, TopContradictsNothing) {
  const auto av = AbstractValue::top(16);
  for (int w = 0; w <= 16; ++w) {
    EXPECT_FALSE(check::contradicts(av, {w, Sign::Unsigned})) << w;
    if (w >= 1) {
      EXPECT_FALSE(check::contradicts(av, {w, Sign::Signed})) << w;
    }
  }
}

}  // namespace
}  // namespace dpmerge
