// Tests for transform::shrink_widths, the absint lint-to-optimizer bridge:
// formally-verified width reductions on the paper's raw testcases, PackedSim
// differential equivalence of the synthesized before/after netlists,
// DecisionLog attribution under the shrink.* rules, targeted units for both
// shrink rules, and a random-graph fuzz sweep.

#include <gtest/gtest.h>

#include "dpmerge/designs/testcases.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/formal/equiv.h"
#include "dpmerge/netlist/packed_sim.h"
#include "dpmerge/obs/provenance.h"
#include "dpmerge/obs/trace.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/transform/shrink_widths.h"

namespace dpmerge {
namespace {

using dfg::Graph;
using dfg::NodeId;
using dfg::OpKind;
using transform::ShrinkOptions;
using transform::ShrinkStats;

ShrinkOptions proving_options() {
  ShrinkOptions opt;
  // The paper designs stay well inside the BDD budget even above the
  // conservative 64-input-bit default (D1 is the widest at 128).
  opt.max_formal_input_bits = 512;
  return opt;
}

// Acceptance: the pass finds at least one formally-verified width reduction
// on at least two of D1..D5 (raw graphs, before the paper's own
// normalisation runs).
TEST(ShrinkWidths, FormallyVerifiedReductionsOnPaperDesigns) {
  int designs_with_proved_reductions = 0;
  for (const auto& tc : designs::all_testcases()) {
    Graph g = tc.graph;
    const ShrinkStats st = transform::shrink_widths(g, proving_options());
    EXPECT_EQ(st.reverted_batches, 0) << tc.name;
    if (st.nodes_narrowed > 0 && st.formally_verified) {
      ++designs_with_proved_reductions;
    }
    if (st.changed()) {
      // Belt and braces: re-prove the final graph against the original.
      // (Skipped when nothing shrank — D2's 360 input bits would only
      // exercise the BDD resource limit for an identity comparison.)
      const auto r = formal::check_graph_vs_graph(tc.graph, g);
      ASSERT_TRUE(r.proved()) << tc.name;
      EXPECT_TRUE(r.equivalent()) << tc.name << ": " << r.detail;
    }
  }
  EXPECT_GE(designs_with_proved_reductions, 2);
}

// PackedSimulator differential: synthesize the original and the shrunk
// graph and drive both netlists with identical stimuli across all lanes.
TEST(ShrinkWidths, PackedSimDifferentialOnShrunkDesigns) {
  Rng rng(0xd1ff5e3d);
  for (const auto& tc : designs::all_testcases()) {
    Graph g = tc.graph;
    const ShrinkStats st = transform::shrink_widths(g, proving_options());
    if (!st.changed()) continue;  // nothing to differentiate
    const auto before = synth::run_flow(tc.graph, synth::Flow::NewMerge);
    const auto after = synth::run_flow(g, synth::Flow::NewMerge);
    ASSERT_EQ(before.net.inputs().size(), after.net.inputs().size());
    netlist::PackedSimulator sim_a(before.net);
    netlist::PackedSimulator sim_b(after.net);
    std::vector<std::vector<BitVector>> stimuli(
        netlist::PackedSimulator::kLanes);
    for (auto& lane : stimuli) {
      for (const auto& bus : before.net.inputs()) {
        lane.push_back(rng.bits(bus.signal.width()));
      }
    }
    const auto ra = sim_a.run_batch(stimuli);
    const auto rb = sim_b.run_batch(stimuli);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t L = 0; L < ra.size(); ++L) {
      ASSERT_EQ(ra[L].size(), rb[L].size()) << tc.name;
      for (std::size_t j = 0; j < ra[L].size(); ++j) {
        EXPECT_EQ(ra[L][j], rb[L][j])
            << tc.name << " lane " << L << " output "
            << before.net.outputs()[j].name;
      }
    }
  }
}

TEST(ShrinkWidths, DecisionsAttributedInLedger) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::prov::DecisionLog log;
  obs::prov::DecisionScope scope(&log);
  Graph g = designs::all_testcases()[3].graph;  // D4
  const ShrinkStats st = transform::shrink_widths(g, proving_options());
  ASSERT_GT(st.nodes_narrowed, 0);
  ASSERT_EQ(log.size(), static_cast<std::size_t>(st.nodes_narrowed));
  int savings = 0;
  for (const auto& d : log.decisions()) {
    EXPECT_TRUE(d.rule == "shrink.demanded" || d.rule == "shrink.known-bits")
        << d.rule;
    EXPECT_EQ(d.verdict, obs::prov::Verdict::Accept);
    EXPECT_LT(d.info_width, d.node_width);
    EXPECT_EQ(d.width_savings, d.node_width - d.info_width);
    savings += d.width_savings;
  }
  EXPECT_EQ(savings, st.bits_removed);
}

// Demanded rule in isolation: a truncating consumer lets the producer chain
// drop its high bits outright.
TEST(ShrinkWidths, DemandedRuleNarrowsTruncatedMultiply) {
  Graph g;
  const NodeId a = g.add_node(OpKind::Input, 8, "a");
  const NodeId b = g.add_node(OpKind::Input, 8, "b");
  const NodeId m = g.add_node(OpKind::Mul, 16);
  g.add_edge(a, m, 0, 16, Sign::Unsigned);
  g.add_edge(b, m, 1, 16, Sign::Unsigned);
  const NodeId o = g.add_node(OpKind::Output, 6, "out");
  g.add_edge(m, o, 0, 6, Sign::Unsigned);

  const Graph orig = g;
  const ShrinkStats st = transform::shrink_widths(g, proving_options());
  EXPECT_GE(st.demanded_shrinks, 1);
  EXPECT_EQ(g.node(m).width, 6);
  EXPECT_TRUE(st.formally_verified);
  EXPECT_TRUE(formal::check_graph_vs_graph(orig, g).equivalent());
}

// Known-bits rule in isolation: interval reasoning proves the adder's top
// bits are constant zero (two 4-bit zero-extended operands sum to < 32), a
// fact the IC algebra's own normalisation already consumed — but here it is
// discovered from the product domain and discharged formally.
TEST(ShrinkWidths, KnownBitsRuleNarrowsOverwideAdder) {
  Graph g;
  const NodeId a = g.add_node(OpKind::Input, 4, "a");
  const NodeId b = g.add_node(OpKind::Input, 4, "b");
  const NodeId s = g.add_node(OpKind::Add, 12);
  g.add_edge(a, s, 0, 12, Sign::Unsigned);
  g.add_edge(b, s, 1, 12, Sign::Unsigned);
  const NodeId o = g.add_node(OpKind::Output, 12, "out");
  g.add_edge(s, o, 0, 12, Sign::Unsigned);

  const Graph orig = g;
  const ShrinkStats st = transform::shrink_widths(g, proving_options());
  EXPECT_GE(st.knownbits_shrinks, 1);
  EXPECT_EQ(g.node(s).width, 5);  // 4-bit + 4-bit fits in 5 bits
  EXPECT_TRUE(st.formally_verified);
  EXPECT_TRUE(formal::check_graph_vs_graph(orig, g).equivalent());
}

TEST(ShrinkWidths, FlowIntegrationKeepsNetlistEquivalent) {
  synth::SynthOptions opt;
  opt.absint_shrink = true;
  const auto cases = designs::all_testcases();
  {
    // D4: small enough for a full BDD proof of netlist vs source graph.
    const auto& tc = cases[3];
    const auto res = synth::run_flow(tc.graph, synth::Flow::NewMerge, opt);
    const auto r = formal::check_netlist_vs_graph(res.net, tc.graph);
    ASSERT_TRUE(r.proved()) << tc.name;
    EXPECT_TRUE(r.equivalent()) << tc.name << ": " << r.detail;
  }
  {
    // D5's netlist exceeds the default BDD budget; drive the interpreter
    // and the packed netlist simulator with identical stimuli instead.
    // Net buses are paired with graph inputs by NAME — the synthesized bus
    // order is not the graph's input order.
    const auto& tc = cases[4];
    const auto res = synth::run_flow(tc.graph, synth::Flow::NewMerge, opt);
    const dfg::Evaluator ev(tc.graph);
    netlist::PackedSimulator sim(res.net);
    const auto& g = tc.graph;
    std::vector<std::size_t> bus_to_input;  // net bus index -> graph slot
    for (const auto& bus : res.net.inputs()) {
      std::size_t slot = g.inputs().size();
      for (std::size_t i = 0; i < g.inputs().size(); ++i) {
        if (g.name(g.inputs()[i]) == bus.name) slot = i;
      }
      ASSERT_LT(slot, g.inputs().size()) << "unmatched bus " << bus.name;
      bus_to_input.push_back(slot);
    }
    Rng rng(0x5e11d5);
    std::vector<std::vector<BitVector>> stimuli(
        netlist::PackedSimulator::kLanes);
    std::vector<std::vector<BitVector>> net_stimuli(stimuli.size());
    for (std::size_t L = 0; L < stimuli.size(); ++L) {
      stimuli[L] = ev.random_inputs(rng);
      for (std::size_t b = 0; b < bus_to_input.size(); ++b) {
        net_stimuli[L].push_back(stimuli[L][bus_to_input[b]]);
      }
    }
    const auto batch = sim.run_batch(net_stimuli);
    for (std::size_t L = 0; L < stimuli.size(); ++L) {
      const auto expect = ev.run_outputs(stimuli[L]);
      ASSERT_EQ(batch[L].size(), expect.size());
      for (std::size_t j = 0; j < expect.size(); ++j) {
        EXPECT_EQ(batch[L][j], expect[j])
            << tc.name << " lane " << L << " output "
            << res.net.outputs()[j].name;
      }
    }
  }
}

TEST(ShrinkWidths, FuzzNeverRevertsAndPreservesSimulation) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed * 0x2545f4914f6cdd1dull + 13);
    dfg::RandomGraphOptions opt;
    opt.num_operators = 4 + static_cast<int>(seed % 13);
    opt.max_width = 4 + static_cast<int>(seed % 21);
    opt.mul_fraction = 0.25;
    const Graph orig = dfg::random_graph(rng, opt);
    Graph g = orig;
    const ShrinkStats st = transform::shrink_widths(g);
    EXPECT_EQ(st.reverted_batches, 0) << "seed " << seed;
    Rng check_rng(seed + 1);
    EXPECT_TRUE(dfg::equivalent_by_simulation(orig, g, 32, check_rng))
        << "seed " << seed << " " << st.to_string();
  }
}

TEST(ShrinkWidths, IdempotentOnAlreadyShrunkGraph) {
  Graph g = designs::all_testcases()[3].graph;  // D4
  (void)transform::shrink_widths(g, proving_options());
  const ShrinkStats again = transform::shrink_widths(g, proving_options());
  EXPECT_FALSE(again.changed()) << again.to_string();
}

}  // namespace
}  // namespace dpmerge
