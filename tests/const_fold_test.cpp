#include "dpmerge/transform/const_fold.h"

#include <gtest/gtest.h>

#include "dpmerge/cluster/clusterer.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/formal/equiv.h"
#include "dpmerge/frontend/parser.h"
#include "dpmerge/synth/flow.h"

namespace dpmerge::transform {
namespace {

using dfg::Builder;
using dfg::Graph;
using dfg::OpKind;
using dfg::Operand;

int count_kind(const Graph& g, OpKind k) {
  int c = 0;
  for (const auto& n : g.nodes()) c += n.kind == k;
  return c;
}

void expect_equiv(const Graph& a, const Graph& b, std::uint64_t seed) {
  Rng rng(seed);
  std::string why;
  EXPECT_TRUE(dfg::equivalent_by_simulation(a, b, 32, rng, &why)) << why;
  EXPECT_TRUE(b.validate().empty());
}

TEST(ConstFold, EvaluatesAllConstantCones) {
  Graph g;
  Builder b(g);
  const auto k1 = b.constant(8, 5);
  const auto k2 = b.constant(8, 7);
  const auto s = b.add(9, Operand{k1, 9, Sign::Signed},
                       Operand{k2, 9, Sign::Signed});
  const auto a = b.input("a", 8);
  const auto t = b.add(10, Operand{s, 10, Sign::Signed},
                       Operand{a, 10, Sign::Signed});
  b.output("r", 10, Operand{t});
  FoldStats st;
  const Graph f = fold_constants(g, &st);
  EXPECT_EQ(st.constants_folded, 1);
  EXPECT_EQ(count_kind(f, OpKind::Add), 1);  // only the a + 12 remains
  expect_equiv(g, f, 1);
}

TEST(ConstFold, MulByPowerOfTwoBecomesShift) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto k = b.constant(8, 8);
  const auto m = b.mul(12, Operand{a, 12, Sign::Signed},
                       Operand{k, 12, Sign::Signed});
  b.output("r", 12, Operand{m});
  FoldStats st;
  const Graph f = fold_constants(g, &st);
  EXPECT_EQ(st.strength_reduced, 1);
  EXPECT_EQ(count_kind(f, OpKind::Mul), 0);
  EXPECT_EQ(count_kind(f, OpKind::Shl), 1);
  expect_equiv(g, f, 2);
}

TEST(ConstFold, MulByOneAndZero) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto one = b.constant(4, 1);
  const auto zero = b.constant(4, 0);
  const auto m1 = b.mul(10, Operand{a, 10, Sign::Signed},
                        Operand{one, 10, Sign::Unsigned});
  const auto m0 = b.mul(10, Operand{a, 10, Sign::Signed},
                        Operand{zero, 10, Sign::Unsigned});
  const auto t = b.add(11, Operand{m1, 11, Sign::Signed},
                       Operand{m0, 11, Sign::Signed});
  b.output("r", 11, Operand{t});
  FoldStats st;
  const Graph f = fold_constants(g, &st);
  EXPECT_EQ(count_kind(f, OpKind::Mul), 0);
  EXPECT_GE(st.identities_removed, 2);
  expect_equiv(g, f, 3);
}

TEST(ConstFold, MulByMinusOneBecomesNeg) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto minus1 = b.constant(4, -1);
  const auto m = b.mul(10, Operand{a, 10, Sign::Signed},
                       Operand{minus1, 10, Sign::Signed});
  b.output("r", 10, Operand{m});
  FoldStats st;
  const Graph f = fold_constants(g, &st);
  EXPECT_EQ(count_kind(f, OpKind::Mul), 0);
  EXPECT_EQ(count_kind(f, OpKind::Neg), 1);
  expect_equiv(g, f, 4);
}

TEST(ConstFold, AddZeroAndSubSelf) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto zero = b.constant(4, 0);
  const auto s = b.add(9, Operand{a, 9, Sign::Signed},
                       Operand{zero, 9, Sign::Unsigned});
  const auto d = b.sub(9, Operand{a, 9, Sign::Signed},
                       Operand{a, 9, Sign::Signed});
  const auto t = b.add(10, Operand{s, 10, Sign::Signed},
                       Operand{d, 10, Sign::Signed});
  b.output("r", 10, Operand{t});
  FoldStats st;
  const Graph f = fold_constants(g, &st);
  EXPECT_GE(st.identities_removed, 2);
  EXPECT_EQ(count_kind(f, OpKind::Sub), 0);
  expect_equiv(g, f, 5);
}

TEST(ConstFold, StrengthReductionEnablesMerging) {
  // y = 8*x0 + x1: as a multiplier, x0's path can't merge through the
  // operand boundary; as a shift it merges into one cluster — the practical
  // payoff of strength reduction in the merging flow.
  const auto res = frontend::compile(R"(
input x0 : s8
input x1 : s8
let t = x0 + x1
output y : s16 = 8 * t + x1
)");
  const Graph folded = fold_constants(res.graph);
  EXPECT_EQ(count_kind(folded, OpKind::Mul), 0);
  Graph before = res.graph;
  Graph after = folded;
  const auto p_before = cluster::cluster_maximal(before);
  const auto p_after = cluster::cluster_maximal(after);
  EXPECT_LT(p_after.partition.num_clusters(),
            p_before.partition.num_clusters());
  EXPECT_EQ(p_after.partition.num_clusters(), 1);
  expect_equiv(res.graph, folded, 6);
}

TEST(ConstFold, DeadLogicEliminated) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto zero = b.constant(4, 0);
  // This whole product is multiplied by zero; its cone must vanish.
  const auto dead = b.mul(16, Operand{a, 16, Sign::Signed},
                          Operand{a, 16, Sign::Signed});
  const auto m0 = b.mul(16, Operand{dead, 16, Sign::Signed},
                        Operand{zero, 16, Sign::Unsigned});
  const auto t = b.add(17, Operand{a, 17, Sign::Signed},
                       Operand{m0, 17, Sign::Signed});
  b.output("r", 17, Operand{t});
  const Graph f = fold_constants(g);
  EXPECT_EQ(count_kind(f, OpKind::Mul), 0);
  // Inputs stay (interface) even when dead elsewhere.
  EXPECT_EQ(f.inputs().size(), g.inputs().size());
  expect_equiv(g, f, 7);
}

TEST(ConstFold, FormalProofOnCoefficientKernel) {
  const auto res = frontend::compile(R"(
input x : s6
output y : s12 = 4 * x + 2 * x + x
)");
  const Graph f = fold_constants(res.graph);
  EXPECT_EQ(count_kind(f, OpKind::Mul), 0);
  const auto eq = formal::check_graph_vs_graph(res.graph, f);
  EXPECT_TRUE(eq.equivalent()) << eq.detail;
}

class ConstFoldRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConstFoldRandom, EquivalentOnRandomGraphs) {
  Rng rng(GetParam());
  for (int t = 0; t < 6; ++t) {
    const Graph g = dfg::random_graph(rng);
    FoldStats st;
    const Graph f = fold_constants(g, &st);
    expect_equiv(g, f, GetParam() * 11 + t);
    // Idempotent after one round (no new constants appear).
    FoldStats st2;
    const Graph f2 = fold_constants(f, &st2);
    EXPECT_FALSE(st2.changed());
    expect_equiv(f, f2, GetParam() * 11 + t + 100);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstFoldRandom,
                         ::testing::Values(121, 122, 123, 124, 125, 126));

}  // namespace
}  // namespace dpmerge::transform
