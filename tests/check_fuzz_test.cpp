// Seeded fuzz loop: 500 random DFGs must pass the IR verifier, survive every
// transform with the verifier still green, and produce information-content /
// required-precision results the abstract-interpretation lint cannot refute.
// A BDD-equivalence stage additionally proves, at small widths, that the
// old-merge and new-merge flows both synthesize netlists implementing the
// source graph (`ctest -L formal` collects it).

#include <gtest/gtest.h>

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/analysis/required_precision.h"
#include "dpmerge/check/absint.h"
#include "dpmerge/check/check.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/formal/equiv.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/transform/const_fold.h"
#include "dpmerge/transform/cse.h"
#include "dpmerge/transform/rebalance.h"
#include "dpmerge/transform/width_prune.h"

namespace dpmerge {
namespace {

using dfg::Graph;

constexpr int kSeeds = 500;

dfg::RandomGraphOptions fuzz_options(std::uint64_t seed) {
  dfg::RandomGraphOptions opt;
  // Vary the shape across the sweep so narrow, wide, comparator-heavy and
  // multiply-heavy graphs all appear.
  opt.num_operators = 4 + static_cast<int>(seed % 17);
  opt.max_width = 6 + static_cast<int>(seed % 23);
  opt.cmp_fraction = (seed % 3) ? 0.06 : 0.2;
  opt.mul_fraction = (seed % 2) ? 0.2 : 0.35;
  return opt;
}

TEST(CheckFuzz, RandomGraphsVerifyCleanThroughEveryTransform) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed * 2654435761u + 1);
    const Graph g = dfg::random_graph(rng, fuzz_options(seed));
    const auto base = check::verify(g);
    ASSERT_TRUE(base.ok()) << "seed " << seed << "\n" << base.to_text();

    const Graph folded = transform::fold_constants(g);
    const auto rf = check::verify(folded);
    EXPECT_TRUE(rf.ok()) << "fold, seed " << seed << "\n" << rf.to_text();

    const Graph shared = transform::share_common_subexpressions(g);
    const auto rs = check::verify(shared);
    EXPECT_TRUE(rs.ok()) << "cse, seed " << seed << "\n" << rs.to_text();

    const Graph balanced = transform::rebalance_clusters(g);
    const auto rb = check::verify(balanced);
    EXPECT_TRUE(rb.ok()) << "rebalance, seed " << seed << "\n" << rb.to_text();

    Graph pruned = g;
    transform::normalize_widths(pruned);
    const auto rp = check::verify(pruned);
    EXPECT_TRUE(rp.ok()) << "prune, seed " << seed << "\n" << rp.to_text();
  }
}

TEST(CheckFuzz, AnalysesSurviveTheSoundnessLint) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed * 0x9e3779b9u + 7);
    Graph g = dfg::random_graph(rng, fuzz_options(seed));
    transform::normalize_widths(g);

    const auto ia = analysis::compute_info_content(g);
    const auto lint = check::lint_info_content(g, ia);
    EXPECT_TRUE(lint.clean()) << "seed " << seed << "\n" << lint.to_text();

    const auto rp = analysis::compute_required_precision(g);
    const auto rl = check::lint_required_precision(g, rp);
    EXPECT_TRUE(rl.clean()) << "seed " << seed << "\n" << rl.to_text();
  }
}

// BDD-equivalence stage: both merge generations, proved (not simulated)
// against the source graph. Widths are kept small so each proof is cheap;
// a ResourceLimit verdict is a harness bug at these sizes, not a pass.
TEST(CheckFuzz, MergeFlowsFormallyEquivalentAtSmallWidths) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 41);
    dfg::RandomGraphOptions opt;
    opt.num_inputs = 3;
    opt.num_operators = 5 + static_cast<int>(seed % 6);
    opt.max_width = 4 + static_cast<int>(seed % 4);
    opt.mul_fraction = 0.1;  // keep multiplier BDDs small
    opt.cmp_fraction = 0.15;
    const Graph g = dfg::random_graph(rng, opt);
    for (auto flow : {synth::Flow::OldMerge, synth::Flow::NewMerge}) {
      const auto res = synth::run_flow(g, flow);
      const auto r = formal::check_netlist_vs_graph(res.net, g);
      ASSERT_TRUE(r.proved())
          << "seed " << seed << " " << synth::to_string(flow);
      EXPECT_TRUE(r.equivalent())
          << "seed " << seed << " " << synth::to_string(flow) << ": "
          << r.detail;
    }
  }
}

TEST(CheckFuzz, TransformsRunCleanUnderParanoidBoundaries) {
  check::PolicyScope scope(check::CheckPolicy::Paranoid);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed * 1099511627791ull + 3);
    const Graph g = dfg::random_graph(rng, fuzz_options(seed));
    // Any CheckFailure escaping here is a transform producing a broken
    // graph (or a checker false positive) — both are bugs.
    transform::fold_constants(g);
    transform::share_common_subexpressions(g);
    transform::rebalance_clusters(g);
    Graph pruned = g;
    transform::normalize_widths(pruned);
  }
}

}  // namespace
}  // namespace dpmerge
