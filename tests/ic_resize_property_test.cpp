// Isolated property tests for the information-content resize algebra — the
// core of Section 5's propagation rules and of Observation 6.1. For random
// claims and random values *conforming* to the claim, the resized value must
// conform to the resized claim.

#include <gtest/gtest.h>

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/support/rng.h"

namespace dpmerge::analysis {
namespace {

/// Draws a value of `carrier` bits satisfying the claim <i, t>.
BitVector conforming_value(Rng& rng, int carrier, InfoContent c) {
  const BitVector low = rng.bits(c.width);
  return low.resize(carrier, c.sign);
}

class IcResizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IcResizeProperty, ResizedValueSatisfiesResizedClaim) {
  Rng rng(GetParam());
  for (int t = 0; t < 4000; ++t) {
    const int from = static_cast<int>(rng.uniform(1, 20));
    const int to = static_cast<int>(rng.uniform(1, 20));
    const InfoContent claim{static_cast<int>(rng.uniform(0, from)),
                            rng.chance(0.5) ? Sign::Signed : Sign::Unsigned};
    const Sign ext = rng.chance(0.5) ? Sign::Signed : Sign::Unsigned;

    const BitVector v = conforming_value(rng, from, claim);
    ASSERT_TRUE(v.is_extension_of_low(claim.width, claim.sign));

    const InfoContent rc = ic_resize(claim, from, to, ext);
    const BitVector rv = v.resize(to, ext);
    ASSERT_LE(rc.width, to);
    EXPECT_TRUE(rv.is_extension_of_low(rc.width, rc.sign))
        << "claim " << claim.to_string() << " from " << from << " to " << to
        << " ext " << to_string(ext) << " value " << v.to_string()
        << " resized " << rv.to_string() << " rclaim " << rc.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcResizeProperty,
                         ::testing::Values(1001, 1002, 1003, 1004));

// The binary/unary tuple ops, property-style on representable values wider
// than the exhaustive unit test covers (uses 63-bit headroom).
class IcAlgebraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IcAlgebraProperty, OpsContainResults) {
  Rng rng(GetParam());
  auto draw = [&rng](InfoContent c) -> std::int64_t {
    if (c.width == 0) return 0;
    if (c.sign == Sign::Unsigned) {
      return static_cast<std::int64_t>(rng.next_u64() &
                                       ((1ull << c.width) - 1));
    }
    const std::int64_t span = std::int64_t{1} << c.width;
    return rng.uniform(-(span / 2), span / 2 - 1);
  };
  auto contains = [](InfoContent c, std::int64_t v) {
    if (c.width == 0) return v == 0;
    if (c.sign == Sign::Unsigned) {
      return v >= 0 && (c.width >= 63 || v < (std::int64_t{1} << c.width));
    }
    if (c.width >= 63) return true;
    const std::int64_t half = std::int64_t{1} << (c.width - 1);
    return v >= -half && v < half;
  };
  for (int t = 0; t < 5000; ++t) {
    const InfoContent a{static_cast<int>(rng.uniform(0, 24)),
                        rng.chance(0.5) ? Sign::Signed : Sign::Unsigned};
    const InfoContent b{static_cast<int>(rng.uniform(0, 24)),
                        rng.chance(0.5) ? Sign::Signed : Sign::Unsigned};
    const std::int64_t x = draw(a), y = draw(b);
    EXPECT_TRUE(contains(ic_add(a, b), x + y))
        << a.to_string() << "+" << b.to_string() << ": " << x << "," << y;
    EXPECT_TRUE(contains(ic_sub(a, b), x - y))
        << a.to_string() << "-" << b.to_string() << ": " << x << "," << y;
    EXPECT_TRUE(contains(ic_mul(a, b), x * y))
        << a.to_string() << "*" << b.to_string() << ": " << x << "," << y;
    EXPECT_TRUE(contains(ic_neg(a), -x));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcAlgebraProperty,
                         ::testing::Values(2001, 2002, 2003));

// Observation 6.1, as stated in the paper, is implied by ic_resize: check
// the observation's two cases explicitly against our (tighter) rules.
TEST(Observation61, CaseAnalysis) {
  // (i) t == t(N): io = min(i, w(N)), to = t(N).
  for (Sign t : {Sign::Unsigned, Sign::Signed}) {
    const auto r = ic_resize({3, t}, 8, 12, t);
    EXPECT_EQ(r.width, 3);
    EXPECT_EQ(r.sign, t);
  }
  // (i) continued: t == unsigned, t(N) == signed -> our rule keeps the
  // tighter unsigned claim; the paper's <min(i,w), signed> is implied
  // (unsigned content of i bits is signed content of i+1).
  {
    const auto r = ic_resize({3, Sign::Unsigned}, 8, 12, Sign::Signed);
    EXPECT_EQ(r, (InfoContent{3, Sign::Unsigned}));
  }
  // (ii) t == signed, t(N) == unsigned: io = min(w(e), w(N)), to = unsigned.
  {
    const auto r = ic_resize({3, Sign::Signed}, 8, 12, Sign::Unsigned);
    EXPECT_EQ(r, (InfoContent{8, Sign::Unsigned}));
  }
}

}  // namespace
}  // namespace dpmerge::analysis
