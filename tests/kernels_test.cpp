#include "dpmerge/designs/kernels.h"

#include <gtest/gtest.h>

#include "dpmerge/dfg/eval.h"
#include "dpmerge/netlist/simplify.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/synth/verify.h"
#include "dpmerge/transform/const_fold.h"

namespace dpmerge::designs {
namespace {

TEST(Kernels, AllCompileAndValidate) {
  const auto ks = dsp_kernels();
  ASSERT_EQ(ks.size(), 6u);
  for (const auto& k : ks) {
    EXPECT_TRUE(k.graph.validate().empty()) << k.name;
    EXPECT_FALSE(k.graph.outputs().empty()) << k.name;
    EXPECT_FALSE(k.source.empty()) << k.name;
  }
}

std::map<std::string, std::int64_t> run_named(
    const dfg::Graph& g, const std::map<std::string, std::int64_t>& in) {
  dfg::Evaluator ev(g);
  std::vector<BitVector> stim;
  for (dfg::NodeId id : g.inputs()) {
    stim.push_back(
        BitVector::from_int(g.node(id).width, in.at(g.name(id))));
  }
  const auto outs = ev.run_outputs(stim);
  std::map<std::string, std::int64_t> r;
  const auto oids = g.outputs();
  for (std::size_t i = 0; i < oids.size(); ++i) {
    r[g.name(oids[i])] = outs[i].to_int64();
  }
  return r;
}

const Kernel& find(const std::vector<Kernel>& ks, const std::string& n) {
  for (const auto& k : ks) {
    if (k.name == n) return k;
  }
  throw std::runtime_error("kernel not found");
}

TEST(Kernels, Fir8ComputesDotProduct) {
  const auto ks = dsp_kernels();
  const auto& k = find(ks, "fir8");
  const int taps[8] = {1, 2, 7, 8, 8, 7, 2, 1};
  std::map<std::string, std::int64_t> in;
  std::int64_t expect = 0;
  for (int i = 0; i < 8; ++i) {
    const std::int64_t v = (i * 37 % 200) - 100;
    in["x" + std::to_string(i)] = v;
    expect += taps[i] * v;
  }
  EXPECT_EQ(run_named(k.graph, in).at("y"), expect);
}

TEST(Kernels, ComplexMulMatchesFormula) {
  const auto ks = dsp_kernels();
  const auto& k = find(ks, "complex_mul");
  const std::map<std::string, std::int64_t> in{
      {"ar", -300}, {"ai", 123}, {"br", 401}, {"bi", -77}};
  const auto out = run_named(k.graph, in);
  EXPECT_EQ(out.at("re"), -300 * 401 - 123 * -77);
  EXPECT_EQ(out.at("im"), -300 * -77 + 123 * 401);
}

TEST(Kernels, Dct4IsOrthogonalish) {
  const auto ks = dsp_kernels();
  const auto& k = find(ks, "dct4");
  // A constant row has zero AC coefficients.
  const std::map<std::string, std::int64_t> in{
      {"s0", 55}, {"s1", 55}, {"s2", 55}, {"s3", 55}};
  const auto out = run_named(k.graph, in);
  EXPECT_EQ(out.at("c0"), 8 * 55 /* (4*55) << 1 */ / 1);
  EXPECT_EQ(out.at("c1"), 0);
  EXPECT_EQ(out.at("c2"), 0);
  EXPECT_EQ(out.at("c3"), 0);
}

TEST(Kernels, Checksum8Wraps) {
  const auto ks = dsp_kernels();
  const auto& k = find(ks, "checksum8");
  const std::map<std::string, std::int64_t> in{
      {"p0", 200}, {"p1", 201}, {"p2", 202}, {"p3", 203}};
  const auto out = run_named(k.graph, in);
  EXPECT_EQ(out.at("m") & 0xFF, (200 + 201 + 202 + 203 + 2) & 0xFF);
}

TEST(Kernels, AllFlowsAndFoldVerify) {
  for (const auto& k : dsp_kernels()) {
    for (auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                      synth::Flow::NewMerge}) {
      const auto res = synth::run_flow(k.graph, flow);
      Rng rng(7);
      std::string why;
      ASSERT_TRUE(synth::verify_netlist(res.net, k.graph, 24, rng, &why))
          << k.name << " " << std::string(synth::to_string(flow)) << ": "
          << why;
    }
    const dfg::Graph folded = transform::fold_constants(k.graph);
    const auto res = synth::run_flow(folded, synth::Flow::NewMerge);
    const auto slim = netlist::simplify(res.net);
    Rng rng(8);
    std::string why;
    // Verify the simplified netlist against the ORIGINAL kernel.
    ASSERT_TRUE(synth::verify_netlist(slim, k.graph, 24, rng, &why))
        << k.name << ": " << why;
  }
}

TEST(Kernels, MergingReducesClustersEverywhere) {
  for (const auto& k : dsp_kernels()) {
    const auto none = synth::run_flow(k.graph, synth::Flow::NoMerge);
    const auto neu = synth::run_flow(k.graph, synth::Flow::NewMerge);
    EXPECT_LT(neu.partition.num_clusters(), none.partition.num_clusters())
        << k.name;
    // One cluster per output is the floor.
    EXPECT_GE(neu.partition.num_clusters(),
              static_cast<int>(k.graph.outputs().size()))
        << k.name;
  }
}

TEST(Kernels, StrengthReductionRemovesFirMultipliers) {
  const auto ks = dsp_kernels();
  const auto& k = find(ks, "fir8");
  const dfg::Graph folded = transform::fold_constants(k.graph);
  int muls_before = 0, muls_after = 0;
  for (const auto& n : k.graph.nodes()) muls_before += n.kind == dfg::OpKind::Mul;
  for (const auto& n : folded.nodes()) muls_after += n.kind == dfg::OpKind::Mul;
  // Coefficients 1/2/8 are powers of two; 7 = not. 2 taps with coeff 7
  // keep their multipliers.
  EXPECT_EQ(muls_before, 6);  // coefficients 2,7,8,8,7,2 (1s are wires)
  EXPECT_EQ(muls_after, 2);
}

}  // namespace
}  // namespace dpmerge::designs
