// Property and unit tests for the bidirectional fixpoint engine
// (check::compute_absint): the forward product domain (known bits x
// intervals x congruences) must contain every concrete value, must never be
// weaker than the single-pass abstraction the v1 lint uses, and the
// backward demanded-bits results must stay within required precision
// (Truncation semantics) and within themselves across semantics. The lint
// built on top (check::lint_absint) must be clean on the paper designs and
// a 500-seed fuzz corpus.

#include <gtest/gtest.h>

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/analysis/required_precision.h"
#include "dpmerge/check/absint.h"
#include "dpmerge/check/absint_engine.h"
#include "dpmerge/designs/testcases.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/dfg/random_graph.h"

namespace dpmerge {
namespace {

using check::AbsFact;
using check::AbsintOptions;
using check::DemandSemantics;
using dfg::Graph;
using dfg::NodeId;
using dfg::OpKind;

constexpr int kSeeds = 500;

dfg::RandomGraphOptions fuzz_options(std::uint64_t seed) {
  dfg::RandomGraphOptions opt;
  opt.num_operators = 4 + static_cast<int>(seed % 17);
  opt.max_width = 4 + static_cast<int>(seed % 29);
  opt.cmp_fraction = (seed % 3) ? 0.06 : 0.2;
  opt.mul_fraction = (seed % 2) ? 0.2 : 0.35;
  return opt;
}

TEST(AbsintEngineProperty, ContainsEveryConcreteValue) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed * 6364136223846793005ull + 97);
    const Graph g = dfg::random_graph(rng, fuzz_options(seed));
    const auto r = check::compute_absint(g);
    const dfg::Evaluator ev(g);
    for (int trial = 0; trial < 6; ++trial) {
      const auto results = ev.run(ev.random_inputs(rng));
      for (const auto& n : g.nodes()) {
        EXPECT_TRUE(check::contains(
            r.out(n.id), results[static_cast<std::size_t>(n.id.value)]))
            << "seed " << seed << " trial " << trial << " node " << n.id.value;
      }
      for (const auto& e : g.edges()) {
        EXPECT_TRUE(
            check::contains(r.edge(e.id), ev.carried_on_edge(e.id, results)))
            << "seed " << seed << " edge " << e.id.value;
        EXPECT_TRUE(check::contains(r.operand(e.id),
                                    ev.operand_via_edge(e.id, results)))
            << "seed " << seed << " operand edge " << e.id.value;
      }
    }
  }
}

// The structural guarantee the lint upgrade rests on: the fixpoint's facts
// are pointwise at least as tight as the v1 single-pass abstraction —
// every v1-known bit stays known with the same value, and the v2 interval
// lies inside the v1 interval whenever v1 has one.
void expect_no_weaker(const check::AbstractValue& v1, const AbsFact& v2,
                      const char* where, std::uint64_t seed, int idx) {
  ASSERT_EQ(v1.width(), v2.width()) << where << " seed " << seed << " " << idx;
  for (int i = 0; i < v1.width(); ++i) {
    if (!v1.bits.known.bit(i)) continue;
    EXPECT_TRUE(v2.bits.known.bit(i))
        << where << " seed " << seed << " #" << idx << " bit " << i
        << ": v2 forgot a known bit";
    EXPECT_EQ(v2.bits.value.bit(i), v1.bits.value.bit(i))
        << where << " seed " << seed << " #" << idx << " bit " << i;
  }
  if (v1.range.valid) {
    ASSERT_TRUE(v2.range.valid)
        << where << " seed " << seed << " #" << idx << ": v2 lost the range";
    EXPECT_GE(v2.range.lo, v1.range.lo) << where << " seed " << seed;
    EXPECT_LE(v2.range.hi, v1.range.hi) << where << " seed " << seed;
  }
}

TEST(AbsintEngineProperty, NeverWeakerThanSinglePassAbstraction) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 3);
    const Graph g = dfg::random_graph(rng, fuzz_options(seed));
    const auto v1 = check::compute_abstract(g);
    const auto v2 = check::compute_absint(g);
    for (const auto& n : g.nodes()) {
      expect_no_weaker(v1.out(n.id), v2.out(n.id), "node", seed, n.id.value);
    }
    for (const auto& e : g.edges()) {
      expect_no_weaker(v1.edge(e.id), v2.edge(e.id), "edge", seed, e.id.value);
      expect_no_weaker(v1.operand(e.id), v2.operand(e.id), "operand", seed,
                       e.id.value);
    }
  }
}

// Demanded bits under Truncation semantics generalise required precision:
// the demanded width can only be tighter, never wider (rp.unsound's
// inequality, DESIGN.md §13).
TEST(AbsintEngineProperty, DemandedWidthNeverExceedsRequiredPrecision) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed * 1099511628211ull + 11);
    const Graph g = dfg::random_graph(rng, fuzz_options(seed));
    const auto r = check::compute_absint(g);
    const auto rp = analysis::compute_required_precision(g);
    for (const auto& n : g.nodes()) {
      EXPECT_LE(r.demanded_width(n.id), rp.r_out(n.id))
          << "seed " << seed << " node " << n.id.value << " ("
          << dfg::to_string(n.kind) << ")";
    }
  }
}

// Observability semantics folds forward facts into the backward pass, so its
// demand masks are subsets of the (resizing-license) Truncation masks.
TEST(AbsintEngineProperty, ObservabilityDemandSubsetOfTruncation) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed * 2654435761u + 29);
    const Graph g = dfg::random_graph(rng, fuzz_options(seed));
    const auto trunc =
        check::compute_absint(g, {.demand = DemandSemantics::Truncation});
    const auto obs =
        check::compute_absint(g, {.demand = DemandSemantics::Observability});
    for (const auto& n : g.nodes()) {
      const BitVector& dt = trunc.demand_out(n.id);
      const BitVector& db = obs.demand_out(n.id);
      for (int i = 0; i < dt.width(); ++i) {
        EXPECT_FALSE(db.bit(i) && !dt.bit(i))
            << "seed " << seed << " node " << n.id.value << " bit " << i;
      }
    }
  }
}

TEST(AbsintEngineLint, CleanOnPaperDesigns) {
  for (const auto& tc : designs::all_testcases()) {
    const auto ia = analysis::compute_info_content(tc.graph);
    const auto rp = analysis::compute_required_precision(tc.graph);
    const auto rep = check::lint_absint(tc.graph, &ia, &rp);
    EXPECT_TRUE(rep.clean()) << tc.name << "\n" << rep.to_text();
  }
}

TEST(AbsintEngineLint, ZeroSoundnessViolationsOnFuzzCorpus) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed * 0x9e3779b9u + 7);
    const Graph g = dfg::random_graph(rng, fuzz_options(seed));
    const auto ia = analysis::compute_info_content(g);
    const auto rp = analysis::compute_required_precision(g);
    const auto rep = check::lint_absint(g, &ia, &rp);
    EXPECT_TRUE(rep.clean()) << "seed " << seed << "\n" << rep.to_text();
  }
}

TEST(AbsintEngineLint, StaleResultsAreFlagged) {
  Rng rng(424242);
  Graph g = dfg::random_graph(rng, fuzz_options(5));
  const auto ia = analysis::compute_info_content(g);
  const auto rp = analysis::compute_required_precision(g);
  // Mutate the graph after the analyses ran: both must be reported stale.
  const NodeId extra = g.add_node(OpKind::Output, 4, "stale_out");
  g.add_edge(g.inputs().front(), extra, 0, 4, Sign::Unsigned);
  const auto rep = check::lint_absint(g, &ia, &rp);
  EXPECT_TRUE(rep.has_rule("ic.stale")) << rep.to_text();
  EXPECT_TRUE(rep.has_rule("rp.stale")) << rep.to_text();
}

TEST(AbsintEngineUnit, MulByFourIsCongruentZeroModFour) {
  Graph g;
  const NodeId x = g.add_node(OpKind::Input, 8, "x");
  const NodeId c = g.add_const(BitVector::from_uint(3, 4));
  const NodeId m = g.add_node(OpKind::Mul, 10);
  g.add_edge(x, m, 0, 10, Sign::Unsigned);
  g.add_edge(c, m, 1, 10, Sign::Unsigned);
  const NodeId o = g.add_node(OpKind::Output, 10, "out");
  g.add_edge(m, o, 0, 10, Sign::Unsigned);
  const auto r = check::compute_absint(g);
  EXPECT_GE(r.out(m).cong.trailing_zeros(), 2);
  // ... and the co-factor's demand drops those two bits: only the low 8 of
  // the 10-bit product feed the truncating view (full width demanded at the
  // output), but x itself never needs its top bits to produce them.
  EXPECT_EQ(r.demanded_width(m), 10);
}

TEST(AbsintEngineUnit, DemandThroughTruncationCutsUpstream) {
  // (a * b) truncated to 6 bits: the multiply only needs its low 6 bits.
  Graph g;
  const NodeId a = g.add_node(OpKind::Input, 8, "a");
  const NodeId b = g.add_node(OpKind::Input, 8, "b");
  const NodeId m = g.add_node(OpKind::Mul, 16);
  g.add_edge(a, m, 0, 16, Sign::Unsigned);
  g.add_edge(b, m, 1, 16, Sign::Unsigned);
  const NodeId o = g.add_node(OpKind::Output, 6, "out");
  g.add_edge(m, o, 0, 6, Sign::Unsigned);
  const auto r = check::compute_absint(g);
  EXPECT_EQ(r.demanded_width(m), 6);
  EXPECT_EQ(r.demanded_width(a), 6);
  EXPECT_EQ(r.demanded_width(b), 6);
}

TEST(AbsintEngineUnit, AdditionChainConvergesAndReportsRounds) {
  Graph g;
  const NodeId x = g.add_node(OpKind::Input, 8, "x");
  NodeId cur = x;
  for (int i = 0; i < 10; ++i) {
    const NodeId s = g.add_node(OpKind::Add, 8);
    g.add_edge(cur, s, 0, 8, Sign::Unsigned);
    g.add_edge(x, s, 1, 8, Sign::Unsigned);
    cur = s;
  }
  const NodeId o = g.add_node(OpKind::Output, 8, "out");
  g.add_edge(cur, o, 0, 8, Sign::Unsigned);
  const auto r = check::compute_absint(g);
  EXPECT_GE(r.rounds, 1);
  EXPECT_LE(r.rounds, 4);
}

TEST(AbsintEngineUnit, FactReportsAreWellFormed) {
  Rng rng(7);
  const Graph g = dfg::random_graph(rng, fuzz_options(7));
  const auto r = check::compute_absint(g);
  const std::string text = check::absint_facts_text(g, r);
  EXPECT_NE(text.find("absint fixpoint"), std::string::npos);
  const std::string json = check::absint_facts_json(g, r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.find_last_not_of('\n')], '}');
  EXPECT_NE(json.find("\"demanded_width\""), std::string::npos);
  EXPECT_NE(json.find("\"rounds\""), std::string::npos);
}

}  // namespace
}  // namespace dpmerge
