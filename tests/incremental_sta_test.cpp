// Property tests for IncrementalSta: after arbitrary sequences of drive
// changes, arrivals, loads, the longest path and the critical path must
// match a from-scratch Sta::analyze; rebuild() restores the invariants
// after topology edits; and the optimizer's cross-check flag holds over a
// full optimization run.

#include "dpmerge/netlist/sta.h"

#include <gtest/gtest.h>

#include "dpmerge/designs/testcases.h"
#include "dpmerge/opt/timing_opt.h"
#include "dpmerge/support/rng.h"
#include "dpmerge/synth/flow.h"

namespace dpmerge {
namespace {

using netlist::CellLibrary;
using netlist::GateId;
using netlist::IncrementalSta;
using netlist::NetId;
using netlist::Netlist;
using netlist::Sta;

void expect_matches_full(const Netlist& net, const IncrementalSta& ista,
                         const Sta& sta, const char* when) {
  const auto full = sta.analyze(net);
  EXPECT_NEAR(full.longest_path_ns, ista.longest_path_ns(), 1e-12) << when;
  const auto loads = sta.net_loads(net);
  for (int n = 0; n < net.net_count(); ++n) {
    const auto ni = static_cast<std::size_t>(n);
    ASSERT_NEAR(full.arrival[ni], ista.arrivals()[ni], 1e-12)
        << when << " net " << n;
    ASSERT_NEAR(loads[ni], ista.load(NetId{n}), 1e-12) << when << " net " << n;
  }
  EXPECT_EQ(full.critical_path, ista.critical_path()) << when;
}

TEST(IncrementalSta, MatchesFullAnalyzeAfterRandomDriveChanges) {
  const auto& lib = CellLibrary::tsmc025();
  Sta sta(lib);
  Rng rng(31);
  for (const auto& tc : designs::all_testcases()) {
    auto flow = synth::run_flow(tc.graph, synth::Flow::NewMerge);
    IncrementalSta ista(flow.net, lib);
    expect_matches_full(flow.net, ista, sta, "initial");
    for (int step = 0; step < 120; ++step) {
      const int gi =
          static_cast<int>(rng.uniform(0, flow.net.gate_count() - 1));
      flow.net.mutable_gates()[static_cast<std::size_t>(gi)].drive =
          static_cast<int>(rng.uniform(0, netlist::kDriveLevels - 1));
      ista.update_drive_change(GateId{gi});
      if (step % 10 == 0 || step > 110) {
        expect_matches_full(flow.net, ista, sta, tc.name.c_str());
      }
    }
    expect_matches_full(flow.net, ista, sta, "final");
  }
}

TEST(IncrementalSta, RebuildRestoresInvariantsAfterTopologyEdit) {
  const auto& lib = CellLibrary::tsmc025();
  Sta sta(lib);
  auto flow = synth::run_flow(designs::make_d1(), synth::Flow::OldMerge);
  IncrementalSta ista(flow.net, lib);

  // Buffer-split a multi-fanout net the way the optimizer does, then
  // rebuild.
  const auto loads = sta.net_loads(flow.net);
  NetId worst{-1};
  double worst_load = 0.0;
  for (int n = 2; n < flow.net.net_count(); ++n) {
    if (loads[static_cast<std::size_t>(n)] > worst_load) {
      worst_load = loads[static_cast<std::size_t>(n)];
      worst = NetId{n};
    }
  }
  ASSERT_TRUE(worst.valid());
  const NetId buffered = flow.net.buf(worst);
  bool first = true;
  for (auto& g : flow.net.mutable_gates()) {
    if (g.output == buffered) continue;
    for (NetId& in : g.inputs) {
      if (in == worst) {
        if (first) {
          first = false;  // keep one reader on the original net
        } else {
          in = buffered;
        }
      }
    }
  }
  ista.rebuild();
  expect_matches_full(flow.net, ista, sta, "after rebuild");
}

TEST(IncrementalSta, DownsizeSequencesStayConsistent) {
  // The area-recovery pattern: repeated down/up flips of the same gates.
  const auto& lib = CellLibrary::tsmc025();
  Sta sta(lib);
  auto flow = synth::run_flow(designs::make_d3(), synth::Flow::NewMerge);
  for (auto& g : flow.net.mutable_gates()) g.drive = netlist::kDriveLevels - 1;
  IncrementalSta ista(flow.net, lib);
  expect_matches_full(flow.net, ista, sta, "all X4");
  for (auto& g : flow.net.mutable_gates()) {
    --g.drive;
    ista.update_drive_change(g.id);
    ++g.drive;
    ista.update_drive_change(g.id);
    --g.drive;
    ista.update_drive_change(g.id);
  }
  expect_matches_full(flow.net, ista, sta, "after recovery walk");
}

TEST(IncrementalSta, ReportMatchesAnalyzeFormat) {
  const auto& lib = CellLibrary::tsmc025();
  Sta sta(lib);
  auto flow = synth::run_flow(designs::make_d2(), synth::Flow::NewMerge);
  IncrementalSta ista(flow.net, lib);
  const auto full = sta.analyze(flow.net);
  const auto rep = ista.report();
  EXPECT_EQ(full.critical_path, rep.critical_path);
  EXPECT_NEAR(full.longest_path_ns, rep.longest_path_ns, 1e-12);
  ASSERT_EQ(full.arrival.size(), rep.arrival.size());
}

TEST(TimingOpt, CrossCheckedOptimizationRunsClean) {
  // With cross_check_sta on, every incremental update during a real
  // optimization run is verified against a full analyze; a divergence
  // throws and fails the test.
  const auto& lib = CellLibrary::tsmc025();
  auto flow = synth::run_flow(designs::make_d1(), synth::Flow::OldMerge);
  Sta sta(lib);
  opt::TimingOptimizer optimizer(lib);
  opt::TimingOptOptions o;
  o.target_ns = sta.analyze(flow.net).longest_path_ns * 0.9;
  o.max_moves = 300;
  o.cross_check_sta = true;
  const auto res = optimizer.optimize(flow.net, o);
  EXPECT_LE(res.final_ns, res.initial_ns);
}

}  // namespace
}  // namespace dpmerge
