// obs::stats under concurrency: many threads hammering shared counters,
// gauges and histograms through the Registry must lose no updates and keep
// the documented memory-ordering contracts (DESIGN.md §12) — totals exact
// after quiescence, gauges last-writer-wins, histogram fields telescoping.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "dpmerge/obs/stats.h"
#include "dpmerge/support/thread_pool.h"

namespace dpmerge::obs {
namespace {

TEST(StatsStressTest, CountersLoseNoIncrementsAcrossThreads) {
  Registry& reg = Registry::instance();
  reg.counter("stress.counter").reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Cache the reference once (the documented hot-site pattern), then
      // update lock-free.
      Counter& c = reg.counter("stress.counter");
      for (int i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("stress.counter").value(),
            static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(StatsStressTest, ConcurrentRegistrationIsSafeAndStable) {
  // Threads racing to register overlapping names must agree on one object
  // per name; references stay valid and no update is lost.
  Registry& reg = Registry::instance();
  for (int k = 0; k < 16; ++k) {
    reg.counter("stress.reg." + std::to_string(k)).reset();
  }
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 4000; ++i) {
        reg.counter("stress.reg." + std::to_string(i % 16)).add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::int64_t total = 0;
  for (int k = 0; k < 16; ++k) {
    total += reg.counter("stress.reg." + std::to_string(k)).value();
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(kThreads) * 4000);
}

TEST(StatsStressTest, GaugeIsLastWriterWinsWithoutTearing) {
  Registry& reg = Registry::instance();
  Gauge& gauge = reg.gauge("stress.gauge");
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < 5000; ++i) {
        gauge.set(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  // Whichever writer landed last, the value is one of the written values —
  // never a torn mix.
  const double v = gauge.value();
  EXPECT_GE(v, 1.0);
  EXPECT_LE(v, static_cast<double>(kThreads));
  EXPECT_EQ(v, static_cast<double>(static_cast<int>(v)));
}

TEST(StatsStressTest, HistogramFieldsTelescopeAfterQuiescence) {
  Registry& reg = Registry::instance();
  Histogram& h = reg.histogram("stress.histogram");
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::int64_t expected_sum = 0;
  for (int i = 0; i < kPerThread; ++i) expected_sum += i % 1000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(i % 1000);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.sum(), expected_sum * kThreads);
  std::int64_t bucket_total = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) bucket_total += h.bucket(b);
  EXPECT_EQ(bucket_total, h.count());
}

TEST(StatsStressTest, PoolWorkersShareTheRegistrySafely) {
  // The same contract through the ThreadPool (the shape the sweeps use):
  // per-task updates to a cached counter reference, exact after the job.
  Registry& reg = Registry::instance();
  reg.counter("stress.pool").reset();
  support::ThreadPool pool(4);
  Counter& c = reg.counter("stress.pool");
  pool.parallel_for(10000, [&](int) { c.add(1); });
  EXPECT_EQ(c.value(), 10000);
}

}  // namespace
}  // namespace dpmerge::obs
