#include "dpmerge/analysis/huffman.h"

#include <gtest/gtest.h>

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/support/rng.h"

namespace dpmerge::analysis {
namespace {

constexpr Sign U = Sign::Unsigned;
constexpr Sign S = Sign::Signed;

std::vector<Addend> uniform(int count, InfoContent ic) {
  return std::vector<Addend>(static_cast<std::size_t>(count),
                             Addend{ic, 1});
}

TEST(Huffman, Figure4SkewedVsBalanced) {
  // Figure 4: four 4-bit unsigned addends. The skewed chain computes
  // <7, unsigned>; Huffman rebalancing proves <6, unsigned>.
  const auto addends = uniform(4, {4, U});
  EXPECT_EQ(sequential_bound(addends), (InfoContent{7, U}));
  EXPECT_EQ(huffman_rebalanced_bound(addends), (InfoContent{6, U}));
}

TEST(Huffman, SingleAddendPassesThrough) {
  EXPECT_EQ(huffman_rebalanced_bound({{{{5, S}, 1}}}), (InfoContent{5, S}));
}

TEST(Huffman, EmptyIsZero) {
  EXPECT_EQ(huffman_rebalanced_bound({}), (InfoContent{0, U}));
}

TEST(Huffman, BalancedPowerOfTwo) {
  // 2^k equal addends of width w combine to exactly w + k.
  EXPECT_EQ(huffman_rebalanced_bound(uniform(8, {8, U})),
            (InfoContent{11, U}));
  EXPECT_EQ(huffman_rebalanced_bound(uniform(16, {10, U})),
            (InfoContent{14, U}));
}

TEST(Huffman, SkewedWidthsCombineSmallFirst) {
  // {2, 2, 3, 8}: Huffman does (2,2)->3, (3,3)->4, (4,8)->9; a skewed
  // left-to-right order starting from 8 would give 8+...: (8,2)->9,
  // (9,2)->10, (10,3)->11.
  const std::vector<Addend> a{{{2, U}, 1}, {{2, U}, 1}, {{3, U}, 1},
                              {{8, U}, 1}};
  EXPECT_EQ(huffman_rebalanced_bound(a), (InfoContent{9, U}));
}

TEST(Huffman, CoefficientExpandsToCopies) {
  // 5*b with b = <4, u>: five copies -> {4,4,4,4,4} -> 5,5,4 -> 6,5 -> 7.
  const std::vector<Addend> a{{{4, U}, 5}};
  EXPECT_EQ(expand_addends(a).size(), 5u);
  EXPECT_EQ(huffman_rebalanced_bound(a), (InfoContent{7, U}));
}

TEST(Huffman, NegativeCoefficientNegatesCopies) {
  // -4*d: four copies of -d = <i+1, s>.
  const std::vector<Addend> a{{{4, U}, -4}};
  const auto flat = expand_addends(a);
  ASSERT_EQ(flat.size(), 4u);
  for (const auto& f : flat) EXPECT_EQ(f, (InfoContent{5, S}));
}

TEST(Huffman, Observation59Example) {
  // z = 5*b - 4*d + 3*f, all of b, d, f 4-bit unsigned.
  const std::vector<Addend> a{{{4, U}, 5}, {{4, U}, -4}, {{4, U}, 3}};
  const auto h = huffman_rebalanced_bound(a);
  // 12 addends total (5 unsigned of width 4, 4 signed of width 5, 3 of 4):
  // the bound must at least cover the exact range [-4*15, 8*15].
  EXPECT_EQ(h.sign, S);
  EXPECT_GE(h.width, 8);
  EXPECT_LE(h.width, 10);
  // Huffman never does worse than the naive sequential order.
  EXPECT_LE(h.width, sequential_bound(a).width);
}

TEST(Huffman, NeverWorseThanSequential) {
  Rng rng(99);
  for (int t = 0; t < 200; ++t) {
    std::vector<Addend> a;
    const int n = static_cast<int>(rng.uniform(1, 8));
    for (int k = 0; k < n; ++k) {
      a.push_back(Addend{{static_cast<int>(rng.uniform(1, 12)),
                          rng.chance(0.5) ? S : U},
                         rng.uniform(1, 3) * (rng.chance(0.3) ? -1 : 1)});
    }
    EXPECT_LE(huffman_rebalanced_bound(a).width, sequential_bound(a).width);
  }
}

// Theorem 5.10: the Huffman ordering yields the tightest bound among all
// combination orders. Verified exhaustively on small instances.
class HuffmanOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HuffmanOptimality, MatchesExhaustiveMinimum) {
  Rng rng(GetParam());
  for (int t = 0; t < 12; ++t) {
    std::vector<Addend> a;
    const int n = static_cast<int>(rng.uniform(2, 6));
    for (int k = 0; k < n; ++k) {
      a.push_back(
          Addend{{static_cast<int>(rng.uniform(1, 10)), U}, 1});
    }
    const auto h = huffman_rebalanced_bound(a);
    const auto best = exhaustive_best_bound(a);
    EXPECT_EQ(h.width, best.width)
        << "huffman " << h.to_string() << " vs best " << best.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanOptimality,
                         ::testing::Values(301, 302, 303, 304));

// Validity: the Huffman bound is an upper bound on the true magnitude of the
// sum — checked against exact integer arithmetic for unsigned addends.
TEST(Huffman, BoundCoversExactRange) {
  Rng rng(123);
  for (int t = 0; t < 100; ++t) {
    std::vector<Addend> a;
    const int n = static_cast<int>(rng.uniform(1, 6));
    std::int64_t hi = 0, lo = 0;
    for (int k = 0; k < n; ++k) {
      const int w = static_cast<int>(rng.uniform(1, 10));
      const std::int64_t c = rng.uniform(1, 4) * (rng.chance(0.3) ? -1 : 1);
      a.push_back(Addend{{w, U}, c});
      const std::int64_t m = (std::int64_t{1} << w) - 1;
      if (c > 0) {
        hi += c * m;
      } else {
        lo += c * m;
      }
    }
    const auto h = huffman_rebalanced_bound(a);
    const std::int64_t bhi = h.sign == U ? (std::int64_t{1} << h.width) - 1
                                         : (std::int64_t{1} << (h.width - 1)) - 1;
    const std::int64_t blo =
        h.sign == U ? 0 : -(std::int64_t{1} << (h.width - 1));
    EXPECT_GE(bhi, hi);
    EXPECT_LE(blo, lo);
  }
}

}  // namespace
}  // namespace dpmerge::analysis
