#include "dpmerge/opt/timing_opt.h"

#include <gtest/gtest.h>

#include "dpmerge/designs/testcases.h"
#include "dpmerge/netlist/sim.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/support/rng.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/synth/verify.h"

namespace dpmerge::opt {
namespace {

using netlist::CellLibrary;
using netlist::Sta;

TEST(TimingOpt, ImprovesDelayOnRealNetlist) {
  auto flow = synth::run_flow(designs::make_d1(), synth::Flow::NoMerge);
  Sta sta(CellLibrary::tsmc025());
  const double before = sta.analyze(flow.net).longest_path_ns;

  TimingOptimizer opt(CellLibrary::tsmc025());
  TimingOptOptions o;
  o.target_ns = 0.0;  // unreachable: drive as far as possible
  o.max_moves = 400;
  const auto res = opt.optimize(flow.net, o);
  EXPECT_LT(res.final_ns, before);
  EXPECT_GT(res.moves, 0);
  EXPECT_NEAR(res.initial_ns, before, 1e-9);
  EXPECT_GE(res.final_area, res.initial_area);  // speed costs area
}

TEST(TimingOpt, PreservesFunctionality) {
  const auto g = designs::make_d3();
  auto flow = synth::run_flow(g, synth::Flow::NewMerge);
  TimingOptimizer opt(CellLibrary::tsmc025());
  TimingOptOptions o;
  o.target_ns = 0.0;
  o.max_moves = 200;
  opt.optimize(flow.net, o);
  ASSERT_TRUE(flow.net.validate().empty());
  Rng rng(7);
  std::string why;
  EXPECT_TRUE(synth::verify_netlist(flow.net, g, 24, rng, &why)) << why;
}

TEST(TimingOpt, StopsWhenTargetMet) {
  auto flow = synth::run_flow(designs::make_d1(), synth::Flow::NewMerge);
  Sta sta(CellLibrary::tsmc025());
  const double before = sta.analyze(flow.net).longest_path_ns;
  TimingOptimizer opt(CellLibrary::tsmc025());
  TimingOptOptions o;
  o.target_ns = before * 1.5;  // already met
  const auto res = opt.optimize(flow.net, o);
  EXPECT_TRUE(res.met_target);
  EXPECT_EQ(res.moves, 0);
  EXPECT_EQ(res.initial_area, res.final_area);
}

TEST(TimingOpt, FasterStartNeedsLessWork) {
  // The Table 2 shape: the new-merge netlist (smaller, faster) needs fewer
  // moves than the old-merge netlist to reach the same target.
  const auto g = designs::make_d4();
  auto oldf = synth::run_flow(g, synth::Flow::OldMerge);
  auto newf = synth::run_flow(g, synth::Flow::NewMerge);
  Sta sta(CellLibrary::tsmc025());
  TimingOptimizer opt(CellLibrary::tsmc025());
  TimingOptOptions o;
  // A target between the two initial delays.
  o.target_ns = sta.analyze(newf.net).longest_path_ns * 0.98;
  o.max_moves = 2000;
  const auto r_old = opt.optimize(oldf.net, o);
  const auto r_new = opt.optimize(newf.net, o);
  EXPECT_LE(r_new.moves, r_old.moves);
  EXPECT_LE(r_new.final_ns, r_old.final_ns * 1.05);
}

TEST(TimingOpt, AreaRecoveryGivesBackSizing) {
  auto mk = [] { return synth::run_flow(designs::make_d2(), synth::Flow::NewMerge); };
  Sta sta(CellLibrary::tsmc025());
  TimingOptimizer opt(CellLibrary::tsmc025());
  auto f1 = mk();
  TimingOptOptions o;
  o.target_ns = sta.analyze(f1.net).longest_path_ns * 0.9;
  o.max_moves = 1000;
  o.recover_area = false;
  const auto r1 = opt.optimize(f1.net, o);

  auto f2 = mk();
  o.recover_area = true;
  const auto r2 = opt.optimize(f2.net, o);
  if (r1.met_target && r2.met_target) {
    EXPECT_LE(r2.final_area, r1.final_area);
    EXPECT_LE(r2.final_ns, o.target_ns);
  }
  // Recovery never un-meets the target.
  EXPECT_EQ(r2.met_target, r2.final_ns <= o.target_ns);
}

TEST(TimingOpt, ReportFormats) {
  TimingOptResult r;
  r.initial_ns = 5.0;
  r.final_ns = 4.0;
  r.moves = 3;
  r.met_target = true;
  const auto s = r.to_string();
  EXPECT_NE(s.find("5"), std::string::npos);
  EXPECT_NE(s.find("target met"), std::string::npos);
}

TEST(Sta, CriticalPathEndsAtWorstOutput) {
  auto flow = synth::run_flow(designs::make_d2(), synth::Flow::NewMerge);
  Sta sta(CellLibrary::tsmc025());
  const auto rep = sta.analyze(flow.net);
  ASSERT_FALSE(rep.critical_path.empty());
  const auto last = rep.critical_path.back();
  EXPECT_NEAR(rep.arrival[static_cast<std::size_t>(last.value)],
              rep.longest_path_ns, 1e-12);
  // The path is connected: each net's driver reads the previous net.
  for (std::size_t i = 1; i < rep.critical_path.size(); ++i) {
    const auto* drv = flow.net.driver(rep.critical_path[i]);
    ASSERT_NE(drv, nullptr);
    bool found = false;
    for (auto in : drv->inputs) {
      if (in == rep.critical_path[i - 1]) found = true;
    }
    EXPECT_TRUE(found) << "path hop " << i;
  }
}

TEST(Sta, AreaAccumulatesVariants) {
  netlist::Netlist n;
  netlist::Signal a{{n.new_net()}};
  n.add_input("a", a);
  const auto out = n.inv(a.bit(0));
  n.add_output("r", netlist::Signal{{out}});
  Sta sta(CellLibrary::tsmc025());
  const double base = sta.area(n);
  n.mutable_gates()[0].drive = 2;  // X4
  EXPECT_GT(sta.area(n), base);
}

}  // namespace
}  // namespace dpmerge::opt
