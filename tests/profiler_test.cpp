// Hierarchical profiler (obs/profiler.h): call-tree aggregation from
// synthetic flight-recorder event streams, JSON round-trip, folded stacks,
// and the diff renderer.

#include "dpmerge/obs/profiler.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dpmerge/obs/json.h"

namespace obs = dpmerge::obs;

namespace {

obs::FrEvent ev(std::int64_t ts, obs::FrKind kind, const char* name,
                std::int64_t value = 0, std::uint16_t tid = 1) {
  obs::FrEvent e;
  e.ts_us = ts;
  e.kind = kind;
  e.name = name;
  e.value = value;
  e.tid = tid;
  return e;
}

TEST(ProfilerTest, NestedSpansProduceSelfAndTotal) {
  const std::vector<obs::FrEvent> events = {
      ev(0, obs::FrKind::SpanBegin, "a"),
      ev(10, obs::FrKind::SpanBegin, "b"),
      ev(40, obs::FrKind::SpanEnd, "b", 30),
      ev(100, obs::FrKind::SpanEnd, "a", 100),
  };
  const obs::Profile p = obs::build_profile(events);
  EXPECT_EQ(p.events, 4);
  EXPECT_EQ(p.dropped, 0);

  ASSERT_EQ(p.root.children.size(), 1u);
  const obs::ProfileNode& a = p.root.children[0];
  EXPECT_EQ(a.name, "a");
  EXPECT_EQ(a.count, 1);
  EXPECT_EQ(a.total_us, 100);
  EXPECT_EQ(a.self_us, 70);
  EXPECT_EQ(a.p50_us, 100);
  EXPECT_EQ(a.p99_us, 100);
  const obs::ProfileNode* b = a.child("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->total_us, 30);
  EXPECT_EQ(b->self_us, 30);
  // Root aggregates the top level.
  EXPECT_EQ(p.root.total_us, 100);
}

TEST(ProfilerTest, IdenticalPathsMergeAcrossThreads) {
  const std::vector<obs::FrEvent> events = {
      ev(0, obs::FrKind::SpanBegin, "a", 0, 1),
      ev(1, obs::FrKind::SpanBegin, "a", 0, 2),
      ev(5, obs::FrKind::SpanBegin, "b", 0, 1),
      ev(6, obs::FrKind::SpanBegin, "b", 0, 2),
      ev(15, obs::FrKind::SpanEnd, "b", 10, 1),
      ev(26, obs::FrKind::SpanEnd, "b", 20, 2),
      ev(40, obs::FrKind::SpanEnd, "a", 40, 1),
      ev(61, obs::FrKind::SpanEnd, "a", 60, 2),
  };
  const obs::Profile p = obs::build_profile(events);
  ASSERT_EQ(p.root.children.size(), 1u);
  const obs::ProfileNode& a = p.root.children[0];
  EXPECT_EQ(a.count, 2);
  EXPECT_EQ(a.total_us, 100);
  const obs::ProfileNode* b = a.child("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->count, 2);
  EXPECT_EQ(b->total_us, 30);
  EXPECT_EQ(b->p50_us, 10);
  EXPECT_EQ(b->p99_us, 20);
}

TEST(ProfilerTest, CountersAndMarksAttachToOpenNode) {
  const std::vector<obs::FrEvent> events = {
      ev(0, obs::FrKind::SpanBegin, "stage"),
      ev(1, obs::FrKind::Counter, "stage.rss_delta_kb", 512),
      ev(2, obs::FrKind::Counter, "cells.emitted", 37),
      ev(3, obs::FrKind::Mark, "check.failure:net.verify"),
      ev(9, obs::FrKind::TaskEnd, "pool.task", 7),
      ev(10, obs::FrKind::SpanEnd, "stage", 10),
  };
  const obs::Profile p = obs::build_profile(events);
  ASSERT_EQ(p.root.children.size(), 1u);
  const obs::ProfileNode& stage = p.root.children[0];
  EXPECT_EQ(stage.rss_delta_kb, 512);
  ASSERT_TRUE(stage.counters.count("cells.emitted"));
  EXPECT_EQ(stage.counters.at("cells.emitted"), 37);
  ASSERT_TRUE(stage.counters.count("check.failure:net.verify"));
  EXPECT_EQ(stage.counters.at("check.failure:net.verify"), 1);
  // Pool-task ends are leaf occurrences under the open span.
  const obs::ProfileNode* task = stage.child("pool.task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->count, 1);
  EXPECT_EQ(task->total_us, 7);
}

TEST(ProfilerTest, UnmatchedSpanEndIsAttributedAndCountedDropped) {
  const std::vector<obs::FrEvent> events = {
      ev(5, obs::FrKind::SpanEnd, "evicted", 5),
  };
  const obs::Profile p = obs::build_profile(events);
  EXPECT_EQ(p.dropped, 1);
  ASSERT_EQ(p.root.children.size(), 1u);
  EXPECT_EQ(p.root.children[0].name, "evicted");
  EXPECT_EQ(p.root.children[0].total_us, 5);
}

TEST(ProfilerTest, JsonRoundTripPreservesTree) {
  const std::vector<obs::FrEvent> events = {
      ev(0, obs::FrKind::SpanBegin, "a"),
      ev(10, obs::FrKind::SpanBegin, "b"),
      ev(40, obs::FrKind::SpanEnd, "b", 30),
      ev(100, obs::FrKind::SpanEnd, "a", 100),
      ev(101, obs::FrKind::SpanEnd, "stray", 1),
  };
  const obs::Profile p = obs::build_profile(events);
  std::ostringstream os;
  obs::write_profile_json(os, p);
  std::string err;
  ASSERT_TRUE(obs::json_valid(os.str(), &err)) << err;

  obs::Profile q;
  ASSERT_TRUE(obs::read_profile_json(os.str(), &q, &err)) << err;
  EXPECT_EQ(q.events, p.events);
  EXPECT_EQ(q.dropped, p.dropped);
  ASSERT_EQ(q.root.children.size(), p.root.children.size());
  const obs::ProfileNode* a = q.root.child("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->total_us, 100);
  EXPECT_EQ(a->self_us, 70);
  EXPECT_EQ(a->p99_us, 100);
  const obs::ProfileNode* b = a->child("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->total_us, 30);
}

TEST(ProfilerTest, ZeroTimesOptionZeroesDurationsAndOmitsRegistry) {
  const std::vector<obs::FrEvent> events = {
      ev(0, obs::FrKind::SpanBegin, "a"),
      ev(100, obs::FrKind::SpanEnd, "a", 100),
  };
  std::ostringstream os;
  obs::ProfileJsonOptions opt;
  opt.zero_times = true;
  obs::write_profile_json(os, obs::build_profile(events), opt);
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(os.str(), &doc, &err)) << err;
  EXPECT_EQ(doc.find("registry"), nullptr);
  obs::Profile q;
  ASSERT_TRUE(obs::read_profile_json(os.str(), &q, &err)) << err;
  const obs::ProfileNode* a = q.root.child("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->total_us, 0);
  EXPECT_EQ(a->p99_us, 0);
  EXPECT_EQ(q.peak_rss_mb, 0.0);
}

TEST(ProfilerTest, TextAndFoldedRenderings) {
  const std::vector<obs::FrEvent> events = {
      ev(0, obs::FrKind::SpanBegin, "a"),
      ev(10, obs::FrKind::SpanBegin, "b"),
      ev(40, obs::FrKind::SpanEnd, "b", 30),
      ev(100, obs::FrKind::SpanEnd, "a", 100),
  };
  const obs::Profile p = obs::build_profile(events);

  std::ostringstream text;
  obs::write_profile_text(text, p);
  EXPECT_NE(text.str().find("a"), std::string::npos);
  EXPECT_NE(text.str().find("total"), std::string::npos);

  std::ostringstream folded;
  obs::write_profile_folded(folded, p);
  EXPECT_NE(folded.str().find("a 70\n"), std::string::npos);
  EXPECT_NE(folded.str().find("a;b 30\n"), std::string::npos);
}

TEST(ProfilerTest, DiffRendersPathDeltas) {
  const std::vector<obs::FrEvent> before_ev = {
      ev(0, obs::FrKind::SpanBegin, "a"),
      ev(100, obs::FrKind::SpanEnd, "a", 100),
  };
  const std::vector<obs::FrEvent> after_ev = {
      ev(0, obs::FrKind::SpanBegin, "a"),
      ev(250, obs::FrKind::SpanEnd, "a", 250),
      ev(260, obs::FrKind::SpanBegin, "new_stage"),
      ev(270, obs::FrKind::SpanEnd, "new_stage", 10),
  };
  const std::string diff = obs::profile_diff_text(
      obs::build_profile(before_ev), obs::build_profile(after_ev));
  EXPECT_NE(diff.find("a"), std::string::npos);
  EXPECT_NE(diff.find("+150"), std::string::npos);
  EXPECT_NE(diff.find("new_stage"), std::string::npos);
}

}  // namespace
