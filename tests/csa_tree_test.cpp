#include "dpmerge/synth/csa_tree.h"

#include <gtest/gtest.h>

#include "dpmerge/netlist/sim.h"
#include "dpmerge/support/rng.h"

namespace dpmerge::synth {
namespace {

using netlist::Netlist;
using netlist::Signal;
using netlist::Simulator;

/// Builds a W-bit netlist summing `count` input rows (with per-row negate
/// flags) plus a constant, then checks it against BitVector arithmetic on
/// random stimuli.
void check_sum(int width, const std::vector<bool>& negate,
               std::int64_t constant, AdderArch arch, std::uint64_t seed) {
  Netlist net;
  std::vector<Signal> rows;
  for (std::size_t r = 0; r < negate.size(); ++r) {
    Signal s;
    for (int i = 0; i < width; ++i) s.bits.push_back(net.new_net());
    net.add_input("r" + std::to_string(r), s);
    rows.push_back(s);
  }
  CsaTree tree(net, width);
  for (std::size_t r = 0; r < negate.size(); ++r) {
    tree.add_row(rows[r], negate[r]);
  }
  if (constant != 0) {
    tree.add_constant(BitVector::from_int(width, constant));
  }
  net.add_output("s", tree.reduce_and_sum(arch));
  ASSERT_TRUE(net.validate().empty());

  Simulator sim(net);
  Rng rng(seed);
  for (int t = 0; t < 30; ++t) {
    std::map<std::string, BitVector> stim;
    BitVector expect = BitVector::from_int(width, constant);
    for (std::size_t r = 0; r < negate.size(); ++r) {
      const BitVector v = rng.bits(width);
      stim["r" + std::to_string(r)] = v;
      expect = negate[r] ? expect.sub(v) : expect.add(v);
    }
    ASSERT_EQ(sim.run(stim).at("s"), expect)
        << "w=" << width << " rows=" << negate.size();
  }
}

TEST(CsaTree, TwoRows) { check_sum(8, {false, false}, 0, AdderArch::Ripple, 1); }

TEST(CsaTree, ThreeRowsOneNegated) {
  check_sum(8, {false, true, false}, 0, AdderArch::Ripple, 2);
}

TEST(CsaTree, ManyRows) {
  check_sum(12, std::vector<bool>(9, false), 0, AdderArch::KoggeStone, 3);
}

TEST(CsaTree, AllNegated) {
  check_sum(10, {true, true, true, true}, 0, AdderArch::KoggeStone, 4);
}

TEST(CsaTree, WithConstant) {
  check_sum(9, {false, true}, 37, AdderArch::Ripple, 5);
  check_sum(9, {false, false}, -5, AdderArch::KoggeStone, 6);
}

TEST(CsaTree, SingleRowIsWiring) {
  Netlist net;
  Signal s;
  for (int i = 0; i < 6; ++i) s.bits.push_back(net.new_net());
  net.add_input("a", s);
  CsaTree tree(net, 6);
  tree.add_row(s);
  const Signal out = tree.reduce_and_sum(AdderArch::Ripple);
  net.add_output("s", out);
  EXPECT_EQ(net.gate_count(), 0);  // no compression, no CPA needed
  EXPECT_EQ(tree.stages(), 0);
}

TEST(CsaTree, StagesGrowLogarithmically) {
  // ~log_{3/2}(rows) compression stages.
  Netlist net;
  CsaTree tree(net, 16);
  std::vector<Signal> rows;
  for (int r = 0; r < 16; ++r) {
    Signal s;
    for (int i = 0; i < 16; ++i) s.bits.push_back(net.new_net());
    net.add_input("r" + std::to_string(r), s);
    tree.add_row(s);
  }
  tree.reduce_and_sum(AdderArch::Ripple);
  EXPECT_GE(tree.stages(), 4);
  EXPECT_LE(tree.stages(), 8);
}

TEST(CsaTree, CarryBeyondWidthDrops) {
  // Sum of four all-ones rows mod 2^4.
  check_sum(4, {false, false, false, false}, 0, AdderArch::Ripple, 7);
}

class CsaRandomShapes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsaRandomShapes, RandomRowsAndSigns) {
  Rng rng(GetParam());
  for (int t = 0; t < 5; ++t) {
    const int width = static_cast<int>(rng.uniform(2, 20));
    const int rows = static_cast<int>(rng.uniform(1, 10));
    std::vector<bool> negate;
    for (int r = 0; r < rows; ++r) negate.push_back(rng.chance(0.4));
    const std::int64_t c = rng.uniform(-100, 100);
    check_sum(width, negate, c,
              rng.chance(0.5) ? AdderArch::Ripple : AdderArch::KoggeStone,
              GetParam() * 97 + static_cast<std::uint64_t>(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsaRandomShapes,
                         ::testing::Values(41, 42, 43, 44, 45, 46));

}  // namespace
}  // namespace dpmerge::synth
