#include "dpmerge/synth/flow.h"

#include <gtest/gtest.h>

#include "dpmerge/designs/figures.h"
#include "dpmerge/designs/testcases.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/verify.h"

namespace dpmerge::synth {
namespace {

using dfg::Builder;
using dfg::Graph;
using dfg::Operand;
using netlist::Sta;

void expect_flow_correct(const Graph& g, Flow flow, std::uint64_t seed,
                         const std::string& what,
                         AdderArch arch = AdderArch::KoggeStone) {
  SynthOptions opt;
  opt.adder = arch;
  const FlowResult res = run_flow(g, flow, opt);
  const auto errs = res.net.validate();
  ASSERT_TRUE(errs.empty()) << what << ": " << errs.front();
  Rng rng(seed);
  std::string why;
  // NOTE: verify against the ORIGINAL graph — NewMerge transformed a copy.
  EXPECT_TRUE(verify_netlist(res.net, g, 24, rng, &why))
      << what << " [" << to_string(flow) << "]: " << why;
}

TEST(SynthFlow, SingleAdder) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto s = b.add(9, Operand{a, 9, Sign::Signed},
                       Operand{c, 9, Sign::Signed});
  b.output("r", 9, Operand{s});
  for (Flow f : {Flow::NoMerge, Flow::OldMerge, Flow::NewMerge}) {
    expect_flow_correct(g, f, 500 + static_cast<int>(f), "single adder");
  }
}

TEST(SynthFlow, SingleSubtractAndNeg) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto s = b.sub(9, Operand{a, 9, Sign::Signed},
                       Operand{c, 9, Sign::Signed});
  const auto n = b.neg(10, Operand{s, 10, Sign::Signed});
  b.output("r", 10, Operand{n});
  for (Flow f : {Flow::NoMerge, Flow::OldMerge, Flow::NewMerge}) {
    expect_flow_correct(g, f, 510 + static_cast<int>(f), "sub/neg");
  }
}

class SynthMultiplier
    : public ::testing::TestWithParam<std::tuple<Sign, Sign, int>> {};

TEST_P(SynthMultiplier, ProductCorrect) {
  const auto [sa, sb, w] = GetParam();
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 5, sa);
  const auto c = b.input("c", 4, sb);
  const auto m = b.mul(w, Operand{a, w, sa}, Operand{c, w, sb});
  b.output("r", w, Operand{m});
  for (Flow f : {Flow::NoMerge, Flow::NewMerge}) {
    expect_flow_correct(g, f, 520 + w + static_cast<int>(f), "multiplier");
  }
}

INSTANTIATE_TEST_SUITE_P(
    SignsAndWidths, SynthMultiplier,
    ::testing::Combine(::testing::Values(Sign::Unsigned, Sign::Signed),
                       ::testing::Values(Sign::Unsigned, Sign::Signed),
                       ::testing::Values(6, 9, 12)));

TEST(SynthFlow, FigureGraphsAllFlows) {
  int k = 0;
  for (const Graph& g : {designs::figure1_g2(), designs::figure2_g4(),
                         designs::figure3_g5(), designs::figure4_skewed_sum()}) {
    for (Flow f : {Flow::NoMerge, Flow::OldMerge, Flow::NewMerge}) {
      expect_flow_correct(g, f, 600 + (k++), "figure graph");
    }
  }
}

TEST(SynthFlow, AllTestcasesAllFlowsEquivalent) {
  // The central integration test: every D1..D5 design synthesises to a
  // netlist equivalent to the DFG reference under all three flows.
  for (const auto& tc : designs::all_testcases()) {
    int k = 0;
    for (Flow f : {Flow::NoMerge, Flow::OldMerge, Flow::NewMerge}) {
      expect_flow_correct(tc.graph, f, 700 + (k++), tc.name);
    }
  }
}

TEST(SynthFlow, RippleArchitectureAlsoCorrect) {
  for (const auto& tc : designs::all_testcases()) {
    expect_flow_correct(tc.graph, Flow::NewMerge, 800, tc.name,
                        AdderArch::Ripple);
  }
}

TEST(SynthFlow, QualityOrderOnTestcases) {
  // Shape assertions behind Table 1: the new flow never produces a slower
  // or bigger netlist than the old flow, which never beats the merged flows
  // by area; and cluster counts are monotone.
  Sta sta(netlist::CellLibrary::tsmc025());
  for (const auto& tc : designs::all_testcases()) {
    const auto none = run_flow(tc.graph, Flow::NoMerge);
    const auto old = run_flow(tc.graph, Flow::OldMerge);
    const auto neu = run_flow(tc.graph, Flow::NewMerge);
    const double d_none = sta.analyze(none.net).longest_path_ns;
    const double d_old = sta.analyze(old.net).longest_path_ns;
    const double d_new = sta.analyze(neu.net).longest_path_ns;
    EXPECT_LE(d_new, d_old * 1.001) << tc.name;
    EXPECT_LE(d_old, d_none * 1.001) << tc.name;
    EXPECT_LE(sta.area(neu.net), sta.area(old.net) * 1.001) << tc.name;
    EXPECT_LE(neu.partition.num_clusters(), old.partition.num_clusters())
        << tc.name;
  }
}

TEST(SynthFlow, D4NewMergeDramaticallySmaller) {
  // The D4/D5 story: redundant 32-bit widths collapse, so area shrinks by a
  // large factor versus the old flow.
  Sta sta(netlist::CellLibrary::tsmc025());
  const auto old = run_flow(designs::make_d4(), Flow::OldMerge);
  const auto neu = run_flow(designs::make_d4(), Flow::NewMerge);
  EXPECT_LT(sta.area(neu.net), 0.5 * sta.area(old.net));
}

TEST(SynthFlow, PrepareNewMergeShrinksD4ToContent) {
  // With the Huffman feedback loop, every operator in D4 ends at the true
  // ~10-bit content despite the skewed 32-bit chain.
  dfg::Graph g = designs::make_d4();
  const auto cr = prepare_new_merge(g);
  int max_w = 0;
  for (const auto& n : g.nodes()) {
    if (dfg::is_arith_operator(n.kind)) max_w = std::max(max_w, n.width);
  }
  EXPECT_LE(max_w, 12);
  EXPECT_EQ(cr.partition.num_clusters(), 1);
  Rng rng(4242);
  std::string why;
  EXPECT_TRUE(
      dfg::equivalent_by_simulation(designs::make_d4(), g, 24, rng, &why))
      << why;
}

// Property: random DFGs synthesise correctly under every flow and both
// final-adder architectures.
class SynthRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthRandom, RandomGraphsAllFlows) {
  Rng rng(GetParam());
  for (int t = 0; t < 4; ++t) {
    dfg::RandomGraphOptions ropt;
    ropt.num_operators = 10 + static_cast<int>(rng.uniform(0, 10));
    const Graph g = dfg::random_graph(rng, ropt);
    for (Flow f : {Flow::NoMerge, Flow::OldMerge, Flow::NewMerge}) {
      expect_flow_correct(g, f, GetParam() * 1000 + t, "random graph");
      expect_flow_correct(g, f, GetParam() * 1000 + t + 500, "random graph",
                          AdderArch::Ripple);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthRandom,
                         ::testing::Values(81, 82, 83, 84, 85, 86, 87, 88, 89,
                                           90, 91, 92));

}  // namespace
}  // namespace dpmerge::synth
