#include "dpmerge/transform/rebalance.h"

#include <gtest/gtest.h>

#include "dpmerge/designs/testcases.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/flow.h"

namespace dpmerge::transform {
namespace {

using dfg::Builder;
using dfg::Graph;
using dfg::NodeId;
using dfg::Operand;

Graph skewed_chain(int n_inputs, int width) {
  Graph g;
  Builder b(g);
  NodeId acc = b.input("x0", 8, Sign::Unsigned);
  for (int i = 1; i < n_inputs; ++i) {
    const auto x = b.input("x" + std::to_string(i), 8, Sign::Unsigned);
    acc = b.add(width, Operand{acc, width, Sign::Unsigned},
                Operand{x, width, Sign::Unsigned});
  }
  b.output("y", width, Operand{acc});
  return g;
}

TEST(Rebalance, ChainBecomesLogDepth) {
  const Graph g = skewed_chain(16, 14);
  RebalanceStats st;
  const Graph r = rebalance_clusters(g, &st);
  EXPECT_TRUE(r.validate().empty());
  EXPECT_EQ(st.max_depth_before, 15);
  EXPECT_LE(st.max_depth_after, 5);  // ceil(log2 16) + slack
  EXPECT_EQ(st.clusters_rebuilt, 1);
  Rng rng(1);
  std::string why;
  EXPECT_TRUE(dfg::equivalent_by_simulation(g, r, 32, rng, &why)) << why;
}

TEST(Rebalance, PreservesInterface) {
  const Graph g = designs::make_d3();
  const Graph r = rebalance_clusters(g);
  EXPECT_EQ(r.inputs().size(), g.inputs().size());
  EXPECT_EQ(r.outputs().size(), g.outputs().size());
  for (std::size_t i = 0; i < g.inputs().size(); ++i) {
    EXPECT_EQ(r.name(r.inputs()[i]), g.name(g.inputs()[i]));
    EXPECT_EQ(r.node(r.inputs()[i]).width, g.node(g.inputs()[i]).width);
  }
}

TEST(Rebalance, SubtractionsAndNegations) {
  // y = a - b - c - d + e: signs must survive the re-association.
  Graph g;
  Builder b(g);
  NodeId acc = b.input("a", 8);
  const char* names[] = {"b", "c", "d"};
  for (const char* nm : names) {
    acc = b.sub(12, Operand{acc, 12, Sign::Signed},
                Operand{b.input(nm, 8), 12, Sign::Signed});
  }
  acc = b.add(12, Operand{acc, 12, Sign::Signed},
              Operand{b.input("e", 8), 12, Sign::Signed});
  b.output("y", 12, Operand{acc});
  const Graph r = rebalance_clusters(g);
  EXPECT_TRUE(r.validate().empty());
  Rng rng(2);
  std::string why;
  EXPECT_TRUE(dfg::equivalent_by_simulation(g, r, 48, rng, &why)) << why;
}

TEST(Rebalance, KeepsMultipliersAsLeaves) {
  const Graph g = designs::make_d3();
  const Graph r = rebalance_clusters(g);
  int muls_g = 0, muls_r = 0;
  for (const auto& n : g.nodes()) muls_g += n.kind == dfg::OpKind::Mul;
  for (const auto& n : r.nodes()) muls_r += n.kind == dfg::OpKind::Mul;
  EXPECT_EQ(muls_g, muls_r);
  Rng rng(3);
  std::string why;
  EXPECT_TRUE(dfg::equivalent_by_simulation(g, r, 32, rng, &why)) << why;
}

TEST(Rebalance, ImprovesNoMergeDelayOnSkewedChain) {
  // The motivating use: ahead of a non-merging flow, rebalancing shortens
  // the adder chain from linear to logarithmic depth.
  const Graph g = skewed_chain(16, 14);
  const Graph r = rebalance_clusters(g);
  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  const auto before = synth::run_flow(g, synth::Flow::NoMerge);
  const auto after = synth::run_flow(r, synth::Flow::NoMerge);
  EXPECT_LT(sta.analyze(after.net).longest_path_ns,
            0.5 * sta.analyze(before.net).longest_path_ns);
}

TEST(Rebalance, DesignsStayEquivalent) {
  int seed = 100;
  for (const auto& tc : designs::all_testcases()) {
    const Graph r = rebalance_clusters(tc.graph);
    const auto errs = r.validate();
    ASSERT_TRUE(errs.empty()) << tc.name << ": " << errs.front();
    Rng rng(static_cast<std::uint64_t>(seed++));
    std::string why;
    EXPECT_TRUE(dfg::equivalent_by_simulation(tc.graph, r, 24, rng, &why))
        << tc.name << ": " << why;
  }
}

class RebalanceRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RebalanceRandom, Equivalent) {
  Rng rng(GetParam());
  for (int t = 0; t < 5; ++t) {
    const Graph g = dfg::random_graph(rng);
    const Graph r = rebalance_clusters(g);
    const auto errs = r.validate();
    ASSERT_TRUE(errs.empty()) << errs.front();
    Rng vr(GetParam() * 17 + t);
    std::string why;
    ASSERT_TRUE(dfg::equivalent_by_simulation(g, r, 24, vr, &why)) << why;
    // The Huffman order optimises the information-content bound, not depth,
    // so mixed-width terms can cost a level or two — but never a blowup.
    EXPECT_LE(arith_depth(r), arith_depth(g) + 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebalanceRandom,
                         ::testing::Values(901, 902, 903, 904, 905, 906, 907,
                                           908, 909, 910));

}  // namespace
}  // namespace dpmerge::transform
