#include "dpmerge/support/bitvector.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "dpmerge/support/rng.h"

namespace dpmerge {
namespace {

TEST(BitVector, DefaultIsZeroWidth) {
  BitVector v;
  EXPECT_EQ(v.width(), 0);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.is_zero());
}

TEST(BitVector, FromUintRoundTrip) {
  const auto v = BitVector::from_uint(8, 0xAB);
  EXPECT_EQ(v.width(), 8);
  EXPECT_EQ(v.to_uint64(), 0xABu);
  EXPECT_EQ(v.to_string(), "10101011");
}

TEST(BitVector, FromUintMasksHighBits) {
  const auto v = BitVector::from_uint(4, 0xFF);
  EXPECT_EQ(v.to_uint64(), 0xFu);
}

TEST(BitVector, FromIntNegative) {
  const auto v = BitVector::from_int(8, -1);
  EXPECT_EQ(v.to_uint64(), 0xFFu);
  EXPECT_EQ(v.to_int64(), -1);
}

TEST(BitVector, FromIntNegativeWideVector) {
  const auto v = BitVector::from_int(100, -2);
  EXPECT_EQ(v.to_int64() /* low 64 view */, -2);
  for (int i = 1; i < 100; ++i) EXPECT_TRUE(v.bit(i)) << i;
  EXPECT_FALSE(v.bit(0));
}

TEST(BitVector, FromStringMsbFirst) {
  const auto v = BitVector::from_string("0101");
  EXPECT_EQ(v.width(), 4);
  EXPECT_EQ(v.to_uint64(), 5u);
  EXPECT_THROW(BitVector::from_string("01x1"), std::invalid_argument);
}

TEST(BitVector, PaperExtensionExample) {
  // Definition 2.1's example: the 2-bit signal 11 extended to five bits is
  // 00011 unsigned and 11111 signed.
  const auto v = BitVector::from_string("11");
  EXPECT_EQ(v.extend(5, Sign::Unsigned).to_string(), "00011");
  EXPECT_EQ(v.extend(5, Sign::Signed).to_string(), "11111");
}

TEST(BitVector, SignedExtensionOfPositive) {
  const auto v = BitVector::from_string("011");
  EXPECT_EQ(v.extend(6, Sign::Signed).to_string(), "000011");
}

TEST(BitVector, TruncateKeepsLowBits) {
  const auto v = BitVector::from_string("110101");
  EXPECT_EQ(v.truncate(3).to_string(), "101");
  EXPECT_EQ(v.truncate(0).width(), 0);
  EXPECT_EQ(v.truncate(6), v);
}

TEST(BitVector, ResizeDispatches) {
  const auto v = BitVector::from_string("101");
  EXPECT_EQ(v.resize(2, Sign::Signed).to_string(), "01");
  EXPECT_EQ(v.resize(5, Sign::Signed).to_string(), "11101");
  EXPECT_EQ(v.resize(5, Sign::Unsigned).to_string(), "00101");
  EXPECT_EQ(v.resize(3, Sign::Signed), v);
}

TEST(BitVector, AddWithCarry) {
  const auto a = BitVector::from_uint(8, 0xFF);
  const auto b = BitVector::from_uint(8, 0x01);
  EXPECT_EQ(a.add(b).to_uint64(), 0u);  // wraps mod 2^8
}

TEST(BitVector, AddCarryAcrossWords) {
  auto a = BitVector::from_uint(128, ~std::uint64_t{0});
  const auto one = BitVector::from_uint(128, 1);
  const auto s = a.add(one);
  EXPECT_FALSE(s.bit(63));
  EXPECT_TRUE(s.bit(64));
  for (int i = 0; i < 64; ++i) EXPECT_FALSE(s.bit(i));
}

TEST(BitVector, SubWraps) {
  const auto a = BitVector::from_uint(8, 3);
  const auto b = BitVector::from_uint(8, 5);
  EXPECT_EQ(a.sub(b).to_int64(), -2);
}

TEST(BitVector, MulModular) {
  const auto a = BitVector::from_uint(8, 20);
  const auto b = BitVector::from_uint(8, 13);
  EXPECT_EQ(a.mul(b).to_uint64(), 260u % 256u);
}

TEST(BitVector, MulSignedSemanticsViaTwosComplement) {
  // (-3) * 5 = -15 in 8-bit two's complement.
  const auto a = BitVector::from_int(8, -3);
  const auto b = BitVector::from_int(8, 5);
  EXPECT_EQ(a.mul(b).to_int64(), -15);
}

TEST(BitVector, MulWide) {
  // (2^64 + 3) * (2^64 + 5) mod 2^130 = 2^128 + 8*2^64 + 15.
  auto a = BitVector::from_uint(130, 3);
  a.set_bit(64, true);
  auto b = BitVector::from_uint(130, 5);
  b.set_bit(64, true);
  const auto p = a.mul(b);
  EXPECT_EQ(p.to_uint64(), 15u);
  EXPECT_TRUE(p.bit(67));  // 8 * 2^64
  EXPECT_TRUE(p.bit(128));
  EXPECT_FALSE(p.bit(129));
}

TEST(BitVector, NegateTwosComplement) {
  EXPECT_EQ(BitVector::from_int(8, 7).negate().to_int64(), -7);
  EXPECT_EQ(BitVector::from_int(8, 0).negate().to_int64(), 0);
  // Most negative value negates to itself.
  EXPECT_EQ(BitVector::from_int(8, -128).negate().to_int64(), -128);
}

TEST(BitVector, BitNot) {
  EXPECT_EQ(BitVector::from_string("0101").bit_not().to_string(), "1010");
}

TEST(BitVector, IsExtensionOfLow) {
  const auto pos = BitVector::from_string("00010110");
  EXPECT_TRUE(pos.is_extension_of_low(5, Sign::Unsigned));
  EXPECT_FALSE(pos.is_extension_of_low(4, Sign::Unsigned));
  // Bit 4 is set, so a *signed* reading of the low 5 bits would be negative;
  // one more (zero) bit is needed.
  EXPECT_FALSE(pos.is_extension_of_low(5, Sign::Signed));
  EXPECT_TRUE(pos.is_extension_of_low(6, Sign::Signed));
  // Vacuous full-width claim always holds.
  EXPECT_TRUE(pos.is_extension_of_low(8, Sign::Signed));

  const auto neg = BitVector::from_string("11110110");
  EXPECT_TRUE(neg.is_extension_of_low(5, Sign::Signed));
  EXPECT_FALSE(neg.is_extension_of_low(4, Sign::Signed));
  EXPECT_FALSE(neg.is_extension_of_low(5, Sign::Unsigned));
}

TEST(BitVector, MinExtensionWidth) {
  EXPECT_EQ(BitVector::from_string("00010110").min_extension_width(Sign::Unsigned), 5);
  EXPECT_EQ(BitVector::from_string("00010110").min_extension_width(Sign::Signed), 6);
  EXPECT_EQ(BitVector::from_string("11110110").min_extension_width(Sign::Signed), 5);
  EXPECT_EQ(BitVector::from_string("11110110").min_extension_width(Sign::Unsigned), 8);
  EXPECT_EQ(BitVector::from_string("0000").min_extension_width(Sign::Unsigned), 0);
  EXPECT_EQ(BitVector::from_string("1111").min_extension_width(Sign::Signed), 1);
}

TEST(BitVector, Comparisons) {
  const auto a = BitVector::from_int(8, -1);
  const auto b = BitVector::from_int(8, 1);
  EXPECT_TRUE(a.signed_lt(b));
  EXPECT_FALSE(b.signed_lt(a));
  EXPECT_TRUE(b.unsigned_lt(a));  // 0xFF > 0x01 unsigned
  EXPECT_FALSE(a.unsigned_lt(a));
}

// Property sweep: modular arithmetic on BitVector agrees with native 64-bit
// arithmetic truncated to the same width, across widths and random values.
class BitVectorArithProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitVectorArithProperty, MatchesNativeArithmetic) {
  const int w = GetParam();
  Rng rng(static_cast<std::uint64_t>(w) * 7919);
  const std::uint64_t mask =
      w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t x = rng.next_u64() & mask;
    const std::uint64_t y = rng.next_u64() & mask;
    const auto bx = BitVector::from_uint(w, x);
    const auto by = BitVector::from_uint(w, y);
    EXPECT_EQ(bx.add(by).to_uint64(), (x + y) & mask);
    EXPECT_EQ(bx.sub(by).to_uint64(), (x - y) & mask);
    EXPECT_EQ(bx.mul(by).to_uint64(), (x * y) & mask);
    EXPECT_EQ(bx.negate().to_uint64(), (~x + 1) & mask);
    EXPECT_EQ(bx.unsigned_lt(by), x < y);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorArithProperty,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 16, 31, 32, 33,
                                           48, 63, 64));

// Property: extension then truncation round-trips; min_extension_width is
// minimal and valid.
class BitVectorExtensionProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitVectorExtensionProperty, ExtensionInvariants) {
  const int w = GetParam();
  Rng rng(static_cast<std::uint64_t>(w) * 104729);
  for (int t = 0; t < 100; ++t) {
    const BitVector v = rng.bits(w);
    for (Sign s : {Sign::Unsigned, Sign::Signed}) {
      const auto e = v.extend(w + 5, s);
      EXPECT_EQ(e.truncate(w), v);
      EXPECT_TRUE(e.is_extension_of_low(w, s));
      const int m = v.min_extension_width(s);
      EXPECT_TRUE(v.is_extension_of_low(m, s));
      if (m > 0) {
        EXPECT_FALSE(v.is_extension_of_low(m - 1, s));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorExtensionProperty,
                         ::testing::Values(1, 4, 9, 17, 64, 70, 128));

}  // namespace
}  // namespace dpmerge
