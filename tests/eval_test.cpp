#include "dpmerge/dfg/eval.h"

#include <gtest/gtest.h>

#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/random_graph.h"

namespace dpmerge::dfg {
namespace {

// Helper: run a single-output graph on int64 inputs, return the output as
// int64 (signed interpretation).
std::int64_t run1(const Graph& g, std::vector<std::int64_t> ins) {
  Evaluator ev(g);
  std::vector<BitVector> stim;
  const auto inputs = g.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    stim.push_back(BitVector::from_int(g.node(inputs[i]).width, ins[i]));
  }
  return ev.run_outputs(stim).at(0).to_int64();
}

TEST(Evaluator, AddTruncatesToNodeWidth) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto s = b.add(8, {a}, {c});
  b.output("r", 8, {s});
  EXPECT_EQ(run1(g, {100, 100}), static_cast<std::int8_t>(200));
}

TEST(Evaluator, SignedExtensionOnEdges) {
  // 4-bit inputs sign-extended into a 9-bit adder: exact signed sum.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto c = b.input("c", 4);
  const auto s = b.add(9, {a, 9, Sign::Signed}, {c, 9, Sign::Signed});
  b.output("r", 9, {s});
  EXPECT_EQ(run1(g, {-8, -8}), -16);
  EXPECT_EQ(run1(g, {7, 7}), 14);
}

TEST(Evaluator, UnsignedExtensionOnEdges) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto c = b.input("c", 4);
  const auto s = b.add(9, {a, 9, Sign::Unsigned}, {c, 9, Sign::Unsigned});
  b.output("r", 9, {s});
  // -1 as a 4-bit pattern is 15 when zero-extended.
  EXPECT_EQ(run1(g, {-1, -1}), 30);
}

TEST(Evaluator, TruncateThenSignExtend) {
  // The Figure 1 bottleneck in miniature: a 9-bit sum truncated to 7 bits on
  // the edge, then sign-extended to 9 bits at the consumer.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto e = b.input("e", 8);
  const auto n1 = b.add(9, {a, 9, Sign::Signed}, {c, 9, Sign::Signed});
  const auto n3 = b.add(9, {n1, 7, Sign::Signed}, {e, 9, Sign::Signed});
  b.output("r", 9, {n3});
  // a + c = 80: fits 8 bits, but truncation to 7 bits gives 80 - 128 = -48
  // after sign extension. r = -48 + 1 = -47.
  EXPECT_EQ(run1(g, {40, 40, 1}), -47);
  // Within 7-bit range nothing is lost: 20 + 20 + 1 = 41.
  EXPECT_EQ(run1(g, {10, 10, 1}), 21);
}

TEST(Evaluator, SubAndNeg) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto d = b.sub(9, {a, 9, Sign::Signed}, {c, 9, Sign::Signed});
  const auto n = b.neg(10, {d, 10, Sign::Signed});
  b.output("r", 10, {n});
  EXPECT_EQ(run1(g, {3, 10}), 7);
  EXPECT_EQ(run1(g, {-100, 100}), 200);
}

TEST(Evaluator, MulSignedOperands) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto c = b.input("c", 4);
  const auto m = b.mul(8, {a, 8, Sign::Signed}, {c, 8, Sign::Signed});
  b.output("r", 8, {m});
  EXPECT_EQ(run1(g, {-8, 7}), -56);
  EXPECT_EQ(run1(g, {-8, -8}), 64);
}

TEST(Evaluator, MulUnsignedOperands) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto c = b.input("c", 4);
  const auto m = b.mul(8, {a, 8, Sign::Unsigned}, {c, 8, Sign::Unsigned});
  b.output("r", 8, {m});
  EXPECT_EQ(run1(g, {-1, -1}), static_cast<std::int64_t>(
                                   static_cast<std::int8_t>(15 * 15)));
}

TEST(Evaluator, ConstParticipates) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto k = b.constant(8, 5);
  const auto m = b.mul(12, {a, 12, Sign::Signed}, {k, 12, Sign::Signed});
  b.output("r", 12, {m});
  EXPECT_EQ(run1(g, {-7}), -35);
}

TEST(Evaluator, ExtensionNodeSemantics) {
  // Definition 5.5(i): widening extension governed by <w(N), t(N)>.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto e = b.extension(9, Sign::Signed, {a});
  b.output("r", 9, {e});
  EXPECT_EQ(run1(g, {-3}), -3);

  // Definition 5.5(ii): truncating "extension".
  Graph g2;
  Builder b2(g2);
  const auto a2 = b2.input("a", 8);
  const auto e2 = b2.extension(3, Sign::Signed, {a2});
  b2.output("r", 3, {e2});
  EXPECT_EQ(run1(g2, {0b101101}), run1(g2, {0b101}));
}

TEST(Evaluator, OutputTruncation) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto s = b.add(9, {a, 9, Sign::Signed}, {c, 9, Sign::Signed});
  b.output("r", 5, {s, 5, Sign::Signed});
  EXPECT_EQ(run1(g, {9, 9}), -14);  // 18 mod 2^5, signed view
}

TEST(Evaluator, StimulusValidation) {
  const Graph g = [] {
    Graph g;
    Builder b(g);
    const auto a = b.input("a", 8);
    b.output("r", 8, {a});
    return g;
  }();
  Evaluator ev(g);
  EXPECT_THROW(ev.run({}), std::invalid_argument);
  EXPECT_THROW(ev.run({BitVector::from_uint(4, 1)}), std::invalid_argument);
}

TEST(Evaluator, EquivalenceDetectsDifference) {
  Graph g1;
  {
    Builder b(g1);
    const auto a = b.input("a", 8);
    b.output("r", 8, {a});
  }
  Graph g2;
  {
    Builder b(g2);
    const auto a = b.input("a", 8);
    const auto n = b.neg(8, {a});
    b.output("r", 8, {n});
  }
  Rng rng(1);
  std::string why;
  EXPECT_FALSE(equivalent_by_simulation(g1, g2, 8, rng, &why));
  EXPECT_FALSE(why.empty());
}

TEST(Evaluator, EquivalenceToleratesNodeReordering) {
  // Same function, inputs declared in a different order.
  Graph g1;
  {
    Builder b(g1);
    const auto a = b.input("a", 8);
    const auto c = b.input("c", 8);
    const auto s = b.sub(9, {a, 9, Sign::Signed}, {c, 9, Sign::Signed});
    b.output("r", 9, {s});
  }
  Graph g2;
  {
    Builder b(g2);
    const auto c = b.input("c", 8);
    const auto a = b.input("a", 8);
    const auto s = b.sub(9, {a, 9, Sign::Signed}, {c, 9, Sign::Signed});
    b.output("r", 9, {s});
  }
  Rng rng(2);
  EXPECT_TRUE(equivalent_by_simulation(g1, g2, 16, rng));
}

TEST(Evaluator, RandomGraphsEvaluateDeterministically) {
  Rng rng(11);
  for (int t = 0; t < 10; ++t) {
    const Graph g = random_graph(rng);
    Evaluator ev(g);
    const auto stim = ev.random_inputs(rng);
    const auto r1 = ev.run(stim);
    const auto r2 = ev.run(stim);
    EXPECT_EQ(r1.size(), r2.size());
    for (std::size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i], r2[i]);
  }
}

}  // namespace
}  // namespace dpmerge::dfg
