// Scalable workload generators (designs/scale.h): structural validity,
// determinism, node-count scaling, and the connected-components utility
// the partition-parallel driver shards on.

#include <gtest/gtest.h>

#include "dpmerge/cluster/partition.h"
#include "dpmerge/designs/scale.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/support/rng.h"

namespace dpmerge {
namespace {

using dfg::Graph;

TEST(ScaleDesignsTest, GeneratorsProduceValidGraphs) {
  EXPECT_TRUE(designs::layered_network(10, 12, 16).validate().empty());
  EXPECT_TRUE(designs::fir(16, 12).validate().empty());
  EXPECT_TRUE(designs::dct_bank(5, 12).validate().empty());
  EXPECT_TRUE(designs::matmul(4, 12).validate().empty());
}

TEST(ScaleDesignsTest, GeneratorsAreDeterministic) {
  const Graph a = designs::layered_network(8, 10, 16, 99);
  const Graph b = designs::layered_network(8, 10, 16, 99);
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.to_dot(), b.to_dot());
  const Graph f1 = designs::fir(32, 10);
  const Graph f2 = designs::fir(32, 10);
  EXPECT_EQ(f1.to_dot(), f2.to_dot());
}

TEST(ScaleDesignsTest, NodeCountsScaleWithParameters) {
  // layered: layers * layer_width operators plus inputs/outputs.
  const Graph lay = designs::layered_network(20, 30, 16);
  EXPECT_GE(lay.node_count(), 20 * 30);
  // fir(t): t inputs + t consts + t muls + (t-1) adds + 1 output.
  const Graph f = designs::fir(64, 12);
  EXPECT_EQ(f.node_count(), 64 * 4);
  // matmul(n): 2n^2 inputs + n^3 muls + n^2 (n-1) adds + n^2 outputs.
  const int n = 5;
  const Graph m = designs::matmul(n, 12);
  EXPECT_EQ(m.node_count(), 2 * n * n + n * n * n + n * n * (n - 1) + n * n);
}

TEST(ScaleDesignsTest, SuiteLandsNearTarget) {
  for (const int target : {1000, 10000}) {
    const auto suite = designs::scale_suite(target);
    ASSERT_EQ(suite.size(), 4u);
    for (const auto& d : suite) {
      EXPECT_TRUE(d.graph.validate().empty()) << d.name;
      // Within a factor of two of the target (parameter rounding).
      EXPECT_GE(d.graph.node_count(), target / 2) << d.name;
      EXPECT_LE(d.graph.node_count(), target * 2) << d.name;
      // Name embeds the realised node count.
      EXPECT_NE(d.name.find(std::to_string(d.graph.node_count())),
                std::string::npos)
          << d.name;
    }
  }
}

TEST(ScaleDesignsTest, FirComputesAWeightedSum) {
  // Functional sanity: fir output with one-hot stimulus equals the (sign-
  // extended) coefficient of the hot tap, so each tap is really wired to
  // its own coefficient.
  const Graph f = designs::fir(4, 8);
  dfg::Evaluator ev(f);
  const auto ins = f.inputs();
  ASSERT_EQ(ins.size(), 4u);
  std::vector<BitVector> stim;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    stim.push_back(BitVector::from_int(8, 0));
  }
  const auto zero_out = ev.run_outputs(stim);
  ASSERT_EQ(zero_out.size(), 1u);
  EXPECT_EQ(zero_out[0].to_int64(), 0);
  std::int64_t sum = 0;
  for (std::size_t hot = 0; hot < ins.size(); ++hot) {
    auto s = stim;
    s[hot] = BitVector::from_int(8, 1);
    const auto out = ev.run_outputs(s);
    sum += out[0].to_int64();
    EXPECT_NE(out[0].to_int64(), 0) << "tap " << hot << " has a zero coeff";
  }
  // All-ones stimulus equals the sum of the per-tap responses (linearity).
  auto all = stim;
  for (auto& v : all) v = BitVector::from_int(8, 1);
  EXPECT_EQ(ev.run_outputs(all)[0].to_int64(), sum);
}

TEST(ScaleDesignsTest, ConnectedComponents) {
  // Two disjoint adders -> two components; labels dense and deterministic.
  Graph g;
  dfg::Builder b(g);
  const auto x0 = b.input("x0", 8);
  const auto y0 = b.input("y0", 8);
  b.output("o0", 9, dfg::Operand{b.add(9, {x0}, {y0})});
  const auto x1 = b.input("x1", 8);
  const auto y1 = b.input("y1", 8);
  b.output("o1", 9, dfg::Operand{b.add(9, {x1}, {y1})});
  const auto cc = cluster::connected_components(g);
  EXPECT_EQ(cc.count, 2);
  EXPECT_EQ(cc.component[0], 0);  // first adder's tree
  EXPECT_EQ(cc.component[static_cast<std::size_t>(x1.value)], 1);

  // A DCT bank shares its inputs across rows: one component.
  const Graph d = designs::dct_bank(6, 10);
  EXPECT_EQ(cluster::connected_components(d).count, 1);
}

}  // namespace
}  // namespace dpmerge
