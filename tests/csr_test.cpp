// Graph::freeze() CSR view: fanin/fanout round-trip against the edge list,
// topo-order identity with Graph::topo_order(), level-structure invariants,
// cache-invalidation semantics, name interning and reserve().

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/graph.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/support/rng.h"

namespace dpmerge::dfg {
namespace {

Graph sample_graph(std::uint64_t seed, int ops = 60) {
  Rng rng(seed);
  RandomGraphOptions opt;
  opt.num_operators = ops;
  return random_graph(rng, opt);
}

TEST(CsrTest, FanoutRoundTripsEdgeList) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = sample_graph(seed);
    const Csr& c = g.freeze();
    ASSERT_EQ(c.num_nodes, g.node_count());
    ASSERT_EQ(c.num_edges, g.edge_count());
    for (const Node& n : g.nodes()) {
      const auto out = c.out(n.id);
      ASSERT_EQ(out.size(), n.out.size());
      // Fanout keeps the Node::out insertion order.
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], n.out[i].value);
        EXPECT_EQ(g.edge(EdgeId{out[i]}).src, n.id);
      }
    }
  }
}

TEST(CsrTest, FaninIsPortOrdered) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = sample_graph(seed);
    const Csr& c = g.freeze();
    for (const Node& n : g.nodes()) {
      const auto in = c.in(n.id);
      // The CSR fanin is the valid entries of Node::in, in port order.
      std::vector<std::int32_t> want;
      for (EdgeId e : n.in) {
        if (e.valid()) want.push_back(e.value);
      }
      ASSERT_EQ(in.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(in[i], want[i]);
        EXPECT_EQ(g.edge(EdgeId{in[i]}).dst, n.id);
      }
    }
  }
}

TEST(CsrTest, EveryEdgeAppearsExactlyOnceEachSide) {
  const Graph g = sample_graph(7, 120);
  const Csr& c = g.freeze();
  std::multiset<std::int32_t> outs(c.out_edges.begin(), c.out_edges.end());
  std::multiset<std::int32_t> ins(c.in_edges.begin(), c.in_edges.end());
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(outs.count(e.id.value), 1u) << "edge " << e.id.value;
    EXPECT_EQ(ins.count(e.id.value), 1u) << "edge " << e.id.value;
  }
}

TEST(CsrTest, TopoIdenticalToGraphTopoOrder) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = sample_graph(seed);
    EXPECT_EQ(g.freeze().topo, g.topo_order());
  }
}

TEST(CsrTest, LevelsRespectEdges) {
  const Graph g = sample_graph(3, 150);
  const Csr& c = g.freeze();
  for (const Edge& e : g.edges()) {
    EXPECT_LT(c.level[static_cast<std::size_t>(e.src.value)],
              c.level[static_cast<std::size_t>(e.dst.value)]);
    EXPECT_GT(c.rlevel[static_cast<std::size_t>(e.src.value)],
              c.rlevel[static_cast<std::size_t>(e.dst.value)]);
  }
  // Level buckets cover every node once, ascending node id within a level.
  std::size_t covered = 0;
  for (int l = 0; l < c.num_levels(); ++l) {
    const auto lv = c.level_span(l);
    covered += lv.size();
    for (std::size_t i = 0; i + 1 < lv.size(); ++i) {
      EXPECT_LT(lv[i].value, lv[i + 1].value);
    }
    for (NodeId v : lv) {
      EXPECT_EQ(c.level[static_cast<std::size_t>(v.value)], l);
    }
  }
  EXPECT_EQ(covered, static_cast<std::size_t>(g.node_count()));
}

TEST(CsrTest, CacheInvalidationSemantics) {
  Graph g;
  Builder b(g);
  const NodeId x = b.input("x", 8);
  const NodeId y = b.input("y", 8);
  const NodeId s = b.add(9, Operand{x}, Operand{y});
  b.output("o", 9, Operand{s});

  const Csr& c1 = g.freeze();
  const std::uint64_t v1 = g.structure_version();
  // Attribute mutations do not invalidate the frozen view.
  g.set_node_width(s, 10);
  g.set_edge_width(g.node(s).in[0], 10);
  EXPECT_EQ(g.structure_version(), v1);
  const std::size_t topo_before = c1.topo.size();

  // Structural mutation bumps the version and rebuilds on the next freeze.
  const NodeId z = b.input("z", 4);
  b.output("oz", 4, Operand{z});
  EXPECT_GT(g.structure_version(), v1);
  const Csr& c2 = g.freeze();
  EXPECT_EQ(c2.topo.size(), topo_before + 2);
  EXPECT_TRUE(g.validate().empty());
}

TEST(CsrTest, TopoOrderIntoReusesScratch) {
  TopoScratch scratch;
  std::vector<NodeId> order;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = sample_graph(seed);
    g.topo_order_into(order, scratch);
    EXPECT_EQ(order, g.topo_order());
  }
}

TEST(CsrTest, NameInterningDeduplicatesAndRoundTrips) {
  Graph g;
  const NodeId a = g.add_node(OpKind::Input, 8, "same");
  const NodeId bb = g.add_node(OpKind::Input, 8, "same");
  const NodeId c = g.add_node(OpKind::Input, 8, "other");
  const NodeId anon = g.add_node(OpKind::Add, 8);
  EXPECT_EQ(g.name(a), "same");
  EXPECT_EQ(g.name(bb), "same");
  EXPECT_EQ(g.node(a).name_id, g.node(bb).name_id);
  EXPECT_EQ(g.name(c), "other");
  EXPECT_NE(g.node(c).name_id, g.node(a).name_id);
  EXPECT_EQ(g.node(anon).name_id, -1);
  EXPECT_EQ(g.name(anon), "");
}

TEST(CsrTest, ReservePreservesBehaviour) {
  Graph g;
  g.reserve(100, 200);
  Builder b(g);
  std::vector<NodeId> prev{b.input("x", 8)};
  for (int i = 0; i < 40; ++i) {
    prev.push_back(b.add(9, Operand{prev.back()}, Operand{prev.front()}));
  }
  b.output("o", 9, Operand{prev.back()});
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(g.freeze().topo, g.topo_order());
}

}  // namespace
}  // namespace dpmerge::dfg
