#include "dpmerge/netlist/netlist.h"

#include <gtest/gtest.h>

#include "dpmerge/netlist/sim.h"
#include "dpmerge/support/rng.h"

namespace dpmerge::netlist {
namespace {

TEST(Cell, InputCounts) {
  EXPECT_EQ(cell_input_count(CellType::INV), 1);
  EXPECT_EQ(cell_input_count(CellType::BUF), 1);
  EXPECT_EQ(cell_input_count(CellType::NAND2), 2);
  EXPECT_EQ(cell_input_count(CellType::MUX2), 3);
}

TEST(Cell, TruthTables) {
  EXPECT_TRUE(eval_cell(CellType::INV, {false}));
  EXPECT_FALSE(eval_cell(CellType::INV, {true}));
  EXPECT_TRUE(eval_cell(CellType::NAND2, {true, false}));
  EXPECT_FALSE(eval_cell(CellType::NAND2, {true, true}));
  EXPECT_TRUE(eval_cell(CellType::XOR2, {true, false}));
  EXPECT_FALSE(eval_cell(CellType::XOR2, {true, true}));
  EXPECT_TRUE(eval_cell(CellType::XNOR2, {true, true}));
  EXPECT_TRUE(eval_cell(CellType::MUX2, {false, true, true}));
  EXPECT_FALSE(eval_cell(CellType::MUX2, {false, true, false}));
}

TEST(Cell, LibraryVariantsScale) {
  const auto& lib = CellLibrary::tsmc025();
  for (CellType t : {CellType::INV, CellType::NAND2, CellType::XOR2}) {
    const auto& x1 = lib.variant(t, 0);
    const auto& x4 = lib.variant(t, 2);
    EXPECT_LT(x4.drive_res_ns, x1.drive_res_ns);  // stronger drive
    EXPECT_GT(x4.area, x1.area);                  // costs area
    EXPECT_GT(x4.input_cap, x1.input_cap);        // loads its driver more
  }
}

TEST(Netlist, ConstantFolding) {
  Netlist n;
  const NetId a = n.new_net();
  EXPECT_EQ(n.and2(a, n.const0()), n.const0());
  EXPECT_EQ(n.and2(a, n.const1()), a);
  EXPECT_EQ(n.or2(a, n.const1()), n.const1());
  EXPECT_EQ(n.or2(a, n.const0()), a);
  EXPECT_EQ(n.xor2(a, n.const0()), a);
  EXPECT_EQ(n.xor2(a, a), n.const0());
  EXPECT_EQ(n.inv(n.const0()), n.const1());
  EXPECT_EQ(n.mux2(a, a, n.new_net()), a);
  EXPECT_EQ(n.gate_count(), 0);  // everything folded
  const NetId b = n.xor2(a, n.const1());
  EXPECT_FALSE(n.is_const(b));
  EXPECT_EQ(n.gate_count(), 1);  // one INV
  EXPECT_EQ(n.gates()[0].type, CellType::INV);
}

TEST(Netlist, FullAdderWithConstantsIsFree) {
  Netlist n;
  const NetId x = n.new_net();
  auto [sum, carry] = n.full_adder(n.const1(), n.const1(), x);
  EXPECT_EQ(sum, x);
  EXPECT_EQ(carry, n.const1());
  EXPECT_EQ(n.gate_count(), 0);
}

TEST(Netlist, ResizeSignal) {
  Netlist n;
  Signal s;
  for (int i = 0; i < 4; ++i) s.bits.push_back(n.new_net());
  const Signal ext = n.resize(s, 7, Sign::Signed);
  EXPECT_EQ(ext.width(), 7);
  EXPECT_EQ(ext.bit(6), s.msb());  // replicated sign net
  const Signal zext = n.resize(s, 7, Sign::Unsigned);
  EXPECT_EQ(zext.bit(6), n.const0());
  const Signal tr = n.resize(s, 2, Sign::Signed);
  EXPECT_EQ(tr.width(), 2);
  EXPECT_EQ(tr.bit(1), s.bit(1));
  EXPECT_EQ(n.gate_count(), 0);  // resizing is pure wiring
}

TEST(Netlist, InvertSharesSignInverter) {
  Netlist n;
  Signal s;
  for (int i = 0; i < 3; ++i) s.bits.push_back(n.new_net());
  const Signal ext = n.resize(s, 8, Sign::Signed);
  const Signal inv = n.invert(ext);
  // 3 distinct nets + 1 shared fill → 3 inverters, not 8... the fill net is
  // the msb itself, so bits 2..7 share one inverter.
  EXPECT_EQ(n.gate_count(), 3);
  for (int i = 3; i < 8; ++i) EXPECT_EQ(inv.bit(i), inv.bit(2));
}

TEST(Netlist, ValidateCatchesFloatingInput) {
  Netlist n;
  const NetId stray = n.new_net();
  n.add_gate(CellType::INV, {stray});
  EXPECT_FALSE(n.validate().empty());

  Netlist ok;
  Signal in;
  in.bits.push_back(ok.new_net());
  ok.add_input("a", in);
  Signal out;
  out.bits.push_back(ok.inv(in.bit(0)));
  ok.add_output("r", out);
  EXPECT_TRUE(ok.validate().empty());
}

TEST(Netlist, TopoGatesRespectsDependencies) {
  Netlist n;
  const NetId a = n.new_net();
  Signal in{{a}};
  n.add_input("a", in);
  const NetId b = n.inv(a);
  const NetId c = n.inv(b);
  const NetId d = n.and2(b, c);
  Signal out{{d}};
  n.add_output("r", out);
  const auto order = n.topo_gates();
  ASSERT_EQ(order.size(), 3u);
  std::vector<int> pos(static_cast<std::size_t>(n.gate_count()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i].value)] = static_cast<int>(i);
  }
  for (const Gate& g : n.gates()) {
    for (NetId gin : g.inputs) {
      const Gate* drv = n.driver(gin);
      if (drv) {
        EXPECT_LT(pos[static_cast<std::size_t>(drv->id.value)],
                  pos[static_cast<std::size_t>(g.id.value)]);
      }
    }
  }
}

TEST(Simulator, FullAdderTruthTable) {
  Netlist n;
  Signal a{{n.new_net()}}, b{{n.new_net()}}, c{{n.new_net()}};
  n.add_input("a", a);
  n.add_input("b", b);
  n.add_input("c", c);
  auto [sum, carry] = n.full_adder(a.bit(0), b.bit(0), c.bit(0));
  n.add_output("s", Signal{{sum}});
  n.add_output("co", Signal{{carry}});
  Simulator sim(n);
  for (int v = 0; v < 8; ++v) {
    const bool ba = v & 1, bb = v & 2, bc = v & 4;
    const auto out = sim.run({{"a", BitVector::from_uint(1, ba)},
                              {"b", BitVector::from_uint(1, bb)},
                              {"c", BitVector::from_uint(1, bc)}});
    const int total = ba + bb + bc;
    EXPECT_EQ(out.at("s").to_uint64(), static_cast<unsigned>(total & 1));
    EXPECT_EQ(out.at("co").to_uint64(), static_cast<unsigned>(total >> 1));
  }
}

TEST(Simulator, MissingStimulusThrows) {
  Netlist n;
  Signal a{{n.new_net()}};
  n.add_input("a", a);
  n.add_output("r", a);
  Simulator sim(n);
  EXPECT_THROW(sim.run(std::map<std::string, BitVector>{}),
               std::invalid_argument);
  EXPECT_THROW(sim.run({{"a", BitVector::from_uint(3, 1)}}),
               std::invalid_argument);
  // Positional form: count and width are validated too.
  EXPECT_THROW(sim.run(std::vector<BitVector>{}), std::invalid_argument);
  EXPECT_THROW(sim.run(std::vector<BitVector>{BitVector::from_uint(3, 1)}),
               std::invalid_argument);
}

TEST(Simulator, PositionalRunMatchesNamed) {
  Netlist n;
  Signal a{{n.new_net(), n.new_net()}}, b{{n.new_net(), n.new_net()}};
  n.add_input("a", a);
  n.add_input("b", b);
  Signal x;
  for (int i = 0; i < 2; ++i) x.bits.push_back(n.xor2(a.bit(i), b.bit(i)));
  n.add_output("x", x);
  Simulator sim(n);
  for (unsigned va = 0; va < 4; ++va) {
    for (unsigned vb = 0; vb < 4; ++vb) {
      const auto named = sim.run({{"a", BitVector::from_uint(2, va)},
                                  {"b", BitVector::from_uint(2, vb)}});
      const auto pos = sim.run(std::vector<BitVector>{
          BitVector::from_uint(2, va), BitVector::from_uint(2, vb)});
      ASSERT_EQ(pos.size(), 1u);
      EXPECT_EQ(pos[0], named.at("x"));
    }
  }
}

}  // namespace
}  // namespace dpmerge::netlist
