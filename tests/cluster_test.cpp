#include "dpmerge/cluster/clusterer.h"

#include <gtest/gtest.h>

#include <set>

#include "dpmerge/cluster/flatten.h"
#include "dpmerge/designs/figures.h"
#include "dpmerge/designs/testcases.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/transform/width_prune.h"

namespace dpmerge::cluster {
namespace {

using dfg::Builder;
using dfg::Graph;
using dfg::NodeId;
using dfg::Operand;

int cluster_of(const Partition& p, NodeId n) { return p.index_of(n); }

TEST(Clustering, Figure1TwoClusters) {
  // G2 partitions into G_I = {N1} and G_II = {N2, N3, N4} (Figure 1b).
  Graph g = designs::figure1_g2();
  const auto res = cluster_maximal(g);
  const auto f = designs::figure_nodes(g);
  EXPECT_EQ(res.partition.num_clusters(), 2);
  EXPECT_TRUE(validate_partition(g, res.partition).empty());
  EXPECT_NE(cluster_of(res.partition, f.n1), cluster_of(res.partition, f.n3));
  EXPECT_EQ(cluster_of(res.partition, f.n2), cluster_of(res.partition, f.n3));
  EXPECT_EQ(cluster_of(res.partition, f.n3), cluster_of(res.partition, f.n4));
}

TEST(Clustering, Figure2FullyMergeableAfterRpPrune) {
  // G4: required-precision pruning makes the whole graph one cluster.
  Graph g = designs::figure2_g4();
  transform::normalize_widths(g);
  const auto res = cluster_maximal(g);
  EXPECT_EQ(res.partition.num_clusters(), 1);
  EXPECT_EQ(res.partition.clusters[0].size(), 4);
}

TEST(Clustering, Figure2MergesEvenWithoutTransform) {
  // The break conditions consume required precision directly, so the 5-bit
  // output already dissolves N1's boundary before any width rewriting; the
  // transform's role is shrinking the operators (Theorem 4.2), not this.
  Graph g = designs::figure2_g4();
  const auto res = cluster_maximal(g);
  EXPECT_EQ(res.partition.num_clusters(), 1);
  const auto f = designs::figure_nodes(g);
  EXPECT_EQ(g.node(f.n3).width, 9);  // untouched widths
}

TEST(Clustering, Figure3FullyMergeable) {
  // G5: information content dissolves the apparent e7 boundary.
  Graph g = designs::figure3_g5();
  transform::normalize_widths(g);
  const auto res = cluster_maximal(g);
  EXPECT_EQ(res.partition.num_clusters(), 1);
  EXPECT_EQ(res.partition.clusters[0].size(), 4);
}

TEST(Clustering, Figure3OldAlgorithmSplitsAtE7) {
  // The width-only baseline breaks at N3 (sign-extension of an apparently
  // truncated 8-bit sum).
  const Graph g = designs::figure3_g5();
  const auto p = cluster_leakage(g);
  const auto f = designs::figure_nodes(g);
  EXPECT_EQ(p.num_clusters(), 2);
  EXPECT_NE(cluster_of(p, f.n3), cluster_of(p, f.n4));
  EXPECT_TRUE(validate_partition(g, p).empty());
}

TEST(Clustering, NoMergeIsOnePerOperator) {
  const Graph g = designs::figure1_g2();
  const auto p = cluster_none(g);
  EXPECT_EQ(p.num_clusters(), 4);
  for (const auto& c : p.clusters) EXPECT_EQ(c.size(), 1);
}

TEST(Clustering, MultiplierOperandsBreak) {
  // Synthesizability Condition 1: adders feeding a multiplier cannot merge
  // with it.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto c = b.input("c", 4);
  const auto s1 = b.add(5, Operand{a, 5, Sign::Signed},
                        Operand{c, 5, Sign::Signed});
  const auto s2 = b.add(5, Operand{a, 5, Sign::Signed},
                        Operand{c, 5, Sign::Signed});
  const auto m = b.mul(10, Operand{s1, 10, Sign::Signed},
                       Operand{s2, 10, Sign::Signed});
  const auto t = b.add(11, Operand{m, 11, Sign::Signed},
                       Operand{a, 11, Sign::Signed});
  b.output("r", 11, Operand{t});
  const auto res = cluster_maximal(g);
  EXPECT_EQ(res.partition.num_clusters(), 3);  // {s1}, {s2}, {m, t}
  EXPECT_EQ(cluster_of(res.partition, m), cluster_of(res.partition, t));
  EXPECT_NE(cluster_of(res.partition, s1), cluster_of(res.partition, m));
}

TEST(Clustering, FanoutToTwoClustersRoots) {
  // Synthesizability Condition 2: a node consumed by two different clusters
  // roots its own cluster.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto s = b.add(5, Operand{a, 5, Sign::Signed},
                       Operand{a, 5, Sign::Signed});
  const auto t1 = b.add(6, Operand{s, 6, Sign::Signed},
                        Operand{a, 6, Sign::Signed});
  const auto t2 = b.add(6, Operand{s, 6, Sign::Signed},
                        Operand{a, 6, Sign::Signed});
  b.output("r1", 6, Operand{t1});
  b.output("r2", 6, Operand{t2});
  const auto res = cluster_maximal(g);
  EXPECT_EQ(res.partition.num_clusters(), 3);
  EXPECT_EQ(res.partition.clusters[cluster_of(res.partition, s)].root, s);
}

TEST(Clustering, ReconvergentFanoutInsideOneClusterMerges) {
  // x + x reconverging into the same cluster stays merged.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto c = b.input("c", 4);
  const auto s = b.add(6, Operand{a, 6, Sign::Signed},
                       Operand{c, 6, Sign::Signed});
  const auto t = b.add(7, Operand{s, 7, Sign::Signed},
                       Operand{s, 7, Sign::Signed});
  b.output("r", 7, Operand{t});
  const auto res = cluster_maximal(g);
  EXPECT_EQ(res.partition.num_clusters(), 1);
  EXPECT_EQ(res.partition.clusters[0].size(), 2);
}

TEST(Flatten, SumOfAddendsWithSigns) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto c = b.input("c", 4);
  const auto d = b.input("d", 4);
  const auto s = b.sub(6, Operand{a, 6, Sign::Signed},
                       Operand{c, 6, Sign::Signed});
  const auto n = b.neg(7, Operand{s, 7, Sign::Signed});
  const auto t = b.add(8, Operand{n, 8, Sign::Signed},
                       Operand{d, 8, Sign::Signed});
  b.output("r", 8, Operand{t});
  const auto res = cluster_maximal(g);
  ASSERT_EQ(res.partition.num_clusters(), 1);
  const auto flat = flatten_cluster(g, res.partition.clusters[0]);
  // r = -(a - c) + d = -a + c + d: three terms, exactly one negated.
  ASSERT_EQ(flat.terms.size(), 3u);
  int negs = 0;
  for (const auto& t2 : flat.terms) {
    EXPECT_EQ(t2.factors.size(), 1u);
    negs += t2.negate ? 1 : 0;
  }
  EXPECT_EQ(negs, 1);
}

TEST(Flatten, ProductTermsCarryTwoFactors) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto c = b.input("c", 4);
  const auto m = b.mul(8, Operand{a, 8, Sign::Signed},
                       Operand{c, 8, Sign::Signed});
  const auto t = b.add(9, Operand{m, 9, Sign::Signed},
                       Operand{a, 9, Sign::Signed});
  b.output("r", 9, Operand{t});
  const auto res = cluster_maximal(g);
  ASSERT_EQ(res.partition.num_clusters(), 1);
  const auto flat = flatten_cluster(g, res.partition.clusters[0]);
  ASSERT_EQ(flat.terms.size(), 2u);
  std::multiset<std::size_t> sizes;
  for (const auto& t2 : flat.terms) sizes.insert(t2.factors.size());
  EXPECT_EQ(sizes, (std::multiset<std::size_t>{1, 2}));
}

TEST(Flatten, ConstMultipleBecomesCoefficient) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto k = b.constant(4, 5);
  const auto m = b.mul(8, Operand{a, 8, Sign::Signed},
                       Operand{k, 8, Sign::Signed});
  const auto t = b.add(9, Operand{m, 9, Sign::Signed},
                       Operand{a, 9, Sign::Signed});
  b.output("r", 9, Operand{t});
  const auto res = cluster_maximal(g);
  ASSERT_EQ(res.partition.num_clusters(), 1);
  const auto& c = res.partition.clusters[0];
  const auto addends =
      cluster_addends(g, c, flatten_cluster(g, c), res.info);
  bool found = false;
  for (const auto& ad : addends) {
    if (ad.coefficient == 5) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Clustering, D1RebalancingMergesEverything) {
  // The paper's D1 narrative: the first information pass splits exactly like
  // the old algorithm; the rebalancing iterations prove the tight chain
  // bounds and merge the clusters.
  Graph g = designs::make_d1();
  transform::normalize_widths(g);

  ClusterOptions single;
  single.iterate_rebalancing = false;
  const auto first = cluster_maximal(g, single);
  const auto old = cluster_leakage(g);
  EXPECT_EQ(first.partition.num_clusters(), old.num_clusters());
  EXPECT_GT(old.num_clusters(), 1);

  const auto full = cluster_maximal(g);
  EXPECT_EQ(full.partition.num_clusters(), 1);
  EXPECT_GT(full.iterations, 1);  // merging happened in later iterations
  EXPECT_TRUE(validate_partition(g, full.partition).empty());
}

TEST(Clustering, D2RebalancingMergesEverything) {
  Graph g = designs::make_d2();
  transform::normalize_widths(g);
  const auto old = cluster_leakage(g);
  const auto full = cluster_maximal(g);
  EXPECT_GT(old.num_clusters(), full.partition.num_clusters());
  EXPECT_EQ(full.partition.num_clusters(), 1);
}

TEST(Clustering, D3ProductsMergeWithFinalAddition) {
  Graph g = designs::make_d3();
  const Graph original = g;
  transform::normalize_widths(g);
  const auto neu = cluster_maximal(g);
  const auto old = cluster_leakage(original);
  // Old: 8 pre-adders + 4 multipliers + 1 final tree = 13.
  // New: 8 pre-adders + 1 merged {multipliers + final tree} = 9.
  EXPECT_EQ(old.num_clusters(), 13);
  EXPECT_EQ(neu.partition.num_clusters(), 9);
}

TEST(Clustering, D4D5NewMergesMoreAndOldKeepsWidths) {
  for (auto make : {designs::make_d4, designs::make_d5}) {
    Graph g = make();
    const Graph original = g;
    transform::normalize_widths(g);
    const auto neu = cluster_maximal(g);
    const auto old = cluster_leakage(original);
    EXPECT_LT(neu.partition.num_clusters(), old.num_clusters());
    EXPECT_TRUE(validate_partition(g, neu.partition).empty());
    EXPECT_TRUE(validate_partition(original, old).empty());
  }
}

TEST(Clustering, ClusterCountsMonotoneAcrossFlows) {
  // New <= Old <= NoMerge on every testcase.
  for (const auto& tc : designs::all_testcases()) {
    Graph g = tc.graph;
    const auto none = cluster_none(g);
    const auto old = cluster_leakage(g);
    Graph t = g;
    transform::normalize_widths(t);
    const auto neu = cluster_maximal(t);
    EXPECT_LE(old.num_clusters(), none.num_clusters()) << tc.name;
    EXPECT_LE(neu.partition.num_clusters(), old.num_clusters()) << tc.name;
  }
}

TEST(Clustering, ZeroExtendedSignedProductBreaks) {
  // Regression for the exact-low-bits condition (DESIGN.md §2 item 4): an
  // exact signed 10-bit product carried *unsigned* into a 12-bit adder is
  // reinterpreted — merging through would regenerate the ideal (negative)
  // product and disagree above bit 10.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 5);
  const auto c = b.input("c", 5);
  const auto e = b.input("e", 12);
  const auto m = b.mul(10, Operand{a, 10, Sign::Signed},
                       Operand{c, 10, Sign::Signed});
  // Unsigned edge: zero-extends the signed product.
  const auto t = b.add(12, Operand{m, 12, Sign::Unsigned},
                       Operand{e, 12, Sign::Signed});
  b.output("r", 12, Operand{t});
  const auto res = cluster_maximal(g);
  EXPECT_EQ(res.partition.num_clusters(), 2);
  EXPECT_NE(cluster_of(res.partition, m), cluster_of(res.partition, t));

  // The same connection with a signed edge is exact and merges.
  Graph g2;
  Builder b2(g2);
  const auto a2 = b2.input("a", 5);
  const auto c2 = b2.input("c", 5);
  const auto e2 = b2.input("e", 12);
  const auto m2 = b2.mul(10, Operand{a2, 10, Sign::Signed},
                         Operand{c2, 10, Sign::Signed});
  const auto t2 = b2.add(12, Operand{m2, 12, Sign::Signed},
                         Operand{e2, 12, Sign::Signed});
  b2.output("r", 12, Operand{t2});
  const auto res2 = cluster_maximal(g2);
  EXPECT_EQ(res2.partition.num_clusters(), 1);
  EXPECT_EQ(cluster_of(res2.partition, m2), cluster_of(res2.partition, t2));
}

// Structural property: on random graphs, every clustering variant yields a
// valid partition (connected clusters, unique outputs, full coverage).
class PartitionValidity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionValidity, RandomGraphs) {
  Rng rng(GetParam());
  for (int t = 0; t < 8; ++t) {
    Graph g = dfg::random_graph(rng);
    {
      const auto p = cluster_none(g);
      EXPECT_TRUE(validate_partition(g, p).empty());
    }
    {
      const auto p = cluster_leakage(g);
      const auto errs = validate_partition(g, p);
      EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs.front());
    }
    transform::normalize_widths(g);
    {
      const auto res = cluster_maximal(g);
      const auto errs = validate_partition(g, res.partition);
      EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs.front());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionValidity,
                         ::testing::Values(71, 72, 73, 74, 75, 76, 77, 78));

}  // namespace
}  // namespace dpmerge::cluster
