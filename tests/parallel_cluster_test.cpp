// The bit-identical determinism contract of parallel clustering
// (DESIGN.md §11): cluster_maximal with threads > 1 must reproduce the
// serial run exactly — partitions, iteration trajectories, refinements,
// DecisionLogs (byte-for-byte JSON) and stat counters — and the full
// new-merge flow must emit byte-identical netlists. Swept over hundreds of
// random DFGs, the D1-D5 paper testcases, and scale-generator designs big
// enough to exercise the chunked break sweep (> 1024 nodes per chunk).

#include <gtest/gtest.h>

#include <string>

#include "dpmerge/cluster/clusterer.h"
#include "dpmerge/designs/scale.h"
#include "dpmerge/designs/testcases.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/netlist/verilog.h"
#include "dpmerge/obs/obs.h"
#include "dpmerge/obs/provenance.h"
#include "dpmerge/support/rng.h"
#include "dpmerge/support/thread_pool.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/transform/width_prune.h"

namespace dpmerge {
namespace {

using cluster::ClusterOptions;
using cluster::ClusterResult;
using dfg::Graph;

// Give the shared pool real workers even on single-core CI boxes, so the
// parallel paths genuinely run multi-threaded (the pool is sized at first
// use; this runs before main()).
const bool kForcePool = [] {
  support::ThreadPool::set_shared_threads(4);
  return true;
}();

struct Run {
  ClusterResult result;
  std::string decisions_json;
  std::string stats_json;
};

Run run_clusterer(const Graph& g, int threads) {
  Run r;
  obs::prov::DecisionLog log;
  obs::StatSink sink;
  {
    obs::prov::DecisionScope ds(&log);
    obs::StatScope ss(&sink);
    ClusterOptions opt;
    opt.threads = threads;
    r.result = cluster::cluster_maximal(g, opt);
  }
  log.to_json(r.decisions_json);
  for (const auto& [k, v] : sink.values()) {
    r.stats_json += k + "=" + std::to_string(v) + "\n";
  }
  return r;
}

void expect_identical(const Graph& g, const char* what) {
  const Run serial = run_clusterer(g, 1);
  const Run parallel = run_clusterer(g, 4);

  ASSERT_EQ(serial.result.partition.num_clusters(),
            parallel.result.partition.num_clusters())
      << what;
  EXPECT_EQ(serial.result.partition.cluster_of,
            parallel.result.partition.cluster_of)
      << what;
  for (int ci = 0; ci < serial.result.partition.num_clusters(); ++ci) {
    const auto& cs =
        serial.result.partition.clusters[static_cast<std::size_t>(ci)];
    const auto& cp =
        parallel.result.partition.clusters[static_cast<std::size_t>(ci)];
    EXPECT_EQ(cs.root, cp.root) << what;
    EXPECT_EQ(cs.nodes, cp.nodes) << what;
    EXPECT_EQ(cs.input_edges, cp.input_edges) << what;
  }
  EXPECT_EQ(serial.result.iterations, parallel.result.iterations) << what;
  ASSERT_EQ(serial.result.per_iteration.size(),
            parallel.result.per_iteration.size())
      << what;
  for (std::size_t i = 0; i < serial.result.per_iteration.size(); ++i) {
    EXPECT_EQ(serial.result.per_iteration[i].clusters,
              parallel.result.per_iteration[i].clusters)
        << what;
    EXPECT_EQ(serial.result.per_iteration[i].refined_roots,
              parallel.result.per_iteration[i].refined_roots)
        << what;
  }
  ASSERT_EQ(serial.result.refinements.size(),
            parallel.result.refinements.size())
      << what;
  for (std::size_t i = 0; i < serial.result.refinements.size(); ++i) {
    const auto& a = serial.result.refinements[i];
    const auto& b = parallel.result.refinements[i];
    ASSERT_EQ(a.has_value(), b.has_value()) << what << " node " << i;
    if (a) {
      EXPECT_EQ(a->width, b->width) << what << " node " << i;
      EXPECT_EQ(a->sign, b->sign) << what << " node " << i;
    }
  }
  EXPECT_EQ(serial.decisions_json, parallel.decisions_json) << what;
  EXPECT_EQ(serial.stats_json, parallel.stats_json) << what;
}

TEST(ParallelClusterTest, RandomGraphSweepBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    dfg::RandomGraphOptions opt;
    opt.num_operators = 10 + static_cast<int>(seed % 50);
    Graph g = dfg::random_graph(rng, opt);
    transform::normalize_widths(g);
    expect_identical(g, ("seed " + std::to_string(seed)).c_str());
  }
}

TEST(ParallelClusterTest, PaperTestcasesBitIdentical) {
  for (const auto& tc : designs::all_testcases()) {
    Graph g = tc.graph;
    transform::normalize_widths(g);
    expect_identical(g, tc.name.c_str());
  }
}

TEST(ParallelClusterTest, LargeDesignsExerciseChunkedSweep) {
  // > 1024 arithmetic nodes so the chunk-parallel break sweep really runs
  // multiple chunks; layered networks also give many dataflow levels.
  Graph lay = designs::layered_network(60, 60, 16, /*seed=*/11);
  transform::normalize_widths(lay);
  expect_identical(lay, "layered_3600");

  Graph mm = designs::matmul(12, 12);
  transform::normalize_widths(mm);
  expect_identical(mm, "matmul_12");
}

TEST(ParallelClusterTest, FullFlowNetlistsByteIdentical) {
  for (const auto& tc : designs::all_testcases()) {
    synth::SynthOptions so_serial;
    so_serial.threads = 1;
    synth::SynthOptions so_par;
    so_par.threads = 4;
    auto rs = synth::run_flow(tc.graph, synth::Flow::NewMerge, so_serial);
    auto rp = synth::run_flow(tc.graph, synth::Flow::NewMerge, so_par);
    EXPECT_EQ(netlist::to_verilog(rs.net, tc.name),
              netlist::to_verilog(rp.net, tc.name))
        << tc.name;
    std::string js, jp;
    rs.decisions.to_json(js);
    rp.decisions.to_json(jp);
    EXPECT_EQ(js, jp) << tc.name;
    EXPECT_EQ(rs.partition.cluster_of, rp.partition.cluster_of) << tc.name;
  }
}

TEST(ParallelClusterTest, StressInterleavingsByteIdentical) {
  // The seeded stress scheduler (DESIGN.md §12) randomises dispatch order
  // and injects per-task jitter: under every seed the full new-merge flow
  // must still reproduce the serial run's DecisionLog JSON and Verilog
  // byte for byte. (dpmerge-lint --concurrency sweeps 100+ seeds over the
  // scaling suite; this keeps a fast always-on slice in tier-1.)
  Graph g = designs::layered_network(20, 20, 16, /*seed=*/3);
  synth::SynthOptions so_serial;
  so_serial.threads = 1;
  synth::SynthOptions so_par;
  so_par.threads = 4;
  const auto ref = synth::run_flow(g, synth::Flow::NewMerge, so_serial);
  const std::string ref_v = netlist::to_verilog(ref.net, "stress");
  std::string ref_dec;
  ref.decisions.to_json(ref_dec);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    support::ThreadPool::StressOptions stress;
    stress.enabled = true;
    stress.seed = seed;
    support::ThreadPool::shared().set_stress(stress);
    const auto got = synth::run_flow(g, synth::Flow::NewMerge, so_par);
    std::string dec;
    got.decisions.to_json(dec);
    EXPECT_EQ(dec, ref_dec) << "seed " << seed;
    EXPECT_EQ(netlist::to_verilog(got.net, "stress"), ref_v)
        << "seed " << seed;
  }
  support::ThreadPool::shared().set_stress({});
}

TEST(ParallelClusterTest, ThreadsZeroMeansAuto) {
  Rng rng(42);
  Graph g = dfg::random_graph(rng);
  transform::normalize_widths(g);
  ClusterOptions serial;
  ClusterOptions autow;
  autow.threads = 0;
  const auto rs = cluster::cluster_maximal(g, serial);
  const auto ra = cluster::cluster_maximal(g, autow);
  EXPECT_EQ(rs.partition.cluster_of, ra.partition.cluster_of);
}

}  // namespace
}  // namespace dpmerge
