#include "dpmerge/transform/cse.h"

#include <gtest/gtest.h>

#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/frontend/parser.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/synth/verify.h"

namespace dpmerge::transform {
namespace {

using dfg::Builder;
using dfg::Graph;
using dfg::OpKind;
using dfg::Operand;

void expect_equiv(const Graph& a, const Graph& b, std::uint64_t seed) {
  Rng rng(seed);
  std::string why;
  EXPECT_TRUE(dfg::equivalent_by_simulation(a, b, 32, rng, &why)) << why;
  EXPECT_TRUE(b.validate().empty());
}

TEST(Cse, MergesIdenticalAdders) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto s1 = b.add(9, Operand{a, 9, Sign::Signed},
                        Operand{c, 9, Sign::Signed});
  const auto s2 = b.add(9, Operand{a, 9, Sign::Signed},
                        Operand{c, 9, Sign::Signed});
  const auto t = b.mul(18, Operand{s1, 18, Sign::Signed},
                       Operand{s2, 18, Sign::Signed});
  b.output("r", 18, Operand{t});
  CseStats st;
  const Graph f = share_common_subexpressions(g, &st);
  EXPECT_EQ(st.nodes_merged, 1);
  int adds = 0;
  for (const auto& n : f.nodes()) adds += n.kind == OpKind::Add;
  EXPECT_EQ(adds, 1);  // (a+c)^2 with one shared adder
  expect_equiv(g, f, 1);
}

TEST(Cse, CommutativeOperandsNormalise) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto s1 = b.add(9, Operand{a, 9, Sign::Signed},
                        Operand{c, 9, Sign::Signed});
  const auto s2 = b.add(9, Operand{c, 9, Sign::Signed},
                        Operand{a, 9, Sign::Signed});  // operands swapped
  const auto t = b.sub(10, Operand{s1, 10, Sign::Signed},
                       Operand{s2, 10, Sign::Signed});
  b.output("r", 10, Operand{t});
  CseStats st;
  const Graph f = share_common_subexpressions(g, &st);
  EXPECT_EQ(st.nodes_merged, 1);
  expect_equiv(g, f, 2);
}

TEST(Cse, SubIsNotCommutative) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto s1 = b.sub(9, Operand{a, 9, Sign::Signed},
                        Operand{c, 9, Sign::Signed});
  const auto s2 = b.sub(9, Operand{c, 9, Sign::Signed},
                        Operand{a, 9, Sign::Signed});
  const auto t = b.add(10, Operand{s1, 10, Sign::Signed},
                       Operand{s2, 10, Sign::Signed});
  b.output("r", 10, Operand{t});
  CseStats st;
  const Graph f = share_common_subexpressions(g, &st);
  EXPECT_EQ(st.nodes_merged, 0);
  expect_equiv(g, f, 3);
}

TEST(Cse, DifferentEdgeSignsDoNotMerge) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto s1 = b.add(12, Operand{a, 12, Sign::Signed},
                        Operand{a, 12, Sign::Signed});
  const auto s2 = b.add(12, Operand{a, 12, Sign::Unsigned},
                        Operand{a, 12, Sign::Unsigned});
  const auto t = b.sub(13, Operand{s1, 13, Sign::Signed},
                       Operand{s2, 13, Sign::Signed});
  b.output("r", 13, Operand{t});
  CseStats st;
  const Graph f = share_common_subexpressions(g, &st);
  EXPECT_EQ(st.nodes_merged, 0);  // sign-extended vs zero-extended operands
  expect_equiv(g, f, 4);
}

TEST(Cse, MergesDuplicateLiterals) {
  // The frontend creates one Const per literal occurrence; CSE shares them.
  const auto res = frontend::compile(R"(
input x : s8
output y : s16 = 7 * x + 7 * x
)");
  CseStats st;
  const Graph f = share_common_subexpressions(res.graph, &st);
  EXPECT_GE(st.nodes_merged, 2);  // the 7 const and the 7*x product
  expect_equiv(res.graph, f, 5);
}

class CseRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CseRandom, EquivalentAndSynthesizable) {
  Rng rng(GetParam());
  for (int t = 0; t < 5; ++t) {
    const Graph g = dfg::random_graph(rng);
    CseStats st;
    const Graph f = share_common_subexpressions(g, &st);
    expect_equiv(g, f, GetParam() * 5 + t);
    // The shared graph still synthesises correctly under every flow.
    for (auto flow : {synth::Flow::OldMerge, synth::Flow::NewMerge}) {
      const auto fr = synth::run_flow(f, flow);
      Rng vr(GetParam() * 5 + t + 50);
      std::string why;
      ASSERT_TRUE(synth::verify_netlist(fr.net, g, 16, vr, &why)) << why;
    }
    // Idempotent.
    CseStats st2;
    share_common_subexpressions(f, &st2);
    EXPECT_EQ(st2.nodes_merged, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CseRandom,
                         ::testing::Values(131, 132, 133, 134, 135));

}  // namespace
}  // namespace dpmerge::transform
