#include "dpmerge/transform/width_prune.h"

#include <gtest/gtest.h>

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/designs/figures.h"
#include "dpmerge/designs/testcases.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/dfg/random_graph.h"

namespace dpmerge::transform {
namespace {

using dfg::Builder;
using dfg::Graph;
using dfg::NodeId;
using dfg::Operand;

void expect_equivalent(const Graph& before, const Graph& after,
                       std::uint64_t seed, const char* what) {
  Rng rng(seed);
  std::string why;
  EXPECT_TRUE(dfg::equivalent_by_simulation(before, after, 32, rng, &why))
      << what << ": " << why;
  EXPECT_TRUE(after.validate().empty());
}

TEST(RpPrune, Figure2ShrinksEverythingToFive) {
  // Theorem 4.2 on G4: every operator and edge shrinks to the 5-bit output
  // precision (the G4 -> G4' transformation of Figure 2).
  Graph g = designs::figure2_g4();
  const Graph before = g;
  const auto stats = prune_required_precision(g);
  EXPECT_GT(stats.nodes_narrowed, 0);
  const auto f = designs::figure_nodes(g);
  for (NodeId n : {f.n1, f.n2, f.n3, f.n4}) EXPECT_EQ(g.node(n).width, 5);
  for (const auto& e : g.edges()) EXPECT_LE(e.width, 5);
  expect_equivalent(before, g, 1001, "figure2 rp prune");
}

TEST(RpPrune, Figure1NodesAlreadyTight) {
  // With the full 9-bit output, no operator of G2 can shrink; only the two
  // 8-bit edges feeding the 7-bit N1 narrow (the node truncated them
  // anyway).
  Graph g = designs::figure1_g2();
  const Graph before = g;
  const auto stats = prune_required_precision(g);
  EXPECT_EQ(stats.nodes_narrowed, 0);
  EXPECT_EQ(stats.edges_narrowed, 2);
  expect_equivalent(before, g, 1000, "figure1 rp prune");
}

TEST(RpPrune, PreservesInterfaceWidths) {
  Graph g = designs::figure2_g4();
  prune_required_precision(g);
  for (NodeId in : g.inputs()) EXPECT_EQ(g.node(in).width, 8);
  for (NodeId out : g.outputs()) EXPECT_EQ(g.node(out).width, 5);
}

TEST(IcPrune, Figure3ShrinksToContent) {
  // Lemmas 5.6/5.7 on G5: N1/N2 shrink to their 4-bit content, N3 to 5 bits
  // (the G5 -> G5' transformation of Figure 3), with no Extension node
  // needed (the shrink is absorbed into the signed edges).
  Graph g = designs::figure3_g5();
  const Graph before = g;
  const auto stats = prune_info_content(g);
  const auto f = designs::figure_nodes(g);
  EXPECT_EQ(g.node(f.n1).width, 4);
  EXPECT_EQ(g.node(f.n2).width, 4);
  EXPECT_EQ(g.node(f.n3).width, 5);
  EXPECT_EQ(g.node(f.n4).width, 10);
  EXPECT_EQ(stats.extensions_inserted, 0);
  expect_equivalent(before, g, 1002, "figure3 ic prune");
}

TEST(IcPrune, InsertsExtensionForZeroPaddedSignedContent) {
  // A signed-content node whose consumer zero-pads it: the shrink cannot be
  // absorbed into the edge and must materialise an Extension node.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto c = b.input("c", 4);
  // 12-bit subtract holding only 5 bits of signed content.
  const auto s = b.sub(12, Operand{a, 12, Sign::Signed},
                       Operand{c, 12, Sign::Signed});
  // Consumer zero-extends the 12-bit value to 16.
  const auto t = b.add(16, Operand{s, 16, Sign::Unsigned},
                       Operand{a, 16, Sign::Unsigned});
  b.output("r", 16, Operand{t});
  const Graph before = g;
  const auto stats = prune_info_content(g);
  EXPECT_EQ(g.node(s).width, 5);
  EXPECT_EQ(stats.extensions_inserted, 1);
  expect_equivalent(before, g, 1003, "zero-padded signed content");
}

TEST(IcPrune, UnsignedContentAbsorbedIntoSignedEdge) {
  // The "interesting case": unsigned content crossing a signed edge is
  // rewritten to an unsigned edge, no Extension node.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4, Sign::Unsigned);
  const auto c = b.input("c", 4, Sign::Unsigned);
  const auto s = b.add(12, Operand{a, 12, Sign::Unsigned},
                       Operand{c, 12, Sign::Unsigned});
  const auto t = b.add(16, Operand{s, 16, Sign::Signed},
                       Operand{a, 16, Sign::Unsigned});
  b.output("r", 16, Operand{t});
  const Graph before = g;
  const auto stats = prune_info_content(g);
  EXPECT_EQ(g.node(s).width, 5);
  EXPECT_EQ(stats.extensions_inserted, 0);
  expect_equivalent(before, g, 1004, "unsigned across signed edge");
}

TEST(IcPrune, NarrowsOverwideEdges) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto s = b.add(6, Operand{a, 6, Sign::Signed},
                       Operand{a, 6, Sign::Signed});
  // 20-bit edge carrying a 6-bit signal into a 20-bit adder.
  const auto t = b.add(20, Operand{s, 20, Sign::Signed},
                       Operand{a, 20, Sign::Signed});
  b.output("r", 20, Operand{t});
  const Graph before = g;
  prune_info_content(g);
  EXPECT_LE(g.edge(g.node(t).in[0]).width, 6);
  expect_equivalent(before, g, 1005, "overwide edge");
}

TEST(Normalize, D4CollapsesRedundantWidths) {
  Graph g = designs::make_d4();
  const Graph before = g;
  const auto stats = normalize_widths(g);
  EXPECT_GT(stats.bits_removed, 100);  // 32-bit ops collapse dramatically
  int max_w = 0;
  for (const auto& n : g.nodes()) {
    if (dfg::is_arith_operator(n.kind)) max_w = std::max(max_w, n.width);
  }
  // The skewed single-pass bound still over-estimates the long chain
  // (+1 per adder); the Huffman feedback loop (prepare_new_merge, tested in
  // synth_flow_test) tightens this further to ~10 bits.
  EXPECT_LE(max_w, 22);
  expect_equivalent(before, g, 1006, "d4 normalize");
}

TEST(Normalize, RefinementsTightenFurther) {
  Graph g = designs::make_d4();
  const Graph before = g;
  normalize_widths(g);
  // Hand a refined bound for the widest node and check it shrinks to it.
  int widest = -1, max_w = 0;
  for (const auto& n : g.nodes()) {
    if (dfg::is_arith_operator(n.kind) && n.width > max_w) {
      max_w = n.width;
      widest = n.id.value;
    }
  }
  ASSERT_GE(widest, 0);
  analysis::InfoRefinements refs(static_cast<std::size_t>(g.node_count()));
  refs[static_cast<std::size_t>(widest)] =
      analysis::InfoContent{10, Sign::Signed};
  normalize_widths(g, 8, &refs);
  EXPECT_LE(g.node(dfg::NodeId{widest}).width, 10);
  expect_equivalent(before, g, 1007, "d4 refined normalize");
}

TEST(Normalize, D1IsAlreadyTight) {
  // D1 has no redundant widths: normalisation must not change any operator
  // width (the paper's premise for D1/D2).
  Graph g = designs::make_d1();
  const Graph before = g;
  normalize_widths(g);
  for (int i = 0; i < before.node_count(); ++i) {
    EXPECT_EQ(g.nodes()[static_cast<std::size_t>(i)].width,
              before.nodes()[static_cast<std::size_t>(i)].width);
  }
}

TEST(Normalize, Idempotent) {
  Graph g = designs::make_d5();
  normalize_widths(g);
  Graph g2 = g;
  const auto stats = normalize_widths(g2);
  EXPECT_FALSE(stats.changed());
}

// Equivalence property: every pruning pass preserves functionality on random
// graphs (Theorem 4.2 and Lemmas 5.6/5.7 in composition).
class PrunePreservesFunction : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PrunePreservesFunction, RandomGraphs) {
  Rng rng(GetParam());
  for (int t = 0; t < 6; ++t) {
    const Graph g = dfg::random_graph(rng);
    {
      Graph m = g;
      prune_required_precision(m);
      expect_equivalent(g, m, GetParam() * 31 + 1, "rp");
    }
    {
      Graph m = g;
      prune_info_content(m);
      expect_equivalent(g, m, GetParam() * 31 + 2, "ic");
    }
    {
      Graph m = g;
      normalize_widths(m);
      expect_equivalent(g, m, GetParam() * 31 + 3, "normalize");
      // Widths never grow.
      for (int i = 0; i < g.node_count(); ++i) {
        EXPECT_LE(m.nodes()[static_cast<std::size_t>(i)].width,
                  g.nodes()[static_cast<std::size_t>(i)].width);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrunePreservesFunction,
                         ::testing::Values(51, 52, 53, 54, 55, 56, 57, 58, 59,
                                           60));

// The pruned graph's claims must still be sound (the transforms and the
// analysis agree with each other).
TEST(Normalize, ClaimsRemainSoundAfterPruning) {
  Rng rng(314);
  for (int t = 0; t < 8; ++t) {
    Graph g = dfg::random_graph(rng);
    normalize_widths(g);
    const auto ia = analysis::compute_info_content(g);
    dfg::Evaluator ev(g);
    for (int trial = 0; trial < 20; ++trial) {
      const auto results = ev.run(ev.random_inputs(rng));
      for (const auto& n : g.nodes()) {
        const auto claim = ia.out(n.id);
        EXPECT_TRUE(results[static_cast<std::size_t>(n.id.value)]
                        .is_extension_of_low(claim.width, claim.sign));
      }
    }
  }
}

}  // namespace
}  // namespace dpmerge::transform
