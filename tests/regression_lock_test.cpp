// Regression locks: pins the exact cluster counts, iteration counts and
// width outcomes of the five testcases under every flow, so any change to
// the analyses or break conditions that shifts the Table 1/2 shapes fails
// loudly here rather than silently degrading the reproduction.

#include <gtest/gtest.h>

#include "dpmerge/designs/testcases.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/flow.h"

namespace dpmerge {
namespace {

struct Expected {
  const char* name;
  int clusters_none;
  int clusters_old;
  int clusters_new;
};

constexpr Expected kExpected[] = {
    {"D1", 15, 7, 1}, {"D2", 35, 14, 1}, {"D3", 15, 13, 9},
    {"D4", 19, 3, 1}, {"D5", 15, 2, 1},
};

TEST(RegressionLock, ClusterCountsPerFlow) {
  const auto cases = designs::all_testcases();
  ASSERT_EQ(cases.size(), std::size(kExpected));
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& tc = cases[i];
    const auto& e = kExpected[i];
    ASSERT_EQ(tc.name, e.name);
    EXPECT_EQ(synth::run_flow(tc.graph, synth::Flow::NoMerge)
                  .partition.num_clusters(),
              e.clusters_none)
        << tc.name;
    EXPECT_EQ(synth::run_flow(tc.graph, synth::Flow::OldMerge)
                  .partition.num_clusters(),
              e.clusters_old)
        << tc.name;
    EXPECT_EQ(synth::run_flow(tc.graph, synth::Flow::NewMerge)
                  .partition.num_clusters(),
              e.clusters_new)
        << tc.name;
  }
}

TEST(RegressionLock, D1D2NeedMultipleIterations) {
  // The paper's D1/D2 narrative depends on the *iterative* part of the
  // Section 6 algorithm actually firing.
  for (auto make : {&designs::make_d1, &designs::make_d2}) {
    dfg::Graph g = make();
    const auto cr = synth::prepare_new_merge(g);
    EXPECT_GT(cr.iterations, 1);
  }
}

TEST(RegressionLock, MaxOperatorWidthAfterNewMerge) {
  // Redundant widths must collapse to (close to) the true content.
  struct W {
    const char* name;
    int max_width;
  };
  constexpr W kWidths[] = {
      {"D1", 12}, {"D2", 16}, {"D3", 14}, {"D4", 12}, {"D5", 11}};
  const auto cases = designs::all_testcases();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    dfg::Graph g = cases[i].graph;
    synth::prepare_new_merge(g);
    int max_w = 0;
    for (const auto& n : g.nodes()) {
      if (dfg::is_arith_operator(n.kind)) max_w = std::max(max_w, n.width);
    }
    EXPECT_LE(max_w, kWidths[i].max_width) << cases[i].name;
  }
}

TEST(RegressionLock, Table1ShapeBands) {
  // Coarse bands around the measured Table 1 ratios (EXPERIMENTS.md): fail
  // if the new flow's advantage over old collapses or the ordering flips.
  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  const auto cases = designs::all_testcases();
  for (const auto& tc : cases) {
    const auto none = synth::run_flow(tc.graph, synth::Flow::NoMerge);
    const auto old = synth::run_flow(tc.graph, synth::Flow::OldMerge);
    const auto neu = synth::run_flow(tc.graph, synth::Flow::NewMerge);
    const double dn = sta.analyze(none.net).longest_path_ns;
    const double d_old = sta.analyze(old.net).longest_path_ns;
    const double dz = sta.analyze(neu.net).longest_path_ns;
    EXPECT_LE(dz, d_old * 1.001) << tc.name;
    EXPECT_LE(d_old, dn * 1.001) << tc.name;
    const bool redundant = tc.name == "D4" || tc.name == "D5";
    if (redundant) {
      // Dramatic wins: >=40% delay and >=55% area off the old flow.
      EXPECT_LT(dz, 0.6 * d_old) << tc.name;
      EXPECT_LT(sta.area(neu.net), 0.45 * sta.area(old.net)) << tc.name;
    }
  }
}

}  // namespace
}  // namespace dpmerge
