#include "dpmerge/designs/testcases.h"

#include <gtest/gtest.h>

#include "dpmerge/designs/figures.h"
#include "dpmerge/dfg/eval.h"

namespace dpmerge::designs {
namespace {

TEST(Designs, AllTestcasesAreValidGraphs) {
  const auto all = all_testcases();
  ASSERT_EQ(all.size(), 5u);
  const char* names[] = {"D1", "D2", "D3", "D4", "D5"};
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].name, names[i]);
    const auto errs = all[i].graph.validate();
    EXPECT_TRUE(errs.empty())
        << all[i].name << ": " << (errs.empty() ? "" : errs.front());
  }
}

TEST(Designs, FigureGraphsAreValid) {
  for (const auto& g : {figure1_g2(), figure2_g4(), figure3_g5(),
                        figure4_skewed_sum()}) {
    EXPECT_TRUE(g.validate().empty());
  }
}

TEST(Designs, D1ComputesTheSumOfInputs) {
  const auto g = make_d1();
  dfg::Evaluator ev(g);
  std::vector<BitVector> stim;
  std::uint64_t expect = 0;
  std::uint64_t v = 1;
  for (dfg::NodeId id : g.inputs()) {
    stim.push_back(BitVector::from_uint(g.node(id).width, v));
    expect += v;
    v = (v * 7 + 3) % 200;
  }
  const auto outs = ev.run_outputs(stim);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].to_uint64(), expect % (1u << 12));
}

TEST(Designs, D3ComputesSumOfProductsOfSums) {
  const auto g = make_d3();
  dfg::Evaluator ev(g);
  // All inputs = 1: each term (1+1)*(1+1) = 4; four terms -> 16.
  std::vector<BitVector> stim;
  for (dfg::NodeId id : g.inputs()) {
    stim.push_back(BitVector::from_uint(g.node(id).width, 1));
  }
  EXPECT_EQ(ev.run_outputs(stim)[0].to_int64(), 16);
}

TEST(Designs, D4MatchesDirectSum) {
  const auto g = make_d4();
  dfg::Evaluator ev(g);
  // Structure: (x0..x3 + y0) - (x4..x7 + y4) + w0..w9, all signed 4-bit.
  std::vector<BitVector> stim;
  std::int64_t expect = 0;
  std::int64_t v = -8;
  for (dfg::NodeId id : g.inputs()) {
    const auto& n = g.node(id);
    stim.push_back(BitVector::from_int(n.width, v));
    const std::string& name = g.name(n);
    const bool negated = name[0] == 'x' && std::stoi(name.substr(1)) >= 4;
    const bool neg_y = name == "y4";
    expect += (negated || neg_y) ? -v : v;
    v = v == 7 ? -8 : v + 1;
  }
  const auto out = ev.run_outputs(stim)[0];
  EXPECT_EQ(out.to_int64(), expect);
}

TEST(Designs, WidthsAreDeclaredRedundantlyInD4D5) {
  for (auto make : {&make_d4, &make_d5}) {
    const auto g = make();
    int wide = 0;
    for (const auto& n : g.nodes()) {
      if (dfg::is_arith_operator(n.kind) && n.width >= 24) ++wide;
    }
    EXPECT_GT(wide, 5);  // most operators are declared far too wide
  }
}

TEST(Designs, D1D2HaveNoRedundantWidths) {
  // The premise of the D1/D2 narrative: every chain adder is exactly as
  // wide as the running sum requires.
  for (auto make : {&make_d1, &make_d2}) {
    const auto g = make();
    dfg::Evaluator ev(g);
    // Saturate all inputs: no intermediate overflow may occur, i.e. the
    // final output equals the true sum of all-maximum inputs.
    std::vector<BitVector> stim;
    std::uint64_t expect = 0;
    for (dfg::NodeId id : g.inputs()) {
      const int w = g.node(id).width;
      stim.push_back(BitVector::from_uint(w, (1u << w) - 1));
      expect += (1u << w) - 1;
    }
    const auto out = ev.run_outputs(stim)[0];
    EXPECT_EQ(out.to_uint64(), expect);
  }
}

}  // namespace
}  // namespace dpmerge::designs
