// Cross-module coverage: behaviours exercised nowhere else — STA load
// bookkeeping, buffering effects, kernel-level transforms, and error paths.

#include <gtest/gtest.h>

#include "dpmerge/designs/kernels.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/opt/timing_opt.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/transform/rebalance.h"
#include "dpmerge/transform/width_prune.h"

namespace dpmerge {
namespace {

using dfg::Builder;
using dfg::Graph;
using dfg::Operand;

TEST(StaCoverage, LoadOnSumsReaderPins) {
  netlist::Netlist n;
  netlist::Signal a{{n.new_net()}};
  n.add_input("a", a);
  const auto i1 = n.inv(a.bit(0));
  const auto i2 = n.inv(a.bit(0));
  const auto x = n.xor2(a.bit(0), i1);
  n.add_output("y", netlist::Signal{{n.and2(i2, x)}});
  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  const auto& lib = netlist::CellLibrary::tsmc025();
  // a.bit(0) feeds: two INV pins and one XOR pin.
  const double expect = 2 * lib.variant(netlist::CellType::INV, 0).input_cap +
                        lib.variant(netlist::CellType::XOR2, 0).input_cap;
  const auto loads = sta.net_loads(n);
  EXPECT_NEAR(loads[static_cast<std::size_t>(a.bit(0).value)], expect, 1e-12);
}

TEST(StaCoverage, UpsizingReaderIncreasesDriverLoad) {
  netlist::Netlist n;
  netlist::Signal a{{n.new_net()}};
  n.add_input("a", a);
  const auto i1 = n.inv(a.bit(0));
  n.add_output("y", netlist::Signal{{n.inv(i1)}});
  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  const double before =
      sta.net_loads(n)[static_cast<std::size_t>(i1.value)];
  n.mutable_gates()[1].drive = 2;
  EXPECT_GT(sta.net_loads(n)[static_cast<std::size_t>(i1.value)], before);
}

TEST(OptCoverage, BufferSplitHelpsHighFanoutCriticalNet) {
  // One slow driver fanning out to many loads: buffering the non-critical
  // readers must shorten the longest path.
  netlist::Netlist n;
  netlist::Signal a{{n.new_net()}}, b{{n.new_net()}};
  n.add_input("a", a);
  n.add_input("b", b);
  const auto hot = n.xor2(a.bit(0), b.bit(0));
  netlist::Signal out;
  // The "critical" reader chain.
  netlist::NetId chain = hot;
  for (int i = 0; i < 4; ++i) chain = n.xor2(chain, b.bit(0));
  out.bits.push_back(chain);
  // Twenty cheap side readers loading `hot`.
  for (int i = 0; i < 20; ++i) out.bits.push_back(n.and2(hot, a.bit(0)));
  n.add_output("y", out);

  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  const double before = sta.analyze(n).longest_path_ns;
  opt::TimingOptimizer optimizer(netlist::CellLibrary::tsmc025());
  opt::TimingOptOptions o;
  o.target_ns = 0.0;
  o.max_moves = 50;
  o.buffer_load_threshold = 4.0;
  const auto res = optimizer.optimize(n, o);
  EXPECT_LT(res.final_ns, before);
  // A BUF cell actually appeared.
  int bufs = 0;
  for (const auto& g : n.gates()) bufs += g.type == netlist::CellType::BUF;
  EXPECT_GE(bufs, 1);
}

TEST(KernelCoverage, PrepareNewMergeShrinksKernelWidths) {
  // The frontend's lossless inference makes every operator as wide as the
  // worst case; required precision against the declared outputs narrows
  // them back.
  for (const auto& k : designs::dsp_kernels()) {
    dfg::Graph g = k.graph;
    int before = 0, after = 0;
    for (const auto& n : g.nodes()) {
      if (dfg::is_arith_operator(n.kind)) before += n.width;
    }
    synth::prepare_new_merge(g);
    for (const auto& n : g.nodes()) {
      if (dfg::is_arith_operator(n.kind)) after += n.width;
    }
    EXPECT_LE(after, before) << k.name;
  }
}

TEST(KernelCoverage, RebalanceKernelsEquivalent) {
  for (const auto& k : designs::dsp_kernels()) {
    const dfg::Graph r = transform::rebalance_clusters(k.graph);
    ASSERT_TRUE(r.validate().empty()) << k.name;
    Rng rng(3000);
    std::string why;
    EXPECT_TRUE(dfg::equivalent_by_simulation(k.graph, r, 16, rng, &why))
        << k.name << ": " << why;
  }
}

TEST(EvalCoverage, EquivalenceRejectsMissingInput) {
  Graph g1;
  {
    Builder b(g1);
    const auto a = b.input("a", 4);
    b.output("r", 4, Operand{a});
  }
  Graph g2;
  {
    Builder b(g2);
    const auto x = b.input("other", 4);
    b.output("r", 4, Operand{x});
  }
  Rng rng(1);
  EXPECT_THROW(dfg::equivalent_by_simulation(g1, g2, 4, rng),
               std::invalid_argument);
}

TEST(EvalCoverage, CarriedVsOperandDiffer) {
  // Edge narrower than both endpoints: the carried signal is the truncated
  // middle value; the operand re-extends it.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto s = b.add(8, Operand{a}, Operand{a});
  const auto t = b.add(10, Operand{s, 4, Sign::Signed},
                       Operand{a, 10, Sign::Signed});
  b.output("r", 10, Operand{t});
  dfg::Evaluator ev(g);
  const auto results =
      ev.run({BitVector::from_uint(8, 0x1C)});  // s = 0x38, low 4 = 0x8
  const auto eid = g.node(t).in[0];
  EXPECT_EQ(ev.carried_on_edge(eid, results).width(), 4);
  EXPECT_EQ(ev.carried_on_edge(eid, results).to_uint64(), 0x8u);
  // Sign-extended to 10 bits: 1000 -> 1111111000.
  EXPECT_EQ(ev.operand_via_edge(eid, results).to_int64(), -8);
}

TEST(WidthPruneCoverage, StatsToStringMentionsEverything) {
  transform::PruneStats s;
  s.nodes_narrowed = 3;
  s.edges_narrowed = 4;
  s.extensions_inserted = 1;
  s.bits_removed = 17;
  const auto str = s.to_string();
  EXPECT_NE(str.find("3"), std::string::npos);
  EXPECT_NE(str.find("17"), std::string::npos);
  EXPECT_TRUE(s.changed());
  EXPECT_FALSE(transform::PruneStats{}.changed());
}

}  // namespace
}  // namespace dpmerge
