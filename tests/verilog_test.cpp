#include "dpmerge/netlist/verilog.h"

#include <gtest/gtest.h>

#include "dpmerge/designs/testcases.h"
#include "dpmerge/synth/flow.h"

namespace dpmerge::netlist {
namespace {

TEST(Verilog, StructureOfSmallModule) {
  Netlist n;
  Signal a{{n.new_net()}}, b{{n.new_net()}};
  n.add_input("a", a);
  n.add_input("b", b);
  const NetId y = n.nand2(a.bit(0), b.bit(0));
  n.add_output("y", Signal{{y}});

  const std::string v = to_verilog(n, "tiny");
  EXPECT_NE(v.find("module tiny (a, b, y);"), std::string::npos);
  EXPECT_NE(v.find("input [0:0] a;"), std::string::npos);
  EXPECT_NE(v.find("output [0:0] y;"), std::string::npos);
  EXPECT_NE(v.find("NAND2X1 g0 (.A(n["), std::string::npos);
  EXPECT_NE(v.find("assign n[0] = 1'b0;"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, DriveStrengthSuffixes) {
  Netlist n;
  Signal a{{n.new_net()}};
  n.add_input("a", a);
  const NetId y = n.inv(a.bit(0));
  n.add_output("y", Signal{{y}});
  n.mutable_gates()[0].drive = 2;
  EXPECT_NE(to_verilog(n, "m").find("INVX4"), std::string::npos);
  n.mutable_gates()[0].drive = 1;
  EXPECT_NE(to_verilog(n, "m").find("INVX2"), std::string::npos);
}

TEST(Verilog, InstanceCountMatchesGateCount) {
  const auto res = synth::run_flow(designs::make_d1(), synth::Flow::NewMerge);
  const std::string v = to_verilog(res.net, "d1");
  int instances = 0;
  for (std::size_t pos = 0; (pos = v.find("\n  ", pos)) != std::string::npos;
       ++pos) {
    const std::size_t s = pos + 3;
    if (v.compare(s, 3, "INV") == 0 || v.compare(s, 4, "NAND") == 0 ||
        v.compare(s, 3, "NOR") == 0 || v.compare(s, 3, "AND") == 0 ||
        v.compare(s, 2, "OR") == 0 || v.compare(s, 3, "XOR") == 0 ||
        v.compare(s, 4, "XNOR") == 0 || v.compare(s, 3, "MUX") == 0 ||
        v.compare(s, 3, "BUF") == 0) {
      ++instances;
    }
  }
  EXPECT_EQ(instances, res.net.gate_count());
}

TEST(Verilog, EveryOutputBitAssigned) {
  const auto res = synth::run_flow(designs::make_d3(), synth::Flow::NewMerge);
  const std::string v = to_verilog(res.net, "d3");
  for (const Bus& b : res.net.outputs()) {
    for (int i = 0; i < b.signal.width(); ++i) {
      const std::string want =
          "assign " + b.name + "[" + std::to_string(i) + "] = ";
      EXPECT_NE(v.find(want), std::string::npos) << want;
    }
  }
}

}  // namespace
}  // namespace dpmerge::netlist
