// Tests for the operator set beyond the paper's +, -, x, unary minus — the
// constant shifter and the comparators the paper says its analyses extend
// to (Section 1's remark), implemented here as an extension.

#include <gtest/gtest.h>

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/analysis/required_precision.h"
#include "dpmerge/cluster/clusterer.h"
#include "dpmerge/cluster/flatten.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/netlist/sim.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/synth/verify.h"
#include "dpmerge/transform/width_prune.h"

namespace dpmerge {
namespace {

using dfg::Builder;
using dfg::Graph;
using dfg::OpKind;
using dfg::Operand;

std::int64_t run1(const Graph& g, std::vector<std::int64_t> ins) {
  dfg::Evaluator ev(g);
  std::vector<BitVector> stim;
  const auto inputs = g.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    stim.push_back(BitVector::from_int(g.node(inputs[i]).width, ins[i]));
  }
  return ev.run_outputs(stim).at(0).to_int64();
}

TEST(Shl, EvaluatorSemantics) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto s = b.shl(12, Operand{a, 12, Sign::Signed}, 3);
  b.output("r", 12, Operand{s});
  EXPECT_EQ(run1(g, {5}), 40);
  EXPECT_EQ(run1(g, {-7}), -56);
  // Overflow wraps mod 2^12.
  EXPECT_EQ(run1(g, {127}), (127 << 3) - 0);
}

TEST(Shl, BitVectorShl) {
  EXPECT_EQ(BitVector::from_uint(8, 0b1011).shl(2).to_uint64(), 0b101100u);
  EXPECT_EQ(BitVector::from_uint(4, 0b1011).shl(2).to_uint64(), 0b1100u);
  EXPECT_EQ(BitVector::from_uint(4, 3).shl(0).to_uint64(), 3u);
}

TEST(Shl, InfoContentAddsShift) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto s = b.shl(16, Operand{a, 16, Sign::Signed}, 5);
  b.output("r", 16, Operand{s});
  const auto ia = analysis::compute_info_content(g);
  EXPECT_EQ(ia.out(s), (analysis::InfoContent{9, Sign::Signed}));
}

TEST(Shl, RequiredPrecisionSubtractsShift) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 16);
  const auto s = b.shl(16, Operand{a}, 6);
  b.output("r", 10, Operand{s, 10});
  const auto rp = analysis::compute_required_precision(g);
  // Only 10 output bits observed; operand bits land 6 columns higher.
  EXPECT_EQ(rp.r_in(s), 4);
  EXPECT_EQ(rp.r_out(a), 4);
}

TEST(Shl, MergesIntoClusters) {
  // y = (a << 2) + b - (c << 4): everything one cluster, rows shifted.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 6);
  const auto bb = b.input("b", 6);
  const auto c = b.input("c", 6);
  const auto sa = b.shl(12, Operand{a, 12, Sign::Signed}, 2);
  const auto sc = b.shl(12, Operand{c, 12, Sign::Signed}, 4);
  const auto t = b.add(12, Operand{sa, 12, Sign::Signed},
                       Operand{bb, 12, Sign::Signed});
  const auto z = b.sub(12, Operand{t, 12, Sign::Signed},
                       Operand{sc, 12, Sign::Signed});
  b.output("r", 12, Operand{z});
  const auto res = cluster::cluster_maximal(g);
  EXPECT_EQ(res.partition.num_clusters(), 1);
  const auto flat =
      cluster::flatten_cluster(g, res.partition.clusters[0]);
  int shifted_terms = 0;
  for (const auto& term : flat.terms) {
    if (term.shift > 0) ++shifted_terms;
  }
  EXPECT_EQ(shifted_terms, 2);

  for (auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                    synth::Flow::NewMerge}) {
    const auto fr = synth::run_flow(g, flow);
    Rng rng(31 + static_cast<int>(flow));
    std::string why;
    EXPECT_TRUE(synth::verify_netlist(fr.net, g, 30, rng, &why))
        << std::string(synth::to_string(flow)) << ": " << why;
  }
  EXPECT_EQ(run1(g, {1, 1, 1}), 4 + 1 - 16);
}

TEST(Shl, StandaloneShiftIsPureWiring) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto s = b.shl(8, Operand{a}, 3);
  b.output("r", 8, Operand{s});
  const auto fr = synth::run_flow(g, synth::Flow::NewMerge);
  EXPECT_EQ(fr.net.gate_count(), 0);  // shift by constant costs no gates
}

TEST(Comparator, EvaluatorSemantics) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto lt = b.lt_signed(8, Operand{a}, Operand{c});
  b.output("r", 1, Operand{lt, 1});
  // The output is one bit wide; mask to read it as 0/1.
  EXPECT_EQ(run1(g, {-5, 3}) & 1, 1);
  EXPECT_EQ(run1(g, {3, -5}) & 1, 0);
  EXPECT_EQ(run1(g, {3, 3}) & 1, 0);
}

TEST(Comparator, UnsignedAndEq) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto lt = b.lt_unsigned(8, Operand{a}, Operand{c});
  const auto eq = b.eq(8, Operand{a}, Operand{c});
  b.output("lt", 1, Operand{lt, 1});
  b.output("eq", 1, Operand{eq, 1});
  dfg::Evaluator ev(g);
  auto outs = ev.run_outputs(
      {BitVector::from_int(8, -1), BitVector::from_uint(8, 3)});
  EXPECT_EQ(outs[0].to_uint64(), 0u);  // 0xFF > 3 unsigned
  EXPECT_EQ(outs[1].to_uint64(), 0u);
  outs = ev.run_outputs(
      {BitVector::from_uint(8, 7), BitVector::from_uint(8, 7)});
  EXPECT_EQ(outs[0].to_uint64(), 0u);
  EXPECT_EQ(outs[1].to_uint64(), 1u);
}

TEST(Comparator, InfoContentIsOneBit) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto lt = b.lt_signed(8, Operand{a}, Operand{c});
  b.output("r", 8, Operand{lt});
  const auto ia = analysis::compute_info_content(g);
  EXPECT_EQ(ia.out(lt), (analysis::InfoContent{1, Sign::Unsigned}));
}

TEST(Comparator, RequiredPrecisionDemandsFullOperands) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto lt = b.lt_signed(8, Operand{a}, Operand{c});
  b.output("r", 1, Operand{lt, 1});
  const auto rp = analysis::compute_required_precision(g);
  EXPECT_EQ(rp.r_in(lt), 8);  // all comparison bits matter
  EXPECT_EQ(rp.r_out(a), 8);
}

TEST(Comparator, WidthIsNotPruned) {
  // Theorem 4.2 must not narrow a comparator: its width is the comparison
  // width, not a result precision.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto lt = b.lt_signed(8, Operand{a}, Operand{c});
  b.output("r", 1, Operand{lt, 1});
  const Graph before = g;
  transform::normalize_widths(g);
  EXPECT_EQ(g.node(lt).width, 8);
  Rng rng(17);
  EXPECT_TRUE(dfg::equivalent_by_simulation(before, g, 32, rng));
}

TEST(Comparator, BreaksClusters) {
  // An adder feeding a comparator cannot merge with it; the comparator's
  // consumers form their own clusters.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 6);
  const auto c = b.input("c", 6);
  const auto s = b.add(7, Operand{a, 7, Sign::Signed},
                       Operand{c, 7, Sign::Signed});
  const auto lt = b.lt_signed(7, Operand{s}, Operand{a, 7, Sign::Signed});
  const auto z = b.add(8, Operand{lt, 8, Sign::Unsigned},
                       Operand{c, 8, Sign::Signed});
  b.output("r", 8, Operand{z});
  const auto res = cluster::cluster_maximal(g);
  EXPECT_EQ(res.partition.num_clusters(), 2);  // {s} and {z}
  for (const auto& cl : res.partition.clusters) {
    EXPECT_EQ(cl.size(), 1);
  }
}

class ComparatorSynth
    : public ::testing::TestWithParam<std::tuple<OpKind, int, synth::AdderArch>> {};

TEST_P(ComparatorSynth, ExhaustiveAgainstEvaluator) {
  const auto [kind, w, arch] = GetParam();
  Graph g;
  Builder b(g);
  const auto a = b.input("a", w);
  const auto c = b.input("c", w);
  const auto cmp = g.add_node(kind, w);
  g.add_edge(a, cmp, 0);
  g.add_edge(c, cmp, 1);
  b.output("r", 1, Operand{cmp, 1});
  synth::SynthOptions opt;
  opt.adder = arch;
  const auto fr = synth::run_flow(g, synth::Flow::NewMerge, opt);
  dfg::Evaluator ev(g);
  netlist::Simulator sim(fr.net);
  for (std::uint64_t x = 0; x < (1u << w); ++x) {
    for (std::uint64_t y = 0; y < (1u << w); ++y) {
      const auto expect = ev.run_outputs(
          {BitVector::from_uint(w, x), BitVector::from_uint(w, y)})[0];
      const auto got = sim.run({{"a", BitVector::from_uint(w, x)},
                                {"c", BitVector::from_uint(w, y)}});
      ASSERT_EQ(got.at("r"), expect)
          << dfg::to_string(kind) << " " << x << "," << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsWidths, ComparatorSynth,
    ::testing::Combine(::testing::Values(OpKind::LtS, OpKind::LtU, OpKind::Eq),
                       ::testing::Values(1, 3, 5),
                       ::testing::Values(synth::AdderArch::Ripple,
                                         synth::AdderArch::KoggeStone)));

// Random sweep with shifters/comparators cranked up, all flows.
class ExtendedOpsRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtendedOpsRandom, AllFlowsEquivalent) {
  Rng rng(GetParam());
  for (int t = 0; t < 4; ++t) {
    dfg::RandomGraphOptions ropt;
    ropt.num_operators = 14;
    ropt.shl_fraction = 0.25;
    ropt.cmp_fraction = 0.2;
    ropt.mul_fraction = 0.1;
    const Graph g = dfg::random_graph(rng, ropt);
    for (auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                      synth::Flow::NewMerge}) {
      const auto fr = synth::run_flow(g, flow);
      Rng vr(GetParam() * 131 + t);
      std::string why;
      ASSERT_TRUE(synth::verify_netlist(fr.net, g, 20, vr, &why))
          << std::string(synth::to_string(flow)) << ": " << why;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtendedOpsRandom,
                         ::testing::Values(601, 602, 603, 604, 605, 606, 607,
                                           608));

}  // namespace
}  // namespace dpmerge
