#include "dpmerge/synth/cpa.h"

#include <gtest/gtest.h>

#include "dpmerge/netlist/sim.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/support/rng.h"

namespace dpmerge::synth {
namespace {

using netlist::Netlist;
using netlist::Signal;
using netlist::Simulator;

struct AdderFixture {
  Netlist net;
  explicit AdderFixture(int w, AdderArch arch, bool cin = false) {
    Signal a, b;
    for (int i = 0; i < w; ++i) a.bits.push_back(net.new_net());
    for (int i = 0; i < w; ++i) b.bits.push_back(net.new_net());
    net.add_input("a", a);
    net.add_input("b", b);
    Signal ci;
    if (cin) {
      ci.bits.push_back(net.new_net());
      net.add_input("ci", ci);
    }
    const Signal s =
        cpa(net, arch, a, b, cin ? ci.bit(0) : net.const0());
    net.add_output("s", s);
  }

  std::uint64_t run(std::uint64_t x, std::uint64_t y, int w, int ci = -1) {
    Simulator sim(net);
    std::map<std::string, BitVector> in{
        {"a", BitVector::from_uint(w, x)}, {"b", BitVector::from_uint(w, y)}};
    if (ci >= 0) in["ci"] = BitVector::from_uint(1, static_cast<unsigned>(ci));
    return sim.run(in).at("s").to_uint64();
  }
};

class CpaExhaustive
    : public ::testing::TestWithParam<std::tuple<int, AdderArch>> {};

TEST_P(CpaExhaustive, AllInputPairs) {
  const auto [w, arch] = GetParam();
  AdderFixture f(w, arch, /*cin=*/true);
  const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
  for (std::uint64_t x = 0; x <= mask; ++x) {
    for (std::uint64_t y = 0; y <= mask; ++y) {
      for (int ci = 0; ci <= 1; ++ci) {
        ASSERT_EQ(f.run(x, y, w, ci), (x + y + static_cast<unsigned>(ci)) & mask)
            << to_string(arch) << " w=" << w << " " << x << "+" << y;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallWidths, CpaExhaustive,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(AdderArch::Ripple,
                                         AdderArch::KoggeStone)));

class CpaRandomWide
    : public ::testing::TestWithParam<std::tuple<int, AdderArch>> {};

TEST_P(CpaRandomWide, MatchesNative) {
  const auto [w, arch] = GetParam();
  AdderFixture f(w, arch);
  Rng rng(static_cast<std::uint64_t>(w) * 13 + static_cast<int>(arch));
  const std::uint64_t mask =
      w >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << w) - 1;
  for (int t = 0; t < 50; ++t) {
    const std::uint64_t x = rng.next_u64() & mask;
    const std::uint64_t y = rng.next_u64() & mask;
    ASSERT_EQ(f.run(x, y, w), (x + y) & mask);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, CpaRandomWide,
    ::testing::Combine(::testing::Values(8, 13, 16, 24, 32, 48, 64),
                       ::testing::Values(AdderArch::Ripple,
                                         AdderArch::KoggeStone)));

TEST(Cpa, KoggeStoneIsFasterButBigger) {
  // The architectural tradeoff the flows rely on: at meaningful widths the
  // prefix adder is much shorter and somewhat larger than the ripple chain.
  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  AdderFixture ripple(32, AdderArch::Ripple);
  AdderFixture ks(32, AdderArch::KoggeStone);
  const auto tr = sta.analyze(ripple.net);
  const auto tk = sta.analyze(ks.net);
  EXPECT_LT(tk.longest_path_ns, tr.longest_path_ns * 0.5);
  EXPECT_GT(sta.area(ks.net), sta.area(ripple.net));
}

TEST(Cpa, DelayGrowsWithWidth) {
  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  double prev = 0.0;
  for (int w : {4, 8, 16, 32}) {
    AdderFixture f(w, AdderArch::Ripple);
    const double d = sta.analyze(f.net).longest_path_ns;
    EXPECT_GT(d, prev);
    prev = d;
  }
}

}  // namespace
}  // namespace dpmerge::synth
