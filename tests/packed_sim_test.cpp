// Property tests for the word-parallel simulator: lane-for-lane agreement
// with the scalar oracle on randomly generated DFGs synthesized through all
// three flows, packed cell semantics, and verify_netlist's packed path
// agreeing with the scalar reference implementation.

#include "dpmerge/netlist/packed_sim.h"

#include <gtest/gtest.h>

#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/netlist/sim.h"
#include "dpmerge/support/rng.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/synth/verify.h"

namespace dpmerge {
namespace {

using netlist::CellType;
using netlist::PackedSimulator;
using netlist::Simulator;
using synth::Flow;

std::vector<std::vector<BitVector>> random_stimuli(const netlist::Netlist& n,
                                                   int lanes, Rng& rng) {
  std::vector<std::vector<BitVector>> stimuli(
      static_cast<std::size_t>(lanes));
  for (auto& lane : stimuli) {
    for (const auto& bus : n.inputs()) {
      lane.push_back(rng.bits(bus.signal.width()));
    }
  }
  return stimuli;
}

TEST(PackedSim, EvalCellPackedMatchesScalar) {
  for (int ti = 0; ti < 9; ++ti) {
    const auto t = static_cast<CellType>(ti);
    const int n = netlist::cell_input_count(t);
    // Pack every input combination into distinct lanes: lane L carries
    // combination L, so word k has bit L = (L >> k) & 1.
    std::uint64_t words[3] = {0, 0, 0};
    const int combos = 1 << n;
    for (int L = 0; L < combos; ++L) {
      for (int k = 0; k < n; ++k) {
        words[k] |= static_cast<std::uint64_t>((L >> k) & 1) << L;
      }
    }
    const std::uint64_t out = netlist::eval_cell_packed(t, words);
    for (int L = 0; L < combos; ++L) {
      std::vector<bool> ins;
      for (int k = 0; k < n; ++k) ins.push_back((L >> k) & 1);
      EXPECT_EQ((out >> L) & 1, eval_cell(t, ins))
          << to_string(t) << " combo " << L;
    }
  }
}

TEST(PackedSim, MatchesScalarOnRandomNetlistsAllFlows) {
  Rng rng(20260806);
  for (int round = 0; round < 3; ++round) {
    dfg::RandomGraphOptions opt;
    opt.num_inputs = 3 + round;
    opt.num_operators = 8 + 4 * round;
    const auto g = dfg::random_graph(rng, opt);
    for (Flow f : {Flow::NoMerge, Flow::OldMerge, Flow::NewMerge}) {
      const auto flow = synth::run_flow(g, f);
      Simulator scalar(flow.net);
      PackedSimulator packed(flow.net);
      const auto stimuli =
          random_stimuli(flow.net, PackedSimulator::kLanes, rng);
      const auto batch = packed.run_batch(stimuli);
      ASSERT_EQ(batch.size(), stimuli.size());
      for (std::size_t L = 0; L < stimuli.size(); ++L) {
        const auto expect = scalar.run(stimuli[L]);
        ASSERT_EQ(batch[L].size(), expect.size());
        for (std::size_t j = 0; j < expect.size(); ++j) {
          EXPECT_EQ(batch[L][j], expect[j])
              << "flow " << synth::to_string(f) << " lane " << L << " output "
              << flow.net.outputs()[j].name;
        }
      }
    }
  }
}

TEST(PackedSim, PartialBatchesWork) {
  Rng rng(5);
  dfg::RandomGraphOptions opt;
  const auto g = dfg::random_graph(rng, opt);
  const auto flow = synth::run_flow(g, Flow::NewMerge);
  Simulator scalar(flow.net);
  PackedSimulator packed(flow.net);
  for (int lanes : {1, 3, 63}) {
    const auto stimuli = random_stimuli(flow.net, lanes, rng);
    const auto batch = packed.run_batch(stimuli);
    ASSERT_EQ(batch.size(), static_cast<std::size_t>(lanes));
    for (std::size_t L = 0; L < batch.size(); ++L) {
      EXPECT_EQ(batch[L], scalar.run(stimuli[L])) << "lane " << L;
    }
  }
  EXPECT_TRUE(packed.run_batch({}).empty());
}

TEST(PackedSim, RejectsBadStimuli) {
  Rng rng(6);
  dfg::RandomGraphOptions opt;
  const auto g = dfg::random_graph(rng, opt);
  const auto flow = synth::run_flow(g, Flow::NoMerge);
  PackedSimulator packed(flow.net);
  EXPECT_THROW(packed.run({}), std::invalid_argument);
  auto stimuli = random_stimuli(flow.net, 2, rng);
  stimuli[1][0] = BitVector(stimuli[1][0].width() + 1);
  EXPECT_THROW(packed.run_batch(stimuli), std::invalid_argument);
  EXPECT_THROW(
      packed.run_batch(std::vector<std::vector<BitVector>>(65)),
      std::invalid_argument);
}

TEST(PackedVerify, AgreesWithScalarOracle) {
  Rng graph_rng(777);
  for (int round = 0; round < 3; ++round) {
    dfg::RandomGraphOptions opt;
    opt.num_operators = 10 + 3 * round;
    const auto g = dfg::random_graph(graph_rng, opt);
    for (Flow f : {Flow::NoMerge, Flow::OldMerge, Flow::NewMerge}) {
      auto flow = synth::run_flow(g, f);
      // Same seed for both paths: identical stimulus sequences.
      Rng r1(1000 + round), r2(1000 + round);
      std::string why1, why2;
      const bool ok_packed = synth::verify_netlist(flow.net, g, 100, r1, &why1);
      const bool ok_scalar =
          synth::verify_netlist_scalar(flow.net, g, 100, r2, &why2);
      EXPECT_TRUE(ok_packed) << why1;
      EXPECT_EQ(ok_packed, ok_scalar);

      // A corrupted netlist must get the same verdict (and, on failure,
      // the same first-mismatch report) from both paths. Inverting a
      // gate's output sense keeps its arity.
      auto flipped = [](CellType t) {
        switch (t) {
          case CellType::INV: return CellType::BUF;
          case CellType::BUF: return CellType::INV;
          case CellType::NAND2: return CellType::AND2;
          case CellType::AND2: return CellType::NAND2;
          case CellType::NOR2: return CellType::OR2;
          case CellType::OR2: return CellType::NOR2;
          case CellType::XOR2: return CellType::XNOR2;
          case CellType::XNOR2: return CellType::XOR2;
          case CellType::MUX2: return CellType::MUX2;
        }
        return t;
      };
      for (auto& gate : flow.net.mutable_gates()) {
        if (flipped(gate.type) == gate.type) continue;
        const auto orig = gate.type;
        gate.type = flipped(orig);
        Rng r3(55), r4(55);
        const bool bad_packed =
            synth::verify_netlist(flow.net, g, 100, r3, &why1);
        const bool bad_scalar =
            synth::verify_netlist_scalar(flow.net, g, 100, r4, &why2);
        EXPECT_EQ(bad_packed, bad_scalar);
        if (!bad_packed && !bad_scalar) EXPECT_EQ(why1, why2);
        gate.type = orig;
        break;
      }
    }
  }
}

}  // namespace
}  // namespace dpmerge
