// dpmerge::support::ThreadPool: coverage, determinism of slot-writing
// workloads, nesting, and the shared-pool configuration contract.

#include "dpmerge/support/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dpmerge::support {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroAndSingleItem) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the caller thread.
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for(1, [&](int i) {
    EXPECT_EQ(i, 0);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, MaxThreadsOneRunsOnCaller) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> off_thread{false};
  pool.parallel_for(
      64,
      [&](int) {
        if (std::this_thread::get_id() != caller) off_thread = true;
      },
      /*max_threads=*/1);
  EXPECT_FALSE(off_thread.load());
}

TEST(ThreadPoolTest, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  constexpr int kN = 1003;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_chunks(kN, /*grain=*/64, [&](int b, int e) {
    ASSERT_LE(b, e);
    for (int i = b; i < e; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                  std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SlotWritesMatchSerial) {
  // The determinism contract: pure per-index work written into pre-sized
  // slots is schedule-independent.
  ThreadPool pool(4);
  constexpr int kN = 4096;
  std::vector<std::int64_t> par(kN), ser(kN);
  auto f = [](int i) {
    return static_cast<std::int64_t>(i) * i % 977 + (i >> 3);
  };
  for (int i = 0; i < kN; ++i) ser[static_cast<std::size_t>(i)] = f(i);
  pool.parallel_for(kN, [&](int i) { par[static_cast<std::size_t>(i)] = f(i); });
  EXPECT_EQ(par, ser);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A parallel_for issued from inside pool work must not deadlock or
  // re-enter the pool: it runs inline on the worker.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(32);
  pool.parallel_for(4, [&](int outer) {
    pool.parallel_for(8, [&](int inner) {
      hits[static_cast<std::size_t>(outer * 8 + inner)].fetch_add(
          1, std::memory_order_relaxed);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentCallersSerialize) {
  // Two threads driving the same pool: jobs serialize internally, every
  // index of both jobs runs exactly once.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> a(512), b(512);
  std::thread t1([&] {
    pool.parallel_for(512, [&](int i) {
      a[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
  });
  std::thread t2([&] {
    pool.parallel_for(512, [&](int i) {
      b[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
  });
  t1.join();
  t2.join();
  for (const auto& h : a) EXPECT_EQ(h.load(), 1);
  for (const auto& h : b) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, TaskExceptionPropagatesToCaller) {
  // A throwing task aborts the dispenser, workers quiesce, and the caller
  // sees the exception; indices not yet dispatched never run.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(10000,
                        [&](int i) {
                          if (i == 17) throw std::runtime_error("task 17");
                          ran.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  EXPECT_LT(ran.load(), 10000);
  // The pool stays usable after a failed job.
  std::vector<std::atomic<int>> hits(256);
  pool.parallel_for(256, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for_chunks(
                   4096, /*grain=*/64,
                   [&](int b, int) {
                     if (b >= 1024) throw std::runtime_error("chunk");
                   }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SerialInlineExceptionPropagates) {
  // The serial fallback (max_threads=1) must honour the same contract.
  ThreadPool pool(4);
  int ran = 0;
  EXPECT_THROW(pool.parallel_for(
                   64,
                   [&](int i) {
                     if (i == 5) throw std::runtime_error("serial");
                     ++ran;
                   },
                   /*max_threads=*/1),
               std::runtime_error);
  EXPECT_EQ(ran, 5);  // inline loop stops at the throwing index
}

TEST(ThreadPoolTest, DistinctPoolsRunConcurrently) {
  // Two pools driven from two threads don't share job state: both jobs
  // cover their ranges exactly once.
  ThreadPool p1(3), p2(3);
  std::vector<std::atomic<int>> a(512), b(512);
  std::thread t1([&] {
    p1.parallel_for(512, [&](int i) {
      a[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
  });
  std::thread t2([&] {
    p2.parallel_for(512, [&](int i) {
      b[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
  });
  t1.join();
  t2.join();
  for (const auto& h : a) EXPECT_EQ(h.load(), 1);
  for (const auto& h : b) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, StressSchedulerCoversAndMatchesSerial) {
  // Under the seeded stress scheduler every index still runs exactly once,
  // and slot-writing workloads stay byte-identical to serial across seeds.
  ThreadPool pool(4);
  constexpr int kN = 2048;
  std::vector<std::int64_t> ser(kN);
  auto f = [](int i) {
    return static_cast<std::int64_t>(i) * 31 % 509 - (i >> 2);
  };
  for (int i = 0; i < kN; ++i) ser[static_cast<std::size_t>(i)] = f(i);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    ThreadPool::StressOptions stress;
    stress.enabled = true;
    stress.seed = seed;
    stress.max_spin = 64;
    pool.set_stress(stress);
    std::vector<std::int64_t> par(kN);
    pool.parallel_for(kN,
                      [&](int i) { par[static_cast<std::size_t>(i)] = f(i); });
    EXPECT_EQ(par, ser) << "seed " << seed;
  }
  pool.set_stress({});
}

TEST(ThreadPoolTest, StressSchedulerPermutesSerialFallback) {
  // With stress on, even the single-caller path dispatches in the permuted
  // order, so order-dependent workloads are exposed on one core.
  ThreadPool pool(1);
  ThreadPool::StressOptions stress;
  stress.enabled = true;
  stress.seed = 7;
  stress.max_spin = 0;
  pool.set_stress(stress);
  std::vector<int> order;
  pool.parallel_for(32, [&](int i) { order.push_back(i); });
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> iota(32);
  for (int i = 0; i < 32; ++i) iota[static_cast<std::size_t>(i)] = i;
  EXPECT_EQ(sorted, iota);   // every index exactly once...
  EXPECT_NE(order, iota);    // ...in a genuinely shuffled order
  pool.set_stress({});
}

TEST(ThreadPoolTest, SetSharedThreadsInsidePoolWorkThrows) {
  // Reconfiguring the shared pool from inside pool work would race the job
  // executing the call; the lifecycle hazard is detected and diagnosed.
  ThreadPool pool(4);
  std::atomic<int> threw{0};
  pool.parallel_for(8, [&](int) {
    try {
      ThreadPool::set_shared_threads(2);
    } catch (const std::logic_error&) {
      threw.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(threw.load(), 8);
}

TEST(ThreadPoolTest, SharedPoolConfiguration) {
  const int before = ThreadPool::shared_threads();
  ThreadPool::set_shared_threads(2);
  EXPECT_EQ(ThreadPool::shared_threads(), 2);
  // The cap applies to the already-created shared pool: with a cap of 1,
  // work stays on the caller.
  ThreadPool::set_shared_threads(1);
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> off_thread{false};
  ThreadPool::shared().parallel_for(64, [&](int) {
    if (std::this_thread::get_id() != caller) off_thread = true;
  });
  EXPECT_FALSE(off_thread.load());
  ThreadPool::set_shared_threads(before);
}

}  // namespace
}  // namespace dpmerge::support
