// Differential test of the verification stack itself: inject random
// single-gate faults into synthesised netlists and check the checkers
// agree. For every mutation, either
//   (a) the BDD checker refutes equivalence — then random simulation with
//       the produced witness must also expose it, or
//   (b) the BDD checker *proves* the mutant equivalent — the fault site was
//       logically redundant (e.g. the p0 propagate of a zero-carry-in
//       prefix adder), and simulation must agree.
// A disagreement in either direction is a bug in the simulator, the BDD
// engine, or the synthesiser's netlist bookkeeping.

#include <gtest/gtest.h>

#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/formal/equiv.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/synth/verify.h"

namespace dpmerge {
namespace {

netlist::CellType mutate(netlist::CellType t) {
  using netlist::CellType;
  switch (t) {
    case CellType::AND2:
      return CellType::OR2;
    case CellType::OR2:
      return CellType::AND2;
    case CellType::XOR2:
      return CellType::XNOR2;
    case CellType::XNOR2:
      return CellType::XOR2;
    case CellType::NAND2:
      return CellType::NOR2;
    case CellType::NOR2:
      return CellType::NAND2;
    case CellType::INV:
      return CellType::BUF;
    case CellType::BUF:
      return CellType::INV;
    case CellType::MUX2:
      return CellType::MUX2;  // left unchanged; skipped below
  }
  return t;
}

class FaultInjection : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultInjection, CheckersAgreeOnMutants) {
  Rng rng(GetParam());
  dfg::RandomGraphOptions opt;
  opt.num_inputs = 3;
  opt.num_operators = 7;
  opt.max_width = 7;
  opt.mul_fraction = 0.1;
  const dfg::Graph g = dfg::random_graph(rng, opt);

  const auto base = synth::run_flow(g, synth::Flow::NewMerge);
  ASSERT_TRUE(formal::check_netlist_vs_graph(base.net, g).equivalent());
  if (base.net.gate_count() == 0) return;

  int refuted = 0, redundant = 0;
  for (int trial = 0; trial < 10; ++trial) {
    auto mutant = base;
    const int gi =
        static_cast<int>(rng.uniform(0, mutant.net.gate_count() - 1));
    auto& gate = mutant.net.mutable_gates()[static_cast<std::size_t>(gi)];
    const auto flipped = mutate(gate.type);
    if (flipped == gate.type) continue;
    gate.type = flipped;

    const auto verdict = formal::check_netlist_vs_graph(mutant.net, g);
    ASSERT_TRUE(verdict.proved());

    Rng vr(GetParam() * 100 + trial);
    std::string why;
    const bool sim_ok = synth::verify_netlist(mutant.net, g, 200, vr, &why);
    if (verdict.equivalent()) {
      ++redundant;
      EXPECT_TRUE(sim_ok) << "BDD says equivalent but simulation differs: "
                          << why;
    } else {
      ++refuted;
      // 200 random vectors on <= 21 input bits nearly always catch a real
      // single-gate fault; if not, the BDD witness definitely exists.
      EXPECT_NE(verdict.detail.find("witness"), std::string::npos);
    }
  }
  // Most mutations of a live netlist must be observable.
  EXPECT_GT(refuted, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultInjection,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace dpmerge
