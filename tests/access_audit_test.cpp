// support::audit::AccessAudit — the parallel write-footprint race lint:
// clean slot-writing jobs audit as disjoint, deliberately-injected overlaps
// are caught and named, and the real analysis/cluster sweeps prove their
// footprints disjoint end-to-end through the full new-merge flow.

#include "dpmerge/support/access_audit.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dpmerge/designs/scale.h"
#include "dpmerge/support/thread_pool.h"
#include "dpmerge/synth/flow.h"

namespace dpmerge::support::audit {
namespace {

/// RAII: enables the audit for one test and restores a clean slate.
class AuditScope {
 public:
  AuditScope() {
    AccessAudit::instance().clear();
    AccessAudit::instance().set_enabled(true);
  }
  ~AuditScope() {
    AccessAudit::instance().set_enabled(false);
    AccessAudit::instance().clear();
  }
};

TEST(AccessAuditTest, DisjointSlotWritesPass) {
  AuditScope scope;
  ThreadPool pool(4);
  std::vector<int> out(512);
  JobLabel label("test.disjoint");
  pool.parallel_for(512, [&](int i) {
    audit_write(Domain::Custom, i);
    out[static_cast<std::size_t>(i)] = i;
  });
  auto& aud = AccessAudit::instance();
  EXPECT_EQ(aud.jobs_audited(), 1);
  EXPECT_EQ(aud.accesses_recorded(), 512);
  EXPECT_TRUE(aud.take_violations().empty());
}

TEST(AccessAuditTest, SharedReadsDoNotConflict) {
  // Many tasks reading one resource is fine as long as nobody writes it.
  AuditScope scope;
  ThreadPool pool(4);
  pool.parallel_for(128, [&](int i) {
    audit_read(Domain::IcNode, 7);  // everyone reads node 7
    audit_write(Domain::Custom, i);
  });
  EXPECT_TRUE(AccessAudit::instance().take_violations().empty());
}

TEST(AccessAuditTest, InjectedWriteWriteOverlapCaughtAndNamed) {
  // Two tasks write the same slot: the lint must catch it and name the
  // owning sweep, the resource, and both tasks.
  AuditScope scope;
  ThreadPool pool(4);
  JobLabel label("test.injected_overlap");
  pool.parallel_for(64, [&](int i) {
    // Every task writes its own slot, but tasks 3 and 9 also both write
    // slot 1000 — a deliberate race seeded into an otherwise clean job.
    audit_write(Domain::BreakVerdict, i);
    if (i == 3 || i == 9) audit_write(Domain::BreakVerdict, 1000);
  });
  const auto violations = AccessAudit::instance().take_violations();
  ASSERT_EQ(violations.size(), 1u);
  const Violation& v = violations[0];
  EXPECT_EQ(v.job, "test.injected_overlap");
  EXPECT_EQ(v.domain, Domain::BreakVerdict);
  EXPECT_EQ(v.id, 1000);
  EXPECT_TRUE(v.write_write);
  EXPECT_EQ(v.task_a, 3);
  EXPECT_EQ(v.task_b, 9);
  EXPECT_EQ(v.to_text(),
            "test.injected_overlap: write/write overlap on "
            "break.verdict#1000 between tasks 3 and 9");
}

TEST(AccessAuditTest, InjectedWriteReadOverlapCaught) {
  AuditScope scope;
  ThreadPool pool(4);
  JobLabel label("test.wr");
  pool.parallel_for(64, [&](int i) {
    audit_write(Domain::Custom, i);
    if (i == 5) audit_write(Domain::IcNode, 42);
    if (i == 20) audit_read(Domain::IcNode, 42);  // reads what task 5 writes
  });
  const auto violations = AccessAudit::instance().take_violations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_FALSE(violations[0].write_write);
  EXPECT_EQ(violations[0].domain, Domain::IcNode);
  EXPECT_EQ(violations[0].id, 42);
  EXPECT_EQ(violations[0].task_a, 5);
  EXPECT_EQ(violations[0].task_b, 20);
}

TEST(AccessAuditTest, SerialFallbackAuditsIdentically) {
  // The instrumented serial path records the same per-task footprints a
  // parallel dispatch would — a single-core run proves the same property.
  AuditScope scope;
  ThreadPool pool(1);
  JobLabel label("test.serial");
  pool.parallel_for(32, [&](int i) {
    audit_write(Domain::Custom, i % 8);  // tasks 8..31 collide with 0..7
  });
  const auto violations = AccessAudit::instance().take_violations();
  EXPECT_EQ(violations.size(), 8u);  // one per contested slot
  for (const auto& v : violations) EXPECT_TRUE(v.write_write);
}

TEST(AccessAuditTest, NestedParallelForFoldsIntoOuterTask) {
  // A nested inline parallel_for runs within the enclosing task, so its
  // accesses belong to that task — same-slot writes across the *outer*
  // tasks still conflict, the inner loop's own indices don't.
  AuditScope scope;
  ThreadPool pool(4);
  JobLabel label("test.nested");
  pool.parallel_for(8, [&](int outer) {
    pool.parallel_for(4, [&](int inner) {
      audit_write(Domain::Custom, outer * 4 + inner);
    });
  });
  EXPECT_TRUE(AccessAudit::instance().take_violations().empty());
  // Only the outer job is audited; the nested calls fold in.
  EXPECT_EQ(AccessAudit::instance().jobs_audited(), 1);
}

TEST(AccessAuditTest, DisabledAuditRecordsNothing) {
  AccessAudit::instance().clear();
  ASSERT_FALSE(audit_enabled());
  ThreadPool pool(4);
  pool.parallel_for(64, [&](int i) { audit_write(Domain::Custom, i % 2); });
  EXPECT_EQ(AccessAudit::instance().jobs_audited(), 0);
  EXPECT_TRUE(AccessAudit::instance().take_violations().empty());
}

TEST(AccessAuditTest, FullFlowFootprintsAreDisjoint) {
  // End-to-end: the level-parallel IC/RP sweeps, the chunked break sweep
  // and the Huffman bound evaluation of a real design all audit clean.
  AuditScope scope;
  ThreadPool::set_shared_threads(4);
  synth::SynthOptions opt;
  opt.threads = 4;
  const auto g = designs::layered_network(24, 24, 16);
  (void)synth::run_flow(g, synth::Flow::NewMerge, opt);
  auto& aud = AccessAudit::instance();
  const auto violations = aud.take_violations();
  for (const auto& v : violations) ADD_FAILURE() << v.to_text();
  EXPECT_GT(aud.jobs_audited(), 0);
  EXPECT_GT(aud.accesses_recorded(), 0);
  ThreadPool::set_shared_threads(0);
}

}  // namespace
}  // namespace dpmerge::support::audit
