// Tests for dpmerge::obs: JSON validation, the span tracer's Chrome
// trace_event export, stat sinks/scopes and the process-global registry,
// FlowReport contents for a real flow, and the determinism contract of the
// --stats-json artifacts (same workload => byte-identical JSON, regardless
// of thread schedule, when wall-clock fields are zeroed).

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "dpmerge/designs/testcases.h"
#include "dpmerge/obs/obs.h"
#include "dpmerge/synth/flow.h"

namespace dpmerge {
namespace {

// Every test that touches the (process-global) tracer serialises through
// this fixture: stop + clear so no events leak between tests.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::instance().stop();
    obs::Tracer::instance().clear();
  }
  void TearDown() override {
    obs::Tracer::instance().stop();
    obs::Tracer::instance().clear();
  }
};

TEST(JsonValidTest, AcceptsWellFormedValues) {
  for (const char* ok :
       {"{}", "[]", "0", "-12.5e3", "true", "false", "null", "\"s\"",
        R"({"a":[1,2,{"b":null}],"c":"é\n"})", "[[[[1]]]]",
        R"({"x":1e-10,"y":[true,false]})"}) {
    std::string err;
    EXPECT_TRUE(obs::json_valid(ok, &err)) << ok << ": " << err;
  }
}

TEST(JsonValidTest, RejectsMalformedValues) {
  for (const char* bad :
       {"", "{", "}", "[1,]", "{\"a\":}", "{a:1}", "01", "+1", "1.",
        "\"unterminated", "tru", "[1] extra", "{\"a\":1,}", "\"bad\\x\"",
        "nan"}) {
    EXPECT_FALSE(obs::json_valid(bad)) << bad;
  }
}

TEST(JsonValidTest, ReportsErrorOffset) {
  std::string err;
  EXPECT_FALSE(obs::json_valid("[1,2,", &err));
  EXPECT_NE(err.find("at byte"), std::string::npos);
}

TEST(JsonNumberTest, NonFiniteBecomesZero) {
  EXPECT_EQ(obs::json_number(0.0 / 0.0), "0");
  EXPECT_EQ(obs::json_number(1.0 / 0.0), "0");
  EXPECT_EQ(obs::json_number(1.5), "1.5");
}

TEST_F(TracerTest, IdleTracerRecordsNothing) {
  {
    obs::Span span("idle.span");
    obs::instant("idle.instant");
  }
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

TEST_F(TracerTest, ExportIsValidChromeTraceJson) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::Tracer::instance().start();
  {
    obs::Span outer("outer");
    {
      obs::Span inner("inner \"quoted\"\n",
                      obs::TraceArgs()
                          .add("count", std::int64_t{3})
                          .add("ratio", 0.5)
                          .add("label", "a\\b\t"));
    }
    obs::instant("marker", obs::TraceArgs().add("k", "v").str());
  }
  obs::Tracer::instance().stop();
  EXPECT_EQ(obs::Tracer::instance().event_count(), 3u);

  const std::string json = obs::Tracer::instance().json();
  std::string err;
  ASSERT_TRUE(obs::json_valid(json, &err)) << err;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);   // complete spans
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);   // instant
  EXPECT_NE(json.find("\"cat\":\"dpmerge\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"count\":3"), std::string::npos);
}

TEST_F(TracerTest, PerThreadBuffersMergeAtExport) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::Tracer::instance().start();
  constexpr int kThreads = 4, kEach = 50;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kEach; ++i) obs::instant("thread.event");
    });
  }
  for (auto& th : pool) th.join();
  obs::Tracer::instance().stop();
  EXPECT_EQ(obs::Tracer::instance().event_count(),
            static_cast<std::size_t>(kThreads * kEach));
  std::string err;
  EXPECT_TRUE(obs::json_valid(obs::Tracer::instance().json(), &err)) << err;
}

TEST(StatSinkTest, AddGetAndMax) {
  obs::StatSink sink;
  sink.add("a");
  sink.add("a", 4);
  sink.set_max("m", 3);
  sink.set_max("m", 1);
  EXPECT_EQ(sink.get("a"), 5);
  EXPECT_EQ(sink.get("m"), 3);
  EXPECT_EQ(sink.get("absent"), 0);
}

TEST(StatScopeTest, InstallsAndRestoresNested) {
  if (!obs::compiled_in()) {
    obs::StatSink sink;
    obs::StatScope scope(&sink);
    obs::stat_add("x");
    EXPECT_EQ(sink.get("x"), 0);  // hooks are no-ops when compiled out
    EXPECT_EQ(obs::current_sink(), nullptr);
    return;
  }
  EXPECT_EQ(obs::current_sink(), nullptr);
  obs::StatSink outer, inner;
  {
    obs::StatScope s1(&outer);
    obs::stat_add("hits");
    {
      obs::StatScope s2(&inner);
      obs::stat_add("hits", 2);
      EXPECT_EQ(obs::current_sink(), &inner);
    }
    obs::stat_add("hits");
    EXPECT_EQ(obs::current_sink(), &outer);
  }
  EXPECT_EQ(obs::current_sink(), nullptr);
  EXPECT_EQ(outer.get("hits"), 2);
  EXPECT_EQ(inner.get("hits"), 2);
}

TEST(RegistryTest, CountersAreExactUnderThreads) {
  obs::Counter& c = obs::Registry::instance().counter("test.reg.hammer");
  c.reset();
  constexpr int kThreads = 8, kEach = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&c] {
      for (int i = 0; i < kEach; ++i) c.add();
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kEach);
}

TEST(RegistryTest, HistogramBucketsAndJson) {
  obs::Histogram& h = obs::Registry::instance().histogram("test.reg.hist");
  h.reset();
  h.observe(0);
  h.observe(1);
  h.observe(5);
  h.observe(64);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 70);
  const std::string json = obs::Registry::instance().json();
  std::string err;
  EXPECT_TRUE(obs::json_valid(json, &err)) << err;
  EXPECT_NE(json.find("test.reg.hist"), std::string::npos);
}

TEST(FlowReportTest, NewMergeFlowPopulatesReport) {
  const auto cases = designs::all_testcases();
  const auto& d4 = cases.at(3);
  ASSERT_EQ(d4.name, "D4");
  const auto res = synth::run_flow(d4.graph, synth::Flow::NewMerge);
  const obs::FlowReport& rep = res.report;

  EXPECT_EQ(rep.flow, "new-merge");
  EXPECT_EQ(rep.cluster_iterations, res.cluster_iterations);
  EXPECT_GE(rep.cluster_iterations, 1);
  EXPECT_GT(rep.merge_decisions, 0);
  if (obs::compiled_in()) {  // sourced from sink counters, 0 when stubbed out
    EXPECT_GT(rep.csa_rows, 0);
    EXPECT_GE(rep.cpa_count, 1);
  }
  EXPECT_FALSE(rep.cells_by_type.empty());
  // Cell histogram covers the whole netlist.
  std::int64_t cells = 0;
  for (const auto& [type, n] : rep.cells_by_type) cells += n;
  EXPECT_EQ(cells, res.net.gate_count());
  // Stages in pipeline order, each name exactly once.
  ASSERT_EQ(rep.stages.size(), 3u);
  EXPECT_EQ(rep.stages[0].name, "normalize");
  EXPECT_EQ(rep.stages[1].name, "cluster");
  EXPECT_EQ(rep.stages[2].name, "synth");
  EXPECT_EQ(rep.stages[2].out_nodes, res.net.gate_count());
  // One iteration entry per clusterer iteration across all feedback rounds.
  EXPECT_EQ(static_cast<std::int64_t>(rep.iterations.size()),
            rep.cluster_iterations);

  std::string json;
  rep.to_json(json);
  std::string err;
  EXPECT_TRUE(obs::json_valid(json, &err)) << err;
  EXPECT_FALSE(rep.to_text().empty());
}

TEST(FlowReportTest, BaselineFlowsReportMergeDecisions) {
  const auto cases = designs::all_testcases();
  const auto& d1 = cases.at(0);
  const auto none = synth::run_flow(d1.graph, synth::Flow::NoMerge);
  EXPECT_EQ(none.report.merge_decisions, 0);  // every operator standalone
  const auto old = synth::run_flow(d1.graph, synth::Flow::OldMerge);
  EXPECT_GT(old.report.merge_decisions, 0);
  EXPECT_GE(none.report.merge_decisions + none.partition.num_clusters(),
            old.report.merge_decisions + old.partition.num_clusters());
}

/// The determinism contract behind `--stats-json ... --stats-deterministic`:
/// identical workloads must serialise byte-identically with zero_times set,
/// whatever the thread schedule.
TEST(StatsDeterminismTest, ZeroedTimesAreByteIdenticalAcrossRuns) {
  const auto cases = designs::all_testcases();
  const synth::Flow flows[] = {synth::Flow::NoMerge, synth::Flow::OldMerge,
                               synth::Flow::NewMerge};

  auto run_all = [&](int threads) {
    std::vector<obs::FlowReport> reports(cases.size() * 3);
    std::vector<std::thread> pool;
    const int n = static_cast<int>(reports.size());
    std::atomic<int> next{0};
    auto work = [&] {
      for (int cell = next.fetch_add(1); cell < n;
           cell = next.fetch_add(1)) {
        const auto& tc = cases[static_cast<std::size_t>(cell / 3)];
        auto res = synth::run_flow(tc.graph, flows[cell % 3]);
        res.report.design = tc.name;
        reports[static_cast<std::size_t>(cell)] = std::move(res.report);
      }
    };
    for (int t = 0; t < threads; ++t) pool.emplace_back(work);
    for (auto& th : pool) th.join();
    std::ostringstream os;
    obs::StatsJsonOptions opt;
    opt.zero_times = true;
    obs::write_stats_json(os, "obs_test", 1, reports, opt);
    return os.str();
  };

  const std::string one = run_all(1);
  const std::string four = run_all(4);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
  std::string err;
  EXPECT_TRUE(obs::json_valid(one, &err)) << err;
}

TEST(CompiledOutTest, DisabledBuildKeepsArtifactsValidButEmpty) {
  if (obs::compiled_in()) {
    GTEST_SKIP() << "obs compiled in; covered by the DPMERGE_OBS=OFF CI job";
  }
  // start() must be a no-op and every hook inert...
  obs::Tracer::instance().start();
  EXPECT_FALSE(obs::Tracer::instance().enabled());
  EXPECT_FALSE(obs::tracing());
  obs::StatSink sink;
  obs::StatScope scope(&sink);
  obs::stat_add("never");
  EXPECT_EQ(sink.get("never"), 0);
  // ...but the export machinery still emits valid (empty) artifacts.
  std::string err;
  EXPECT_TRUE(obs::json_valid(obs::Tracer::instance().json(), &err)) << err;
}

}  // namespace
}  // namespace dpmerge
