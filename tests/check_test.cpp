// Tests for dpmerge::check: hand-corrupted graphs/netlists must each trip
// exactly the expected rule, the paper designs must come out clean, and the
// pass-boundary hooks must fire (or stay free) per CheckPolicy.

#include <gtest/gtest.h>

#include "dpmerge/check/absint.h"
#include "dpmerge/check/check.h"
#include "dpmerge/designs/figures.h"
#include "dpmerge/designs/kernels.h"
#include "dpmerge/designs/testcases.h"
#include "dpmerge/frontend/parser.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/transform/width_prune.h"

namespace dpmerge {
namespace {

using check::CheckPolicy;
using check::CheckReport;
using check::PolicyScope;
using dfg::Graph;
using dfg::NodeId;
using dfg::OpKind;

/// A minimal well-formed graph: out = a + b.
Graph small_adder() {
  Graph g;
  const NodeId a = g.add_node(OpKind::Input, 8, "a");
  const NodeId b = g.add_node(OpKind::Input, 8, "b");
  const NodeId s = g.add_node(OpKind::Add, 9);
  g.add_edge(a, s, 0, 9, Sign::Unsigned);
  g.add_edge(b, s, 1, 9, Sign::Unsigned);
  const NodeId o = g.add_node(OpKind::Output, 9, "out");
  g.add_edge(s, o, 0, 9, Sign::Unsigned);
  return g;
}

netlist::Netlist small_netlist() {
  netlist::Netlist n;
  netlist::Signal in;
  in.bits = {n.new_net(), n.new_net()};
  n.add_input("x", in);
  netlist::Signal out;
  out.bits.push_back(n.add_gate(netlist::CellType::AND2,
                                {in.bit(0), in.bit(1)}));
  n.add_output("y", out);
  return n;
}

TEST(VerifyGraph, CleanGraphPasses) {
  const CheckReport rep = check::verify(small_adder());
  EXPECT_TRUE(rep.clean()) << rep.to_text();
}

TEST(VerifyGraph, DirectedCycle) {
  Graph g = small_adder();
  // A second adder wired mutually with the first: 2 -> 4 -> 2.
  const NodeId s2 = g.add_node(OpKind::Add, 9);
  g.add_edge(NodeId{2}, s2, 0, 9, Sign::Unsigned);
  g.add_edge(s2, NodeId{2}, 2, 9, Sign::Unsigned);
  const CheckReport rep = check::verify(g);
  EXPECT_TRUE(rep.has_rule("dfg.graph.cycle")) << rep.to_text();
  EXPECT_FALSE(rep.ok());
}

TEST(VerifyGraph, MissingOperand) {
  Graph g;
  const NodeId a = g.add_node(OpKind::Input, 8, "a");
  const NodeId s = g.add_node(OpKind::Add, 8);
  g.add_edge(a, s, 0, 8, Sign::Unsigned);  // port 1 never connected
  const NodeId o = g.add_node(OpKind::Output, 8, "out");
  g.add_edge(s, o, 0, 8, Sign::Unsigned);
  const CheckReport rep = check::verify(g);
  EXPECT_EQ(rep.count_rule("dfg.node.arity"), 1) << rep.to_text();
}

TEST(VerifyGraph, UnconnectedPortSlot) {
  Graph g;
  const NodeId a = g.add_node(OpKind::Input, 8, "a");
  const NodeId s = g.add_node(OpKind::Add, 8);
  g.add_edge(a, s, 1, 8, Sign::Unsigned);  // port 0 left as a hole
  const NodeId o = g.add_node(OpKind::Output, 8, "out");
  g.add_edge(s, o, 0, 8, Sign::Unsigned);
  const CheckReport rep = check::verify(g);
  EXPECT_EQ(rep.count_rule("dfg.port.unconnected"), 1) << rep.to_text();
  EXPECT_FALSE(rep.has_rule("dfg.node.arity")) << rep.to_text();
}

TEST(VerifyGraph, OutputWithFanout) {
  Graph g = small_adder();
  const NodeId ext = g.add_node(OpKind::Extension, 4);
  g.add_edge(NodeId{3}, ext, 0, 9, Sign::Unsigned);  // node 3 is the Output
  const NodeId o2 = g.add_node(OpKind::Output, 4, "out2");
  g.add_edge(ext, o2, 0, 4, Sign::Unsigned);
  const CheckReport rep = check::verify(g);
  EXPECT_EQ(rep.count_rule("dfg.output.fanout"), 1) << rep.to_text();
}

TEST(VerifyGraph, NonCanonicalConstant) {
  Graph g;
  const NodeId c = g.add_const(BitVector::from_uint(8, 200));
  const NodeId o = g.add_node(OpKind::Output, 8, "out");
  g.add_edge(c, o, 0, 8, Sign::Unsigned);
  g.set_node_width(c, 5);  // value stays 8 bits wide
  const CheckReport rep = check::verify(g);
  EXPECT_EQ(rep.count_rule("dfg.const.canonical"), 1) << rep.to_text();
}

TEST(VerifyGraph, SignedComparatorEdge) {
  Graph g;
  const NodeId a = g.add_node(OpKind::Input, 8, "a");
  const NodeId b = g.add_node(OpKind::Input, 8, "b");
  const NodeId lt = g.add_node(OpKind::LtU, 8);
  g.add_edge(a, lt, 0, 8, Sign::Unsigned);
  g.add_edge(b, lt, 1, 8, Sign::Unsigned);
  const NodeId o = g.add_node(OpKind::Output, 4, "out");
  const auto e = g.add_edge(lt, o, 0, 1, Sign::Unsigned);
  g.set_edge_sign(e, Sign::Signed);
  const CheckReport rep = check::verify(g);
  EXPECT_EQ(rep.count_rule("dfg.sign.comparator"), 1) << rep.to_text();
}

TEST(VerifyGraph, ShiftAttributeOnNonShlNode) {
  Graph g = small_adder();
  g.set_node_shift(NodeId{2}, 3);  // node 2 is the Add
  const CheckReport rep = check::verify(g);
  EXPECT_EQ(rep.count_rule("dfg.shl.shift"), 1) << rep.to_text();
}

TEST(VerifyGraph, WideShiftWarnsButStaysOk) {
  Graph g;
  const NodeId a = g.add_node(OpKind::Input, 4, "a");
  const NodeId sh = g.add_node(OpKind::Shl, 4);
  g.set_node_shift(sh, 7);
  g.add_edge(a, sh, 0, 4, Sign::Unsigned);
  const NodeId o = g.add_node(OpKind::Output, 4, "out");
  g.add_edge(sh, o, 0, 4, Sign::Unsigned);
  const CheckReport rep = check::verify(g);
  EXPECT_TRUE(rep.ok()) << rep.to_text();
  EXPECT_EQ(rep.count_rule("dfg.shl.wide-shift"), 1) << rep.to_text();
}

TEST(VerifyNetlist, CleanNetlistPasses) {
  const CheckReport rep = check::verify(small_netlist());
  EXPECT_TRUE(rep.ok()) << rep.to_text();
}

TEST(VerifyNetlist, MultiDrivenNet) {
  netlist::Netlist n = small_netlist();
  const auto out0 = n.gates()[0].output;
  n.add_gate(netlist::CellType::INV, {n.inputs()[0].signal.bit(0)});
  n.mutable_gates()[1].output = out0;  // second driver for the AND output
  const CheckReport rep = check::verify(n);
  EXPECT_EQ(rep.count_rule("net.multi-driven"), 1) << rep.to_text();
}

TEST(VerifyNetlist, CombinationalLoop) {
  netlist::Netlist n = small_netlist();
  n.add_gate(netlist::CellType::INV, {n.new_net()});
  n.add_gate(netlist::CellType::INV, {n.new_net()});
  auto& gates = n.mutable_gates();
  // inv1 reads inv2's output and vice versa.
  gates[1].inputs[0] = gates[2].output;
  gates[2].inputs[0] = gates[1].output;
  const CheckReport rep = check::verify(n);
  EXPECT_EQ(rep.count_rule("net.comb-loop"), 1) << rep.to_text();
}

TEST(VerifyNetlist, FloatingGateInput) {
  netlist::Netlist n = small_netlist();
  n.add_gate(netlist::CellType::INV, {n.new_net()});
  const CheckReport rep = check::verify(n);
  EXPECT_EQ(rep.count_rule("net.floating-input"), 1) << rep.to_text();
}

TEST(VerifyNetlist, UndrivenPrimaryOutput) {
  netlist::Netlist n = small_netlist();
  netlist::Signal s;
  s.bits = {n.new_net(), n.new_net()};
  n.add_output("z", s);
  const CheckReport rep = check::verify(n);
  EXPECT_EQ(rep.count_rule("net.undriven-output"), 2) << rep.to_text();
}

TEST(VerifyNetlist, GatePinArity) {
  netlist::Netlist n = small_netlist();
  n.mutable_gates()[0].inputs.push_back(n.inputs()[0].signal.bit(0));
  const CheckReport rep = check::verify(n);
  EXPECT_EQ(rep.count_rule("net.gate.arity"), 1) << rep.to_text();
}

// ------------------------------------------------------- analysis lints --

TEST(AnalysisLint, StaleInfoContentAfterMutation) {
  Graph g = small_adder();
  auto ia = analysis::compute_info_content(g);
  const NodeId extra = g.add_node(OpKind::Output, 9, "late");
  g.add_edge(NodeId{2}, extra, 0, 9, Sign::Unsigned);
  const CheckReport rep = check::lint_info_content(g, ia);
  EXPECT_TRUE(rep.has_rule("ic.stale")) << rep.to_text();
}

TEST(AnalysisLint, StaleRequiredPrecisionAfterMutation) {
  Graph g = small_adder();
  auto rp = analysis::compute_required_precision(g);
  // Shrinking the output edge changes what the adder must deliver.
  g.set_edge_width(g.node(NodeId{3}).in[0], 4);
  const CheckReport rep = check::lint_required_precision(g, rp);
  EXPECT_TRUE(rep.has_rule("rp.stale")) << rep.to_text();
}

TEST(AnalysisLint, UnsoundClaimIsContradicted) {
  Graph g;
  const NodeId c = g.add_const(BitVector::from_uint(8, 255));
  const NodeId o = g.add_node(OpKind::Output, 8, "out");
  g.add_edge(c, o, 0, 8, Sign::Unsigned);
  auto ia = analysis::compute_info_content(g);
  // Claim the constant fits in 4 unsigned bits; bit 7 is provably 1.
  ia.at_output_port[static_cast<std::size_t>(c.value)] = {4, Sign::Unsigned};
  const CheckReport rep = check::lint_info_content(g, ia);
  EXPECT_TRUE(rep.has_rule("ic.unsound")) << rep.to_text();
}

TEST(AnalysisLint, SoundResultsAreClean) {
  for (const auto& tc : designs::all_testcases()) {
    auto ia = analysis::compute_info_content(tc.graph);
    auto rp = analysis::compute_required_precision(tc.graph);
    EXPECT_TRUE(check::lint_info_content(tc.graph, ia).clean()) << tc.name;
    EXPECT_TRUE(check::lint_required_precision(tc.graph, rp).clean())
        << tc.name;
  }
}

// --------------------------------------------------- policy + boundaries --

TEST(Policy, ParseAndPrint) {
  EXPECT_EQ(check::parse_policy("off"), CheckPolicy::Off);
  EXPECT_EQ(check::parse_policy("errors"), CheckPolicy::Errors);
  EXPECT_EQ(check::parse_policy("paranoid"), CheckPolicy::Paranoid);
  EXPECT_FALSE(check::parse_policy("bogus").has_value());
  EXPECT_EQ(check::to_string(CheckPolicy::Paranoid), "paranoid");
}

TEST(Policy, ScopeRestores) {
  ASSERT_EQ(check::policy(), CheckPolicy::Off);
  {
    PolicyScope scope(CheckPolicy::Paranoid);
    EXPECT_EQ(check::policy(), CheckPolicy::Paranoid);
  }
  EXPECT_EQ(check::policy(), CheckPolicy::Off);
}

TEST(Boundaries, EnforceThrowsCheckFailureWithSiteAndReport) {
  Graph g = small_adder();
  g.set_node_shift(NodeId{2}, 3);
  PolicyScope scope(CheckPolicy::Errors);
  try {
    check::enforce(g, "test.site");
    FAIL() << "enforce did not throw";
  } catch (const check::CheckFailure& e) {
    EXPECT_EQ(e.site(), "test.site");
    EXPECT_TRUE(e.report().has_rule("dfg.shl.shift"));
    EXPECT_NE(std::string(e.what()).find("test.site"), std::string::npos);
  }
}

TEST(Boundaries, OffPolicyIsInert) {
  Graph g = small_adder();
  g.set_node_shift(NodeId{2}, 3);  // broken, but checks are off
  check::enforce(g, "test.site");
  check::enforce_pre(g, "test.site");
}

TEST(Boundaries, TransformsRejectBrokenInputUnderParanoid) {
  Graph g = small_adder();
  g.set_node_shift(NodeId{2}, 3);
  PolicyScope scope(CheckPolicy::Paranoid);
  EXPECT_THROW(transform::normalize_widths(g), check::CheckFailure);
}

TEST(Boundaries, FullFlowsRunCleanUnderParanoid) {
  PolicyScope scope(CheckPolicy::Paranoid);
  for (const auto& tc : designs::all_testcases()) {
    for (const auto flow :
         {synth::Flow::NoMerge, synth::Flow::OldMerge, synth::Flow::NewMerge}) {
      const auto res = synth::run_flow(tc.graph, flow);
      EXPECT_GT(res.net.gate_count(), 0) << tc.name;
      EXPECT_EQ(res.report.check_policy, "paranoid");
      bool has_check_stage = false;
      for (const auto& s : res.report.stages) {
        if (s.name == "check") has_check_stage = true;
      }
      EXPECT_TRUE(has_check_stage) << tc.name;
    }
  }
  for (const auto& k : designs::dsp_kernels()) {
    const auto res = synth::run_flow(k.graph, synth::Flow::NewMerge);
    EXPECT_GT(res.net.gate_count(), 0) << k.name;
  }
  const auto res = synth::run_flow(designs::figure3_g5(),
                                   synth::Flow::NewMerge);
  EXPECT_GT(res.net.gate_count(), 0);
}

TEST(Boundaries, OffPolicyLeavesReportUntouched) {
  const auto res =
      synth::run_flow(designs::make_d4(), synth::Flow::NewMerge);
  EXPECT_EQ(res.report.check_policy, "off");
  EXPECT_EQ(res.report.stage_time_us("check"), 0);
  for (const auto& s : res.report.stages) EXPECT_NE(s.name, "check");
}

// ----------------------------------------------------- frontend negative --

TEST(FrontendErrors, ParseErrorCarriesLocationAndToken) {
  try {
    frontend::compile("input a : u8\noutput y : u8 = a @ a\n");
    FAIL() << "compile did not throw";
  } catch (const frontend::ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 0);
    EXPECT_EQ(e.token(), "@");
    EXPECT_NE(std::string(e.what()).find("line 2:"), std::string::npos);
  }
}

TEST(FrontendErrors, UnknownIdentifierPointsAtIt) {
  try {
    frontend::compile("input a : u8\noutput y : u8 = a + bogus\n");
    FAIL() << "compile did not throw";
  } catch (const frontend::ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.token(), "bogus");
  }
}

TEST(FrontendErrors, CompileOrDiagnoseReportsInsteadOfThrowing) {
  CheckReport rep;
  const auto res =
      frontend::compile_or_diagnose("output y : u8 = nope\n", rep);
  EXPECT_FALSE(res.has_value());
  ASSERT_EQ(rep.count_rule("frontend.parse"), 1) << rep.to_text();
  const auto& d = rep.diagnostics().front();
  EXPECT_EQ(d.locus.kind, "line");
  EXPECT_EQ(d.locus.id, 1);
  EXPECT_EQ(d.locus.name, "nope");
}

TEST(FrontendErrors, GoodSourceStillCompiles) {
  CheckReport rep;
  const auto res = frontend::compile_or_diagnose(
      "input a : s8\ninput b : s8\noutput y : s10 = a + b\n", rep);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(check::verify(res->graph).clean());
}

TEST(ReportFormat, JsonShapeIsStable) {
  CheckReport rep;
  rep.add(check::Severity::Error, "dfg.node.width", "bad \"width\"",
          check::Locus{"node", 3, -1, "acc"});
  std::string out;
  rep.to_json(out);
  EXPECT_EQ(out,
            "{\"errors\":1,\"warnings\":0,\"diagnostics\":[{\"severity\":"
            "\"error\",\"rule\":\"dfg.node.width\",\"message\":"
            "\"bad \\\"width\\\"\",\"locus\":{\"kind\":\"node\",\"id\":3,"
            "\"aux\":-1,\"name\":\"acc\"}}]}");
}

}  // namespace
}  // namespace dpmerge
