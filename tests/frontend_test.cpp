#include "dpmerge/frontend/parser.h"

#include <gtest/gtest.h>

#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/formal/equiv.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/synth/verify.h"

namespace dpmerge::frontend {
namespace {

std::int64_t run1(const dfg::Graph& g,
                  const std::vector<std::int64_t>& ins) {
  dfg::Evaluator ev(g);
  std::vector<BitVector> stim;
  const auto inputs = g.inputs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    stim.push_back(BitVector::from_int(g.node(inputs[i]).width, ins[i]));
  }
  return ev.run_outputs(stim).at(0).to_int64();
}

TEST(Frontend, SumOfProducts) {
  const auto res = compile(R"(
design sop
input a : s8
input b : s8
input c : s8
input d : s8
output y : s17 = a * b + c * d
)");
  EXPECT_EQ(res.name, "sop");
  EXPECT_TRUE(res.graph.validate().empty());
  EXPECT_EQ(run1(res.graph, {3, 4, 5, 6}), 42);
  EXPECT_EQ(run1(res.graph, {-3, 4, 5, -6}), -42);
}

TEST(Frontend, WidthInference) {
  const auto res = compile(R"(
input a : u4
input b : u4
output y : u9 = a + b
)");
  // The adder is max(4,4)+1 = 5 bits wide; the output edge zero-extends.
  int adders = 0;
  for (const auto& n : res.graph.nodes()) {
    if (n.kind == dfg::OpKind::Add) {
      ++adders;
      EXPECT_EQ(n.width, 5);
    }
  }
  EXPECT_EQ(adders, 1);
  EXPECT_EQ(run1(res.graph, {15, 15}), 30);
}

TEST(Frontend, SubtractionForcesSigned) {
  const auto res = compile(R"(
input a : u4
input b : u4
output y : s6 = a - b
)");
  EXPECT_EQ(run1(res.graph, {3, 12}), -9);
}

TEST(Frontend, ShiftAndLiteralCoefficients) {
  const auto res = compile(R"(
input x : s6
output y : s12 = (x << 3) + 5 * x
)");
  EXPECT_EQ(run1(res.graph, {-7}), -7 * 13);
  EXPECT_EQ(run1(res.graph, {31}), 31 * 13);
}

TEST(Frontend, UnaryMinusAndParens) {
  const auto res = compile(R"(
input a : s5
input b : s5
output y : s8 = -(a + b) - -a
)");
  EXPECT_EQ(run1(res.graph, {6, 9}), -9);
}

TEST(Frontend, DeclaredIntermediateTruncates) {
  // The paper's truncate-then-extend bottleneck, written in the language:
  // t keeps only 7 bits of a 9-bit sum, then widens again.
  const auto res = compile(R"(
input a : s8
input b : s8
input e : s8
let t : s7 = a + b
output r : s9 = t + e
)");
  // 40 + 40 = 80 truncated to 7 bits = -48; -48 + 1 = -47 (cf. eval_test).
  EXPECT_EQ(run1(res.graph, {40, 40, 1}), -47);
  EXPECT_EQ(run1(res.graph, {10, 10, 1}), 21);
}

TEST(Frontend, Comparisons) {
  const auto res = compile(R"(
input a : s6
input b : u6
output lt : u1 = a < b
)");
  EXPECT_EQ(run1(res.graph, {-3, 2}) & 1, 1);
  EXPECT_EQ(run1(res.graph, {5, 2}) & 1, 0);

  const auto eq = compile(R"(
input a : u6
input b : u6
output e : u1 = a == b
)");
  EXPECT_EQ(run1(eq.graph, {9, 9}) & 1, 1);
  EXPECT_EQ(run1(eq.graph, {9, 8}) & 1, 0);
}

TEST(Frontend, ErrorsHaveLocations) {
  auto expect_error = [](const char* src, const char* frag) {
    try {
      compile(src);
      FAIL() << "expected error: " << frag;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(frag), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("line "), std::string::npos);
    }
  };
  expect_error("input a : s8\noutput y : s9 = a + q\n", "unknown identifier");
  expect_error("input a : s8\ninput a : s8\noutput y : s8 = a\n",
               "redefinition");
  expect_error("input a : x8\noutput y : s8 = a\n", "bad type");
  expect_error("input a : s0\noutput y : s8 = a\n", "width must be positive");
  expect_error("input a : s8\noutput y = a\n", "must declare a type");
  expect_error("input a : s8\noutput y : s8 = a +\n", "expected an expression");
  expect_error("input a : s8\noutput y : s8 = a << b\n",
               "shift amount must be a literal");
  expect_error("input a : s8\n", "no outputs");
  expect_error("bogus a : s8\noutput y : s8 = a\n", "unknown statement");
}

TEST(Frontend, CompiledDesignSynthesizesCorrectly) {
  const auto res = compile(R"(
design mac4
input x0 : s5
input x1 : s5
input x2 : s5
input x3 : s5
input h0 : s5
input h1 : s5
input h2 : s5
input h3 : s5
output y : s13 = x0 * h0 + x1 * h1 + x2 * h2 + x3 * h3
)");
  for (auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                    synth::Flow::NewMerge}) {
    const auto fr = synth::run_flow(res.graph, flow);
    Rng rng(400 + static_cast<int>(flow));
    std::string why;
    EXPECT_TRUE(synth::verify_netlist(fr.net, res.graph, 30, rng, &why))
        << why;
  }
  // The merged MAC is one cluster: four products + final adder tree.
  const auto fr = synth::run_flow(res.graph, synth::Flow::NewMerge);
  EXPECT_EQ(fr.partition.num_clusters(), 1);
}

TEST(Frontend, FormalProofOfCompiledTruncation) {
  // The declared-width intermediate compiles to an explicit Extension node;
  // prove the compiled design equals an equivalent hand-built DFG.
  const auto res = compile(R"(
input a : s8
input b : s8
let t : s7 = a + b
output r : s9 = t + a
)");
  dfg::Graph ref;
  {
    dfg::Builder bl(ref);
    const auto a = bl.input("a", 8);
    const auto b = bl.input("b", 8);
    const auto t = bl.add(9, dfg::Operand{a, 9, Sign::Signed},
                          dfg::Operand{b, 9, Sign::Signed});
    const auto tt = bl.extension(7, Sign::Signed, dfg::Operand{t, 9, Sign::Signed});
    const auto r = bl.add(10, dfg::Operand{tt, 10, Sign::Signed},
                          dfg::Operand{a, 10, Sign::Signed});
    bl.output("r", 9, dfg::Operand{r, 9, Sign::Signed});
  }
  const auto eq = formal::check_graph_vs_graph(res.graph, ref);
  EXPECT_TRUE(eq.equivalent()) << eq.detail;
}

}  // namespace
}  // namespace dpmerge::frontend
