// Flight recorder (obs/flight_recorder.h): the always-on per-thread event
// rings — record/drain ordering, interning, capacity eviction, span-stack
// crash state, and the thread-pool telemetry hooks feeding it.

#include "dpmerge/obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dpmerge/obs/json.h"
#include "dpmerge/obs/stats.h"
#include "dpmerge/obs/trace.h"
#include "dpmerge/support/thread_pool.h"

namespace obs = dpmerge::obs;
namespace support = dpmerge::support;

namespace {

std::vector<obs::FrEvent> drained_named(const char* name) {
  std::vector<obs::FrEvent> out;
  for (const obs::FrEvent& e : obs::FlightRecorder::instance().drain()) {
    if (e.name != nullptr && std::string_view(e.name) == name) {
      out.push_back(e);
    }
  }
  return out;
}

TEST(FlightRecorderTest, RecordsAndDrainsInTimeOrder) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::FlightRecorder& fr = obs::FlightRecorder::instance();
  fr.clear();
  const std::int64_t t0 = obs::now_us();
  fr.record(obs::FrKind::SpanBegin, "fr.test.span", t0);
  fr.record(obs::FrKind::SpanEnd, "fr.test.span", t0 + 10, 10);
  fr.record(obs::FrKind::Mark, "fr.test.mark", t0 + 20, 7);

  const auto events = fr.drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const obs::FrEvent& a, const obs::FrEvent& b) {
        return a.ts_us < b.ts_us;
      }));
  EXPECT_EQ(events[0].kind, obs::FrKind::SpanBegin);
  EXPECT_EQ(events[1].kind, obs::FrKind::SpanEnd);
  EXPECT_EQ(events[1].value, 10);
  EXPECT_EQ(events[2].kind, obs::FrKind::Mark);
  EXPECT_EQ(events[2].value, 7);
  EXPECT_NE(events[0].tid, 0);  // registered threads get nonzero ids
  // drain() copies; the ring still holds the events until clear().
  EXPECT_EQ(fr.drain().size(), 3u);
  fr.clear();
  EXPECT_TRUE(fr.drain().empty());
}

TEST(FlightRecorderTest, WrapperHelpersRecord) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::FlightRecorder::instance().clear();
  obs::fr_mark("fr.test.wrap_mark", 3);
  obs::fr_counter("fr.test.wrap_counter", -42);

  const auto marks = drained_named("fr.test.wrap_mark");
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_EQ(marks[0].kind, obs::FrKind::Mark);
  EXPECT_EQ(marks[0].value, 3);
  const auto counters = drained_named("fr.test.wrap_counter");
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].kind, obs::FrKind::Counter);
  EXPECT_EQ(counters[0].value, -42);
  obs::FlightRecorder::instance().clear();
}

TEST(FlightRecorderTest, InternReturnsStablePointers) {
  obs::FlightRecorder& fr = obs::FlightRecorder::instance();
  const char* a = fr.intern("fr.test.interned.name");
  const char* b = fr.intern(std::string("fr.test.interned.") + "name");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "fr.test.interned.name");
  EXPECT_NE(a, fr.intern("fr.test.other"));
}

TEST(FlightRecorderTest, CapacityBoundsRingAndKeepsMostRecent) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::FlightRecorder& fr = obs::FlightRecorder::instance();
  fr.clear();
  const std::uint32_t old_cap = fr.capacity();
  fr.set_capacity(60);  // rounds up to 64; applies to new threads only
  EXPECT_EQ(fr.capacity(), 64u);

  std::uint16_t tid = 0;
  std::thread t([&fr, &tid] {
    for (int i = 0; i < 200; ++i) {
      fr.record(obs::FrKind::Mark, "fr.test.flood", obs::now_us(), i);
    }
    tid = fr.local_tid();
  });
  t.join();
  fr.set_capacity(old_cap);

  ASSERT_NE(tid, 0);
  std::vector<std::int64_t> values;
  for (const obs::FrEvent& e : fr.drain()) {
    if (e.tid == tid) values.push_back(e.value);
  }
  // The ring keeps the newest 64 of the 200 events: 136..199.
  ASSERT_EQ(values.size(), 64u);
  EXPECT_EQ(*std::min_element(values.begin(), values.end()), 136);
  EXPECT_EQ(*std::max_element(values.begin(), values.end()), 199);
  fr.clear();
}

TEST(FlightRecorderTest, SpanStackAndContextShowInThreadStates) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::FlightRecorder& fr = obs::FlightRecorder::instance();
  fr.clear();
  obs::fr_set_thread_context("sweep:D4/new-merge");
  const std::uint16_t my_tid = fr.local_tid();
  {
    obs::Span outer("fr.test.outer");
    obs::Span inner("fr.test.inner");
    bool found = false;
    for (const obs::FrThreadState& st : fr.thread_states()) {
      if (st.tid != my_tid) continue;
      found = true;
      EXPECT_EQ(st.context, "sweep:D4/new-merge");
      ASSERT_EQ(st.span_stack.size(), 2u);
      EXPECT_EQ(st.span_stack[0], "fr.test.outer");
      EXPECT_EQ(st.span_stack[1], "fr.test.inner");
    }
    EXPECT_TRUE(found);
  }
  // Spans closed: the stack is empty again and four events were recorded.
  for (const obs::FrThreadState& st : fr.thread_states()) {
    if (st.tid == my_tid) {
      EXPECT_TRUE(st.span_stack.empty());
    }
  }
  EXPECT_EQ(fr.drain().size(), 4u);
  obs::fr_set_thread_context("");
  fr.clear();
}

TEST(FlightRecorderTest, PoolTelemetryFlowsIntoRecorderAndRegistry) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::FlightRecorder& fr = obs::FlightRecorder::instance();
  fr.clear();
  obs::Registry& reg = obs::Registry::instance();
  const std::int64_t tasks_before = reg.counter("pool.tasks").value();
  const std::int64_t jobs_before = reg.counter("pool.jobs").value();
  const std::int64_t lat_before = reg.histogram("pool.task_us").count();

  support::ThreadPool pool(3);
  std::vector<int> out(16, 0);
  pool.parallel_for(16, [&](int i) { out[static_cast<std::size_t>(i)] = i; });

  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(reg.counter("pool.tasks").value() - tasks_before, 16);
  EXPECT_EQ(reg.counter("pool.jobs").value() - jobs_before, 1);
  EXPECT_EQ(reg.histogram("pool.task_us").count() - lat_before, 16);

  const auto ends = drained_named("pool.task");
  std::vector<std::uint32_t> positions;
  for (const obs::FrEvent& e : ends) {
    if (e.kind == obs::FrKind::TaskEnd) positions.push_back(e.aux);
  }
  std::sort(positions.begin(), positions.end());
  ASSERT_EQ(positions.size(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) EXPECT_EQ(positions[i], i);
  ASSERT_EQ(drained_named("pool.job").size(), 1u);
  fr.clear();
}

TEST(FlightRecorderTest, EventsJsonlIsValidJsonPerLine) {
  if (!obs::compiled_in()) GTEST_SKIP() << "obs compiled out";
  obs::FlightRecorder& fr = obs::FlightRecorder::instance();
  fr.clear();
  obs::fr_mark("fr.test.jsonl \"quoted\"", 1);
  obs::fr_counter("fr.test.jsonl2", 2);
  std::ostringstream os;
  obs::write_events_jsonl(os, fr.drain());
  std::istringstream is(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    std::string err;
    EXPECT_TRUE(obs::json_valid(line, &err)) << line << ": " << err;
  }
  EXPECT_EQ(lines, 2);
  fr.clear();
}

}  // namespace
