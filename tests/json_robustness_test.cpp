// Hostile-input hardening for obs/json.cpp: node and span names come from
// design files the library does not control, so json_append_quoted must
// turn ANY byte sequence into a valid JSON string — control characters,
// overlong encodings, stray continuation bytes, encoded surrogates — and
// the parser must survive the round trip.

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "dpmerge/obs/json.h"

namespace obs = dpmerge::obs;

namespace {

/// Quotes `hostile`, asserts the result is valid JSON, parses it back, and
/// returns the decoded string. Callers compare against the sanitised form.
std::string round_trip(std::string_view hostile) {
  const std::string quoted = obs::json_quote(hostile);
  std::string err;
  EXPECT_TRUE(obs::json_valid(quoted, &err))
      << quoted << ": " << err;
  obs::JsonValue v;
  EXPECT_TRUE(obs::json_parse(quoted, &v, &err)) << quoted << ": " << err;
  EXPECT_EQ(v.kind, obs::JsonValue::Kind::String);
  return v.str;
}

constexpr std::string_view kFffd = "\xEF\xBF\xBD";  // U+FFFD in UTF-8

TEST(JsonRobustnessTest, ControlCharactersEscapeAndRoundTrip) {
  // Named escapes plus \u00XX for the rest of C0; all survive unchanged.
  const std::string hostile = "a\nb\tc\rd\x01e\x1f f\"g\\h";
  EXPECT_EQ(round_trip(hostile), hostile);

  std::string quoted = obs::json_quote("\x01\x02\x1f");
  EXPECT_EQ(quoted, "\"\\u0001\\u0002\\u001f\"");
  quoted = obs::json_quote("\n\t\r");
  EXPECT_EQ(quoted, "\"\\n\\t\\r\"");
}

TEST(JsonRobustnessTest, ValidUtf8PassesThroughUntouched) {
  const std::string hostile = "caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80";
  EXPECT_EQ(obs::json_quote(hostile), "\"" + hostile + "\"");
  EXPECT_EQ(round_trip(hostile), hostile);
}

TEST(JsonRobustnessTest, StrayContinuationByteBecomesReplacement) {
  EXPECT_EQ(round_trip("a\x80z"), std::string("a") + std::string(kFffd) + "z");
}

TEST(JsonRobustnessTest, TruncatedSequenceReplacesEachByte) {
  // "\xE2\x82" is the first two bytes of a three-byte sequence, cut off at
  // the end of the name: one replacement per rejected byte.
  EXPECT_EQ(round_trip("ok\xE2\x82"),
            std::string("ok") + std::string(kFffd) + std::string(kFffd));
}

TEST(JsonRobustnessTest, BrokenSequenceKeepsFollowingAscii) {
  // \xC3 opens a two-byte sequence but '(' is not a continuation byte; the
  // opener is replaced and the ASCII byte survives.
  EXPECT_EQ(round_trip("\xC3(x"), std::string(kFffd) + "(x");
}

TEST(JsonRobustnessTest, OverlongEncodingIsRejectedPerByte) {
  // "\xC0\xAF" is the classic overlong '/': it must NOT decode to a slash.
  const std::string got = round_trip("\xC0\xAF");
  EXPECT_EQ(got, std::string(kFffd) + std::string(kFffd));
  EXPECT_EQ(got.find('/'), std::string::npos);
}

TEST(JsonRobustnessTest, Utf8EncodedSurrogateIsRejected) {
  // "\xED\xA0\x80" encodes U+D800 — forbidden in UTF-8.
  EXPECT_EQ(round_trip("\xED\xA0\x80"),
            std::string(kFffd) + std::string(kFffd) + std::string(kFffd));
}

TEST(JsonRobustnessTest, OutOfRangeCodePointIsRejected) {
  // "\xF4\x90\x80\x80" would be U+110000, above the Unicode ceiling.
  EXPECT_EQ(round_trip("\xF4\x90\x80\x80"),
            std::string(kFffd) + std::string(kFffd) + std::string(kFffd) +
                std::string(kFffd));
}

TEST(JsonRobustnessTest, EveryByteValueProducesValidJson) {
  // The exhaustive sweep: a name holding all 256 byte values must still
  // quote to valid JSON and parse back without error.
  std::string hostile;
  for (int b = 0; b < 256; ++b) hostile.push_back(static_cast<char>(b));
  const std::string quoted = obs::json_quote(hostile);
  std::string err;
  ASSERT_TRUE(obs::json_valid(quoted, &err)) << err;
  obs::JsonValue v;
  ASSERT_TRUE(obs::json_parse(quoted, &v, &err)) << err;
  // ASCII (after unescaping) survives byte-for-byte.
  EXPECT_EQ(v.str.substr(0, 128), hostile.substr(0, 128));
}

TEST(JsonRobustnessTest, ParserDecodesSurrogatePairs) {
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::json_parse("\"\\ud83d\\ude00\"", &v, &err)) << err;
  EXPECT_EQ(v.str, "\xF0\x9F\x98\x80");  // U+1F600
}

TEST(JsonRobustnessTest, ParserReplacesLoneSurrogateEscapes) {
  obs::JsonValue v;
  std::string err;
  ASSERT_TRUE(obs::json_parse("\"\\ud800\"", &v, &err)) << err;
  EXPECT_EQ(v.str, std::string(kFffd));
  // High surrogate followed by a non-surrogate escape: replacement, then
  // the second escape decodes normally.
  ASSERT_TRUE(obs::json_parse("\"\\ud800\\u0041\"", &v, &err)) << err;
  EXPECT_EQ(v.str, std::string(kFffd) + "A");
}

TEST(JsonRobustnessTest, RawControlCharacterInStringIsInvalid) {
  std::string bad = "\"a";
  bad.push_back('\x01');
  bad += "b\"";
  EXPECT_FALSE(obs::json_valid(bad));
  obs::JsonValue v;
  EXPECT_FALSE(obs::json_parse(bad, &v));
}

TEST(JsonRobustnessTest, JsonValueAccessorsAreTolerant) {
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(
      "{\"n\": 3.5, \"s\": \"hi\", \"a\": [1, 2]}", &doc, &err))
      << err;
  EXPECT_TRUE(doc.is_object());
  EXPECT_EQ(doc.num("n"), 3.5);
  EXPECT_EQ(doc.text("s"), "hi");
  // Missing keys and kind mismatches fall back to the default.
  EXPECT_EQ(doc.num("missing", -1.0), -1.0);
  EXPECT_EQ(doc.text("n", "def"), "def");
  EXPECT_EQ(doc.find("missing"), nullptr);
  const obs::JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 2u);
  EXPECT_EQ(a->array[1].number, 2.0);
  // Non-object lookups are null, not UB.
  EXPECT_EQ(a->find("x"), nullptr);
  EXPECT_EQ(a->num("x", 9.0), 9.0);
}

}  // namespace
