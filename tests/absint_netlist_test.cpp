// Tests for the gate-level dead-logic lint (check::lint_netlist_deadlogic):
// tri-state constant propagation, backward observability with constant
// blocking and decided-MUX pruning, the finding cap, and a smoke run over
// synthesized paper designs.

#include <gtest/gtest.h>

#include "dpmerge/check/absint_netlist.h"
#include "dpmerge/designs/testcases.h"
#include "dpmerge/netlist/netlist.h"
#include "dpmerge/synth/flow.h"

namespace dpmerge {
namespace {

using check::NetlistAbsintStats;
using netlist::CellType;
using netlist::NetId;
using netlist::Netlist;
using netlist::Signal;

Netlist two_input_net(NetId* a, NetId* b) {
  Netlist nl;
  *a = nl.new_net();
  *b = nl.new_net();
  nl.add_input("a", Signal{{*a}});
  nl.add_input("b", Signal{{*b}});
  return nl;
}

TEST(NetlistDeadlogic, ConstantConeIsFlagged) {
  NetId a, b;
  Netlist nl = two_input_net(&a, &b);
  // x & 0 == 0: the AND gate's output is constant whatever x does. Raw
  // add_gate — the and2() convenience builder would fold this away.
  const NetId dead = nl.add_gate(CellType::AND2, {a, nl.const0()});
  const NetId live = nl.xor2(dead, b);
  nl.add_output("y", Signal{{live}});

  NetlistAbsintStats st;
  const auto rep = check::lint_netlist_deadlogic(nl, &st);
  EXPECT_EQ(st.constant_cells, 1);
  EXPECT_EQ(rep.count_rule("net.absint.constant-cell"), 1);
  EXPECT_FALSE(rep.has_rule("net.absint.unobservable-cell")) << rep.to_text();
}

TEST(NetlistDeadlogic, UnreferencedGateIsUnobservable) {
  NetId a, b;
  Netlist nl = two_input_net(&a, &b);
  (void)nl.xor2(a, b);  // drives nothing
  nl.add_output("y", Signal{{nl.and2(a, b)}});

  NetlistAbsintStats st;
  const auto rep = check::lint_netlist_deadlogic(nl, &st);
  EXPECT_EQ(st.constant_cells, 0);
  EXPECT_EQ(st.unobservable_cells, 1);
  EXPECT_EQ(rep.count_rule("net.absint.unobservable-cell"), 1);
}

TEST(NetlistDeadlogic, ConstantNetBlocksObservability) {
  NetId a, b;
  Netlist nl = two_input_net(&a, &b);
  // inv(a) feeds only an AND against const0. The AND output is constant, so
  // the inverter cannot influence the output bus either: one constant cell
  // plus one unobservable cell behind it.
  const NetId na = nl.inv(a);
  const NetId dead = nl.add_gate(CellType::AND2, {na, nl.const0()});
  nl.add_output("y", Signal{{nl.or2(dead, b)}});

  NetlistAbsintStats st;
  const auto rep = check::lint_netlist_deadlogic(nl, &st);
  EXPECT_EQ(st.constant_cells, 1) << rep.to_text();
  EXPECT_EQ(st.unobservable_cells, 1) << rep.to_text();
}

TEST(NetlistDeadlogic, DecidedMuxExposesOnlySelectedLeg) {
  NetId a, b;
  Netlist nl = two_input_net(&a, &b);
  // Select is constant 1: the mux always passes leg 1 (b); the inverter
  // feeding leg 0 can never reach the output.
  const NetId leg0 = nl.inv(a);
  const NetId m = nl.add_gate(CellType::MUX2, {leg0, b, nl.const1()});
  nl.add_output("y", Signal{{m}});

  NetlistAbsintStats st;
  const auto rep = check::lint_netlist_deadlogic(nl, &st);
  EXPECT_EQ(st.unobservable_cells, 1) << rep.to_text();
  // The mux output itself varies with b, so it is not constant.
  EXPECT_EQ(st.constant_cells, 0) << rep.to_text();
}

TEST(NetlistDeadlogic, MuxWithAgreeingLegsIsConstantDownstream) {
  NetId a, b;
  Netlist nl = two_input_net(&a, &b);
  // Both legs are const1: even with an unknown select the mux output is 1.
  const NetId m =
      nl.add_gate(CellType::MUX2, {nl.const1(), nl.const1(), a});
  nl.add_output("y", Signal{{nl.and2(m, b)}});
  NetlistAbsintStats st;
  (void)check::lint_netlist_deadlogic(nl, &st);
  EXPECT_EQ(st.constant_cells, 1);
}

TEST(NetlistDeadlogic, FindingCapKeepsStatsExact) {
  Netlist nl;
  const NetId a = nl.new_net();
  nl.add_input("a", Signal{{a}});
  for (int i = 0; i < 10; ++i) {
    (void)nl.add_gate(CellType::AND2, {a, nl.const0()});
  }
  nl.add_output("y", Signal{{nl.buf(a)}});
  NetlistAbsintStats st;
  const auto rep = check::lint_netlist_deadlogic(nl, &st, /*max_findings=*/3);
  EXPECT_EQ(st.constant_cells, 10);
  EXPECT_EQ(static_cast<int>(rep.diagnostics().size()), 3);
}

TEST(NetlistDeadlogic, CleanNetHasNoFindings) {
  NetId a, b;
  Netlist nl = two_input_net(&a, &b);
  nl.add_output("y", Signal{{nl.xor2(a, b)}});
  NetlistAbsintStats st;
  const auto rep = check::lint_netlist_deadlogic(nl, &st);
  EXPECT_TRUE(rep.clean()) << rep.to_text();
  EXPECT_EQ(st.constant_cells, 0);
  EXPECT_EQ(st.unobservable_cells, 0);
}

// Smoke over real synthesis output: the lint must run on every flow of
// every paper design without errors (its findings are warnings by design)
// and count every gate exactly once.
TEST(NetlistDeadlogic, RunsOnSynthesizedPaperDesigns) {
  for (const auto& tc : designs::all_testcases()) {
    for (auto flow : {synth::Flow::OldMerge, synth::Flow::NewMerge}) {
      const auto res = synth::run_flow(tc.graph, flow);
      NetlistAbsintStats st;
      const auto rep = check::lint_netlist_deadlogic(res.net, &st, -1);
      EXPECT_EQ(st.gates, res.net.gate_count());
      EXPECT_LE(st.constant_cells + st.unobservable_cells, st.gates);
      for (const auto& d : rep.diagnostics()) {
        EXPECT_EQ(d.severity, check::Severity::Warning)
            << tc.name << ": " << d.rule;
      }
    }
  }
}

}  // namespace
}  // namespace dpmerge
