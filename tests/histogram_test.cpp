// stats::Histogram edge cases: empty percentiles, single samples, bucket
// boundaries, saturating values, q clamping, and deterministic totals with
// concurrent recording. Complements stats_stress_test.cpp, which covers
// lost-update races; here the focus is the arithmetic contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dpmerge/obs/stats.h"

namespace obs = dpmerge::obs;

namespace {

TEST(HistogramTest, EmptyHistogramReportsZeroes) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.percentile(0.0), 0);
  EXPECT_EQ(h.percentile(0.5), 0);
  EXPECT_EQ(h.percentile(1.0), 0);
}

TEST(HistogramTest, SingleSampleDominatesEveryPercentile) {
  obs::Histogram h;
  h.observe(100);  // bucket [64, 128) -> reported upper bound 128
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum(), 100);
  EXPECT_EQ(h.percentile(0.0), 128);
  EXPECT_EQ(h.percentile(0.5), 128);
  EXPECT_EQ(h.percentile(0.99), 128);
  EXPECT_EQ(h.percentile(1.0), 128);
}

TEST(HistogramTest, BucketBoundariesArePowersOfTwo) {
  obs::Histogram h;
  h.observe(0);  // bucket 0: v < 1
  h.observe(1);  // bucket 1: [1, 2)
  h.observe(2);  // bucket 2: [2, 4)
  h.observe(3);  // bucket 2
  h.observe(4);  // bucket 3: [4, 8)
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 2);
  EXPECT_EQ(h.bucket(3), 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 10);
  // Nearest-rank: rank 1 of 5 at q=0 -> bucket 0's upper bound.
  EXPECT_EQ(h.percentile(0.0), 1);
  EXPECT_EQ(h.percentile(0.5), 4);  // rank 3 lands in bucket 2 -> bound 4
  EXPECT_EQ(h.percentile(1.0), 8);  // rank 5 lands in bucket 3 -> bound 8
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  obs::Histogram h;
  h.observe(-1);
  h.observe(std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.bucket(0), 2);
  EXPECT_EQ(h.percentile(1.0), 1);
}

TEST(HistogramTest, HugeSamplesSaturateIntoLastBucket) {
  obs::Histogram h;
  h.observe(std::numeric_limits<std::int64_t>::max());
  h.observe(std::int64_t{1} << 50);
  EXPECT_EQ(h.bucket(obs::Histogram::kBuckets - 1), 2);
  // The reported bound is the last bucket's, not the sample's magnitude.
  EXPECT_EQ(h.percentile(0.5),
            std::int64_t{1} << (obs::Histogram::kBuckets - 1));
  EXPECT_EQ(h.percentile(1.0),
            std::int64_t{1} << (obs::Histogram::kBuckets - 1));
}

TEST(HistogramTest, QuantileArgumentIsClamped) {
  obs::Histogram h;
  h.observe(1);
  h.observe(1000);
  EXPECT_EQ(h.percentile(-3.0), h.percentile(0.0));
  EXPECT_EQ(h.percentile(42.0), h.percentile(1.0));
}

TEST(HistogramTest, ResetClearsEverything) {
  obs::Histogram h;
  h.observe(5);
  h.observe(500);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.percentile(0.99), 0);
  for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
    EXPECT_EQ(h.bucket(b), 0);
  }
}

TEST(HistogramTest, ConcurrentRecordingYieldsDeterministicTotals) {
  // Aggregation is commutative: three threads observing the same fixed
  // sequence must land on the exact same totals, buckets, and percentiles
  // as a serial run, regardless of interleaving.
  obs::Histogram h;
  const std::vector<std::int64_t> samples = {0, 1, 3, 9, 27, 81, 243, 729};
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &samples] {
      for (const std::int64_t v : samples) h.observe(v);
    });
  }
  for (std::thread& t : threads) t.join();

  obs::Histogram serial;
  for (int t = 0; t < kThreads; ++t) {
    for (const std::int64_t v : samples) serial.observe(v);
  }
  EXPECT_EQ(h.count(), serial.count());
  EXPECT_EQ(h.sum(), serial.sum());
  for (int b = 0; b < obs::Histogram::kBuckets; ++b) {
    EXPECT_EQ(h.bucket(b), serial.bucket(b)) << "bucket " << b;
  }
  EXPECT_EQ(h.percentile(0.5), serial.percentile(0.5));
  EXPECT_EQ(h.percentile(0.99), serial.percentile(0.99));
}

TEST(HistogramTest, PrometheusExpositionEndsWithEofTerminator) {
  // The exposition always carries the OpenMetrics terminator, so an empty
  // registry (serial run: no pool telemetry) is distinguishable from a
  // write that never happened.
  obs::Registry& reg = obs::Registry::instance();
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

  reg.histogram("histogram_test.prom_us").observe(100);
  std::ostringstream os2;
  reg.write_prometheus(os2);
  const std::string text2 = os2.str();
  EXPECT_NE(text2.find("# TYPE dpmerge_histogram_test_prom_us histogram"),
            std::string::npos);
  EXPECT_NE(text2.find("dpmerge_histogram_test_prom_us_bucket{le=\"128\"} 1"),
            std::string::npos);
  EXPECT_NE(text2.find("dpmerge_histogram_test_prom_us_count 1"),
            std::string::npos);
  EXPECT_EQ(text2.substr(text2.size() - 6), "# EOF\n");
}

}  // namespace
