#include "dpmerge/dfg/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/support/rng.h"

namespace dpmerge::dfg {
namespace {

Graph simple_sum() {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 8);
  const auto c = b.input("c", 8);
  const auto s = b.add(9, {a, 9, Sign::Signed}, {c, 9, Sign::Signed});
  b.output("r", 9, {s});
  return g;
}

TEST(Graph, BuilderWiresPortsAndWidths) {
  const Graph g = simple_sum();
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 3);
  EXPECT_TRUE(g.validate().empty());

  const auto outs = g.outputs();
  ASSERT_EQ(outs.size(), 1u);
  const Node& r = g.node(outs[0]);
  EXPECT_EQ(g.name(r), "r");
  ASSERT_EQ(r.in.size(), 1u);
  const Edge& e = g.edge(r.in[0]);
  EXPECT_EQ(e.width, 9);  // width 0 defaulted to the source node's width
}

TEST(Graph, DefaultEdgeWidthIsSourceWidth) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 13);
  const auto o = b.output("r", 13, {a});
  const Edge& e = g.edge(g.node(o).in[0]);
  EXPECT_EQ(e.width, 13);
}

TEST(Graph, OperandCounts) {
  EXPECT_EQ(operand_count(OpKind::Input), 0);
  EXPECT_EQ(operand_count(OpKind::Const), 0);
  EXPECT_EQ(operand_count(OpKind::Output), 1);
  EXPECT_EQ(operand_count(OpKind::Neg), 1);
  EXPECT_EQ(operand_count(OpKind::Extension), 1);
  EXPECT_EQ(operand_count(OpKind::Add), 2);
  EXPECT_EQ(operand_count(OpKind::Sub), 2);
  EXPECT_EQ(operand_count(OpKind::Mul), 2);
}

TEST(Graph, KindPredicates) {
  EXPECT_TRUE(is_operator(OpKind::Add));
  EXPECT_TRUE(is_operator(OpKind::Extension));
  EXPECT_FALSE(is_operator(OpKind::Input));
  EXPECT_FALSE(is_operator(OpKind::Const));
  EXPECT_TRUE(is_arith_operator(OpKind::Mul));
  EXPECT_FALSE(is_arith_operator(OpKind::Extension));
}

TEST(Graph, TopoOrderRespectsEdges) {
  Rng rng(42);
  RandomGraphOptions opt;
  opt.num_operators = 40;
  const Graph g = random_graph(rng, opt);
  EXPECT_TRUE(g.validate().empty());
  const auto order = g.topo_order();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(g.node_count()));
  std::vector<int> pos(static_cast<std::size_t>(g.node_count()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i].value)] = static_cast<int>(i);
  }
  for (const Edge& e : g.edges()) {
    EXPECT_LT(pos[static_cast<std::size_t>(e.src.value)],
              pos[static_cast<std::size_t>(e.dst.value)]);
  }
}

TEST(Graph, ValidateDetectsMissingOperand) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const NodeId add = g.add_node(OpKind::Add, 4);
  g.add_edge(a, add, 0);
  // Second operand left unconnected.
  const auto errs = g.validate();
  EXPECT_FALSE(errs.empty());
}

TEST(Graph, ValidateDetectsBadWidth) {
  Graph g;
  g.add_node(OpKind::Input, 0, "a");
  EXPECT_FALSE(g.validate().empty());
}

TEST(Graph, InsertExtensionAfterMovesFanout) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto n = b.add(4, {a}, {a});
  const auto o1 = b.output("r1", 8, {n, 8, Sign::Signed});
  const auto o2 = b.output("r2", 8, {n, 8, Sign::Signed});
  const NodeId ext = g.insert_extension_after(n, 8, Sign::Signed, 4);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(g.node(ext).kind, OpKind::Extension);
  EXPECT_EQ(g.node(ext).width, 8);
  // Both outputs now read through the extension node.
  EXPECT_EQ(g.edge(g.node(o1).in[0]).src, ext);
  EXPECT_EQ(g.edge(g.node(o2).in[0]).src, ext);
  // n has exactly one out-edge, into ext.
  ASSERT_EQ(g.node(n).out.size(), 1u);
  EXPECT_EQ(g.edge(g.node(n).out[0]).dst, ext);
}

TEST(Graph, InsertExtensionRetargetMovesOnlyListed) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 4);
  const auto n = b.add(4, {a}, {a});
  const auto o1 = b.output("r1", 8, {n, 8, Sign::Unsigned});
  const auto o2 = b.output("r2", 8, {n, 8, Sign::Unsigned});
  const EdgeId moved = g.node(o2).in[0];
  const NodeId ext = g.insert_extension_retarget(n, 8, Sign::Signed, {moved});
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(g.edge(g.node(o1).in[0]).src, n);
  EXPECT_EQ(g.edge(g.node(o2).in[0]).src, ext);
  ASSERT_EQ(g.node(n).out.size(), 2u);  // o1's edge + edge into ext
}

TEST(Graph, DotOutputMentionsAllNodes) {
  const Graph g = simple_sum();
  const std::string dot = g.to_dot();
  for (const Node& n : g.nodes()) {
    EXPECT_NE(dot.find("n" + std::to_string(n.id.value)), std::string::npos);
  }
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Graph, RandomGraphsAreValid) {
  Rng rng(7);
  for (int t = 0; t < 25; ++t) {
    RandomGraphOptions opt;
    opt.num_inputs = 2 + static_cast<int>(rng.uniform(0, 4));
    opt.num_operators = 1 + static_cast<int>(rng.uniform(0, 30));
    const Graph g = random_graph(rng, opt);
    const auto errs = g.validate();
    EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs.front());
    // Every operator node must reach an output (no dangling results).
    for (const Node& n : g.nodes()) {
      if (n.kind != OpKind::Output) {
        EXPECT_FALSE(n.out.empty())
            << "node " << n.id.value << " has no fanout";
      }
    }
  }
}

TEST(Graph, ConstNodeCarriesValue) {
  Graph g;
  Builder b(g);
  const auto c = b.constant(8, -5, "k");
  EXPECT_EQ(g.node(c).kind, OpKind::Const);
  EXPECT_EQ(g.node(c).value.to_int64(), -5);
  EXPECT_EQ(g.node(c).width, 8);
}

}  // namespace
}  // namespace dpmerge::dfg
