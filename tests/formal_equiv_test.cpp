// Formal (BDD-based) equivalence checks: upgrades the randomized-simulation
// results to exact proofs on the paper's worked examples and on small
// random designs — every transformation and every synthesis flow.

#include <gtest/gtest.h>

#include "dpmerge/designs/figures.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/formal/equiv.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/transform/rebalance.h"
#include "dpmerge/transform/width_prune.h"

namespace dpmerge::formal {
namespace {

using dfg::Builder;
using dfg::Graph;
using dfg::Operand;

TEST(SymbolicWords, ArithmeticMatchesBitVector) {
  Bdd m;
  Rng rng(5);
  for (int t = 0; t < 60; ++t) {
    const int w = static_cast<int>(rng.uniform(1, 10));
    const BitVector a = rng.bits(w);
    const BitVector b = rng.bits(w);
    const Word wa = sym_const(m, a);
    const Word wb = sym_const(m, b);
    auto as_bits = [&](const Word& x) {
      BitVector v(x.width());
      for (int i = 0; i < x.width(); ++i) {
        v.set_bit(i, x.bits[static_cast<std::size_t>(i)] == Bdd::kTrue);
      }
      return v;
    };
    EXPECT_EQ(as_bits(sym_add(m, wa, wb)), a.add(b));
    EXPECT_EQ(as_bits(sym_sub(m, wa, wb)), a.sub(b));
    EXPECT_EQ(as_bits(sym_mul(m, wa, wb)), a.mul(b));
    EXPECT_EQ(as_bits(sym_neg(m, wa)), a.negate());
    EXPECT_EQ(as_bits(sym_shl(m, wa, 2)), a.shl(2));
    EXPECT_EQ(sym_lt(m, wa, wb, false) == Bdd::kTrue, a.unsigned_lt(b));
    EXPECT_EQ(sym_lt(m, wa, wb, true) == Bdd::kTrue, a.signed_lt(b));
    EXPECT_EQ(sym_eq(m, wa, wb) == Bdd::kTrue, a == b);
    for (Sign s : {Sign::Unsigned, Sign::Signed}) {
      EXPECT_EQ(as_bits(sym_resize(m, wa, w + 3, s)), a.resize(w + 3, s));
      EXPECT_EQ(as_bits(sym_resize(m, wa, std::max(1, w - 2), s)),
                a.resize(std::max(1, w - 2), s));
    }
  }
}

TEST(FormalEquiv, FigureTransformsProved) {
  // The paper's own examples, proved exactly (not just sampled):
  // G4 -> G4' (Theorem 4.2) and G5 -> G5' (Lemmas 5.6/5.7).
  {
    Graph g4 = designs::figure2_g4();
    Graph g4p = g4;
    transform::prune_required_precision(g4p);
    const auto r = check_graph_vs_graph(g4, g4p);
    EXPECT_TRUE(r.equivalent()) << r.detail;
  }
  {
    Graph g5 = designs::figure3_g5();
    Graph g5p = g5;
    transform::prune_info_content(g5p);
    const auto r = check_graph_vs_graph(g5, g5p);
    EXPECT_TRUE(r.equivalent()) << r.detail;
  }
}

TEST(FormalEquiv, FigureSynthesisProved) {
  // Every flow's netlist for G2/G4/G5 is proved equal to the DFG.
  for (const Graph& g : {designs::figure1_g2(), designs::figure2_g4(),
                         designs::figure3_g5()}) {
    for (auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                      synth::Flow::NewMerge}) {
      const auto res = synth::run_flow(g, flow);
      const auto r = check_netlist_vs_graph(res.net, g);
      EXPECT_TRUE(r.equivalent())
          << std::string(synth::to_string(flow)) << ": " << r.detail;
    }
  }
}

TEST(FormalEquiv, DetectsInjectedNetlistBug) {
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 6);
  const auto c = b.input("c", 6);
  const auto s = b.add(7, Operand{a, 7, Sign::Signed},
                       Operand{c, 7, Sign::Signed});
  b.output("r", 7, Operand{s});
  auto res = synth::run_flow(g, synth::Flow::NewMerge);
  ASSERT_TRUE(check_netlist_vs_graph(res.net, g).equivalent());

  // Fault injection: flip the gate driving the MSB of the output bus (the
  // *first* XOR2 of a Kogge-Stone adder can be logically redundant — p0
  // with a zero carry-in — and an equivalence checker rightly shrugs at
  // that; the output driver is always observable).
  const netlist::NetId msb = res.net.outputs().front().signal.msb();
  const netlist::Gate* drv = res.net.driver(msb);
  ASSERT_NE(drv, nullptr);
  ASSERT_EQ(drv->type, netlist::CellType::XOR2);
  res.net.mutable_gates()[static_cast<std::size_t>(drv->id.value)].type =
      netlist::CellType::XNOR2;
  const auto r = check_netlist_vs_graph(res.net, g);
  EXPECT_EQ(r.status, EquivResult::Status::Different);
  EXPECT_NE(r.detail.find("witness"), std::string::npos);
}

TEST(FormalEquiv, DetectsGraphDifference) {
  Graph g1;
  {
    Builder b(g1);
    const auto a = b.input("a", 4);
    const auto s = b.add(5, Operand{a, 5, Sign::Signed},
                         Operand{a, 5, Sign::Signed});
    b.output("r", 5, Operand{s});
  }
  Graph g2;
  {
    Builder b(g2);
    const auto a = b.input("a", 4);
    const auto s = b.shl(5, Operand{a, 5, Sign::Signed}, 1);
    b.output("r", 5, Operand{s});
  }
  // 2a == a<<1: these ARE equivalent.
  EXPECT_TRUE(check_graph_vs_graph(g1, g2).equivalent());

  Graph g3;
  {
    Builder b(g3);
    const auto a = b.input("a", 4);
    const auto s = b.shl(5, Operand{a, 5, Sign::Signed}, 2);
    b.output("r", 5, Operand{s});
  }
  EXPECT_EQ(check_graph_vs_graph(g1, g3).status,
            EquivResult::Status::Different);
}

TEST(FormalEquiv, ResourceLimitReported) {
  // A 12x12 multiplier with a tiny node budget cannot be decided.
  Graph g;
  Builder b(g);
  const auto a = b.input("a", 12);
  const auto c = b.input("c", 12);
  const auto mres = b.mul(24, Operand{a, 24, Sign::Signed},
                          Operand{c, 24, Sign::Signed});
  b.output("r", 24, Operand{mres});
  const auto res = synth::run_flow(g, synth::Flow::NewMerge);
  const auto r = check_netlist_vs_graph(res.net, g, /*max_nodes=*/2000);
  EXPECT_EQ(r.status, EquivResult::Status::ResourceLimit);
  EXPECT_FALSE(r.proved());
}

// Formal proofs over random small graphs: all transformations and all
// synthesis flows.
class FormalRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FormalRandom, TransformsAndFlows) {
  Rng rng(GetParam());
  dfg::RandomGraphOptions opt;
  opt.num_inputs = 3;
  opt.num_operators = 8;
  opt.max_width = 8;
  opt.mul_fraction = 0.08;  // keep multiplier BDDs small
  for (int t = 0; t < 2; ++t) {
    const Graph g = dfg::random_graph(rng, opt);
    {
      Graph mgraph = g;
      transform::normalize_widths(mgraph);
      const auto r = check_graph_vs_graph(g, mgraph);
      ASSERT_TRUE(r.proved());
      EXPECT_TRUE(r.equivalent()) << r.detail;
    }
    {
      const Graph reb = transform::rebalance_clusters(g);
      const auto r = check_graph_vs_graph(g, reb);
      ASSERT_TRUE(r.proved());
      EXPECT_TRUE(r.equivalent()) << r.detail;
    }
    for (auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                      synth::Flow::NewMerge}) {
      const auto res = synth::run_flow(g, flow);
      const auto r = check_netlist_vs_graph(res.net, g);
      ASSERT_TRUE(r.proved());
      EXPECT_TRUE(r.equivalent())
          << std::string(synth::to_string(flow)) << ": " << r.detail;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormalRandom,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace dpmerge::formal
