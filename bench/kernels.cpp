// DSP kernel sweep (beyond the paper's tables): the workload family the
// paper's introduction motivates, compiled from the frontend expression
// language, swept across the three flows — plus the constant-folding /
// strength-reduction pre-pass (mul-by-2^k -> shift), which turns constant
// coefficient multiplies into mergeable shifted rows.

#include <cstdio>

#include "bench_util.h"
#include "dpmerge/designs/kernels.h"
#include "dpmerge/netlist/simplify.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/transform/const_fold.h"
#include "dpmerge/transform/cse.h"

int main(int argc, char** argv) {
  using namespace dpmerge;
  using bench::fmt;
  using synth::Flow;

  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::ObsSession obs_session("kernels", args);

  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  const auto kernels = designs::dsp_kernels();

  std::printf("DSP kernels: clusters / delay(ns) / area per flow\n\n");
  std::vector<std::string> header{"kernel"};
  header.insert(header.end(), {"no-merge", "old-merge", "new-merge",
                               "fold+cse + new-merge", "  + simplify"});
  bench::Table t(header);

  for (const auto& k : kernels) {
    std::vector<std::string> row{k.name};
    auto cell = [&](const cluster::Partition& p, const netlist::Netlist& n) {
      return std::to_string(p.num_clusters()) + " / " +
             fmt(sta.analyze(n).longest_path_ns) + " / " +
             fmt(sta.area_scaled(n), 1);
    };
    auto keep_report = [&](synth::FlowResult& res, const char* variant) {
      res.report.design = k.name + (variant[0] ? std::string(":") + variant
                                               : std::string());
      res.report.metrics["delay_ns"] = sta.analyze(res.net).longest_path_ns;
      res.report.metrics["area"] = sta.area_scaled(res.net);
      res.report.metrics["clusters"] = res.partition.num_clusters();
      obs_session.reports.push_back(std::move(res.report));
    };
    for (Flow f : {Flow::NoMerge, Flow::OldMerge, Flow::NewMerge}) {
      auto res = synth::run_flow(k.graph, f);
      row.push_back(cell(res.partition, res.net));
      keep_report(res, "");
    }
    const dfg::Graph folded = transform::share_common_subexpressions(
        transform::fold_constants(k.graph));
    auto res = synth::run_flow(folded, Flow::NewMerge);
    row.push_back(cell(res.partition, res.net));
    keep_report(res, "fold+cse");
    const auto slim = netlist::simplify(res.net);
    row.push_back(cell(res.partition, slim));
    t.add_row(std::move(row));
  }
  t.print();

  std::printf(
      "\nReading: merging pulls every kernel to one or two clusters (one per"
      "\noutput); strength reduction removes the coefficient multipliers"
      "\nentirely, so their partial-product arrays disappear from the CSA"
      "\ntrees.\n");
  return 0;
}
