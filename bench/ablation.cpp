// Ablation study (ours, beyond the paper's tables): contribution of each
// ingredient of the new merging flow on D1..D5 —
//   A. clustering only (no width transforms, no rebalancing iteration)
//   B. + width normalisation (Theorem 4.2 + Lemmas 5.6/5.7)
//   C. + rebalancing iterations (Section 5.2 refinement loop)
//   D. + refinement-fed width pruning (the full prepare_new_merge flow)
// and the effect of the final-adder architecture (ripple vs Kogge-Stone).

#include <cstdio>
#include <iterator>

#include "bench_util.h"
#include "dpmerge/cluster/clusterer.h"
#include "dpmerge/designs/testcases.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/transform/rebalance.h"
#include "dpmerge/transform/width_prune.h"

int main(int argc, char** argv) {
  using namespace dpmerge;
  using bench::fmt;

  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::ObsSession obs_session("ablation", args);

  netlist::Sta sta(netlist::CellLibrary::tsmc025());

  std::printf("Ablation: clusters / delay(ns) / area per configuration\n\n");
  bench::Table t({"config", "D1", "D2", "D3", "D4", "D5"});

  struct Config {
    const char* name;
    bool normalize;
    bool iterate;
    bool refine_feedback;
  };
  const Config configs[] = {
      {"A cluster only", false, false, false},
      {"B + width transforms", true, false, false},
      {"C + rebalance iters", true, true, false},
      {"D full new-merge flow", true, true, true},
  };

  // Each (config x design) cell is independent; run them on the pool and
  // fill a pre-sized grid so row/column order stays deterministic.
  const auto cases = designs::all_testcases();
  const int nc = static_cast<int>(std::size(configs));
  const int nd = static_cast<int>(cases.size());
  std::vector<std::vector<std::string>> grid(
      static_cast<std::size_t>(nc),
      std::vector<std::string>(static_cast<std::size_t>(nd)));
  // Per-design clusterer convergence of the full flow (config D), for the
  // iteration table below.
  std::vector<std::vector<cluster::ClusterIterationStat>> convergence(
      static_cast<std::size_t>(nd));
  obs_session.reports.resize(static_cast<std::size_t>(nc * nd));
  bench::parallel_for_cells(
      nc * nd,
      [&](int cell) {
        const Config& cfg = configs[cell / nd];
        const auto& tc = cases[static_cast<std::size_t>(cell % nd)];
        dfg::Graph g = tc.graph;
        cluster::ClusterResult cr;
        obs::FlowReport& report =
            obs_session.reports[static_cast<std::size_t>(cell)];
        report.design = tc.name;
        report.flow = cfg.name;
        netlist::Netlist net;
        {
          // This bench drives the stages by hand (run_flow can't express the
          // partial configs), so it builds its own FlowScope the same way.
          obs::FlowScope fs(&report);
          if (cfg.refine_feedback) {
            cr = synth::prepare_new_merge(g, &fs);
          } else {
            fs.begin_stage("normalize", g.node_count(), g.edge_count());
            if (cfg.normalize) transform::normalize_widths(g);
            fs.end_stage(g.node_count(), g.edge_count());
            fs.begin_stage("cluster", g.node_count(), g.edge_count());
            cluster::ClusterOptions copt;
            copt.iterate_rebalancing = cfg.iterate;
            cr = cluster::cluster_maximal(g, copt);
            fs.end_stage(g.node_count(), g.edge_count());
          }
          report.cluster_iterations = cr.iterations;
          for (const auto& it : cr.per_iteration) {
            report.iterations.push_back(
                {it.clusters, it.merged_nodes, it.refined_roots});
          }
          fs.begin_stage("synth", g.node_count(), g.edge_count());
          net = synth::synthesize_partition(g, cr.partition, cr.info, {});
          fs.end_stage(net.gate_count(), net.net_count());
          synth::finalize_flow_report(report, g, cr.partition, net, fs.sink());
        }
        const auto rep = sta.analyze(net);
        report.metrics["delay_ns"] = rep.longest_path_ns;
        report.metrics["area"] = sta.area_scaled(net);
        report.metrics["clusters"] = cr.partition.num_clusters();
        if (cfg.refine_feedback) {
          convergence[static_cast<std::size_t>(cell % nd)] = cr.per_iteration;
        }
        grid[static_cast<std::size_t>(cell / nd)]
            [static_cast<std::size_t>(cell % nd)] =
                std::to_string(cr.partition.num_clusters()) + " / " +
                fmt(rep.longest_path_ns) + " / " +
                fmt(sta.area_scaled(net), 1);
      },
      args.threads);
  if (!args.bench_json.empty()) {
    std::vector<bench::BenchCell> bench_cells;
    bench_cells.reserve(obs_session.reports.size());
    for (const auto& report : obs_session.reports) {
      bench::BenchCell bc;
      bc.design = report.design;
      bc.flow = report.flow;  // the config name, e.g. "D full new-merge flow"
      bc.delay_ns = report.metrics.at("delay_ns");
      bc.area = report.metrics.at("area");
      bc.cpa_count = report.cpa_count;
      bc.wall_ms = static_cast<double>(report.total_us) / 1000.0;
      bc.rss_mb = bench::peak_rss_mb();
      bench_cells.push_back(std::move(bc));
    }
    bench::write_bench_json_file(args.bench_json, "ablation", bench_cells,
                                 args.obs.deterministic);
  }
  for (int c = 0; c < nc; ++c) {
    std::vector<std::string> cells{configs[c].name};
    for (int d = 0; d < nd; ++d) {
      cells.push_back(grid[static_cast<std::size_t>(c)]
                          [static_cast<std::size_t>(d)]);
    }
    t.add_row(std::move(cells));
  }
  t.print();

  // Satellite view of the iterative maximal-merging convergence: one
  // clusters/merged/refined triple per iteration of the full flow, per
  // design (ClusterResult::per_iteration).
  std::printf(
      "\nClusterer convergence, full flow (clusters/merged/refined per"
      " iteration):\n\n");
  {
    bench::Table tc({"design", "iters", "per-iteration"});
    for (int d = 0; d < nd; ++d) {
      const auto& iters = convergence[static_cast<std::size_t>(d)];
      std::string detail;
      for (std::size_t i = 0; i < iters.size(); ++i) {
        if (i) detail += "  ";
        detail += std::to_string(iters[i].clusters) + "/" +
                  std::to_string(iters[i].merged_nodes) + "/" +
                  std::to_string(iters[i].refined_roots);
      }
      tc.add_row({cases[static_cast<std::size_t>(d)].name,
                  std::to_string(iters.size()), detail});
    }
    tc.print();
  }

  // The "other application" of safe partitioning: graph rebalancing ahead
  // of a NON-merging flow (keeps discrete adders, shortens chains).
  std::printf(
      "\nGraph rebalancing ahead of the no-merging flow (operators / delay /"
      " area):\n\n");
  {
    bench::Table t3({"config", "D1", "D2", "D3", "D4", "D5"});
    std::vector<std::string> plain(static_cast<std::size_t>(nd));
    std::vector<std::string> reb(static_cast<std::size_t>(nd));
    // Cell = (design, {plain, rebalanced}).
    bench::parallel_for_cells(nd * 2, [&](int cell) {
      const auto& tc = cases[static_cast<std::size_t>(cell / 2)];
      const bool rebalance = (cell % 2) == 1;
      const dfg::Graph g =
          rebalance ? transform::rebalance_clusters(tc.graph) : tc.graph;
      const auto res = synth::run_flow(g, synth::Flow::NoMerge);
      const auto rep = sta.analyze(res.net);
      auto& slot = (rebalance ? reb : plain)[static_cast<std::size_t>(cell / 2)];
      slot = std::to_string(res.partition.num_clusters()) + " / " +
             fmt(rep.longest_path_ns) + " / " +
             fmt(sta.area_scaled(res.net), 1);
    }, args.threads);
    plain.insert(plain.begin(), "no-merge flow");
    reb.insert(reb.begin(), "no-merge + rebalance");
    t3.add_row(std::move(plain));
    t3.add_row(std::move(reb));
    t3.print();
  }

  std::printf("\nFinal-adder architecture (full flow):\n\n");
  bench::Table t2({"adder", "D1", "D2", "D3", "D4", "D5"});
  const synth::AdderArch archs[] = {synth::AdderArch::Ripple,
                                    synth::AdderArch::KoggeStone};
  std::vector<std::vector<std::string>> arch_grid(
      2, std::vector<std::string>(static_cast<std::size_t>(nd)));
  bench::parallel_for_cells(2 * nd, [&](int cell) {
    synth::SynthOptions opt;
    opt.adder = archs[cell / nd];
    const auto& tc = cases[static_cast<std::size_t>(cell % nd)];
    const auto res = synth::run_flow(tc.graph, synth::Flow::NewMerge, opt);
    const auto rep = sta.analyze(res.net);
    arch_grid[static_cast<std::size_t>(cell / nd)]
             [static_cast<std::size_t>(cell % nd)] =
                 fmt(rep.longest_path_ns) + " ns / " +
                 fmt(sta.area_scaled(res.net), 1);
  }, args.threads);
  for (int a = 0; a < 2; ++a) {
    std::vector<std::string> cells{std::string(synth::to_string(archs[a]))};
    for (int d = 0; d < nd; ++d) {
      cells.push_back(arch_grid[static_cast<std::size_t>(a)]
                               [static_cast<std::size_t>(d)]);
    }
    t2.add_row(std::move(cells));
  }
  t2.print();
  return 0;
}
