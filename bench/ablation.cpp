// Ablation study (ours, beyond the paper's tables): contribution of each
// ingredient of the new merging flow on D1..D5 —
//   A. clustering only (no width transforms, no rebalancing iteration)
//   B. + width normalisation (Theorem 4.2 + Lemmas 5.6/5.7)
//   C. + rebalancing iterations (Section 5.2 refinement loop)
//   D. + refinement-fed width pruning (the full prepare_new_merge flow)
// and the effect of the final-adder architecture (ripple vs Kogge-Stone).

#include <cstdio>

#include "bench_util.h"
#include "dpmerge/cluster/clusterer.h"
#include "dpmerge/designs/testcases.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/transform/rebalance.h"
#include "dpmerge/transform/width_prune.h"

int main() {
  using namespace dpmerge;
  using bench::fmt;

  netlist::Sta sta(netlist::CellLibrary::tsmc025());

  std::printf("Ablation: clusters / delay(ns) / area per configuration\n\n");
  bench::Table t({"config", "D1", "D2", "D3", "D4", "D5"});

  struct Config {
    const char* name;
    bool normalize;
    bool iterate;
    bool refine_feedback;
  };
  const Config configs[] = {
      {"A cluster only", false, false, false},
      {"B + width transforms", true, false, false},
      {"C + rebalance iters", true, true, false},
      {"D full new-merge flow", true, true, true},
  };

  for (const Config& cfg : configs) {
    std::vector<std::string> cells{cfg.name};
    for (const auto& tc : designs::all_testcases()) {
      dfg::Graph g = tc.graph;
      cluster::ClusterResult cr;
      if (cfg.refine_feedback) {
        cr = synth::prepare_new_merge(g);
      } else {
        if (cfg.normalize) transform::normalize_widths(g);
        cluster::ClusterOptions copt;
        copt.iterate_rebalancing = cfg.iterate;
        cr = cluster::cluster_maximal(g, copt);
      }
      const auto net =
          synth::synthesize_partition(g, cr.partition, cr.info, {});
      const auto rep = sta.analyze(net);
      cells.push_back(std::to_string(cr.partition.num_clusters()) + " / " +
                      fmt(rep.longest_path_ns) + " / " +
                      fmt(sta.area_scaled(net), 1));
    }
    t.add_row(std::move(cells));
  }
  t.print();

  // The "other application" of safe partitioning: graph rebalancing ahead
  // of a NON-merging flow (keeps discrete adders, shortens chains).
  std::printf(
      "\nGraph rebalancing ahead of the no-merging flow (operators / delay /"
      " area):\n\n");
  {
    bench::Table t3({"config", "D1", "D2", "D3", "D4", "D5"});
    std::vector<std::string> plain{"no-merge flow"};
    std::vector<std::string> reb{"no-merge + rebalance"};
    for (const auto& tc : designs::all_testcases()) {
      const auto before = synth::run_flow(tc.graph, synth::Flow::NoMerge);
      const auto balanced = transform::rebalance_clusters(tc.graph);
      const auto after = synth::run_flow(balanced, synth::Flow::NoMerge);
      const auto rb = sta.analyze(before.net);
      const auto ra = sta.analyze(after.net);
      plain.push_back(std::to_string(before.partition.num_clusters()) +
                      " / " + fmt(rb.longest_path_ns) + " / " +
                      fmt(sta.area_scaled(before.net), 1));
      reb.push_back(std::to_string(after.partition.num_clusters()) + " / " +
                    fmt(ra.longest_path_ns) + " / " +
                    fmt(sta.area_scaled(after.net), 1));
    }
    t3.add_row(std::move(plain));
    t3.add_row(std::move(reb));
    t3.print();
  }

  std::printf("\nFinal-adder architecture (full flow):\n\n");
  bench::Table t2({"adder", "D1", "D2", "D3", "D4", "D5"});
  for (synth::AdderArch arch :
       {synth::AdderArch::Ripple, synth::AdderArch::KoggeStone}) {
    std::vector<std::string> cells{std::string(synth::to_string(arch))};
    for (const auto& tc : designs::all_testcases()) {
      synth::SynthOptions opt;
      opt.adder = arch;
      const auto res = synth::run_flow(tc.graph, synth::Flow::NewMerge, opt);
      const auto rep = sta.analyze(res.net);
      cells.push_back(fmt(rep.longest_path_ns) + " ns / " +
                      fmt(sta.area_scaled(res.net), 1));
    }
    t2.add_row(std::move(cells));
  }
  t2.print();
  return 0;
}
