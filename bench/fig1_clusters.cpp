// Reproduces Figure 1 of the paper: cluster creation in the DFG G2. The
// truncate-then-extend at N1 (a 9-bit sum kept to 7 bits and sign-extended
// back to 9 on edge e) is a mergeability bottleneck, so the graph partitions
// into G_I = {N1} and G_II = {N2, N3, N4}.

#include <cstdio>

#include "bench_util.h"

#include "dpmerge/cluster/clusterer.h"
#include "dpmerge/designs/figures.h"

int main(int argc, char** argv) {
  using namespace dpmerge;

  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::ObsSession obs_session("fig1", args);

  dfg::Graph g = designs::figure1_g2();
  const auto f = designs::figure_nodes(g);
  std::printf("Figure 1(a): graph G2\n%s\n", g.to_dot().c_str());

  const auto res = cluster::cluster_maximal(g);
  std::printf("Figure 1(b): maximal merging -> %s\n",
              res.partition.summary(g).c_str());
  std::printf("\nExpected (paper): two clusters, G_I = {N1}, G_II = {N2, N3, N4}\n");
  std::printf("Got: %d clusters; N1 alone: %s; N2,N3,N4 together: %s\n",
              res.partition.num_clusters(),
              res.partition.clusters[static_cast<std::size_t>(
                                         res.partition.index_of(f.n1))]
                          .size() == 1
                  ? "yes"
                  : "no",
              (res.partition.index_of(f.n2) == res.partition.index_of(f.n3) &&
               res.partition.index_of(f.n3) == res.partition.index_of(f.n4))
                  ? "yes"
                  : "no");

  std::printf(
      "\nWhy: the information content of N1's ideal sum is %s but w(N1) = %d,\n"
      "and the consumer requires %d bits — Safety Condition 2 breaks at N1.\n",
      res.info.intr(f.n1).to_string().c_str(), g.node(f.n1).width,
      res.rp.r_in(f.n3));
  return 0;
}
