#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace dpmerge::bench {

/// Minimal fixed-width table printer for the table/figure harnesses, so the
/// bench output visually matches the paper's rows.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> w(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& r) {
      for (std::size_t i = 0; i < r.size() && i < w.size(); ++i) {
        w[i] = std::max(w[i], r[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);
    auto line = [&](const std::vector<std::string>& r) {
      std::printf("|");
      for (std::size_t i = 0; i < w.size(); ++i) {
        std::printf(" %-*s |", static_cast<int>(w[i]),
                    i < r.size() ? r[i].c_str() : "");
      }
      std::printf("\n");
    };
    line(header_);
    std::printf("|");
    for (std::size_t i = 0; i < w.size(); ++i) {
      std::printf("%s|", std::string(w[i] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline std::string pct_reduction(double before, double after) {
  if (before <= 0) return "-";
  return fmt(100.0 * (before - after) / before, 1);
}

}  // namespace dpmerge::bench
