#pragma once

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace dpmerge::bench {

/// Runs `fn(cell)` for cell in [0, n) on a small std::thread pool
/// (hardware concurrency by default; single-threaded fallback when the
/// machine reports one core). The table harnesses use this to spread their
/// independent (design x flow) cells.
///
/// Determinism rule: cells must be pure functions of their index that write
/// into pre-sized result slots, and any randomness a cell needs must come
/// from an Rng seeded per cell (never shared across cells), so the thread
/// schedule cannot change a single reported number (DESIGN.md,
/// "Performance engineering").
inline void parallel_for_cells(int n, const std::function<void(int)>& fn,
                               int threads = 0) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (auto& th : pool) th.join();
}

/// Minimal fixed-width table printer for the table/figure harnesses, so the
/// bench output visually matches the paper's rows.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> w(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& r) {
      for (std::size_t i = 0; i < r.size() && i < w.size(); ++i) {
        w[i] = std::max(w[i], r[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);
    auto line = [&](const std::vector<std::string>& r) {
      std::printf("|");
      for (std::size_t i = 0; i < w.size(); ++i) {
        std::printf(" %-*s |", static_cast<int>(w[i]),
                    i < r.size() ? r[i].c_str() : "");
      }
      std::printf("\n");
    };
    line(header_);
    std::printf("|");
    for (std::size_t i = 0; i < w.size(); ++i) {
      std::printf("%s|", std::string(w[i] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline std::string pct_reduction(double before, double after) {
  if (before <= 0) return "-";
  return fmt(100.0 * (before - after) / before, 1);
}

}  // namespace dpmerge::bench
