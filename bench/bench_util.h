#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "dpmerge/check/check.h"
#include "dpmerge/obs/obs.h"
#include "dpmerge/support/thread_pool.h"

namespace dpmerge::bench {

/// Shared command-line contract of every bench harness. The observability
/// flags (--stats-json, --trace, --profile, --metrics, --events, --seed,
/// --stats-deterministic — see obs::ObsArgs in obs/session.h) are parsed by
/// obs::parse_obs_arg, the same parser dpmerge-lint and dpmerge-explain
/// use, so every flow-running binary speaks one artifact dialect. On top of
/// those, benches add:
///   --bench-json <path>     BENCH_*.json trajectory artifact
///   --threads <n>           pool width for parallel_for_cells (0 = auto)
///   --check=<policy>        run flows with pass-boundary checks enabled
///                           (off|errors|paranoid, default off)
///   --help                  print usage and exit
struct BenchArgs {
  obs::ObsArgs obs;
  std::string bench_json;
  int threads = 0;
};

/// Parses the shared flags out of argv. With `allow_unknown` (the
/// google-benchmark harnesses), unrecognised arguments are kept in argv (and
/// argc updated) for the caller's own parser; otherwise they are an error.
inline BenchArgs parse_bench_args(int& argc, char** argv,
                                  bool allow_unknown = false) {
  BenchArgs a;
  auto usage = [&](std::FILE* to) {
    std::fprintf(to,
                 "usage: %s [obs flags] [--bench-json <path>]\n"
                 "          [--threads <n>] [--check=<policy>]\n%s",
                 argc > 0 ? argv[0] : "bench", obs::obs_usage());
  };
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (obs::parse_obs_arg(argc, argv, i, &a.obs)) continue;
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--bench-json") {
      a.bench_json = value();
    } else if (arg == "--threads") {
      a.threads = std::atoi(value());
    } else if (arg.rfind("--check=", 0) == 0) {
      const auto p = check::parse_policy(arg.substr(8));
      if (!p) {
        std::fprintf(stderr, "bad --check policy '%s'\n", arg.c_str() + 8);
        std::exit(2);
      }
      check::set_policy(*p);
    } else if (arg == "--help" && !allow_unknown) {
      usage(stdout);
      std::exit(0);
    } else if (allow_unknown) {
      argv[out++] = argv[i];
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      usage(stderr);
      std::exit(2);
    }
  }
  if (allow_unknown) argc = out;
  return a;
}

/// The bench-side artifact session: obs::ArtifactSession (tracer lifecycle,
/// crash handlers, and the --stats-json/--profile/--metrics/--events
/// artifacts at destruction) constructed from the parsed BenchArgs. The
/// harness fills the inherited `reports` vector (in deterministic cell
/// order) before the session is destroyed.
class ObsSession : public obs::ArtifactSession {
 public:
  ObsSession(std::string bench_name, const BenchArgs& args)
      : obs::ArtifactSession(std::move(bench_name), args.obs) {}
};

/// One cell of the `--bench-json` trajectory artifact: the result metrics
/// for one (design x flow) combination. This is the stable cross-bench
/// schema `tools/check_bench_regression.py` compares against the checked-in
/// baselines under bench/baselines/ — keep the field set append-only.
struct BenchCell {
  std::string design;
  std::string flow;
  double delay_ns = 0.0;
  double area = 0.0;
  std::int64_t cpa_count = 0;
  double wall_ms = 0.0;  ///< zeroed with --stats-deterministic
  double rss_mb = 0.0;   ///< peak RSS after the cell; zeroed likewise
};

/// Peak resident-set size of this process in MiB, or 0.0 where procfs is
/// unavailable. A thin wrapper over obs::MemorySampler (the one RSS source
/// in the tree); kept because every bench already calls it by this name.
/// A high-water mark: it only grows, so per-cell readings in a multi-design
/// harness reflect the largest design processed so far.
inline double peak_rss_mb() { return obs::MemorySampler::peak_rss_mb(); }

/// Writes the BENCH_<name>.json trajectory artifact: one object per cell,
/// in the order the bench stored them. `zero_wall` (the --stats-deterministic
/// mode) zeroes wall_ms so repeated runs are byte-identical; delay/area/
/// cpa_count are pure functions of the workload already.
inline void write_bench_json(std::ostream& os, std::string_view bench_name,
                             const std::vector<BenchCell>& cells,
                             bool zero_wall) {
  std::string out = "{\"bench\":";
  obs::json_append_quoted(out, bench_name);
  out += ",\"schema\":\"dpmerge-bench-v1\"";
#ifdef DPMERGE_SANITIZER_BUILD
  // Tagged so tools/check_bench_regression.py skips timing comparisons:
  // sanitizer instrumentation distorts wall/delay-independent metrics never,
  // but a sanitized artifact must not overwrite or gate against clean
  // baselines.
  out += ",\"sanitizer\":";
  obs::json_append_quoted(out, DPMERGE_SANITIZER_BUILD);
#endif
  out += ",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const BenchCell& c = cells[i];
    out += i ? ",\n" : "\n";
    out += "{\"design\":";
    obs::json_append_quoted(out, c.design);
    out += ",\"flow\":";
    obs::json_append_quoted(out, c.flow);
    out += ",\"delay\":" + obs::json_number(c.delay_ns);
    out += ",\"area\":" + obs::json_number(c.area);
    out += ",\"cpa_count\":" + std::to_string(c.cpa_count);
    out += ",\"wall_ms\":" + obs::json_number(zero_wall ? 0.0 : c.wall_ms);
    out += ",\"rss_mb\":" + obs::json_number(zero_wall ? 0.0 : c.rss_mb);
    out += "}";
  }
  out += "\n]}\n";
  os << out;
}

/// Opens `path` and writes the trajectory artifact, with the usual stderr
/// complaint on IO failure (mirrors ObsSession's --stats-json handling).
inline void write_bench_json_file(const std::string& path,
                                  std::string_view bench_name,
                                  const std::vector<BenchCell>& cells,
                                  bool zero_wall) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "failed to write bench json to '%s'\n", path.c_str());
    return;
  }
  write_bench_json(os, bench_name, cells, zero_wall);
}

/// Runs `fn(cell)` for cell in [0, n) on the process-wide
/// `support::ThreadPool` (hardware concurrency by default; `threads` caps
/// the width, 0 = auto). The table harnesses use this to spread their
/// independent (design x flow) cells.
///
/// Determinism rule: cells must be pure functions of their index that write
/// into pre-sized result slots, and any randomness a cell needs must come
/// from an Rng seeded per cell (never shared across cells), so the thread
/// schedule cannot change a single reported number (DESIGN.md §11).
inline void parallel_for_cells(int n, const std::function<void(int)>& fn,
                               int threads = 0) {
  support::ThreadPool::shared().parallel_for(n, fn, threads);
}

/// Minimal fixed-width table printer for the table/figure harnesses, so the
/// bench output visually matches the paper's rows.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> w(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& r) {
      for (std::size_t i = 0; i < r.size() && i < w.size(); ++i) {
        w[i] = std::max(w[i], r[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);
    auto line = [&](const std::vector<std::string>& r) {
      std::printf("|");
      for (std::size_t i = 0; i < w.size(); ++i) {
        std::printf(" %-*s |", static_cast<int>(w[i]),
                    i < r.size() ? r[i].c_str() : "");
      }
      std::printf("\n");
    };
    line(header_);
    std::printf("|");
    for (std::size_t i = 0; i < w.size(); ++i) {
      std::printf("%s|", std::string(w[i] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline std::string pct_reduction(double before, double after) {
  if (before <= 0) return "-";
  return fmt(100.0 * (before - after) / before, 1);
}

}  // namespace dpmerge::bench
