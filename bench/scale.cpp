// Scaling-curve bench (DESIGN.md §11): how the flow front-end behaves as
// designs grow from 1k to 100k+ operator nodes. For every (size x design
// family) point it times graph construction + freeze + validate, the
// new-merge front-end (normalize + iterative maximal clustering) serial and
// parallel, and — up to --full-max nodes — the complete new-merge flow
// including synthesis and STA. The parallel clustering result is checked
// cell-by-cell against the serial partition: any divergence is a hard
// failure, the bench's enforcement of the bit-identical determinism
// contract.
//
// Extra flags on top of the shared bench contract:
//   --sizes a,b,c     target operator counts (default 1000,3000,10000,100000)
//   --full-max <n>    run the full synthesis flow for designs up to n nodes
//                     (default 10000; synthesis cost, not clustering, is the
//                     practical bound at larger sizes)

#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "dpmerge/cluster/partition.h"
#include "dpmerge/designs/scale.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/flow.h"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpmerge;
  using bench::BenchCell;
  using bench::fmt;

  bench::BenchArgs args = bench::parse_bench_args(argc, argv, true);
  std::vector<int> sizes{1000, 3000, 10000, 100000};
  int full_max = 10000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sizes") {
      sizes.clear();
      const char* s = value();
      while (*s) {
        sizes.push_back(std::atoi(s));
        const char* comma = std::strchr(s, ',');
        if (!comma) break;
        s = comma + 1;
      }
    } else if (arg == "--full-max") {
      full_max = std::atoi(value());
    } else if (arg == "--help") {
      std::fprintf(stdout,
                   "usage: %s [shared bench flags] [--sizes a,b,c]"
                   " [--full-max n]\n",
                   argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  bench::ObsSession obs_session("scale", args);
  support::ThreadPool::set_shared_threads(args.threads);
  const int pool_width = support::ThreadPool::shared().size();

  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  std::vector<BenchCell> cells;
  bench::Table t({"design", "nodes", "build(ms)", "serial(ms)",
                  "parallel(ms)", "speedup", "clusters", "rss(MB)"});

  for (const int target : sizes) {
    auto suite = designs::scale_suite(target);
    for (auto& d : suite) {
      dfg::Graph& g = d.graph;

      // Construction cost proxy: CSR freeze + full validation. Generation
      // itself happened in scale_suite; freeze/validate are the structural
      // sweeps every flow pays, and validate's O(n) behaviour at 100k is
      // exactly what this cell tracks.
      const auto t_build = Clock::now();
      g.freeze();
      const auto errs = g.validate();
      const double build_ms = ms_since(t_build);
      if (!errs.empty()) {
        std::fprintf(stderr, "%s: invalid graph: %s\n", d.name.c_str(),
                     errs.front().c_str());
        return 1;
      }
      cells.push_back(BenchCell{d.name, "build", 0.0, 0.0, 0, build_ms,
                                bench::peak_rss_mb()});

      // New-merge front-end, serial.
      double serial_ms = 0.0, parallel_ms = 0.0;
      dfg::Graph gs = g;
      const auto t_s = Clock::now();
      const auto crs = synth::prepare_new_merge(gs, nullptr, 1);
      serial_ms = ms_since(t_s);
      cells.push_back(BenchCell{d.name, "cluster-serial", 0.0, 0.0,
                                crs.partition.num_clusters(), serial_ms,
                                bench::peak_rss_mb()});

      // Parallel: must reproduce the serial partition exactly.
      if (pool_width > 1) {
        dfg::Graph gp = g;
        const auto t_p = Clock::now();
        const auto crp = synth::prepare_new_merge(gp, nullptr, 0);
        parallel_ms = ms_since(t_p);
        if (crp.partition.cluster_of != crs.partition.cluster_of ||
            crp.partition.num_clusters() != crs.partition.num_clusters()) {
          std::fprintf(stderr,
                       "%s: parallel clustering diverged from serial\n",
                       d.name.c_str());
          return 1;
        }
        cells.push_back(BenchCell{d.name, "cluster-parallel", 0.0, 0.0,
                                  crp.partition.num_clusters(), parallel_ms,
                                  bench::peak_rss_mb()});
      }

      // Full flow (clustering + synthesis + STA) at tractable sizes.
      if (g.node_count() <= full_max) {
        synth::SynthOptions sopt;
        sopt.threads = 1;
        const auto t_f = Clock::now();
        auto res = synth::run_flow(g, synth::Flow::NewMerge, sopt);
        const double full_ms = ms_since(t_f);
        res.report.design = d.name;
        const auto timing = sta.analyze(res.net);
        cells.push_back(BenchCell{d.name, "full-new-merge",
                                  timing.longest_path_ns,
                                  sta.area_scaled(res.net),
                                  res.partition.num_clusters(), full_ms,
                                  bench::peak_rss_mb()});
        res.report.metrics["delay_ns"] = timing.longest_path_ns;
        res.report.metrics["area"] = sta.area_scaled(res.net);
        res.report.metrics["clusters"] = res.partition.num_clusters();
        obs_session.reports.push_back(std::move(res.report));
      }

      t.add_row({d.name, std::to_string(g.node_count()), fmt(build_ms),
                 fmt(serial_ms),
                 pool_width > 1 ? fmt(parallel_ms) : std::string("-"),
                 pool_width > 1 && parallel_ms > 0.0
                     ? fmt(serial_ms / parallel_ms) + "x"
                     : std::string("-"),
                 std::to_string(crs.partition.num_clusters()),
                 fmt(bench::peak_rss_mb(), 1)});
    }
  }

  std::printf("Scaling curve: new-merge front-end, serial vs parallel"
              " (%d worker thread(s))\n\n",
              pool_width);
  t.print();
  std::printf(
      "\nReading: the front-end stays near-linear in nodes; the parallel\n"
      "columns track how much of each iteration's analysis/break/refine\n"
      "work the level decomposition exposes. Partitions are verified\n"
      "identical between the serial and parallel runs.\n");

  if (!args.bench_json.empty()) {
    bench::write_bench_json_file(args.bench_json, "scale", cells,
                                 args.obs.deterministic);
  }
  return 0;
}
