// Reproduces Table 2 of the paper: runtime of timing-driven gate-level
// optimisation on the old-merge vs new-merge netlists of D1..D5, plus the
// final (post-optimisation) delay and area.
//
// The paper's absolute runtimes come from a proprietary optimiser on 2001
// hardware; the target delays come from its library. Here the target for
// each design is set a few percent below the new-merge netlist's initial
// delay, so both flows have real work to do, and runtimes are from this
// repository's TimingOptimizer (DESIGN.md §1). The reproduction target is
// the shape: the new-merge netlist needs dramatically less optimisation
// effort and ends no worse in delay and much smaller in area.

#include <cstdio>

#include "bench_util.h"
#include "dpmerge/designs/testcases.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/opt/timing_opt.h"
#include "dpmerge/synth/flow.h"

int main(int argc, char** argv) {
  using namespace dpmerge;
  using synth::Flow;

  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::ObsSession obs_session("table2", args);

  const auto cases = designs::all_testcases();
  const auto& lib = netlist::CellLibrary::tsmc025();
  netlist::Sta sta(lib);
  opt::TimingOptimizer optimizer(lib);

  struct Row {
    double target = 0;
    double time[2];
    double end_delay[2];
    double end_area[2];
    int moves[2];
  };
  std::vector<Row> rows(cases.size());

  // Phase 1: synthesize every (design x flow) cell on the pool. Phase 2:
  // optimize every cell, once the per-design targets (derived from the
  // new-merge netlists of phase 1) are known. Cells write only their own
  // slots, so the thread schedule cannot affect the printed numbers.
  const int n = static_cast<int>(cases.size());
  std::vector<synth::FlowResult> synthed(static_cast<std::size_t>(n) * 2);
  bench::parallel_for_cells(
      n * 2,
      [&](int cell) {
        const int ci = cell / 2;
        const Flow f = (cell % 2) == 0 ? Flow::OldMerge : Flow::NewMerge;
        synthed[static_cast<std::size_t>(cell)] =
            synth::run_flow(cases[static_cast<std::size_t>(ci)].graph, f);
        synthed[static_cast<std::size_t>(cell)].report.design =
            cases[static_cast<std::size_t>(ci)].name;
      },
      args.threads);
  for (int ci = 0; ci < n; ++ci) {
    rows[static_cast<std::size_t>(ci)].target =
        sta.analyze(synthed[static_cast<std::size_t>(ci) * 2 + 1].net)
            .longest_path_ns *
        0.93;
  }
  bench::parallel_for_cells(
      n * 2,
      [&](int cell) {
        const int ci = cell / 2;
        const int fi = cell % 2;  // 0 = old merge, 1 = new merge
        Row& r = rows[static_cast<std::size_t>(ci)];
        synth::FlowResult& fr = synthed[static_cast<std::size_t>(cell)];
        opt::TimingOptOptions o;
        o.target_ns = r.target;
        o.max_moves = 5000;

        // The optimizer runs outside run_flow, so collect its counters into
        // an explicit "opt" stage appended to the flow's report.
        obs::StatSink sink;
        const std::int64_t in_gates = fr.net.gate_count();
        const std::int64_t t0 = obs::now_us();
        opt::TimingOptResult res;
        {
          obs::StatScope scope(&sink);
          res = optimizer.optimize(fr.net, o);
        }
        obs::StageReport stage;
        stage.name = "opt";
        stage.elapsed_us = obs::now_us() - t0;
        stage.in_nodes = in_gates;
        stage.out_nodes = fr.net.gate_count();
        for (const auto& [k, v] : sink.values()) stage.stats.emplace(k, v);
        fr.report.total_us += stage.elapsed_us;
        fr.report.stages.push_back(std::move(stage));
        fr.report.metrics["target_ns"] = r.target;
        fr.report.metrics["end_delay_ns"] = res.final_ns;
        fr.report.metrics["end_area"] = res.final_area;
        fr.report.metrics["opt_moves"] = res.moves;

        r.time[fi] = res.runtime_sec;
        r.end_delay[fi] = res.final_ns;
        r.end_area[fi] = res.final_area;
        r.moves[fi] = res.moves;
      },
      args.threads);
  if (!args.bench_json.empty()) {
    std::vector<bench::BenchCell> bench_cells;
    bench_cells.reserve(synthed.size());
    for (const auto& fr : synthed) {
      bench::BenchCell bc;
      bc.design = fr.report.design;
      bc.flow = fr.report.flow;
      bc.delay_ns = fr.report.metrics.at("end_delay_ns");
      bc.area = fr.report.metrics.at("end_area");
      bc.cpa_count = fr.report.cpa_count;
      bc.wall_ms = static_cast<double>(fr.report.total_us) / 1000.0;
      bc.rss_mb = bench::peak_rss_mb();
      bench_cells.push_back(std::move(bc));
    }
    bench::write_bench_json_file(args.bench_json, "table2", bench_cells,
                                 args.obs.deterministic);
  }
  obs_session.reports.reserve(synthed.size());
  for (auto& fr : synthed) {
    obs_session.reports.push_back(std::move(fr.report));
  }

  std::printf("Table 2: timing-driven logic optimisation, old vs new merging\n");
  std::printf("(times in seconds on this machine; targets derived per design)\n\n");
  bench::Table t({"Testcases ->", "D1", "D2", "D3", "D4", "D5"});
  auto add = [&](const char* label, auto get) {
    std::vector<std::string> cells{label};
    for (const auto& r : rows) cells.push_back(get(r));
    t.add_row(std::move(cells));
  };
  add("Target delay (ns)", [](const Row& r) { return bench::fmt(r.target); });
  add("Opt time Old mg (s)",
      [](const Row& r) { return bench::fmt(r.time[0], 4); });
  add("Opt time New mg (s)",
      [](const Row& r) { return bench::fmt(r.time[1], 4); });
  add("Opt time % red.", [](const Row& r) {
    return bench::pct_reduction(r.time[0], r.time[1]);
  });
  add("Moves Old/New", [](const Row& r) {
    return std::to_string(r.moves[0]) + "/" + std::to_string(r.moves[1]);
  });
  add("End Del. Old mg", [](const Row& r) { return bench::fmt(r.end_delay[0]); });
  add("End Del. New mg", [](const Row& r) { return bench::fmt(r.end_delay[1]); });
  add("End Area Old mg", [](const Row& r) { return bench::fmt(r.end_area[0], 1); });
  add("End Area New mg", [](const Row& r) { return bench::fmt(r.end_area[1], 1); });
  t.print();

  std::printf(
      "\nPaper (Table 2) reference shapes: optimisation runtime reductions"
      "\nD1 98.5%% D2 79.8%% D3 34.6%% D4 98.1%% D5 93.8%%; end delay new <="
      " old\n(except D3's 20.9 vs 20.7); end area much smaller for new on"
      " D1/D2/D4/D5.\n");
  return 0;
}
