// Reproduces Figure 2 of the paper: small required precision implies
// mergeability. G4 is G2 with a 5-bit output; the required precision of
// every signal is 5, the Theorem 4.2 transformation shrinks every operator
// and edge to 5 bits (G4'), and the whole graph becomes one cluster.

#include <cstdio>

#include "bench_util.h"

#include "dpmerge/analysis/required_precision.h"
#include "dpmerge/cluster/clusterer.h"
#include "dpmerge/designs/figures.h"
#include "dpmerge/transform/width_prune.h"

int main(int argc, char** argv) {
  using namespace dpmerge;

  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::ObsSession obs_session("fig2", args);

  dfg::Graph g = designs::figure2_g4();
  const auto f = designs::figure_nodes(g);

  const auto rp = analysis::compute_required_precision(g);
  std::printf("Figure 2(a): graph G4 (G2 with 5-bit output R)\n");
  std::printf("required precision at the adders' output ports: N1=%d N2=%d N3=%d N4=%d\n",
              rp.r_out(f.n1), rp.r_out(f.n2), rp.r_out(f.n3), rp.r_out(f.n4));

  const auto stats = transform::prune_required_precision(g);
  std::printf("\nTheorem 4.2 transformation: %s\n", stats.to_string().c_str());
  std::printf("Figure 2(b): graph G4' widths: N1=%d N2=%d N3=%d N4=%d\n",
              g.node(f.n1).width, g.node(f.n2).width, g.node(f.n3).width,
              g.node(f.n4).width);

  const auto res = cluster::cluster_maximal(g);
  std::printf("\nClustering G4': %s\n", res.partition.summary(g).c_str());
  std::printf("Expected (paper): every r = 5, all widths 5, completely mergeable "
              "(1 cluster)\n");
  return 0;
}
