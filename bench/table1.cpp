// Reproduces Table 1 of the paper: post-synthesis longest-path delay (ns)
// and area (library units / 100) of testcases D1..D5 under the
// no-merging, old (leakage-of-bits) merging and new (information-content /
// required-precision) merging flows, plus the % reduction of new vs old.
//
// Absolute numbers depend on the stand-in cell library (DESIGN.md §1); the
// shapes the paper reports — New <= Old <= NoMerge everywhere, dramatic
// D4/D5 wins from width pruning, modest D1/D3 post-synthesis wins — are the
// reproduction target (see EXPERIMENTS.md).

#include <cstdio>

#include "bench_util.h"
#include "dpmerge/designs/testcases.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/explain.h"
#include "dpmerge/synth/flow.h"

int main(int argc, char** argv) {
  using namespace dpmerge;
  using bench::fmt;
  using synth::Flow;

  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::ObsSession obs_session("table1", args);

  const auto cases = designs::all_testcases();
  netlist::Sta sta(netlist::CellLibrary::tsmc025());

  struct Row {
    double delay[3];
    double area[3];
    int clusters[3];
  };
  // One (design x flow) cell per pool task; each cell writes its own slot,
  // so the thread schedule cannot affect the printed table (or the
  // --stats-json entry order).
  std::vector<Row> rows(cases.size());
  const Flow flows[] = {Flow::NoMerge, Flow::OldMerge, Flow::NewMerge};
  obs_session.reports.resize(cases.size() * 3);
  std::vector<bench::BenchCell> bench_cells(cases.size() * 3);
  bench::parallel_for_cells(
      static_cast<int>(cases.size()) * 3,
      [&](int cell) {
        const int ci = cell / 3;
        const int fi = cell % 3;
        auto res = synth::run_flow(cases[static_cast<std::size_t>(ci)].graph,
                                   flows[fi]);
        const auto timing = sta.analyze(res.net);
        Row& r = rows[static_cast<std::size_t>(ci)];
        r.delay[fi] = timing.longest_path_ns;
        r.area[fi] = sta.area_scaled(res.net);
        r.clusters[fi] = res.partition.num_clusters();
        res.report.design = cases[static_cast<std::size_t>(ci)].name;
        res.report.metrics["delay_ns"] = r.delay[fi];
        res.report.metrics["area"] = r.area[fi];
        res.report.metrics["clusters"] = r.clusters[fi];
        // Provenance roll-up: which merge decisions own the worst path.
        const auto ledger = synth::build_ledger(
            res, netlist::CellLibrary::tsmc025(), timing);
        synth::attach_top_decisions(res.report, ledger);
        bench::BenchCell& bc = bench_cells[static_cast<std::size_t>(cell)];
        bc.design = res.report.design;
        bc.flow = res.report.flow;
        bc.delay_ns = r.delay[fi];
        bc.area = r.area[fi];
        bc.cpa_count = res.report.cpa_count;
        bc.wall_ms = static_cast<double>(res.report.total_us) / 1000.0;
        bc.rss_mb = bench::peak_rss_mb();
        obs_session.reports[static_cast<std::size_t>(cell)] =
            std::move(res.report);
      },
      args.threads);
  if (!args.bench_json.empty()) {
    bench::write_bench_json_file(args.bench_json, "table1", bench_cells,
                                 args.obs.deterministic);
  }

  std::printf("Table 1: post-synthesis longest path delay and area\n");
  std::printf("(delay in ns; area in library units scaled by 1/100)\n\n");
  bench::Table t({"Testcases ->", "D1", "D2", "D3", "D4", "D5"});
  auto add = [&](const char* label, auto get) {
    std::vector<std::string> cells{label};
    for (const auto& r : rows) cells.push_back(get(r));
    t.add_row(std::move(cells));
  };
  add("Del. No mg", [](const Row& r) { return bench::fmt(r.delay[0]); });
  add("Del. Old mg", [](const Row& r) { return bench::fmt(r.delay[1]); });
  add("Del. New mg", [](const Row& r) { return bench::fmt(r.delay[2]); });
  add("Del. % red.", [](const Row& r) {
    return bench::pct_reduction(r.delay[1], r.delay[2]);
  });
  add("Area No mg", [](const Row& r) { return bench::fmt(r.area[0], 1); });
  add("Area Old mg", [](const Row& r) { return bench::fmt(r.area[1], 1); });
  add("Area New mg", [](const Row& r) { return bench::fmt(r.area[2], 1); });
  add("Area % red.", [](const Row& r) {
    return bench::pct_reduction(r.area[1], r.area[2]);
  });
  add("Clusters No/Old/New", [](const Row& r) {
    return std::to_string(r.clusters[0]) + "/" + std::to_string(r.clusters[1]) +
           "/" + std::to_string(r.clusters[2]);
  });
  t.print();

  std::printf(
      "\nPaper (Table 1) reference shapes: new merging always at least as good"
      "\nas old; delay reductions D1 2.38%% D2 7.52%% D3 2.11%% D4 39.67%% D5"
      " 39.86%%;\narea reductions D1 1.53%% D2 0%% D3 5%% D4 89.2%% D5 85.2%%.\n");
  return 0;
}
