// Measures the absint width-shrinking bridge (DESIGN.md §13): for each of
// the paper's testcases D1..D5 (raw, pre-normalisation graphs) and the
// structural scaling suite, runs the new-merge flow with and without the
// `transform::shrink_widths` pre-stage and reports the post-synthesis
// delay/area/CPA deltas, plus the shrink pass's own statistics (how many
// nodes/edges narrowed, under which rule, and whether the batches carried a
// BDD proof or simulation-only evidence).
//
// The deltas measure what the bidirectional fixpoint proves *beyond* the
// paper's IC/RP algebras — the flow's own normalize stage still runs either
// way, so a zero delta on a design means the fixed rules already found
// everything the product domain can see there.

#include <cstdio>

#include "bench_util.h"
#include "dpmerge/designs/scale.h"
#include "dpmerge/designs/testcases.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/transform/shrink_widths.h"

int main(int argc, char** argv) {
  using namespace dpmerge;
  using bench::fmt;

  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::ObsSession obs_session("shrink", args);

  struct Case {
    std::string name;
    dfg::Graph graph;
  };
  std::vector<Case> cases;
  for (auto& tc : designs::all_testcases()) {
    cases.push_back({tc.name, std::move(tc.graph)});
  }
  for (auto& sd : designs::scale_suite(5000)) {
    cases.push_back({sd.name, std::move(sd.graph)});
  }

  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  struct Row {
    double delay[2];
    double area[2];
    std::int64_t cpa[2];
    transform::ShrinkStats shrink;
  };
  std::vector<Row> rows(cases.size());
  obs_session.reports.resize(cases.size() * 2);
  std::vector<bench::BenchCell> bench_cells(cases.size() * 2);
  // One (design x variant) cell per pool task; each writes only its own
  // slots so the schedule cannot change a reported number (DESIGN.md §11).
  bench::parallel_for_cells(
      static_cast<int>(cases.size()) * 2,
      [&](int cell) {
        const auto ci = static_cast<std::size_t>(cell / 2);
        const int vi = cell % 2;  // 0 = plain new-merge, 1 = +shrink
        synth::SynthOptions opt;
        opt.absint_shrink = vi == 1;
        if (vi == 1) {
          // Standalone stats on the raw graph (the flow re-runs the pass
          // internally; this copy reports what it found and how it was
          // discharged).
          dfg::Graph copy = cases[ci].graph;
          rows[ci].shrink = transform::shrink_widths(copy);
        }
        auto res =
            synth::run_flow(cases[ci].graph, synth::Flow::NewMerge, opt);
        const auto timing = sta.analyze(res.net);
        Row& r = rows[ci];
        r.delay[vi] = timing.longest_path_ns;
        r.area[vi] = sta.area_scaled(res.net);
        r.cpa[vi] = res.report.cpa_count;
        res.report.design = cases[ci].name;
        res.report.flow = vi ? "new-merge+shrink" : "new-merge";
        res.report.metrics["delay_ns"] = r.delay[vi];
        res.report.metrics["area"] = r.area[vi];
        bench::BenchCell& bc = bench_cells[static_cast<std::size_t>(cell)];
        bc.design = res.report.design;
        bc.flow = res.report.flow;
        bc.delay_ns = r.delay[vi];
        bc.area = r.area[vi];
        bc.cpa_count = r.cpa[vi];
        bc.wall_ms = static_cast<double>(res.report.total_us) / 1000.0;
        bc.rss_mb = bench::peak_rss_mb();
        obs_session.reports[static_cast<std::size_t>(cell)] =
            std::move(res.report);
      },
      args.threads);
  if (!args.bench_json.empty()) {
    bench::write_bench_json_file(args.bench_json, "shrink", bench_cells,
                                 args.obs.deterministic);
  }

  std::printf("shrink_widths: new-merge flow with/without the absint "
              "narrowing pre-stage\n\n");
  bench::Table t({"Design", "Delay", "Delay+shrink", "%", "Area",
                  "Area+shrink", "%", "CPAs", "CPAs+shrink"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Row& r = rows[i];
    t.add_row({cases[i].name, fmt(r.delay[0]), fmt(r.delay[1]),
               bench::pct_reduction(r.delay[0], r.delay[1]), fmt(r.area[0], 1),
               fmt(r.area[1], 1), bench::pct_reduction(r.area[0], r.area[1]),
               std::to_string(r.cpa[0]), std::to_string(r.cpa[1])});
  }
  t.print();

  std::printf("\nper-design shrink pass (on the raw graph):\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::printf("  %-12s %s\n", cases[i].name.c_str(),
                rows[i].shrink.to_string().c_str());
  }
  return 0;
}
