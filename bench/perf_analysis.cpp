// Google-benchmark microbenchmarks: scaling of the paper's analyses and of
// the clustering algorithm with DFG size. The paper claims "efficient
// algorithms" (required precision and the information-content upper bound
// are single sweeps, O(V+E)); these benches demonstrate near-linear
// behaviour and measure the cost of the iterative merging loop and of full
// synthesis.

#include <benchmark/benchmark.h>

#include "dpmerge/analysis/huffman.h"
#include "dpmerge/analysis/info_content.h"
#include "dpmerge/analysis/required_precision.h"
#include "dpmerge/cluster/clusterer.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/transform/width_prune.h"

namespace {

using namespace dpmerge;

dfg::Graph graph_of_size(int ops) {
  Rng rng(static_cast<std::uint64_t>(ops) * 2654435761u);
  dfg::RandomGraphOptions opt;
  opt.num_inputs = std::max(2, ops / 8);
  opt.num_operators = ops;
  opt.mul_fraction = 0.1;
  return dfg::random_graph(rng, opt);
}

void BM_RequiredPrecision(benchmark::State& state) {
  const auto g = graph_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compute_required_precision(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RequiredPrecision)->Range(16, 8192)->Complexity(benchmark::oN);

void BM_InfoContent(benchmark::State& state) {
  const auto g = graph_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compute_info_content(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InfoContent)->Range(16, 8192)->Complexity(benchmark::oN);

void BM_NormalizeWidths(benchmark::State& state) {
  const auto g = graph_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    dfg::Graph copy = g;
    state.ResumeTiming();
    transform::normalize_widths(copy);
  }
}
BENCHMARK(BM_NormalizeWidths)->Range(16, 4096);

void BM_ClusterMaximal(benchmark::State& state) {
  auto g = graph_of_size(static_cast<int>(state.range(0)));
  transform::normalize_widths(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::cluster_maximal(g));
  }
}
BENCHMARK(BM_ClusterMaximal)->Range(16, 4096);

void BM_ClusterLeakage(benchmark::State& state) {
  const auto g = graph_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::cluster_leakage(g));
  }
}
BENCHMARK(BM_ClusterLeakage)->Range(16, 4096);

void BM_FullFlow(benchmark::State& state) {
  const auto g = graph_of_size(static_cast<int>(state.range(0)));
  const auto flow = static_cast<synth::Flow>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::run_flow(g, flow));
  }
  state.SetLabel(std::string(synth::to_string(flow)));
}
BENCHMARK(BM_FullFlow)
    ->ArgsProduct({{64, 256, 1024}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

void BM_HuffmanRebalancing(benchmark::State& state) {
  std::vector<analysis::Addend> addends;
  Rng rng(9);
  for (int i = 0; i < state.range(0); ++i) {
    addends.push_back(
        {{static_cast<int>(rng.uniform(2, 24)), Sign::Unsigned}, 1});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::huffman_rebalanced_bound(addends));
  }
}
BENCHMARK(BM_HuffmanRebalancing)->Range(8, 4096);

}  // namespace

BENCHMARK_MAIN();
