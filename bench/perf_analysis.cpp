// Google-benchmark microbenchmarks: scaling of the paper's analyses and of
// the clustering algorithm with DFG size. The paper claims "efficient
// algorithms" (required precision and the information-content upper bound
// are single sweeps, O(V+E)); these benches demonstrate near-linear
// behaviour and measure the cost of the iterative merging loop and of full
// synthesis.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "dpmerge/analysis/huffman.h"
#include "dpmerge/analysis/info_content.h"
#include "dpmerge/analysis/required_precision.h"
#include "dpmerge/cluster/clusterer.h"
#include "dpmerge/designs/kernels.h"
#include "dpmerge/dfg/random_graph.h"
#include "dpmerge/netlist/packed_sim.h"
#include "dpmerge/netlist/sim.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/synth/verify.h"
#include "dpmerge/transform/width_prune.h"

namespace {

using namespace dpmerge;

dfg::Graph graph_of_size(int ops) {
  Rng rng(static_cast<std::uint64_t>(ops) * 2654435761u);
  dfg::RandomGraphOptions opt;
  opt.num_inputs = std::max(2, ops / 8);
  opt.num_operators = ops;
  opt.mul_fraction = 0.1;
  return dfg::random_graph(rng, opt);
}

void BM_RequiredPrecision(benchmark::State& state) {
  const auto g = graph_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compute_required_precision(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RequiredPrecision)->Range(16, 8192)->Complexity(benchmark::oN);

void BM_InfoContent(benchmark::State& state) {
  const auto g = graph_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compute_info_content(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InfoContent)->Range(16, 8192)->Complexity(benchmark::oN);

void BM_NormalizeWidths(benchmark::State& state) {
  const auto g = graph_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    dfg::Graph copy = g;
    state.ResumeTiming();
    transform::normalize_widths(copy);
  }
}
BENCHMARK(BM_NormalizeWidths)->Range(16, 4096);

void BM_ClusterMaximal(benchmark::State& state) {
  auto g = graph_of_size(static_cast<int>(state.range(0)));
  transform::normalize_widths(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::cluster_maximal(g));
  }
}
BENCHMARK(BM_ClusterMaximal)->Range(16, 4096);

void BM_ClusterLeakage(benchmark::State& state) {
  const auto g = graph_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::cluster_leakage(g));
  }
}
BENCHMARK(BM_ClusterLeakage)->Range(16, 4096);

void BM_FullFlow(benchmark::State& state) {
  const auto g = graph_of_size(static_cast<int>(state.range(0)));
  const auto flow = static_cast<synth::Flow>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::run_flow(g, flow));
  }
  state.SetLabel(std::string(synth::to_string(flow)));
}
BENCHMARK(BM_FullFlow)
    ->ArgsProduct({{64, 256, 1024}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

/// The largest DSP kernel by synthesized gate count under the full
/// new-merge flow — the verification-heavy workload of the acceptance
/// criteria. Synthesized once and shared by the sim/verify benches.
struct LargestKernel {
  std::string name;
  dfg::Graph graph;
  netlist::Netlist net;
};

const LargestKernel& largest_kernel() {
  static const LargestKernel k = [] {
    LargestKernel best;
    int best_gates = -1;
    for (auto& kern : designs::dsp_kernels()) {
      auto res = synth::run_flow(kern.graph, synth::Flow::NewMerge);
      if (res.net.gate_count() > best_gates) {
        best_gates = res.net.gate_count();
        best.name = kern.name;
        best.graph = kern.graph;
        best.net = std::move(res.net);
      }
    }
    return best;
  }();
  return k;
}

// 64 stimulus vectors through the netlist: scalar (64 topological passes,
// arg 0) vs word-parallel (one packed pass, arg 1).
void BM_PackedSim(benchmark::State& state) {
  const auto& k = largest_kernel();
  const bool packed = state.range(0) != 0;
  Rng rng(11);
  std::vector<std::vector<BitVector>> stimuli(netlist::PackedSimulator::kLanes);
  for (auto& lane : stimuli) {
    for (const auto& bus : k.net.inputs()) {
      lane.push_back(rng.bits(bus.signal.width()));
    }
  }
  netlist::Simulator scalar(k.net);
  netlist::PackedSimulator vec(k.net);
  for (auto _ : state) {
    if (packed) {
      benchmark::DoNotOptimize(vec.run_batch(stimuli));
    } else {
      for (const auto& lane : stimuli) {
        benchmark::DoNotOptimize(scalar.run(lane));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          netlist::PackedSimulator::kLanes);
  state.SetLabel(k.name + (packed ? "/packed" : "/scalar"));
}
BENCHMARK(BM_PackedSim)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// Full Monte-Carlo equivalence check, 256 trials: the scalar oracle
// (arg 0) vs the lane-batched production path (arg 1).
void BM_VerifyNetlist(benchmark::State& state) {
  const auto& k = largest_kernel();
  const bool packed = state.range(0) != 0;
  for (auto _ : state) {
    Rng rng(42);  // per-iteration reseed: identical stimulus sequence
    const bool ok =
        packed ? synth::verify_netlist(k.net, k.graph, 256, rng)
               : synth::verify_netlist_scalar(k.net, k.graph, 256, rng);
    if (!ok) state.SkipWithError("verification mismatch");
  }
  state.SetLabel(k.name + (packed ? "/packed" : "/scalar"));
}
BENCHMARK(BM_VerifyNetlist)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The timing-update kernel of the optimizer's sizing loop: apply a
// pseudo-random drive change, then re-time — full Sta::analyze (arg 0) vs
// IncrementalSta forward-cone update (arg 1).
void BM_TimingOptIncremental(benchmark::State& state) {
  const auto& k = largest_kernel();
  netlist::Netlist net = k.net;  // mutated copy
  const auto& lib = netlist::CellLibrary::tsmc025();
  const bool incremental = state.range(0) != 0;
  Rng rng(7);
  std::vector<std::pair<int, int>> changes;  // (gate, new drive)
  for (int i = 0; i < 256; ++i) {
    changes.emplace_back(
        static_cast<int>(rng.uniform(0, net.gate_count() - 1)),
        static_cast<int>(rng.uniform(0, netlist::kDriveLevels - 1)));
  }
  netlist::Sta sta(lib);
  netlist::IncrementalSta ista(net, lib);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [gi, drive] = changes[i++ % changes.size()];
    net.mutable_gates()[static_cast<std::size_t>(gi)].drive = drive;
    if (incremental) {
      ista.update_drive_change(netlist::GateId{gi});
      benchmark::DoNotOptimize(ista.longest_path_ns());
    } else {
      benchmark::DoNotOptimize(sta.analyze(net).longest_path_ns);
    }
  }
  state.SetLabel(k.name + (incremental ? "/incremental" : "/full"));
}
BENCHMARK(BM_TimingOptIncremental)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_HuffmanRebalancing(benchmark::State& state) {
  std::vector<analysis::Addend> addends;
  Rng rng(9);
  for (int i = 0; i < state.range(0); ++i) {
    addends.push_back(
        {{static_cast<int>(rng.uniform(2, 24)), Sign::Unsigned}, 1});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::huffman_rebalanced_bound(addends));
  }
}
BENCHMARK(BM_HuffmanRebalancing)->Range(8, 4096);

}  // namespace

// Custom main instead of BENCHMARK_MAIN: the shared dpmerge flags
// (--trace, --stats-json, ...) are stripped first, everything else goes to
// google-benchmark's own parser. With --trace, the spans recorded inside
// the benched code paths are exported as a Chrome trace.
int main(int argc, char** argv) {
  const dpmerge::bench::BenchArgs args =
      dpmerge::bench::parse_bench_args(argc, argv, /*allow_unknown=*/true);
  dpmerge::bench::ObsSession obs_session("perf_analysis", args);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
