// Reproduces Figure 3 of the paper: low information content implies
// increased mergeability. In G5 the edge e7 looks like a merge boundary
// (sign-extension of an 8-bit truncated sum), but the inputs are tiny, so
// N3 really carries a sign-extended 5-bit sum; the Lemma 5.6/5.7
// transformation produces G5' with shrunken widths and the whole graph
// merges into one cluster.

#include <cstdio>

#include "bench_util.h"

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/cluster/clusterer.h"
#include "dpmerge/designs/figures.h"
#include "dpmerge/transform/width_prune.h"

int main(int argc, char** argv) {
  using namespace dpmerge;

  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::ObsSession obs_session("fig3", args);

  dfg::Graph g = designs::figure3_g5();
  const auto f = designs::figure_nodes(g);

  const auto ia = analysis::compute_info_content(g);
  std::printf("Figure 3(a): graph G5\n");
  std::printf("information content: N1=%s N2=%s N3=%s\n",
              ia.out(f.n1).to_string().c_str(),
              ia.out(f.n2).to_string().c_str(),
              ia.out(f.n3).to_string().c_str());
  const auto e7 = g.node(f.n4).in[0];
  std::printf("operand entering N4 via e7: %s (a sign-extension of a 5-bit sum)\n",
              ia.operand(e7).to_string().c_str());

  const auto stats = transform::prune_info_content(g);
  std::printf("\nLemma 5.6/5.7 transformation: %s\n", stats.to_string().c_str());
  std::printf("Figure 3(b): graph G5' widths: N1=%d N2=%d N3=%d N4=%d\n",
              g.node(f.n1).width, g.node(f.n2).width, g.node(f.n3).width,
              g.node(f.n4).width);

  const auto neu = cluster::cluster_maximal(g);
  const auto old = cluster::cluster_leakage(designs::figure3_g5());
  std::printf("\nClustering G5' (new algorithm): %s\n",
              neu.partition.summary(g).c_str());
  const auto g_old = designs::figure3_g5();
  std::printf("Clustering G5 (width-only old algorithm): %s\n",
              old.summary(g_old).c_str());
  std::printf(
      "\nExpected (paper): N1/N2 shrink to 4, N3 to 5; new merging gets one\n"
      "cluster while the width-only analysis still breaks at e7.\n");
  return 0;
}
