// Reproduces Figure 4 of the paper: refining information-content upper
// bounds by safe rebalancing. A skewed chain of adders over four 4-bit
// unsigned inputs gets the bound <7, unsigned>; the Huffman_Rebalancing
// ordering (Section 5.2, Theorem 5.10) proves <6, unsigned>.

#include <cstdio>

#include "bench_util.h"

#include "dpmerge/analysis/huffman.h"
#include "dpmerge/analysis/info_content.h"
#include "dpmerge/designs/figures.h"

int main(int argc, char** argv) {
  using namespace dpmerge;

  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::ObsSession obs_session("fig4", args);
  using analysis::Addend;
  using analysis::InfoContent;

  const dfg::Graph g = designs::figure4_skewed_sum();
  const auto ia = analysis::compute_info_content(g);

  // The last adder in the chain carries the skewed bound.
  InfoContent skewed{};
  for (const auto& n : g.nodes()) {
    if (n.kind == dfg::OpKind::Add) skewed = ia.out(n.id);
  }
  std::printf("Figure 4(a): skewed chain Z = ((A+B)+C)+D, 4-bit unsigned inputs\n");
  std::printf("information content computed along the skewed tree: %s\n",
              skewed.to_string().c_str());

  const std::vector<Addend> addends(4, Addend{{4, Sign::Unsigned}, 1});
  const auto balanced = analysis::huffman_rebalanced_bound(addends);
  std::printf("\nFigure 4(b): Huffman_Rebalancing bound: %s\n",
              balanced.to_string().c_str());
  std::printf("sequential (skewed) bound for comparison: %s\n",
              analysis::sequential_bound(addends).to_string().c_str());
  std::printf("exhaustive best over all orderings (Theorem 5.10 check): %s\n",
              analysis::exhaustive_best_bound(addends).to_string().c_str());
  std::printf("\nExpected (paper): skewed <7, 0>, rebalanced <6, 0>.\n");

  // A second, larger instance showing the effect scales.
  const std::vector<Addend> big{{{10, Sign::Unsigned}, 1},
                                {{2, Sign::Unsigned}, 1},
                                {{2, Sign::Unsigned}, 1},
                                {{2, Sign::Unsigned}, 1},
                                {{2, Sign::Unsigned}, 1}};
  std::printf(
      "\nLarger instance {10,2,2,2,2}: sequential %s, huffman %s\n",
      analysis::sequential_bound(big).to_string().c_str(),
      analysis::huffman_rebalanced_bound(big).to_string().c_str());
  return 0;
}
