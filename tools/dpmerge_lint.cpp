// dpmerge-lint — static checker CLI over the dpmerge::check engines.
//
// Lints datapath sources (the frontend expression language) and serialized
// DFGs (.dfg, see dpmerge/dfg/io.h): parse failures become structured
// "frontend.parse" diagnostics, well-formed inputs run through the IR
// verifier and the analysis-soundness lint, and --flow additionally runs
// the full synthesis flows and verifies every emitted netlist.
//
// Usage: dpmerge-lint [options] <file>...
//   --policy=errors|paranoid  depth of the per-file checks (default paranoid:
//                             verifier + abstract-interpretation lint)
//   --flow                    run no-merge/old-merge/new-merge on each input
//                             and verify the emitted netlists
//   --explain-rejects         when the new-merge flow merges zero operators,
//                             print the DecisionLog reject reasons (which
//                             break rule fired at each operator, with the
//                             info-content/required-precision evidence)
//   --json                    machine-readable report per file
//   --threads=<n>             parallel width for the analysis/cluster stages
//                             (1 = serial default, 0 = one thread per core);
//                             results are bit-identical at any setting
//   -q                        suppress per-file OK lines
//
// Exit status: 0 all clean, 1 findings (errors or warnings), 2 usage/IO.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dpmerge/check/absint.h"
#include "dpmerge/check/check.h"
#include "dpmerge/dfg/io.h"
#include "dpmerge/frontend/parser.h"
#include "dpmerge/obs/json.h"
#include "dpmerge/support/thread_pool.h"
#include "dpmerge/synth/flow.h"

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpmerge;

  check::CheckPolicy policy = check::CheckPolicy::Paranoid;
  bool run_flows = false, explain_rejects = false, json = false, quiet = false;
  int threads = 1;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--policy=", 0) == 0) {
      const auto p = check::parse_policy(arg.substr(9));
      if (!p || *p == check::CheckPolicy::Off) {
        std::fprintf(stderr, "dpmerge-lint: bad --policy '%s'\n",
                     arg.c_str() + 9);
        return 2;
      }
      policy = *p;
    } else if (arg == "--flow") {
      run_flows = true;
    } else if (arg == "--explain-rejects") {
      explain_rejects = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      char* end = nullptr;
      threads = static_cast<int>(std::strtol(arg.c_str() + 10, &end, 10));
      if (end == arg.c_str() + 10 || *end != '\0' || threads < 0) {
        std::fprintf(stderr, "dpmerge-lint: bad --threads '%s'\n",
                     arg.c_str() + 10);
        return 2;
      }
    } else if (arg == "-q") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: dpmerge-lint [--policy=errors|paranoid] [--flow] "
          "[--explain-rejects] [--json] [--threads=<n>] [-q] <file>...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "dpmerge-lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "dpmerge-lint: no input files (try --help)\n");
    return 2;
  }
  support::ThreadPool::set_shared_threads(threads);
  synth::SynthOptions sopt;
  sopt.threads = threads;

  int findings = 0;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "dpmerge-lint: cannot read '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string source = ss.str();

    check::CheckReport rep;
    dfg::Graph graph;
    bool have_graph = false;
    if (ends_with(path, ".dfg")) {
      try {
        graph = dfg::parse_graph(source);
        have_graph = true;
      } catch (const std::invalid_argument& e) {
        rep.add(check::Severity::Error, "dfg.io.parse", e.what());
      }
    } else {
      auto res = frontend::compile_or_diagnose(source, rep);
      if (res) {
        graph = std::move(res->graph);
        have_graph = true;
      }
    }

    if (have_graph) {
      rep.merge(check::verify(graph));
      if (rep.ok() && policy == check::CheckPolicy::Paranoid) {
        const auto ia = analysis::compute_info_content(graph, {}, threads);
        const auto rp = analysis::compute_required_precision(graph, threads);
        rep.merge(check::lint_info_content(graph, ia));
        rep.merge(check::lint_required_precision(graph, rp));
      }
      if (rep.ok() && explain_rejects) {
        try {
          const auto res = synth::run_flow(graph, synth::Flow::NewMerge, sopt);
          if (res.report.merge_decisions == 0) {
            if (!dpmerge::obs::compiled_in()) {
              std::printf(
                  "%s: new-merge merged nothing (provenance compiled out; "
                  "rebuild with DPMERGE_OBS=ON for reject reasons)\n",
                  path.c_str());
            } else {
              std::printf("%s: new-merge merged nothing; reject reasons:\n",
                          path.c_str());
              for (const auto id : res.decisions.final_decisions()) {
                const auto& d = res.decisions.decision(id);
                if (d.verdict != obs::prov::Verdict::Reject) continue;
                std::printf("  %s\n", d.to_text().c_str());
                for (const auto rid : res.decisions.rejects_for_node(d.node)) {
                  if (rid == id) continue;
                  std::printf("    %s\n",
                              res.decisions.decision(rid).to_text().c_str());
                }
              }
            }
          }
        } catch (const check::CheckFailure& e) {
          rep.merge(e.report());
        }
      }
      if (rep.ok() && run_flows) {
        check::PolicyScope scope(policy);
        for (const auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                                synth::Flow::NewMerge}) {
          try {
            const auto res = synth::run_flow(graph, flow, sopt);
            // Warnings off: synthesized netlists legitimately contain unread
            // helper gates (unused carry tails, comparator internals).
            check::NetVerifyOptions nopts;
            nopts.warnings = false;
            rep.merge(check::verify(res.net, nullptr, nopts));
          } catch (const check::CheckFailure& e) {
            rep.merge(e.report());
          }
        }
      }
    }

    if (json) {
      std::string out = "{\"file\":";
      obs::json_append_quoted(out, path);
      out += ",\"report\":";
      rep.to_json(out);
      out += "}";
      std::printf("%s\n", out.c_str());
    } else if (!rep.clean()) {
      std::printf("%s:\n%s", path.c_str(), rep.to_text().c_str());
    } else if (!quiet) {
      std::printf("%s: OK\n", path.c_str());
    }
    if (!rep.clean()) ++findings;
  }
  return findings ? 1 : 0;
}
