// dpmerge-lint — static checker CLI over the dpmerge::check engines.
//
// Lints datapath sources (the frontend expression language) and serialized
// DFGs (.dfg, see dpmerge/dfg/io.h): parse failures become structured
// "frontend.parse" diagnostics, well-formed inputs run through the IR
// verifier and the analysis-soundness lint, and --flow additionally runs
// the full synthesis flows and verifies every emitted netlist.
//
// Usage: dpmerge-lint [options] <file>...
//   --policy=errors|paranoid  depth of the per-file checks (default paranoid:
//                             verifier + abstract-interpretation lint)
//   --absint                  use the bidirectional fixpoint engine
//                             (check::compute_absint — known bits, intervals,
//                             congruences, demanded bits) for the soundness
//                             lint instead of the single-pass lint, and emit
//                             its per-node fact report (text, or a "facts"
//                             object with --json)
//   --deadlogic               synthesise each input with the new-merge flow
//                             and run the gate-level dead-logic lint on the
//                             emitted netlist (net.absint.* warnings measure
//                             synthesis slack; any finding exits 1)
//   --flow                    run no-merge/old-merge/new-merge on each input
//                             and verify the emitted netlists
//   --explain-rejects         when the new-merge flow merges zero operators,
//                             print the DecisionLog reject reasons (which
//                             break rule fired at each operator, with the
//                             info-content/required-precision evidence)
//   --json                    machine-readable report per file
//   --threads=<n>             parallel width for the analysis/cluster stages
//                             (1 = serial default, 0 = one thread per core);
//                             results are bit-identical at any setting
//   --concurrency             run the parallel-sweep race lint instead of the
//                             per-file checks: audits every parallel_for
//                             job's per-task read/write footprints for
//                             disjointness over the built-in scaling suite
//                             (plus any input files), then re-runs each flow
//                             under the seeded stress scheduler and asserts
//                             byte-identical DecisionLogs and netlists
//                             across the interleavings (DESIGN.md §12)
//   --interleavings=<n>       stress-scheduler seeds to try (default 100)
//   --scale-nodes=<n>         target size of the built-in scaling suite used
//                             by --concurrency (default 20000)
//   -q                        suppress per-file OK lines
//
// Plus the shared observability flags (obs/session.h): --stats-json,
// --trace, --profile, --metrics, --events, --seed, --stats-deterministic —
// the same artifact dialect the benches and dpmerge-explain speak.
//
// Exit status: 0 all clean, 1 findings (errors or warnings), 2 usage/IO.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "dpmerge/check/absint.h"
#include "dpmerge/check/absint_engine.h"
#include "dpmerge/check/absint_netlist.h"
#include "dpmerge/check/check.h"
#include "dpmerge/designs/scale.h"
#include "dpmerge/dfg/io.h"
#include "dpmerge/frontend/parser.h"
#include "dpmerge/netlist/verilog.h"
#include "dpmerge/obs/json.h"
#include "dpmerge/obs/session.h"
#include "dpmerge/support/access_audit.h"
#include "dpmerge/support/thread_pool.h"
#include "dpmerge/synth/flow.h"

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Parses/compiles one lint input into a DFG (shared by the per-file checks
/// and the --concurrency design list). Returns false with a diagnostic on
/// parse failure.
bool load_graph(const std::string& path, const std::string& source,
                dpmerge::dfg::Graph& graph, dpmerge::check::CheckReport& rep) {
  namespace check = dpmerge::check;
  if (ends_with(path, ".dfg")) {
    try {
      graph = dpmerge::dfg::parse_graph(source);
      return true;
    } catch (const std::invalid_argument& e) {
      rep.add(check::Severity::Error, "dfg.io.parse", e.what());
      return false;
    }
  }
  auto res = dpmerge::frontend::compile_or_diagnose(source, rep);
  if (!res) return false;
  graph = std::move(res->graph);
  return true;
}

/// The --concurrency mode: a dynamic race lint over the library's parallel
/// sweeps. Two phases per design:
///
///  1. Footprint audit — `support::audit::AccessAudit` records every task's
///     read/write footprint over (domain, id) resources while the full
///     new-merge flow runs; after each parallel_for job the auditor checks
///     pairwise write/write and read/write disjointness across tasks. A
///     violation names the owning sweep and the contested resource.
///
///  2. Stress interleavings — re-runs the flow under the pool's seeded
///     stress scheduler (randomised dispatch order + per-task jitter) for
///     `interleavings` distinct seeds and asserts the DecisionLog JSON and
///     emitted Verilog are byte-identical to the serial (threads=1,
///     unstressed) reference every time.
///
/// Together these turn the determinism contract ("each fn(i) writes only
/// its own slots; results are schedule-independent") into a checked
/// property over the real workloads.
int run_concurrency_lint(const std::vector<std::string>& files, int threads,
                         int interleavings, int scale_nodes, bool quiet) {
  using namespace dpmerge;
  namespace audit = support::audit;

  std::vector<designs::ScaleDesign> suite = designs::scale_suite(scale_nodes);
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "dpmerge-lint: cannot read '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    check::CheckReport rep;
    dfg::Graph g;
    if (!load_graph(path, ss.str(), g, rep)) {
      std::printf("%s:\n%s", path.c_str(), rep.to_text().c_str());
      return 1;
    }
    suite.push_back({path, std::move(g)});
  }

  support::ThreadPool::set_shared_threads(threads);
  synth::SynthOptions par;
  par.threads = threads;
  synth::SynthOptions serial;
  serial.threads = 1;

  int findings = 0;
  audit::AccessAudit& aud = audit::AccessAudit::instance();

  if (!quiet) {
    std::printf(
        "concurrency: auditing parallel-sweep write footprints over %d "
        "designs (threads=%d)\n",
        static_cast<int>(suite.size()), threads);
  }
  for (const auto& d : suite) {
    aud.clear();
    aud.set_enabled(true);
    try {
      (void)synth::run_flow(d.graph, synth::Flow::NewMerge, par);
    } catch (const std::exception& e) {
      aud.set_enabled(false);
      std::printf("  %s: flow failed under audit: %s\n", d.name.c_str(),
                  e.what());
      ++findings;
      continue;
    }
    aud.set_enabled(false);
    const auto violations = aud.take_violations();
    if (!violations.empty()) {
      ++findings;
      std::printf("  %s: %d overlap(s)\n", d.name.c_str(),
                  static_cast<int>(violations.size()));
      for (const auto& v : violations) {
        std::printf("    %s\n", v.to_text().c_str());
      }
    } else if (!quiet) {
      std::printf("  %s: OK (%lld jobs, %lld accesses, disjoint)\n",
                  d.name.c_str(),
                  static_cast<long long>(aud.jobs_audited()),
                  static_cast<long long>(aud.accesses_recorded()));
    }
  }

  if (!quiet) {
    std::printf("concurrency: stress scheduler, %d interleavings per design\n",
                interleavings);
  }
  for (const auto& d : suite) {
    synth::FlowResult ref;
    try {
      ref = synth::run_flow(d.graph, synth::Flow::NewMerge, serial);
    } catch (const std::exception& e) {
      std::printf("  %s: serial reference flow failed: %s\n", d.name.c_str(),
                  e.what());
      ++findings;
      continue;
    }
    std::string ref_dec;
    ref.decisions.to_json(ref_dec);
    const std::string ref_v = netlist::to_verilog(ref.net, "lint");

    int mismatches = 0;
    for (int s = 0; s < interleavings; ++s) {
      support::ThreadPool::StressOptions stress;
      stress.enabled = true;
      stress.seed = static_cast<std::uint64_t>(s);
      support::ThreadPool::shared().set_stress(stress);
      synth::FlowResult got;
      try {
        got = synth::run_flow(d.graph, synth::Flow::NewMerge, par);
      } catch (const std::exception& e) {
        std::printf("  %s: seed %d: flow failed: %s\n", d.name.c_str(), s,
                    e.what());
        ++mismatches;
        continue;
      }
      std::string dec;
      got.decisions.to_json(dec);
      if (dec != ref_dec) {
        std::printf("  %s: seed %d: DecisionLog differs from serial run\n",
                    d.name.c_str(), s);
        ++mismatches;
      } else if (netlist::to_verilog(got.net, "lint") != ref_v) {
        std::printf("  %s: seed %d: netlist differs from serial run\n",
                    d.name.c_str(), s);
        ++mismatches;
      }
    }
    support::ThreadPool::shared().set_stress({});
    if (mismatches) {
      ++findings;
    } else if (!quiet) {
      std::printf("  %s: OK (byte-identical across %d interleavings)\n",
                  d.name.c_str(), interleavings);
    }
  }

  if (findings) {
    std::printf("concurrency: FAIL (%d finding(s))\n", findings);
  } else if (!quiet) {
    std::printf("concurrency: OK\n");
  }
  return findings ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpmerge;

  check::CheckPolicy policy = check::CheckPolicy::Paranoid;
  bool run_flows = false, explain_rejects = false, json = false, quiet = false;
  bool absint = false, deadlogic = false;
  bool concurrency = false;
  bool threads_given = false;
  int threads = 1;
  int interleavings = 100;
  int scale_nodes = 20000;
  obs::ObsArgs oargs;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (obs::parse_obs_arg(argc, argv, i, &oargs)) continue;
    const std::string arg = argv[i];
    if (arg.rfind("--policy=", 0) == 0) {
      const auto p = check::parse_policy(arg.substr(9));
      if (!p || *p == check::CheckPolicy::Off) {
        std::fprintf(stderr, "dpmerge-lint: bad --policy '%s'\n",
                     arg.c_str() + 9);
        return 2;
      }
      policy = *p;
    } else if (arg == "--flow") {
      run_flows = true;
    } else if (arg == "--absint") {
      absint = true;
    } else if (arg == "--deadlogic") {
      deadlogic = true;
    } else if (arg == "--explain-rejects") {
      explain_rejects = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      char* end = nullptr;
      threads = static_cast<int>(std::strtol(arg.c_str() + 10, &end, 10));
      if (end == arg.c_str() + 10 || *end != '\0' || threads < 0) {
        std::fprintf(stderr, "dpmerge-lint: bad --threads '%s'\n",
                     arg.c_str() + 10);
        return 2;
      }
      threads_given = true;
    } else if (arg == "--concurrency") {
      concurrency = true;
    } else if (arg.rfind("--interleavings=", 0) == 0) {
      char* end = nullptr;
      interleavings =
          static_cast<int>(std::strtol(arg.c_str() + 16, &end, 10));
      if (end == arg.c_str() + 16 || *end != '\0' || interleavings < 1) {
        std::fprintf(stderr, "dpmerge-lint: bad --interleavings '%s'\n",
                     arg.c_str() + 16);
        return 2;
      }
    } else if (arg.rfind("--scale-nodes=", 0) == 0) {
      char* end = nullptr;
      scale_nodes = static_cast<int>(std::strtol(arg.c_str() + 14, &end, 10));
      if (end == arg.c_str() + 14 || *end != '\0' || scale_nodes < 1) {
        std::fprintf(stderr, "dpmerge-lint: bad --scale-nodes '%s'\n",
                     arg.c_str() + 14);
        return 2;
      }
    } else if (arg == "-q") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: dpmerge-lint [--policy=errors|paranoid] [--absint] "
          "[--deadlogic] [--flow] "
          "[--explain-rejects] [--json] [--threads=<n>] [--concurrency] "
          "[--interleavings=<n>] [--scale-nodes=<n>] [-q] [obs flags] "
          "<file>...\n%s",
          obs::obs_usage());
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "dpmerge-lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  // Artifact lifecycle (--trace/--profile/--metrics/--events/--stats-json):
  // check-failure dumps stay off — this tool provokes CheckFailures on
  // purpose and reports them as findings, not crashes.
  obs::CrashOptions crash;
  crash.dump_on_check_failure = false;
  obs::ArtifactSession session("dpmerge-lint", oargs, crash);
  if (concurrency) {
    // The race lint exercises real parallelism by default; an explicit
    // --threads (e.g. 1 to audit the instrumented serial path) still wins.
    return run_concurrency_lint(files, threads_given ? threads : 4,
                                interleavings, scale_nodes, quiet);
  }
  if (files.empty()) {
    std::fprintf(stderr, "dpmerge-lint: no input files (try --help)\n");
    return 2;
  }
  support::ThreadPool::set_shared_threads(threads);
  synth::SynthOptions sopt;
  sopt.threads = threads;

  int findings = 0;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "dpmerge-lint: cannot read '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string source = ss.str();

    check::CheckReport rep;
    dfg::Graph graph;
    const bool have_graph = load_graph(path, source, graph, rep);

    std::string facts_json;
    if (have_graph) {
      rep.merge(check::verify(graph));
      if (rep.ok() && absint) {
        // Bidirectional fixpoint: structurally never weaker than the
        // single-pass lint below, plus the demanded-vs-RP cross-check.
        const auto ia = analysis::compute_info_content(graph, {}, threads);
        const auto rp = analysis::compute_required_precision(graph, threads);
        const auto facts = check::compute_absint(graph);
        rep.merge(check::lint_absint(graph, &ia, &rp, &facts));
        if (json) {
          facts_json = check::absint_facts_json(graph, facts);
        } else {
          std::printf("%s: absint facts (%d round(s)):\n%s", path.c_str(),
                      facts.rounds,
                      check::absint_facts_text(graph, facts).c_str());
        }
      } else if (rep.ok() && policy == check::CheckPolicy::Paranoid) {
        const auto ia = analysis::compute_info_content(graph, {}, threads);
        const auto rp = analysis::compute_required_precision(graph, threads);
        rep.merge(check::lint_info_content(graph, ia));
        rep.merge(check::lint_required_precision(graph, rp));
      }
      if (rep.ok() && deadlogic) {
        try {
          auto res = synth::run_flow(graph, synth::Flow::NewMerge, sopt);
          res.report.design = path;
          session.reports.push_back(res.report);
          check::NetlistAbsintStats st;
          rep.merge(check::lint_netlist_deadlogic(res.net, &st));
          if (!json && !quiet) {
            std::printf(
                "%s: deadlogic: %d gate(s), %d constant, %d unobservable\n",
                path.c_str(), st.gates, st.constant_cells,
                st.unobservable_cells);
          }
        } catch (const check::CheckFailure& e) {
          rep.merge(e.report());
        }
      }
      if (rep.ok() && explain_rejects) {
        try {
          const auto res = synth::run_flow(graph, synth::Flow::NewMerge, sopt);
          if (res.report.merge_decisions == 0) {
            if (!dpmerge::obs::compiled_in()) {
              std::printf(
                  "%s: new-merge merged nothing (provenance compiled out; "
                  "rebuild with DPMERGE_OBS=ON for reject reasons)\n",
                  path.c_str());
            } else {
              std::printf("%s: new-merge merged nothing; reject reasons:\n",
                          path.c_str());
              for (const auto id : res.decisions.final_decisions()) {
                const auto& d = res.decisions.decision(id);
                if (d.verdict != obs::prov::Verdict::Reject) continue;
                std::printf("  %s\n", d.to_text().c_str());
                for (const auto rid : res.decisions.rejects_for_node(d.node)) {
                  if (rid == id) continue;
                  std::printf("    %s\n",
                              res.decisions.decision(rid).to_text().c_str());
                }
              }
            }
          }
        } catch (const check::CheckFailure& e) {
          rep.merge(e.report());
        }
      }
      if (rep.ok() && run_flows) {
        check::PolicyScope scope(policy);
        for (const auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                                synth::Flow::NewMerge}) {
          try {
            auto res = synth::run_flow(graph, flow, sopt);
            res.report.design = path;
            session.reports.push_back(res.report);
            // Warnings off: synthesized netlists legitimately contain unread
            // helper gates (unused carry tails, comparator internals).
            check::NetVerifyOptions nopts;
            nopts.warnings = false;
            rep.merge(check::verify(res.net, nullptr, nopts));
          } catch (const check::CheckFailure& e) {
            rep.merge(e.report());
          }
        }
      }
    }

    if (json) {
      std::string out = "{\"file\":";
      obs::json_append_quoted(out, path);
      if (!facts_json.empty()) {
        out += ",\"absint\":";
        out += facts_json;
      }
      out += ",\"report\":";
      rep.to_json(out);
      out += "}";
      std::printf("%s\n", out.c_str());
    } else if (!rep.clean()) {
      std::printf("%s:\n%s", path.c_str(), rep.to_text().c_str());
    } else if (!quiet) {
      std::printf("%s: OK\n", path.c_str());
    }
    if (!rep.clean()) ++findings;
  }
  return findings ? 1 : 0;
}
