#!/usr/bin/env python3
"""Compare BENCH_<name>.json trajectory artifacts against checked-in baselines.

Usage: check_bench_regression.py [--threshold PCT] [--metrics M,M] \
           CURRENT BASELINE [CURRENT BASELINE ...]

Each pair is compared cell-by-cell on the (design, flow) key. A cell fails
when one of the gated metrics (default: delay, area) exceeds the baseline
by more than the threshold (default 10%). The scale bench is gated on
--metrics cpa_count instead: wall-clock and RSS vary with the runner, but
the cluster structure of a deterministic flow must not drift. wall_ms and
rss_mb are therefore *informational*: listing them in --metrics reports
excesses as notes without failing the run, unless --gate-informational
promotes them to real failures (for a dedicated-hardware runner where
timing and footprint are stable enough to gate on). Cells
present in the baseline but missing from the current run fail too (a bench
that silently drops a design must not pass); *new* cells in the current run
are allowed (the baseline is refreshed when designs are added).

Exit status: 0 all within threshold, 1 regressions found, 2 usage/IO.
"""

import argparse
import json
import sys


def load_cells(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load '{path}': {e}", file=sys.stderr)
        sys.exit(2)
    cells = {}
    for cell in doc.get("cells", []):
        key = (cell.get("design"), cell.get("flow"))
        if key in cells:
            print(f"error: '{path}' has duplicate cell {key}", file=sys.stderr)
            sys.exit(2)
        cells[key] = cell
    return doc.get("bench", "?"), cells, doc.get("sanitizer")


# Runner-dependent metrics: reported, never gated by default. Everything a
# deterministic flow computes (delay, area, cpa_count) is gated as before.
INFORMATIONAL = {"wall_ms", "rss_mb"}


def compare(current_path, baseline_path, threshold, metrics,
            gate_informational=False):
    bench, current, sanitizer = load_cells(current_path)
    _, baseline, _ = load_cells(baseline_path)
    if sanitizer:
        # Sanitizer-built artifacts (asan/tsan CI jobs) carry instrumentation
        # overhead; comparing them against clean-build baselines would only
        # produce noise. The sanitized run's value is the sanitizer's own
        # verdict, not the metrics.
        print(f"SKIP: {bench}: '{current_path}' built with "
              f"-fsanitize={sanitizer}; not compared against baseline")
        return bench, [], [], [], 0
    failures = []
    notes = []
    for key, base in sorted(baseline.items()):
        cur = current.get(key)
        if cur is None:
            failures.append(f"{bench} {key}: missing from current run")
            continue
        for metric in metrics:
            b, c = base.get(metric, 0.0), cur.get(metric, 0.0)
            limit = b * (1.0 + threshold / 100.0)
            if b > 0 and c > limit:
                msg = (
                    f"{bench} design={key[0]} flow={key[1]}: {metric} "
                    f"{c:.4f} exceeds baseline {b:.4f} by "
                    f"{100.0 * (c - b) / b:.1f}% (> {threshold:.0f}%)"
                )
                if metric in INFORMATIONAL and not gate_informational:
                    notes.append(msg)
                else:
                    failures.append(msg)
    extra = sorted(set(current) - set(baseline))
    return bench, failures, notes, extra, len(baseline)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="allowed regression in percent (default 10)")
    ap.add_argument("--metrics", default="delay,area",
                    help="comma-separated cell metrics to gate "
                         "(default: delay,area)")
    ap.add_argument("--gate-informational", action="store_true",
                    help="fail (instead of note) on wall_ms/rss_mb excesses")
    ap.add_argument("files", nargs="+", metavar="CURRENT BASELINE",
                    help="alternating current/baseline json paths")
    args = ap.parse_args()
    if len(args.files) % 2 != 0:
        ap.error("expected CURRENT BASELINE pairs")
    metrics = [m for m in args.metrics.split(",") if m]
    if not metrics:
        ap.error("--metrics needs at least one metric name")

    any_failures = False
    for i in range(0, len(args.files), 2):
        bench, failures, notes, extra, n = compare(
            args.files[i], args.files[i + 1], args.threshold, metrics,
            args.gate_informational)
        for f in failures:
            print(f"FAIL: {f}")
        for m in notes:
            print(f"note: {m} [informational]")
        if failures:
            any_failures = True
        else:
            print(f"OK: {bench}: {n} cell(s) within {args.threshold:.0f}% "
                  f"of baseline")
        for key in extra:
            print(f"note: {bench} {key}: new cell, not in baseline "
                  f"(refresh bench/baselines/ to track it)")
    return 1 if any_failures else 0


if __name__ == "__main__":
    sys.exit(main())
