#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py (the bench regression gate).

Run directly (python3 tools/test_check_bench_regression.py) or through the
`bench_regression_gate_test` ctest entry. Covers the three behaviours CI
leans on: metric selection (--metrics / default delay,area), the
sanitizer-tagged SKIP path, and drift/missing-cell detection with the
threshold arithmetic.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench_regression as gate


def artifact(cells, bench="t", sanitizer=None):
    doc = {"bench": bench, "schema": "dpmerge-bench-v1", "cells": cells}
    if sanitizer:
        doc["sanitizer"] = sanitizer
    f = tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False, encoding="utf-8")
    json.dump(doc, f)
    f.close()
    return f.name


def cell(design, flow, **metrics):
    c = {"design": design, "flow": flow}
    c.update(metrics)
    return c


class CompareTest(unittest.TestCase):
    def setUp(self):
        self.paths = []

    def tearDown(self):
        for p in self.paths:
            os.unlink(p)

    def art(self, *args, **kwargs):
        p = artifact(*args, **kwargs)
        self.paths.append(p)
        return p

    def compare(self, current, baseline, threshold=10.0,
                metrics=("delay", "area"), gate_informational=False):
        return gate.compare(current, baseline, threshold, list(metrics),
                            gate_informational)

    def test_identical_artifacts_pass(self):
        a = self.art([cell("D1", "new", delay=2.0, area=30.0)])
        bench, failures, notes, extra, n = self.compare(a, a)
        self.assertEqual(bench, "t")
        self.assertEqual(failures, [])
        self.assertEqual(extra, [])
        self.assertEqual(n, 1)

    def test_regression_beyond_threshold_fails(self):
        base = self.art([cell("D1", "new", delay=2.0, area=30.0)])
        cur = self.art([cell("D1", "new", delay=2.3, area=30.0)])  # +15%
        _, failures, _, _, _ = self.compare(cur, base)
        self.assertEqual(len(failures), 1)
        self.assertIn("delay", failures[0])
        self.assertIn("15.0%", failures[0])

    def test_regression_within_threshold_passes(self):
        base = self.art([cell("D1", "new", delay=2.0, area=30.0)])
        cur = self.art([cell("D1", "new", delay=2.18, area=32.9)])  # +9.x%
        _, failures, _, _, _ = self.compare(cur, base)
        self.assertEqual(failures, [])

    def test_improvement_passes(self):
        base = self.art([cell("D1", "new", delay=2.0, area=30.0)])
        cur = self.art([cell("D1", "new", delay=1.0, area=10.0)])
        _, failures, _, _, _ = self.compare(cur, base)
        self.assertEqual(failures, [])

    def test_zero_threshold_gates_any_drift(self):
        base = self.art([cell("s", "new", cpa_count=100)])
        cur = self.art([cell("s", "new", cpa_count=101)])
        _, failures, _, _, _ = self.compare(cur, base, threshold=0.0,
                                         metrics=("cpa_count",))
        self.assertEqual(len(failures), 1)
        self.assertIn("cpa_count", failures[0])

    def test_metric_selection_ignores_ungated_metrics(self):
        # delay doubled, but only cpa_count is gated.
        base = self.art([cell("s", "new", delay=2.0, cpa_count=100)])
        cur = self.art([cell("s", "new", delay=4.0, cpa_count=100)])
        _, failures, _, _, _ = self.compare(cur, base, metrics=("cpa_count",))
        self.assertEqual(failures, [])

    def test_wall_and_rss_never_gated_by_default(self):
        base = self.art([cell("D1", "new", delay=2.0, area=30.0,
                              wall_ms=10.0, rss_mb=50.0)])
        cur = self.art([cell("D1", "new", delay=2.0, area=30.0,
                             wall_ms=900.0, rss_mb=900.0)])
        _, failures, _, _, _ = self.compare(cur, base)
        self.assertEqual(failures, [])

    def test_informational_metric_noted_not_failed(self):
        # wall_ms/rss_mb listed in --metrics report excesses as notes: the
        # run stays green on a noisy shared runner.
        base = self.art([cell("D1", "new", delay=2.0, wall_ms=10.0,
                              rss_mb=50.0)])
        cur = self.art([cell("D1", "new", delay=2.0, wall_ms=900.0,
                             rss_mb=900.0)])
        _, failures, notes, _, _ = self.compare(
            cur, base, metrics=("delay", "wall_ms", "rss_mb"))
        self.assertEqual(failures, [])
        self.assertEqual(len(notes), 2)
        self.assertIn("wall_ms", notes[0])
        self.assertIn("rss_mb", notes[1])

    def test_gate_informational_promotes_to_failures(self):
        base = self.art([cell("D1", "new", rss_mb=50.0)])
        cur = self.art([cell("D1", "new", rss_mb=900.0)])
        _, failures, notes, _, _ = self.compare(
            cur, base, metrics=("rss_mb",), gate_informational=True)
        self.assertEqual(notes, [])
        self.assertEqual(len(failures), 1)
        self.assertIn("rss_mb", failures[0])

    def test_sanitizer_tagged_current_is_skipped(self):
        base = self.art([cell("D1", "new", delay=2.0)])
        cur = self.art([cell("D1", "new", delay=99.0)], sanitizer="thread")
        _, failures, _, extra, n = self.compare(cur, base)
        self.assertEqual(failures, [])
        self.assertEqual(extra, [])
        self.assertEqual(n, 0)  # SKIP: nothing compared

    def test_missing_cell_fails(self):
        base = self.art([cell("D1", "new", delay=2.0),
                         cell("D2", "new", delay=3.0)])
        cur = self.art([cell("D1", "new", delay=2.0)])
        _, failures, _, _, _ = self.compare(cur, base)
        self.assertEqual(len(failures), 1)
        self.assertIn("missing from current run", failures[0])

    def test_new_cell_is_noted_not_failed(self):
        base = self.art([cell("D1", "new", delay=2.0)])
        cur = self.art([cell("D1", "new", delay=2.0),
                        cell("D6", "new", delay=9.0)])
        _, failures, _, extra, _ = self.compare(cur, base)
        self.assertEqual(failures, [])
        self.assertEqual(extra, [("D6", "new")])

    def test_duplicate_cell_key_is_a_usage_error(self):
        dup = self.art([cell("D1", "new", delay=2.0),
                        cell("D1", "new", delay=3.0)])
        with self.assertRaises(SystemExit) as ctx:
            gate.load_cells(dup)
        self.assertEqual(ctx.exception.code, 2)

    def test_unreadable_artifact_is_a_usage_error(self):
        with self.assertRaises(SystemExit) as ctx:
            gate.load_cells("/nonexistent/BENCH_missing.json")
        self.assertEqual(ctx.exception.code, 2)

    def test_real_baselines_self_compare_clean(self):
        # Every checked-in baseline must gate cleanly against itself; also
        # pins the schema the gate expects to what the benches emit.
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        bdir = os.path.join(root, "bench", "baselines")
        names = sorted(os.listdir(bdir))
        self.assertTrue(names, "no baselines found")
        for name in names:
            p = os.path.join(bdir, name)
            bench, failures, notes, extra, n = gate.compare(
                p, p, 10.0, ["delay", "area"])
            self.assertEqual(failures, [], name)
            self.assertEqual(extra, [], name)
            self.assertGreater(n, 0, name)


if __name__ == "__main__":
    unittest.main()
