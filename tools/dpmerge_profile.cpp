// dpmerge-profile — renders and compares the hierarchical profile artifacts
// the flow-running binaries emit with --profile=<path> (schema
// "dpmerge-profile-v1", see obs/profiler.h).
//
// Usage: dpmerge-profile [options] <profile.json>
//        dpmerge-profile --diff <before.json> <after.json>
//   --format=text|json|folded  output rendering (default text):
//                              text    indented self/total call tree with
//                                      count, p50/p99 and RSS deltas
//                              json    normalised re-emit of the artifact
//                              folded  flame-graph folded stacks (the input
//                                      of flamegraph.pl / speedscope)
//   --diff <before> <after>    path-by-path total-time comparison, sorted by
//                              absolute delta (regressions positive)
//   -o <path>                  write output there instead of stdout
//
// Exit status: 0 ok, 2 usage/IO/parse errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dpmerge/obs/profiler.h"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool load_profile(const std::string& path, dpmerge::obs::Profile* p) {
  std::string text, err;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "dpmerge-profile: cannot read '%s'\n", path.c_str());
    return false;
  }
  if (!dpmerge::obs::read_profile_json(text, p, &err)) {
    std::fprintf(stderr, "dpmerge-profile: %s: %s\n", path.c_str(),
                 err.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpmerge;

  enum class Format { Text, Json, Folded };
  Format format = Format::Text;
  std::string out_path, diff_before, diff_after;
  bool diff = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      const std::string f = arg.substr(9);
      if (f == "text") {
        format = Format::Text;
      } else if (f == "json") {
        format = Format::Json;
      } else if (f == "folded") {
        format = Format::Folded;
      } else {
        std::fprintf(stderr, "dpmerge-profile: bad --format '%s'\n", f.c_str());
        return 2;
      }
    } else if (arg == "--diff") {
      if (i + 2 >= argc) {
        std::fprintf(stderr, "dpmerge-profile: --diff needs two paths\n");
        return 2;
      }
      diff = true;
      diff_before = argv[++i];
      diff_after = argv[++i];
    } else if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: dpmerge-profile [--format=text|json|folded] [-o <path>] "
          "<profile.json>\n"
          "       dpmerge-profile --diff <before.json> <after.json> "
          "[-o <path>]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "dpmerge-profile: unknown option '%s'\n",
                   arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  std::string out;
  if (diff) {
    if (!files.empty()) {
      std::fprintf(stderr, "dpmerge-profile: --diff takes no extra inputs\n");
      return 2;
    }
    obs::Profile before, after;
    if (!load_profile(diff_before, &before) ||
        !load_profile(diff_after, &after)) {
      return 2;
    }
    out = obs::profile_diff_text(before, after);
  } else {
    if (files.size() != 1) {
      std::fprintf(stderr,
                   "dpmerge-profile: expected exactly one profile (try "
                   "--help)\n");
      return 2;
    }
    obs::Profile p;
    if (!load_profile(files[0], &p)) return 2;
    std::ostringstream ss;
    switch (format) {
      case Format::Text:
        obs::write_profile_text(ss, p);
        break;
      case Format::Json: {
        // Re-emit of a loaded artifact: this process's live registry has
        // nothing to do with the run being rendered, so leave it out.
        obs::ProfileJsonOptions o;
        o.include_registry = false;
        obs::write_profile_json(ss, p, o);
        break;
      }
      case Format::Folded:
        obs::write_profile_folded(ss, p);
        break;
    }
    out = ss.str();
  }

  if (out_path.empty()) {
    std::fputs(out.c_str(), stdout);
    return 0;
  }
  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "dpmerge-profile: cannot write '%s'\n",
                 out_path.c_str());
    return 2;
  }
  os << out;
  return 0;
}
