// dpmerge-explain — decision provenance and critical-path attribution CLI.
//
// Loads datapath sources (.dp, the frontend expression language) or
// serialized DFGs (.dfg), runs the requested synthesis flows, and explains
// the result: which merge decision the clusterer took at every operator
// (and which rule fired), and how much of the STA worst path each decision
// is responsible for. Per design it emits
//   - a per-decision delay/area ledger (text and/or JSON),
//   - flow-vs-flow decision diffs (new vs old, new vs none) naming the
//     operators on which the flows disagreed and the delay each side bills,
//   - optional Graphviz DOT of the DFG coloured by cluster with the
//     critical path overlaid (--dot).
//
// Usage: dpmerge-explain [options] <file|design>...
//   Inputs may be .dp/.dfg paths or bare names of the paper's built-in
//   testcases (D1..D5).
//   --flow=new|old|none|all  flows to run (default all; diffs need all)
//   --json <path|->          machine-readable ledgers + diffs
//   --dot <prefix>           write <prefix><design>.<flow>.dot per run
//   --verilog <prefix>       write <prefix><design>.<flow>.v per run (works
//                            without obs — CI uses it to prove an obs-off
//                            build emits byte-identical netlists)
//   --threads <n>            parallel width for the clustering stages
//                            (1 = serial default, 0 = one thread per core);
//                            ledgers and netlists are bit-identical at any
//                            setting (DESIGN.md §11)
//   -q                       suppress the human-readable reports
//
// Plus the shared observability flags (obs/session.h): --stats-json,
// --trace, --profile, --metrics, --events, --seed (recorded in the JSON
// artifact — the flows are deterministic; the seed only tags the output),
// --stats-deterministic. Same dialect as the benches and dpmerge-lint.
//
// Exit status: 0 ok, 1 a flow failed or attribution did not reconcile, 2
// usage/IO errors. Explanations need an obs-enabled build (the default);
// with -DDPMERGE_OBS=OFF the provenance chain is compiled out, so the tool
// exits 1 — unless --verilog is the only output requested, which stays
// fully supported (netlists never depend on provenance).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dpmerge/designs/testcases.h"
#include "dpmerge/dfg/io.h"
#include "dpmerge/frontend/parser.h"
#include "dpmerge/netlist/verilog.h"
#include "dpmerge/obs/json.h"
#include "dpmerge/obs/session.h"
#include "dpmerge/obs/stats.h"
#include "dpmerge/support/thread_pool.h"
#include "dpmerge/synth/explain.h"

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string file_stem(const std::string& path) {
  std::size_t b = path.find_last_of('/');
  b = (b == std::string::npos) ? 0 : b + 1;
  std::size_t e = path.find_last_of('.');
  if (e == std::string::npos || e <= b) e = path.size();
  return path.substr(b, e - b);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpmerge;

  bool want[3] = {true, true, true};  // indexed by synth::Flow
  std::string json_path, dot_prefix, verilog_prefix;
  obs::ObsArgs oargs;
  oargs.seed = 0;  // kept from the tool's pre-obs contract
  int threads = 1;
  bool quiet = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (obs::parse_obs_arg(argc, argv, i, &oargs)) continue;
    const std::string arg = argv[i];
    if (arg.rfind("--flow=", 0) == 0) {
      const std::string f = arg.substr(7);
      want[0] = want[1] = want[2] = false;
      if (f == "none") {
        want[0] = true;
      } else if (f == "old") {
        want[1] = true;
      } else if (f == "new") {
        want[2] = true;
      } else if (f == "all") {
        want[0] = want[1] = want[2] = true;
      } else {
        std::fprintf(stderr, "dpmerge-explain: bad --flow '%s'\n", f.c_str());
        return 2;
      }
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--dot" && i + 1 < argc) {
      dot_prefix = argv[++i];
    } else if (arg == "--verilog" && i + 1 < argc) {
      verilog_prefix = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      char* end = nullptr;
      const char* val = argv[++i];
      threads = static_cast<int>(std::strtol(val, &end, 10));
      if (end == val || *end != '\0' || threads < 0) {
        std::fprintf(stderr, "dpmerge-explain: bad --threads '%s'\n", val);
        return 2;
      }
    } else if (arg == "-q") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: dpmerge-explain [--flow=new|old|none|all] [--json <path|->] "
          "[--dot <prefix>] [--verilog <prefix>] "
          "[--threads <n>] [-q] [obs flags] <file>...\n%s",
          obs::obs_usage());
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "dpmerge-explain: unknown option '%s'\n",
                   arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "dpmerge-explain: no input files (try --help)\n");
    return 2;
  }
  const bool provenance = obs::compiled_in();
  if (!provenance) {
    std::fprintf(stderr,
                 "dpmerge-explain: this build has DPMERGE_OBS=OFF; the "
                 "provenance chain is compiled out%s\n",
                 verilog_prefix.empty() ? "" : " (netlist dumps only)");
    if (verilog_prefix.empty()) return 1;
    quiet = true;  // ledgers would be all-untagged noise
  }

  support::ThreadPool::set_shared_threads(threads);
  synth::SynthOptions sopt;
  sopt.threads = threads;

  // Artifact lifecycle; a flow failure here is a reported finding (exit 1),
  // not a crash, so check-failure dumps stay off.
  obs::CrashOptions crash;
  crash.dump_on_check_failure = false;
  obs::ArtifactSession session("dpmerge-explain", oargs, crash);

  const netlist::CellLibrary& lib = netlist::CellLibrary::tsmc025();
  std::string json = "{\"tool\":\"dpmerge-explain\",\"seed\":" +
                     std::to_string(oargs.seed) + ",\"designs\":[";
  bool first_design = true;
  int failures = 0;

  for (const std::string& path : files) {
    std::string design = file_stem(path);
    dfg::Graph graph;
    bool builtin = false;
    for (const auto& tc : designs::all_testcases()) {
      if (path == tc.name) {
        design = tc.name;
        graph = tc.graph;
        builtin = true;
        break;
      }
    }
    if (!builtin) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr,
                     "dpmerge-explain: cannot read '%s' (not a file and not "
                     "a built-in testcase)\n",
                     path.c_str());
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      const std::string source = ss.str();
      try {
        if (ends_with(path, ".dfg")) {
          graph = dfg::parse_graph(source);
        } else {
          auto res = frontend::compile(source);
          if (!res.name.empty()) design = res.name;
          graph = std::move(res.graph);
        }
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "dpmerge-explain: %s: %s\n", path.c_str(),
                     e.what());
        return 2;
      }
    }

    // Run the requested flows.
    std::vector<synth::Explanation> runs(3);
    bool have[3] = {false, false, false};
    for (int f = 0; f < 3; ++f) {
      if (!want[f]) continue;
      try {
        runs[f] =
            synth::explain_flow(graph, static_cast<synth::Flow>(f), lib, sopt);
        runs[f].result.report.design = design;
        runs[f].ledger.design = design;
        session.reports.push_back(runs[f].result.report);
        have[f] = true;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "dpmerge-explain: %s [%s]: %s\n", path.c_str(),
                     std::string(synth::to_string(static_cast<synth::Flow>(f)))
                         .c_str(),
                     e.what());
        ++failures;
      }
    }

    // The acceptance check the tests also enforce: attributed worst-path
    // delay must reconcile with the STA total.
    for (int f = 0; f < 3; ++f) {
      if (!have[f]) continue;
      const auto& e = runs[f];
      if (std::fabs(e.ledger.attributed_ns - e.ledger.total_delay_ns) >
          1e-6 * std::max(1.0, e.ledger.total_delay_ns)) {
        std::fprintf(stderr,
                     "dpmerge-explain: %s [%s]: attribution mismatch "
                     "(%.9f ns attributed vs %.9f ns worst path)\n",
                     design.c_str(), e.ledger.flow.c_str(),
                     e.ledger.attributed_ns, e.ledger.total_delay_ns);
        ++failures;
      }
    }

    std::vector<obs::prov::LedgerDiff> diffs;
    const int kNew = static_cast<int>(synth::Flow::NewMerge);
    if (have[kNew]) {
      for (int f : {static_cast<int>(synth::Flow::OldMerge),
                    static_cast<int>(synth::Flow::NoMerge)}) {
        if (have[f]) diffs.push_back(diff_explanations(runs[kNew], runs[f]));
      }
    }

    if (!quiet) {
      std::printf("== %s ==\n", design.c_str());
      for (int f = 0; f < 3; ++f) {
        if (have[f]) std::printf("%s", runs[f].ledger.to_text().c_str());
      }
      for (const auto& d : diffs) std::printf("%s", d.to_text().c_str());
    }

    if (!dot_prefix.empty()) {
      for (int f = 0; f < 3; ++f) {
        if (!have[f]) continue;
        const std::string dot_path =
            dot_prefix + design + "." + runs[f].ledger.flow + ".dot";
        std::ofstream os(dot_path);
        if (!os) {
          std::fprintf(stderr, "dpmerge-explain: cannot write '%s'\n",
                       dot_path.c_str());
          return 2;
        }
        os << synth::provenance_dot(runs[f]);
        if (!quiet) std::printf("wrote %s\n", dot_path.c_str());
      }
    }

    if (!verilog_prefix.empty()) {
      for (int f = 0; f < 3; ++f) {
        if (!have[f]) continue;
        const std::string flow_name(
            synth::to_string(static_cast<synth::Flow>(f)));
        const std::string v_path =
            verilog_prefix + design + "." + flow_name + ".v";
        std::ofstream os(v_path);
        if (!os) {
          std::fprintf(stderr, "dpmerge-explain: cannot write '%s'\n",
                       v_path.c_str());
          return 2;
        }
        os << netlist::to_verilog(runs[f].result.net, design);
        if (!quiet) std::printf("wrote %s\n", v_path.c_str());
      }
    }

    json += first_design ? "\n" : ",\n";
    first_design = false;
    json += "{\"design\":";
    obs::json_append_quoted(json, design);
    json += ",\"ledgers\":[";
    bool first = true;
    for (int f = 0; f < 3; ++f) {
      if (!have[f]) continue;
      if (!first) json += ",";
      first = false;
      runs[f].ledger.to_json(json);
    }
    json += "],\"diffs\":[";
    for (std::size_t i = 0; i < diffs.size(); ++i) {
      if (i) json += ",";
      diffs[i].to_json(json);
    }
    json += "]}";
  }
  json += "\n]}\n";

  if (!json_path.empty()) {
    if (json_path == "-") {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream os(json_path);
      if (!os) {
        std::fprintf(stderr, "dpmerge-explain: cannot write '%s'\n",
                     json_path.c_str());
        return 2;
      }
      os << json;
    }
  }
  return failures ? 1 : 0;
}
