#pragma once

#include "dpmerge/dfg/graph.h"

namespace dpmerge::designs {

/// The worked examples of the paper's figures, reconstructed from the prose
/// of Sections 3-5. Node naming follows the figures (N1..N4).

/// Figure 1(a), graph G2: N1 = A+B computed at 7 bits (truncating the 9-bit
/// sum), sign-extended to 9 bits on edge e into N3; N2 = C+D at 9 bits;
/// N3 = N1+N2 at 9 bits; N4 = N3+E at 9 bits; output R is 9 bits wide.
/// The truncate-then-extend at N1 forces the two-cluster partition of
/// Figure 1(b): G_I = {N1}, G_II = {N2, N3, N4}.
dfg::Graph figure1_g2();

/// Figure 2(a), graph G4: identical to G2 except the output R is 5 bits
/// wide. Required precision of every signal is 5, so the graph transforms
/// to G4' (all widths 5) and becomes completely mergeable.
dfg::Graph figure2_g4();

/// Figure 3(a), graph G5: small inputs A..D (3 bits) feed N1 = A+B and
/// N2 = C+D at 8 bits, N3 = N1+N2 at 8 bits, and edge e7 sign-extends N3's
/// result to 10 bits into N4 = N3+E (E is 9 bits); output R is 10 bits.
/// e7 looks like a merge boundary (sign-extension of an 8-bit truncated
/// sum) but information-content analysis shows N3 carries only a 5-bit sum,
/// yielding the fully mergeable G5'.
dfg::Graph figure3_g5();

/// Node ids of interest in the figure graphs, for tests and benches.
struct FigureNodes {
  dfg::NodeId n1, n2, n3, n4;
};
FigureNodes figure_nodes(const dfg::Graph& g);

/// Figure 4(a): the skewed 4-input sum (4-bit unsigned inputs A..D added in
/// a chain) whose skewed information-content bound is <7, unsigned> while
/// Huffman rebalancing proves <6, unsigned>.
dfg::Graph figure4_skewed_sum();

}  // namespace dpmerge::designs
