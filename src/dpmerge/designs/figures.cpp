#include "dpmerge/designs/figures.h"

#include "dpmerge/dfg/builder.h"

namespace dpmerge::designs {

using dfg::Builder;
using dfg::Graph;
using dfg::NodeId;
using dfg::OpKind;

namespace {

Graph g2_like(int output_width) {
  Graph g;
  Builder b(g);
  const auto A = b.input("A", 8);
  const auto B = b.input("B", 8);
  const auto C = b.input("C", 8);
  const auto D = b.input("D", 8);
  const auto E = b.input("E", 8);
  // N1: the 9-bit sum of A and B truncated to 7 bits (w(N1) = 7).
  const auto n1 = b.add(7, {A, 8, Sign::Signed}, {B, 8, Sign::Signed});
  // N2: exact 9-bit sum of C and D.
  const auto n2 = b.add(9, {C, 9, Sign::Signed}, {D, 9, Sign::Signed});
  // Edge e: N1's truncated value sign-extended to 9 bits into N3.
  const auto n3 = b.add(9, {n1, 9, Sign::Signed}, {n2, 9, Sign::Signed});
  const auto n4 = b.add(9, {n3, 9, Sign::Signed}, {E, 9, Sign::Signed});
  b.output("R", output_width,
           {n4, output_width, Sign::Signed});
  return g;
}

}  // namespace

Graph figure1_g2() { return g2_like(9); }

Graph figure2_g4() { return g2_like(5); }

Graph figure3_g5() {
  Graph g;
  Builder b(g);
  const auto A = b.input("A", 3);
  const auto B = b.input("B", 3);
  const auto C = b.input("C", 3);
  const auto D = b.input("D", 3);
  const auto E = b.input("E", 9);
  const auto n1 = b.add(8, {A, 8, Sign::Signed}, {B, 8, Sign::Signed});
  const auto n2 = b.add(8, {C, 8, Sign::Signed}, {D, 8, Sign::Signed});
  const auto n3 = b.add(8, {n1, 8, Sign::Signed}, {n2, 8, Sign::Signed});
  // Edge e7: sign-extends the 8-bit (apparently truncated) sum to 10 bits.
  const auto n4 = b.add(10, {n3, 10, Sign::Signed}, {E, 10, Sign::Signed});
  b.output("R", 10, {n4, 10, Sign::Signed});
  return g;
}

FigureNodes figure_nodes(const Graph& g) {
  FigureNodes f{};
  int seen = 0;
  for (const auto& n : g.nodes()) {
    if (n.kind != OpKind::Add) continue;
    switch (seen++) {
      case 0:
        f.n1 = n.id;
        break;
      case 1:
        f.n2 = n.id;
        break;
      case 2:
        f.n3 = n.id;
        break;
      default:
        f.n4 = n.id;
        break;
    }
  }
  return f;
}

Graph figure4_skewed_sum() {
  Graph g;
  Builder b(g);
  const auto A = b.input("A", 4, Sign::Unsigned);
  const auto B = b.input("B", 4, Sign::Unsigned);
  const auto C = b.input("C", 4, Sign::Unsigned);
  const auto D = b.input("D", 4, Sign::Unsigned);
  // Skewed chain ((A+B)+C)+D, each adder wide enough to be lossless, all
  // edges unsigned.
  const auto s1 = b.add(8, {A, 8, Sign::Unsigned}, {B, 8, Sign::Unsigned});
  const auto s2 = b.add(8, {s1, 8, Sign::Unsigned}, {C, 8, Sign::Unsigned});
  const auto s3 = b.add(8, {s2, 8, Sign::Unsigned}, {D, 8, Sign::Unsigned});
  b.output("Z", 8, {s3, 8, Sign::Unsigned});
  return g;
}

}  // namespace dpmerge::designs
