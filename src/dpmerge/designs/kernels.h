#pragma once

#include <string>
#include <vector>

#include "dpmerge/dfg/graph.h"

namespace dpmerge::designs {

/// A suite of classic DSP/graphics datapath kernels — the workload family
/// the paper's introduction motivates ("chips for graphics, communication
/// and multimedia processing... FFTs, FIR filters and other DSP
/// algorithms"). Each kernel is written in the frontend expression language
/// and compiled to a DFG; `source` is kept for documentation and tooling.
struct Kernel {
  std::string name;
  std::string source;
  dfg::Graph graph;
};

/// fir8        8-tap FIR, constant coefficients (several powers of two)
/// biquad      direct-form-I biquad section (combinational core)
/// complex_mul complex multiply (FFT butterfly kernel)
/// dct4        4-point DCT-II row with integer coefficients
/// matvec3     3x3 integer matrix-vector product (three dot products)
/// checksum8   modular byte checksum (truncated sum; required-precision showcase)
std::vector<Kernel> dsp_kernels();

}  // namespace dpmerge::designs
