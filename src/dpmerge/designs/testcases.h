#pragma once

#include <string>
#include <vector>

#include "dpmerge/dfg/graph.h"

namespace dpmerge::designs {

/// The five datapath-only testcases of Section 7, reconstructed from the
/// paper's prose. The originals are proprietary Cadence RTL; these
/// generators encode the characteristics the paper describes for each (see
/// DESIGN.md §1):
///
///  - D1, D2: networks of potentially mergeable additions with *no redundant
///    widths* in the RTL — accumulation chains whose declared widths match
///    the true magnitude of the running sums. A skewed first-pass analysis
///    over-estimates the chain outputs' information content, so both the old
///    algorithm and the first iteration of the new one split at the chain
///    ends; the Huffman-rebalancing iterations prove the tighter bound and
///    merge the clusters (the paper's explanation of D1/D2's gains).
///  - D3: a sum of products of sums; information analysis prunes the widths
///    of the product outputs and merges them with the final addition.
///  - D4, D5: datapaths with heavily redundant intermediate widths (small
///    operands carried on wide wires, with mid-stream truncate-then-extend
///    points); information analysis prunes the redundancy to the minimum and
///    dissolves the spurious merge boundaries.
struct Testcase {
  std::string name;
  dfg::Graph graph;
};

dfg::Graph make_d1();
dfg::Graph make_d2();
dfg::Graph make_d3();
dfg::Graph make_d4();
dfg::Graph make_d5();

/// All five, in paper order.
std::vector<Testcase> all_testcases();

}  // namespace dpmerge::designs
