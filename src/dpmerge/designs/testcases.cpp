#include "dpmerge/designs/testcases.h"

#include <cassert>
#include <cmath>
#include <string>

#include "dpmerge/dfg/builder.h"

namespace dpmerge::designs {

using dfg::Builder;
using dfg::Graph;
using dfg::NodeId;
using dfg::Operand;

namespace {

/// Bits needed to represent the unsigned value `v` (>= 1 so widths stay
/// legal).
int ubits(std::uint64_t v) {
  int b = 1;
  while (v >> b) ++b;
  return b;
}

/// A skewed accumulation chain over `inputs`, each of `in_width` unsigned
/// bits, with *exact* (non-redundant) intermediate widths: the k-th partial
/// sum is declared just wide enough for k operands of full magnitude. This
/// is the "no redundant widths in RTL" style of D1/D2: a skewed
/// information-content pass still over-estimates the tail of the chain, so
/// clusters split until Huffman rebalancing proves the tight bound.
NodeId exact_chain(Builder& b, const std::vector<NodeId>& inputs,
                   int in_width) {
  assert(inputs.size() >= 2);
  const std::uint64_t maxv = (std::uint64_t{1} << in_width) - 1;
  NodeId acc = inputs[0];
  for (std::size_t k = 1; k < inputs.size(); ++k) {
    const int w = ubits(maxv * (k + 1));
    acc = b.add(w, Operand{acc, w, Sign::Unsigned},
                Operand{inputs[k], w, Sign::Unsigned});
  }
  return acc;
}

}  // namespace

Graph make_d1() {
  Graph g;
  Builder b(g);
  std::vector<NodeId> c1, c2;
  for (int i = 0; i < 8; ++i) {
    c1.push_back(b.input("a" + std::to_string(i), 8, Sign::Unsigned));
  }
  for (int i = 0; i < 8; ++i) {
    c2.push_back(b.input("b" + std::to_string(i), 8, Sign::Unsigned));
  }
  const NodeId s1 = exact_chain(b, c1, 8);  // 11 bits for 8 x 8-bit
  const NodeId s2 = exact_chain(b, c2, 8);
  // Total of 16 operands fits 12 bits exactly.
  const NodeId z = b.add(12, Operand{s1, 12, Sign::Unsigned},
                         Operand{s2, 12, Sign::Unsigned});
  b.output("R", 12, Operand{z, 12, Sign::Unsigned});
  return g;
}

Graph make_d2() {
  Graph g;
  Builder b(g);
  std::vector<NodeId> chains;
  for (int c = 0; c < 3; ++c) {
    std::vector<NodeId> ins;
    for (int i = 0; i < 12; ++i) {
      ins.push_back(b.input("i" + std::to_string(c) + "_" + std::to_string(i),
                            10, Sign::Unsigned));
    }
    chains.push_back(exact_chain(b, ins, 10));  // 14 bits for 12 x 10-bit
  }
  // 24 operands -> 15 bits, 36 -> 16 bits; both exact.
  const NodeId z1 = b.add(15, Operand{chains[0], 15, Sign::Unsigned},
                          Operand{chains[1], 15, Sign::Unsigned});
  const NodeId z2 = b.add(16, Operand{z1, 16, Sign::Unsigned},
                          Operand{chains[2], 16, Sign::Unsigned});
  b.output("R", 16, Operand{z2, 16, Sign::Unsigned});
  return g;
}

Graph make_d3() {
  // Sum of products of sums: R = sum_k (a_k + b_k) * (c_k + d_k).
  // The RTL declares the pre-adders and multipliers uniformly 14 bits wide
  // (sloppy but natural); the true content of each product is only 12 bits,
  // which information analysis proves, pruning the product widths and
  // merging all multipliers with the final addition tree.
  Graph g;
  Builder b(g);
  constexpr int kTerms = 4;
  std::vector<NodeId> products;
  for (int k = 0; k < kTerms; ++k) {
    const auto tag = std::to_string(k);
    const NodeId a = b.input("a" + tag, 5);
    const NodeId bb = b.input("b" + tag, 5);
    const NodeId c = b.input("c" + tag, 5);
    const NodeId d = b.input("d" + tag, 5);
    const NodeId s1 =
        b.add(14, Operand{a, 14, Sign::Signed}, Operand{bb, 14, Sign::Signed});
    const NodeId s2 =
        b.add(14, Operand{c, 14, Sign::Signed}, Operand{d, 14, Sign::Signed});
    products.push_back(b.mul(14, Operand{s1, 14, Sign::Signed},
                             Operand{s2, 14, Sign::Signed}));
  }
  const NodeId t1 = b.add(18, Operand{products[0], 18, Sign::Signed},
                          Operand{products[1], 18, Sign::Signed});
  const NodeId t2 = b.add(18, Operand{products[2], 18, Sign::Signed},
                          Operand{products[3], 18, Sign::Signed});
  const NodeId t = b.add(18, Operand{t1, 18, Sign::Signed},
                         Operand{t2, 18, Sign::Signed});
  b.output("R", 18, Operand{t, 18, Sign::Signed});
  return g;
}

namespace {

/// A balanced tree of 32-bit-declared adders over `leaves` (D4/D5 style
/// redundancy: tiny operands on wide wires), with all edges sign-extending.
NodeId wide_tree(Builder& b, std::vector<NodeId> leaves, int wide) {
  while (leaves.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
      next.push_back(b.add(wide, Operand{leaves[i], wide, Sign::Signed},
                           Operand{leaves[i + 1], wide, Sign::Signed}));
    }
    if (leaves.size() % 2) next.push_back(leaves.back());
    leaves = std::move(next);
  }
  return leaves[0];
}

}  // namespace

Graph make_d4() {
  // Heavily width-redundant datapath: 4-bit signed inputs everywhere, all
  // arithmetic declared 32 bits wide. Two small accumulation groups funnel
  // through 10-bit "capture" nodes (the designer knew those partial sums
  // fit 10 bits) that are sign-extended back into a long 32-bit chain — a
  // truncate-then-extend point the width-only leakage analysis must break
  // at, but which information analysis proves exact. The dominant cost sits
  // in the wide chain, where the old flow keeps full 32-bit CSA rows and a
  // 32-bit final adder while the new flow proves ~10 bits suffice.
  Graph g;
  Builder b(g);
  constexpr int kWide = 32;
  auto capture_group = [&](int base) {
    std::vector<NodeId> ins;
    for (int i = 0; i < 4; ++i) {
      ins.push_back(b.input("x" + std::to_string(base + i), 4));
    }
    const NodeId s = wide_tree(b, ins, kWide);
    // 10-bit capture node: truncates the 32-bit wire, provably lossless.
    return b.add(10, Operand{s, 10, Sign::Signed},
                 Operand{b.input("y" + std::to_string(base), 4), 10,
                         Sign::Signed});
  };
  const NodeId h1 = capture_group(0);
  const NodeId h2 = capture_group(4);
  NodeId z = b.sub(kWide, Operand{h1, kWide, Sign::Signed},
                   Operand{h2, kWide, Sign::Signed});
  // The long redundant chain: ten more 4-bit inputs accumulated at 32 bits.
  for (int k = 0; k < 10; ++k) {
    z = b.add(kWide, Operand{z, kWide, Sign::Signed},
              Operand{b.input("w" + std::to_string(k), 4), kWide,
                      Sign::Signed});
  }
  b.output("R", kWide, Operand{z, kWide, Sign::Signed});
  return g;
}

Graph make_d5() {
  // Like D4 but with a different operator mix: a multiplier of two raw
  // 4-bit inputs declared at full 24 bits (content: 8 bits), a unary minus,
  // subtractions, one 9-bit capture point, and a long redundant 24-bit
  // accumulation chain.
  Graph g;
  Builder b(g);
  constexpr int kWide = 24;
  auto in4 = [&](const std::string& name) { return b.input(name, 4); };
  // Product of two raw inputs, declared at full 24 bits.
  const NodeId p = b.mul(kWide, Operand{in4("m0"), kWide, Sign::Signed},
                         Operand{in4("m1"), kWide, Sign::Signed});
  // Capture-bottlenecked accumulation group.
  std::vector<NodeId> leaves;
  for (int i = 0; i < 4; ++i) leaves.push_back(in4("x" + std::to_string(i)));
  const NodeId t = wide_tree(b, leaves, kWide);
  const NodeId cap = b.add(9, Operand{t, 9, Sign::Signed},
                           Operand{in4("k"), 9, Sign::Signed});
  const NodeId n = b.neg(kWide, Operand{cap, kWide, Sign::Signed});
  NodeId z = b.sub(kWide, Operand{p, kWide, Sign::Signed},
                   Operand{n, kWide, Sign::Signed});
  // The long redundant chain of subtractions/additions at 24 bits.
  for (int k = 0; k < 8; ++k) {
    const Operand w{in4("w" + std::to_string(k)), kWide, Sign::Signed};
    z = (k % 3 == 2) ? b.sub(kWide, Operand{z, kWide, Sign::Signed}, w)
                     : b.add(kWide, Operand{z, kWide, Sign::Signed}, w);
  }
  b.output("R", kWide, Operand{z, kWide, Sign::Signed});
  return g;
}

std::vector<Testcase> all_testcases() {
  std::vector<Testcase> v;
  v.push_back({"D1", make_d1()});
  v.push_back({"D2", make_d2()});
  v.push_back({"D3", make_d3()});
  v.push_back({"D4", make_d4()});
  v.push_back({"D5", make_d5()});
  return v;
}

}  // namespace dpmerge::designs
