#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dpmerge/dfg/graph.h"

namespace dpmerge::designs {

/// Scalable workload generators for the 100k+-node scaling substrate
/// (DESIGN.md §11). Unlike the frontend-compiled `dsp_kernels()` suite,
/// these build parameterised DFGs directly through dfg::Builder, so the
/// same structural family can be emitted at any node count (1k .. 1M+).
/// Every generator is deterministic: the same parameters always produce
/// the same graph, node ids included.

/// Deep layered arithmetic network: `layers` layers of `layer_width`
/// operator nodes, each consuming two values from earlier layers (mostly
/// the previous one, with occasional longer skip connections), with an
/// add/sub-heavy operator mix plus some multiplies and constant shifts.
/// Operand choice is driven by a deterministic Rng seeded with `seed`.
/// Total operator count is layers * layer_width; the critical path is
/// ~`layers` deep, stressing the level decomposition of the parallel
/// analyses rather than wide embarrassing parallelism.
dfg::Graph layered_network(int layers, int layer_width, int width,
                           std::uint64_t seed = 0x5ca1eULL);

/// `taps`-tap FIR filter with constant coefficients: taps multiplies
/// reduced by a balanced adder tree (one cluster candidate of ~2*taps
/// arithmetic nodes). ~4*taps nodes total.
dfg::Graph fir(int taps, int width);

/// Bank of `rows` independent DCT-II-style rows, each an 8-point dot
/// product with integer cosine coefficients. Rows share the 8 inputs but
/// nothing else, so the graph is a forest of `rows` independent kernels —
/// the shape partition-parallel clustering shards best. ~24*rows nodes.
dfg::Graph dct_bank(int rows, int width);

/// n x n integer matrix-matrix product C = A * B: n^2 dot products of
/// length n (n^3 multiplies + n^2*(n-1) adds + 2n^2 inputs), ~2*n^3 nodes.
dfg::Graph matmul(int n, int width);

/// A named design for the scaling bench.
struct ScaleDesign {
  std::string name;
  dfg::Graph graph;
};

/// The scaling suite at roughly `target_nodes` operator nodes: one design
/// per generator family, each parameterised to land near the target. The
/// design names embed the family and the realised node count.
std::vector<ScaleDesign> scale_suite(int target_nodes);

}  // namespace dpmerge::designs
