#include "dpmerge/designs/kernels.h"

#include "dpmerge/frontend/parser.h"

namespace dpmerge::designs {

namespace {

Kernel make(const std::string& name, const std::string& source) {
  auto compiled = frontend::compile(source);
  return Kernel{name, source, std::move(compiled.graph)};
}

}  // namespace

std::vector<Kernel> dsp_kernels() {
  std::vector<Kernel> v;

  v.push_back(make("fir8", R"(design fir8
input x0 : s8
input x1 : s8
input x2 : s8
input x3 : s8
input x4 : s8
input x5 : s8
input x6 : s8
input x7 : s8
output y : s16 = x0 + 2 * x1 + 7 * x2 + 8 * x3 + 8 * x4 + 7 * x5 + 2 * x6 + x7
)"));

  v.push_back(make("biquad", R"(design biquad
# direct-form-I biquad: y = b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2
input x  : s10
input x1 : s10
input x2 : s10
input y1 : s12
input y2 : s12
output y : s18 = 13 * x + 5 * x1 + 13 * x2 - 9 * y1 - 4 * y2
)"));

  v.push_back(make("complex_mul", R"(design complex_mul
input ar : s10
input ai : s10
input br : s10
input bi : s10
output re : s21 = ar * br - ai * bi
output im : s21 = ar * bi + ai * br
)"));

  v.push_back(make("dct4", R"(design dct4
# 4-point DCT-II row, integer-scaled cosine coefficients
input s0 : s9
input s1 : s9
input s2 : s9
input s3 : s9
output c0 : s13 = (s0 + s1 + s2 + s3) << 1
output c1 : s15 = 3 * s0 + s1 - s2 - 3 * s3
output c2 : s13 = ((s0 - s1 - s2 + s3) << 1)
output c3 : s15 = s0 - 3 * s1 + 3 * s2 - s3
)"));

  v.push_back(make("matvec3", R"(design matvec3
input v0 : s8
input v1 : s8
input v2 : s8
output r0 : s13 = 2 * v0 + 3 * v1 + v2
output r1 : s13 = v0 - 4 * v1 + 2 * v2
output r2 : s13 = 5 * v0 + v1 - 2 * v2
)"));

  v.push_back(make("checksum8", R"(design checksum8
# modular byte checksum: low 8 bits of a sum plus bias (the output
# truncation is the point -- required precision collapses the adders)
input p0 : u8
input p1 : u8
input p2 : u8
input p3 : u8
let sum = p0 + p1 + p2 + p3 + 2
output m : u8 = sum
)"));

  return v;
}

}  // namespace dpmerge::designs
