#include "dpmerge/designs/scale.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "dpmerge/dfg/builder.h"
#include "dpmerge/support/rng.h"

namespace dpmerge::designs {

using dfg::Builder;
using dfg::Graph;
using dfg::NodeId;
using dfg::Operand;
using dfg::OpKind;

namespace {

int ceil_log2(int n) {
  int b = 0;
  while ((1 << b) < n) ++b;
  return b;
}

/// Balanced pairwise adder reduction at a fixed width. Preserves operand
/// order within each level, so the emitted graph is a deterministic
/// function of the input list.
NodeId adder_tree(Builder& b, std::vector<NodeId> terms, int width) {
  while (terms.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((terms.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(b.add(width, Operand{terms[i], 0, Sign::Signed},
                           Operand{terms[i + 1], 0, Sign::Signed}));
    }
    if (terms.size() % 2) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms[0];
}

/// A deterministic nonzero "coefficient" in [-127, 127] from an index.
std::int64_t coeff_at(std::uint64_t i) {
  // SplitMix64 finalizer: well-mixed, platform-independent.
  std::uint64_t z = i + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const std::int64_t c = static_cast<std::int64_t>(z % 255) - 127;
  return c == 0 ? 1 : c;
}

}  // namespace

Graph layered_network(int layers, int layer_width, int width,
                      std::uint64_t seed) {
  Graph g;
  const int n_ops = layers * layer_width;
  g.reserve(n_ops + 2 * layer_width, 2 * n_ops + 2 * layer_width);
  Builder b(g);
  Rng rng(seed);

  std::vector<NodeId> prev;  // previous layer (operand sources)
  prev.reserve(static_cast<std::size_t>(layer_width));
  std::vector<std::vector<NodeId>> history;
  for (int i = 0; i < layer_width; ++i) {
    prev.push_back(b.input("x" + std::to_string(i), width));
  }
  history.push_back(prev);

  for (int l = 0; l < layers; ++l) {
    std::vector<NodeId> cur;
    cur.reserve(static_cast<std::size_t>(layer_width));
    for (int i = 0; i < layer_width; ++i) {
      // Operands come from the previous layer, with a 1-in-16 skip
      // connection reaching further back (keeps the graph connected in
      // depth without collapsing the critical path).
      auto pick = [&]() -> Operand {
        const std::vector<NodeId>& src_layer =
            rng.chance(1.0 / 16) && history.size() > 1
                ? history[static_cast<std::size_t>(
                      rng.uniform(0, static_cast<std::int64_t>(history.size()) - 1))]
                : history.back();
        const NodeId src = src_layer[static_cast<std::size_t>(rng.uniform(
            0, static_cast<std::int64_t>(src_layer.size()) - 1))];
        return Operand{src, 0, Sign::Signed};
      };
      const std::int64_t roll = rng.uniform(0, 99);
      NodeId id;
      if (roll < 60) {
        id = b.add(width, pick(), pick());
      } else if (roll < 75) {
        id = b.sub(width, pick(), pick());
      } else if (roll < 85) {
        id = b.shl(width, pick(), static_cast<int>(rng.uniform(1, 3)));
      } else if (roll < 95) {
        id = b.mul(width, pick(), pick());
      } else {
        id = b.neg(width, pick());
      }
      cur.push_back(id);
    }
    history.push_back(cur);
    prev = std::move(cur);
  }

  // Observe every sink so required precision is defined at every port.
  int out_idx = 0;
  const int n = g.node_count();
  for (std::int32_t i = 0; i < n; ++i) {
    const NodeId id{i};
    if (g.node(id).kind == OpKind::Output || !g.node(id).out.empty()) continue;
    b.output("y" + std::to_string(out_idx++), width,
             Operand{id, 0, Sign::Signed});
  }
  return g;
}

Graph fir(int taps, int width) {
  Graph g;
  g.reserve(4 * taps + 8, 6 * taps + 8);
  Builder b(g);
  const int pw = 2 * width;                   // product width
  const int aw = pw + ceil_log2(taps);        // accumulator width
  std::vector<NodeId> products;
  products.reserve(static_cast<std::size_t>(taps));
  for (int i = 0; i < taps; ++i) {
    const NodeId x = b.input("x" + std::to_string(i), width);
    const NodeId c = b.constant(8, coeff_at(static_cast<std::uint64_t>(i)));
    products.push_back(b.mul(pw, Operand{x, 0, Sign::Signed},
                             Operand{c, 0, Sign::Signed}));
  }
  const NodeId acc = adder_tree(b, std::move(products), aw);
  b.output("y", aw, Operand{acc, 0, Sign::Signed});
  return g;
}

Graph dct_bank(int rows, int width) {
  // 8-point DCT-II coefficient matrix, scaled by 64 and rounded — the
  // standard integer approximation used by 2-D image transforms.
  static constexpr int kDct8[8][8] = {
      {64, 64, 64, 64, 64, 64, 64, 64},
      {89, 75, 50, 18, -18, -50, -75, -89},
      {84, 35, -35, -84, -84, -35, 35, 84},
      {75, -18, -89, -50, 50, 89, 18, -75},
      {64, -64, -64, 64, 64, -64, -64, 64},
      {50, -89, 18, 75, -75, -18, 89, -50},
      {35, -84, 84, -35, -35, 84, -84, 35},
      {18, -50, 75, -89, 89, -75, 50, -18},
  };
  Graph g;
  g.reserve(25 * rows + 16, 40 * rows + 16);
  Builder b(g);
  const int pw = width + 8;
  const int aw = pw + 3;
  std::vector<NodeId> xs;
  for (int i = 0; i < 8; ++i) {
    xs.push_back(b.input("x" + std::to_string(i), width));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<NodeId> terms;
    terms.reserve(8);
    for (int i = 0; i < 8; ++i) {
      const NodeId c = b.constant(8, kDct8[r % 8][i]);
      terms.push_back(b.mul(pw, Operand{xs[static_cast<std::size_t>(i)], 0,
                                        Sign::Signed},
                            Operand{c, 0, Sign::Signed}));
    }
    const NodeId acc = adder_tree(b, std::move(terms), aw);
    b.output("y" + std::to_string(r), aw, Operand{acc, 0, Sign::Signed});
  }
  return g;
}

Graph matmul(int n, int width) {
  Graph g;
  const int n2 = n * n;
  g.reserve(2 * n2 * n + 3 * n2 + 8, 4 * n2 * n + 8);
  Builder b(g);
  const int pw = 2 * width;
  const int aw = pw + ceil_log2(std::max(n, 2));
  std::vector<NodeId> a(static_cast<std::size_t>(n2));
  std::vector<NodeId> bb(static_cast<std::size_t>(n2));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i * n + j)] = b.input(
          "a" + std::to_string(i) + "_" + std::to_string(j), width);
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      bb[static_cast<std::size_t>(i * n + j)] = b.input(
          "b" + std::to_string(i) + "_" + std::to_string(j), width);
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      std::vector<NodeId> terms;
      terms.reserve(static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k) {
        terms.push_back(
            b.mul(pw,
                  Operand{a[static_cast<std::size_t>(i * n + k)], 0,
                          Sign::Signed},
                  Operand{bb[static_cast<std::size_t>(k * n + j)], 0,
                          Sign::Signed}));
      }
      const NodeId acc = adder_tree(b, std::move(terms), aw);
      b.output("c" + std::to_string(i) + "_" + std::to_string(j), aw,
               Operand{acc, 0, Sign::Signed});
    }
  }
  return g;
}

std::vector<ScaleDesign> scale_suite(int target_nodes) {
  std::vector<ScaleDesign> out;
  const int t = std::max(target_nodes, 64);

  const int lw = std::max(8, static_cast<int>(std::lround(std::sqrt(
                                  static_cast<double>(t)))));
  const int layers = std::max(2, t / lw);
  Graph lay = layered_network(layers, lw, 16);
  std::string lname = "layered_" + std::to_string(lay.node_count());
  out.push_back(ScaleDesign{std::move(lname), std::move(lay)});

  Graph f = fir(std::max(4, t / 4), 12);
  out.push_back(
      ScaleDesign{"fir_" + std::to_string(f.node_count()), std::move(f)});

  Graph d = dct_bank(std::max(1, t / 25), 12);
  out.push_back(
      ScaleDesign{"dct_" + std::to_string(d.node_count()), std::move(d)});

  const int mn = std::max(
      2, static_cast<int>(std::lround(std::cbrt(static_cast<double>(t) / 2))));
  Graph m = matmul(mn, 12);
  out.push_back(
      ScaleDesign{"matmul_" + std::to_string(m.node_count()), std::move(m)});
  return out;
}

}  // namespace dpmerge::designs
