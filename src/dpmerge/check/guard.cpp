#include <string>

#include "dpmerge/check/absint.h"
#include "dpmerge/check/check.h"
#include "dpmerge/obs/obs.h"

namespace dpmerge::check {

std::string_view to_string(CheckPolicy p) {
  switch (p) {
    case CheckPolicy::Off:
      return "off";
    case CheckPolicy::Errors:
      return "errors";
    case CheckPolicy::Paranoid:
      return "paranoid";
  }
  return "off";
}

std::optional<CheckPolicy> parse_policy(std::string_view s) {
  if (s == "off" || s == "0") return CheckPolicy::Off;
  if (s == "errors" || s == "1") return CheckPolicy::Errors;
  if (s == "paranoid" || s == "2") return CheckPolicy::Paranoid;
  return std::nullopt;
}

namespace {

std::string failure_message(std::string_view site, const CheckReport& rep) {
  std::string msg = "check failed at ";
  msg += site;
  msg += ":\n";
  msg += rep.to_text();
  return msg;
}

/// Route findings into the current stat sink so they appear in FlowReport
/// stage stats and --stats-json artifacts, then throw on any Error. The
/// fatal path first notifies crash diagnostics (flight-recorder mark, and a
/// "check-failure" dump when handlers are installed for it) — the thrown
/// CheckFailure may be swallowed by a caller, but the evidence survives.
void account_and_throw(const CheckReport& rep, std::string_view site) {
  obs::stat_add("check.runs");
  if (rep.errors() > 0) obs::stat_add("check.errors", rep.errors());
  if (rep.warnings() > 0) obs::stat_add("check.warnings", rep.warnings());
  for (const Diagnostic& d : rep.diagnostics()) {
    obs::stat_add("check.rule." + d.rule);
  }
  if (!rep.ok()) {
    obs::note_check_failure(site, rep.to_text());
    throw CheckFailure(std::string(site), rep);
  }
}

}  // namespace

CheckFailure::CheckFailure(std::string site, CheckReport report)
    : std::runtime_error(failure_message(site, report)),
      site_(std::move(site)),
      report_(std::move(report)) {}

namespace detail {

void do_enforce(const dfg::Graph& g, std::string_view site) {
  account_and_throw(verify(g), site);
}

void do_enforce(const netlist::Netlist& n, std::string_view site) {
  // Warnings off at every boundary: synthesized netlists keep unread helper
  // gates by design, and boundary checks only gate on errors anyway. The SCC
  // loop sweep — as expensive as synthesis itself on large netlists — runs
  // under Paranoid only; Errors keeps the linear sweeps so production flows
  // can leave it on (see EXPERIMENTS.md, "Checking overhead").
  NetVerifyOptions opts;
  opts.warnings = false;
  opts.comb_loops = policy() == CheckPolicy::Paranoid;
  account_and_throw(verify(n, nullptr, opts), site);
}

void do_enforce_analyses(const dfg::Graph& g,
                         const analysis::InfoAnalysis& ia,
                         const analysis::RequiredPrecision* rp,
                         std::string_view site) {
  CheckReport rep = lint_info_content(g, ia);
  if (rp != nullptr) rep.merge(lint_required_precision(g, *rp));
  account_and_throw(rep, site);
}

}  // namespace detail

}  // namespace dpmerge::check
