#include "dpmerge/check/absint_engine.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <string>

#include "dpmerge/check/absint_transfer.h"
#include "dpmerge/obs/obs.h"

namespace dpmerge::check {

namespace {

using dfg::Edge;
using dfg::EdgeId;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

using namespace absdom;  // NOLINT(google-build-using-namespace)

// ---------------------------------------------- congruence transfers --

std::uint64_t mask64(int k) {
  return k >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << k) - 1;
}

/// Canonical form: modulus clamped to min(64, width) — a value of width w is
/// its own residue mod 2^w, so wider moduli carry no extra information.
Congruence cong_make(int k, std::uint64_t r, int w) {
  k = std::min({k, w, 64});
  if (k <= 0) return Congruence::top();
  return Congruence{k, r & mask64(k)};
}

Congruence cong_const(const BitVector& v) {
  return cong_make(64, v.to_uint64(), v.width());
}

Congruence cong_add(const Congruence& a, const Congruence& b, int w) {
  const int k = std::min(a.modulus_bits, b.modulus_bits);
  return cong_make(k, a.residue + b.residue, w);
}

Congruence cong_sub(const Congruence& a, const Congruence& b, int w) {
  const int k = std::min(a.modulus_bits, b.modulus_bits);
  return cong_make(k, a.residue - b.residue, w);
}

Congruence cong_neg(const Congruence& a, int w) {
  return cong_make(a.modulus_bits, std::uint64_t{0} - a.residue, w);
}

/// Multiplication is where congruence beats known-bits: mod 2^k is a ring
/// homomorphism, so residues multiply — (2a+1)(2b+1) ≡ 1 (mod 2) — and
/// trailing zeros of the two factors add.
Congruence cong_mul(const Congruence& a, const Congruence& b, int w) {
  const Congruence zeros =
      cong_make(a.trailing_zeros() + b.trailing_zeros(), 0, w);
  const Congruence ring =
      cong_make(std::min(a.modulus_bits, b.modulus_bits),
                a.residue * b.residue, w);
  return ring.modulus_bits >= zeros.modulus_bits ? ring : zeros;
}

Congruence cong_shl(const Congruence& a, int s, int w) {
  if (s < 0) return Congruence::top();
  if (a.is_top()) return cong_make(s, 0, w);  // low s bits are zero anyway
  const int k = std::min(a.modulus_bits + s, 64 + s);  // avoid int overflow
  const auto r = static_cast<std::uint64_t>(
      s >= 64 ? u128{0} : static_cast<u128>(a.residue) << s);
  return cong_make(k, r, w);
}

/// Truncation and extension both preserve the low bits, so a congruence
/// survives any resize clamped to the destination width.
Congruence cong_resize(const Congruence& a, int to_w) {
  return cong_make(a.modulus_bits, a.residue, to_w);
}

// ------------------------------------------------- reduced product --

/// One round of mutual refinement between the three forward domains. Every
/// step only adds information, so the product fact is never weaker than what
/// the v1 single-domain transfers produced on their own.
void reduce(AbsFact& f) {
  const int w = f.width();
  // interval → known bits: hi < 2^m pins bits [m, w) to zero.
  if (f.range.valid && fits_u128(w)) {
    int m = 0;
    while (m < w && f.range.hi >= pow2(m)) ++m;
    for (int i = m; i < w; ++i) {
      if (!f.bits.known.bit(i)) set_tri(f.bits, i, Tri::F);
    }
  }
  // congruence → known bits: the residue pins the low modulus_bits bits
  // (conflicts are left alone; the lint's self-check reports disjointness).
  for (int i = 0; i < f.cong.modulus_bits && i < w; ++i) {
    if (!f.bits.known.bit(i)) {
      set_tri(f.bits, i, (f.cong.residue >> i) & 1 ? Tri::T : Tri::F);
    }
  }
  // known bits → congruence: a run of known low bits is a congruence.
  int run = 0;
  while (run < w && run < 64 && f.bits.known.bit(run)) ++run;
  if (run > f.cong.modulus_bits) {
    std::uint64_t r = 0;
    for (int i = 0; i < run; ++i) {
      r |= static_cast<std::uint64_t>(f.bits.value.bit(i) ? 1 : 0) << i;
    }
    f.cong = cong_make(run, r, w);
  }
  // known bits → interval: unknowns-to-0 / unknowns-to-1 bound the value.
  if (fits_u128(w)) {
    u128 lb = 0;
    u128 ub = 0;
    for (int i = w - 1; i >= 0; --i) {
      const Tri t = tri_of(f.bits, i);
      lb = (lb << 1) | static_cast<u128>(t == Tri::T ? 1 : 0);
      ub = (ub << 1) | static_cast<u128>(t == Tri::F ? 0 : 1);
    }
    if (!f.range.valid) {
      f.range = Interval{true, lb, ub};
    } else {
      const u128 lo = std::max(f.range.lo, lb);
      const u128 hi = std::min(f.range.hi, ub);
      if (lo <= hi) f.range = Interval{true, lo, hi};
    }
  }
}

AbsFact abs_resize(const AbsFact& f, int to_w, Sign sign) {
  AbsFact r{kb_resize(f.bits, to_w, sign),
            itv_resize(f.range, f.width(), to_w, sign),
            cong_resize(f.cong, to_w)};
  reduce(r);
  return r;
}

// ------------------------------------------------- demand helpers --

int demand_msb1(const BitVector& d) {
  for (int i = d.width() - 1; i >= 0; --i) {
    if (d.bit(i)) return i + 1;
  }
  return 0;
}

BitVector low_mask(int w, int k) {
  BitVector m(w);
  for (int i = 0; i < std::min(w, k); ++i) m.set_bit(i, true);
  return m;
}

bool or_into(BitVector& acc, const BitVector& d) {
  bool changed = false;
  for (int i = 0; i < acc.width(); ++i) {
    if (d.bit(i) && !acc.bit(i)) {
      acc.set_bit(i, true);
      changed = true;
    }
  }
  return changed;
}

/// Demand on the *input* of resize(from_w -> to_w, sign), given demand `d`
/// on the output. Truncation direction: bits above to_w never reach the
/// output. Extension direction: the replicated bits all read the sign bit
/// (signed) or the constant 0 (unsigned).
BitVector demand_unresize(const BitVector& d, int from_w, Sign sign) {
  const int to_w = d.width();
  BitVector r(from_w);
  for (int i = 0; i < std::min(from_w, to_w); ++i) r.set_bit(i, d.bit(i));
  if (to_w > from_w && sign == Sign::Signed && from_w > 0) {
    for (int i = from_w; i < to_w; ++i) {
      if (d.bit(i)) {
        r.set_bit(from_w - 1, true);
        break;
      }
    }
  }
  return r;
}

/// Sign with which edge `e` delivers its operand into `n` (Section 2.2 —
/// Extension nodes re-interpret with their own t(N)).
Sign delivered_sign(const Node& n, const Edge& e) {
  return n.kind == OpKind::Extension ? n.ext_sign : e.sign;
}

/// Trailing zeros of the operand delivered by `other` into Mul node `n`,
/// provable from a literal Const source alone. Structural, so usable under
/// Truncation semantics: the constant does not move when other widths shrink.
int const_operand_trailing_zeros(const Graph& g, const Node& n,
                                 EdgeId other) {
  const Edge& e = g.edge(other);
  const Node& src = g.node(e.src);
  if (src.kind != OpKind::Const) return 0;
  const BitVector v =
      src.value.resize(e.width, e.sign).resize(n.width, delivered_sign(n, e));
  if (v.is_zero()) return n.width;  // ×0: nothing upstream is demanded
  int tz = 0;
  while (!v.bit(tz)) ++tz;
  return tz;
}

// --------------------------------------------------- fact equality --

bool kb_eq(const KnownBits& a, const KnownBits& b) {
  return a.known == b.known && a.value == b.value;
}

bool itv_eq(const Interval& a, const Interval& b) {
  if (a.valid != b.valid) return false;
  return !a.valid || (a.lo == b.lo && a.hi == b.hi);
}

bool fact_eq(const AbsFact& a, const AbsFact& b) {
  return kb_eq(a.bits, b.bits) && itv_eq(a.range, b.range) && a.cong == b.cong;
}

// ------------------------------------------------------ the engine --

struct Engine {
  const Graph& g;
  const dfg::Csr& c;
  const AbsintOptions& opts;
  AbsintResult& r;

  const AbsFact& operand(EdgeId eid) const {
    return r.at_operand[static_cast<std::size_t>(eid.value)];
  }

  /// Recomputes the forward fact of one node from its predecessors' output
  /// facts; returns true iff the node's output fact changed.
  bool visit_forward(NodeId id) {
    const Node& n = g.node(id);
    for (EdgeId eid : n.in) {
      const Edge& e = g.edge(eid);
      const AbsFact carried = abs_resize(r.out(e.src), e.width, e.sign);
      r.at_edge[static_cast<std::size_t>(eid.value)] = carried;
      r.at_operand[static_cast<std::size_t>(eid.value)] =
          abs_resize(carried, n.width, delivered_sign(n, e));
    }

    AbsFact out = AbsFact::top(n.width);
    switch (n.kind) {
      case OpKind::Input:
        break;
      case OpKind::Const:
        out = AbsFact::constant(n.value);
        break;
      case OpKind::Output:
      case OpKind::Extension:
        out = operand(n.in[0]);
        break;
      case OpKind::Add: {
        const AbsFact& a = operand(n.in[0]);
        const AbsFact& b = operand(n.in[1]);
        out = {kb_add(a.bits, b.bits, Tri::F, /*invert_b=*/false),
               itv_add(a.range, b.range, n.width),
               cong_add(a.cong, b.cong, n.width)};
        break;
      }
      case OpKind::Sub: {
        const AbsFact& a = operand(n.in[0]);
        const AbsFact& b = operand(n.in[1]);
        out = {kb_add(a.bits, b.bits, Tri::T, /*invert_b=*/true),
               itv_sub(a.range, b.range, n.width),
               cong_sub(a.cong, b.cong, n.width)};
        break;
      }
      case OpKind::Mul: {
        const AbsFact& a = operand(n.in[0]);
        const AbsFact& b = operand(n.in[1]);
        out = {kb_mul(a.bits, b.bits), itv_mul(a.range, b.range, n.width),
               cong_mul(a.cong, b.cong, n.width)};
        break;
      }
      case OpKind::Neg: {
        const AbsFact& a = operand(n.in[0]);
        out = {kb_add(KnownBits::constant(BitVector(n.width)), a.bits, Tri::T,
                      /*invert_b=*/true),
               itv_neg(a.range, n.width), cong_neg(a.cong, n.width)};
        break;
      }
      case OpKind::Shl: {
        const AbsFact& a = operand(n.in[0]);
        out = {kb_shl(a.bits, n.shift), itv_shl(a.range, n.shift, n.width),
               cong_shl(a.cong, n.shift, n.width)};
        break;
      }
      case OpKind::LtS:
      case OpKind::LtU:
      case OpKind::Eq: {
        const AbstractValue a = operand(n.in[0]).value();
        const AbstractValue b = operand(n.in[1]).value();
        const Tri t = n.kind == OpKind::LtS   ? decide_lts(a, b)
                      : n.kind == OpKind::LtU ? decide_ltu(a, b)
                                              : decide_eq(a, b);
        out.bits = kb_bool(n.width, t);
        out.range = fits_u128(n.width)
                        ? Interval{true, t == Tri::T ? 1u : 0u,
                                   t == Tri::F ? 0u : 1u}
                        : interval_top();
        out.cong = t == Tri::U
                       ? Congruence::top()
                       : cong_make(64, t == Tri::T ? 1 : 0, n.width);
        break;
      }
    }
    reduce(out);
    auto& slot = r.at_output_port[static_cast<std::size_t>(id.value)];
    if (fact_eq(slot, out)) return false;
    slot = out;
    return true;
  }

  /// Recomputes the demand fact of one node from its consumers' edge
  /// demands, then pushes demand onto its own operands; returns true iff
  /// any demand mask it owns changed.
  bool visit_backward(NodeId id) {
    const Node& n = g.node(id);
    bool changed = false;

    auto& dout = r.demanded_out[static_cast<std::size_t>(id.value)];
    if (n.kind == OpKind::Output) {
      changed |= or_into(dout, low_mask(n.width, n.width));
    } else {
      BitVector join(n.width);
      for (std::int32_t eid : c.out(id)) {
        const Edge& e = g.edge(EdgeId{eid});
        or_into(join, demand_unresize(r.demand_edge(EdgeId{eid}), n.width,
                                      e.sign));
      }
      if (!(join == dout)) {
        dout = join;
        changed = true;
      }
    }

    if (n.in.empty()) return changed;

    // Observability only: a bit the forward pass proved constant carries no
    // influence from any input, so it demands nothing upstream. (Unsound as
    // a truncation license — the proof depends on the very values a resize
    // would change — hence gated on the semantics.)
    BitVector d = dout;
    if (opts.demand == DemandSemantics::Observability) {
      const KnownBits& kb = r.out(id).bits;
      for (int i = 0; i < d.width(); ++i) {
        if (kb.known.bit(i)) d.set_bit(i, false);
      }
    }
    const int dw = demand_msb1(d);

    for (std::size_t port = 0; port < n.in.size(); ++port) {
      const EdgeId eid = n.in[port];
      const Edge& e = g.edge(eid);
      BitVector dop(n.width);
      switch (n.kind) {
        case OpKind::Input:
        case OpKind::Const:
          break;  // no operands
        case OpKind::Output:
        case OpKind::Extension:
          dop = d;
          break;
        case OpKind::Add:
        case OpKind::Sub:
        case OpKind::Neg:
          // Carries ripple strictly low-to-high: operand bits above the
          // highest demanded result bit cannot reach it.
          dop = low_mask(n.width, dw);
          break;
        case OpKind::Mul: {
          // Column j of the product reads operand bits [0, j]; a constant
          // co-factor with t trailing zeros shifts every column up by t.
          int tz = const_operand_trailing_zeros(
              g, n, n.in[port == 0 ? 1 : 0]);
          if (opts.demand == DemandSemantics::Observability) {
            const AbsFact& other = operand(n.in[port == 0 ? 1 : 0]);
            tz = std::max({tz, other.cong.trailing_zeros(),
                           other.bits.known_trailing_zeros()});
          }
          dop = low_mask(n.width, std::max(dw - tz, 0));
          break;
        }
        case OpKind::Shl:
          dop = low_mask(n.width, 0);
          for (int i = 0; i + n.shift < n.width; ++i) {
            dop.set_bit(i, d.bit(i + n.shift));
          }
          break;
        case OpKind::LtS:
        case OpKind::LtU:
        case OpKind::Eq:
          // Bits >= 1 of the result are structurally zero; only a demand on
          // bit 0 reaches the operands, and then every operand bit matters.
          dop = dw >= 1 && d.bit(0) ? low_mask(n.width, n.width)
                                    : BitVector(n.width);
          break;
      }
      auto& op_slot = r.demanded_operand[static_cast<std::size_t>(eid.value)];
      if (!(dop == op_slot)) {
        op_slot = dop;
        changed = true;
      }
      const BitVector de =
          demand_unresize(dop, e.width, delivered_sign(n, e));
      auto& e_slot = r.demanded_edge[static_cast<std::size_t>(eid.value)];
      if (!(de == e_slot)) {
        e_slot = de;
        changed = true;
      }
    }
    return changed;
  }

  /// One directional worklist pass: nodes are drained in dependency order
  /// (topo-position priority); a change requeues the dependent side, which
  /// is always later in the drain order, so each pass reaches its
  /// directional fixpoint in a single drain on a DAG.
  bool forward_pass() {
    std::vector<char> dirty(static_cast<std::size_t>(c.num_nodes), 1);
    bool any = false;
    for (NodeId id : c.topo) {
      if (!dirty[static_cast<std::size_t>(id.value)]) continue;
      dirty[static_cast<std::size_t>(id.value)] = 0;
      if (visit_forward(id)) {
        any = true;
        for (std::int32_t eid : c.out(id)) {
          dirty[static_cast<std::size_t>(g.edge(EdgeId{eid}).dst.value)] = 1;
        }
      }
    }
    return any;
  }

  bool backward_pass() {
    std::vector<char> dirty(static_cast<std::size_t>(c.num_nodes), 1);
    bool any = false;
    for (auto it = c.topo.rbegin(); it != c.topo.rend(); ++it) {
      const NodeId id = *it;
      if (!dirty[static_cast<std::size_t>(id.value)]) continue;
      dirty[static_cast<std::size_t>(id.value)] = 0;
      if (visit_backward(id)) {
        any = true;
        for (EdgeId eid : g.node(id).in) {
          dirty[static_cast<std::size_t>(g.edge(eid).src.value)] = 1;
        }
      }
    }
    return any;
  }
};

std::string u128_to_string(u128 v) {
  if (v == 0) return "0";
  std::string s;
  while (v > 0) {
    s.insert(s.begin(), static_cast<char>('0' + static_cast<int>(v % 10)));
    v /= 10;
  }
  return s;
}

std::string kb_to_string(const KnownBits& kb) {
  std::string s;
  for (int i = kb.width() - 1; i >= 0; --i) {
    const Tri t = tri_of(kb, i);
    s += t == Tri::U ? 'x' : (t == Tri::T ? '1' : '0');
  }
  return s;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += ' ';
    } else {
      out += ch;
    }
  }
  return out;
}

}  // namespace

// ------------------------------------------------------- public types --

int Congruence::trailing_zeros() const {
  if (is_top()) return 0;
  if (residue == 0) return modulus_bits;
  return std::min(modulus_bits, std::countr_zero(residue));
}

AbsFact AbsFact::top(int w) {
  return {KnownBits::top(w), interval_full(w), Congruence::top()};
}

AbsFact AbsFact::constant(const BitVector& v) {
  AbsFact f{KnownBits::constant(v), interval_top(), cong_const(v)};
  if (fits_u128(v.width())) f.range = interval_const(to_u128(v));
  return f;
}

bool contains(const AbsFact& f, const BitVector& v) {
  if (!contains(f.value(), v)) return false;
  const Congruence& cg = f.cong;
  if (!cg.is_top()) {
    const std::uint64_t low = v.to_uint64() & mask64(cg.modulus_bits);
    if (low != cg.residue) return false;
  }
  return true;
}

int AbsintResult::demanded_width(dfg::NodeId n) const {
  return demand_msb1(demand_out(n));
}

// ---------------------------------------------------------- fixpoint --

AbsintResult compute_absint(const Graph& g, const AbsintOptions& opts) {
  obs::Span span("check.absint2");
  obs::stat_add("check.absint2.runs");
  const dfg::Csr& c = g.freeze();
  AbsintResult r;
  const auto nn = static_cast<std::size_t>(g.node_count());
  const auto ne = static_cast<std::size_t>(g.edge_count());
  r.at_output_port.reserve(nn);
  for (const Node& n : g.nodes()) {
    r.at_output_port.push_back(AbsFact::top(n.width));
    r.demanded_out.emplace_back(n.width);
  }
  r.at_edge.reserve(ne);
  for (const Edge& e : g.edges()) {
    r.at_edge.push_back(AbsFact::top(e.width));
    r.at_operand.push_back(AbsFact::top(g.node(e.dst).width));
    r.demanded_edge.emplace_back(e.width);
    r.demanded_operand.emplace_back(g.node(e.dst).width);
  }

  Engine engine{g, c, opts, r};
  for (int round = 0; round < std::max(opts.max_rounds, 1); ++round) {
    const bool fwd = engine.forward_pass();
    const bool bwd = engine.backward_pass();
    r.rounds = round + 1;
    if (!fwd && !bwd) break;
  }
  return r;
}

// -------------------------------------------------------------- lint --

namespace {

void self_check_v2(const Graph& g, const AbsintResult& r, CheckReport& rep) {
  for (const Node& n : g.nodes()) {
    const AbsFact& f = r.out(n.id);
    const Locus locus{"node", n.id.value, -1, g.name(n)};
    if (f.bits.all_known() && f.range.valid && fits_u128(f.width())) {
      const u128 v = to_u128(f.bits.value);
      if (v < f.range.lo || v > f.range.hi) {
        rep.add(Severity::Error, "absint.internal",
                "known-bits and interval domains are disjoint", locus);
      }
    }
    for (int i = 0; i < std::min(f.cong.modulus_bits, f.width()); ++i) {
      if (f.bits.known.bit(i) &&
          f.bits.value.bit(i) != (((f.cong.residue >> i) & 1) != 0)) {
        rep.add(Severity::Error, "absint.internal",
                "congruence residue and known bits are disjoint", locus);
        break;
      }
    }
  }
}

void lint_claim_v2(const AbsFact& f, analysis::InfoContent cl, int port_width,
                   Locus locus, const char* what, CheckReport& rep) {
  if (cl.width < 0 || cl.width > port_width) {
    rep.add(Severity::Error, "ic.malformed",
            std::string(what) + " claim " + cl.to_string() + " outside [0, " +
                std::to_string(port_width) + "]",
            std::move(locus));
    return;
  }
  if (contradicts(f.value(), cl)) {
    rep.add(Severity::Error, "ic.unsound",
            std::string(what) + " claim " + cl.to_string() +
                " is violated by every reachable value (fixpoint facts prove "
                "the claimed extension bits differ)",
            std::move(locus));
  }
}

}  // namespace

CheckReport lint_absint(const Graph& g, const analysis::InfoAnalysis* ia,
                        const analysis::RequiredPrecision* rp,
                        const AbsintResult* pre) {
  obs::Span span("check.lint.absint");
  CheckReport rep;
  const auto nn = static_cast<std::size_t>(g.node_count());
  const auto ne = static_cast<std::size_t>(g.edge_count());

  AbsintResult local;
  if (!pre) local = compute_absint(g);
  const AbsintResult& r = pre ? *pre : local;
  self_check_v2(g, r, rep);

  if (ia) {
    if (ia->at_output_port.size() != nn || ia->at_edge.size() != ne ||
        ia->at_operand.size() != ne) {
      rep.add(Severity::Error, "ic.stale",
              "info-content vectors sized for " +
                  std::to_string(ia->at_output_port.size()) + " nodes / " +
                  std::to_string(ia->at_edge.size()) + " edges, graph has " +
                  std::to_string(nn) + " / " + std::to_string(ne) +
                  " (graph mutated after the analysis ran)");
    } else {
      for (const Node& n : g.nodes()) {
        lint_claim_v2(r.out(n.id), ia->out(n.id), n.width,
                      Locus{"node", n.id.value, -1, g.name(n)}, "output-port",
                      rep);
      }
      for (const Edge& e : g.edges()) {
        lint_claim_v2(r.edge(e.id), ia->edge(e.id), e.width,
                      Locus{"edge", e.id.value, -1, {}}, "carried-edge", rep);
        lint_claim_v2(r.operand(e.id), ia->operand(e.id),
                      g.node(e.dst).width,
                      Locus{"edge", e.id.value, e.dst_port, {}}, "operand",
                      rep);
      }
    }
  }

  if (rp) {
    rep.merge(lint_required_precision(g, *rp));
    if (rp->at_output_port.size() == nn) {
      // The demanded-bits transfers are pointwise at least as precise as the
      // required-precision transfers (DESIGN.md §13 proves the inequality
      // case by case), so demand above r(p_o) means one of the two backward
      // analyses is unsound.
      for (const Node& n : g.nodes()) {
        const int dw = r.demanded_width(n.id);
        const int ro = rp->at_output_port[static_cast<std::size_t>(
            n.id.value)];
        if (dw > ro) {
          rep.add(Severity::Error, "rp.unsound",
                  "demanded-bits fixpoint needs " + std::to_string(dw) +
                      " low bits but required precision claims r(p_o)=" +
                      std::to_string(ro),
                  Locus{"node", n.id.value, -1, g.name(n)});
        }
      }
    }
  }
  return rep;
}

// ----------------------------------------------------- fact reports --

namespace {

std::string fact_line(const Graph& g, const Node& n, const AbsintResult& r) {
  const AbsFact& f = r.out(n.id);
  std::string s = "n";
  s += std::to_string(n.id.value);
  if (!g.name(n).empty()) {
    s += " '";
    s += g.name(n);
    s += "'";
  }
  s += " ";
  s += dfg::to_string(n.kind);
  s += " w=";
  s += std::to_string(n.width);
  s += " bits=";
  s += kb_to_string(f.bits);
  if (f.range.valid) {
    s += " range=[";
    s += u128_to_string(f.range.lo);
    s += ",";
    s += u128_to_string(f.range.hi);
    s += "]";
  }
  if (!f.cong.is_top()) {
    s += " cong=";
    s += std::to_string(f.cong.residue);
    s += " mod 2^";
    s += std::to_string(f.cong.modulus_bits);
  }
  s += " demanded=";
  s += std::to_string(r.demanded_width(n.id));
  s += "/";
  s += std::to_string(n.width);
  return s;
}

}  // namespace

std::string absint_facts_text(const Graph& g, const AbsintResult& r) {
  std::string out = "absint fixpoint: " + std::to_string(g.node_count()) +
                    " nodes, " + std::to_string(r.rounds) + " round(s)\n";
  for (const Node& n : g.nodes()) out += "  " + fact_line(g, n, r) + "\n";
  return out;
}

std::string absint_facts_json(const Graph& g, const AbsintResult& r) {
  std::string out = "{\"rounds\": " + std::to_string(r.rounds) +
                    ", \"nodes\": [";
  bool first = true;
  for (const Node& n : g.nodes()) {
    const AbsFact& f = r.out(n.id);
    if (!first) out += ",";
    first = false;
    out += "\n  {\"id\": " + std::to_string(n.id.value) + ", \"name\": \"" +
           json_escape(g.name(n)) + "\", \"kind\": \"" +
           std::string(dfg::to_string(n.kind)) +
           "\", \"width\": " + std::to_string(n.width);
    out += ", \"known\": \"" + kb_to_string(f.bits) + "\"";
    if (f.range.valid) {
      out += ", \"range\": {\"lo\": \"" + u128_to_string(f.range.lo) +
             "\", \"hi\": \"" + u128_to_string(f.range.hi) + "\"}";
    } else {
      out += ", \"range\": null";
    }
    if (!f.cong.is_top()) {
      out += ", \"cong\": {\"mod_bits\": " +
             std::to_string(f.cong.modulus_bits) +
             ", \"residue\": " + std::to_string(f.cong.residue) + "}";
    } else {
      out += ", \"cong\": null";
    }
    out += ", \"demanded_width\": " + std::to_string(r.demanded_width(n.id)) +
           "}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace dpmerge::check
