#pragma once

/// Shared abstract transfer functions of the known-bits and interval domains
/// (DESIGN.md §9, §13). This is an *internal* header of dpmerge::check: the
/// single-pass lint (absint.cpp) and the bidirectional fixpoint engine
/// (absint_engine.cpp) must agree bit-for-bit on every transfer — the engine
/// guarantees "never weaker than the single pass" by literally calling the
/// same code — so the transfers live here, once.
///
/// Everything is inline and allocation-light; the per-bit loops run over
/// widths, not value ranges.

#include <algorithm>

#include "dpmerge/check/absint.h"
#include "dpmerge/support/bitvector.h"
#include "dpmerge/support/sign.h"

namespace dpmerge::check::absdom {

using u128 = unsigned __int128;

/// Widest value the interval domain represents. Above this everything is
/// top; 120 leaves headroom for pow2(w) in the claim-disjointness algebra.
constexpr int kIntervalMaxWidth = 120;

inline u128 pow2(int k) { return static_cast<u128>(1) << k; }

inline bool fits_u128(int w) { return w <= kIntervalMaxWidth; }

inline u128 to_u128(const BitVector& v) {
  u128 r = 0;
  for (int i = v.width() - 1; i >= 0; --i) {
    r = (r << 1) | static_cast<u128>(v.bit(i) ? 1 : 0);
  }
  return r;
}

// -------------------------------------------------------- tri-state bits --

/// Tri-state bit: the value of one bit across all stimuli.
enum class Tri : unsigned char { F, T, U };

inline Tri tri_of(const KnownBits& kb, int i) {
  if (!kb.known.bit(i)) return Tri::U;
  return kb.value.bit(i) ? Tri::T : Tri::F;
}

inline Tri tri_not(Tri a) {
  if (a == Tri::U) return Tri::U;
  return a == Tri::T ? Tri::F : Tri::T;
}

inline Tri tri_xor3(Tri a, Tri b, Tri c) {
  if (a == Tri::U || b == Tri::U || c == Tri::U) return Tri::U;
  const int ones = (a == Tri::T) + (b == Tri::T) + (c == Tri::T);
  return (ones % 2) ? Tri::T : Tri::F;
}

/// Majority of three tri-state bits: decided as soon as two agree.
inline Tri tri_maj3(Tri a, Tri b, Tri c) {
  const int t = (a == Tri::T) + (b == Tri::T) + (c == Tri::T);
  const int f = (a == Tri::F) + (b == Tri::F) + (c == Tri::F);
  if (t >= 2) return Tri::T;
  if (f >= 2) return Tri::F;
  return Tri::U;
}

inline void set_tri(KnownBits& kb, int i, Tri v) {
  if (v == Tri::U) return;  // top(w) starts all-unknown
  kb.known.set_bit(i, true);
  kb.value.set_bit(i, v == Tri::T);
}

// ---------------------------------------------------- interval transfers --

inline Interval interval_top() { return Interval{}; }

inline Interval interval_full(int w) {
  if (!fits_u128(w)) return interval_top();
  return Interval{true, 0, pow2(w) - 1};
}

inline Interval interval_const(u128 v) { return Interval{true, v, v}; }

inline Interval itv_add(const Interval& a, const Interval& b, int w) {
  if (!a.valid || !b.valid || !fits_u128(w)) return interval_top();
  const u128 hi = a.hi + b.hi;  // both < 2^120, no u128 overflow
  if (hi >= pow2(w)) return interval_full(w);
  return Interval{true, a.lo + b.lo, hi};
}

inline Interval itv_sub(const Interval& a, const Interval& b, int w) {
  if (!a.valid || !b.valid || !fits_u128(w)) return interval_top();
  if (a.lo < b.hi) return interval_full(w);  // could wrap below zero
  return Interval{true, a.lo - b.hi, a.hi - b.lo};
}

inline Interval itv_mul(const Interval& a, const Interval& b, int w) {
  if (!a.valid || !b.valid || !fits_u128(w)) return interval_top();
  if (a.hi >= pow2(60) || b.hi >= pow2(60)) return interval_top();
  const u128 hi = a.hi * b.hi;  // < 2^120
  if (hi >= pow2(w)) return interval_full(w);
  return Interval{true, a.lo * b.lo, hi};
}

inline Interval itv_neg(const Interval& a, int w) {
  if (!a.valid || !fits_u128(w)) return interval_top();
  if (a.lo == 0 && a.hi == 0) return interval_const(0);
  if (a.lo == 0) return interval_full(w);  // {0} u [2^w-hi, 2^w-1] splits
  return Interval{true, pow2(w) - a.hi, pow2(w) - a.lo};
}

inline Interval itv_shl(const Interval& a, int s, int w) {
  if (!a.valid || !fits_u128(w) || s < 0) return interval_top();
  if (s >= w) return interval_const(0);
  if (a.hi >= pow2(kIntervalMaxWidth - s)) return interval_top();
  const u128 hi = a.hi << s;
  if (hi >= pow2(w)) return interval_full(w);
  return Interval{true, a.lo << s, hi};
}

inline Interval itv_resize(const Interval& a, int from_w, int to_w,
                           Sign sign) {
  if (!a.valid || !fits_u128(to_w) || !fits_u128(from_w)) {
    return interval_top();
  }
  if (to_w <= from_w) {
    if (to_w == from_w) return a;
    if (a.hi < pow2(to_w)) return a;  // truncation drops nothing
    return interval_full(to_w);
  }
  if (sign == Sign::Unsigned || from_w == 0) return a;
  const u128 half = pow2(from_w - 1);
  if (a.hi < half) return a;  // sign bit 0 throughout: zero-extension
  if (a.lo >= half) {         // sign bit 1 throughout: fixed offset
    const u128 offset = pow2(to_w) - pow2(from_w);
    return Interval{true, a.lo + offset, a.hi + offset};
  }
  return interval_full(to_w);
}

// -------------------------------------------------- known-bits transfers --

inline KnownBits kb_resize(const KnownBits& a, int to_w, Sign sign) {
  const int w = a.width();
  KnownBits r = KnownBits::top(to_w);
  const Tri fill =
      (sign == Sign::Signed && w > 0) ? tri_of(a, w - 1) : Tri::F;
  for (int i = 0; i < to_w; ++i) {
    set_tri(r, i, i < w ? tri_of(a, i) : fill);
  }
  return r;
}

/// Ripple addition of a + b + carry_in over tri-state bits.
inline KnownBits kb_add(const KnownBits& a, const KnownBits& b, Tri carry,
                        bool invert_b) {
  const int w = a.width();
  KnownBits r = KnownBits::top(w);
  for (int i = 0; i < w; ++i) {
    const Tri ai = tri_of(a, i);
    const Tri bi = invert_b ? tri_not(tri_of(b, i)) : tri_of(b, i);
    set_tri(r, i, tri_xor3(ai, bi, carry));
    carry = tri_maj3(ai, bi, carry);
  }
  return r;
}

inline KnownBits kb_mul(const KnownBits& a, const KnownBits& b) {
  const int w = a.width();
  if (a.all_known() && b.all_known()) {
    return KnownBits::constant(a.value.mul(b.value));
  }
  KnownBits r = KnownBits::top(w);
  const int tz =
      std::min(w, a.known_trailing_zeros() + b.known_trailing_zeros());
  for (int i = 0; i < tz; ++i) set_tri(r, i, Tri::F);
  return r;
}

inline KnownBits kb_shl(const KnownBits& a, int s) {
  const int w = a.width();
  KnownBits r = KnownBits::top(w);
  for (int i = 0; i < w; ++i) {
    set_tri(r, i, i < s ? Tri::F : tri_of(a, i - s));
  }
  return r;
}

/// A 1-bit truth value zero-padded to `w` bits (comparator results).
inline KnownBits kb_bool(int w, Tri bit0) {
  KnownBits r = KnownBits::top(w);
  set_tri(r, 0, bit0);
  for (int i = 1; i < w; ++i) set_tri(r, i, Tri::F);
  return r;
}

// ------------------------------------------------- comparator decisions --

inline Tri decide_ltu(const AbstractValue& a, const AbstractValue& b) {
  if (a.range.valid && b.range.valid) {
    if (a.range.hi < b.range.lo) return Tri::T;
    if (a.range.lo >= b.range.hi) return Tri::F;
  }
  return Tri::U;
}

inline Tri decide_lts(const AbstractValue& a, const AbstractValue& b) {
  if (a.bits.all_known() && b.bits.all_known()) {
    return a.bits.value.signed_lt(b.bits.value) ? Tri::T : Tri::F;
  }
  return Tri::U;
}

inline Tri decide_eq(const AbstractValue& a, const AbstractValue& b) {
  const int w = a.width();
  bool all_known_equal = true;
  for (int i = 0; i < w; ++i) {
    const Tri ai = tri_of(a.bits, i);
    const Tri bi = tri_of(b.bits, i);
    if (ai == Tri::U || bi == Tri::U) {
      all_known_equal = false;
    } else if (ai != bi) {
      return Tri::F;  // a bit differs on every stimulus
    }
  }
  if (all_known_equal) return Tri::T;
  if (a.range.valid && b.range.valid &&
      (a.range.hi < b.range.lo || b.range.hi < a.range.lo)) {
    return Tri::F;
  }
  return Tri::U;
}

}  // namespace dpmerge::check::absdom
