#pragma once

/// Gate-level dead-logic lint (DESIGN.md §13): runs the tri-state known-bits
/// domain forward over the netlist's gates and an observability sweep
/// backward from the output buses, and flags cells synthesis left behind:
///
///   net.absint.constant-cell      the gate's output is the same value on
///                                 every stimulus (its cone folds to a tie)
///   net.absint.unobservable-cell  no path of non-constant influence from
///                                 the gate's output to any output bus bit
///
/// Both are warnings — the netlist is functionally correct either way; the
/// findings measure synthesis slack (a MUX with a constant select, masked
/// partial products, padding of comparator results) rather than bugs.

#include "dpmerge/check/diagnostic.h"
#include "dpmerge/netlist/netlist.h"

namespace dpmerge::check {

/// Summary counters alongside the per-gate findings (the CLI prints these
/// even when the report is capped).
struct NetlistAbsintStats {
  int constant_cells = 0;
  int unobservable_cells = 0;
  int gates = 0;
};

/// Runs both sweeps. At most `max_findings` diagnostics are emitted (the
/// stats count everything); pass a negative cap for no limit.
CheckReport lint_netlist_deadlogic(const netlist::Netlist& nl,
                                   NetlistAbsintStats* stats = nullptr,
                                   int max_findings = 50);

}  // namespace dpmerge::check
