#pragma once

/// Abstract interpretation of DFGs over two sound value domains, used by the
/// analysis-soundness lint (DESIGN.md §9).
///
/// Both domains are *over*-approximations of the reachable value set at every
/// node output, edge carrier and delivered operand, propagated forward with
/// the exact width/sign semantics of Section 2.2 (mirroring dfg::Evaluator):
///
///   - **Known bits**: per bit, whether the bit has the same value on every
///     input stimulus (and which value). Add/sub/neg ripple tri-state carries;
///     multiplies track known trailing zeros; resizes move/replicate masks.
///   - **Intervals**: an unsigned range [lo, hi] containing every reachable
///     bit pattern, tracked while widths stay representable (<= 120 bits) and
///     operations provably do not wrap; anything else widens to top.
///
/// The lint exploits the one inference two over-approximations permit: the
/// reachable set is non-empty and contained in both the abstract value and in
/// an analysis claim's concretisation, so if abstraction and claim are
/// *disjoint* the claim is wrong for every reachable value — a definite
/// soundness bug in `analysis::info_content` (or a stale result for a
/// since-mutated graph). Required-precision results carry no refinement
/// state, so they are checked by exact re-derivation instead.

#include <cstddef>
#include <vector>

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/analysis/required_precision.h"
#include "dpmerge/check/diagnostic.h"
#include "dpmerge/dfg/graph.h"
#include "dpmerge/support/bitvector.h"

namespace dpmerge::check {

/// Known-bits abstract value: bit i is known iff `known.bit(i)`, in which
/// case its value on every stimulus is `value.bit(i)` (unknown positions of
/// `value` are kept zero).
struct KnownBits {
  BitVector known;
  BitVector value;

  int width() const { return known.width(); }
  static KnownBits top(int w) { return {BitVector(w), BitVector(w)}; }
  static KnownBits constant(const BitVector& v);
  bool all_known() const;
  /// Number of low-order bits known to be zero.
  int known_trailing_zeros() const;
};

/// Unsigned value interval [lo, hi]; `valid == false` is top (no
/// information — width too large or an operation could wrap).
struct Interval {
  bool valid = false;
  unsigned __int128 lo = 0;
  unsigned __int128 hi = 0;
};

struct AbstractValue {
  KnownBits bits;
  Interval range;

  int width() const { return bits.width(); }
  static AbstractValue top(int w);
  static AbstractValue constant(const BitVector& v);
};

/// True iff the concrete value `v` is a member of the abstraction — the
/// soundness predicate the property tests drive.
bool contains(const AbstractValue& av, const BitVector& v);

/// Abstract width adaptation matching BitVector::resize(to_width, sign).
AbstractValue abstract_resize(const AbstractValue& av, int to_width, Sign sign);

/// Abstract values everywhere the evaluator defines concrete ones; vectors
/// are indexed by node/edge id like the analysis results they cross-check.
struct AbstractAnalysis {
  std::vector<AbstractValue> at_output_port;
  std::vector<AbstractValue> at_edge;     ///< carried(e)
  std::vector<AbstractValue> at_operand;  ///< operand delivered into dst

  const AbstractValue& out(dfg::NodeId n) const {
    return at_output_port[static_cast<std::size_t>(n.value)];
  }
  const AbstractValue& edge(dfg::EdgeId e) const {
    return at_edge[static_cast<std::size_t>(e.value)];
  }
  const AbstractValue& operand(dfg::EdgeId e) const {
    return at_operand[static_cast<std::size_t>(e.value)];
  }
};

/// Single forward topological sweep, O(V + E) with small per-bit constants.
/// The graph must pass the IR verifier (well-formed, acyclic).
AbstractAnalysis compute_abstract(const dfg::Graph& g);

/// True iff no value of width `av.width()` can satisfy the information-
/// content claim `c` while lying inside `av` — i.e. the claim is provably
/// violated on every reachable value.
bool contradicts(const AbstractValue& av, analysis::InfoContent c);

/// Abstract-interpretation soundness lint for information-content results.
/// Rule catalog:
///   ic.stale      result vectors do not match the graph's node/edge counts
///                 (the graph was mutated after the analysis ran)
///   ic.malformed  claimed width outside [0, port width]
///   ic.unsound    claim disjoint from the abstract value — no reachable
///                 value can satisfy it (soundness bug in the analysis or in
///                 a refinement fed into it)
///   absint.internal  the two abstract domains contradict each other (a bug
///                 in this checker, never in the checked analysis)
/// `pre` lets a caller reuse an already-computed abstraction.
CheckReport lint_info_content(const dfg::Graph& g,
                              const analysis::InfoAnalysis& ia,
                              const AbstractAnalysis* pre = nullptr);

/// Staleness check for required-precision results: re-derives the analysis
/// (it is a pure function of the graph) and reports any divergence.
///   rp.stale      stored r differs from the fresh derivation (or the vector
///                 sizes do not match the graph)
CheckReport lint_required_precision(const dfg::Graph& g,
                                    const analysis::RequiredPrecision& rp);

}  // namespace dpmerge::check
