#include "dpmerge/check/diagnostic.h"

#include <cstddef>
#include <sstream>

#include "dpmerge/obs/json.h"

namespace dpmerge::check {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "?";
}

std::string Locus::to_string() const {
  if (kind.empty()) return {};
  std::ostringstream os;
  os << kind;
  if (id >= 0) os << " " << id;
  if (aux >= 0) os << (kind == "line" ? ":" : ".") << aux;
  if (!name.empty()) os << " '" << name << "'";
  return os.str();
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << check::to_string(severity) << " [" << rule << "]";
  const std::string at = locus.to_string();
  if (!at.empty()) os << " at " << at;
  os << ": " << message;
  return os.str();
}

void CheckReport::add(Severity severity, std::string rule, std::string message,
                      Locus locus) {
  if (severity == Severity::Error) ++errors_;
  if (severity == Severity::Warning) ++warnings_;
  diags_.push_back(Diagnostic{severity, std::move(rule), std::move(message),
                              std::move(locus)});
}

void CheckReport::merge(CheckReport other) {
  errors_ += other.errors_;
  warnings_ += other.warnings_;
  diags_.insert(diags_.end(), std::make_move_iterator(other.diags_.begin()),
                std::make_move_iterator(other.diags_.end()));
}

bool CheckReport::has_rule(std::string_view rule) const {
  for (const Diagnostic& d : diags_) {
    if (d.rule == rule) return true;
  }
  return false;
}

int CheckReport::count_rule(std::string_view rule) const {
  int n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.rule == rule) ++n;
  }
  return n;
}

std::string CheckReport::to_text() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

void CheckReport::to_json(std::string& out) const {
  out += "{\"errors\":" + std::to_string(errors_);
  out += ",\"warnings\":" + std::to_string(warnings_);
  out += ",\"diagnostics\":[";
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    const Diagnostic& d = diags_[i];
    if (i) out += ",";
    out += "{\"severity\":";
    obs::json_append_quoted(out, check::to_string(d.severity));
    out += ",\"rule\":";
    obs::json_append_quoted(out, d.rule);
    out += ",\"message\":";
    obs::json_append_quoted(out, d.message);
    out += ",\"locus\":{\"kind\":";
    obs::json_append_quoted(out, d.locus.kind);
    out += ",\"id\":" + std::to_string(d.locus.id);
    out += ",\"aux\":" + std::to_string(d.locus.aux);
    out += ",\"name\":";
    obs::json_append_quoted(out, d.locus.name);
    out += "}}";
  }
  out += "]}";
}

}  // namespace dpmerge::check
