#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dpmerge/check/check.h"
#include "dpmerge/obs/obs.h"

namespace dpmerge::check {

namespace {

using dfg::Edge;
using dfg::EdgeId;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

Locus node_locus(const Graph& g, const Node& n) {
  return Locus{"node", n.id.value, -1, g.name(n)};
}

Locus edge_locus(const Edge& e) { return Locus{"edge", e.id.value, -1, {}}; }

std::string node_tag(const Graph& g, const Node& n) {
  return std::string(dfg::to_string(n.kind)) + " node " +
         std::to_string(n.id.value) +
         (g.name(n).empty() ? "" : " '" + g.name(n) + "'");
}

/// Kahn sweep; reports the nodes stuck on a cycle (non-zero pending count
/// after the sweep drains). One finding lists up to eight members.
void check_acyclic(const Graph& g, CheckReport& rep) {
  std::vector<int> pending(static_cast<std::size_t>(g.node_count()), 0);
  std::vector<NodeId> ready;
  for (const Node& n : g.nodes()) {
    int cnt = 0;
    for (EdgeId e : n.in) {
      if (e.valid()) ++cnt;
    }
    pending[static_cast<std::size_t>(n.id.value)] = cnt;
    if (cnt == 0) ready.push_back(n.id);
  }
  std::size_t seen = 0;
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    ++seen;
    for (EdgeId eid : g.node(id).out) {
      const Edge& e = g.edge(eid);
      if (e.src != id) continue;  // corrupt bookkeeping, reported elsewhere
      if (--pending[static_cast<std::size_t>(e.dst.value)] == 0) {
        ready.push_back(e.dst);
      }
    }
  }
  if (seen == static_cast<std::size_t>(g.node_count())) return;
  std::string members;
  int listed = 0;
  for (const Node& n : g.nodes()) {
    if (pending[static_cast<std::size_t>(n.id.value)] <= 0) continue;
    if (listed++ == 8) {
      members += " ...";
      break;
    }
    if (!members.empty()) members += " ";
    members += std::to_string(n.id.value);
  }
  rep.add(Severity::Error, "dfg.graph.cycle",
          "graph contains a directed cycle through nodes {" + members + "}");
}

}  // namespace

CheckReport verify(const Graph& g) {
  obs::Span span("check.verify.graph");
  CheckReport rep;
  const int nn = g.node_count();
  const int ne = g.edge_count();
  auto node_ok = [&](NodeId id) { return id.value >= 0 && id.value < nn; };

  // Edges first: endpoint range errors make the per-node sweep unsafe to
  // interpret, so report them and skip dependent checks per edge. Duplicate
  // (dst, port) targets are found by sorting packed keys afterwards — one
  // flat allocation instead of a per-node adjacency (this runs at every pass
  // boundary under Errors).
  std::vector<std::uint64_t> port_keys;
  port_keys.reserve(static_cast<std::size_t>(ne));
  for (int i = 0; i < ne; ++i) {
    const Edge& e = g.edges()[static_cast<std::size_t>(i)];
    if (e.id.value != i) {
      rep.add(Severity::Error, "dfg.edge.id",
              "edge at index " + std::to_string(i) + " carries id " +
                  std::to_string(e.id.value),
              Locus{"edge", i, -1, {}});
    }
    if (!node_ok(e.src) || !node_ok(e.dst)) {
      rep.add(Severity::Error, "dfg.edge.endpoints",
              "edge endpoints " + std::to_string(e.src.value) + " -> " +
                  std::to_string(e.dst.value) + " out of range",
              edge_locus(e));
      continue;
    }
    if (e.width <= 0) {
      rep.add(Severity::Error, "dfg.edge.width",
              "non-positive edge width " + std::to_string(e.width),
              edge_locus(e));
    }
    if (e.sign == Sign::Signed && dfg::is_comparator(g.node(e.src).kind)) {
      rep.add(Severity::Error, "dfg.sign.comparator",
              "edge from " + node_tag(g, g.node(e.src)) +
                  " marked signed: the zero-padded 1-bit result would "
                  "reinterpret 1 as -1 across a resize",
              edge_locus(e));
    }
    if (e.dst_port >= 0) {
      port_keys.push_back(
          (static_cast<std::uint64_t>(e.dst.value) << 32) |
          static_cast<std::uint32_t>(e.dst_port));
    }
  }

  for (int i = 0; i < nn; ++i) {
    const Node& n = g.nodes()[static_cast<std::size_t>(i)];
    if (n.id.value != i) {
      rep.add(Severity::Error, "dfg.node.id",
              "node at index " + std::to_string(i) + " carries id " +
                  std::to_string(n.id.value),
              Locus{"node", i, -1, g.name(n)});
      continue;  // the id-keyed checks below would point at the wrong node
    }
    if (n.width <= 0) {
      rep.add(Severity::Error, "dfg.node.width",
              node_tag(g, n) + ": non-positive width " + std::to_string(n.width),
              node_locus(g, n));
    }
    const int want = dfg::operand_count(n.kind);
    if (static_cast<int>(n.in.size()) != want) {
      rep.add(Severity::Error, "dfg.node.arity",
              node_tag(g, n) + ": expected " + std::to_string(want) +
                  " operand(s), has " + std::to_string(n.in.size()),
              node_locus(g, n));
    }
    for (std::size_t p = 0; p < n.in.size(); ++p) {
      const EdgeId eid = n.in[p];
      Locus at = node_locus(g, n);
      at.aux = static_cast<int>(p);
      if (!eid.valid() || eid.value >= ne) {
        rep.add(Severity::Error, "dfg.port.unconnected",
                node_tag(g, n) + ": input port " + std::to_string(p) +
                    " is unconnected",
                at);
        continue;
      }
      const Edge& e = g.edge(eid);
      if (e.dst != n.id || e.dst_port != static_cast<int>(p)) {
        rep.add(Severity::Error, "dfg.port.bookkeeping",
                node_tag(g, n) + ": in-edge " + std::to_string(eid.value) +
                    " does not target this port",
                at);
      }
    }
    for (EdgeId eid : n.out) {
      if (!eid.valid() || eid.value >= ne || g.edge(eid).src != n.id) {
        rep.add(Severity::Error, "dfg.port.bookkeeping",
                node_tag(g, n) + ": out-edge list names edge " +
                    std::to_string(eid.value) + " which does not source here",
                node_locus(g, n));
      }
    }
    if (n.kind == OpKind::Output && !n.out.empty()) {
      rep.add(Severity::Error, "dfg.output.fanout",
              node_tag(g, n) + ": output node has fanout", node_locus(g, n));
    }
    if (n.kind == OpKind::Const && n.value.width() != n.width) {
      rep.add(Severity::Error, "dfg.const.canonical",
              node_tag(g, n) + ": constant value has width " +
                  std::to_string(n.value.width()) + ", node declares " +
                  std::to_string(n.width),
              node_locus(g, n));
    }
    if (n.kind == OpKind::Shl) {
      if (n.shift < 0) {
        rep.add(Severity::Error, "dfg.shl.shift",
                node_tag(g, n) + ": negative shift " + std::to_string(n.shift),
                node_locus(g, n));
      } else if (n.shift >= n.width && n.width > 0) {
        rep.add(Severity::Warning, "dfg.shl.wide-shift",
                node_tag(g, n) + ": shift " + std::to_string(n.shift) +
                    " >= width " + std::to_string(n.width) +
                    " discards the whole operand",
                node_locus(g, n));
      }
    } else if (n.shift != 0) {
      rep.add(Severity::Error, "dfg.shl.shift",
              node_tag(g, n) + ": shift attribute " + std::to_string(n.shift) +
                  " on a non-shift node",
              node_locus(g, n));
    }
  }

  // Duplicate (dst, port) targets: the in[] slot can only record one edge,
  // so a second edge into the same port is silently shadowed. Adjacent equal
  // keys after the sort mark the duplicates; report each port once.
  std::sort(port_keys.begin(), port_keys.end());
  for (std::size_t k = 1; k < port_keys.size(); ++k) {
    if (port_keys[k] != port_keys[k - 1]) continue;
    if (k >= 2 && port_keys[k] == port_keys[k - 2]) continue;
    const auto dst = static_cast<int>(port_keys[k] >> 32);
    const auto port = static_cast<int>(port_keys[k] & 0xffffffffu);
    const Node& n = g.node(NodeId{dst});
    Locus at = node_locus(g, n);
    at.aux = port;
    rep.add(Severity::Error, "dfg.edge.duplicate-port",
            node_tag(g, n) + ": multiple edges target input port " +
                std::to_string(port),
            at);
  }

  if (g.outputs().empty()) {
    rep.add(Severity::Warning, "dfg.graph.no-outputs",
            "graph has no Output node; every signal is unobservable");
  }

  // Only attempt the cycle sweep on structurally indexable graphs.
  if (!rep.has_rule("dfg.node.id") && !rep.has_rule("dfg.edge.endpoints")) {
    check_acyclic(g, rep);
  }

  obs::stat_add("check.verify.graph.runs");
  return rep;
}

}  // namespace dpmerge::check
