#pragma once

/// Bidirectional multi-domain abstract interpretation over the frozen CSR
/// graph (DESIGN.md §13) — "absint v2". A worklist fixpoint engine runs a
/// forward pass over three reduced-product value domains and a backward pass
/// over a demanded-bits domain until neither direction changes anything:
///
///   - **Known bits** and **intervals**: the v1 domains of absint.h, computed
///     by the exact same transfer functions (absint_transfer.h), so the
///     engine's facts are never weaker than the single forward sweep.
///   - **Congruence**: value ≡ residue (mod 2^k). Low-bit knowledge that
///     survives multiplication — (2a+1)·(2b+1) ≡ 1 (mod 2) — and composes
///     with shifts, which known-bits alone reconstructs only partially.
///   - **Demanded bits** (backward): which bits of each node's output can
///     influence any design output bit. This generalises required precision
///     (Definition 4.1) from a single width to a mask, and every transfer is
///     pointwise at least as precise, which is what the `rp.unsound`
///     cross-check in `lint_absint` exploits.
///
/// Demand comes in two semantics, and the distinction is load-bearing for
/// the `transform::shrink_widths` bridge: `Truncation` demand only uses the
/// graph structure and literal Const operands, so an undemanded high bit may
/// be *truncated away* and the design still computes the same outputs.
/// `Observability` demand additionally uses forward facts (a comparator
/// decided by the value analysis demands nothing), which is sound for
/// reporting "this bit cannot reach an output" but NOT for resizing — a
/// truncation can move values outside the forward abstraction that justified
/// the claim.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/analysis/required_precision.h"
#include "dpmerge/check/absint.h"
#include "dpmerge/check/diagnostic.h"
#include "dpmerge/dfg/graph.h"
#include "dpmerge/support/bitvector.h"

namespace dpmerge::check {

/// Congruence-domain element: value ≡ residue (mod 2^modulus_bits), with
/// 0 <= modulus_bits <= 64 and residue < 2^modulus_bits. modulus_bits == 0
/// is top (every value is ≡ 0 mod 1).
struct Congruence {
  int modulus_bits = 0;
  std::uint64_t residue = 0;

  static Congruence top() { return {}; }
  bool is_top() const { return modulus_bits == 0; }
  /// Low-order bits known zero under this congruence (>= k when residue 0).
  int trailing_zeros() const;
  bool operator==(const Congruence&) const = default;
};

/// One node/edge/operand fact of the forward reduced product.
struct AbsFact {
  KnownBits bits;
  Interval range;
  Congruence cong;

  int width() const { return bits.width(); }
  static AbsFact top(int w);
  static AbsFact constant(const BitVector& v);
  /// Projection onto the v1 domains (for `contradicts` and the ic lint).
  AbstractValue value() const { return {bits, range}; }
};

/// Soundness predicate of the product domain (drives the property tests).
bool contains(const AbsFact& f, const BitVector& v);

/// Which claims the backward demanded-bits pass is allowed to make.
enum class DemandSemantics {
  /// Only graph structure and literal Const operands: an undemanded bit may
  /// be truncated away without changing any output. Safe for
  /// `transform::shrink_widths`.
  Truncation,
  /// Additionally uses forward facts (decided comparators, known-constant
  /// output bits demand nothing upstream). Sound for observability reports
  /// only — never as a resizing license.
  Observability,
};

struct AbsintOptions {
  int max_rounds = 4;  ///< Forward/backward alternations (a DAG needs <= 2).
  DemandSemantics demand = DemandSemantics::Truncation;
};

/// Fixpoint facts everywhere the evaluator defines concrete values, plus the
/// backward demand masks. Vectors are indexed by node/edge id.
struct AbsintResult {
  std::vector<AbsFact> at_output_port;
  std::vector<AbsFact> at_edge;     ///< carried(e)
  std::vector<AbsFact> at_operand;  ///< operand delivered into dst
  /// Demand masks: bit i set iff bit i can influence a design output.
  std::vector<BitVector> demanded_out;      ///< per node output port
  std::vector<BitVector> demanded_edge;     ///< per edge carrier
  std::vector<BitVector> demanded_operand;  ///< per delivered operand
  int rounds = 0;  ///< Forward/backward alternations actually run.

  const AbsFact& out(dfg::NodeId n) const {
    return at_output_port[static_cast<std::size_t>(n.value)];
  }
  const AbsFact& edge(dfg::EdgeId e) const {
    return at_edge[static_cast<std::size_t>(e.value)];
  }
  const AbsFact& operand(dfg::EdgeId e) const {
    return at_operand[static_cast<std::size_t>(e.value)];
  }
  const BitVector& demand_out(dfg::NodeId n) const {
    return demanded_out[static_cast<std::size_t>(n.value)];
  }
  const BitVector& demand_edge(dfg::EdgeId e) const {
    return demanded_edge[static_cast<std::size_t>(e.value)];
  }
  const BitVector& demand_operand(dfg::EdgeId e) const {
    return demanded_operand[static_cast<std::size_t>(e.value)];
  }
  /// 1 + index of the highest demanded output bit (0 = nothing demanded).
  int demanded_width(dfg::NodeId n) const;
};

/// Runs the worklist engine to the combined forward/backward fixpoint. The
/// graph must pass the IR verifier (well-formed, acyclic).
AbsintResult compute_absint(const dfg::Graph& g, const AbsintOptions& opts = {});

/// The v2 soundness lint: strictly stronger than `lint_info_content` +
/// `lint_required_precision` because (a) it checks the same claims against
/// the tighter reduced-product facts and (b) it adds the demanded-bits
/// cross-check. Rule catalog (extends the v1 ids):
///   ic.stale / ic.malformed / ic.unsound   as in absint.h, against v2 facts
///   rp.stale        stored r differs from a fresh derivation
///   rp.unsound      Truncation-semantics demanded width exceeds r(p_o) —
///                   the demand transfers are pointwise <= the required-
///                   precision transfers, so this means one of the two
///                   analyses has a soundness bug
///   absint.internal the product domains are mutually disjoint (checker bug)
/// `ia`/`rp` may be null to skip the respective claim checks; `pre` reuses
/// an already-computed fixpoint (its demand must be Truncation semantics).
CheckReport lint_absint(const dfg::Graph& g,
                        const analysis::InfoAnalysis* ia = nullptr,
                        const analysis::RequiredPrecision* rp = nullptr,
                        const AbsintResult* pre = nullptr);

/// Human-readable per-node fact report for `dpmerge-lint --absint`.
std::string absint_facts_text(const dfg::Graph& g, const AbsintResult& r);

/// Machine-readable fact report ({"nodes":[...],"rounds":N}).
std::string absint_facts_json(const dfg::Graph& g, const AbsintResult& r);

}  // namespace dpmerge::check
