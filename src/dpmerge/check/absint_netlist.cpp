#include "dpmerge/check/absint_netlist.h"

#include <cstddef>
#include <string>
#include <vector>

#include "dpmerge/obs/obs.h"

namespace dpmerge::check {

namespace {

using netlist::CellType;
using netlist::Gate;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

/// Per-net tri-state: 0 = known 0, 1 = known 1, 2 = varies with stimulus.
enum : unsigned char { kF = 0, kT = 1, kU = 2 };

unsigned char tri_not(unsigned char a) { return a == kU ? kU : (a ^ 1); }

unsigned char tri_and(unsigned char a, unsigned char b) {
  if (a == kF || b == kF) return kF;
  if (a == kT && b == kT) return kT;
  return kU;
}

unsigned char tri_or(unsigned char a, unsigned char b) {
  if (a == kT || b == kT) return kT;
  if (a == kF && b == kF) return kF;
  return kU;
}

unsigned char tri_xor(unsigned char a, unsigned char b) {
  if (a == kU || b == kU) return kU;
  return a ^ b;
}

unsigned char eval_gate(const Gate& gt,
                        const std::vector<unsigned char>& tri) {
  auto in = [&](int i) {
    return tri[static_cast<std::size_t>(
        gt.inputs[static_cast<std::size_t>(i)].value)];
  };
  switch (gt.type) {
    case CellType::INV:
      return tri_not(in(0));
    case CellType::BUF:
      return in(0);
    case CellType::AND2:
      return tri_and(in(0), in(1));
    case CellType::OR2:
      return tri_or(in(0), in(1));
    case CellType::NAND2:
      return tri_not(tri_and(in(0), in(1)));
    case CellType::NOR2:
      return tri_not(tri_or(in(0), in(1)));
    case CellType::XOR2:
      return tri_xor(in(0), in(1));
    case CellType::XNOR2:
      return tri_not(tri_xor(in(0), in(1)));
    case CellType::MUX2: {
      const unsigned char sel = in(2);
      if (sel == kF) return in(0);
      if (sel == kT) return in(1);
      // Unknown select still yields a known output if both data agree.
      if (in(0) != kU && in(0) == in(1)) return in(0);
      return kU;
    }
  }
  return kU;
}

}  // namespace

CheckReport lint_netlist_deadlogic(const Netlist& nl,
                                   NetlistAbsintStats* stats,
                                   int max_findings) {
  obs::Span span("check.lint.netlist_deadlogic");
  CheckReport rep;
  NetlistAbsintStats local;
  NetlistAbsintStats& st = stats ? *stats : local;
  st = NetlistAbsintStats{};
  st.gates = nl.gate_count();

  // Forward: tri-state values per net. Constants are pinned, every other
  // undriven net (primary inputs) varies; gates evaluate in topo order.
  std::vector<unsigned char> tri(static_cast<std::size_t>(nl.net_count()),
                                 kU);
  tri[static_cast<std::size_t>(nl.const0().value)] = kF;
  tri[static_cast<std::size_t>(nl.const1().value)] = kT;
  const std::vector<GateId> order = nl.topo_gates();
  for (GateId gid : order) {
    const Gate& gt = nl.gates()[static_cast<std::size_t>(gid.value)];
    tri[static_cast<std::size_t>(gt.output.value)] = eval_gate(gt, tri);
  }

  // Backward: observability from the output buses. A constant net blocks
  // influence (its value cannot change, whatever its cone does), and a MUX
  // with a decided select only exposes the selected data leg.
  std::vector<char> obs_net(static_cast<std::size_t>(nl.net_count()), 0);
  for (const netlist::Bus& bus : nl.outputs()) {
    for (NetId n : bus.signal.bits) {
      if (n.valid()) obs_net[static_cast<std::size_t>(n.value)] = 1;
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Gate& gt = nl.gates()[static_cast<std::size_t>(it->value)];
    const auto out_idx = static_cast<std::size_t>(gt.output.value);
    if (!obs_net[out_idx]) continue;
    if (tri[out_idx] != kU) continue;  // constant output: influence stops
    if (gt.type == CellType::MUX2) {
      const unsigned char sel =
          tri[static_cast<std::size_t>(gt.inputs[2].value)];
      if (sel != kU) {
        obs_net[static_cast<std::size_t>(
            gt.inputs[sel == kT ? 1 : 0].value)] = 1;
        continue;
      }
    }
    for (NetId in : gt.inputs) {
      obs_net[static_cast<std::size_t>(in.value)] = 1;
    }
  }

  auto locus = [&](GateId gid, const Gate& gt) {
    Locus l{"gate", gid.value, -1, std::string(to_string(gt.type))};
    const int owner = nl.provenance_owner(gid);
    if (owner >= 0) l.aux = owner;  // owning DFG node, when provenance is on
    return l;
  };
  for (GateId gid : order) {
    const Gate& gt = nl.gates()[static_cast<std::size_t>(gid.value)];
    const auto out_idx = static_cast<std::size_t>(gt.output.value);
    if (tri[out_idx] != kU) {
      ++st.constant_cells;
      if (max_findings < 0 ||
          static_cast<int>(rep.diagnostics().size()) < max_findings) {
        rep.add(Severity::Warning, "net.absint.constant-cell",
                std::string(to_string(gt.type)) + " output is constant " +
                    (tri[out_idx] == kT ? "1" : "0") + " on every stimulus",
                locus(gid, gt));
      }
    } else if (!obs_net[out_idx]) {
      ++st.unobservable_cells;
      if (max_findings < 0 ||
          static_cast<int>(rep.diagnostics().size()) < max_findings) {
        rep.add(Severity::Warning, "net.absint.unobservable-cell",
                std::string(to_string(gt.type)) +
                    " output cannot influence any output bus bit",
                locus(gid, gt));
      }
    }
  }
  obs::stat_add("check.netlist_deadlogic.constant", st.constant_cells);
  obs::stat_add("check.netlist_deadlogic.unobservable",
                st.unobservable_cells);
  return rep;
}

}  // namespace dpmerge::check
