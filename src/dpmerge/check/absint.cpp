#include "dpmerge/check/absint.h"

#include <algorithm>
#include <string>

#include "dpmerge/obs/obs.h"

namespace dpmerge::check {

namespace {

using analysis::InfoContent;
using dfg::Edge;
using dfg::EdgeId;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

using u128 = unsigned __int128;

/// Widest value the interval domain represents. Above this everything is
/// top; 120 leaves headroom for pow2(w) in the claim-disjointness algebra.
constexpr int kIntervalMaxWidth = 120;

u128 pow2(int k) { return static_cast<u128>(1) << k; }

/// Tri-state bit: the value of one bit across all stimuli.
enum class Tri : unsigned char { F, T, U };

Tri tri_of(const KnownBits& kb, int i) {
  if (!kb.known.bit(i)) return Tri::U;
  return kb.value.bit(i) ? Tri::T : Tri::F;
}

Tri tri_not(Tri a) {
  if (a == Tri::U) return Tri::U;
  return a == Tri::T ? Tri::F : Tri::T;
}

Tri tri_xor3(Tri a, Tri b, Tri c) {
  if (a == Tri::U || b == Tri::U || c == Tri::U) return Tri::U;
  const int ones = (a == Tri::T) + (b == Tri::T) + (c == Tri::T);
  return (ones % 2) ? Tri::T : Tri::F;
}

/// Majority of three tri-state bits: decided as soon as two agree.
Tri tri_maj3(Tri a, Tri b, Tri c) {
  const int t = (a == Tri::T) + (b == Tri::T) + (c == Tri::T);
  const int f = (a == Tri::F) + (b == Tri::F) + (c == Tri::F);
  if (t >= 2) return Tri::T;
  if (f >= 2) return Tri::F;
  return Tri::U;
}

void set_tri(KnownBits& kb, int i, Tri v) {
  if (v == Tri::U) return;  // top(w) starts all-unknown
  kb.known.set_bit(i, true);
  kb.value.set_bit(i, v == Tri::T);
}

bool fits_u128(int w) { return w <= kIntervalMaxWidth; }

u128 to_u128(const BitVector& v) {
  u128 r = 0;
  for (int i = v.width() - 1; i >= 0; --i) {
    r = (r << 1) | static_cast<u128>(v.bit(i) ? 1 : 0);
  }
  return r;
}

Interval interval_top() { return Interval{}; }

Interval interval_full(int w) {
  if (!fits_u128(w)) return interval_top();
  return Interval{true, 0, pow2(w) - 1};
}

Interval interval_const(u128 v) { return Interval{true, v, v}; }

// ---------------------------------------------------- interval transfers --

Interval itv_add(const Interval& a, const Interval& b, int w) {
  if (!a.valid || !b.valid || !fits_u128(w)) return interval_top();
  const u128 hi = a.hi + b.hi;  // both < 2^120, no u128 overflow
  if (hi >= pow2(w)) return interval_full(w);
  return Interval{true, a.lo + b.lo, hi};
}

Interval itv_sub(const Interval& a, const Interval& b, int w) {
  if (!a.valid || !b.valid || !fits_u128(w)) return interval_top();
  if (a.lo < b.hi) return interval_full(w);  // could wrap below zero
  return Interval{true, a.lo - b.hi, a.hi - b.lo};
}

Interval itv_mul(const Interval& a, const Interval& b, int w) {
  if (!a.valid || !b.valid || !fits_u128(w)) return interval_top();
  if (a.hi >= pow2(60) || b.hi >= pow2(60)) return interval_top();
  const u128 hi = a.hi * b.hi;  // < 2^120
  if (hi >= pow2(w)) return interval_full(w);
  return Interval{true, a.lo * b.lo, hi};
}

Interval itv_neg(const Interval& a, int w) {
  if (!a.valid || !fits_u128(w)) return interval_top();
  if (a.lo == 0 && a.hi == 0) return interval_const(0);
  if (a.lo == 0) return interval_full(w);  // {0} u [2^w-hi, 2^w-1] splits
  return Interval{true, pow2(w) - a.hi, pow2(w) - a.lo};
}

Interval itv_shl(const Interval& a, int s, int w) {
  if (!a.valid || !fits_u128(w) || s < 0) return interval_top();
  if (s >= w) return interval_const(0);
  if (a.hi >= pow2(kIntervalMaxWidth - s)) return interval_top();
  const u128 hi = a.hi << s;
  if (hi >= pow2(w)) return interval_full(w);
  return Interval{true, a.lo << s, hi};
}

Interval itv_resize(const Interval& a, int from_w, int to_w, Sign sign) {
  if (!a.valid || !fits_u128(to_w) || !fits_u128(from_w)) {
    return interval_top();
  }
  if (to_w <= from_w) {
    if (to_w == from_w) return a;
    if (a.hi < pow2(to_w)) return a;  // truncation drops nothing
    return interval_full(to_w);
  }
  if (sign == Sign::Unsigned || from_w == 0) return a;
  const u128 half = pow2(from_w - 1);
  if (a.hi < half) return a;  // sign bit 0 throughout: zero-extension
  if (a.lo >= half) {         // sign bit 1 throughout: fixed offset
    const u128 offset = pow2(to_w) - pow2(from_w);
    return Interval{true, a.lo + offset, a.hi + offset};
  }
  return interval_full(to_w);
}

// -------------------------------------------------- known-bits transfers --

KnownBits kb_resize(const KnownBits& a, int to_w, Sign sign) {
  const int w = a.width();
  KnownBits r = KnownBits::top(to_w);
  const Tri fill = (sign == Sign::Signed && w > 0) ? tri_of(a, w - 1) : Tri::F;
  for (int i = 0; i < to_w; ++i) {
    set_tri(r, i, i < w ? tri_of(a, i) : fill);
  }
  return r;
}

/// Ripple addition of a + b + carry_in over tri-state bits.
KnownBits kb_add(const KnownBits& a, const KnownBits& b, Tri carry,
                 bool invert_b) {
  const int w = a.width();
  KnownBits r = KnownBits::top(w);
  for (int i = 0; i < w; ++i) {
    const Tri ai = tri_of(a, i);
    const Tri bi = invert_b ? tri_not(tri_of(b, i)) : tri_of(b, i);
    set_tri(r, i, tri_xor3(ai, bi, carry));
    carry = tri_maj3(ai, bi, carry);
  }
  return r;
}

KnownBits kb_mul(const KnownBits& a, const KnownBits& b) {
  const int w = a.width();
  if (a.all_known() && b.all_known()) {
    return KnownBits::constant(a.value.mul(b.value));
  }
  KnownBits r = KnownBits::top(w);
  const int tz = std::min(
      w, a.known_trailing_zeros() + b.known_trailing_zeros());
  for (int i = 0; i < tz; ++i) set_tri(r, i, Tri::F);
  return r;
}

KnownBits kb_shl(const KnownBits& a, int s) {
  const int w = a.width();
  KnownBits r = KnownBits::top(w);
  for (int i = 0; i < w; ++i) {
    set_tri(r, i, i < s ? Tri::F : tri_of(a, i - s));
  }
  return r;
}

/// A 1-bit truth value zero-padded to `w` bits (comparator results).
KnownBits kb_bool(int w, Tri bit0) {
  KnownBits r = KnownBits::top(w);
  set_tri(r, 0, bit0);
  for (int i = 1; i < w; ++i) set_tri(r, i, Tri::F);
  return r;
}

Tri decide_ltu(const AbstractValue& a, const AbstractValue& b) {
  if (a.range.valid && b.range.valid) {
    if (a.range.hi < b.range.lo) return Tri::T;
    if (a.range.lo >= b.range.hi) return Tri::F;
  }
  return Tri::U;
}

Tri decide_lts(const AbstractValue& a, const AbstractValue& b) {
  if (a.bits.all_known() && b.bits.all_known()) {
    return a.bits.value.signed_lt(b.bits.value) ? Tri::T : Tri::F;
  }
  return Tri::U;
}

Tri decide_eq(const AbstractValue& a, const AbstractValue& b) {
  const int w = a.width();
  bool all_known_equal = true;
  for (int i = 0; i < w; ++i) {
    const Tri ai = tri_of(a.bits, i);
    const Tri bi = tri_of(b.bits, i);
    if (ai == Tri::U || bi == Tri::U) {
      all_known_equal = false;
    } else if (ai != bi) {
      return Tri::F;  // a bit differs on every stimulus
    }
  }
  if (all_known_equal) return Tri::T;
  if (a.range.valid && b.range.valid &&
      (a.range.hi < b.range.lo || b.range.hi < a.range.lo)) {
    return Tri::F;
  }
  return Tri::U;
}

}  // namespace

// ------------------------------------------------------------- KnownBits --

KnownBits KnownBits::constant(const BitVector& v) {
  BitVector known(v.width());
  for (int i = 0; i < v.width(); ++i) known.set_bit(i, true);
  return {known, v};
}

bool KnownBits::all_known() const {
  for (int i = 0; i < width(); ++i) {
    if (!known.bit(i)) return false;
  }
  return true;
}

int KnownBits::known_trailing_zeros() const {
  int n = 0;
  while (n < width() && known.bit(n) && !value.bit(n)) ++n;
  return n;
}

// --------------------------------------------------------- AbstractValue --

AbstractValue AbstractValue::top(int w) {
  return {KnownBits::top(w), interval_full(w)};
}

AbstractValue AbstractValue::constant(const BitVector& v) {
  AbstractValue av{KnownBits::constant(v), interval_top()};
  if (fits_u128(v.width())) av.range = interval_const(to_u128(v));
  return av;
}

bool contains(const AbstractValue& av, const BitVector& v) {
  if (v.width() != av.width()) return false;
  for (int i = 0; i < v.width(); ++i) {
    if (av.bits.known.bit(i) && av.bits.value.bit(i) != v.bit(i)) {
      return false;
    }
  }
  if (av.range.valid && fits_u128(v.width())) {
    const u128 x = to_u128(v);
    if (x < av.range.lo || x > av.range.hi) return false;
  }
  return true;
}

AbstractValue abstract_resize(const AbstractValue& av, int to_width,
                              Sign sign) {
  return {kb_resize(av.bits, to_width, sign),
          itv_resize(av.range, av.width(), to_width, sign)};
}

// ------------------------------------------------------ forward analysis --

AbstractAnalysis compute_abstract(const Graph& g) {
  obs::Span span("check.absint");
  AbstractAnalysis aa;
  aa.at_output_port.resize(static_cast<std::size_t>(g.node_count()));
  aa.at_edge.resize(static_cast<std::size_t>(g.edge_count()));
  aa.at_operand.resize(static_cast<std::size_t>(g.edge_count()));

  auto operand = [&](EdgeId eid) -> const AbstractValue& {
    return aa.at_operand[static_cast<std::size_t>(eid.value)];
  };

  for (NodeId id : g.freeze().topo) {
    const Node& n = g.node(id);
    // Deliver operands: first resize onto the edge, second onto the node.
    for (EdgeId eid : n.in) {
      const Edge& e = g.edge(eid);
      const AbstractValue carried = abstract_resize(
          aa.out(e.src), e.width, e.sign);
      aa.at_edge[static_cast<std::size_t>(eid.value)] = carried;
      aa.at_operand[static_cast<std::size_t>(eid.value)] =
          n.kind == OpKind::Extension
              ? abstract_resize(carried, n.width, n.ext_sign)
              : abstract_resize(carried, n.width, e.sign);
    }

    AbstractValue& out = aa.at_output_port[static_cast<std::size_t>(id.value)];
    switch (n.kind) {
      case OpKind::Input:
        out = AbstractValue::top(n.width);
        break;
      case OpKind::Const:
        out = AbstractValue::constant(n.value);
        break;
      case OpKind::Output:
      case OpKind::Extension:
        out = operand(n.in[0]);
        break;
      case OpKind::Add: {
        const AbstractValue& a = operand(n.in[0]);
        const AbstractValue& b = operand(n.in[1]);
        out = {kb_add(a.bits, b.bits, Tri::F, /*invert_b=*/false),
               itv_add(a.range, b.range, n.width)};
        break;
      }
      case OpKind::Sub: {
        const AbstractValue& a = operand(n.in[0]);
        const AbstractValue& b = operand(n.in[1]);
        out = {kb_add(a.bits, b.bits, Tri::T, /*invert_b=*/true),
               itv_sub(a.range, b.range, n.width)};
        break;
      }
      case OpKind::Mul: {
        const AbstractValue& a = operand(n.in[0]);
        const AbstractValue& b = operand(n.in[1]);
        out = {kb_mul(a.bits, b.bits), itv_mul(a.range, b.range, n.width)};
        break;
      }
      case OpKind::Neg: {
        const AbstractValue& a = operand(n.in[0]);
        out = {kb_add(KnownBits::constant(BitVector(n.width)), a.bits, Tri::T,
                      /*invert_b=*/true),
               itv_neg(a.range, n.width)};
        break;
      }
      case OpKind::Shl: {
        const AbstractValue& a = operand(n.in[0]);
        out = {kb_shl(a.bits, n.shift), itv_shl(a.range, n.shift, n.width)};
        break;
      }
      case OpKind::LtS:
      case OpKind::LtU:
      case OpKind::Eq: {
        const AbstractValue& a = operand(n.in[0]);
        const AbstractValue& b = operand(n.in[1]);
        const Tri r = n.kind == OpKind::LtS   ? decide_lts(a, b)
                      : n.kind == OpKind::LtU ? decide_ltu(a, b)
                                              : decide_eq(a, b);
        out.bits = kb_bool(n.width, r);
        out.range = fits_u128(n.width)
                        ? Interval{true, r == Tri::T ? 1u : 0u,
                                   r == Tri::F ? 0u : 1u}
                        : interval_top();
        break;
      }
    }
  }
  return aa;
}

// ------------------------------------------------------------------ lint --

bool contradicts(const AbstractValue& av, InfoContent c) {
  const int w = av.width();
  if (c.width >= w) return false;  // claims at full width are vacuous
  const KnownBits& kb = av.bits;
  const Interval& itv = av.range;
  if (c.sign == Sign::Unsigned || c.width == 0) {
    // The claim pins bits [c.width, w) to zero (a signed claim of width 0
    // also concretises to exactly {0}).
    for (int j = c.width; j < w; ++j) {
      if (kb.known.bit(j) && kb.value.bit(j)) return true;
    }
    if (itv.valid && fits_u128(c.width) && itv.lo >= pow2(c.width)) {
      return true;
    }
    return false;
  }
  // Signed claim: bits [c.width - 1, w) must all be equal.
  Tri seen = Tri::U;
  for (int j = c.width - 1; j < w; ++j) {
    const Tri t = tri_of(kb, j);
    if (t == Tri::U) continue;
    if (seen == Tri::U) {
      seen = t;
    } else if (seen != t) {
      return true;
    }
  }
  // Sign-extended values concretise to [0, 2^(i-1)) u [2^w - 2^(i-1), 2^w).
  if (itv.valid && fits_u128(w)) {
    const u128 half = pow2(c.width - 1);
    if (itv.lo >= half && itv.hi < pow2(w) - half) return true;
  }
  return false;
}

namespace {

/// Cross-domain consistency: a fully known bit pattern must lie inside the
/// interval. Failure is a checker bug (absint.internal), never an analysis
/// bug — kept as a cheap self-diagnostic.
void self_check(const AbstractAnalysis& aa, CheckReport& rep) {
  for (std::size_t i = 0; i < aa.at_output_port.size(); ++i) {
    const AbstractValue& av = aa.at_output_port[i];
    if (!av.range.valid || !fits_u128(av.width()) || !av.bits.all_known()) {
      continue;
    }
    const u128 v = to_u128(av.bits.value);
    if (v < av.range.lo || v > av.range.hi) {
      rep.add(Severity::Error, "absint.internal",
              "known-bits and interval domains are disjoint",
              Locus{"node", static_cast<int>(i), -1, {}});
    }
  }
}

void lint_claim(const AbstractValue& av, InfoContent c, int port_width,
                Locus locus, const char* what, CheckReport& rep) {
  if (c.width < 0 || c.width > port_width) {
    rep.add(Severity::Error, "ic.malformed",
            std::string(what) + " claim " + c.to_string() +
                " outside [0, " + std::to_string(port_width) + "]",
            std::move(locus));
    return;
  }
  if (contradicts(av, c)) {
    rep.add(Severity::Error, "ic.unsound",
            std::string(what) + " claim " + c.to_string() +
                " is violated by every reachable value (abstract "
                "interpretation proves the claimed extension bits differ)",
            std::move(locus));
  }
}

}  // namespace

CheckReport lint_info_content(const Graph& g, const analysis::InfoAnalysis& ia,
                              const AbstractAnalysis* pre) {
  obs::Span span("check.lint.info_content");
  CheckReport rep;
  const auto nn = static_cast<std::size_t>(g.node_count());
  const auto ne = static_cast<std::size_t>(g.edge_count());
  if (ia.at_output_port.size() != nn || ia.at_edge.size() != ne ||
      ia.at_operand.size() != ne) {
    rep.add(Severity::Error, "ic.stale",
            "info-content vectors sized for " +
                std::to_string(ia.at_output_port.size()) + " nodes / " +
                std::to_string(ia.at_edge.size()) +
                " edges, graph has " + std::to_string(nn) + " / " +
                std::to_string(ne) +
                " (graph mutated after the analysis ran)");
    return rep;
  }

  AbstractAnalysis local;
  const AbstractAnalysis& aa = pre ? *pre : (local = compute_abstract(g));
  self_check(aa, rep);

  for (const Node& n : g.nodes()) {
    lint_claim(aa.out(n.id), ia.out(n.id), n.width,
               Locus{"node", n.id.value, -1, g.name(n)}, "output-port", rep);
  }
  for (const Edge& e : g.edges()) {
    lint_claim(aa.edge(e.id), ia.edge(e.id), e.width,
               Locus{"edge", e.id.value, -1, {}}, "carried-edge", rep);
    const Node& dst = g.node(e.dst);
    lint_claim(aa.operand(e.id), ia.operand(e.id), dst.width,
               Locus{"edge", e.id.value, e.dst_port, {}}, "operand", rep);
  }
  return rep;
}

CheckReport lint_required_precision(const Graph& g,
                                    const analysis::RequiredPrecision& rp) {
  obs::Span span("check.lint.required_precision");
  CheckReport rep;
  const auto nn = static_cast<std::size_t>(g.node_count());
  if (rp.at_output_port.size() != nn || rp.at_input_port.size() != nn) {
    rep.add(Severity::Error, "rp.stale",
            "required-precision vectors sized for " +
                std::to_string(rp.at_output_port.size()) +
                " nodes, graph has " + std::to_string(nn) +
                " (graph mutated after the analysis ran)");
    return rep;
  }
  const analysis::RequiredPrecision fresh =
      analysis::compute_required_precision(g);
  for (const Node& n : g.nodes()) {
    const auto i = static_cast<std::size_t>(n.id.value);
    if (rp.at_output_port[i] != fresh.at_output_port[i] ||
        rp.at_input_port[i] != fresh.at_input_port[i]) {
      rep.add(Severity::Error, "rp.stale",
              "stored r(out)=" + std::to_string(rp.at_output_port[i]) +
                  " r(in)=" + std::to_string(rp.at_input_port[i]) +
                  ", fresh derivation gives r(out)=" +
                  std::to_string(fresh.at_output_port[i]) + " r(in)=" +
                  std::to_string(fresh.at_input_port[i]),
              Locus{"node", n.id.value, -1, g.name(n)});
    }
  }
  return rep;
}

}  // namespace dpmerge::check
