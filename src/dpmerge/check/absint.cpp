#include "dpmerge/check/absint.h"

#include <cstddef>
#include <string>

#include "dpmerge/check/absint_transfer.h"
#include "dpmerge/obs/obs.h"

namespace dpmerge::check {

namespace {

using analysis::InfoContent;
using dfg::Edge;
using dfg::EdgeId;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

// The transfer functions live in absint_transfer.h so the bidirectional
// fixpoint engine (absint_engine.cpp) reuses the exact same code — that
// sharing is what makes "v2 never weaker than v1" a structural fact rather
// than a test-enforced hope.
using namespace absdom;  // NOLINT(google-build-using-namespace)

}  // namespace

// ------------------------------------------------------------- KnownBits --

KnownBits KnownBits::constant(const BitVector& v) {
  BitVector known(v.width());
  for (int i = 0; i < v.width(); ++i) known.set_bit(i, true);
  return {known, v};
}

bool KnownBits::all_known() const {
  for (int i = 0; i < width(); ++i) {
    if (!known.bit(i)) return false;
  }
  return true;
}

int KnownBits::known_trailing_zeros() const {
  int n = 0;
  while (n < width() && known.bit(n) && !value.bit(n)) ++n;
  return n;
}

// --------------------------------------------------------- AbstractValue --

AbstractValue AbstractValue::top(int w) {
  return {KnownBits::top(w), interval_full(w)};
}

AbstractValue AbstractValue::constant(const BitVector& v) {
  AbstractValue av{KnownBits::constant(v), interval_top()};
  if (fits_u128(v.width())) av.range = interval_const(to_u128(v));
  return av;
}

bool contains(const AbstractValue& av, const BitVector& v) {
  if (v.width() != av.width()) return false;
  for (int i = 0; i < v.width(); ++i) {
    if (av.bits.known.bit(i) && av.bits.value.bit(i) != v.bit(i)) {
      return false;
    }
  }
  if (av.range.valid && fits_u128(v.width())) {
    const u128 x = to_u128(v);
    if (x < av.range.lo || x > av.range.hi) return false;
  }
  return true;
}

AbstractValue abstract_resize(const AbstractValue& av, int to_width,
                              Sign sign) {
  return {kb_resize(av.bits, to_width, sign),
          itv_resize(av.range, av.width(), to_width, sign)};
}

// ------------------------------------------------------ forward analysis --

AbstractAnalysis compute_abstract(const Graph& g) {
  obs::Span span("check.absint");
  AbstractAnalysis aa;
  aa.at_output_port.resize(static_cast<std::size_t>(g.node_count()));
  aa.at_edge.resize(static_cast<std::size_t>(g.edge_count()));
  aa.at_operand.resize(static_cast<std::size_t>(g.edge_count()));

  auto operand = [&](EdgeId eid) -> const AbstractValue& {
    return aa.at_operand[static_cast<std::size_t>(eid.value)];
  };

  for (NodeId id : g.freeze().topo) {
    const Node& n = g.node(id);
    // Deliver operands: first resize onto the edge, second onto the node.
    for (EdgeId eid : n.in) {
      const Edge& e = g.edge(eid);
      const AbstractValue carried = abstract_resize(
          aa.out(e.src), e.width, e.sign);
      aa.at_edge[static_cast<std::size_t>(eid.value)] = carried;
      aa.at_operand[static_cast<std::size_t>(eid.value)] =
          n.kind == OpKind::Extension
              ? abstract_resize(carried, n.width, n.ext_sign)
              : abstract_resize(carried, n.width, e.sign);
    }

    AbstractValue& out = aa.at_output_port[static_cast<std::size_t>(id.value)];
    switch (n.kind) {
      case OpKind::Input:
        out = AbstractValue::top(n.width);
        break;
      case OpKind::Const:
        out = AbstractValue::constant(n.value);
        break;
      case OpKind::Output:
      case OpKind::Extension:
        out = operand(n.in[0]);
        break;
      case OpKind::Add: {
        const AbstractValue& a = operand(n.in[0]);
        const AbstractValue& b = operand(n.in[1]);
        out = {kb_add(a.bits, b.bits, Tri::F, /*invert_b=*/false),
               itv_add(a.range, b.range, n.width)};
        break;
      }
      case OpKind::Sub: {
        const AbstractValue& a = operand(n.in[0]);
        const AbstractValue& b = operand(n.in[1]);
        out = {kb_add(a.bits, b.bits, Tri::T, /*invert_b=*/true),
               itv_sub(a.range, b.range, n.width)};
        break;
      }
      case OpKind::Mul: {
        const AbstractValue& a = operand(n.in[0]);
        const AbstractValue& b = operand(n.in[1]);
        out = {kb_mul(a.bits, b.bits), itv_mul(a.range, b.range, n.width)};
        break;
      }
      case OpKind::Neg: {
        const AbstractValue& a = operand(n.in[0]);
        out = {kb_add(KnownBits::constant(BitVector(n.width)), a.bits, Tri::T,
                      /*invert_b=*/true),
               itv_neg(a.range, n.width)};
        break;
      }
      case OpKind::Shl: {
        const AbstractValue& a = operand(n.in[0]);
        out = {kb_shl(a.bits, n.shift), itv_shl(a.range, n.shift, n.width)};
        break;
      }
      case OpKind::LtS:
      case OpKind::LtU:
      case OpKind::Eq: {
        const AbstractValue& a = operand(n.in[0]);
        const AbstractValue& b = operand(n.in[1]);
        const Tri r = n.kind == OpKind::LtS   ? decide_lts(a, b)
                      : n.kind == OpKind::LtU ? decide_ltu(a, b)
                                              : decide_eq(a, b);
        out.bits = kb_bool(n.width, r);
        out.range = fits_u128(n.width)
                        ? Interval{true, r == Tri::T ? 1u : 0u,
                                   r == Tri::F ? 0u : 1u}
                        : interval_top();
        break;
      }
    }
  }
  return aa;
}

// ------------------------------------------------------------------ lint --

bool contradicts(const AbstractValue& av, InfoContent c) {
  const int w = av.width();
  if (c.width >= w) return false;  // claims at full width are vacuous
  const KnownBits& kb = av.bits;
  const Interval& itv = av.range;
  if (c.sign == Sign::Unsigned || c.width == 0) {
    // The claim pins bits [c.width, w) to zero (a signed claim of width 0
    // also concretises to exactly {0}).
    for (int j = c.width; j < w; ++j) {
      if (kb.known.bit(j) && kb.value.bit(j)) return true;
    }
    if (itv.valid && fits_u128(c.width) && itv.lo >= pow2(c.width)) {
      return true;
    }
    return false;
  }
  // Signed claim: bits [c.width - 1, w) must all be equal.
  Tri seen = Tri::U;
  for (int j = c.width - 1; j < w; ++j) {
    const Tri t = tri_of(kb, j);
    if (t == Tri::U) continue;
    if (seen == Tri::U) {
      seen = t;
    } else if (seen != t) {
      return true;
    }
  }
  // Sign-extended values concretise to [0, 2^(i-1)) u [2^w - 2^(i-1), 2^w).
  if (itv.valid && fits_u128(w)) {
    const u128 half = pow2(c.width - 1);
    if (itv.lo >= half && itv.hi < pow2(w) - half) return true;
  }
  return false;
}

namespace {

/// Cross-domain consistency: a fully known bit pattern must lie inside the
/// interval. Failure is a checker bug (absint.internal), never an analysis
/// bug — kept as a cheap self-diagnostic.
void self_check(const AbstractAnalysis& aa, CheckReport& rep) {
  for (std::size_t i = 0; i < aa.at_output_port.size(); ++i) {
    const AbstractValue& av = aa.at_output_port[i];
    if (!av.range.valid || !fits_u128(av.width()) || !av.bits.all_known()) {
      continue;
    }
    const u128 v = to_u128(av.bits.value);
    if (v < av.range.lo || v > av.range.hi) {
      rep.add(Severity::Error, "absint.internal",
              "known-bits and interval domains are disjoint",
              Locus{"node", static_cast<int>(i), -1, {}});
    }
  }
}

void lint_claim(const AbstractValue& av, InfoContent c, int port_width,
                Locus locus, const char* what, CheckReport& rep) {
  if (c.width < 0 || c.width > port_width) {
    rep.add(Severity::Error, "ic.malformed",
            std::string(what) + " claim " + c.to_string() +
                " outside [0, " + std::to_string(port_width) + "]",
            std::move(locus));
    return;
  }
  if (contradicts(av, c)) {
    rep.add(Severity::Error, "ic.unsound",
            std::string(what) + " claim " + c.to_string() +
                " is violated by every reachable value (abstract "
                "interpretation proves the claimed extension bits differ)",
            std::move(locus));
  }
}

}  // namespace

CheckReport lint_info_content(const Graph& g, const analysis::InfoAnalysis& ia,
                              const AbstractAnalysis* pre) {
  obs::Span span("check.lint.info_content");
  CheckReport rep;
  const auto nn = static_cast<std::size_t>(g.node_count());
  const auto ne = static_cast<std::size_t>(g.edge_count());
  if (ia.at_output_port.size() != nn || ia.at_edge.size() != ne ||
      ia.at_operand.size() != ne) {
    rep.add(Severity::Error, "ic.stale",
            "info-content vectors sized for " +
                std::to_string(ia.at_output_port.size()) + " nodes / " +
                std::to_string(ia.at_edge.size()) +
                " edges, graph has " + std::to_string(nn) + " / " +
                std::to_string(ne) +
                " (graph mutated after the analysis ran)");
    return rep;
  }

  AbstractAnalysis local;
  const AbstractAnalysis& aa = pre ? *pre : (local = compute_abstract(g));
  self_check(aa, rep);

  for (const Node& n : g.nodes()) {
    lint_claim(aa.out(n.id), ia.out(n.id), n.width,
               Locus{"node", n.id.value, -1, g.name(n)}, "output-port", rep);
  }
  for (const Edge& e : g.edges()) {
    lint_claim(aa.edge(e.id), ia.edge(e.id), e.width,
               Locus{"edge", e.id.value, -1, {}}, "carried-edge", rep);
    const Node& dst = g.node(e.dst);
    lint_claim(aa.operand(e.id), ia.operand(e.id), dst.width,
               Locus{"edge", e.id.value, e.dst_port, {}}, "operand", rep);
  }
  return rep;
}

CheckReport lint_required_precision(const Graph& g,
                                    const analysis::RequiredPrecision& rp) {
  obs::Span span("check.lint.required_precision");
  CheckReport rep;
  const auto nn = static_cast<std::size_t>(g.node_count());
  if (rp.at_output_port.size() != nn || rp.at_input_port.size() != nn) {
    rep.add(Severity::Error, "rp.stale",
            "required-precision vectors sized for " +
                std::to_string(rp.at_output_port.size()) +
                " nodes, graph has " + std::to_string(nn) +
                " (graph mutated after the analysis ran)");
    return rep;
  }
  const analysis::RequiredPrecision fresh =
      analysis::compute_required_precision(g);
  for (const Node& n : g.nodes()) {
    const auto i = static_cast<std::size_t>(n.id.value);
    if (rp.at_output_port[i] != fresh.at_output_port[i] ||
        rp.at_input_port[i] != fresh.at_input_port[i]) {
      rep.add(Severity::Error, "rp.stale",
              "stored r(out)=" + std::to_string(rp.at_output_port[i]) +
                  " r(in)=" + std::to_string(rp.at_input_port[i]) +
                  ", fresh derivation gives r(out)=" +
                  std::to_string(fresh.at_output_port[i]) + " r(in)=" +
                  std::to_string(fresh.at_input_port[i]),
              Locus{"node", n.id.value, -1, g.name(n)});
    }
  }
  return rep;
}

}  // namespace dpmerge::check
