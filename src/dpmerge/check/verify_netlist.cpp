#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "dpmerge/check/check.h"
#include "dpmerge/obs/obs.h"

namespace dpmerge::check {

namespace {

using netlist::Bus;
using netlist::CellLibrary;
using netlist::Gate;
using netlist::NetId;
using netlist::Netlist;

/// Iterative Tarjan SCC over the gate graph (gate -> gates reading its
/// output), given in CSR form: gate g's successors are
/// readers[offsets[g] .. offsets[g+1]). Appends one finding per non-trivial
/// SCC; self-loops (a gate reading its own output) count as non-trivial.
void check_comb_loops(const Netlist& n, const std::vector<int>& offsets,
                      const std::vector<int>& readers, CheckReport& rep) {
  const int ng = n.gate_count();
  auto succ_begin = [&](std::size_t g) {
    return static_cast<std::size_t>(offsets[g]);
  };
  auto succ_count = [&](std::size_t g) {
    return static_cast<std::size_t>(offsets[g + 1] - offsets[g]);
  };
  constexpr int kUnvisited = -1;
  std::vector<int> index(static_cast<std::size_t>(ng), kUnvisited);
  std::vector<int> lowlink(static_cast<std::size_t>(ng), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(ng), false);
  std::vector<int> stack;
  int next_index = 0;

  struct Frame {
    int gate;
    std::size_t child;
  };
  std::vector<Frame> dfs;
  std::vector<int> scc;  // hoisted: every gate closes an SCC on acyclic nets

  for (int root = 0; root < ng; ++root) {
    if (index[static_cast<std::size_t>(root)] != kUnvisited) continue;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto gi = static_cast<std::size_t>(f.gate);
      if (f.child == 0) {
        index[gi] = lowlink[gi] = next_index++;
        stack.push_back(f.gate);
        on_stack[gi] = true;
      }
      if (f.child < succ_count(gi)) {
        const int succ = readers[succ_begin(gi) + f.child++];
        const auto si = static_cast<std::size_t>(succ);
        if (index[si] == kUnvisited) {
          dfs.push_back({succ, 0});
        } else if (on_stack[si]) {
          lowlink[gi] = std::min(lowlink[gi], index[si]);
        }
        continue;
      }
      // Finished this gate: close the SCC if it is a root.
      if (lowlink[gi] == index[gi]) {
        scc.clear();
        for (;;) {
          const int m = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(m)] = false;
          scc.push_back(m);
          if (m == f.gate) break;
        }
        const auto succ_first = readers.begin() +
                                static_cast<std::ptrdiff_t>(succ_begin(gi));
        const bool self_loop =
            scc.size() == 1 &&
            std::find(succ_first,
                      succ_first + static_cast<std::ptrdiff_t>(succ_count(gi)),
                      f.gate) != succ_first + static_cast<std::ptrdiff_t>(
                                                  succ_count(gi));
        if (scc.size() > 1 || self_loop) {
          std::sort(scc.begin(), scc.end());
          std::string members;
          for (std::size_t i = 0; i < scc.size() && i < 8; ++i) {
            if (i) members += " ";
            members += std::to_string(scc[i]);
          }
          if (scc.size() > 8) members += " ...";
          rep.add(Severity::Error, "net.comb-loop",
                  "combinational loop through " + std::to_string(scc.size()) +
                      " gate(s) {" + members + "}",
                  Locus{"gate", scc.front(), -1, {}});
        }
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        Frame& parent = dfs.back();
        const auto pi = static_cast<std::size_t>(parent.gate);
        lowlink[pi] = std::min(lowlink[pi], lowlink[gi]);
      }
    }
  }
}

}  // namespace

CheckReport verify(const Netlist& n, const CellLibrary* lib,
                   NetVerifyOptions opts) {
  (void)lib;  // the drive-level bound is uniform across library instances
  obs::Span span("check.verify.netlist");
  CheckReport rep;
  const int nets = n.net_count();
  const int ng = n.gate_count();
  auto net_ok = [&](NetId id) { return id.value >= 0 && id.value < nets; };

  // Byte flags, not vector<bool>: the census sweep is the whole cost of the
  // Errors-policy boundary check and bit RMWs show up at this scale.
  std::vector<int> drivers(static_cast<std::size_t>(nets), 0);
  std::vector<unsigned char> is_pi(static_cast<std::size_t>(nets), 0);
  std::vector<unsigned char> is_read(static_cast<std::size_t>(nets), 0);
  if (nets >= 2) is_pi[0] = is_pi[1] = 1;  // designated constants

  for (const Bus& b : n.inputs()) {
    for (NetId bit : b.signal.bits) {
      if (!net_ok(bit)) {
        rep.add(Severity::Error, "net.range",
                "input bus '" + b.name + "' references net " +
                    std::to_string(bit.value) + " out of range",
                Locus{"net", bit.value, -1, b.name});
        continue;
      }
      is_pi[static_cast<std::size_t>(bit.value)] = 1;
    }
  }

  // First sweep: structural gate checks + driver census. The Locus is built
  // lazily — constructing one per gate shows up on the enforce hot path.
  for (int gi = 0; gi < ng; ++gi) {
    const Gate& g = n.gates()[static_cast<std::size_t>(gi)];
    auto at = [gi] { return Locus{"gate", gi, -1, {}}; };
    if (g.id.value != gi) {
      rep.add(Severity::Error, "net.gate.id",
              "gate at index " + std::to_string(gi) + " carries id " +
                  std::to_string(g.id.value),
              at());
    }
    const int want = netlist::cell_input_count(g.type);
    if (static_cast<int>(g.inputs.size()) != want) {
      rep.add(Severity::Error, "net.gate.arity",
              std::string(netlist::to_string(g.type)) + " gate " +
                  std::to_string(gi) + ": expected " + std::to_string(want) +
                  " input pin(s), has " + std::to_string(g.inputs.size()),
              at());
    }
    if (g.drive < 0 || g.drive >= netlist::kDriveLevels) {
      rep.add(Severity::Error, "net.gate.drive",
              "gate " + std::to_string(gi) + ": drive index " +
                  std::to_string(g.drive) + " outside the library's " +
                  std::to_string(netlist::kDriveLevels) + " variants",
              at());
    }
    for (NetId in : g.inputs) {
      if (!net_ok(in)) {
        rep.add(Severity::Error, "net.range",
                "gate " + std::to_string(gi) + " reads net " +
                    std::to_string(in.value) + " out of range",
                at());
        continue;
      }
      is_read[static_cast<std::size_t>(in.value)] = 1;
    }
    if (!net_ok(g.output)) {
      rep.add(Severity::Error, "net.range",
              "gate " + std::to_string(gi) + " drives net " +
                  std::to_string(g.output.value) + " out of range",
              at());
      continue;
    }
    ++drivers[static_cast<std::size_t>(g.output.value)];
    if (n.is_const(g.output)) {
      rep.add(Severity::Error, "net.const-driven",
              "gate " + std::to_string(gi) + " drives constant net " +
                  std::to_string(g.output.value),
              at());
    } else if (is_pi[static_cast<std::size_t>(g.output.value)]) {
      rep.add(Severity::Error, "net.input-driven",
              "gate " + std::to_string(gi) + " drives primary-input net " +
                  std::to_string(g.output.value),
              at());
    }
  }

  // Per-net sweep (needs the full driver census): multi-driven nets and
  // floating-input *detection*. The first sweep already recorded which nets
  // gates read, so the clean path never re-walks the gates; the precise
  // (gate, pin) loci are recovered with a second gate sweep only when a
  // floating net actually exists.
  auto undriven = [&](NetId id) {
    return drivers[static_cast<std::size_t>(id.value)] == 0 &&
           !is_pi[static_cast<std::size_t>(id.value)];
  };
  bool any_floating = false;
  for (int net = 0; net < nets; ++net) {
    const auto ni = static_cast<std::size_t>(net);
    if (drivers[ni] > 1) {
      rep.add(Severity::Error, "net.multi-driven",
              "net " + std::to_string(net) + " has " +
                  std::to_string(drivers[ni]) + " drivers",
              Locus{"net", net, -1, {}});
    }
    if (is_read[ni] && drivers[ni] == 0 && !is_pi[ni]) any_floating = true;
  }
  if (any_floating) {
    for (int gi = 0; gi < ng; ++gi) {
      const Gate& g = n.gates()[static_cast<std::size_t>(gi)];
      for (std::size_t pin = 0; pin < g.inputs.size(); ++pin) {
        const NetId in = g.inputs[pin];
        if (net_ok(in) && undriven(in)) {
          rep.add(Severity::Error, "net.floating-input",
                  "gate " + std::to_string(gi) + " pin " +
                      std::to_string(pin) + " reads floating net " +
                      std::to_string(in.value),
                  Locus{"gate", gi, static_cast<int>(pin), {}});
        }
      }
    }
  }

  for (const Bus& b : n.outputs()) {
    for (std::size_t bit = 0; bit < b.signal.bits.size(); ++bit) {
      const NetId id = b.signal.bits[bit];
      if (!net_ok(id)) {
        rep.add(Severity::Error, "net.range",
                "output bus '" + b.name + "' references net " +
                    std::to_string(id.value) + " out of range",
                Locus{"net", id.value, static_cast<int>(bit), b.name});
        continue;
      }
      is_read[static_cast<std::size_t>(id.value)] = 1;
      if (undriven(id)) {
        rep.add(Severity::Error, "net.undriven-output",
                "output bus '" + b.name + "' bit " + std::to_string(bit) +
                    " (net " + std::to_string(id.value) + ") is undriven",
                Locus{"net", id.value, static_cast<int>(bit), b.name});
      }
    }
  }

  bool ranges_ok = !rep.has_rule("net.range") && !rep.has_rule("net.gate.id");
  if (ranges_ok) {
    if (opts.warnings) {
      for (int gi = 0; gi < ng; ++gi) {
        const Gate& g = n.gates()[static_cast<std::size_t>(gi)];
        if (!is_read[static_cast<std::size_t>(g.output.value)]) {
          rep.add(Severity::Warning, "net.unread-gate",
                  std::string(netlist::to_string(g.type)) + " gate " +
                      std::to_string(gi) + " output (net " +
                      std::to_string(g.output.value) + ") is never read",
                  Locus{"gate", gi, -1, {}});
        }
      }
    }
    if (!opts.comb_loops) {
      obs::stat_add("check.verify.netlist.runs");
      return rep;
    }
    // Gate graph for the SCC sweep (successor = any gate reading my output),
    // flattened into CSR form so verification stays allocation-light on the
    // hot enforce path.
    std::vector<int> driver_gate(static_cast<std::size_t>(nets), -1);
    for (int gi = 0; gi < ng; ++gi) {
      driver_gate[static_cast<std::size_t>(
          n.gates()[static_cast<std::size_t>(gi)].output.value)] = gi;
    }
    std::vector<int> degree(static_cast<std::size_t>(ng) + 1, 0);
    for (int gi = 0; gi < ng; ++gi) {
      for (NetId in : n.gates()[static_cast<std::size_t>(gi)].inputs) {
        const int d = driver_gate[static_cast<std::size_t>(in.value)];
        if (d >= 0) ++degree[static_cast<std::size_t>(d) + 1];
      }
    }
    for (int gi = 0; gi < ng; ++gi) {
      degree[static_cast<std::size_t>(gi) + 1] +=
          degree[static_cast<std::size_t>(gi)];
    }
    std::vector<int> readers(static_cast<std::size_t>(
        degree[static_cast<std::size_t>(ng)]));
    std::vector<int> cursor(degree.begin(), degree.end() - 1);
    for (int gi = 0; gi < ng; ++gi) {
      for (NetId in : n.gates()[static_cast<std::size_t>(gi)].inputs) {
        const int d = driver_gate[static_cast<std::size_t>(in.value)];
        if (d >= 0) {
          readers[static_cast<std::size_t>(
              cursor[static_cast<std::size_t>(d)]++)] = gi;
        }
      }
    }
    check_comb_loops(n, degree, readers, rep);
  }

  obs::stat_add("check.verify.netlist.runs");
  return rep;
}

}  // namespace dpmerge::check
