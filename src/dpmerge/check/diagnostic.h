#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dpmerge::check {

/// Severity of a static-check finding. `Error` findings mean the artifact is
/// structurally broken or an analysis claim is provably unsound — pass
/// boundaries refuse to continue past them (see check.h). `Warning` findings
/// are suspicious-but-legal constructions (e.g. a shift that discards the
/// whole operand); they are reported and counted but never fatal.
enum class Severity : unsigned char {
  Note,
  Warning,
  Error,
};

std::string_view to_string(Severity s);

/// Where a diagnostic points: an IR object (node/edge), a netlist object
/// (net/gate), or a source location (line/column) for frontend findings.
/// `id` is the object id or line number; `aux` is a port index or column
/// where meaningful, -1 otherwise.
struct Locus {
  std::string kind;  ///< "node" | "edge" | "net" | "gate" | "line" | ""
  int id = -1;
  int aux = -1;
  std::string name;  ///< node/bus name or offending token, when available

  std::string to_string() const;
};

/// One structured finding. `rule` is a stable dotted identifier from the rule
/// catalog (DESIGN.md §9), e.g. "dfg.graph.cycle" or "net.multi-driven" —
/// tests and tooling match on it, so existing ids never change meaning.
struct Diagnostic {
  Severity severity = Severity::Error;
  std::string rule;
  std::string message;
  Locus locus;

  std::string to_string() const;
};

/// An ordered collection of findings from one checker run. Reports compose
/// (`merge`) so a pass boundary can stack the IR verifier, the netlist
/// verifier and the analysis lints into one result.
class CheckReport {
 public:
  void add(Severity severity, std::string rule, std::string message,
           Locus locus = {});
  void merge(CheckReport other);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  int errors() const { return errors_; }
  int warnings() const { return warnings_; }

  /// No errors (warnings allowed) — the gate pass boundaries use.
  bool ok() const { return errors_ == 0; }
  /// Nothing at all, not even warnings.
  bool clean() const { return diags_.empty(); }

  bool has_rule(std::string_view rule) const;
  /// Count of findings carrying `rule`.
  int count_rule(std::string_view rule) const;

  /// One line per finding; empty string when clean.
  std::string to_text() const;

  /// Appends one JSON object:
  ///   {"errors":E,"warnings":W,"diagnostics":[{"severity":...,"rule":...,
  ///    "message":...,"locus":{"kind":...,"id":N,"aux":N,"name":...}},...]}
  /// Serialised with the obs JSON helpers so artifacts stay diffable.
  void to_json(std::string& out) const;

 private:
  std::vector<Diagnostic> diags_;
  int errors_ = 0;
  int warnings_ = 0;
};

}  // namespace dpmerge::check
