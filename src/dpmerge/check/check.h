#pragma once

/// dpmerge::check — static IR/netlist verification and pass-boundary
/// invariant enforcement (DESIGN.md §9).
///
/// Three engines:
///   - `verify(dfg::Graph)`: IR well-formedness (width consistency,
///     acyclicity, arity, port bookkeeping, sign-annotation legality,
///     constant canonicality).
///   - `verify(netlist::Netlist)`: structural netlist checks (multiply-driven
///     nets, floating cell inputs, combinational loops via Tarjan SCC,
///     undriven primary outputs, cell-pin arity).
///   - absint.h: abstract-interpretation soundness lint cross-checking
///     `analysis::info_content` / `analysis::required_precision` claims
///     against known-bits + interval domains.
///
/// Every transform, the clusterer and each synth::flow stage calls the
/// `enforce*` hooks at its boundaries. The hooks are gated by a process-wide
/// `CheckPolicy`:
///   - `Off`      (default): one relaxed atomic load and return — exactly
///                zero checking work, so production flows pay nothing.
///   - `Errors`   : structural verifiers run at pass boundaries (linear
///                sweeps only on netlists — cheap enough to leave on); any
///                Error finding throws `CheckFailure`.
///   - `Paranoid` : additionally re-verifies pass *inputs*, runs the netlist
///                combinational-loop (SCC) sweep, and runs the abstract-
///                interpretation soundness lint wherever analysis results
///                cross a pass boundary.
/// Findings are also counted into the current obs::StatSink ("check.runs",
/// "check.errors", "check.warnings", "check.rule.<id>"), so they surface in
/// FlowReport stage stats and the --stats-json artifacts.

#include <atomic>
#include <optional>
#include <stdexcept>
#include <string_view>

#include "dpmerge/check/diagnostic.h"
#include "dpmerge/dfg/graph.h"
#include "dpmerge/netlist/cell.h"
#include "dpmerge/netlist/netlist.h"

namespace dpmerge::analysis {
struct InfoAnalysis;
struct RequiredPrecision;
}  // namespace dpmerge::analysis

namespace dpmerge::check {

// ---------------------------------------------------------------- policy --

enum class CheckPolicy : unsigned char {
  Off = 0,
  Errors = 1,
  Paranoid = 2,
};

std::string_view to_string(CheckPolicy p);
std::optional<CheckPolicy> parse_policy(std::string_view s);

namespace detail {
inline std::atomic<unsigned char>& policy_cell() {
  static std::atomic<unsigned char> p{0};
  return p;
}
}  // namespace detail

inline CheckPolicy policy() {
  return static_cast<CheckPolicy>(
      detail::policy_cell().load(std::memory_order_relaxed));
}
inline void set_policy(CheckPolicy p) {
  detail::policy_cell().store(static_cast<unsigned char>(p),
                              std::memory_order_relaxed);
}

/// RAII policy override, restoring the previous policy on scope exit (tests
/// and the lint CLI use this; flows normally inherit the process policy).
class PolicyScope {
 public:
  explicit PolicyScope(CheckPolicy p) : prev_(policy()) { set_policy(p); }
  ~PolicyScope() { set_policy(prev_); }
  PolicyScope(const PolicyScope&) = delete;
  PolicyScope& operator=(const PolicyScope&) = delete;

 private:
  CheckPolicy prev_;
};

// ------------------------------------------------------------- verifiers --

/// IR verifier for DFGs. Rule catalog (all Error unless noted):
///   dfg.node.id          node id does not match its storage index
///   dfg.node.width       non-positive node width
///   dfg.node.arity       operand count differs from operand_count(kind)
///   dfg.port.unconnected input port with no edge
///   dfg.port.bookkeeping in/out edge lists inconsistent with edge endpoints
///   dfg.edge.id          edge id does not match its storage index
///   dfg.edge.endpoints   edge src/dst out of range
///   dfg.edge.width       non-positive edge width
///   dfg.edge.duplicate-port  two edges claim the same (dst, port)
///   dfg.output.fanout    Output node with out-edges
///   dfg.const.canonical  Const value width differs from the node width
///   dfg.shl.shift        negative shift, or shift attribute on a non-Shl node
///   dfg.shl.wide-shift   (Warning) shift >= width discards the whole operand
///   dfg.sign.comparator  edge sourced at a comparator marked Signed (the
///                        1-bit result is zero-padded; a signed resize of it
///                        reinterprets 1 as -1)
///   dfg.graph.cycle      graph contains a directed cycle
///   dfg.graph.no-outputs (Warning) no Output node — required precision is 0
///                        everywhere and every analysis claim is vacuous
CheckReport verify(const dfg::Graph& g);

/// Structural netlist verifier. Rule catalog (all Error unless noted):
///   net.range            net id out of [0, net_count)
///   net.gate.id          gate id does not match its storage index
///   net.gate.arity       pin count differs from cell_input_count(type)
///   net.gate.drive       drive-strength index outside the library's variants
///   net.multi-driven     more than one gate drives a net
///   net.const-driven     a gate drives one of the designated constant nets
///   net.input-driven     a gate drives a primary-input bit
///   net.floating-input   gate input net with no driver that is neither a
///                        primary input nor a constant
///   net.undriven-output  primary-output bit with no driver (and not PI/const)
///   net.comb-loop        combinational cycle (one finding per Tarjan SCC)
///   net.unread-gate      (Warning) gate output read by nothing and absent
///                        from every output bus (dead logic)
/// Netlist verifier cost knobs. The full verify costs about as much as
/// synthesis itself on the table-1 designs (it walks every gate and pin,
/// builds a CSR gate graph and runs Tarjan), so the always-on `Errors`
/// boundary runs only the linear sweeps:
///   - `warnings=false` skips the Warning-severity sweeps — synthesized
///     netlists legitimately keep unread helper gates (unused carry tails),
///     and emitting hundreds of warning diagnostics per flow dominates cost.
///   - `comb_loops=false` skips the SCC sweep (net.comb-loop), the single
///     most expensive check. Paranoid boundaries and direct verify() calls
///     keep it on.
struct NetVerifyOptions {
  bool warnings = true;
  bool comb_loops = true;
};

/// `lib` controls the drive-level bound; the default library is assumed when
/// null.
CheckReport verify(const netlist::Netlist& n,
                   const netlist::CellLibrary* lib = nullptr,
                   NetVerifyOptions opts = {});

// ------------------------------------------------- boundary enforcement --

/// Thrown by the enforce hooks when a pass boundary check finds errors.
class CheckFailure : public std::runtime_error {
 public:
  CheckFailure(std::string site, CheckReport report);
  const std::string& site() const { return site_; }
  const CheckReport& report() const { return report_; }

 private:
  std::string site_;
  CheckReport report_;
};

namespace detail {
void do_enforce(const dfg::Graph& g, std::string_view site);
void do_enforce(const netlist::Netlist& n, std::string_view site);
void do_enforce_analyses(const dfg::Graph& g,
                         const analysis::InfoAnalysis& ia,
                         const analysis::RequiredPrecision* rp,
                         std::string_view site);
}  // namespace detail

/// Post-condition check: verifies the artifact a pass produced. Runs under
/// `Errors` and `Paranoid`; free under `Off`.
inline void enforce(const dfg::Graph& g, std::string_view site) {
  if (policy() == CheckPolicy::Off) return;
  detail::do_enforce(g, site);
}
inline void enforce(const netlist::Netlist& n, std::string_view site) {
  if (policy() == CheckPolicy::Off) return;
  detail::do_enforce(n, site);
}

/// Pre-condition check: verifies the artifact a pass consumes. Paranoid only
/// (a well-behaved pipeline already checked it as the previous post).
inline void enforce_pre(const dfg::Graph& g, std::string_view site) {
  if (policy() != CheckPolicy::Paranoid) return;
  detail::do_enforce(g, site);
}

/// Analysis-soundness check at boundaries where information-content /
/// required-precision results cross into a consumer (the clusterer, the
/// synthesizer). Runs the abstract-interpretation lint (absint.h) and the
/// staleness re-derivations. Paranoid only. `rp` may be null.
inline void enforce_analyses(const dfg::Graph& g,
                             const analysis::InfoAnalysis& ia,
                             const analysis::RequiredPrecision* rp,
                             std::string_view site) {
  if (policy() != CheckPolicy::Paranoid) return;
  detail::do_enforce_analyses(g, ia, rp, site);
}

}  // namespace dpmerge::check
