#include "dpmerge/analysis/required_precision.h"

#include <algorithm>
#include <cstddef>
#include <span>

#include "dpmerge/obs/obs.h"
#include "dpmerge/support/access_audit.h"
#include "dpmerge/support/thread_pool.h"

namespace dpmerge::analysis {

using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

RequiredPrecision compute_required_precision(const Graph& g, int threads) {
  obs::Span span("analysis.required_precision");
  obs::stat_add("analysis.required_precision.runs");
  const dfg::Csr& c = g.freeze();
  RequiredPrecision rp;
  rp.at_output_port.assign(static_cast<std::size_t>(g.node_count()), 0);
  rp.at_input_port.assign(static_cast<std::size_t>(g.node_count()), 0);

  // One node's r values depend only on its consumers' at_input_port (all at
  // a strictly smaller reverse level), so the reverse-level-parallel
  // schedule writes exactly what the serial reverse-topo sweep writes.
  auto visit = [&](NodeId id) {
    const Node& n = g.node(id);
    const auto idx = static_cast<std::size_t>(n.id.value);
    support::audit::audit_write(support::audit::Domain::RpNode, n.id.value);
    if (n.kind == OpKind::Output) {
      // Base case of Definition 4.1: r(input port of an output node) = w(N).
      rp.at_input_port[idx] = n.width;
      rp.at_output_port[idx] = n.width;  // no output port; convenience value
      return;
    }
    // Output port: max over out-edges of min{w(e), r(p_d)}.
    int r_out = 0;
    for (std::int32_t eid : c.out(id)) {
      const dfg::Edge& e = g.edge(dfg::EdgeId{eid});
      support::audit::audit_read(support::audit::Domain::RpNode, e.dst.value);
      r_out = std::max(r_out,
                       std::min(e.width, rp.at_input_port[static_cast<std::size_t>(
                                             e.dst.value)]));
    }
    // Nodes with no fanout (possible only in malformed/partial graphs):
    // everything they compute is unobservable; keep r = 0.
    rp.at_output_port[idx] = r_out;
    // Input ports of a non-output node: min{r(p_o), w(N)} (Definition 4.1),
    // with op-specific transfers for the extended operator set:
    //  - Shl: operand bit k lands at k + shift, so only r_out - shift low
    //    operand bits are observable;
    //  - comparators: every operand bit affects the 1-bit result, so the
    //    full comparison width is required whenever the result is observed.
    if (n.kind == OpKind::Shl) {
      rp.at_input_port[idx] =
          std::min(std::max(r_out - n.shift, 0), n.width);
    } else if (dfg::is_comparator(n.kind)) {
      rp.at_input_port[idx] = r_out >= 1 ? n.width : 0;
    } else {
      rp.at_input_port[idx] = std::min(r_out, n.width);
    }
  };

  if (threads == 1) {
    // Reverse topological: consumers before producers.
    for (auto it = c.topo.rbegin(); it != c.topo.rend(); ++it) visit(*it);
    return rp;
  }
  auto& pool = support::ThreadPool::shared();
  support::audit::JobLabel job_label("rp.rlevel_sweep");
  for (int l = 0; l < c.num_rlevels(); ++l) {
    const std::span<const NodeId> lv = c.rlevel_span(l);
    pool.parallel_for_chunks(
        static_cast<int>(lv.size()), /*grain=*/256,
        [&](int b, int e) {
          for (int i = b; i < e; ++i) visit(lv[static_cast<std::size_t>(i)]);
        },
        threads);
  }
  return rp;
}

}  // namespace dpmerge::analysis
