#include "dpmerge/analysis/info_content.h"

#include <algorithm>
#include <cstddef>
#include <span>

#include "dpmerge/obs/obs.h"
#include "dpmerge/support/access_audit.h"
#include "dpmerge/support/thread_pool.h"

namespace dpmerge::analysis {

using dfg::Edge;
using dfg::EdgeId;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

std::string InfoContent::to_string() const {
  return "<" + std::to_string(width) + ", " +
         (sign == Sign::Signed ? "s" : "u") + ">";
}

namespace {

/// <i,u> viewed as a signed claim costs one extra bit (the 0 sign bit);
/// signed claims are returned unchanged.
InfoContent as_signed(InfoContent a) {
  if (a.sign == Sign::Signed) return a;
  return {a.width + 1, Sign::Signed};
}

}  // namespace

InfoContent ic_add(InfoContent a, InfoContent b) {
  if (a.width == 0) return b;  // adding the constant 0
  if (b.width == 0) return a;
  if (a.sign == b.sign) {
    return {std::max(a.width, b.width) + 1, a.sign};  // Lemma 5.4
  }
  // Mixed signedness: normalise to signed first (sound variant; DESIGN.md §2).
  const InfoContent sa = as_signed(a);
  const InfoContent sb = as_signed(b);
  return {std::max(sa.width, sb.width) + 1, Sign::Signed};
}

InfoContent ic_sub(InfoContent a, InfoContent b) {
  if (b.width == 0) return a;  // subtracting the constant 0
  if (a.sign == b.sign) {
    // Lemma 5.4: sound for u-u as well as s-s (range analysis in DESIGN.md).
    return {std::max(a.width, b.width) + 1, Sign::Signed};
  }
  const InfoContent sa = as_signed(a);
  const InfoContent sb = as_signed(b);
  return {std::max(sa.width, sb.width) + 1, Sign::Signed};
}

InfoContent ic_mul(InfoContent a, InfoContent b) {
  if (a.width == 0 || b.width == 0) return {0, Sign::Unsigned};  // times 0
  return {a.width + b.width, a.sign | b.sign};  // Lemma 5.4
}

InfoContent ic_neg(InfoContent a) {
  if (a.width == 0) return a;  // -0
  return {a.width + 1, Sign::Signed};  // Lemma 5.4
}

InfoContent ic_meet(InfoContent a, InfoContent b) {
  return b.width < a.width ? b : a;
}

InfoContent ic_clip(InfoContent ic, int width) {
  if (ic.width >= width) return {width, ic.sign};
  return ic;
}

InfoContent ic_resize(InfoContent ic, int from_width, int to_width, Sign ext) {
  if (to_width <= from_width) {
    // Truncation: a t-extension of i LSBs truncated to k >= i bits is still a
    // t-extension of its i LSBs; truncated below i the claim becomes the
    // vacuous <k, t>.
    return {std::min(ic.width, to_width), ic.sign};
  }
  // Strict widening by `ext`.
  if (ic.width >= from_width) {
    // The claim was vacuous for the carrier; the extension itself creates the
    // structure: the result is an ext-extension of its from_width LSBs.
    return {from_width, ext};
  }
  if (ic.sign == ext) return ic;
  if (ic.sign == Sign::Unsigned && ext == Sign::Signed) {
    // The paper's "interesting case": the MSB of the carrier is 0 (strict
    // unsigned content), so sign extension pads zeros; the data stays
    // unsigned.
    return ic;
  }
  // Signed content zero-padded: bits [i, from_width) may be ones, the pad is
  // zeros; only the full original width is claimable, as unsigned.
  return {from_width, Sign::Unsigned};
}

namespace {

InfoContent const_info(const BitVector& v) {
  const int iu = v.min_extension_width(Sign::Unsigned);
  const int is = v.min_extension_width(Sign::Signed);
  if (iu <= is) return {iu, Sign::Unsigned};
  return {is, Sign::Signed};
}

}  // namespace

InfoAnalysis compute_info_content(const Graph& g,
                                  const InfoRefinements& refinements,
                                  int threads) {
  obs::Span span("analysis.info_content");
  obs::stat_add("analysis.info_content.runs");
  const dfg::Csr& c = g.freeze();
  InfoAnalysis ia;
  ia.at_output_port.assign(static_cast<std::size_t>(g.node_count()), {});
  ia.intrinsic.assign(static_cast<std::size_t>(g.node_count()), {});
  ia.at_edge.assign(static_cast<std::size_t>(g.edge_count()), {});
  ia.at_operand.assign(static_cast<std::size_t>(g.edge_count()), {});

  auto refined = [&](NodeId n, InfoContent intrinsic) {
    const auto idx = static_cast<std::size_t>(n.value);
    if (idx < refinements.size() && refinements[idx].has_value()) {
      return ic_meet(intrinsic, *refinements[idx]);
    }
    return intrinsic;
  };

  // Visits one node: a pure function of its predecessors' already-computed
  // at_output_port values, writing only its own node/edge slots — which is
  // what makes the level-parallel schedule bit-identical to the serial one.
  auto visit = [&](NodeId id) {
    const Node& n = g.node(id);
    const auto idx = static_cast<std::size_t>(id.value);
    const std::span<const std::int32_t> ins = c.in(id);

    auto operand_ic = [&](int port) {
      const EdgeId eid{ins[static_cast<std::size_t>(port)]};
      const Edge& e = g.edge(eid);
      support::audit::audit_read(support::audit::Domain::IcNode, e.src.value);
      support::audit::audit_write(support::audit::Domain::IcEdge, eid.value);
      const InfoContent src_ic =
          ia.at_output_port[static_cast<std::size_t>(e.src.value)];
      const int src_w = g.node(e.src).width;
      const InfoContent on_edge = ic_resize(src_ic, src_w, e.width, e.sign);
      ia.at_edge[static_cast<std::size_t>(eid.value)] = on_edge;
      const Sign second_ext =
          n.kind == OpKind::Extension ? n.ext_sign : e.sign;
      const int dst_w = n.width;
      const InfoContent op = ic_resize(on_edge, e.width, dst_w, second_ext);
      ia.at_operand[static_cast<std::size_t>(eid.value)] = op;
      return op;
    };

    InfoContent intrinsic;
    switch (n.kind) {
      case OpKind::Input:
        intrinsic = {n.width, n.ext_sign};
        break;
      case OpKind::Const:
        intrinsic = const_info(n.value);
        break;
      case OpKind::Output:
      case OpKind::Extension:
        intrinsic = operand_ic(0);
        break;
      case OpKind::Neg:
        intrinsic = ic_neg(operand_ic(0));
        break;
      case OpKind::Add:
        intrinsic = ic_add(operand_ic(0), operand_ic(1));
        break;
      case OpKind::Sub:
        intrinsic = ic_sub(operand_ic(0), operand_ic(1));
        break;
      case OpKind::Mul:
        intrinsic = ic_mul(operand_ic(0), operand_ic(1));
        break;
      case OpKind::Shl: {
        const InfoContent op = operand_ic(0);
        intrinsic = {op.width + n.shift, op.sign};
        break;
      }
      case OpKind::LtS:
      case OpKind::LtU:
      case OpKind::Eq:
        operand_ic(0);
        operand_ic(1);
        intrinsic = {1, Sign::Unsigned};
        break;
    }
    intrinsic = refined(id, intrinsic);
    support::audit::audit_write(support::audit::Domain::IcNode, id.value);
    ia.intrinsic[idx] = intrinsic;
    ia.at_output_port[idx] = ic_clip(intrinsic, n.width);
  };

  if (threads == 1) {
    for (NodeId id : c.topo) visit(id);
    return ia;
  }
  auto& pool = support::ThreadPool::shared();
  support::audit::JobLabel job_label("ic.level_sweep");
  for (int l = 0; l < c.num_levels(); ++l) {
    const std::span<const NodeId> lv = c.level_span(l);
    pool.parallel_for_chunks(
        static_cast<int>(lv.size()), /*grain=*/256,
        [&](int b, int e) {
          for (int i = b; i < e; ++i) visit(lv[static_cast<std::size_t>(i)]);
        },
        threads);
  }
  return ia;
}

}  // namespace dpmerge::analysis
