#include "dpmerge/analysis/huffman.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <queue>

namespace dpmerge::analysis {

std::vector<InfoContent> expand_addends(const std::vector<Addend>& addends) {
  std::vector<InfoContent> flat;
  for (const Addend& a : addends) {
    const std::int64_t copies = std::llabs(a.coefficient);
    const InfoContent per_copy =
        a.coefficient < 0 ? ic_neg(a.info) : a.info;
    for (std::int64_t c = 0; c < copies; ++c) flat.push_back(per_copy);
  }
  return flat;
}

InfoContent huffman_rebalanced_bound(const std::vector<Addend>& addends) {
  auto flat = expand_addends(addends);
  if (flat.empty()) return {0, Sign::Unsigned};

  // Min-heap ordered by content width (Step 1 of the algorithm). Ties are
  // broken toward unsigned so that same-sign combinations (which keep the
  // paper's tight max+1 rule) are preferred.
  auto cmp = [](const InfoContent& a, const InfoContent& b) {
    if (a.width != b.width) return a.width > b.width;
    return a.sign == Sign::Signed && b.sign == Sign::Unsigned;
  };
  std::priority_queue<InfoContent, std::vector<InfoContent>, decltype(cmp)>
      heap(cmp, std::move(flat));

  // Step 2: repeatedly combine the two smallest values.
  while (heap.size() > 1) {
    const InfoContent m1 = heap.top();
    heap.pop();
    const InfoContent m2 = heap.top();
    heap.pop();
    heap.push(ic_add(m1, m2));
  }
  return heap.top();
}

InfoContent sequential_bound(const std::vector<Addend>& addends) {
  const auto flat = expand_addends(addends);
  if (flat.empty()) return {0, Sign::Unsigned};
  InfoContent acc = flat.front();
  for (std::size_t i = 1; i < flat.size(); ++i) acc = ic_add(acc, flat[i]);
  return acc;
}

namespace {

InfoContent best_over_orders(std::vector<InfoContent> items) {
  if (items.size() == 1) return items[0];
  InfoContent best{1 << 30, Sign::Signed};
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      std::vector<InfoContent> next;
      next.reserve(items.size() - 1);
      for (std::size_t k = 0; k < items.size(); ++k) {
        if (k != i && k != j) next.push_back(items[k]);
      }
      next.push_back(ic_add(items[i], items[j]));
      best = ic_meet(best, best_over_orders(std::move(next)));
    }
  }
  return best;
}

}  // namespace

InfoContent exhaustive_best_bound(const std::vector<Addend>& addends) {
  const auto flat = expand_addends(addends);
  if (flat.empty()) return {0, Sign::Unsigned};
  return best_over_orders(flat);
}

}  // namespace dpmerge::analysis
