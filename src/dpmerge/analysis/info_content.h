#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "dpmerge/dfg/graph.h"
#include "dpmerge/support/sign.h"

namespace dpmerge::analysis {

/// Information content of a signal (Definition 5.1): the tuple <i, t> such
/// that, for all input stimuli, the signal equals the t-extension of its i
/// least significant bits. Exact computation is NP-hard (Theorem 5.3); this
/// library computes and manipulates sound *upper bounds* <î, t̂> throughout,
/// following the paper's convention of calling the bounds "information
/// content" as well.
struct InfoContent {
  int width = 0;
  Sign sign = Sign::Unsigned;

  bool operator==(const InfoContent&) const = default;
  std::string to_string() const;
};

/// Intrinsic (lossless, "ideal integer domain") information content of the
/// datapath operators, per Lemma 5.4 — with one documented deviation: for
/// *mixed* signedness operands the paper's <max{i1,i2}+1, t1|t2> is unsound
/// (see DESIGN.md §2); we normalise the unsigned operand <i,u> -> <i+1,s>
/// first, which is both sound and tight. Zero-width operands (constant 0)
/// are folded exactly.
InfoContent ic_add(InfoContent a, InfoContent b);
InfoContent ic_sub(InfoContent a, InfoContent b);
InfoContent ic_mul(InfoContent a, InfoContent b);
InfoContent ic_neg(InfoContent a);

/// The stronger of two valid claims about the same signal: the one with the
/// smaller width (ties keep `a`).
InfoContent ic_meet(InfoContent a, InfoContent b);

/// Clips an intrinsic bound to a node width w(N): the information content at
/// an output port is the smaller of the intrinsic content and the width
/// (Section 5).
InfoContent ic_clip(InfoContent ic, int width);

/// Propagates a claim across a resize: the signal (carrier width
/// `from_width`, valid claim `ic`) is resized to `to_width` with extension
/// type `ext`. Returns a valid claim for the resized signal. Implements the
/// truncation rule, the paper's "interesting case" (unsigned content across a
/// signed extension stays unsigned when the extension is strict), and —
/// applied with an Extension node's <w(N), t(N)> — Observation 6.1.
InfoContent ic_resize(InfoContent ic, int from_width, int to_width, Sign ext);

/// Results of forward information-content propagation over a DFG
/// (Section 5): all vectors are indexed by node/edge id.
struct InfoAnalysis {
  /// î at each node's output port (clipped to the node width).
  std::vector<InfoContent> at_output_port;
  /// î_int: intrinsic content of each node, in the ideal domain (not clipped
  /// by w(N)); for Input/Const/Extension nodes this equals `at_output_port`.
  /// Safety Condition 2 of the clustering algorithm compares this against
  /// w(N) to detect genuine truncation.
  std::vector<InfoContent> intrinsic;
  /// î of the signal carried on each edge (after the w(e)/t(e) resize).
  std::vector<InfoContent> at_edge;
  /// î of the operand delivered by each edge into its destination node
  /// (after the second resize to the destination width).
  std::vector<InfoContent> at_operand;

  InfoContent out(dfg::NodeId n) const {
    return at_output_port[static_cast<std::size_t>(n.value)];
  }
  InfoContent intr(dfg::NodeId n) const {
    return intrinsic[static_cast<std::size_t>(n.value)];
  }
  InfoContent edge(dfg::EdgeId e) const {
    return at_edge[static_cast<std::size_t>(e.value)];
  }
  InfoContent operand(dfg::EdgeId e) const {
    return at_operand[static_cast<std::size_t>(e.value)];
  }
};

/// Per-node refinements of intrinsic information content, produced by the
/// cluster rebalancing step (Section 5.2); `compute_info_content` meets each
/// node's intrinsic bound with its refinement, if present.
using InfoRefinements = std::vector<std::optional<InfoContent>>;

/// Single forward (inputs-to-outputs) sweep over the graph's frozen CSR
/// view, O(V + E). With `threads > 1` (or 0 = auto) the sweep runs
/// level-parallel on the shared ThreadPool: nodes of one dataflow level are
/// mutually independent and every î value is a pure function of the
/// predecessors' values, so the result is bit-identical to the serial sweep
/// (DESIGN.md §11).
InfoAnalysis compute_info_content(const dfg::Graph& g,
                                  const InfoRefinements& refinements = {},
                                  int threads = 1);

}  // namespace dpmerge::analysis
