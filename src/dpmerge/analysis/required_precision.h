#pragma once

#include <cstddef>
#include <vector>

#include "dpmerge/dfg/graph.h"

namespace dpmerge::analysis {

/// Required precision of every port in a DFG (Definition 4.1).
///
/// If the required precision of a signal is n, then no more than its n least
/// significant bits are needed to define the value at every primary output in
/// its fanout cone; the higher-order bits are truncated somewhere on every
/// downstream path and are superfluous.
///
/// Because Definition 4.1 assigns the same value to every input port of an
/// operator node (min{r(p_o), w(N)}), the result is stored per node:
///  - `at_output_port[n]` = r of the node's output port; for Output nodes
///    (which have no output port) it is set to w(N) for convenience.
///  - `at_input_port[n]`  = r of each of the node's input ports.
/// The r(p_d) used when pruning an edge (Theorem 4.2) is
/// `at_input_port[edge.dst]`.
struct RequiredPrecision {
  std::vector<int> at_output_port;
  std::vector<int> at_input_port;

  int r_out(dfg::NodeId n) const {
    return at_output_port[static_cast<std::size_t>(n.value)];
  }
  int r_in(dfg::NodeId n) const {
    return at_input_port[static_cast<std::size_t>(n.value)];
  }
  /// r at the destination port of edge `e`.
  int r_dst(const dfg::Graph& g, dfg::EdgeId e) const {
    return r_in(g.edge(e).dst);
  }
};

/// Computes required precision for all ports by a single reverse-topological
/// sweep (O(V + E)).
/// Single reverse (outputs-to-inputs) sweep over the graph's frozen CSR
/// view, O(V + E). With `threads > 1` (or 0 = auto) it runs parallel over
/// reverse dataflow levels; each node's r values are a pure function of its
/// consumers', so the schedule cannot change a single result (DESIGN.md §11).
RequiredPrecision compute_required_precision(const dfg::Graph& g,
                                             int threads = 1);

}  // namespace dpmerge::analysis
