#pragma once

#include <cstdint>
#include <vector>

#include "dpmerge/analysis/info_content.h"

namespace dpmerge::analysis {

/// One addend of a rebalanceable cluster expression: the information content
/// of a signal plus an integer multiplicity (a term c*I contributes |c|
/// copies of I, negated when c < 0 — Observation 5.9).
struct Addend {
  InfoContent info;
  std::int64_t coefficient = 1;
};

/// Algorithm Huffman_Rebalancing (Section 5.2): computes an upper bound on
/// the information content of a sum of constant multiples of input signals,
/// using the operation ordering that yields the tightest possible bound
/// (Theorem 5.10; modelled on Huffman's minimum-redundancy coding).
///
/// The paper's algorithm manipulates plain integers with the combination
/// max{i1,i2}+1; this implementation carries the full <i, t> tuples and
/// combines them with the sound `ic_add`, which degenerates to the paper's
/// rule when signs agree. Negative coefficients insert `ic_neg` of the base
/// signal's content.
InfoContent huffman_rebalanced_bound(const std::vector<Addend>& addends);

/// Reference implementation for tests: the bound obtained by folding the
/// addends left-to-right in the given order (the "skewed" ordering a naive
/// chain evaluation would produce).
InfoContent sequential_bound(const std::vector<Addend>& addends);

/// Exhaustive minimum over all binary combination orders (Catalan blow-up;
/// only usable for <= ~8 expanded addends). Used to test Theorem 5.10's
/// optimality claim.
InfoContent exhaustive_best_bound(const std::vector<Addend>& addends);

/// Expands coefficients into the flat multiset of per-copy contents the
/// algorithms above operate on.
std::vector<InfoContent> expand_addends(const std::vector<Addend>& addends);

}  // namespace dpmerge::analysis
