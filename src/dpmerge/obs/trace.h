#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dpmerge/obs/flight_recorder.h"
#include "dpmerge/support/annotations.h"
#include "dpmerge/support/mutex.h"

namespace dpmerge::obs {

/// Whether observability instrumentation was compiled in. The CMake option
/// `DPMERGE_OBS=OFF` defines DPMERGE_OBS_DISABLED globally, turning spans,
/// stat hooks and tracer activation into no-ops (the export machinery stays
/// so `--trace`/`--stats-json` still emit valid, empty-ish artifacts).
constexpr bool compiled_in() {
#ifdef DPMERGE_OBS_DISABLED
  return false;
#else
  return true;
#endif
}

/// Monotonic microsecond timestamp — the single time source every
/// observability consumer (spans, FlowReport stage times, the timing
/// optimizer's runtime accounting, bench harnesses) shares.
std::int64_t now_us();

/// One recorded event. `dur_us < 0` marks an instant event (Chrome phase
/// "i"); otherwise a complete span (phase "X").
struct TraceEvent {
  std::string name;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = -1;
  std::uint32_t tid = 0;
  std::string args;  ///< pre-rendered JSON object body ("{...}"), or empty
};

/// Builder for a trace event's `args` JSON object.
class TraceArgs {
 public:
  TraceArgs& add(std::string_view key, std::int64_t v);
  TraceArgs& add(std::string_view key, int v) {
    return add(key, static_cast<std::int64_t>(v));
  }
  TraceArgs& add(std::string_view key, double v);
  TraceArgs& add(std::string_view key, std::string_view v);
  std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Process-wide span/event collector. Collection is off until `start()`;
/// every recording site first checks `enabled()` (one relaxed atomic load),
/// so an idle tracer costs a branch per span. Events go to per-thread
/// buffers (no lock on the record path after a thread's first event) and
/// are merged at export time into Chrome trace_event JSON — the format
/// chrome://tracing and https://ui.perfetto.dev load directly.
class Tracer {
 public:
  static Tracer& instance();

  void start();
  void stop() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all buffered events (buffers of live threads stay registered).
  void clear() DPMERGE_EXCLUDES(mu_);

  std::size_t event_count() const DPMERGE_EXCLUDES(mu_);

  /// Records a complete ("X", dur_us >= 0) or instant ("i") event into the
  /// calling thread's buffer. Call only while `enabled()`.
  void record(std::string name, std::int64_t ts_us, std::int64_t dur_us,
              std::string args = {});

  /// Merges every thread's buffer and writes `{"traceEvents": [...]}`.
  /// Call after worker threads have quiesced (joined pool, etc.).
  void write_json(std::ostream& os) const DPMERGE_EXCLUDES(mu_);
  std::string json() const DPMERGE_EXCLUDES(mu_);
  bool write_file(const std::string& path) const DPMERGE_EXCLUDES(mu_);

 private:
  /// Per-thread event buffer. `events` is DPMERGE_THREAD_CONFINED to the
  /// owning thread while it records; exporters read it under `mu_` only
  /// after workers have quiesced (the ThreadPool job-completion handshake
  /// is the release/acquire edge that publishes the events).
  struct ThreadBuf {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  Tracer() = default;
  ThreadBuf& local_buf() DPMERGE_EXCLUDES(mu_);

  std::atomic<bool> enabled_{false};
  /// Guards buffer registration (`bufs_`, `next_tid_`) and export/clear
  /// iteration. The record hot path is lock-free after a thread's first
  /// event: it appends to its own ThreadBuf through a cached pointer.
  mutable support::Mutex mu_;
  std::vector<std::shared_ptr<ThreadBuf>> bufs_ DPMERGE_GUARDED_BY(mu_);
  std::uint32_t next_tid_ DPMERGE_GUARDED_BY(mu_) = 1;
};

/// True when span/event recording is live right now. Guard any non-trivial
/// args construction with this; in a DPMERGE_OBS=OFF build the condition is
/// compile-time false and the whole block folds away.
inline bool tracing() {
  return compiled_in() && Tracer::instance().enabled();
}

#ifndef DPMERGE_OBS_DISABLED

/// RAII scoped timer: records one complete event into the tracer (when a
/// --trace capture is live) and span begin/end events into the always-on
/// flight recorder. With both sinks idle the constructor is two relaxed
/// atomic loads and no clock is read; with only the flight recorder live
/// (the steady state) it is one clock read plus a lock-free ring write.
class Span {
 public:
  explicit Span(const char* name) {
    const bool traced = Tracer::instance().enabled();
    FlightRecorder& fr = FlightRecorder::instance();
    const bool recorded = fr.enabled();
    if (traced || recorded) {
      name_ = name;
      traced_ = traced;
      recorded_ = recorded;
      t0_ = now_us();
      if (recorded) {
        fr.record(FrKind::SpanBegin, name, t0_);
        fr.push_span(name);
      }
    }
  }
  Span(const char* name, const TraceArgs& args) : Span(name) {
    if (traced_) args_ = args.str();
  }
  ~Span() {
    if (name_) {
      const std::int64_t t1 = now_us();
      if (recorded_) {
        FlightRecorder& fr = FlightRecorder::instance();
        fr.record(FrKind::SpanEnd, name_, t1, t1 - t0_);
        fr.pop_span();
      }
      if (traced_) {
        Tracer::instance().record(name_, t0_, t1 - t0_, std::move(args_));
      }
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t t0_ = 0;
  bool traced_ = false;
  bool recorded_ = false;
  std::string args_;
};

inline void instant(const char* name, std::string args = {}) {
  Tracer& tr = Tracer::instance();
  if (tr.enabled()) tr.record(name, now_us(), -1, std::move(args));
}

#else  // DPMERGE_OBS_DISABLED

class Span {
 public:
  explicit Span(const char*) {}
  Span(const char*, const TraceArgs&) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

inline void instant(const char*, std::string = {}) {}

#endif  // DPMERGE_OBS_DISABLED

}  // namespace dpmerge::obs
