#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dpmerge/obs/crash.h"
#include "dpmerge/obs/flow_report.h"

namespace dpmerge::obs {

/// Shared observability CLI contract — one parser for the benches,
/// dpmerge-lint and dpmerge-explain, so every binary that runs flows
/// accepts the same artifact flags (in both `--flag value` and
/// `--flag=value` spellings):
///   --stats-json <path>     per-(design x flow) FlowReports as JSON
///   --trace <path>          Chrome trace_event JSON of the run
///   --profile <path>        hierarchical profile JSON (dpmerge-profile
///                           renders/diffs it)
///   --metrics <path>        Prometheus/OpenMetrics text exposition of the
///                           stats registry
///   --events <path>         JSONL structured event log (drained flight
///                           recorder)
///   --seed <n>              stimulus seed, recorded in artifacts (default 1)
///   --stats-deterministic   zero wall-clock/memory fields in artifacts so
///                           repeated runs are byte-identical
struct ObsArgs {
  std::string stats_json;
  std::string trace;
  std::string profile;
  std::string metrics;
  std::string events;
  std::uint64_t seed = 1;
  bool deterministic = false;
};

/// Tries to consume argv[i] (and, for `--flag value` spellings, argv[i+1])
/// as one of the shared flags above. Returns true and advances `i` past the
/// consumed argument(s) on a match; leaves `i` untouched otherwise. A flag
/// missing its value prints to stderr and exits 2 — the CLI contract every
/// harness already follows.
bool parse_obs_arg(int argc, char** argv, int& i, ObsArgs* out);

/// The usage-text fragment describing the shared flags (for --help).
const char* obs_usage();

/// Owns a run's observability lifecycle: the constructor brings the flight
/// recorder up (installing the thread-pool telemetry hooks), installs the
/// crash handlers (dumps land in $DPMERGE_CRASH_DIR or the cwd), stamps
/// run provenance (tool name + seed) into future crash dumps, and starts
/// the tracer when `--trace` asked for it. The destructor writes every
/// requested artifact. The harness fills `reports` (in deterministic cell
/// order) before the session is destroyed.
///
/// Under DPMERGE_OBS=OFF all artifacts are still written and valid — just
/// empty of events/spans (the no-obs CI job asserts exactly this).
class ArtifactSession {
 public:
  /// `crash` tunes the handler install: tools that *expect* to catch
  /// CheckFailure (dpmerge-lint provokes them on purpose) pass
  /// dump_on_check_failure=false so handled failures don't strew dumps.
  ArtifactSession(std::string name, ObsArgs args, CrashOptions crash = {});
  ~ArtifactSession();

  ArtifactSession(const ArtifactSession&) = delete;
  ArtifactSession& operator=(const ArtifactSession&) = delete;

  std::vector<FlowReport> reports;

 private:
  std::string name_;
  ObsArgs args_;
};

}  // namespace dpmerge::obs
