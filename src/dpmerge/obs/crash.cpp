#include "dpmerge/obs/crash.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <exception>

#include "dpmerge/obs/flight_recorder.h"
#include "dpmerge/obs/json.h"
#include "dpmerge/obs/memory.h"
#include "dpmerge/obs/trace.h"

namespace dpmerge::obs {

namespace {

// All crash state is lock-free on purpose: the handlers may fire on any
// thread at any instant, including while another thread holds an obs or
// pool mutex. Torn reads of the run-context strings yield at worst a
// garbled label in the dump.
std::atomic<bool> g_installed{false};
std::atomic<bool> g_dump_on_check_failure{true};
std::atomic<bool> g_fatal_dumped{false};  // one fatal dump per process
std::atomic<bool> g_check_dumped{false};  // one check-failure dump per process
std::atomic<const char*> g_stage{nullptr};

char g_dir[512] = {'.', '\0'};
char g_tool[64] = {};
std::atomic<std::uint64_t> g_seed{0};

std::terminate_handler g_prev_terminate = nullptr;

constexpr int kSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGBUS:
      return "SIGBUS";
    case SIGFPE:
      return "SIGFPE";
    case SIGILL:
      return "SIGILL";
  }
  return "signal";
}

std::string dump_path() {
  std::string path(g_dir);
  if (!path.empty() && path.back() != '/') path += '/';
  path += "dpmerge-crash-" + std::to_string(::getpid()) + ".json";
  return path;
}

/// POSIX write of the whole document — no stdio buffering between us and
/// the dying process.
bool write_file_raw(const std::string& path, std::string_view body) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < body.size()) {
    const ssize_t n = ::write(fd, body.data() + off, body.size() - off);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return true;
}

std::string do_write_dump(std::string_view reason, std::string_view detail) {
  const std::string body = build_crash_json(reason, detail);
  const std::string path = dump_path();
  if (!write_file_raw(path, body)) return {};
  std::fprintf(stderr, "dpmerge: crash dump written to %s\n", path.c_str());
  std::fflush(stderr);
  return path;
}

void signal_handler(int sig) {
  // Restore the default disposition first: if dumping re-faults, the
  // process still dies with the original signal instead of recursing.
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = SIG_DFL;
  ::sigaction(sig, &sa, nullptr);
  if (!g_fatal_dumped.exchange(true)) {
    do_write_dump("signal", signal_name(sig));
  }
  ::raise(sig);
}

[[noreturn]] void terminate_handler() {
  std::string detail = "std::terminate";
  if (std::exception_ptr e = std::current_exception()) {
    try {
      std::rethrow_exception(e);
    } catch (const std::exception& ex) {
      detail = ex.what();
    } catch (...) {
      detail = "non-std exception";
    }
  }
  if (!g_fatal_dumped.exchange(true)) {
    do_write_dump("terminate", detail);
  }
  // The dump is written; hand over to the previous handler (usually the
  // default, which aborts — and our SIGABRT handler already dumped, so the
  // g_fatal_dumped latch keeps it from dumping twice).
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

}  // namespace

void install_crash_handlers(const CrashOptions& opts) {
  std::string dir = opts.dir;
  if (dir.empty()) {
    const char* env = std::getenv("DPMERGE_CRASH_DIR");
    dir = (env != nullptr && env[0] != '\0') ? env : ".";
  }
  std::snprintf(g_dir, sizeof g_dir, "%s", dir.c_str());
  g_dump_on_check_failure.store(opts.dump_on_check_failure,
                                std::memory_order_relaxed);
  if (g_installed.exchange(true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = signal_handler;
  sigemptyset(&sa.sa_mask);
  for (const int sig : kSignals) ::sigaction(sig, &sa, nullptr);
  g_prev_terminate = std::set_terminate(terminate_handler);
}

bool crash_handlers_installed() {
  return g_installed.load(std::memory_order_relaxed);
}

void set_run_context(std::string_view tool, std::uint64_t seed) {
  const std::size_t n = std::min(tool.size(), sizeof(g_tool) - 1);
  std::memcpy(g_tool, tool.data(), n);
  g_tool[n] = '\0';
  g_seed.store(seed, std::memory_order_relaxed);
}

void set_current_stage(const char* name) {
  g_stage.store(name, std::memory_order_relaxed);
}

const char* current_stage() {
  return g_stage.load(std::memory_order_relaxed);
}

void note_check_failure(std::string_view site, std::string_view detail) {
#ifndef DPMERGE_OBS_DISABLED
  FlightRecorder& fr = FlightRecorder::instance();
  if (fr.enabled()) {
    fr.record(FrKind::Mark, fr.intern(std::string("check.failure:") +
                                      std::string(site)),
              now_us());
  }
#endif
  if (g_installed.load(std::memory_order_relaxed) &&
      g_dump_on_check_failure.load(std::memory_order_relaxed) &&
      !g_check_dumped.exchange(true)) {
    std::string d(site);
    if (!detail.empty()) {
      d += ": ";
      d += detail;
    }
    do_write_dump("check-failure", d);
  }
}

std::string build_crash_json(std::string_view reason, std::string_view detail) {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"schema\":\"dpmerge-crash-v1\"";
  out += ",\"reason\":";
  json_append_quoted(out, reason);
  out += ",\"detail\":";
  json_append_quoted(out, detail);
  out += ",\"pid\":" + std::to_string(::getpid());
  out += ",\"timestamp_unix\":" +
         std::to_string(static_cast<std::int64_t>(std::time(nullptr)));
  out += ",\"build\":{\"obs\":";
  out += compiled_in() ? "true" : "false";
  out += ",\"compiler\":";
#if defined(__VERSION__)
  json_append_quoted(out, __VERSION__);
#else
  out += "\"\"";
#endif
  out += ",\"sanitizer\":";
#if defined(__SANITIZE_ADDRESS__)
  out += "\"address\"";
#elif defined(__SANITIZE_THREAD__)
  out += "\"thread\"";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  out += "\"address\"";
#elif __has_feature(thread_sanitizer)
  out += "\"thread\"";
#else
  out += "\"\"";
#endif
#else
  out += "\"\"";
#endif
  out += "},\"run\":{\"tool\":";
  json_append_quoted(out, g_tool);
  out += ",\"seed\":" +
         std::to_string(g_seed.load(std::memory_order_relaxed));
  out += "},\"stage\":";
  const char* stage = g_stage.load(std::memory_order_relaxed);
  json_append_quoted(out, stage != nullptr ? stage : "");
  out += ",\"peak_rss_mb\":" + json_number(MemorySampler::peak_rss_mb());
  out += ",";
  FlightRecorder::instance().append_crash_json(out);
  out += "}";
  return out;
}

std::string write_crash_dump(std::string_view reason, std::string_view detail) {
  return do_write_dump(reason, detail);
}

}  // namespace dpmerge::obs
