#include "dpmerge/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dpmerge::obs {

void json_append_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  json_append_quoted(out, s);
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

namespace {

/// Single-pass recursive-descent JSON checker (no value materialisation).
class Checker {
 public:
  explicit Checker(std::string_view t) : t_(t) {}

  bool run(std::string* error) {
    skip_ws();
    bool ok = value();
    if (ok) {
      skip_ws();
      if (pos_ != t_.size()) {
        ok = false;
        err_ = "trailing content";
      }
    }
    if (!ok && error) {
      *error = err_.empty() ? "malformed JSON" : err_;
      *error += " at byte " + std::to_string(pos_);
    }
    return ok;
  }

 private:
  bool fail(const char* why) {
    if (err_.empty()) err_ = why;
    return false;
  }
  char peek() const { return pos_ < t_.size() ? t_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < t_.size() &&
           (t_[pos_] == ' ' || t_[pos_] == '\t' || t_[pos_] == '\n' ||
            t_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (t_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return fail("expected string");
    while (pos_ < t_.size()) {
      const unsigned char c = static_cast<unsigned char>(t_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        const char e = peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(peek()))) {
              return fail("bad \\u escape");
            }
            ++pos_;
          }
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
                   e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else {
          return fail("bad escape");
        }
      } else {
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected digit");
    }
    if (!eat('0')) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected fraction digit");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected exponent digit");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool value() {
    if (++depth_ > 256) return fail("nesting too deep");
    bool ok = false;
    switch (peek()) {
      case '{': {
        ++pos_;
        skip_ws();
        if (eat('}')) {
          ok = true;
          break;
        }
        for (;;) {
          skip_ws();
          if (!string()) break;
          skip_ws();
          if (!eat(':')) {
            fail("expected ':'");
            break;
          }
          skip_ws();
          if (!value()) break;
          skip_ws();
          if (eat(',')) continue;
          ok = eat('}');
          if (!ok) fail("expected ',' or '}'");
          break;
        }
        break;
      }
      case '[': {
        ++pos_;
        skip_ws();
        if (eat(']')) {
          ok = true;
          break;
        }
        for (;;) {
          skip_ws();
          if (!value()) break;
          skip_ws();
          if (eat(',')) continue;
          ok = eat(']');
          if (!ok) fail("expected ',' or ']'");
          break;
        }
        break;
      }
      case '"':
        ok = string();
        break;
      case 't':
        ok = literal("true");
        break;
      case 'f':
        ok = literal("false");
        break;
      case 'n':
        ok = literal("null");
        break;
      default:
        ok = number();
    }
    --depth_;
    return ok;
  }

  std::string_view t_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string err_;
};

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
  return Checker(text).run(error);
}

}  // namespace dpmerge::obs
