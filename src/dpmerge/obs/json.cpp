#include "dpmerge/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace dpmerge::obs {

namespace {

/// Length of the valid UTF-8 sequence starting at s[i], or 0 if the bytes
/// at i do not begin one (stray continuation byte, overlong encoding,
/// encoded surrogate, value above U+10FFFF, or truncation at the end of s).
std::size_t utf8_sequence_length(std::string_view s, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char b0 = byte(i);
  std::size_t len;
  std::uint32_t cp;
  if (b0 < 0x80) {
    return 1;
  } else if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    cp = b0 & 0x1Fu;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    cp = b0 & 0x0Fu;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    cp = b0 & 0x07u;
  } else {
    return 0;
  }
  if (i + len > s.size()) return 0;
  for (std::size_t k = 1; k < len; ++k) {
    const unsigned char b = byte(i + k);
    if ((b & 0xC0) != 0x80) return 0;
    cp = (cp << 6) | (b & 0x3Fu);
  }
  // Reject overlong forms, surrogates, and out-of-range code points.
  static constexpr std::uint32_t kMin[] = {0, 0, 0x80, 0x800, 0x10000};
  if (cp < kMin[len]) return 0;
  if (cp >= 0xD800 && cp <= 0xDFFF) return 0;
  if (cp > 0x10FFFF) return 0;
  return len;
}

}  // namespace

void json_append_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (std::size_t i = 0; i < s.size();) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"':
        out += "\\\"";
        ++i;
        continue;
      case '\\':
        out += "\\\\";
        ++i;
        continue;
      case '\n':
        out += "\\n";
        ++i;
        continue;
      case '\t':
        out += "\\t";
        ++i;
        continue;
      case '\r':
        out += "\\r";
        ++i;
        continue;
      default:
        break;
    }
    if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      ++i;
      continue;
    }
    if (c < 0x80) {
      out.push_back(s[i]);
      ++i;
      continue;
    }
    // Non-ASCII: pass through complete, valid UTF-8 sequences untouched;
    // anything else becomes U+FFFD, one replacement per rejected byte so
    // distinct hostile inputs stay distinguishable in the artifact.
    const std::size_t len = utf8_sequence_length(s, i);
    if (len == 0) {
      out += "\\ufffd";
      ++i;
    } else {
      out.append(s, i, len);
      i += len;
    }
  }
  out.push_back('"');
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  json_append_quoted(out, s);
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

namespace {

/// Single-pass recursive-descent JSON checker (no value materialisation).
class Checker {
 public:
  explicit Checker(std::string_view t) : t_(t) {}

  bool run(std::string* error) {
    skip_ws();
    bool ok = value();
    if (ok) {
      skip_ws();
      if (pos_ != t_.size()) {
        ok = false;
        err_ = "trailing content";
      }
    }
    if (!ok && error) {
      *error = err_.empty() ? "malformed JSON" : err_;
      *error += " at byte " + std::to_string(pos_);
    }
    return ok;
  }

 private:
  bool fail(const char* why) {
    if (err_.empty()) err_ = why;
    return false;
  }
  char peek() const { return pos_ < t_.size() ? t_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < t_.size() &&
           (t_[pos_] == ' ' || t_[pos_] == '\t' || t_[pos_] == '\n' ||
            t_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (t_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return fail("expected string");
    while (pos_ < t_.size()) {
      const unsigned char c = static_cast<unsigned char>(t_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        const char e = peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(peek()))) {
              return fail("bad \\u escape");
            }
            ++pos_;
          }
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
                   e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else {
          return fail("bad escape");
        }
      } else {
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected digit");
    }
    if (!eat('0')) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected fraction digit");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected exponent digit");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool value() {
    if (++depth_ > 256) return fail("nesting too deep");
    bool ok = false;
    switch (peek()) {
      case '{': {
        ++pos_;
        skip_ws();
        if (eat('}')) {
          ok = true;
          break;
        }
        for (;;) {
          skip_ws();
          if (!string()) break;
          skip_ws();
          if (!eat(':')) {
            fail("expected ':'");
            break;
          }
          skip_ws();
          if (!value()) break;
          skip_ws();
          if (eat(',')) continue;
          ok = eat('}');
          if (!ok) fail("expected ',' or '}'");
          break;
        }
        break;
      }
      case '[': {
        ++pos_;
        skip_ws();
        if (eat(']')) {
          ok = true;
          break;
        }
        for (;;) {
          skip_ws();
          if (!value()) break;
          skip_ws();
          if (eat(',')) continue;
          ok = eat(']');
          if (!ok) fail("expected ',' or ']'");
          break;
        }
        break;
      }
      case '"':
        ok = string();
        break;
      case 't':
        ok = literal("true");
        break;
      case 'f':
        ok = literal("false");
        break;
      case 'n':
        ok = literal("null");
        break;
      default:
        ok = number();
    }
    --depth_;
    return ok;
  }

  std::string_view t_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string err_;
};

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
  return Checker(text).run(error);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::num(std::string_view key, double def) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind == Kind::Number) ? v->number : def;
}

std::string_view JsonValue::text(std::string_view key,
                                 std::string_view def) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind == Kind::String) ? std::string_view(v->str)
                                                   : def;
}

namespace {

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// Materialising recursive-descent parser; the grammar mirrors Checker
/// above (kept separate on purpose — the checker is a zero-allocation
/// validity gate, the parser builds a tree).
class Parser {
 public:
  explicit Parser(std::string_view t) : t_(t) {}

  bool run(JsonValue* out, std::string* error) {
    skip_ws();
    bool ok = value(out);
    if (ok) {
      skip_ws();
      if (pos_ != t_.size()) {
        ok = false;
        err_ = "trailing content";
      }
    }
    if (!ok && error) {
      *error = err_.empty() ? "malformed JSON" : err_;
      *error += " at byte " + std::to_string(pos_);
    }
    return ok;
  }

 private:
  bool fail(const char* why) {
    if (err_.empty()) err_ = why;
    return false;
  }
  char peek() const { return pos_ < t_.size() ? t_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < t_.size() &&
           (t_[pos_] == ' ' || t_[pos_] == '\t' || t_[pos_] == '\n' ||
            t_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (t_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool hex4(std::uint32_t* out) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      std::uint32_t d;
      if (c >= '0' && c <= '9') {
        d = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        d = static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
      v = (v << 4) | d;
      ++pos_;
    }
    *out = v;
    return true;
  }

  bool string(std::string* out) {
    if (!eat('"')) return fail("expected string");
    while (pos_ < t_.size()) {
      const unsigned char c = static_cast<unsigned char>(t_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out->push_back(t_[pos_]);
        ++pos_;
        continue;
      }
      ++pos_;
      const char e = peek();
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out->push_back(e);
          ++pos_;
          break;
        case 'b':
          out->push_back('\b');
          ++pos_;
          break;
        case 'f':
          out->push_back('\f');
          ++pos_;
          break;
        case 'n':
          out->push_back('\n');
          ++pos_;
          break;
        case 'r':
          out->push_back('\r');
          ++pos_;
          break;
        case 't':
          out->push_back('\t');
          ++pos_;
          break;
        case 'u': {
          ++pos_;
          std::uint32_t cp = 0;
          if (!hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF && t_.substr(pos_, 2) == "\\u") {
            // High surrogate followed by an escaped low surrogate: combine.
            const std::size_t save = pos_;
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!hex4(&lo)) return false;
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              pos_ = save;  // not a pair; emit the lone surrogate below
            }
          }
          if (cp >= 0xD800 && cp <= 0xDFFF) cp = 0xFFFD;  // lone surrogate
          append_utf8(*out, cp);
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(double* out) {
    const std::size_t start = pos_;
    eat('-');
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected digit");
    }
    if (!eat('0')) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected fraction digit");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected exponent digit");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string text(t_.substr(start, pos_ - start));
    *out = std::strtod(text.c_str(), nullptr);
    return true;
  }

  bool value(JsonValue* out) {
    if (++depth_ > 256) return fail("nesting too deep");
    bool ok = false;
    switch (peek()) {
      case '{': {
        ++pos_;
        out->kind = JsonValue::Kind::Object;
        skip_ws();
        if (eat('}')) {
          ok = true;
          break;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!string(&key)) break;
          skip_ws();
          if (!eat(':')) {
            fail("expected ':'");
            break;
          }
          skip_ws();
          JsonValue member;
          if (!value(&member)) break;
          out->object.emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (eat(',')) continue;
          ok = eat('}');
          if (!ok) fail("expected ',' or '}'");
          break;
        }
        break;
      }
      case '[': {
        ++pos_;
        out->kind = JsonValue::Kind::Array;
        skip_ws();
        if (eat(']')) {
          ok = true;
          break;
        }
        for (;;) {
          skip_ws();
          JsonValue item;
          if (!value(&item)) break;
          out->array.push_back(std::move(item));
          skip_ws();
          if (eat(',')) continue;
          ok = eat(']');
          if (!ok) fail("expected ',' or ']'");
          break;
        }
        break;
      }
      case '"':
        out->kind = JsonValue::Kind::String;
        ok = string(&out->str);
        break;
      case 't':
        out->kind = JsonValue::Kind::Bool;
        out->boolean = true;
        ok = literal("true");
        break;
      case 'f':
        out->kind = JsonValue::Kind::Bool;
        out->boolean = false;
        ok = literal("false");
        break;
      case 'n':
        out->kind = JsonValue::Kind::Null;
        ok = literal("null");
        break;
      default:
        out->kind = JsonValue::Kind::Number;
        ok = number(&out->number);
    }
    --depth_;
    return ok;
  }

  std::string_view t_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string err_;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  return Parser(text).run(out, error);
}

}  // namespace dpmerge::obs
