#include "dpmerge/obs/stats.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "dpmerge/obs/json.h"

namespace dpmerge::obs {

void Histogram::observe(std::int64_t v) {
  if (v < 0) v = 0;
  int b = 0;
  while (b + 1 < kBuckets && (std::int64_t{1} << b) <= v) ++b;
  buckets_[static_cast<std::size_t>(b)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::int64_t Histogram::percentile(double q) const {
  const std::int64_t total = count();
  if (total <= 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest bucket whose cumulative count reaches the
  // 1-based rank ceil(q * total).
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen >= rank) return std::int64_t{1} << b;
  }
  return std::int64_t{1} << (kBuckets - 1);
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  support::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  support::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  support::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void Registry::write_json(std::ostream& os) const {
  support::MutexLock lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    json_append_quoted(out, name);
    out += ":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    json_append_quoted(out, name);
    out += ":" + json_number(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    json_append_quoted(out, name);
    out += ":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + std::to_string(h->sum()) + ",\"buckets\":{";
    bool bfirst = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::int64_t n = h->bucket(b);
      if (n == 0) continue;
      if (!bfirst) out += ",";
      bfirst = false;
      // Key = exclusive upper bound of the bucket.
      json_append_quoted(out, std::to_string(std::int64_t{1} << b));
      out += ":" + std::to_string(n);
    }
    out += "}}";
  }
  out += "}}";
  os << out;
}

std::string Registry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

namespace {

/// Prometheus metric name: `dpmerge_` prefix, [a-zA-Z0-9_] body (dots and
/// anything else become underscores; a leading digit gets one too, though
/// the prefix already prevents that).
std::string prom_name(std::string_view name) {
  std::string out = "dpmerge_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void Registry::write_prometheus(std::ostream& os) const {
  support::MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + json_number(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    std::int64_t cumulative = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::int64_t n = h->bucket(b);
      cumulative += n;
      // Sparse exposition: emit a bucket when it adds samples, plus the
      // first one, so the series always starts at a concrete le bound.
      if (n == 0 && b != 0) continue;
      out += p + "_bucket{le=\"" + std::to_string(std::int64_t{1} << b) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h->count()) + "\n";
    out += p + "_sum " + std::to_string(h->sum()) + "\n";
    out += p + "_count " + std::to_string(h->count()) + "\n";
  }
  // OpenMetrics terminator — also keeps an empty registry's exposition (a
  // serial run has no pool telemetry) distinguishable from a failed write.
  out += "# EOF\n";
  os << out;
}

void Registry::reset() {
  support::MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace dpmerge::obs
