#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "dpmerge/support/annotations.h"
#include "dpmerge/support/mutex.h"

namespace dpmerge::obs {

/// dpmerge::obs v2 — the flight recorder (DESIGN.md §14).
///
/// A fixed-capacity, per-thread ring buffer of compact binary events that is
/// *always on* (unlike the Tracer, which records only between start()/stop()
/// for an explicit --trace artifact). The ring keeps the most recent
/// ~`capacity` events per thread, so when a run hangs, crashes or shows a
/// tail-latency outlier there is evidence to drain — the crash handler
/// (crash.h) serialises it into dpmerge-crash-<pid>.json, the profiler
/// (profiler.h) aggregates it into a self/total call tree, and `--events`
/// exports it as JSONL.
///
/// Hot-path contract: recording is lock-free after a thread's first event —
/// one relaxed enabled() load, one steady-clock read (done by the caller),
/// and a store into the calling thread's own slot. Thread slots live in a
/// fixed-size table (never freed, never moved), so the crash handler can
/// walk them without taking any lock. Under DPMERGE_OBS=OFF every recording
/// entry point compiles away to nothing (the drain/export machinery stays,
/// returning empty data).
enum class FrKind : std::uint8_t {
  SpanBegin = 0,   ///< value unused
  SpanEnd = 1,     ///< value = duration in us
  Counter = 2,     ///< value = delta (e.g. stage RSS delta in KiB)
  TaskBegin = 3,   ///< value = pool job id, aux = task position
  TaskEnd = 4,     ///< value = duration in us, aux = task position
  Mark = 5,        ///< point event (check failures, context switches)
};

std::string_view to_string(FrKind k);

/// One recorded event, 32 bytes. `name` always points at storage with
/// program lifetime: a string literal at the record site, or a string
/// interned via FlightRecorder::intern().
struct FrEvent {
  std::int64_t ts_us = 0;
  const char* name = nullptr;
  std::int64_t value = 0;
  FrKind kind = FrKind::Mark;
  std::uint16_t tid = 0;
  std::uint32_t aux = 0;
};

/// A thread's crash-time context, sampled (best-effort, without locks) by
/// the crash handler: the stack of currently-open spans plus a free-form
/// context label ("<bench>/<design>/<flow>", a sweep name, ...) set by the
/// unit of work executing on the thread.
struct FrThreadState {
  std::uint16_t tid = 0;
  std::string context;
  std::vector<std::string> span_stack;
  std::int64_t last_event_ts_us = 0;
};

class FlightRecorder {
 public:
  static constexpr int kMaxThreads = 256;
  static constexpr int kMaxSpanDepth = 64;
  static constexpr std::uint32_t kDefaultCapacity = 8192;

  /// The process-wide recorder. First use installs the thread-pool
  /// telemetry hook (support::set_pool_telemetry), so pool task
  /// dispatch/complete events flow in from every parallel_for job.
  static FlightRecorder& instance();

  /// Recording master switch; on by default when obs is compiled in.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on && compiled_in_(), std::memory_order_relaxed);
  }

  /// Per-thread ring capacity for threads that have not recorded yet
  /// (existing rings keep their size). Power-of-two rounded up.
  void set_capacity(std::uint32_t events);
  std::uint32_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

#ifndef DPMERGE_OBS_DISABLED
  /// Appends one event to the calling thread's ring. `name` must have
  /// program lifetime (literal or intern()ed). Call only while enabled().
  void record(FrKind kind, const char* name, std::int64_t ts_us,
              std::int64_t value = 0, std::uint32_t aux = 0);

  /// Span-stack bookkeeping for crash-time "where was every thread". The
  /// Span/FlowScope record sites call these alongside record().
  void push_span(const char* name);
  void pop_span();

  /// Sets the calling thread's free-form context label (truncated to 127
  /// bytes). Empty clears. Shows up in crash dumps and drained state.
  void set_thread_context(std::string_view ctx);

  /// The calling thread's recorder id (registers a slot on first use);
  /// 0 when the slot table is full.
  std::uint16_t local_tid();
#else
  void record(FrKind, const char*, std::int64_t, std::int64_t = 0,
              std::uint32_t = 0) {}
  void push_span(const char*) {}
  void pop_span() {}
  void set_thread_context(std::string_view) {}
  std::uint16_t local_tid() { return 0; }
#endif

  /// Copies `s` into the recorder's string arena and returns a pointer with
  /// program lifetime; repeated interns of equal strings return the same
  /// pointer. Takes a lock — intern once per dynamic name, not per event.
  const char* intern(std::string_view s) DPMERGE_EXCLUDES(mu_);

  /// Merges every thread's ring into one time-ordered vector. Exact after
  /// worker threads quiesce (the ThreadPool job handshake publishes their
  /// writes); a concurrent writer can at worst contribute a torn in-flight
  /// event, which drain() filters by dropping events with a null name.
  std::vector<FrEvent> drain() const;

  /// Every registered thread's crash-time state (context + open spans).
  std::vector<FrThreadState> thread_states() const;

  /// Drops all buffered events and span stacks (rings stay registered).
  void clear();

  std::int64_t events_recorded() const {
    return events_recorded_.load(std::memory_order_relaxed);
  }

  /// Crash-path export: formats drained events + thread states as JSON
  /// fields (no surrounding braces) directly, without taking mu_. Only the
  /// string arena is read unlocked — interned pointers are never freed, so
  /// the worst case racing a writer is a missing newest event.
  void append_crash_json(std::string& out) const;

 private:
  struct Slot;

  FlightRecorder();
  Slot* local_slot();

  static constexpr bool compiled_in_() {
#ifdef DPMERGE_OBS_DISABLED
    return false;
#else
    return true;
#endif
  }

  std::atomic<bool> enabled_{compiled_in_()};
  std::atomic<std::uint32_t> capacity_{kDefaultCapacity};
  std::atomic<std::int64_t> events_recorded_{0};

  /// Fixed slot table: registration appends (lock-free via nslots_), slots
  /// are never removed or reallocated — the crash handler walks
  /// [0, nslots_) without synchronisation.
  std::atomic<Slot*> slots_[kMaxThreads] = {};
  std::atomic<int> nslots_{0};

  mutable support::Mutex mu_;  ///< guards the intern arena only
  std::set<std::string> arena_ DPMERGE_GUARDED_BY(mu_);
};

/// Convenience wrappers mirroring obs::stat_add's shape. No-ops when the
/// recorder is disabled or obs is compiled out.
#ifndef DPMERGE_OBS_DISABLED
void fr_mark(const char* name, std::int64_t value = 0);
void fr_counter(const char* name, std::int64_t delta);
inline void fr_set_thread_context(std::string_view ctx) {
  FlightRecorder::instance().set_thread_context(ctx);
}
#else
inline void fr_mark(const char*, std::int64_t = 0) {}
inline void fr_counter(const char*, std::int64_t) {}
inline void fr_set_thread_context(std::string_view) {}
#endif

/// Writes one JSON object per drained event (JSONL): the structured event
/// log export (`--events` on the bench harnesses).
void write_events_jsonl(std::ostream& os, const std::vector<FrEvent>& events);

}  // namespace dpmerge::obs
