#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "dpmerge/obs/trace.h"  // compiled_in()
#include "dpmerge/support/annotations.h"
#include "dpmerge/support/mutex.h"

namespace dpmerge::obs {

// ---------------------------------------------------------------------------
// Scoped stat collection (per unit of work, e.g. one run_flow call).
// ---------------------------------------------------------------------------

/// An ordered bag of named int64 counters. Not thread-safe by itself — a
/// sink is DPMERGE_THREAD_CONFINED: it belongs to the scope (and thread)
/// that installed it, and parallel sweeps must buffer per-task tallies and
/// merge them on the owning thread (the break sweep's ChunkOut pattern,
/// DESIGN.md §12 — checked at runtime by support::audit::AccessAudit).
/// Names sort lexicographically, so any export is deterministic.
class DPMERGE_THREAD_CONFINED StatSink {
 public:
  void add(std::string_view name, std::int64_t v = 1) {
    auto it = values_.find(name);
    if (it == values_.end()) {
      values_.emplace(std::string(name), v);
    } else {
      it->second += v;
    }
  }

  void set_max(std::string_view name, std::int64_t v) {
    auto it = values_.find(name);
    if (it == values_.end()) {
      values_.emplace(std::string(name), v);
    } else if (v > it->second) {
      it->second = v;
    }
  }

  std::int64_t get(std::string_view name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  const std::map<std::string, std::int64_t, std::less<>>& values() const {
    return values_;
  }
  void clear() { values_.clear(); }

 private:
  std::map<std::string, std::int64_t, std::less<>> values_;
};

namespace detail {
#ifndef DPMERGE_OBS_DISABLED
// Function-local TLS instead of an extern thread_local variable: the
// pointer is constant-initialized (no guard on access), and inline
// definitions merge across TUs — avoiding the cross-TU TLS-wrapper path
// that UBSan flags under GCC.
inline StatSink*& t_sink() {
  thread_local StatSink* s = nullptr;
  return s;
}
#endif
}  // namespace detail

/// The calling thread's current sink, or nullptr when no StatScope is
/// active (then every stat hook is a TLS load and a branch).
inline StatSink* current_sink() {
#ifdef DPMERGE_OBS_DISABLED
  return nullptr;
#else
  return detail::t_sink();
#endif
}

/// Installs a sink as the calling thread's collection target for the
/// lifetime of the scope. Nests; the previous sink is restored on exit.
class StatScope {
 public:
#ifndef DPMERGE_OBS_DISABLED
  explicit StatScope(StatSink* sink) : prev_(detail::t_sink()) {
    detail::t_sink() = sink;
  }
  ~StatScope() { detail::t_sink() = prev_; }
#else
  explicit StatScope(StatSink*) {}
#endif
  StatScope(const StatScope&) = delete;
  StatScope& operator=(const StatScope&) = delete;

 private:
#ifndef DPMERGE_OBS_DISABLED
  StatSink* prev_;
#endif
};

/// Instrumentation hooks: count into the current scope's sink, if any.
inline void stat_add(std::string_view name, std::int64_t v = 1) {
  if (StatSink* s = current_sink()) s->add(name, v);
}
inline void stat_max(std::string_view name, std::int64_t v) {
  if (StatSink* s = current_sink()) s->set_max(name, v);
}

// ---------------------------------------------------------------------------
// Process-global registry (named counters / gauges / histograms).
// ---------------------------------------------------------------------------

/// Monotonic counter; add() is one relaxed atomic RMW, safe from any thread.
///
/// Memory ordering (DESIGN.md §12): relaxed is sufficient — and audited —
/// because increments are commutative and no other memory location is
/// published through a counter value. Reads while writers are live may lag
/// in-flight increments (each RMW itself is atomic and never lost); every
/// exporter in the library reads only after its worker threads have
/// quiesced (ThreadPool jobs complete before parallel_for returns, which
/// is a mu_ release/acquire edge), so exported totals are exact.
class Counter {
 public:
  void add(std::int64_t v = 1) { v_.fetch_add(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-written value. Thread-safe, but concurrent writers race by design —
/// use gauges for configuration-like values (lane counts, sizes), not for
/// anything that must aggregate deterministically.
///
/// Memory ordering: the std::atomic<double> store/load pair is relaxed on
/// purpose. A gauge publishes one self-contained value; nothing is ordered
/// "after" a gauge write, so the only guarantee needed is no torn values —
/// which the atomic provides at any ordering. Concurrent set() calls leave
/// one of the written values (unspecified which); that is the documented
/// last-writer-wins contract, not an ordering bug.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Power-of-two-bucketed histogram of non-negative int64 samples: bucket i
/// counts samples in [2^(i-1), 2^i) (bucket 0 counts zeros and ones
/// together with bucket 1's lower bound, i.e. v < 2). Aggregation across
/// threads is commutative, so totals are schedule-independent.
///
/// Memory ordering: every bucket/count/sum RMW is relaxed — each is an
/// independent commutative accumulator, so the counter argument above
/// applies field-by-field. What relaxed does NOT give is a cross-field
/// snapshot: a reader racing observe() can see count already incremented
/// while sum still lacks the same sample (or vice versa). After writers
/// quiesce the three always telescope (count() samples summing to sum());
/// exports happen only then. reset() has the same caveat and is for tests.
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void observe(std::int64_t v);

  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

  /// The exclusive upper bound of the bucket holding the q-quantile sample
  /// (q in [0, 1]); 0 on an empty histogram. An upper bound, not an
  /// interpolation: with power-of-two buckets the error is at most 2x,
  /// which is what a latency histogram can honestly promise. Exact (and
  /// deterministic) after writers quiesce.
  std::int64_t percentile(double q) const;

  void reset();

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

/// Process-wide registry of named stats. Lookup takes a mutex (cache the
/// returned reference at hot sites); the returned references stay valid for
/// the process lifetime. Export is ordered by name — byte-identical for
/// identical workloads regardless of thread schedule (gauges excepted, see
/// above).
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name) DPMERGE_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) DPMERGE_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name) DPMERGE_EXCLUDES(mu_);

  /// `{"counters":{...},"gauges":{...},"histograms":{...}}`, keys sorted.
  void write_json(std::ostream& os) const DPMERGE_EXCLUDES(mu_);
  std::string json() const DPMERGE_EXCLUDES(mu_);

  /// Prometheus/OpenMetrics text exposition: counters as `counter`, gauges
  /// as `gauge`, histograms as cumulative-`le` `histogram` series with
  /// `_sum`/`_count`. Dots in names become underscores (`pool.task_us` →
  /// `dpmerge_pool_task_us`); output is ordered by name, so artifacts are
  /// byte-stable for identical workloads.
  void write_prometheus(std::ostream& os) const DPMERGE_EXCLUDES(mu_);

  /// Zeroes every registered stat (references stay valid). For tests.
  void reset() DPMERGE_EXCLUDES(mu_);

 private:
  Registry() = default;

  /// Guards the name->stat maps (registration and export iteration). The
  /// returned Counter/Gauge/Histogram references are NOT guarded: they are
  /// stable for the process lifetime (unique_ptr targets never move) and
  /// internally atomic, so hot sites cache them and update lock-free.
  mutable support::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      DPMERGE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      DPMERGE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      DPMERGE_GUARDED_BY(mu_);
};

}  // namespace dpmerge::obs
