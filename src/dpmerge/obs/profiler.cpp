#include "dpmerge/obs/profiler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>

#include "dpmerge/obs/json.h"
#include "dpmerge/obs/memory.h"
#include "dpmerge/obs/stats.h"

namespace dpmerge::obs {

const ProfileNode* ProfileNode::child(std::string_view want) const {
  for (const ProfileNode& c : children) {
    if (c.name == want) return &c;
  }
  return nullptr;
}

namespace {

/// Mutable build-time node: children keyed by name for O(log n) merge, raw
/// occurrence durations kept for exact percentiles.
struct BuildNode {
  std::string name;
  std::int64_t total_us = 0;
  std::int64_t rss_delta_kb = 0;
  std::map<std::string, std::int64_t> counters;
  std::vector<std::int64_t> durations;
  std::map<std::string, std::unique_ptr<BuildNode>> children;

  BuildNode* child(const char* cname) {
    auto it = children.find(cname);
    if (it == children.end()) {
      auto node = std::make_unique<BuildNode>();
      node->name = cname;
      it = children.emplace(node->name, std::move(node)).first;
    }
    return it->second.get();
  }
};

std::int64_t nearest_rank(std::vector<std::int64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[static_cast<std::size_t>(rank - 1)];
}

ProfileNode finalize(BuildNode& b) {
  ProfileNode out;
  out.name = b.name;
  out.count = static_cast<std::int64_t>(b.durations.size());
  out.total_us = b.total_us;
  out.rss_delta_kb = b.rss_delta_kb;
  out.counters = std::move(b.counters);
  std::sort(b.durations.begin(), b.durations.end());
  out.p50_us = nearest_rank(b.durations, 0.50);
  out.p99_us = nearest_rank(b.durations, 0.99);
  std::int64_t child_total = 0;
  for (auto& [name, c] : b.children) {
    out.children.push_back(finalize(*c));
    child_total += out.children.back().total_us;
  }
  // Children from several threads can overlap in wall time, so their sum
  // may exceed the parent total; self time never goes negative.
  out.self_us = std::max<std::int64_t>(0, b.total_us - child_total);
  std::stable_sort(out.children.begin(), out.children.end(),
                   [](const ProfileNode& a, const ProfileNode& c) {
                     if (a.total_us != c.total_us)
                       return a.total_us > c.total_us;
                     return a.name < c.name;
                   });
  return out;
}

void record_occurrence(BuildNode* node, std::int64_t dur_us) {
  node->total_us += dur_us;
  node->durations.push_back(dur_us);
}

bool is_rss_counter(std::string_view name) {
  constexpr std::string_view kSuffix = "rss_delta_kb";
  return name.size() >= kSuffix.size() &&
         name.substr(name.size() - kSuffix.size()) == kSuffix;
}

}  // namespace

Profile build_profile(const std::vector<FrEvent>& events) {
  Profile p;
  BuildNode root;
  root.name = "(root)";

  // Per-thread open-span stacks over the build tree. The drained events are
  // time-ordered globally; nesting only ever relates events of one thread,
  // so per-tid stacks reconstruct it exactly.
  std::map<std::uint16_t, std::vector<BuildNode*>> stacks;
  const auto top = [&](std::uint16_t tid) -> BuildNode* {
    auto& st = stacks[tid];
    return st.empty() ? &root : st.back();
  };

  for (const FrEvent& e : events) {
    ++p.events;
    switch (e.kind) {
      case FrKind::SpanBegin:
        stacks[e.tid].push_back(top(e.tid)->child(e.name));
        break;
      case FrKind::SpanEnd: {
        auto& st = stacks[e.tid];
        if (!st.empty() && st.back()->name == e.name) {
          record_occurrence(st.back(), e.value);
          st.pop_back();
        } else {
          // The begin was evicted from the ring (or lost to a torn read):
          // the end still carries its duration, so attribute it as an
          // occurrence under the current position and count the anomaly.
          record_occurrence(top(e.tid)->child(e.name), e.value);
          ++p.dropped;
        }
        break;
      }
      case FrKind::TaskEnd:
        // Pool tasks appear as leaf occurrences where the worker stood.
        record_occurrence(top(e.tid)->child(e.name), e.value);
        break;
      case FrKind::Counter: {
        BuildNode* n = top(e.tid);
        if (is_rss_counter(e.name)) {
          n->rss_delta_kb += e.value;
        } else {
          n->counters[e.name] += e.value;
        }
        break;
      }
      case FrKind::TaskBegin:
      case FrKind::Mark:
        top(e.tid)->counters[e.name] += 1;
        break;
    }
  }

  p.root = finalize(root);
  // The synthetic root's totals roll up its top level (it has no spans of
  // its own, so give it the sum as total and zero self).
  std::int64_t sum = 0;
  for (const ProfileNode& c : p.root.children) sum += c.total_us;
  p.root.total_us = sum;
  p.root.self_us = 0;
  p.peak_rss_mb = MemorySampler::peak_rss_mb();
  return p;
}

namespace {

void node_to_json(std::string& out, const ProfileNode& n,
                  const ProfileJsonOptions& opt) {
  const auto t = [&](std::int64_t v) { return opt.zero_times ? 0 : v; };
  out += "{\"name\":";
  json_append_quoted(out, n.name);
  out += ",\"count\":" + std::to_string(n.count);
  out += ",\"total_us\":" + std::to_string(t(n.total_us));
  out += ",\"self_us\":" + std::to_string(t(n.self_us));
  out += ",\"p50_us\":" + std::to_string(t(n.p50_us));
  out += ",\"p99_us\":" + std::to_string(t(n.p99_us));
  out += ",\"rss_delta_kb\":" + std::to_string(t(n.rss_delta_kb));
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : n.counters) {
    if (!first) out += ",";
    first = false;
    json_append_quoted(out, k);
    out += ":" + std::to_string(v);
  }
  out += "},\"children\":[";
  for (std::size_t i = 0; i < n.children.size(); ++i) {
    if (i) out += ",";
    node_to_json(out, n.children[i], opt);
  }
  out += "]}";
}

}  // namespace

void write_profile_json(std::ostream& os, const Profile& p,
                        const ProfileJsonOptions& opt) {
  std::string out = "{\"schema\":\"dpmerge-profile-v1\"";
  out += ",\"events\":" + std::to_string(p.events);
  out += ",\"dropped\":" + std::to_string(p.dropped);
  out += ",\"peak_rss_mb\":" +
         json_number(opt.zero_times ? 0.0 : p.peak_rss_mb);
  if (opt.include_registry && !opt.zero_times) {
    out += ",\"registry\":" + Registry::instance().json();
  }
  out += ",\"tree\":";
  node_to_json(out, p.root, opt);
  out += "}\n";
  os << out;
}

namespace {

std::string us_str(std::int64_t us) {
  char buf[32];
  if (us >= 1000000) {
    std::snprintf(buf, sizeof buf, "%.2fs", static_cast<double>(us) / 1e6);
  } else if (us >= 1000) {
    std::snprintf(buf, sizeof buf, "%.2fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us));
  }
  return buf;
}

void node_to_text(std::ostream& os, const ProfileNode& n, int depth) {
  std::string label(static_cast<std::size_t>(depth) * 2, ' ');
  label += n.name;
  if (label.size() < 36) label.resize(36, ' ');
  char buf[160];
  std::snprintf(buf, sizeof buf, "%9s %9s %8lld %9s %9s",
                us_str(n.total_us).c_str(), us_str(n.self_us).c_str(),
                static_cast<long long>(n.count), us_str(n.p50_us).c_str(),
                us_str(n.p99_us).c_str());
  os << label << buf;
  if (n.rss_delta_kb != 0) {
    os << "  rss" << (n.rss_delta_kb > 0 ? "+" : "") << n.rss_delta_kb
       << "kb";
  }
  os << "\n";
  for (const ProfileNode& c : n.children) node_to_text(os, c, depth + 1);
}

}  // namespace

void write_profile_text(std::ostream& os, const Profile& p) {
  os << "profile: " << p.events << " events";
  if (p.dropped > 0) os << " (" << p.dropped << " unmatched)";
  os << ", peak rss " << json_number(p.peak_rss_mb) << " MB\n";
  std::string head = "name";
  head.resize(36, ' ');
  char buf[160];
  std::snprintf(buf, sizeof buf, "%9s %9s %8s %9s %9s", "total", "self",
                "count", "p50", "p99");
  os << head << buf << "\n";
  for (const ProfileNode& c : p.root.children) node_to_text(os, c, 0);
}

namespace {

void node_to_folded(std::ostream& os, const ProfileNode& n,
                    const std::string& prefix) {
  const std::string path = prefix.empty() ? n.name : prefix + ";" + n.name;
  if (n.self_us > 0) os << path << " " << n.self_us << "\n";
  for (const ProfileNode& c : n.children) node_to_folded(os, c, path);
}

}  // namespace

void write_profile_folded(std::ostream& os, const Profile& p) {
  for (const ProfileNode& c : p.root.children) node_to_folded(os, c, {});
}

namespace {

bool node_from_json(const JsonValue& v, ProfileNode* out) {
  if (!v.is_object()) return false;
  out->name = std::string(v.text("name"));
  out->count = static_cast<std::int64_t>(v.num("count"));
  out->total_us = static_cast<std::int64_t>(v.num("total_us"));
  out->self_us = static_cast<std::int64_t>(v.num("self_us"));
  out->p50_us = static_cast<std::int64_t>(v.num("p50_us"));
  out->p99_us = static_cast<std::int64_t>(v.num("p99_us"));
  out->rss_delta_kb = static_cast<std::int64_t>(v.num("rss_delta_kb"));
  if (const JsonValue* counters = v.find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [k, cv] : counters->object) {
      if (cv.kind == JsonValue::Kind::Number) {
        out->counters[k] = static_cast<std::int64_t>(cv.number);
      }
    }
  }
  if (const JsonValue* kids = v.find("children");
      kids != nullptr && kids->is_array()) {
    for (const JsonValue& kid : kids->array) {
      ProfileNode c;
      if (!node_from_json(kid, &c)) return false;
      out->children.push_back(std::move(c));
    }
  }
  return true;
}

}  // namespace

bool read_profile_json(std::string_view text, Profile* out,
                       std::string* error) {
  JsonValue doc;
  if (!json_parse(text, &doc, error)) return false;
  if (!doc.is_object() || doc.text("schema") != "dpmerge-profile-v1") {
    if (error) *error = "not a dpmerge-profile-v1 document";
    return false;
  }
  *out = Profile{};
  out->events = static_cast<std::int64_t>(doc.num("events"));
  out->dropped = static_cast<std::int64_t>(doc.num("dropped"));
  out->peak_rss_mb = doc.num("peak_rss_mb");
  const JsonValue* tree = doc.find("tree");
  if (tree == nullptr || !node_from_json(*tree, &out->root)) {
    if (error) *error = "malformed profile tree";
    return false;
  }
  return true;
}

namespace {

struct DiffRow {
  std::string path;
  std::int64_t before_us = 0;
  std::int64_t after_us = 0;
};

void collect_paths(const ProfileNode& n, const std::string& prefix,
                   std::map<std::string, std::int64_t>& out) {
  const std::string path = prefix.empty() ? n.name : prefix + ";" + n.name;
  out[path] += n.total_us;
  for (const ProfileNode& c : n.children) collect_paths(c, path, out);
}

}  // namespace

std::string profile_diff_text(const Profile& before, const Profile& after) {
  std::map<std::string, std::int64_t> a, b;
  for (const ProfileNode& c : before.root.children) collect_paths(c, {}, a);
  for (const ProfileNode& c : after.root.children) collect_paths(c, {}, b);

  std::vector<DiffRow> rows;
  for (const auto& [path, us] : a) {
    DiffRow r;
    r.path = path;
    r.before_us = us;
    auto it = b.find(path);
    if (it != b.end()) r.after_us = it->second;
    rows.push_back(std::move(r));
  }
  for (const auto& [path, us] : b) {
    if (a.find(path) == a.end()) {
      DiffRow r;
      r.path = path;
      r.after_us = us;
      rows.push_back(std::move(r));
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const DiffRow& x, const DiffRow& y) {
                     const std::int64_t dx = std::llabs(x.after_us -
                                                       x.before_us);
                     const std::int64_t dy = std::llabs(y.after_us -
                                                       y.before_us);
                     if (dx != dy) return dx > dy;
                     return x.path < y.path;
                   });

  std::ostringstream os;
  os << "profile diff (after - before), " << rows.size() << " path(s)\n";
  for (const DiffRow& r : rows) {
    const std::int64_t d = r.after_us - r.before_us;
    char buf[96];
    std::snprintf(buf, sizeof buf, "%+10lld us  %10lld -> %-10lld  ",
                  static_cast<long long>(d),
                  static_cast<long long>(r.before_us),
                  static_cast<long long>(r.after_us));
    os << buf << r.path << "\n";
  }
  return os.str();
}

}  // namespace dpmerge::obs
