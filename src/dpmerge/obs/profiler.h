#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dpmerge/obs/flight_recorder.h"

namespace dpmerge::obs {

/// Hierarchical profiler (DESIGN.md §14): aggregates drained flight-recorder
/// events into a self/total call tree. Span nesting is reconstructed per
/// thread (a span's parent is the span open on the same thread when it
/// began), then identical stack paths merge across threads — so a
/// `synth.csa.reduce` that ran on four workers under `flow.synth` is one
/// node with count 4. Pool tasks (`pool.task` end events) appear as leaf
/// occurrences under whatever the worker had open; counter events attach to
/// the node open on their thread when they fired, which is how per-stage
/// `stage.rss_delta_kb` memory deltas land on their stage.

/// One aggregated call-tree node.
struct ProfileNode {
  std::string name;
  std::int64_t count = 0;     ///< completed occurrences
  std::int64_t total_us = 0;  ///< inclusive wall time over all occurrences
  std::int64_t self_us = 0;   ///< total_us minus children's total (>= 0)
  std::int64_t p50_us = 0;    ///< nearest-rank median occurrence duration
  std::int64_t p99_us = 0;    ///< nearest-rank p99 occurrence duration
  std::int64_t rss_delta_kb = 0;  ///< summed `*.rss_delta_kb` counter events
  std::map<std::string, std::int64_t> counters;  ///< other counter events
  std::vector<ProfileNode> children;  ///< ordered by total_us desc, name

  const ProfileNode* child(std::string_view name) const;
};

struct Profile {
  ProfileNode root;           ///< name "(root)"; totals sum the top level
  std::int64_t events = 0;    ///< flight-recorder events consumed
  std::int64_t dropped = 0;   ///< span ends with no matching open (ring
                              ///< eviction, or ends racing the drain)
  double peak_rss_mb = 0.0;   ///< process high-water mark at build time
};

/// Builds the tree from time-ordered drained events (FlightRecorder::drain).
/// Tolerant of ring eviction: an end without a begin is attributed at the
/// current stack position by its own recorded duration; a begin without an
/// end contributes nothing (its time is unknowable).
Profile build_profile(const std::vector<FrEvent>& events);

struct ProfileJsonOptions {
  /// Zeroes every duration and memory field, and omits the registry
  /// snapshot (its latency histograms are schedule-dependent) — the
  /// `--stats-deterministic` contract for profile artifacts.
  bool zero_times = false;
  /// Embed a stats::Registry snapshot under "registry" (thread-pool
  /// telemetry travels with the profile). Ignored when zero_times.
  bool include_registry = true;
};

/// `{"schema":"dpmerge-profile-v1",...,"tree":{...}}` (one object, no
/// trailing newline inside; the writer appends one).
void write_profile_json(std::ostream& os, const Profile& p,
                        const ProfileJsonOptions& opt = {});

/// Indented self/total tree with count, p50/p99 and per-node RSS deltas.
void write_profile_text(std::ostream& os, const Profile& p);

/// Flame-graph folded stacks: one `a;b;c <self_us>` line per node with
/// nonzero self time — the input format of flamegraph.pl / speedscope.
void write_profile_folded(std::ostream& os, const Profile& p);

/// Parses a document written by write_profile_json. Unknown fields are
/// ignored (artifacts stay readable across schema growth).
bool read_profile_json(std::string_view text, Profile* out,
                       std::string* error = nullptr);

/// Path-by-path comparison of two profiles (rendered text, sorted by
/// absolute total-time delta): regressions positive, improvements negative.
std::string profile_diff_text(const Profile& before, const Profile& after);

}  // namespace dpmerge::obs
