#include "dpmerge/obs/memory.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dpmerge::obs {

namespace {

/// Scans /proc/self/status for `key: <n> kB`. stdio (not iostream) so the
/// crash path can reuse it with minimal allocation.
std::int64_t proc_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "re");
  if (f == nullptr) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::int64_t out = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      out = std::strtoll(line + key_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return out;
}

}  // namespace

std::int64_t MemorySampler::current_rss_kb() { return proc_status_kb("VmRSS"); }

std::int64_t MemorySampler::peak_rss_kb() { return proc_status_kb("VmHWM"); }

}  // namespace dpmerge::obs
