#include "dpmerge/obs/flow_report.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "dpmerge/obs/crash.h"
#include "dpmerge/obs/flight_recorder.h"
#include "dpmerge/obs/json.h"
#include "dpmerge/obs/memory.h"
#include "dpmerge/obs/trace.h"

namespace dpmerge::obs {

namespace {

void append_i64_map(std::string& out,
                    const std::map<std::string, std::int64_t>& m) {
  out += "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out += ",";
    first = false;
    json_append_quoted(out, k);
    out += ":" + std::to_string(v);
  }
  out += "}";
}

// Canonical pipeline position of a stage for JSON export. The in-memory
// `stages` vector keeps execution order (first-begin order), but that order
// depends on the check policy: with checks on, "check" begins between
// "cluster" and "synth"; with paranoid checks it first begins even earlier.
// Exported artifacts must not differ by check policy in *ordering*, so the
// emitters sort by pipeline rank (unknown stages go last, alphabetically).
int stage_rank(std::string_view name) {
  if (name == "normalize") return 0;
  if (name == "cluster") return 1;
  if (name == "check") return 2;
  if (name == "synth") return 3;
  if (name == "opt") return 4;
  return 100;
}

std::vector<const StageReport*> stages_in_export_order(
    const std::vector<StageReport>& stages) {
  std::vector<const StageReport*> out;
  out.reserve(stages.size());
  for (const StageReport& s : stages) out.push_back(&s);
  std::stable_sort(out.begin(), out.end(),
                   [](const StageReport* a, const StageReport* b) {
                     const int ra = stage_rank(a->name);
                     const int rb = stage_rank(b->name);
                     if (ra != rb) return ra < rb;
                     return a->name < b->name;
                   });
  return out;
}

}  // namespace

std::int64_t FlowReport::stage_time_us(std::string_view stage) const {
  for (const StageReport& s : stages) {
    if (s.name == stage) return s.elapsed_us;
  }
  return 0;
}

std::string FlowReport::to_text() const {
  std::ostringstream os;
  os << "flow " << flow;
  if (!design.empty()) os << " on " << design;
  if (!check_policy.empty() && check_policy != "off") {
    os << " [checks: " << check_policy << "]";
  }
  os << ": " << total_us << " us, " << cluster_iterations
     << " cluster iteration(s), " << merge_decisions << " operators merged, "
     << csa_rows << " CSA rows, " << cpa_count << " CPAs\n";
  for (const StageReport& s : stages) {
    os << "  stage " << s.name << ": " << s.elapsed_us << " us, "
       << s.in_nodes << "n/" << s.in_edges << "e -> " << s.out_nodes << "n/"
       << s.out_edges << "e\n";
    for (const auto& [k, v] : s.stats) {
      os << "    " << k << " = " << v << "\n";
    }
  }
  if (!cells_by_type.empty()) {
    os << "  cells:";
    for (const auto& [k, v] : cells_by_type) os << " " << k << "=" << v;
    os << "\n";
  }
  for (const auto& [k, v] : metrics) {
    os << "  " << k << " = " << json_number(v) << "\n";
  }
  for (const DecisionSummary& d : top_decisions) {
    os << "  decision " << d.label << ": " << json_number(d.delay_ns)
       << " ns (" << json_number(d.share * 100.0) << "% of worst path)\n";
  }
  return os.str();
}

void FlowReport::to_json(std::string& out, const StatsJsonOptions& opt) const {
  auto t = [&](std::int64_t us) { return opt.zero_times ? 0 : us; };
  out += "{\"design\":";
  json_append_quoted(out, design);
  out += ",\"flow\":";
  json_append_quoted(out, flow);
  out += ",\"check_policy\":";
  json_append_quoted(out, check_policy);
  out += ",\"total_us\":" + std::to_string(t(total_us));
  out += ",\"cluster_iterations\":" + std::to_string(cluster_iterations);
  out += ",\"merge_decisions\":" + std::to_string(merge_decisions);
  out += ",\"csa_rows\":" + std::to_string(csa_rows);
  out += ",\"cpa_count\":" + std::to_string(cpa_count);
  out += ",\"cells_by_type\":";
  append_i64_map(out, cells_by_type);
  const std::vector<const StageReport*> ordered =
      stages_in_export_order(stages);
  out += ",\"stage_times_us\":{";
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    if (i) out += ",";
    json_append_quoted(out, ordered[i]->name);
    out += ":" + std::to_string(t(ordered[i]->elapsed_us));
  }
  out += "},\"iterations\":[";
  for (std::size_t i = 0; i < iterations.size(); ++i) {
    if (i) out += ",";
    out += "{\"clusters\":" + std::to_string(iterations[i].clusters) +
           ",\"merged_nodes\":" + std::to_string(iterations[i].merged_nodes) +
           ",\"refined_roots\":" +
           std::to_string(iterations[i].refined_roots) + "}";
  }
  out += "],\"metrics\":{";
  bool first = true;
  for (const auto& [k, v] : metrics) {
    if (!first) out += ",";
    first = false;
    json_append_quoted(out, k);
    out += ":" + json_number(v);
  }
  out += "},\"top_decisions\":[";
  for (std::size_t i = 0; i < top_decisions.size(); ++i) {
    const DecisionSummary& d = top_decisions[i];
    if (i) out += ",";
    out += "{\"label\":";
    json_append_quoted(out, d.label);
    out += ",\"delay_ns\":" + json_number(d.delay_ns);
    out += ",\"share\":" + json_number(d.share);
    out += "}";
  }
  out += "],\"stages\":[";
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const StageReport& s = *ordered[i];
    if (i) out += ",";
    out += "{\"name\":";
    json_append_quoted(out, s.name);
    out += ",\"time_us\":" + std::to_string(t(s.elapsed_us));
    out += ",\"in_nodes\":" + std::to_string(s.in_nodes);
    out += ",\"in_edges\":" + std::to_string(s.in_edges);
    out += ",\"out_nodes\":" + std::to_string(s.out_nodes);
    out += ",\"out_edges\":" + std::to_string(s.out_edges);
    out += ",\"stats\":";
    append_i64_map(out, s.stats);
    out += "}";
  }
  out += "]}";
}

void write_stats_json(std::ostream& os, std::string_view bench_name,
                      std::uint64_t seed,
                      const std::vector<FlowReport>& reports,
                      const StatsJsonOptions& opt) {
  std::string out = "{\"bench\":";
  json_append_quoted(out, bench_name);
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"deterministic\":";
  out += opt.zero_times ? "true" : "false";
  out += ",\"entries\":[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    out += i ? ",\n" : "\n";
    reports[i].to_json(out, opt);
  }
  out += "\n]}\n";
  os << out;
}

FlowScope::FlowScope(FlowReport* rep)
    : rep_(rep), scope_(&sink_), flow_t0_(now_us()) {}

FlowScope::~FlowScope() {
  if (in_stage_) end_stage();
  rep_->total_us = now_us() - flow_t0_;
}

void FlowScope::begin_stage(std::string name, std::int64_t in_nodes,
                            std::int64_t in_edges) {
  if (in_stage_) end_stage();
  in_stage_ = true;
  stage_base_ = {sink_.values().begin(), sink_.values().end()};
  stage_idx_ = rep_->stages.size();
  for (std::size_t i = 0; i < rep_->stages.size(); ++i) {
    if (rep_->stages[i].name == name) {
      stage_idx_ = i;
      break;
    }
  }
  if (stage_idx_ == rep_->stages.size()) {
    rep_->stages.push_back(StageReport{});
    StageReport& s = rep_->stages.back();
    s.name = std::move(name);
    s.in_nodes = in_nodes;
    s.in_edges = in_edges;
  }
  stage_t0_ = now_us();
#ifndef DPMERGE_OBS_DISABLED
  FlightRecorder& fr = FlightRecorder::instance();
  if (fr.enabled()) {
    const std::string& sname = rep_->stages[stage_idx_].name;
    stage_crash_name_ = fr.intern(sname);
    stage_fr_name_ = fr.intern("flow." + sname);
    fr.record(FrKind::SpanBegin, stage_fr_name_, stage_t0_);
    fr.push_span(stage_fr_name_);
    set_current_stage(stage_crash_name_);
    stage_rss_base_kb_ = MemorySampler::current_rss_kb();
  }
#endif
}

void FlowScope::end_stage(std::int64_t out_nodes, std::int64_t out_edges) {
  if (!in_stage_) return;
  in_stage_ = false;
  const std::int64_t t1 = now_us();
  StageReport& s = rep_->stages[stage_idx_];
  s.elapsed_us += t1 - stage_t0_;
  s.out_nodes = out_nodes;
  s.out_edges = out_edges;
  // The stage's stats are the sink's growth since begin_stage.
  for (const auto& [k, v] : sink_.values()) {
    auto it = stage_base_.find(k);
    const std::int64_t delta = v - (it == stage_base_.end() ? 0 : it->second);
    if (delta != 0) s.stats[k] += delta;
  }
  if (tracing()) {
    Tracer::instance().record("flow." + s.name, stage_t0_, t1 - stage_t0_);
  }
#ifndef DPMERGE_OBS_DISABLED
  if (stage_fr_name_ != nullptr) {
    FlightRecorder& fr = FlightRecorder::instance();
    if (fr.enabled()) {
      // Stage memory delta rides as a counter event *inside* the stage span
      // (before SpanEnd), so the profiler attributes it to this stage.
      fr.record(FrKind::Counter, "stage.rss_delta_kb", t1,
                MemorySampler::current_rss_kb() - stage_rss_base_kb_);
      fr.record(FrKind::SpanEnd, stage_fr_name_, t1, t1 - stage_t0_);
      fr.pop_span();
    }
    set_current_stage(nullptr);
    stage_fr_name_ = nullptr;
    stage_crash_name_ = nullptr;
  }
#endif
}

}  // namespace dpmerge::obs
