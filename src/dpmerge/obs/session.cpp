#include "dpmerge/obs/session.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "dpmerge/obs/crash.h"
#include "dpmerge/obs/flight_recorder.h"
#include "dpmerge/obs/profiler.h"
#include "dpmerge/obs/stats.h"
#include "dpmerge/obs/trace.h"

namespace dpmerge::obs {

namespace {

/// Matches `--flag value` / `--flag=value`; on a match stores the value and
/// advances `i` past everything consumed.
bool flag_value(int argc, char** argv, int& i, const char* flag,
                std::string* out) {
  const std::string_view arg = argv[i];
  const std::size_t n = std::strlen(flag);
  if (arg.substr(0, n) != flag) return false;
  if (arg.size() == n) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag);
      std::exit(2);
    }
    *out = argv[++i];
    return true;
  }
  if (arg[n] == '=') {
    *out = std::string(arg.substr(n + 1));
    return true;
  }
  return false;
}

std::ofstream open_artifact(const std::string& path, const char* what) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "failed to write %s to '%s'\n", what, path.c_str());
  }
  return os;
}

}  // namespace

bool parse_obs_arg(int argc, char** argv, int& i, ObsArgs* out) {
  std::string v;
  if (flag_value(argc, argv, i, "--stats-json", &v)) {
    out->stats_json = v;
    return true;
  }
  if (flag_value(argc, argv, i, "--trace", &v)) {
    out->trace = v;
    return true;
  }
  if (flag_value(argc, argv, i, "--profile", &v)) {
    out->profile = v;
    return true;
  }
  if (flag_value(argc, argv, i, "--metrics", &v)) {
    out->metrics = v;
    return true;
  }
  if (flag_value(argc, argv, i, "--events", &v)) {
    out->events = v;
    return true;
  }
  if (flag_value(argc, argv, i, "--seed", &v)) {
    out->seed = std::strtoull(v.c_str(), nullptr, 10);
    return true;
  }
  if (std::string_view(argv[i]) == "--stats-deterministic") {
    out->deterministic = true;
    return true;
  }
  return false;
}

const char* obs_usage() {
  return
      "  --stats-json <path>    per-flow stage reports as JSON\n"
      "  --trace <path>         Chrome trace_event JSON\n"
      "  --profile <path>       hierarchical profile JSON (see "
      "dpmerge-profile)\n"
      "  --metrics <path>       Prometheus text exposition of the stats "
      "registry\n"
      "  --events <path>        JSONL flight-recorder event log\n"
      "  --seed <n>             stimulus seed (default 1)\n"
      "  --stats-deterministic  zero wall-clock/memory fields in artifacts\n";
}

ArtifactSession::ArtifactSession(std::string name, ObsArgs args,
                                 CrashOptions crash)
    : name_(std::move(name)), args_(std::move(args)) {
  // Bring the recorder up before any work runs: the first instance() call
  // installs the thread-pool telemetry hooks.
  FlightRecorder::instance();
  install_crash_handlers(crash);
  set_run_context(name_, args_.seed);
  if (!args_.trace.empty()) Tracer::instance().start();
}

ArtifactSession::~ArtifactSession() {
  if (!args_.trace.empty()) {
    Tracer::instance().stop();
    if (!Tracer::instance().write_file(args_.trace)) {
      std::fprintf(stderr, "failed to write trace to '%s'\n",
                   args_.trace.c_str());
    }
  }
  if (!args_.stats_json.empty()) {
    if (std::ofstream os = open_artifact(args_.stats_json, "stats")) {
      StatsJsonOptions opt;
      opt.zero_times = args_.deterministic;
      write_stats_json(os, name_, args_.seed, reports, opt);
    }
  }
  // The remaining artifacts all read the flight recorder; drain once.
  if (!args_.profile.empty() || !args_.events.empty()) {
    const std::vector<FrEvent> events = FlightRecorder::instance().drain();
    if (!args_.profile.empty()) {
      if (std::ofstream os = open_artifact(args_.profile, "profile")) {
        ProfileJsonOptions opt;
        opt.zero_times = args_.deterministic;
        write_profile_json(os, build_profile(events), opt);
      }
    }
    if (!args_.events.empty()) {
      if (std::ofstream os = open_artifact(args_.events, "events")) {
        write_events_jsonl(os, events);
      }
    }
  }
  if (!args_.metrics.empty()) {
    if (std::ofstream os = open_artifact(args_.metrics, "metrics")) {
      Registry::instance().write_prometheus(os);
    }
  }
}

}  // namespace dpmerge::obs
