#include "dpmerge/obs/flight_recorder.h"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "dpmerge/obs/json.h"
#include "dpmerge/obs/stats.h"
#include "dpmerge/obs/trace.h"
#include "dpmerge/support/thread_pool.h"

namespace dpmerge::obs {

std::string_view to_string(FrKind k) {
  switch (k) {
    case FrKind::SpanBegin:
      return "span_begin";
    case FrKind::SpanEnd:
      return "span_end";
    case FrKind::Counter:
      return "counter";
    case FrKind::TaskBegin:
      return "task_begin";
    case FrKind::TaskEnd:
      return "task_end";
    case FrKind::Mark:
      return "mark";
  }
  return "?";
}

/// One thread's recording state. Allocated on the thread's first event,
/// registered into the fixed slot table, and never freed or moved — the
/// crash handler may walk the table at any instant from any thread.
struct FlightRecorder::Slot {
  explicit Slot(std::uint16_t id, std::uint32_t cap)
      : tid(id), mask(cap - 1), ring(cap) {
    context[0] = '\0';
  }

  std::uint16_t tid;
  std::uint32_t mask;  ///< capacity - 1 (capacity is a power of two)
  std::vector<FrEvent> ring;
  /// Next write position; events live at [head - min(head, cap), head).
  /// Written only by the owning thread; read by drain()/the crash handler.
  std::atomic<std::uint64_t> head{0};

  /// Crash-context fields: owner-written, reader-tolerant (a torn read
  /// yields at worst a garbled label, never an invalid pointer — span_stack
  /// holds only program-lifetime strings and the terminating NUL at
  /// context[127] is never overwritten).
  char context[128];
  const char* span_stack[kMaxSpanDepth] = {};
  std::atomic<int> span_depth{0};
};

namespace {

std::uint32_t round_up_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v && p < (1u << 24)) p <<= 1;
  return p;
}

std::atomic<std::uint16_t> g_next_tid{1};

#ifndef DPMERGE_OBS_DISABLED

/// Thread-pool telemetry sink: turns the support-layer hook calls into
/// flight-recorder events and registry stats. Installed once by
/// FlightRecorder's constructor (support cannot depend on obs, so the pool
/// exposes a hook struct instead of calling us directly).
void pool_job_telemetry(std::uint64_t job, int tasks, int width) {
  FlightRecorder& fr = FlightRecorder::instance();
  if (fr.enabled()) {
    fr.record(FrKind::Mark, "pool.job", now_us(), static_cast<std::int64_t>(job),
              static_cast<std::uint32_t>(tasks));
  }
  Registry& reg = Registry::instance();
  static Counter& jobs = reg.counter("pool.jobs");
  static Gauge& depth = reg.gauge("pool.queue_depth");
  static Gauge& wgauge = reg.gauge("pool.job_width");
  jobs.add(1);
  // Queue depth at dispatch: every task of the job is queued before the
  // first dispense, so the job's task count is the depth high-water mark.
  depth.set(static_cast<double>(tasks));
  wgauge.set(static_cast<double>(width));
}

void pool_task_telemetry(std::uint64_t job, int pos, std::int64_t t0_us,
                         std::int64_t dur_us) {
  FlightRecorder& fr = FlightRecorder::instance();
  if (fr.enabled()) {
    const auto upos = static_cast<std::uint32_t>(pos);
    fr.record(FrKind::TaskBegin, "pool.task", t0_us,
              static_cast<std::int64_t>(job), upos);
    fr.record(FrKind::TaskEnd, "pool.task", t0_us + dur_us, dur_us, upos);
  }
  Registry& reg = Registry::instance();
  static Histogram& lat = reg.histogram("pool.task_us");
  static Counter& tasks = reg.counter("pool.tasks");
  lat.observe(dur_us);
  tasks.add(1);
  // Per-worker utilization: busy time billed to the flight-recorder thread
  // id of the worker that ran the task. The name set is bounded by the
  // number of threads that ever ran pool work; the reference is cached
  // per thread so the registry lock is paid once per worker.
  thread_local Counter* busy = nullptr;
  if (busy == nullptr) {
    busy = &reg.counter("pool.worker." + std::to_string(fr.local_tid()) +
                        ".busy_us");
  }
  busy->add(dur_us);
}

#endif  // DPMERGE_OBS_DISABLED

}  // namespace

FlightRecorder::FlightRecorder() {
#ifndef DPMERGE_OBS_DISABLED
  static const support::PoolTelemetryHooks hooks{pool_job_telemetry,
                                                 pool_task_telemetry};
  support::set_pool_telemetry(&hooks);
#endif
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder fr;
  return fr;
}

void FlightRecorder::set_capacity(std::uint32_t events) {
  capacity_.store(round_up_pow2(std::max(events, 64u)),
                  std::memory_order_relaxed);
}

FlightRecorder::Slot* FlightRecorder::local_slot() {
  thread_local Slot* slot = [this]() -> Slot* {
    const int idx = nslots_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= kMaxThreads) return nullptr;  // table full: thread records nothing
    auto* s = new Slot(g_next_tid.fetch_add(1, std::memory_order_relaxed),
                       capacity_.load(std::memory_order_relaxed));
    slots_[idx].store(s, std::memory_order_release);
    return s;
  }();
  return slot;
}

#ifndef DPMERGE_OBS_DISABLED

void FlightRecorder::record(FrKind kind, const char* name, std::int64_t ts_us,
                            std::int64_t value, std::uint32_t aux) {
  Slot* s = local_slot();
  if (s == nullptr) return;
  const std::uint64_t h = s->head.load(std::memory_order_relaxed);
  FrEvent& e = s->ring[static_cast<std::size_t>(h) & s->mask];
  e.ts_us = ts_us;
  e.value = value;
  e.kind = kind;
  e.tid = s->tid;
  e.aux = aux;
  e.name = name;  // last: a racing reader skips entries with a null name
  s->head.store(h + 1, std::memory_order_release);
  events_recorded_.fetch_add(1, std::memory_order_relaxed);
}

void FlightRecorder::push_span(const char* name) {
  Slot* s = local_slot();
  if (s == nullptr) return;
  const int d = s->span_depth.load(std::memory_order_relaxed);
  if (d < kMaxSpanDepth) s->span_stack[d] = name;
  s->span_depth.store(d + 1, std::memory_order_release);
}

void FlightRecorder::pop_span() {
  Slot* s = local_slot();
  if (s == nullptr) return;
  const int d = s->span_depth.load(std::memory_order_relaxed);
  if (d > 0) s->span_depth.store(d - 1, std::memory_order_release);
}

void FlightRecorder::set_thread_context(std::string_view ctx) {
  Slot* s = local_slot();
  if (s == nullptr) return;
  const std::size_t n = std::min(ctx.size(), sizeof(s->context) - 1);
  std::memcpy(s->context, ctx.data(), n);
  s->context[n] = '\0';
}

std::uint16_t FlightRecorder::local_tid() {
  Slot* s = local_slot();
  return s != nullptr ? s->tid : 0;
}

void fr_mark(const char* name, std::int64_t value) {
  FlightRecorder& fr = FlightRecorder::instance();
  if (fr.enabled()) fr.record(FrKind::Mark, name, now_us(), value);
}

void fr_counter(const char* name, std::int64_t delta) {
  FlightRecorder& fr = FlightRecorder::instance();
  if (fr.enabled()) fr.record(FrKind::Counter, name, now_us(), delta);
}

#endif  // DPMERGE_OBS_DISABLED

const char* FlightRecorder::intern(std::string_view s) {
  support::MutexLock lock(mu_);
  return arena_.emplace(s).first->c_str();
}

std::vector<FrEvent> FlightRecorder::drain() const {
  std::vector<FrEvent> out;
  const int n = std::min(nslots_.load(std::memory_order_acquire),
                         static_cast<int>(kMaxThreads));
  for (int i = 0; i < n; ++i) {
    const Slot* s = slots_[i].load(std::memory_order_acquire);
    if (s == nullptr) continue;
    const std::uint64_t head = s->head.load(std::memory_order_acquire);
    const std::uint64_t cap = s->mask + std::uint64_t{1};
    const std::uint64_t count = std::min(head, cap);
    for (std::uint64_t k = head - count; k < head; ++k) {
      const FrEvent& e = s->ring[static_cast<std::size_t>(k) & s->mask];
      if (e.name != nullptr) out.push_back(e);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FrEvent& a, const FrEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.tid < b.tid;
                   });
  return out;
}

std::vector<FrThreadState> FlightRecorder::thread_states() const {
  std::vector<FrThreadState> out;
  const int n = std::min(nslots_.load(std::memory_order_acquire),
                         static_cast<int>(kMaxThreads));
  for (int i = 0; i < n; ++i) {
    const Slot* s = slots_[i].load(std::memory_order_acquire);
    if (s == nullptr) continue;
    FrThreadState st;
    st.tid = s->tid;
    st.context.assign(s->context,
                      strnlen(s->context, sizeof(s->context) - 1));
    const int depth =
        std::min(s->span_depth.load(std::memory_order_acquire),
                 static_cast<int>(kMaxSpanDepth));
    for (int d = 0; d < depth; ++d) {
      const char* sp = s->span_stack[d];
      if (sp != nullptr) st.span_stack.emplace_back(sp);
    }
    const std::uint64_t head = s->head.load(std::memory_order_acquire);
    if (head > 0) {
      const FrEvent& last =
          s->ring[static_cast<std::size_t>(head - 1) & s->mask];
      st.last_event_ts_us = last.ts_us;
    }
    out.push_back(std::move(st));
  }
  return out;
}

void FlightRecorder::clear() {
  const int n = std::min(nslots_.load(std::memory_order_acquire),
                         static_cast<int>(kMaxThreads));
  for (int i = 0; i < n; ++i) {
    Slot* s = slots_[i].load(std::memory_order_acquire);
    if (s == nullptr) continue;
    for (FrEvent& e : s->ring) e.name = nullptr;
    s->head.store(0, std::memory_order_release);
    s->span_depth.store(0, std::memory_order_release);
  }
  events_recorded_.store(0, std::memory_order_relaxed);
}

namespace {

void append_event_json(std::string& out, const FrEvent& e) {
  out += "{\"ts_us\":" + std::to_string(e.ts_us);
  out += ",\"tid\":" + std::to_string(e.tid);
  out += ",\"kind\":";
  json_append_quoted(out, to_string(e.kind));
  out += ",\"name\":";
  json_append_quoted(out, e.name != nullptr ? e.name : "");
  out += ",\"value\":" + std::to_string(e.value);
  if (e.aux != 0) out += ",\"aux\":" + std::to_string(e.aux);
  out += "}";
}

}  // namespace

void FlightRecorder::append_crash_json(std::string& out) const {
  out += "\"threads\":[";
  const auto states = thread_states();
  for (std::size_t i = 0; i < states.size(); ++i) {
    const FrThreadState& st = states[i];
    if (i != 0) out += ",";
    out += "{\"tid\":" + std::to_string(st.tid);
    out += ",\"context\":";
    json_append_quoted(out, st.context);
    out += ",\"span_stack\":[";
    for (std::size_t d = 0; d < st.span_stack.size(); ++d) {
      if (d != 0) out += ",";
      json_append_quoted(out, st.span_stack[d]);
    }
    out += "],\"last_event_ts_us\":" + std::to_string(st.last_event_ts_us);
    out += "}";
  }
  out += "],\"events\":[";
  const auto events = drain();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) out += ",";
    append_event_json(out, events[i]);
  }
  out += "]";
}

void write_events_jsonl(std::ostream& os, const std::vector<FrEvent>& events) {
  std::string line;
  for (const FrEvent& e : events) {
    line.clear();
    append_event_json(line, e);
    line += "\n";
    os << line;
  }
}

}  // namespace dpmerge::obs
