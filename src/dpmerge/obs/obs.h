#pragma once

/// dpmerge::obs — tracing, counters and per-stage flow reports.
///
/// Umbrella header. The subsystem has three layers:
///   - trace.h: Span (RAII scoped timer) + Tracer (per-thread buffers,
///     Chrome trace_event JSON export for chrome://tracing / Perfetto).
///   - stats.h: StatSink/StatScope (thread-local scoped counters) and the
///     process-global Registry (counters / gauges / histograms).
///   - flow_report.h: FlowReport/FlowScope — the per-stage breakdown
///     synth::run_flow emits and the benches serialise via --stats-json.
///   - provenance.h: DecisionLog/DecisionScope and the per-decision
///     delay/area Ledger — merge-decision provenance and critical-path
///     attribution (DESIGN.md, "Provenance & attribution").
///
/// Everything is near-zero-cost when idle (one relaxed atomic load per
/// span, one TLS load per stat hook) and compiles out entirely with the
/// CMake option -DDPMERGE_OBS=OFF (see DESIGN.md, "Observability").

#include "dpmerge/obs/flow_report.h"
#include "dpmerge/obs/json.h"
#include "dpmerge/obs/provenance.h"
#include "dpmerge/obs/stats.h"
#include "dpmerge/obs/trace.h"
