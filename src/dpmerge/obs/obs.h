#pragma once

/// dpmerge::obs — tracing, counters, flow reports, flight recorder, crash
/// diagnostics and profiling.
///
/// Umbrella header. The subsystem's layers:
///   - trace.h: Span (RAII scoped timer) + Tracer (per-thread buffers,
///     Chrome trace_event JSON export for chrome://tracing / Perfetto).
///   - stats.h: StatSink/StatScope (thread-local scoped counters) and the
///     process-global Registry (counters / gauges / histograms, JSON and
///     Prometheus export).
///   - flow_report.h: FlowReport/FlowScope — the per-stage breakdown
///     synth::run_flow emits and the benches serialise via --stats-json.
///   - provenance.h: DecisionLog/DecisionScope and the per-decision
///     delay/area Ledger — merge-decision provenance and critical-path
///     attribution (DESIGN.md, "Provenance & attribution").
///   - flight_recorder.h: always-on per-thread event rings feeding crash
///     dumps, the profiler, and the --events JSONL export (DESIGN.md §14).
///   - crash.h: SIGSEGV/SIGABRT/std::terminate/check-failure handlers
///     writing dpmerge-crash-<pid>.json (docs/CRASHDUMP.md).
///   - profiler.h: self/total call tree with p50/p99 and per-stage memory
///     deltas, rendered by the dpmerge-profile tool.
///   - memory.h: MemorySampler, the one RSS source in the tree.
///   - session.h: the shared --stats-json/--trace/--profile/... CLI parser
///     and the ArtifactSession writing every artifact at exit.
///
/// Everything is near-zero-cost when idle (one relaxed atomic load per
/// span, one TLS load per stat hook) and compiles out entirely with the
/// CMake option -DDPMERGE_OBS=OFF (see DESIGN.md, "Observability").

#include "dpmerge/obs/crash.h"
#include "dpmerge/obs/flight_recorder.h"
#include "dpmerge/obs/flow_report.h"
#include "dpmerge/obs/json.h"
#include "dpmerge/obs/memory.h"
#include "dpmerge/obs/profiler.h"
#include "dpmerge/obs/provenance.h"
#include "dpmerge/obs/session.h"
#include "dpmerge/obs/stats.h"
#include "dpmerge/obs/trace.h"
