#include "dpmerge/obs/trace.h"

#include <chrono>
#include <fstream>
#include <ostream>
#include <sstream>

#include "dpmerge/obs/json.h"

namespace dpmerge::obs {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceArgs& TraceArgs::add(std::string_view key, std::int64_t v) {
  if (!body_.empty()) body_ += ",";
  json_append_quoted(body_, key);
  body_ += ":";
  body_ += std::to_string(v);
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view key, double v) {
  if (!body_.empty()) body_ += ",";
  json_append_quoted(body_, key);
  body_ += ":";
  body_ += json_number(v);
  return *this;
}

TraceArgs& TraceArgs::add(std::string_view key, std::string_view v) {
  if (!body_.empty()) body_ += ",";
  json_append_quoted(body_, key);
  body_ += ":";
  json_append_quoted(body_, v);
  return *this;
}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::start() {
#ifndef DPMERGE_OBS_DISABLED
  enabled_.store(true, std::memory_order_relaxed);
#endif
}

Tracer::ThreadBuf& Tracer::local_buf() {
  // The shared_ptr keeps a thread's buffer alive in `bufs_` (for export)
  // after the thread exits.
  thread_local std::shared_ptr<ThreadBuf> buf = [this] {
    auto b = std::make_shared<ThreadBuf>();
    support::MutexLock lock(mu_);
    b->tid = next_tid_++;
    bufs_.push_back(b);
    return b;
  }();
  return *buf;
}

void Tracer::record(std::string name, std::int64_t ts_us, std::int64_t dur_us,
                    std::string args) {
  ThreadBuf& b = local_buf();
  b.events.push_back(
      TraceEvent{std::move(name), ts_us, dur_us, b.tid, std::move(args)});
}

void Tracer::clear() {
  support::MutexLock lock(mu_);
  for (auto& b : bufs_) b->events.clear();
}

std::size_t Tracer::event_count() const {
  support::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& b : bufs_) n += b->events.size();
  return n;
}

void Tracer::write_json(std::ostream& os) const {
  support::MutexLock lock(mu_);
  os << "{\"traceEvents\":[";
  bool first = true;
  std::string line;
  for (const auto& b : bufs_) {
    for (const TraceEvent& e : b->events) {
      line.clear();
      line += first ? "\n" : ",\n";
      first = false;
      line += "{\"name\":";
      json_append_quoted(line, e.name);
      line += ",\"cat\":\"dpmerge\",\"ph\":";
      line += e.dur_us < 0 ? "\"i\",\"s\":\"t\"" : "\"X\"";
      line += ",\"ts\":" + std::to_string(e.ts_us);
      if (e.dur_us >= 0) line += ",\"dur\":" + std::to_string(e.dur_us);
      line += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
      if (!e.args.empty()) line += ",\"args\":" + e.args;
      line += "}";
      os << line;
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string Tracer::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return static_cast<bool>(os);
}

}  // namespace dpmerge::obs
