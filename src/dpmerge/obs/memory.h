#pragma once

#include <cstdint>

namespace dpmerge::obs {

/// Process memory readings from /proc/self/status (Linux procfs). Every
/// value is in KiB as the kernel reports it; 0 where procfs is unavailable
/// (non-Linux, restricted mounts) so callers degrade to "no memory data"
/// instead of failing. This is the one RSS source in the tree: the bench
/// harnesses, the per-stage profiler deltas and the crash dump all read
/// through it (the historical one-off `rss_mb` logic in bench/scale lived
/// in bench_util.h and is now a wrapper over this).
class MemorySampler {
 public:
  /// Current resident set (VmRSS), KiB.
  static std::int64_t current_rss_kb();

  /// Peak resident set (VmHWM), KiB. A high-water mark: it only grows over
  /// the process lifetime.
  static std::int64_t peak_rss_kb();

  static double peak_rss_mb() {
    return static_cast<double>(peak_rss_kb()) / 1024.0;
  }

  /// Delta-instance: remembers the RSS at construction (or the last
  /// `rebase()`) so a stage can report how much resident memory it added.
  /// Negative deltas are real (the allocator returned pages) and reported
  /// as-is.
  MemorySampler() : base_kb_(current_rss_kb()) {}

  std::int64_t delta_kb() const { return current_rss_kb() - base_kb_; }
  std::int64_t base_kb() const { return base_kb_; }
  void rebase() { base_kb_ = current_rss_kb(); }

 private:
  std::int64_t base_kb_;
};

}  // namespace dpmerge::obs
