#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dpmerge/obs/stats.h"

namespace dpmerge::obs {

/// Options for the JSON emitters below.
struct StatsJsonOptions {
  /// Zeroes every wall-clock field (total_us, stage times). All remaining
  /// fields are pure functions of the workload, so two runs of the same
  /// configuration produce byte-identical artifacts — the mode CI diffs and
  /// the determinism tests use (`--stats-deterministic` on the benches).
  bool zero_times = false;
};

/// One pipeline stage of a flow: elapsed wall time, the graph (or netlist)
/// size entering and leaving the stage, and the stat-sink counters that
/// accumulated while the stage ran.
struct StageReport {
  std::string name;
  std::int64_t elapsed_us = 0;
  std::int64_t in_nodes = 0;
  std::int64_t in_edges = 0;
  std::int64_t out_nodes = 0;
  std::int64_t out_edges = 0;
  std::map<std::string, std::int64_t> stats;
};

/// One clusterer iteration (the paper's "iterative maximal merging"): how
/// many clusters the partition had, how many arithmetic operators were
/// merged into a consumer's cluster, and how many cluster roots the Huffman
/// rebalancing refined this round.
struct IterationReport {
  std::int64_t clusters = 0;
  std::int64_t merged_nodes = 0;
  std::int64_t refined_roots = 0;
};

/// One line of the provenance ledger roll-up: a merge decision (or operator)
/// and the share of the STA worst path billed to it. Attached by
/// `synth::attach_top_decisions` after critical-path attribution runs.
struct DecisionSummary {
  std::string label;     ///< e.g. "Mul#4 [cluster.synth1_mul_operand]"
  double delay_ns = 0.0; ///< worst-path delay billed to this decision
  double share = 0.0;    ///< delay_ns / worst-path delay, in [0, 1]
};

/// Per-stage breakdown of one synthesis flow run, emitted by
/// `synth::run_flow` (hung off `FlowResult::report`) and serialised by the
/// bench harnesses into `--stats-json` artifacts.
struct FlowReport {
  std::string design;
  std::string flow;
  /// check::CheckPolicy active while the flow ran ("off"/"errors"/"paranoid").
  std::string check_policy = "off";
  std::int64_t total_us = 0;

  // Roll-ups across the whole flow (also derivable from `stages`, kept flat
  // for machine consumers).
  std::int64_t cluster_iterations = 0;
  std::int64_t merge_decisions = 0;  ///< operators merged into a consumer
  std::int64_t csa_rows = 0;         ///< addend rows over all CSA trees
  std::int64_t cpa_count = 0;        ///< final carry-propagate adders built
  std::map<std::string, std::int64_t> cells_by_type;
  std::vector<IterationReport> iterations;
  std::vector<StageReport> stages;
  /// Bench-attached result metrics (delay_ns, area, ...), deterministic.
  std::map<std::string, double> metrics;
  /// Largest worst-path delay contributors by merge decision, attached by
  /// the explain/bench harnesses (empty when attribution never ran).
  std::vector<DecisionSummary> top_decisions;

  std::int64_t stage_time_us(std::string_view stage) const;

  /// Human-readable multi-line breakdown.
  std::string to_text() const;

  /// One JSON object (no trailing newline), keys in fixed order.
  void to_json(std::string& out, const StatsJsonOptions& opt = {}) const;
};

/// The `--stats-json` artifact: bench name, seed, and one entry per
/// (design x flow) cell in the order the bench stored them.
void write_stats_json(std::ostream& os, std::string_view bench_name,
                      std::uint64_t seed,
                      const std::vector<FlowReport>& reports,
                      const StatsJsonOptions& opt = {});

/// Builds a FlowReport while a flow runs: installs a StatScope around the
/// whole flow and splits the sink's counters into per-stage deltas.
/// Stage boundaries also emit tracer spans ("flow.<stage>").
class FlowScope {
 public:
  explicit FlowScope(FlowReport* rep);
  ~FlowScope();
  FlowScope(const FlowScope&) = delete;
  FlowScope& operator=(const FlowScope&) = delete;

  /// Begins (or, if a stage of this name already exists, resumes) a stage.
  /// Resuming accumulates time and stat deltas into the existing entry, so
  /// a flow that alternates normalize/cluster rounds still reports exactly
  /// one stage per name.
  void begin_stage(std::string name, std::int64_t in_nodes = 0,
                   std::int64_t in_edges = 0);
  void end_stage(std::int64_t out_nodes = 0, std::int64_t out_edges = 0);

  StatSink& sink() { return sink_; }

 private:
  FlowReport* rep_;
  StatSink sink_;
  StatScope scope_;
  std::map<std::string, std::int64_t> stage_base_;
  std::size_t stage_idx_ = 0;
  std::int64_t flow_t0_ = 0;
  std::int64_t stage_t0_ = 0;
  bool in_stage_ = false;
  // Flight-recorder bookkeeping for the open stage: interned span name
  // ("flow.<stage>"), interned stage name for crash-dump "stage", and the
  // RSS baseline for the stage's memory delta. Unused under OBS=OFF.
  const char* stage_fr_name_ = nullptr;
  const char* stage_crash_name_ = nullptr;
  std::int64_t stage_rss_base_kb_ = 0;
};

}  // namespace dpmerge::obs
