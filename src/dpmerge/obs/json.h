#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dpmerge::obs {

/// Appends `s` to `out` as a JSON string literal (surrounding quotes plus
/// RFC 8259 escaping; control characters become \u00XX). Byte sequences
/// that are not valid UTF-8 — overlong encodings, stray continuation
/// bytes, truncated sequences, encoded surrogates — are replaced with
/// U+FFFD (one replacement per rejected byte), so the output is always a
/// valid JSON string no matter what a hostile node/span name contains.
void json_append_quoted(std::string& out, std::string_view s);

std::string json_quote(std::string_view s);

/// Formats a double for JSON output. NaN/inf (not representable in JSON)
/// are emitted as 0. The format is fixed ("%.6g"), so equal inputs always
/// produce equal bytes — stats artifacts stay diffable.
std::string json_number(double v);

/// Checks that `text` is exactly one complete JSON value (objects, arrays,
/// strings, numbers, true/false/null, arbitrary nesting). Used by the obs
/// tests and CI smoke checks to validate emitted trace/stats artifacts.
/// On failure returns false and, if `error` is non-null, a message with the
/// byte offset of the first problem.
bool json_valid(std::string_view text, std::string* error = nullptr);

/// A parsed JSON value. One struct, no variant gymnastics: exactly one of
/// the payload fields is meaningful per `kind`. Objects preserve source
/// key order (profiles are written with fixed key order, and diffs want to
/// render in it).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }

  /// Typed member accessors with defaults (for tolerant artifact readers).
  double num(std::string_view key, double def = 0.0) const;
  std::string_view text(std::string_view key,
                        std::string_view def = {}) const;
};

/// Parses exactly one complete JSON value (same grammar json_valid checks;
/// \uXXXX escapes, surrogate pairs included, are decoded to UTF-8). On
/// failure returns false and, if `error` is non-null, a message with the
/// byte offset of the first problem.
bool json_parse(std::string_view text, JsonValue* out,
                std::string* error = nullptr);

}  // namespace dpmerge::obs
