#pragma once

#include <string>
#include <string_view>

namespace dpmerge::obs {

/// Appends `s` to `out` as a JSON string literal (surrounding quotes plus
/// RFC 8259 escaping; control characters become \u00XX).
void json_append_quoted(std::string& out, std::string_view s);

std::string json_quote(std::string_view s);

/// Formats a double for JSON output. NaN/inf (not representable in JSON)
/// are emitted as 0. The format is fixed ("%.6g"), so equal inputs always
/// produce equal bytes — stats artifacts stay diffable.
std::string json_number(double v);

/// Checks that `text` is exactly one complete JSON value (objects, arrays,
/// strings, numbers, true/false/null, arbitrary nesting). Used by the obs
/// tests and CI smoke checks to validate emitted trace/stats artifacts.
/// On failure returns false and, if `error` is non-null, a message with the
/// byte offset of the first problem.
bool json_valid(std::string_view text, std::string* error = nullptr);

}  // namespace dpmerge::obs
