#include "dpmerge/obs/provenance.h"

#include <algorithm>
#include <sstream>

#include "dpmerge/obs/json.h"

namespace dpmerge::obs::prov {

std::string_view to_string(Verdict v) {
  return v == Verdict::Accept ? "accept" : "reject";
}

std::string Decision::to_text() const {
  std::ostringstream os;
  os << node_op << " it" << iteration << " " << rule << ": "
     << to_string(verdict);
  std::string evidence;
  auto ev = [&](const char* name, int v) {
    if (v < 0) return;
    if (!evidence.empty()) evidence += ", ";
    evidence += name;
    evidence += "=";
    evidence += std::to_string(v);
  };
  ev("r_in", r_in);
  ev("exact", exact_bits);
  ev("info_w", info_width);
  ev("natural_w", natural_width);
  ev("w", node_width);
  ev("w_e", edge_width);
  if (width_savings > 0) ev("saved_bits", width_savings);
  if (!evidence.empty()) os << " (" << evidence << ")";
  return os.str();
}

void Decision::to_json(std::string& out) const {
  out += "{\"id\":" + std::to_string(id.value);
  out += ",\"iteration\":" + std::to_string(iteration);
  out += ",\"node\":" + std::to_string(node);
  out += ",\"dst_node\":" + std::to_string(dst_node);
  out += ",\"edge\":" + std::to_string(edge);
  out += ",\"op\":";
  json_append_quoted(out, node_op);
  out += ",\"rule\":";
  json_append_quoted(out, rule);
  out += ",\"verdict\":";
  json_append_quoted(out, to_string(verdict));
  out += ",\"info_width\":" + std::to_string(info_width);
  out += ",\"r_in\":" + std::to_string(r_in);
  out += ",\"exact_bits\":" + std::to_string(exact_bits);
  out += ",\"natural_width\":" + std::to_string(natural_width);
  out += ",\"node_width\":" + std::to_string(node_width);
  out += ",\"edge_width\":" + std::to_string(edge_width);
  out += ",\"width_savings\":" + std::to_string(width_savings);
  out += "}";
}

DecisionId DecisionLog::add(Decision d) {
  d.id = DecisionId{static_cast<int>(decisions_.size())};
  d.iteration = iteration_;
  if (d.dst_node < 0 && d.node >= 0) {
    final_by_node_[d.node] = d.id.value;
  }
  decisions_.push_back(std::move(d));
  return decisions_.back().id;
}

void DecisionLog::clear() {
  decisions_.clear();
  final_by_node_.clear();
  iteration_ = 0;
}

DecisionId DecisionLog::final_for_node(int node) const {
  auto it = final_by_node_.find(node);
  return it == final_by_node_.end() ? DecisionId{} : DecisionId{it->second};
}

std::vector<DecisionId> DecisionLog::final_decisions() const {
  std::vector<DecisionId> out;
  out.reserve(final_by_node_.size());
  for (const auto& [node, idx] : final_by_node_) out.push_back(DecisionId{idx});
  return out;
}

std::vector<DecisionId> DecisionLog::rejects_for_node(int node) const {
  // The node's final iteration is the iteration of its final decision.
  const DecisionId fin = final_for_node(node);
  if (!fin.valid()) return {};
  const int it = decision(fin).iteration;
  std::vector<DecisionId> out;
  for (const Decision& d : decisions_) {
    if (d.node == node && d.iteration == it && d.verdict == Verdict::Reject) {
      out.push_back(d.id);
    }
  }
  return out;
}

void DecisionLog::to_json(std::string& out) const {
  out += "{\"iterations\":" + std::to_string(iteration_);
  out += ",\"decisions\":[";
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    if (i) out += ",";
    decisions_[i].to_json(out);
  }
  out += "]}";
}

void Ledger::to_json(std::string& out) const {
  out += "{\"design\":";
  json_append_quoted(out, design);
  out += ",\"flow\":";
  json_append_quoted(out, flow);
  out += ",\"total_delay_ns\":" + json_number(total_delay_ns);
  out += ",\"attributed_ns\":" + json_number(attributed_ns);
  out += ",\"total_area\":" + json_number(total_area);
  out += ",\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const LedgerEntry& e = entries[i];
    if (i) out += ",";
    out += "{\"decision\":" + std::to_string(e.decision.value);
    out += ",\"node\":" + std::to_string(e.node);
    out += ",\"label\":";
    json_append_quoted(out, e.label);
    out += ",\"rule\":";
    json_append_quoted(out, e.rule);
    out += ",\"verdict\":";
    json_append_quoted(out, e.verdict);
    out += ",\"delay_ns\":" + json_number(e.delay_ns);
    out += ",\"area\":" + json_number(e.area);
    out += ",\"gates\":" + std::to_string(e.gates);
    out += ",\"path_gates\":" + std::to_string(e.path_gates);
    out += "}";
  }
  out += "]}";
}

std::string Ledger::to_text() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "ledger " << flow;
  if (!design.empty()) os << " on " << design;
  os << ": worst path " << total_delay_ns << " ns (attributed "
     << attributed_ns << " ns), area " << total_area << "\n";
  for (const LedgerEntry& e : entries) {
    os << "  " << e.label;
    if (!e.rule.empty()) os << " [" << e.rule << " -> " << e.verdict << "]";
    os << ": " << e.delay_ns << " ns over " << e.path_gates
       << " path gate(s), area " << e.area << " (" << e.gates << " gates)\n";
  }
  return os.str();
}

void LedgerDiff::to_json(std::string& out) const {
  out += "{\"flow_a\":";
  json_append_quoted(out, flow_a);
  out += ",\"flow_b\":";
  json_append_quoted(out, flow_b);
  out += ",\"delay_a_ns\":" + json_number(delay_a_ns);
  out += ",\"delay_b_ns\":" + json_number(delay_b_ns);
  out += ",\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const DiffEntry& e = entries[i];
    if (i) out += ",";
    out += "{\"node\":" + std::to_string(e.node);
    out += ",\"label\":";
    json_append_quoted(out, e.label);
    out += ",\"rule_a\":";
    json_append_quoted(out, e.rule_a);
    out += ",\"rule_b\":";
    json_append_quoted(out, e.rule_b);
    out += ",\"verdict_a\":";
    json_append_quoted(out, e.verdict_a);
    out += ",\"verdict_b\":";
    json_append_quoted(out, e.verdict_b);
    out += ",\"delay_a_ns\":" + json_number(e.delay_a_ns);
    out += ",\"delay_b_ns\":" + json_number(e.delay_b_ns);
    out += "}";
  }
  out += "]}";
}

std::string LedgerDiff::to_text() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "diff " << flow_a << " (" << delay_a_ns << " ns) vs " << flow_b
     << " (" << delay_b_ns << " ns): " << entries.size()
     << " diverging decision(s)\n";
  for (const DiffEntry& e : entries) {
    os << "  " << e.label << ": " << flow_a << " " << e.verdict_a;
    if (!e.rule_a.empty()) os << " [" << e.rule_a << "]";
    os << " @" << e.delay_a_ns << " ns vs " << flow_b << " " << e.verdict_b;
    if (!e.rule_b.empty()) os << " [" << e.rule_b << "]";
    os << " @" << e.delay_b_ns << " ns\n";
  }
  return os.str();
}

}  // namespace dpmerge::obs::prov
