#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dpmerge/obs/trace.h"  // compiled_in()
#include "dpmerge/support/annotations.h"

/// Decision provenance (dpmerge::obs::prov) — the "why" layer of the flow.
///
/// The clusterers record every candidate merge they evaluate into a
/// DecisionLog (per-edge evidence plus one node-level verdict per operator
/// per iteration), the synthesizer tags every netlist gate with the DFG
/// node whose synthesis created it, and the attribution pass walks the STA
/// worst path billing each segment's delay back to the decision that put
/// its gate there. The resulting Ledger names the exact merge decisions a
/// design's critical path and area are owed to, and LedgerDiff names the
/// decisions on which two flows diverge.
///
/// Like the rest of dpmerge::obs, everything here compiles out with
/// -DDPMERGE_OBS=OFF: the recording scope becomes a no-op, current_log()
/// is constant nullptr, and netlists carry no tags — emitted artifacts stay
/// byte-identical to an instrumented build's netlists (tags are side
/// metadata and never influence structure).

namespace dpmerge::obs::prov {

/// Stable identifier of one recorded decision: the index into its log, in
/// recording order. Deterministic for a deterministic workload.
struct DecisionId {
  int value = -1;
  bool valid() const { return value >= 0; }
  auto operator<=>(const DecisionId&) const = default;
};

enum class Verdict : unsigned char {
  Accept,  ///< the operator merges into its consumer's cluster
  Reject,  ///< the operator roots its own cluster (break node)
};

std::string_view to_string(Verdict v);

/// One candidate merge decision, with the analysis evidence the firing rule
/// acted on. Evidence fields default to -1 ("not applicable to this rule").
struct Decision {
  DecisionId id;
  int iteration = 0;  ///< clusterer iteration (monotone across restarts)
  int node = -1;      ///< DFG node whose merge-into-consumer was decided
  int dst_node = -1;  ///< consumer node for per-edge decisions, else -1
  int edge = -1;      ///< edge considered for per-edge decisions, else -1
  std::string node_op;  ///< e.g. "Add#7" (operator kind + node id)
  std::string rule;     ///< dotted rule id, e.g. "cluster.safety2_precision"
  Verdict verdict = Verdict::Accept;

  // Analysis evidence (-1 = not applicable):
  int info_width = -1;     ///< clipped information content î(N) in bits
  int r_in = -1;           ///< required precision at the consumer port
  int exact_bits = -1;     ///< exact low bits through the edge (-1 = all)
  int natural_width = -1;  ///< DAC'98 width-only natural width (old merge)
  int node_width = -1;     ///< w(N)
  int edge_width = -1;     ///< w(e)
  int width_savings = 0;   ///< carrier bits the firing analysis proved idle

  /// "Add#7 it2 cluster.safety2_precision: reject (r_in=14 > exact=9)".
  std::string to_text() const;
  void to_json(std::string& out) const;
};

/// Append-only log of merge decisions for one flow run. Ids are assigned in
/// recording order; `final_for_node` resolves a DFG node to its last
/// node-level verdict — the decision that actually shaped the partition
/// (earlier iterations' verdicts were superseded by re-partitioning).
///
/// DPMERGE_THREAD_CONFINED: a log belongs to the thread whose DecisionScope
/// installed it. Parallel sweeps never record into it directly — they fill
/// per-chunk Decision buffers and the owning thread replays them in index
/// order (clusterer.cpp's ChunkOut pattern, audited as Domain::DecisionBuf),
/// which is also what keeps decision ids schedule-independent.
class DPMERGE_THREAD_CONFINED DecisionLog {
 public:
  /// Stamps `d.id` and the current iteration counter, stores it, returns
  /// the id. Node-level decisions (dst_node < 0) update the final-verdict
  /// index for `d.node`.
  DecisionId add(Decision d);

  /// Advances the iteration counter (monotone; restarted clusterer runs
  /// keep counting so "final" stays well-defined across feedback rounds).
  void next_iteration() { ++iteration_; }
  int iteration() const { return iteration_; }

  void clear();
  bool empty() const { return decisions_.empty(); }
  std::size_t size() const { return decisions_.size(); }
  const std::vector<Decision>& decisions() const { return decisions_; }
  const Decision& decision(DecisionId id) const {
    return decisions_[static_cast<std::size_t>(id.value)];
  }

  /// The last node-level decision recorded for `node` (invalid if none).
  DecisionId final_for_node(int node) const;

  /// All final node-level decisions, ordered by node id.
  std::vector<DecisionId> final_decisions() const;

  /// The final iteration's reject decisions (node-level and per-edge) for
  /// `node`, in recording order — the reasons the node did not merge.
  std::vector<DecisionId> rejects_for_node(int node) const;

  void to_json(std::string& out) const;

 private:
  std::vector<Decision> decisions_;
  std::map<int, int> final_by_node_;  // node -> decision index (last wins)
  int iteration_ = 0;
};

// ---------------------------------------------------------------------------
// Recording scope (thread-local, compiled out with the rest of obs).
// ---------------------------------------------------------------------------

namespace detail {
#ifndef DPMERGE_OBS_DISABLED
inline DecisionLog*& t_decision_log() {
  thread_local DecisionLog* log = nullptr;
  return log;
}
#endif
}  // namespace detail

/// The calling thread's active decision log, or nullptr when no
/// DecisionScope is live (every recording site is then a TLS load + branch).
/// The returned pointer is thread-confined — never hand it to pool tasks.
inline DecisionLog* current_log() {
#ifdef DPMERGE_OBS_DISABLED
  return nullptr;
#else
  return detail::t_decision_log();
#endif
}

/// Installs a log as the calling thread's recording target for the scope's
/// lifetime. Nests; the previous log is restored on exit.
class DecisionScope {
 public:
#ifndef DPMERGE_OBS_DISABLED
  explicit DecisionScope(DecisionLog* log) : prev_(detail::t_decision_log()) {
    detail::t_decision_log() = log;
  }
  ~DecisionScope() { detail::t_decision_log() = prev_; }
#else
  explicit DecisionScope(DecisionLog*) {}
#endif
  DecisionScope(const DecisionScope&) = delete;
  DecisionScope& operator=(const DecisionScope&) = delete;

 private:
#ifndef DPMERGE_OBS_DISABLED
  DecisionLog* prev_;
#endif
};

// ---------------------------------------------------------------------------
// Per-decision delay/area ledger.
// ---------------------------------------------------------------------------

/// One ledger row: a decision (or the untagged bucket) with the critical-
/// path delay and cell area billed to it.
struct LedgerEntry {
  DecisionId decision;     ///< invalid for owners without a recorded decision
  int node = -1;           ///< owner DFG node; -1 for the untagged bucket
  std::string label;       ///< e.g. "Add#7" or "(untagged)"
  std::string rule;        ///< firing rule of the decision, or ""
  std::string verdict;     ///< "accept"/"reject"/"" (no decision)
  double delay_ns = 0.0;   ///< worst-path delay billed to this owner
  double area = 0.0;       ///< total cell area of gates owned
  std::int64_t gates = 0;  ///< gates owned
  std::int64_t path_gates = 0;  ///< worst-path gates owned
};

/// Per-decision delay/area accounting of one synthesized flow. Entries are
/// sorted by billed delay (descending), ties by owner node id, so exports
/// are deterministic. `attributed_ns` telescopes back to `total_delay_ns`
/// up to floating-point rounding (tested).
struct Ledger {
  std::string design;
  std::string flow;
  double total_delay_ns = 0.0;  ///< STA worst path
  double attributed_ns = 0.0;   ///< sum of entry delays
  double total_area = 0.0;
  std::vector<LedgerEntry> entries;

  /// Entries in order, largest delay share first.
  void to_json(std::string& out) const;
  std::string to_text() const;
};

/// One node on which two flows decided differently (different verdict or
/// different firing rule), with the delay each flow's path bills to it.
struct DiffEntry {
  int node = -1;
  std::string label;
  std::string rule_a, rule_b;
  std::string verdict_a, verdict_b;
  double delay_a_ns = 0.0, delay_b_ns = 0.0;
};

/// Flow-vs-flow decision diff: names the decisions where the flows diverge
/// and what each divergence costs on the respective critical paths.
struct LedgerDiff {
  std::string flow_a, flow_b;
  double delay_a_ns = 0.0, delay_b_ns = 0.0;
  std::vector<DiffEntry> entries;  ///< sorted by max billed delay, desc

  void to_json(std::string& out) const;
  std::string to_text() const;
};

}  // namespace dpmerge::obs::prov
