#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dpmerge::obs {

/// Crash diagnostics (DESIGN.md §14, docs/CRASHDUMP.md).
///
/// When a run dies — SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL, an unhandled
/// exception reaching std::terminate, or (opt-in) a CheckPolicy fatal path —
/// the installed handlers serialise everything the flight recorder knows
/// into `dpmerge-crash-<pid>.json` before the process goes down: the drained
/// event rings, each thread's active span stack and context label, the
/// current flow stage, peak RSS, and build/seed provenance. The file lands
/// in $DPMERGE_CRASH_DIR (or CrashOptions::dir, or the cwd), and its path is
/// printed to stderr.
///
/// The signal path is deliberately *best-effort*, not strictly
/// async-signal-safe: building the JSON allocates. A crash corrupting the
/// heap can therefore lose the dump — the handler reinstalls the default
/// disposition first, so a secondary fault still terminates the process with
/// the original signal instead of looping. For the hang/tail-latency cases
/// the recorder exists for, the heap is healthy and the dump is reliable;
/// the fault-injection tests cover exactly this.
struct CrashOptions {
  /// Output directory. Empty: $DPMERGE_CRASH_DIR if set, else ".".
  std::string dir;
  /// Also write a dump (once per process) when a CheckPolicy fatal path
  /// throws CheckFailure. The exception still propagates normally.
  bool dump_on_check_failure = true;
};

/// Installs the signal and std::terminate handlers process-wide. Idempotent;
/// a second call only updates the options. Compiled in regardless of
/// DPMERGE_OBS (an OBS=OFF dump simply has no events — the provenance, RSS
/// and reason fields still make it useful).
void install_crash_handlers(const CrashOptions& opts = {});
bool crash_handlers_installed();

/// Run provenance stamped into every dump ("run": {"tool", "seed"}).
/// ArtifactSession sets this from the CLI; safe to call any time.
void set_run_context(std::string_view tool, std::uint64_t seed);

/// The flow stage most recently entered, process-wide (FlowScope maintains
/// it; `name` must have program lifetime). Per-thread truth lives in each
/// thread's span stack — this is the headline "where were we" field for
/// single-flow runs. nullptr clears.
void set_current_stage(const char* name);
const char* current_stage();

/// Hook for CheckPolicy fatal paths (guard.cpp): records a flight-recorder
/// mark naming `site`, and — when handlers are installed with
/// dump_on_check_failure — writes a "check-failure" dump (once per process).
/// Never throws; the caller throws CheckFailure right after.
void note_check_failure(std::string_view site, std::string_view detail);

/// Builds the full crash-dump JSON document (schema "dpmerge-crash-v1").
/// Exposed so tests can validate the schema without crashing.
std::string build_crash_json(std::string_view reason, std::string_view detail);

/// Builds and writes a dump now; returns the path, or "" on I/O failure.
/// Does not require handlers to be installed (uses the configured or
/// default directory).
std::string write_crash_dump(std::string_view reason, std::string_view detail);

}  // namespace dpmerge::obs
