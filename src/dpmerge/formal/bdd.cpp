#include "dpmerge/formal/bdd.h"

#include <algorithm>
#include <climits>

namespace dpmerge::formal {

namespace {

std::uint64_t key2(int var, std::int32_t lo, std::int32_t hi) {
  // var < 2^20, refs < 2^22 each in practice; mix into one 64-bit key.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(var)) << 44) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo)) << 22) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(hi));
}

std::uint64_t key3(std::int32_t f, std::int32_t g, std::int32_t h) {
  std::uint64_t k = static_cast<std::uint32_t>(f);
  k = k * 0x9e3779b97f4a7c15ull + static_cast<std::uint32_t>(g);
  k = k * 0x9e3779b97f4a7c15ull + static_cast<std::uint32_t>(h);
  return k;
}

}  // namespace

Bdd::Bdd(std::size_t max_nodes) : max_nodes_(max_nodes) {
  nodes_.push_back(Node{INT_MAX, kFalse, kFalse});  // 0 = false terminal
  nodes_.push_back(Node{INT_MAX, kTrue, kTrue});    // 1 = true terminal
}

Bdd::Ref Bdd::mk(int var, Ref lo, Ref hi) {
  if (lo == hi) return lo;  // reduction rule
  const auto k = key2(var, lo, hi);
  const auto it = unique_.find(k);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= max_nodes_) throw BddLimitExceeded{};
  const Ref r = static_cast<Ref>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  unique_.emplace(k, r);
  return r;
}

Bdd::Ref Bdd::var(int v) { return mk(v, kFalse, kTrue); }

Bdd::Ref Bdd::cofactor(Ref f, int v, bool positive) const {
  const Node& n = nodes_[static_cast<std::size_t>(f)];
  if (n.var != v) return f;  // f does not depend on v at the top
  return positive ? n.hi : n.lo;
}

Bdd::Ref Bdd::ite(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const auto k = key3(f, g, h);
  const auto it = ite_cache_.find(k);
  if (it != ite_cache_.end()) return it->second;

  const int v = std::min({var_of(f), var_of(g), var_of(h)});
  const Ref hi = ite(cofactor(f, v, true), cofactor(g, v, true),
                     cofactor(h, v, true));
  const Ref lo = ite(cofactor(f, v, false), cofactor(g, v, false),
                     cofactor(h, v, false));
  const Ref r = mk(v, lo, hi);
  ite_cache_.emplace(k, r);
  return r;
}

bool Bdd::eval(Ref f, const std::vector<bool>& assignment) const {
  while (f > kTrue) {
    const Node& n = nodes_[static_cast<std::size_t>(f)];
    const bool v = static_cast<std::size_t>(n.var) < assignment.size() &&
                   assignment[static_cast<std::size_t>(n.var)];
    f = v ? n.hi : n.lo;
  }
  return f == kTrue;
}

std::vector<std::pair<int, bool>> Bdd::any_sat(Ref f) const {
  std::vector<std::pair<int, bool>> path;
  while (f > kTrue) {
    const Node& n = nodes_[static_cast<std::size_t>(f)];
    if (n.hi != kFalse) {
      path.emplace_back(n.var, true);
      f = n.hi;
    } else {
      path.emplace_back(n.var, false);
      f = n.lo;
    }
  }
  return f == kTrue ? path : std::vector<std::pair<int, bool>>{};
}

}  // namespace dpmerge::formal
