#pragma once

#include <optional>
#include <string>

#include "dpmerge/dfg/graph.h"
#include "dpmerge/formal/bdd.h"
#include "dpmerge/netlist/netlist.h"

namespace dpmerge::formal {

/// Outcome of a formal combinational equivalence check.
struct EquivResult {
  enum class Status { Equivalent, Different, ResourceLimit };
  Status status = Status::Equivalent;
  /// On Difference: which output / bit disagreed, plus a witness input
  /// assignment rendered as "name=binary" pairs.
  std::string detail;

  bool equivalent() const { return status == Status::Equivalent; }
  bool proved() const { return status != Status::ResourceLimit; }
};

/// Symbolic word: one BDD per bit, LSB first. Exposed so tests and tools
/// can build custom checks.
struct Word {
  std::vector<Bdd::Ref> bits;
  int width() const { return static_cast<int>(bits.size()); }
};

/// Symbolic datapath arithmetic over BDD words (the formal twin of
/// BitVector). All operations are modulo 2^width, mirroring the DFG
/// semantics exactly.
Word sym_const(Bdd& m, const BitVector& v);
Word sym_resize(Bdd& m, const Word& w, int width, Sign sign);
Word sym_add(Bdd& m, const Word& a, const Word& b);
Word sym_sub(Bdd& m, const Word& a, const Word& b);
Word sym_neg(Bdd& m, const Word& a);
Word sym_mul(Bdd& m, const Word& a, const Word& b);
Word sym_shl(Bdd& m, const Word& a, int s);
Bdd::Ref sym_lt(Bdd& m, const Word& a, const Word& b, bool is_signed);
Bdd::Ref sym_eq(Bdd& m, const Word& a, const Word& b);

/// Input-variable assignment shared by both sides of a check:
/// bit b of input i gets BDD variable b * num_inputs + i (bit-interleaved —
/// the datapath-friendly order that keeps adder BDDs linear).
class SymbolicInputs {
 public:
  /// Builds variables for inputs named/widthed like the graph's inputs.
  SymbolicInputs(Bdd& m, const dfg::Graph& g);
  const Word& by_name(const std::string& name) const;
  int total_bits() const { return total_bits_; }

  /// Decodes a BDD satisfying assignment back into per-input binary strings.
  std::string witness(const Bdd& m, Bdd::Ref f) const;

 private:
  std::vector<std::pair<std::string, Word>> words_;
  int total_bits_ = 0;
};

/// Symbolically evaluates a DFG: returns the output-port word of every node.
std::vector<Word> sym_eval_graph(Bdd& m, const dfg::Graph& g,
                                 const SymbolicInputs& in);

/// Symbolically evaluates a netlist: returns each output bus word by name.
std::vector<std::pair<std::string, Word>> sym_eval_netlist(
    Bdd& m, const netlist::Netlist& n, const SymbolicInputs& in);

/// Proves (or refutes, with a counterexample witness) that the netlist
/// implements the DFG, output-by-output and bit-by-bit. Buses match by
/// name. `max_nodes` bounds the BDD size; exceeding it yields
/// Status::ResourceLimit, not a verdict.
EquivResult check_netlist_vs_graph(const netlist::Netlist& n,
                                   const dfg::Graph& g,
                                   std::size_t max_nodes = 4u << 20);

/// Proves two DFGs equivalent (same inputs/outputs by name).
EquivResult check_graph_vs_graph(const dfg::Graph& a, const dfg::Graph& b,
                                 std::size_t max_nodes = 4u << 20);

}  // namespace dpmerge::formal
