#include "dpmerge/formal/equiv.h"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace dpmerge::formal {

using dfg::Edge;
using dfg::EdgeId;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;
using netlist::Gate;
using netlist::Netlist;

Word sym_const(Bdd& m, const BitVector& v) {
  (void)m;
  Word w;
  for (int i = 0; i < v.width(); ++i) {
    w.bits.push_back(v.bit(i) ? Bdd::kTrue : Bdd::kFalse);
  }
  return w;
}

Word sym_resize(Bdd& m, const Word& w, int width, Sign sign) {
  (void)m;
  Word r;
  const Bdd::Ref fill =
      (sign == Sign::Signed && w.width() > 0) ? w.bits.back() : Bdd::kFalse;
  for (int i = 0; i < width; ++i) {
    r.bits.push_back(i < w.width() ? w.bits[static_cast<std::size_t>(i)]
                                   : fill);
  }
  return r;
}

Word sym_add(Bdd& m, const Word& a, const Word& b) {
  assert(a.width() == b.width());
  Word s;
  Bdd::Ref carry = Bdd::kFalse;
  for (int i = 0; i < a.width(); ++i) {
    const Bdd::Ref x = a.bits[static_cast<std::size_t>(i)];
    const Bdd::Ref y = b.bits[static_cast<std::size_t>(i)];
    const Bdd::Ref xy = m.bdd_xor(x, y);
    s.bits.push_back(m.bdd_xor(xy, carry));
    carry = m.bdd_or(m.bdd_and(x, y), m.bdd_and(xy, carry));
  }
  return s;
}

Word sym_neg(Bdd& m, const Word& a) {
  // ~a + 1.
  Word inv;
  for (auto bit : a.bits) inv.bits.push_back(m.bdd_not(bit));
  Word one;
  one.bits.assign(static_cast<std::size_t>(a.width()), Bdd::kFalse);
  if (!one.bits.empty()) one.bits[0] = Bdd::kTrue;
  return sym_add(m, inv, one);
}

Word sym_sub(Bdd& m, const Word& a, const Word& b) {
  // a + ~b + 1, with the +1 folded in as the initial carry.
  assert(a.width() == b.width());
  Word s;
  Bdd::Ref carry = Bdd::kTrue;
  for (int i = 0; i < a.width(); ++i) {
    const Bdd::Ref x = a.bits[static_cast<std::size_t>(i)];
    const Bdd::Ref y = m.bdd_not(b.bits[static_cast<std::size_t>(i)]);
    const Bdd::Ref xy = m.bdd_xor(x, y);
    s.bits.push_back(m.bdd_xor(xy, carry));
    carry = m.bdd_or(m.bdd_and(x, y), m.bdd_and(xy, carry));
  }
  return s;
}

Word sym_shl(Bdd& m, const Word& a, int s) {
  (void)m;
  Word r;
  r.bits.assign(static_cast<std::size_t>(a.width()), Bdd::kFalse);
  for (int i = 0; i + s < a.width(); ++i) {
    r.bits[static_cast<std::size_t>(i + s)] =
        a.bits[static_cast<std::size_t>(i)];
  }
  return r;
}

Word sym_mul(Bdd& m, const Word& a, const Word& b) {
  assert(a.width() == b.width());
  Word acc;
  acc.bits.assign(static_cast<std::size_t>(a.width()), Bdd::kFalse);
  for (int j = 0; j < b.width(); ++j) {
    // acc += b_j ? (a << j) : 0  — mux each shifted bit by b_j.
    Word row;
    row.bits.assign(static_cast<std::size_t>(a.width()), Bdd::kFalse);
    for (int i = 0; i + j < a.width(); ++i) {
      row.bits[static_cast<std::size_t>(i + j)] =
          m.bdd_and(b.bits[static_cast<std::size_t>(j)],
                    a.bits[static_cast<std::size_t>(i)]);
    }
    acc = sym_add(m, acc, row);
  }
  return acc;
}

Bdd::Ref sym_lt(Bdd& m, const Word& a, const Word& b, bool is_signed) {
  assert(a.width() == b.width());
  if (a.width() == 0) return Bdd::kFalse;
  // Unsigned compare LSB-up; for signed, flip the MSBs first
  // (a <s b  <=>  (a ^ msb) <u (b ^ msb)).
  Bdd::Ref lt = Bdd::kFalse;
  for (int i = 0; i < a.width(); ++i) {
    Bdd::Ref x = a.bits[static_cast<std::size_t>(i)];
    Bdd::Ref y = b.bits[static_cast<std::size_t>(i)];
    if (is_signed && i == a.width() - 1) {
      x = m.bdd_not(x);
      y = m.bdd_not(y);
    }
    // lt = (~x & y) | ((x xnor y) & lt)
    lt = m.bdd_or(m.bdd_and(m.bdd_not(x), y),
                  m.bdd_and(m.bdd_xnor(x, y), lt));
  }
  return lt;
}

Bdd::Ref sym_eq(Bdd& m, const Word& a, const Word& b) {
  assert(a.width() == b.width());
  Bdd::Ref eq = Bdd::kTrue;
  for (int i = 0; i < a.width(); ++i) {
    eq = m.bdd_and(eq, m.bdd_xnor(a.bits[static_cast<std::size_t>(i)],
                                  b.bits[static_cast<std::size_t>(i)]));
  }
  return eq;
}

SymbolicInputs::SymbolicInputs(Bdd& m, const Graph& g) {
  const auto ins = g.inputs();
  const int n = static_cast<int>(ins.size());
  for (int i = 0; i < n; ++i) {
    const Node& node = g.node(ins[static_cast<std::size_t>(i)]);
    Word w;
    for (int b = 0; b < node.width; ++b) {
      w.bits.push_back(m.var(b * n + i));  // bit-interleaved order
      total_bits_ = std::max(total_bits_, b * n + i + 1);
    }
    words_.emplace_back(g.name(node), std::move(w));
  }
}

const Word& SymbolicInputs::by_name(const std::string& name) const {
  for (const auto& [n, w] : words_) {
    if (n == name) return w;
  }
  throw std::invalid_argument("no symbolic input named '" + name + "'");
}

std::string SymbolicInputs::witness(const Bdd& m, Bdd::Ref f) const {
  const auto sat = m.any_sat(f);
  std::vector<bool> assign(static_cast<std::size_t>(total_bits_), false);
  for (const auto& [v, val] : sat) {
    if (static_cast<std::size_t>(v) < assign.size()) {
      assign[static_cast<std::size_t>(v)] = val;
    }
  }
  std::ostringstream os;
  for (const auto& [name, w] : words_) {
    os << " " << name << "=";
    for (int b = w.width() - 1; b >= 0; --b) {
      os << (m.eval(w.bits[static_cast<std::size_t>(b)], assign) ? '1' : '0');
    }
  }
  return os.str();
}

std::vector<Word> sym_eval_graph(Bdd& m, const Graph& g,
                                 const SymbolicInputs& in) {
  std::vector<Word> result(static_cast<std::size_t>(g.node_count()));

  auto operand = [&](const Node& n, int port) {
    const Edge& e = g.edge(n.in[static_cast<std::size_t>(port)]);
    const Word& src = result[static_cast<std::size_t>(e.src.value)];
    const Word carried = sym_resize(m, src, e.width, e.sign);
    const Sign second = n.kind == OpKind::Extension ? n.ext_sign : e.sign;
    return sym_resize(m, carried, n.width, second);
  };

  for (NodeId id : g.freeze().topo) {
    const Node& n = g.node(id);
    auto& out = result[static_cast<std::size_t>(id.value)];
    switch (n.kind) {
      case OpKind::Input:
        out = in.by_name(g.name(n));
        if (out.width() != n.width) {
          throw std::invalid_argument("symbolic width mismatch on input '" +
                                      g.name(n) + "'");
        }
        break;
      case OpKind::Const:
        out = sym_const(m, n.value);
        break;
      case OpKind::Output:
      case OpKind::Extension:
        out = operand(n, 0);
        break;
      case OpKind::Add:
        out = sym_add(m, operand(n, 0), operand(n, 1));
        break;
      case OpKind::Sub:
        out = sym_sub(m, operand(n, 0), operand(n, 1));
        break;
      case OpKind::Mul:
        out = sym_mul(m, operand(n, 0), operand(n, 1));
        break;
      case OpKind::Neg:
        out = sym_neg(m, operand(n, 0));
        break;
      case OpKind::Shl:
        out = sym_shl(m, operand(n, 0), n.shift);
        break;
      case OpKind::LtS:
      case OpKind::LtU:
      case OpKind::Eq: {
        const Word a = operand(n, 0);
        const Word b = operand(n, 1);
        Bdd::Ref r;
        if (n.kind == OpKind::Eq) {
          r = sym_eq(m, a, b);
        } else {
          r = sym_lt(m, a, b, n.kind == OpKind::LtS);
        }
        out.bits.assign(static_cast<std::size_t>(n.width), Bdd::kFalse);
        out.bits[0] = r;
        break;
      }
    }
  }
  return result;
}

std::vector<std::pair<std::string, Word>> sym_eval_netlist(
    Bdd& m, const Netlist& n, const SymbolicInputs& in) {
  std::vector<Bdd::Ref> value(static_cast<std::size_t>(n.net_count()),
                              Bdd::kFalse);
  value[1] = Bdd::kTrue;
  for (const netlist::Bus& b : n.inputs()) {
    const Word& w = in.by_name(b.name);
    if (w.width() != b.signal.width()) {
      throw std::invalid_argument("width mismatch on input '" + b.name + "'");
    }
    for (int i = 0; i < w.width(); ++i) {
      value[static_cast<std::size_t>(b.signal.bit(i).value)] =
          w.bits[static_cast<std::size_t>(i)];
    }
  }
  for (netlist::GateId gid : n.topo_gates()) {
    const Gate& g = n.gates()[static_cast<std::size_t>(gid.value)];
    auto inv = [&](int k) {
      return value[static_cast<std::size_t>(g.inputs[static_cast<std::size_t>(k)].value)];
    };
    Bdd::Ref r = Bdd::kFalse;
    switch (g.type) {
      case netlist::CellType::INV:
        r = m.bdd_not(inv(0));
        break;
      case netlist::CellType::BUF:
        r = inv(0);
        break;
      case netlist::CellType::NAND2:
        r = m.bdd_not(m.bdd_and(inv(0), inv(1)));
        break;
      case netlist::CellType::NOR2:
        r = m.bdd_not(m.bdd_or(inv(0), inv(1)));
        break;
      case netlist::CellType::AND2:
        r = m.bdd_and(inv(0), inv(1));
        break;
      case netlist::CellType::OR2:
        r = m.bdd_or(inv(0), inv(1));
        break;
      case netlist::CellType::XOR2:
        r = m.bdd_xor(inv(0), inv(1));
        break;
      case netlist::CellType::XNOR2:
        r = m.bdd_xnor(inv(0), inv(1));
        break;
      case netlist::CellType::MUX2:
        r = m.ite(inv(2), inv(1), inv(0));
        break;
    }
    value[static_cast<std::size_t>(g.output.value)] = r;
  }
  std::vector<std::pair<std::string, Word>> outs;
  for (const netlist::Bus& b : n.outputs()) {
    Word w;
    for (int i = 0; i < b.signal.width(); ++i) {
      w.bits.push_back(value[static_cast<std::size_t>(b.signal.bit(i).value)]);
    }
    outs.emplace_back(b.name, std::move(w));
  }
  return outs;
}

namespace {

EquivResult compare_words(Bdd& m, const SymbolicInputs& in,
                          const std::string& name, const Word& expect,
                          const Word& got) {
  EquivResult res;
  if (expect.width() != got.width()) {
    res.status = EquivResult::Status::Different;
    res.detail = "output '" + name + "' width mismatch";
    return res;
  }
  for (int i = 0; i < expect.width(); ++i) {
    const Bdd::Ref diff = m.bdd_xor(expect.bits[static_cast<std::size_t>(i)],
                                    got.bits[static_cast<std::size_t>(i)]);
    if (diff != Bdd::kFalse) {
      res.status = EquivResult::Status::Different;
      res.detail = "output '" + name + "' bit " + std::to_string(i) +
                   " differs; witness:" + in.witness(m, diff);
      return res;
    }
  }
  return res;
}

}  // namespace

EquivResult check_netlist_vs_graph(const Netlist& n, const Graph& g,
                                   std::size_t max_nodes) {
  try {
    Bdd m(max_nodes);
    SymbolicInputs in(m, g);
    const auto graph_vals = sym_eval_graph(m, g, in);
    const auto net_outs = sym_eval_netlist(m, n, in);
    for (NodeId oid : g.outputs()) {
      const std::string& name = g.name(oid);
      const Word& expect = graph_vals[static_cast<std::size_t>(oid.value)];
      const Word* got = nullptr;
      for (const auto& [nm, w] : net_outs) {
        if (nm == name) got = &w;
      }
      if (!got) {
        EquivResult r;
        r.status = EquivResult::Status::Different;
        r.detail = "netlist has no output '" + name + "'";
        return r;
      }
      const EquivResult r = compare_words(m, in, name, expect, *got);
      if (!r.equivalent()) return r;
    }
    return {};
  } catch (const BddLimitExceeded&) {
    EquivResult r;
    r.status = EquivResult::Status::ResourceLimit;
    r.detail = "BDD node limit exceeded";
    return r;
  }
}

EquivResult check_graph_vs_graph(const Graph& a, const Graph& b,
                                 std::size_t max_nodes) {
  try {
    Bdd m(max_nodes);
    SymbolicInputs in(m, a);
    const auto va = sym_eval_graph(m, a, in);
    const auto vb = sym_eval_graph(m, b, in);
    for (NodeId oa : a.outputs()) {
      const std::string& name = a.name(oa);
      NodeId ob{};
      for (NodeId cand : b.outputs()) {
        if (b.name(cand) == name) ob = cand;
      }
      if (!ob.valid()) {
        EquivResult r;
        r.status = EquivResult::Status::Different;
        r.detail = "second graph has no output '" + name + "'";
        return r;
      }
      const EquivResult r =
          compare_words(m, in, name, va[static_cast<std::size_t>(oa.value)],
                        vb[static_cast<std::size_t>(ob.value)]);
      if (!r.equivalent()) return r;
    }
    return {};
  } catch (const BddLimitExceeded&) {
    EquivResult r;
    r.status = EquivResult::Status::ResourceLimit;
    r.detail = "BDD node limit exceeded";
    return r;
  }
}

}  // namespace dpmerge::formal
