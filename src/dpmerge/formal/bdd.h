#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace dpmerge::formal {

/// Thrown when a BDD operation would exceed the manager's node budget —
/// equivalence checks report "too large" instead of thrashing.
struct BddLimitExceeded : std::runtime_error {
  BddLimitExceeded() : std::runtime_error("BDD node limit exceeded") {}
};

/// A small reduced-ordered-BDD manager: hash-consed nodes, ITE with a
/// computed table, fixed variable order (the variable index *is* the
/// order). Enough for combinational equivalence checking of datapath
/// netlists; callers pick a datapath-friendly (bit-interleaved) variable
/// assignment.
class Bdd {
 public:
  using Ref = std::int32_t;
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  explicit Bdd(std::size_t max_nodes = 4u << 20);

  /// The function of variable `v` (projection).
  Ref var(int v);

  Ref bdd_not(Ref f) { return ite(f, kFalse, kTrue); }
  Ref bdd_and(Ref f, Ref g) { return ite(f, g, kFalse); }
  Ref bdd_or(Ref f, Ref g) { return ite(f, kTrue, g); }
  Ref bdd_xor(Ref f, Ref g) { return ite(f, bdd_not(g), g); }
  Ref bdd_xnor(Ref f, Ref g) { return ite(f, g, bdd_not(g)); }

  /// If-then-else: the universal connective; canonical by construction, so
  /// two functions are equal iff their Refs are equal.
  Ref ite(Ref f, Ref g, Ref h);

  bool is_const(Ref f) const { return f <= kTrue; }

  /// Evaluates under a variable assignment (missing variables read false).
  bool eval(Ref f, const std::vector<bool>& assignment) const;

  /// Any satisfying assignment of f (f != kFalse); pairs of (var, value).
  std::vector<std::pair<int, bool>> any_sat(Ref f) const;

  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    int var;
    Ref lo;
    Ref hi;
  };

  Ref mk(int var, Ref lo, Ref hi);
  int var_of(Ref f) const { return nodes_[static_cast<std::size_t>(f)].var; }
  Ref cofactor(Ref f, int v, bool positive) const;

  std::size_t max_nodes_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, Ref> unique_;
  std::unordered_map<std::uint64_t, Ref> ite_cache_;
};

}  // namespace dpmerge::formal
