#pragma once

#include <map>
#include <string>
#include <vector>

#include "dpmerge/netlist/netlist.h"

namespace dpmerge::netlist {

/// Cycle-free functional simulation of a netlist: evaluates every gate once
/// in topological order. Used by the synthesis equivalence tests (netlist vs
/// DFG interpreter on the same stimuli).
class Simulator {
 public:
  explicit Simulator(const Netlist& n);

  /// `by_name[input bus name]` supplies each input bus value (width must
  /// match). Returns each output bus value keyed by name.
  std::map<std::string, BitVector> run(
      const std::map<std::string, BitVector>& by_name) const;

 private:
  const Netlist& net_;
  std::vector<GateId> order_;
};

}  // namespace dpmerge::netlist
