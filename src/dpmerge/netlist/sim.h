#pragma once

#include <map>
#include <string>
#include <vector>

#include "dpmerge/netlist/netlist.h"

namespace dpmerge::netlist {

/// Cycle-free functional simulation of a netlist: evaluates every gate once
/// in topological order. This is the scalar reference oracle; bulk
/// simulation (verification sweeps) goes through `PackedSimulator`, which
/// evaluates 64 stimulus vectors per pass.
class Simulator {
 public:
  explicit Simulator(const Netlist& n);

  /// Positional form: `inputs[i]` supplies the value of the i-th bus in
  /// `Netlist::inputs()` order (width must match). Repeated callers should
  /// prefer this overload — it involves no string-keyed lookups.
  std::vector<BitVector> run(const std::vector<BitVector>& inputs) const;

  /// Name-keyed convenience form: `by_name[input bus name]` supplies each
  /// input bus value. Resolves names to positions, then defers to the
  /// positional overload. Returns each output bus value keyed by name.
  std::map<std::string, BitVector> run(
      const std::map<std::string, BitVector>& by_name) const;

 private:
  const Netlist& net_;
  std::vector<GateId> order_;
};

}  // namespace dpmerge::netlist
