#pragma once

#include <cstdint>
#include <map>

#include "dpmerge/netlist/sta.h"

namespace dpmerge::netlist {

/// One segment of the STA worst path: the net, the gate driving it (invalid
/// for a primary-input segment), the provenance owner of that gate, the
/// net's arrival time and the incremental delay this segment adds over its
/// critical predecessor. Incremental delays telescope: they sum back to the
/// worst-path arrival up to floating-point rounding.
struct PathSegment {
  NetId net;
  GateId gate;       ///< driver, or invalid (primary input / constant)
  int owner = -1;    ///< provenance owner DFG node, or -1
  double arrival_ns = 0.0;
  double incr_ns = 0.0;
};

/// The worst path of a TimingReport re-expressed as per-owner delay bills.
struct PathAttribution {
  double total_ns = 0.0;  ///< the report's longest_path_ns
  std::vector<PathSegment> segments;  ///< input -> output order
  /// Delay billed per provenance owner (-1 collects untagged segments).
  std::map<int, double> delay_by_owner;
  std::map<int, std::int64_t> path_gates_by_owner;
};

/// Bills every worst-path segment's incremental delay to the provenance
/// owner of the gate that drives it. Works on untagged netlists too (all
/// delay lands in the -1 bucket). The sum of `delay_by_owner` equals
/// `total_ns` within rounding.
PathAttribution attribute_critical_path(const Netlist& n,
                                        const TimingReport& rep);

/// Per-owner cell census: gates and area owned by each provenance owner.
struct OwnerCensus {
  std::int64_t gates = 0;
  double area = 0.0;
};

std::map<int, OwnerCensus> census_by_owner(const Netlist& n,
                                           const CellLibrary& lib);

}  // namespace dpmerge::netlist
