#pragma once

#include <string>

#include "dpmerge/netlist/netlist.h"

namespace dpmerge::netlist {

/// Writes a synthesised netlist as structural Verilog over the cell library
/// (INVX1, NAND2X2, ... instances), the interchange format downstream tools
/// expect from a datapath synthesis pass. Bus ports use the DFG input/output
/// names; internal nets are n<k>; constants come from one TIELO/TIEHI pair
/// of assigns.
std::string to_verilog(const Netlist& n, const std::string& module_name);

}  // namespace dpmerge::netlist
