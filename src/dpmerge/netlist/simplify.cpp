#include "dpmerge/netlist/simplify.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace dpmerge::netlist {

namespace {

bool commutative(CellType t) {
  switch (t) {
    case CellType::NAND2:
    case CellType::NOR2:
    case CellType::AND2:
    case CellType::OR2:
    case CellType::XOR2:
    case CellType::XNOR2:
      return true;
    default:
      return false;
  }
}

std::uint64_t gate_key(CellType t, const std::vector<NetId>& ins) {
  std::uint64_t k = static_cast<std::uint64_t>(t) + 1;
  for (NetId n : ins) {
    k = k * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(n.value) + 1;
  }
  return k;
}

}  // namespace

Netlist simplify(const Netlist& n, SimplifyStats* stats) {
  Netlist out;
  if (stats) stats->gates_before = n.gate_count();

  // old net id -> new net id.
  std::vector<NetId> map(static_cast<std::size_t>(n.net_count()), NetId{});
  map[0] = out.const0();
  map[1] = out.const1();
  for (const Bus& b : n.inputs()) {
    Bus nb{b.name, {}};
    for (NetId bit : b.signal.bits) {
      auto& slot = map[static_cast<std::size_t>(bit.value)];
      if (!slot.valid()) slot = out.new_net();
      nb.signal.bits.push_back(slot);
    }
    out.add_input(nb.name, nb.signal);
  }

  // Structural hash of already-built gates and inverter pairs.
  std::unordered_map<std::uint64_t, NetId> cse;
  std::vector<NetId> inverter_of(1, NetId{});  // new net -> its INV output
  auto remember_inv = [&](NetId in, NetId inv_out) {
    if (inverter_of.size() <= static_cast<std::size_t>(in.value)) {
      inverter_of.resize(static_cast<std::size_t>(in.value) + 1, NetId{});
    }
    inverter_of[static_cast<std::size_t>(in.value)] = inv_out;
  };
  auto known_inv = [&](NetId in) -> NetId {
    if (static_cast<std::size_t>(in.value) < inverter_of.size()) {
      return inverter_of[static_cast<std::size_t>(in.value)];
    }
    return NetId{};
  };

  for (GateId gid : n.topo_gates()) {
    const Gate& g = n.gates()[static_cast<std::size_t>(gid.value)];
    std::vector<NetId> ins;
    ins.reserve(g.inputs.size());
    for (NetId in : g.inputs) {
      const NetId m = map[static_cast<std::size_t>(in.value)];
      assert(m.valid() && "input net not yet rebuilt");
      ins.push_back(m);
    }
    if (commutative(g.type) && ins[0].value > ins[1].value) {
      std::swap(ins[0], ins[1]);
    }

    NetId result{};
    // Double-inverter collapse.
    if (g.type == CellType::INV) {
      const NetId prior = known_inv(ins[0]);
      if (prior.valid()) result = prior;
      // INV(INV(x)) -> x: if ins[0] is itself some INV output, find its
      // source cheaply via the driver in `out`.
      if (!result.valid()) {
        const Gate* d = out.driver(ins[0]);
        if (d && d->type == CellType::INV) result = d->inputs[0];
      }
    }
    if (!result.valid()) {
      const auto key = gate_key(g.type, ins);
      const auto it = cse.find(key);
      if (it != cse.end()) {
        result = it->second;
      } else {
        // Rebuild through the folding helpers (sweeps constants and
        // trivial identities).
        switch (g.type) {
          case CellType::INV:
            result = out.inv(ins[0]);
            break;
          case CellType::BUF:
            result = out.buf(ins[0]);
            break;
          case CellType::NAND2:
            result = out.nand2(ins[0], ins[1]);
            break;
          case CellType::NOR2:
            result = out.nor2(ins[0], ins[1]);
            break;
          case CellType::AND2:
            result = out.and2(ins[0], ins[1]);
            break;
          case CellType::OR2:
            result = out.or2(ins[0], ins[1]);
            break;
          case CellType::XOR2:
            result = out.xor2(ins[0], ins[1]);
            break;
          case CellType::XNOR2:
            result = out.xnor2(ins[0], ins[1]);
            break;
          case CellType::MUX2:
            result = out.mux2(ins[0], ins[1], ins[2]);
            break;
        }
        cse.emplace(key, result);
        if (g.type == CellType::INV) remember_inv(ins[0], result);
      }
    }
    map[static_cast<std::size_t>(g.output.value)] = result;
  }

  for (const Bus& b : n.outputs()) {
    Bus nb{b.name, {}};
    for (NetId bit : b.signal.bits) {
      const NetId m = map[static_cast<std::size_t>(bit.value)];
      nb.signal.bits.push_back(m.valid() ? m : out.const0());
    }
    out.add_output(nb.name, nb.signal);
  }

  // Dead-gate sweep: rebuild once more keeping only the cone of the
  // outputs. (Gates were only created on demand above, but CSE can leave
  // stale drivers when an output got folded away.)
  std::vector<bool> live(static_cast<std::size_t>(out.net_count()), false);
  {
    std::vector<NetId> stack;
    for (const Bus& b : out.outputs()) {
      for (NetId bit : b.signal.bits) stack.push_back(bit);
    }
    while (!stack.empty()) {
      const NetId cur = stack.back();
      stack.pop_back();
      if (live[static_cast<std::size_t>(cur.value)]) continue;
      live[static_cast<std::size_t>(cur.value)] = true;
      if (const Gate* d = out.driver(cur)) {
        for (NetId in : d->inputs) stack.push_back(in);
      }
    }
  }
  int live_gates = 0;
  for (const Gate& g : out.gates()) {
    if (live[static_cast<std::size_t>(g.output.value)]) ++live_gates;
  }
  if (live_gates != out.gate_count()) {
    Netlist pruned;
    std::vector<NetId> pmap(static_cast<std::size_t>(out.net_count()),
                            NetId{});
    pmap[0] = pruned.const0();
    pmap[1] = pruned.const1();
    for (const Bus& b : out.inputs()) {
      Bus nb{b.name, {}};
      for (NetId bit : b.signal.bits) {
        auto& slot = pmap[static_cast<std::size_t>(bit.value)];
        if (!slot.valid()) slot = pruned.new_net();
        nb.signal.bits.push_back(slot);
      }
      pruned.add_input(nb.name, nb.signal);
    }
    for (GateId gid : out.topo_gates()) {
      const Gate& g = out.gates()[static_cast<std::size_t>(gid.value)];
      if (!live[static_cast<std::size_t>(g.output.value)]) continue;
      std::vector<NetId> ins;
      for (NetId in : g.inputs) {
        auto& slot = pmap[static_cast<std::size_t>(in.value)];
        if (!slot.valid()) slot = pruned.new_net();  // shouldn't happen
        ins.push_back(slot);
      }
      const NetId o = pruned.add_gate(g.type, ins);
      pruned.mutable_gates().back().drive = g.drive;
      pmap[static_cast<std::size_t>(g.output.value)] = o;
    }
    for (const Bus& b : out.outputs()) {
      Bus nb{b.name, {}};
      for (NetId bit : b.signal.bits) {
        const NetId m = pmap[static_cast<std::size_t>(bit.value)];
        nb.signal.bits.push_back(m.valid() ? m : pruned.const0());
      }
      pruned.add_output(nb.name, nb.signal);
    }
    out = std::move(pruned);
  }

  if (stats) stats->gates_after = out.gate_count();
  return out;
}

}  // namespace dpmerge::netlist
