#pragma once

#include <string>
#include <vector>

#include "dpmerge/netlist/netlist.h"

namespace dpmerge::netlist {

/// Static timing analysis over the linear delay model (cell intrinsic +
/// drive resistance x capacitive load) and the area report. Primary inputs
/// arrive at t = 0, matching the paper's experimental setup ("we set the
/// arrival times at all inputs in each testcase to 0").
struct TimingReport {
  double longest_path_ns = 0.0;
  /// Arrival time per net id.
  std::vector<double> arrival;
  /// Net ids of the critical path, from a primary input to the latest
  /// output, in order.
  std::vector<NetId> critical_path;
};

class Sta {
 public:
  explicit Sta(const CellLibrary& lib) : lib_(lib) {}

  TimingReport analyze(const Netlist& n) const;

  /// Capacitive load on a gate's output net: sum of reader-pin input caps.
  double load_on(const Netlist& n, NetId net) const;

  /// Total cell area.
  double area(const Netlist& n) const;

  /// Area in the paper's reporting convention (scaled down by 100).
  double area_scaled(const Netlist& n) const { return area(n) / 100.0; }

 private:
  const CellLibrary& lib_;
};

}  // namespace dpmerge::netlist
