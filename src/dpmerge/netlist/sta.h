#pragma once

#include <string>
#include <vector>

#include "dpmerge/netlist/netlist.h"

namespace dpmerge::netlist {

/// Static timing analysis over the linear delay model (cell intrinsic +
/// drive resistance x capacitive load) and the area report. Primary inputs
/// arrive at t = 0, matching the paper's experimental setup ("we set the
/// arrival times at all inputs in each testcase to 0").
struct TimingReport {
  double longest_path_ns = 0.0;
  /// Arrival time per net id.
  std::vector<double> arrival;
  /// Net ids of the critical path, from a primary input to the latest
  /// output, in order.
  std::vector<NetId> critical_path;
};

class Sta {
 public:
  explicit Sta(const CellLibrary& lib) : lib_(lib) {}

  TimingReport analyze(const Netlist& n) const;

  /// Capacitive load per net id (sum of reader-pin input caps), computed in
  /// one pass over the gates. Callers that need several nets' loads must
  /// use this rather than probing nets one at a time.
  std::vector<double> net_loads(const Netlist& n) const;

  /// Total cell area.
  double area(const Netlist& n) const;

  /// Area in the paper's reporting convention (scaled down by 100).
  double area_scaled(const Netlist& n) const { return area(n) / 100.0; }

 private:
  const CellLibrary& lib_;
};

/// Incremental arrival-time maintenance for gate-sizing loops. A full
/// `Sta::analyze` is O(gates) per query; resizing one gate only perturbs
///   (a) the loads of that gate's input nets (its input caps changed), and
///   (b) delays/arrivals in the forward cone of the gate and of its input
///       nets' drivers,
/// so `update_drive_change` walks a topologically-ordered worklist over
/// exactly that cone and stops where arrivals (and critical-path `from`
/// links) settle. Invariants maintained between calls:
///   - `load_[n]`    == sum of reader-pin input caps of net n
///   - `arrival_[n]` == Sta::analyze arrival of net n
///   - `from_[n]`    == latest-arriving input of n's driver (ties broken
///                      identically to Sta::analyze: last input wins)
/// Any structural edit (adding gates, rewiring inputs) invalidates the
/// state; call `rebuild()` afterwards.
class IncrementalSta {
 public:
  IncrementalSta(const Netlist& n, const CellLibrary& lib);

  /// Recomputes everything from scratch (use after topology changes).
  void rebuild();

  /// Call after changing gate `g`'s drive. Recomputes the loads of `g`'s
  /// input nets from their reader lists and re-propagates arrivals over
  /// the affected forward cone only.
  void update_drive_change(GateId g);

  double longest_path_ns() const { return longest_; }
  double arrival(NetId n) const {
    return arrival_[static_cast<std::size_t>(n.value)];
  }
  const std::vector<double>& arrivals() const { return arrival_; }
  double load(NetId n) const {
    return load_[static_cast<std::size_t>(n.value)];
  }

  /// Critical path traced on demand from the latest-arriving output bit.
  std::vector<NetId> critical_path() const;

  /// Full report in the `Sta::analyze` format.
  TimingReport report() const;

 private:
  void recompute_gate(int gate_idx);
  void refresh_longest();

  const Netlist& net_;
  const CellLibrary& lib_;
  std::vector<GateId> topo_;
  std::vector<int> topo_pos_;                // gate idx -> topo position
  std::vector<std::vector<int>> reader_of_;  // net -> reader gate idxs
  std::vector<double> arrival_;              // per net
  std::vector<double> load_;                 // per net
  std::vector<NetId> from_;                  // per net: critical predecessor
  std::vector<NetId> output_bits_;
  double longest_ = 0.0;
  NetId longest_net_{};

  // Worklist scratch (persisted to avoid reallocation per update).
  std::vector<char> queued_;  // per gate
};

}  // namespace dpmerge::netlist
