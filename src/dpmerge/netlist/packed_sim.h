#pragma once

#include <cstdint>
#include <vector>

#include "dpmerge/netlist/netlist.h"

namespace dpmerge::netlist {

/// 64-way word-parallel netlist simulation: every net carries a `uint64_t`
/// whose bit L is the net's Boolean value in lane L, so one topological
/// sweep evaluates 64 independent stimulus vectors. This is the classic
/// word-parallel (a.k.a. "bit-parallel" or "compiled 2-value") logic
/// simulation technique; it makes Monte-Carlo equivalence checking
/// (`synth::verify_netlist`) roughly a lane-count faster than the scalar
/// `Simulator`, which remains as the reference oracle.
class PackedSimulator {
 public:
  static constexpr int kLanes = 64;

  explicit PackedSimulator(const Netlist& n);

  /// One word per bit of each bus, buses in `Netlist::inputs()` /
  /// `outputs()` order, bits LSB-first — `PackedBus[b]` holds the 64 lanes
  /// of bit b.
  using PackedBus = std::vector<std::uint64_t>;

  /// Raw packed run. `inputs[i]` must have exactly as many words as input
  /// bus i has bits. Returns one `PackedBus` per output bus. Lanes are
  /// fully independent; unused lanes simply compute garbage vectors.
  std::vector<PackedBus> run(const std::vector<PackedBus>& inputs) const;

  /// Convenience wrapper over `run` for BitVector stimuli:
  /// `stimuli[L][i]` is the value of input bus i in lane L (at most
  /// `kLanes` lanes). Returns `results[L][j]` = value of output bus j in
  /// lane L.
  std::vector<std::vector<BitVector>> run_batch(
      const std::vector<std::vector<BitVector>>& stimuli) const;

  const Netlist& netlist() const { return net_; }

 private:
  const Netlist& net_;
  std::vector<GateId> order_;
};

}  // namespace dpmerge::netlist
