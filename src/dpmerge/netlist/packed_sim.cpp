#include "dpmerge/netlist/packed_sim.h"

#include <stdexcept>

#include "dpmerge/obs/obs.h"

namespace dpmerge::netlist {

PackedSimulator::PackedSimulator(const Netlist& n)
    : net_(n), order_(n.topo_gates()) {}

std::vector<PackedSimulator::PackedBus> PackedSimulator::run(
    const std::vector<PackedBus>& inputs) const {
  if (inputs.size() != net_.inputs().size()) {
    throw std::invalid_argument("packed stimulus count mismatch");
  }
  std::vector<std::uint64_t> value(static_cast<std::size_t>(net_.net_count()),
                                   0);
  value[1] = ~std::uint64_t{0};  // const1 in every lane

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Bus& b = net_.inputs()[i];
    if (static_cast<int>(inputs[i].size()) != b.signal.width()) {
      throw std::invalid_argument("packed stimulus width mismatch for '" +
                                  b.name + "'");
    }
    for (int bit = 0; bit < b.signal.width(); ++bit) {
      value[static_cast<std::size_t>(b.signal.bit(bit).value)] =
          inputs[i][static_cast<std::size_t>(bit)];
    }
  }

  const Gate* gates = net_.gates().data();
  std::uint64_t ins[3];
  for (GateId gid : order_) {
    const Gate& g = gates[static_cast<std::size_t>(gid.value)];
    for (std::size_t k = 0; k < g.inputs.size(); ++k) {
      ins[k] = value[static_cast<std::size_t>(g.inputs[k].value)];
    }
    value[static_cast<std::size_t>(g.output.value)] =
        eval_cell_packed(g.type, ins);
  }

  std::vector<PackedBus> out(net_.outputs().size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Bus& b = net_.outputs()[i];
    out[i].resize(static_cast<std::size_t>(b.signal.width()));
    for (int bit = 0; bit < b.signal.width(); ++bit) {
      out[i][static_cast<std::size_t>(bit)] =
          value[static_cast<std::size_t>(b.signal.bit(bit).value)];
    }
  }
  return out;
}

std::vector<std::vector<BitVector>> PackedSimulator::run_batch(
    const std::vector<std::vector<BitVector>>& stimuli) const {
  const std::size_t lanes = stimuli.size();
  if (lanes == 0) return {};
  if (lanes > static_cast<std::size_t>(kLanes)) {
    throw std::invalid_argument("more than 64 lanes in one batch");
  }
  obs::stat_add("packed_sim.batches");
  obs::stat_add("packed_sim.lanes_used", static_cast<std::int64_t>(lanes));
  if constexpr (obs::compiled_in()) {
    // Lane-utilization histogram: how full the 64-wide batches actually are.
    // Registry lookup mutexes; cache the reference once per process.
    static obs::Histogram& lanes_hist =
        obs::Registry::instance().histogram("packed_sim.lanes_per_batch");
    lanes_hist.observe(static_cast<std::int64_t>(lanes));
  }

  // Pack: word for bit b of bus i has stimuli[L][i].bit(b) in bit L.
  std::vector<PackedBus> packed(net_.inputs().size());
  for (std::size_t i = 0; i < packed.size(); ++i) {
    const int width = net_.inputs()[i].signal.width();
    packed[i].assign(static_cast<std::size_t>(width), 0);
    for (std::size_t L = 0; L < lanes; ++L) {
      if (stimuli[L].size() != packed.size()) {
        throw std::invalid_argument("lane stimulus count mismatch");
      }
      const BitVector& v = stimuli[L][i];
      if (v.width() != width) {
        throw std::invalid_argument("lane stimulus width mismatch for '" +
                                    net_.inputs()[i].name + "'");
      }
      for (int b = 0; b < width; ++b) {
        packed[i][static_cast<std::size_t>(b)] |=
            static_cast<std::uint64_t>(v.bit(b)) << L;
      }
    }
  }

  const auto packed_out = run(packed);

  std::vector<std::vector<BitVector>> results(lanes);
  for (std::size_t L = 0; L < lanes; ++L) {
    results[L].reserve(packed_out.size());
    for (std::size_t j = 0; j < packed_out.size(); ++j) {
      BitVector v(static_cast<int>(packed_out[j].size()));
      for (std::size_t b = 0; b < packed_out[j].size(); ++b) {
        v.set_bit(static_cast<int>(b), (packed_out[j][b] >> L) & 1u);
      }
      results[L].push_back(std::move(v));
    }
  }
  return results;
}

}  // namespace dpmerge::netlist
