#include "dpmerge/netlist/sim.h"

#include <stdexcept>

namespace dpmerge::netlist {

Simulator::Simulator(const Netlist& n) : net_(n), order_(n.topo_gates()) {}

std::map<std::string, BitVector> Simulator::run(
    const std::map<std::string, BitVector>& by_name) const {
  std::vector<bool> value(static_cast<std::size_t>(net_.net_count()), false);
  value[1] = true;  // const1

  for (const Bus& b : net_.inputs()) {
    const auto it = by_name.find(b.name);
    if (it == by_name.end()) {
      throw std::invalid_argument("missing stimulus for input '" + b.name +
                                  "'");
    }
    if (it->second.width() != b.signal.width()) {
      throw std::invalid_argument("stimulus width mismatch for '" + b.name +
                                  "'");
    }
    for (int i = 0; i < b.signal.width(); ++i) {
      value[static_cast<std::size_t>(b.signal.bit(i).value)] =
          it->second.bit(i);
    }
  }

  std::vector<bool> ins;
  for (GateId gid : order_) {
    const Gate& g = net_.gates()[static_cast<std::size_t>(gid.value)];
    ins.clear();
    for (NetId in : g.inputs) {
      ins.push_back(value[static_cast<std::size_t>(in.value)]);
    }
    value[static_cast<std::size_t>(g.output.value)] = eval_cell(g.type, ins);
  }

  std::map<std::string, BitVector> out;
  for (const Bus& b : net_.outputs()) {
    BitVector v(b.signal.width());
    for (int i = 0; i < b.signal.width(); ++i) {
      v.set_bit(i, value[static_cast<std::size_t>(b.signal.bit(i).value)]);
    }
    out[b.name] = v;
  }
  return out;
}

}  // namespace dpmerge::netlist
