#include "dpmerge/netlist/sim.h"

#include <stdexcept>

#include "dpmerge/obs/obs.h"

namespace dpmerge::netlist {

Simulator::Simulator(const Netlist& n) : net_(n), order_(n.topo_gates()) {}

std::vector<BitVector> Simulator::run(
    const std::vector<BitVector>& inputs) const {
  if (inputs.size() != net_.inputs().size()) {
    throw std::invalid_argument("stimulus count mismatch");
  }
  obs::stat_add("sim.scalar_runs");
  std::vector<bool> value(static_cast<std::size_t>(net_.net_count()), false);
  value[1] = true;  // const1

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Bus& b = net_.inputs()[i];
    if (inputs[i].width() != b.signal.width()) {
      throw std::invalid_argument("stimulus width mismatch for '" + b.name +
                                  "'");
    }
    for (int bit = 0; bit < b.signal.width(); ++bit) {
      value[static_cast<std::size_t>(b.signal.bit(bit).value)] =
          inputs[i].bit(bit);
    }
  }

  std::vector<bool> ins;
  for (GateId gid : order_) {
    const Gate& g = net_.gates()[static_cast<std::size_t>(gid.value)];
    ins.clear();
    for (NetId in : g.inputs) {
      ins.push_back(value[static_cast<std::size_t>(in.value)]);
    }
    value[static_cast<std::size_t>(g.output.value)] = eval_cell(g.type, ins);
  }

  std::vector<BitVector> out;
  out.reserve(net_.outputs().size());
  for (const Bus& b : net_.outputs()) {
    BitVector v(b.signal.width());
    for (int bit = 0; bit < b.signal.width(); ++bit) {
      v.set_bit(bit, value[static_cast<std::size_t>(b.signal.bit(bit).value)]);
    }
    out.push_back(std::move(v));
  }
  return out;
}

std::map<std::string, BitVector> Simulator::run(
    const std::map<std::string, BitVector>& by_name) const {
  std::vector<BitVector> inputs;
  inputs.reserve(net_.inputs().size());
  for (const Bus& b : net_.inputs()) {
    const auto it = by_name.find(b.name);
    if (it == by_name.end()) {
      throw std::invalid_argument("missing stimulus for input '" + b.name +
                                  "'");
    }
    inputs.push_back(it->second);
  }
  const auto values = run(inputs);
  std::map<std::string, BitVector> out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[net_.outputs()[i].name] = values[i];
  }
  return out;
}

}  // namespace dpmerge::netlist
