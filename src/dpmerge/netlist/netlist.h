#pragma once

#include <string>
#include <vector>

#include "dpmerge/netlist/cell.h"
#include "dpmerge/support/bitvector.h"
#include "dpmerge/support/sign.h"

namespace dpmerge::netlist {

struct NetId {
  int value = -1;
  bool valid() const { return value >= 0; }
  auto operator<=>(const NetId&) const = default;
};

struct GateId {
  int value = -1;
  auto operator<=>(const GateId&) const = default;
};

struct Gate {
  GateId id;
  CellType type = CellType::INV;
  int drive = 0;  ///< drive-strength variant index (0 = X1)
  std::vector<NetId> inputs;
  NetId output;
};

/// A multi-bit signal: nets in LSB-first order. Mirrors BitVector semantics
/// (resize = truncate or replicate the top net / tie to 0).
struct Signal {
  std::vector<NetId> bits;
  int width() const { return static_cast<int>(bits.size()); }
  NetId bit(int i) const { return bits[static_cast<std::size_t>(i)]; }
  NetId msb() const { return bits.back(); }
};

struct Bus {
  std::string name;
  Signal signal;
};

/// Structural gate-level netlist over the cell library, with two designated
/// constant nets (undriven; simulation and timing treat them as stable 0/1
/// with arrival time 0).
///
/// Gate construction helpers return the freshly driven output net. The
/// constant-folding helpers (`and2`, `or2`, ...) peephole away gates whose
/// inputs are the constant nets — width adaptation and masked partial
/// products generate many of those.
class Netlist {
 public:
  Netlist();

  NetId new_net();
  NetId const0() const { return NetId{0}; }
  NetId const1() const { return NetId{1}; }
  bool is_const(NetId n) const { return n.value <= 1; }

  /// Raw gate creation (no folding).
  NetId add_gate(CellType t, std::vector<NetId> inputs);
  /// Re-drives an existing net with a gate (used by buffering transforms).
  GateId add_gate_driving(CellType t, std::vector<NetId> inputs, NetId out);

  // Folding helpers.
  NetId inv(NetId a);
  NetId buf(NetId a);
  NetId and2(NetId a, NetId b);
  NetId or2(NetId a, NetId b);
  NetId nand2(NetId a, NetId b);
  NetId nor2(NetId a, NetId b);
  NetId xor2(NetId a, NetId b);
  NetId xnor2(NetId a, NetId b);
  NetId mux2(NetId d0, NetId d1, NetId sel);

  /// Full adder from primitive gates: returns {sum, carry}.
  std::pair<NetId, NetId> full_adder(NetId a, NetId b, NetId c);
  /// Half adder: returns {sum, carry}.
  std::pair<NetId, NetId> half_adder(NetId a, NetId b);

  /// Signal-level helpers.
  Signal constant_signal(const BitVector& v);
  Signal resize(const Signal& s, int width, Sign sign);
  Signal invert(const Signal& s);

  // Primary interface buses.
  void add_input(const std::string& name, const Signal& s);
  void add_output(const std::string& name, const Signal& s);
  const std::vector<Bus>& inputs() const { return inputs_; }
  const std::vector<Bus>& outputs() const { return outputs_; }

  const std::vector<Gate>& gates() const { return gates_; }
  std::vector<Gate>& mutable_gates() { return gates_; }
  int gate_count() const { return static_cast<int>(gates_.size()); }
  int net_count() const { return net_count_; }

  // ---- provenance tags (dpmerge::obs) ----
  // Side metadata only: the DFG node whose synthesis created each gate.
  // Never influences structure, simulation, timing or export, and compiles
  // out entirely with -DDPMERGE_OBS=OFF (owner() is then always -1), so
  // netlists are byte-identical with or without provenance.

  /// Sets the owner DFG node id stamped on subsequently created gates
  /// (-1 = untagged). The synthesizer scopes this around each node's turn.
  void set_provenance_owner(int dfg_node) {
#ifndef DPMERGE_OBS_DISABLED
    current_owner_ = dfg_node;
#else
    (void)dfg_node;
#endif
  }

  /// Owner DFG node of a gate, or -1 (untagged / compiled out).
  int provenance_owner(GateId g) const {
#ifndef DPMERGE_OBS_DISABLED
    const auto i = static_cast<std::size_t>(g.value);
    return i < gate_owner_.size() ? gate_owner_[i] : -1;
#else
    (void)g;
    return -1;
#endif
  }

  /// True when at least one gate carries an owner tag.
  bool has_provenance() const {
#ifndef DPMERGE_OBS_DISABLED
    for (int o : gate_owner_) {
      if (o >= 0) return true;
    }
#endif
    return false;
  }

  /// Driver gate of a net, or nullptr for primary inputs / constants.
  const Gate* driver(NetId n) const;

  /// Gates in topological order (inputs first). Recomputed on demand —
  /// optimisation passes may insert gates out of order.
  std::vector<GateId> topo_gates() const;

  /// Structural checks: single driver per net, no combinational cycles, all
  /// gate inputs driven or primary/constant.
  std::vector<std::string> validate() const;

 private:
  int net_count_ = 0;
  std::vector<Gate> gates_;
  std::vector<int> driver_of_;  // net -> gate index, -1 if none
  std::vector<Bus> inputs_;
  std::vector<Bus> outputs_;
#ifndef DPMERGE_OBS_DISABLED
  std::vector<int> gate_owner_;  // parallel to gates_; -1 = untagged
  int current_owner_ = -1;
#endif
};

}  // namespace dpmerge::netlist
