#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace dpmerge::netlist {

/// The combinational cell types of the technology library. Arithmetic
/// structures (full adders, carry trees, partial products) are decomposed
/// into these primitives so timing and area are uniform across flows.
enum class CellType : unsigned char {
  INV,
  BUF,
  NAND2,
  NOR2,
  AND2,
  OR2,
  XOR2,
  XNOR2,
  MUX2,  // inputs: {d0, d1, sel}
};

int cell_input_count(CellType t);
std::string_view to_string(CellType t);

/// Evaluates the boolean function of a cell.
bool eval_cell(CellType t, const std::vector<bool>& inputs);

/// Word-parallel counterpart of `eval_cell`: evaluates the cell on 64
/// independent stimulus lanes at once. `in` points at
/// `cell_input_count(t)` words; bit L of every word belongs to lane L, and
/// bit L of the result is the cell output in that lane.
std::uint64_t eval_cell_packed(CellType t, const std::uint64_t* in);

/// One drive-strength variant of a cell. The delay model is the standard
/// linear one: pin-to-pin delay = intrinsic + drive_resistance * load, where
/// load is the sum of the fanout pins' input capacitances (normalised units:
/// 1.0 = one X1 inverter input).
struct CellVariant {
  double area;              ///< library area units
  double intrinsic_ns;      ///< unloaded pin-to-pin delay
  double drive_res_ns;      ///< ns per unit of load capacitance
  double input_cap;         ///< load presented per input pin
};

constexpr int kDriveLevels = 3;  // X1, X2, X4

struct CellSpec {
  CellType type;
  std::array<CellVariant, kDriveLevels> variants;
};

/// A small combinational standard-cell library with areas and linear delay
/// coefficients calibrated to the flavour of a 0.25 um process (the paper's
/// TSMC library is proprietary; see DESIGN.md §1 — only relative
/// delay/area between synthesis flows is meaningful).
class CellLibrary {
 public:
  /// The default 0.25 um-class library used by every bench.
  static const CellLibrary& tsmc025();

  const CellSpec& spec(CellType t) const {
    return specs_[static_cast<std::size_t>(t)];
  }
  const CellVariant& variant(CellType t, int drive) const {
    return spec(t).variants[static_cast<std::size_t>(drive)];
  }

 private:
  CellLibrary();
  std::array<CellSpec, 9> specs_;
};

}  // namespace dpmerge::netlist
