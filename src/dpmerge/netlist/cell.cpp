#include "dpmerge/netlist/cell.h"

#include <cassert>

namespace dpmerge::netlist {

int cell_input_count(CellType t) {
  switch (t) {
    case CellType::INV:
    case CellType::BUF:
      return 1;
    case CellType::MUX2:
      return 3;
    default:
      return 2;
  }
}

std::string_view to_string(CellType t) {
  switch (t) {
    case CellType::INV:
      return "INV";
    case CellType::BUF:
      return "BUF";
    case CellType::NAND2:
      return "NAND2";
    case CellType::NOR2:
      return "NOR2";
    case CellType::AND2:
      return "AND2";
    case CellType::OR2:
      return "OR2";
    case CellType::XOR2:
      return "XOR2";
    case CellType::XNOR2:
      return "XNOR2";
    case CellType::MUX2:
      return "MUX2";
  }
  return "?";
}

bool eval_cell(CellType t, const std::vector<bool>& in) {
  assert(static_cast<int>(in.size()) == cell_input_count(t));
  switch (t) {
    case CellType::INV:
      return !in[0];
    case CellType::BUF:
      return in[0];
    case CellType::NAND2:
      return !(in[0] && in[1]);
    case CellType::NOR2:
      return !(in[0] || in[1]);
    case CellType::AND2:
      return in[0] && in[1];
    case CellType::OR2:
      return in[0] || in[1];
    case CellType::XOR2:
      return in[0] != in[1];
    case CellType::XNOR2:
      return in[0] == in[1];
    case CellType::MUX2:
      return in[2] ? in[1] : in[0];
  }
  return false;
}

std::uint64_t eval_cell_packed(CellType t, const std::uint64_t* in) {
  switch (t) {
    case CellType::INV:
      return ~in[0];
    case CellType::BUF:
      return in[0];
    case CellType::NAND2:
      return ~(in[0] & in[1]);
    case CellType::NOR2:
      return ~(in[0] | in[1]);
    case CellType::AND2:
      return in[0] & in[1];
    case CellType::OR2:
      return in[0] | in[1];
    case CellType::XOR2:
      return in[0] ^ in[1];
    case CellType::XNOR2:
      return ~(in[0] ^ in[1]);
    case CellType::MUX2:
      return (in[0] & ~in[2]) | (in[1] & in[2]);
  }
  return 0;
}

namespace {

/// X1 baseline for a cell; X2/X4 scale resistance down and area/cap up.
CellSpec make_spec(CellType t, double area, double intrinsic, double res,
                   double cap) {
  CellSpec s;
  s.type = t;
  const double area_k[kDriveLevels] = {1.0, 1.6, 2.6};
  const double res_k[kDriveLevels] = {1.0, 0.55, 0.3};
  const double cap_k[kDriveLevels] = {1.0, 1.7, 2.8};
  for (int d = 0; d < kDriveLevels; ++d) {
    s.variants[static_cast<std::size_t>(d)] = CellVariant{
        area * area_k[d], intrinsic, res * res_k[d], cap * cap_k[d]};
  }
  return s;
}

}  // namespace

CellLibrary::CellLibrary() {
  // 0.25 um-flavour numbers: an unloaded X1 inverter ~25 ps, a fanout-of-1
  // load adds ~15 ps; XOR-class cells are ~4x an inverter. Areas are in
  // relative library units (INV = 1).
  specs_[static_cast<std::size_t>(CellType::INV)] =
      make_spec(CellType::INV, 1.0, 0.025, 0.015, 1.0);
  specs_[static_cast<std::size_t>(CellType::BUF)] =
      make_spec(CellType::BUF, 1.4, 0.045, 0.012, 1.0);
  specs_[static_cast<std::size_t>(CellType::NAND2)] =
      make_spec(CellType::NAND2, 1.5, 0.035, 0.016, 1.1);
  specs_[static_cast<std::size_t>(CellType::NOR2)] =
      make_spec(CellType::NOR2, 1.5, 0.045, 0.020, 1.1);
  specs_[static_cast<std::size_t>(CellType::AND2)] =
      make_spec(CellType::AND2, 2.0, 0.055, 0.016, 1.0);
  specs_[static_cast<std::size_t>(CellType::OR2)] =
      make_spec(CellType::OR2, 2.0, 0.065, 0.018, 1.0);
  specs_[static_cast<std::size_t>(CellType::XOR2)] =
      make_spec(CellType::XOR2, 3.0, 0.100, 0.022, 1.8);
  specs_[static_cast<std::size_t>(CellType::XNOR2)] =
      make_spec(CellType::XNOR2, 3.0, 0.100, 0.022, 1.8);
  specs_[static_cast<std::size_t>(CellType::MUX2)] =
      make_spec(CellType::MUX2, 3.2, 0.085, 0.020, 1.4);
}

const CellLibrary& CellLibrary::tsmc025() {
  static const CellLibrary lib;
  return lib;
}

}  // namespace dpmerge::netlist
