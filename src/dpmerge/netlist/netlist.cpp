#include "dpmerge/netlist/netlist.h"

#include <cassert>

namespace dpmerge::netlist {

Netlist::Netlist() {
  new_net();  // net 0: constant 0
  new_net();  // net 1: constant 1
}

NetId Netlist::new_net() {
  driver_of_.push_back(-1);
  return NetId{net_count_++};
}

NetId Netlist::add_gate(CellType t, std::vector<NetId> inputs) {
  const NetId out = new_net();
  add_gate_driving(t, std::move(inputs), out);
  return out;
}

GateId Netlist::add_gate_driving(CellType t, std::vector<NetId> inputs,
                                 NetId out) {
  assert(static_cast<int>(inputs.size()) == cell_input_count(t));
  Gate g;
  g.id = GateId{static_cast<int>(gates_.size())};
  g.type = t;
  g.inputs = std::move(inputs);
  g.output = out;
  assert(driver_of_[static_cast<std::size_t>(out.value)] == -1 &&
         "net already driven");
  driver_of_[static_cast<std::size_t>(out.value)] = g.id.value;
  gates_.push_back(std::move(g));
#ifndef DPMERGE_OBS_DISABLED
  gate_owner_.push_back(current_owner_);
#endif
  return gates_.back().id;
}

NetId Netlist::inv(NetId a) {
  if (a == const0()) return const1();
  if (a == const1()) return const0();
  return add_gate(CellType::INV, {a});
}

NetId Netlist::buf(NetId a) {
  if (is_const(a)) return a;
  return add_gate(CellType::BUF, {a});
}

NetId Netlist::and2(NetId a, NetId b) {
  if (a == const0() || b == const0()) return const0();
  if (a == const1()) return b;
  if (b == const1()) return a;
  if (a == b) return a;
  return add_gate(CellType::AND2, {a, b});
}

NetId Netlist::or2(NetId a, NetId b) {
  if (a == const1() || b == const1()) return const1();
  if (a == const0()) return b;
  if (b == const0()) return a;
  if (a == b) return a;
  return add_gate(CellType::OR2, {a, b});
}

NetId Netlist::nand2(NetId a, NetId b) {
  if (a == const0() || b == const0()) return const1();
  if (a == const1()) return inv(b);
  if (b == const1()) return inv(a);
  return add_gate(CellType::NAND2, {a, b});
}

NetId Netlist::nor2(NetId a, NetId b) {
  if (a == const1() || b == const1()) return const0();
  if (a == const0()) return inv(b);
  if (b == const0()) return inv(a);
  return add_gate(CellType::NOR2, {a, b});
}

NetId Netlist::xor2(NetId a, NetId b) {
  if (a == const0()) return b;
  if (b == const0()) return a;
  if (a == const1()) return inv(b);
  if (b == const1()) return inv(a);
  if (a == b) return const0();
  return add_gate(CellType::XOR2, {a, b});
}

NetId Netlist::xnor2(NetId a, NetId b) {
  if (a == const0()) return inv(b);
  if (b == const0()) return inv(a);
  if (a == const1()) return b;
  if (b == const1()) return a;
  if (a == b) return const1();
  return add_gate(CellType::XNOR2, {a, b});
}

NetId Netlist::mux2(NetId d0, NetId d1, NetId sel) {
  if (sel == const0()) return d0;
  if (sel == const1()) return d1;
  if (d0 == d1) return d0;
  if (d0 == const0() && d1 == const1()) return sel;
  return add_gate(CellType::MUX2, {d0, d1, sel});
}

std::pair<NetId, NetId> Netlist::full_adder(NetId a, NetId b, NetId c) {
  const NetId ab = xor2(a, b);
  const NetId sum = xor2(ab, c);
  const NetId carry = or2(and2(a, b), and2(ab, c));
  return {sum, carry};
}

std::pair<NetId, NetId> Netlist::half_adder(NetId a, NetId b) {
  return {xor2(a, b), and2(a, b)};
}

Signal Netlist::constant_signal(const BitVector& v) {
  Signal s;
  s.bits.reserve(static_cast<std::size_t>(v.width()));
  for (int i = 0; i < v.width(); ++i) {
    s.bits.push_back(v.bit(i) ? const1() : const0());
  }
  return s;
}

Signal Netlist::resize(const Signal& s, int width, Sign sign) {
  Signal r;
  r.bits.reserve(static_cast<std::size_t>(width));
  const NetId fill =
      (sign == Sign::Signed && s.width() > 0) ? s.msb() : const0();
  for (int i = 0; i < width; ++i) {
    r.bits.push_back(i < s.width() ? s.bit(i) : fill);
  }
  return r;
}

Signal Netlist::invert(const Signal& s) {
  Signal r;
  r.bits.reserve(s.bits.size());
  // Replicated fill nets (from sign extension) get one shared inverter.
  NetId last_in{-1}, last_out{-1};
  for (NetId n : s.bits) {
    if (n == last_in) {
      r.bits.push_back(last_out);
      continue;
    }
    last_in = n;
    last_out = inv(n);
    r.bits.push_back(last_out);
  }
  return r;
}

void Netlist::add_input(const std::string& name, const Signal& s) {
  inputs_.push_back(Bus{name, s});
}

void Netlist::add_output(const std::string& name, const Signal& s) {
  outputs_.push_back(Bus{name, s});
}

const Gate* Netlist::driver(NetId n) const {
  const int g = driver_of_[static_cast<std::size_t>(n.value)];
  return g < 0 ? nullptr : &gates_[static_cast<std::size_t>(g)];
}

std::vector<GateId> Netlist::topo_gates() const {
  std::vector<int> pending(gates_.size(), 0);
  // fanout_gates[net] -> gates reading it.
  std::vector<std::vector<int>> readers(static_cast<std::size_t>(net_count_));
  std::vector<GateId> order;
  order.reserve(gates_.size());
  std::vector<int> ready;
  for (const Gate& g : gates_) {
    int cnt = 0;
    for (NetId in : g.inputs) {
      if (driver_of_[static_cast<std::size_t>(in.value)] >= 0) {
        ++cnt;
        readers[static_cast<std::size_t>(in.value)].push_back(g.id.value);
      }
    }
    pending[static_cast<std::size_t>(g.id.value)] = cnt;
    if (cnt == 0) ready.push_back(g.id.value);
  }
  while (!ready.empty()) {
    const int gi = ready.back();
    ready.pop_back();
    order.push_back(GateId{gi});
    const NetId out = gates_[static_cast<std::size_t>(gi)].output;
    for (int r : readers[static_cast<std::size_t>(out.value)]) {
      if (--pending[static_cast<std::size_t>(r)] == 0) ready.push_back(r);
    }
  }
  assert(order.size() == gates_.size() && "combinational cycle");
  return order;
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> errs;
  std::vector<bool> has_pi(static_cast<std::size_t>(net_count_), false);
  has_pi[0] = has_pi[1] = true;  // constants
  for (const Bus& b : inputs_) {
    for (NetId n : b.signal.bits) {
      has_pi[static_cast<std::size_t>(n.value)] = true;
    }
  }
  for (const Gate& g : gates_) {
    for (NetId in : g.inputs) {
      if (driver_of_[static_cast<std::size_t>(in.value)] < 0 &&
          !has_pi[static_cast<std::size_t>(in.value)]) {
        errs.push_back("gate " + std::to_string(g.id.value) +
                       ": floating input net " + std::to_string(in.value));
      }
    }
    if (g.output.value <= 1) {
      errs.push_back("gate drives a constant net");
    }
  }
  if (topo_gates().size() != gates_.size()) {
    errs.push_back("combinational cycle");
  }
  return errs;
}

}  // namespace dpmerge::netlist
