#include "dpmerge/netlist/attribution.h"

namespace dpmerge::netlist {

PathAttribution attribute_critical_path(const Netlist& n,
                                        const TimingReport& rep) {
  PathAttribution out;
  out.total_ns = rep.longest_path_ns;
  double prev_arrival = 0.0;
  for (NetId net : rep.critical_path) {
    PathSegment seg;
    seg.net = net;
    seg.arrival_ns = rep.arrival[static_cast<std::size_t>(net.value)];
    seg.incr_ns = seg.arrival_ns - prev_arrival;
    prev_arrival = seg.arrival_ns;
    if (const Gate* drv = n.driver(net)) {
      seg.gate = drv->id;
      seg.owner = n.provenance_owner(drv->id);
      out.path_gates_by_owner[seg.owner] += 1;
    }
    // Primary-input segments arrive at t = 0 and bill nothing; gate
    // segments bill their incremental delay to the driver's owner.
    out.delay_by_owner[seg.owner] += seg.incr_ns;
    out.segments.push_back(seg);
  }
  return out;
}

std::map<int, OwnerCensus> census_by_owner(const Netlist& n,
                                           const CellLibrary& lib) {
  std::map<int, OwnerCensus> out;
  for (const Gate& g : n.gates()) {
    OwnerCensus& c = out[n.provenance_owner(g.id)];
    c.gates += 1;
    c.area += lib.variant(g.type, g.drive).area;
  }
  return out;
}

}  // namespace dpmerge::netlist
