#pragma once

#include "dpmerge/netlist/netlist.h"

namespace dpmerge::netlist {

struct SimplifyStats {
  int gates_before = 0;
  int gates_after = 0;
  int gates_removed() const { return gates_before - gates_after; }
};

/// Light combinational clean-up: rebuilds the netlist through the
/// constant-folding construction helpers (sweeping constants and
/// identities), structurally hashes gates (common-subexpression
/// elimination, commutative inputs normalised), collapses double
/// inverters, and drops logic no output can observe. Functionality is
/// preserved exactly; gate count never increases.
Netlist simplify(const Netlist& n, SimplifyStats* stats = nullptr);

}  // namespace dpmerge::netlist
