#include "dpmerge/netlist/verilog.h"

#include <sstream>

namespace dpmerge::netlist {

namespace {

const char* drive_suffix(int drive) {
  switch (drive) {
    case 0:
      return "X1";
    case 1:
      return "X2";
    default:
      return "X4";
  }
}

/// Pin names per cell type, output pin last.
std::vector<const char*> pins(CellType t) {
  switch (cell_input_count(t)) {
    case 1:
      return {"A", "Y"};
    case 3:
      return {"A", "B", "S", "Y"};
    default:
      return {"A", "B", "Y"};
  }
}

}  // namespace

std::string to_verilog(const Netlist& n, const std::string& module_name) {
  std::ostringstream os;
  os << "module " << module_name << " (";
  bool first = true;
  for (const Bus& b : n.inputs()) {
    os << (first ? "" : ", ") << b.name;
    first = false;
  }
  for (const Bus& b : n.outputs()) {
    os << (first ? "" : ", ") << b.name;
    first = false;
  }
  os << ");\n";
  for (const Bus& b : n.inputs()) {
    os << "  input [" << b.signal.width() - 1 << ":0] " << b.name << ";\n";
  }
  for (const Bus& b : n.outputs()) {
    os << "  output [" << b.signal.width() - 1 << ":0] " << b.name << ";\n";
  }

  // Internal nets. Net 0/1 are the constants; primary-input bits alias the
  // port bits via assigns below.
  os << "  wire [" << n.net_count() - 1 << ":0] n;\n";
  os << "  assign n[0] = 1'b0;  // TIELO\n";
  os << "  assign n[1] = 1'b1;  // TIEHI\n";
  for (const Bus& b : n.inputs()) {
    for (int i = 0; i < b.signal.width(); ++i) {
      os << "  assign n[" << b.signal.bit(i).value << "] = " << b.name << "["
         << i << "];\n";
    }
  }

  for (const Gate& g : n.gates()) {
    const auto pn = pins(g.type);
    os << "  " << to_string(g.type) << drive_suffix(g.drive) << " g"
       << g.id.value << " (";
    for (std::size_t i = 0; i < g.inputs.size(); ++i) {
      os << "." << pn[i] << "(n[" << g.inputs[i].value << "]), ";
    }
    os << "." << pn.back() << "(n[" << g.output.value << "]));\n";
  }

  for (const Bus& b : n.outputs()) {
    for (int i = 0; i < b.signal.width(); ++i) {
      os << "  assign " << b.name << "[" << i << "] = n["
         << b.signal.bit(i).value << "];\n";
    }
  }
  os << "endmodule\n";
  return os.str();
}

}  // namespace dpmerge::netlist
