#include "dpmerge/netlist/sta.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "dpmerge/obs/obs.h"

namespace dpmerge::netlist {

std::vector<double> Sta::net_loads(const Netlist& n) const {
  std::vector<double> load(static_cast<std::size_t>(n.net_count()), 0.0);
  for (const Gate& g : n.gates()) {
    for (NetId in : g.inputs) {
      load[static_cast<std::size_t>(in.value)] +=
          lib_.variant(g.type, g.drive).input_cap;
    }
  }
  return load;
}

TimingReport Sta::analyze(const Netlist& n) const {
  obs::Span span("sta.analyze");
  obs::stat_add("sta.full_runs");
  obs::stat_add("sta.full_gates", n.gate_count());
  TimingReport rep;
  rep.arrival.assign(static_cast<std::size_t>(n.net_count()), 0.0);
  std::vector<NetId> from(static_cast<std::size_t>(n.net_count()), NetId{});

  const std::vector<double> load = net_loads(n);

  for (GateId gid : n.topo_gates()) {
    const Gate& g = n.gates()[static_cast<std::size_t>(gid.value)];
    const CellVariant& v = lib_.variant(g.type, g.drive);
    const double d =
        v.intrinsic_ns +
        v.drive_res_ns * load[static_cast<std::size_t>(g.output.value)];
    double worst = 0.0;
    NetId worst_in{};
    for (NetId in : g.inputs) {
      const double a = rep.arrival[static_cast<std::size_t>(in.value)];
      if (a >= worst) {
        worst = a;
        worst_in = in;
      }
    }
    rep.arrival[static_cast<std::size_t>(g.output.value)] = worst + d;
    from[static_cast<std::size_t>(g.output.value)] = worst_in;
  }

  NetId worst_net{};
  for (const Bus& b : n.outputs()) {
    for (NetId bit : b.signal.bits) {
      const double a = rep.arrival[static_cast<std::size_t>(bit.value)];
      if (a > rep.longest_path_ns) {
        rep.longest_path_ns = a;
        worst_net = bit;
      }
    }
  }

  // Trace the critical path back to its source.
  std::vector<NetId> path;
  for (NetId cur = worst_net; cur.valid(); cur = from[static_cast<std::size_t>(cur.value)]) {
    path.push_back(cur);
    if (!n.driver(cur)) break;
  }
  std::reverse(path.begin(), path.end());
  rep.critical_path = std::move(path);
  return rep;
}

double Sta::area(const Netlist& n) const {
  double a = 0.0;
  for (const Gate& g : n.gates()) {
    a += lib_.variant(g.type, g.drive).area;
  }
  return a;
}

IncrementalSta::IncrementalSta(const Netlist& n, const CellLibrary& lib)
    : net_(n), lib_(lib) {
  rebuild();
}

void IncrementalSta::rebuild() {
  const std::size_t nets = static_cast<std::size_t>(net_.net_count());
  const std::size_t gates = net_.gates().size();

  topo_ = net_.topo_gates();
  topo_pos_.assign(gates, -1);
  for (std::size_t p = 0; p < topo_.size(); ++p) {
    topo_pos_[static_cast<std::size_t>(topo_[p].value)] = static_cast<int>(p);
  }

  // Reader lists and loads, both accumulated in gate order so per-net sums
  // are bit-identical (FP addition order) to Sta::net_loads.
  reader_of_.assign(nets, {});
  load_.assign(nets, 0.0);
  for (std::size_t gi = 0; gi < gates; ++gi) {
    const Gate& g = net_.gates()[gi];
    for (NetId in : g.inputs) {
      reader_of_[static_cast<std::size_t>(in.value)].push_back(
          static_cast<int>(gi));
      load_[static_cast<std::size_t>(in.value)] +=
          lib_.variant(g.type, g.drive).input_cap;
    }
  }

  arrival_.assign(nets, 0.0);
  from_.assign(nets, NetId{});
  for (GateId gid : topo_) {
    recompute_gate(gid.value);
  }

  output_bits_.clear();
  for (const Bus& b : net_.outputs()) {
    for (NetId bit : b.signal.bits) output_bits_.push_back(bit);
  }
  refresh_longest();

  queued_.assign(gates, 0);
}

void IncrementalSta::recompute_gate(int gate_idx) {
  const Gate& g = net_.gates()[static_cast<std::size_t>(gate_idx)];
  const CellVariant& v = lib_.variant(g.type, g.drive);
  const double d =
      v.intrinsic_ns +
      v.drive_res_ns * load_[static_cast<std::size_t>(g.output.value)];
  double worst = 0.0;
  NetId worst_in{};
  for (NetId in : g.inputs) {
    const double a = arrival_[static_cast<std::size_t>(in.value)];
    if (a >= worst) {  // same tie-break as Sta::analyze: last input wins
      worst = a;
      worst_in = in;
    }
  }
  arrival_[static_cast<std::size_t>(g.output.value)] = worst + d;
  from_[static_cast<std::size_t>(g.output.value)] = worst_in;
}

void IncrementalSta::refresh_longest() {
  longest_ = 0.0;
  longest_net_ = NetId{};
  for (NetId bit : output_bits_) {
    const double a = arrival_[static_cast<std::size_t>(bit.value)];
    if (a > longest_) {
      longest_ = a;
      longest_net_ = bit;
    }
  }
}

void IncrementalSta::update_drive_change(GateId g) {
  const Gate& gate = net_.gates()[static_cast<std::size_t>(g.value)];

  // Min-heap over topo positions so cone gates are re-evaluated in
  // dependency order (each gate at most once per update).
  std::priority_queue<int, std::vector<int>, std::greater<int>> pq;
  auto enqueue = [&](int gate_idx) {
    if (!queued_[static_cast<std::size_t>(gate_idx)]) {
      queued_[static_cast<std::size_t>(gate_idx)] = 1;
      pq.push(topo_pos_[static_cast<std::size_t>(gate_idx)]);
    }
  };

  // The resized gate's input pins changed capacitance: recompute those
  // nets' loads from their reader lists (same accumulation order as a full
  // pass, so no delta drift) and reseed the worklist with their drivers,
  // whose delays depend on those loads.
  for (NetId in : gate.inputs) {
    const std::size_t ni = static_cast<std::size_t>(in.value);
    double l = 0.0;
    // One reader entry per reading *pin*, in full-pass accumulation order.
    for (int reader : reader_of_[ni]) {
      const Gate& r = net_.gates()[static_cast<std::size_t>(reader)];
      l += lib_.variant(r.type, r.drive).input_cap;
    }
    load_[ni] = l;
    if (const Gate* drv = net_.driver(in)) enqueue(drv->id.value);
  }
  // The gate itself: its drive resistance changed.
  enqueue(g.value);

  int cone_gates = 0;
  while (!pq.empty()) {
    const int pos = pq.top();
    pq.pop();
    const int gi = topo_[static_cast<std::size_t>(pos)].value;
    queued_[static_cast<std::size_t>(gi)] = 0;
    ++cone_gates;
    const NetId out = net_.gates()[static_cast<std::size_t>(gi)].output;
    const double before = arrival_[static_cast<std::size_t>(out.value)];
    recompute_gate(gi);
    if (arrival_[static_cast<std::size_t>(out.value)] != before) {
      for (int reader : reader_of_[static_cast<std::size_t>(out.value)]) {
        enqueue(reader);
      }
    }
  }

  if (obs::StatSink* sink = obs::current_sink()) {
    sink->add("sta.incremental_updates");
    sink->add("sta.incremental_cone_gates", cone_gates);
    sink->set_max("sta.incremental_max_cone", cone_gates);
  }

  refresh_longest();
}

std::vector<NetId> IncrementalSta::critical_path() const {
  std::vector<NetId> path;
  for (NetId cur = longest_net_; cur.valid();
       cur = from_[static_cast<std::size_t>(cur.value)]) {
    path.push_back(cur);
    if (!net_.driver(cur)) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

TimingReport IncrementalSta::report() const {
  TimingReport rep;
  rep.longest_path_ns = longest_;
  rep.arrival = arrival_;
  rep.critical_path = critical_path();
  return rep;
}

}  // namespace dpmerge::netlist
