#include "dpmerge/netlist/sta.h"

#include <algorithm>

namespace dpmerge::netlist {

double Sta::load_on(const Netlist& n, NetId net) const {
  double load = 0.0;
  for (const Gate& g : n.gates()) {
    for (NetId in : g.inputs) {
      if (in == net) {
        load += lib_.variant(g.type, g.drive).input_cap;
      }
    }
  }
  return load;
}

TimingReport Sta::analyze(const Netlist& n) const {
  TimingReport rep;
  rep.arrival.assign(static_cast<std::size_t>(n.net_count()), 0.0);
  std::vector<NetId> from(static_cast<std::size_t>(n.net_count()), NetId{});

  // Precompute per-net load in one pass (load_on is O(gates) and would make
  // this quadratic).
  std::vector<double> load(static_cast<std::size_t>(n.net_count()), 0.0);
  for (const Gate& g : n.gates()) {
    for (NetId in : g.inputs) {
      load[static_cast<std::size_t>(in.value)] +=
          lib_.variant(g.type, g.drive).input_cap;
    }
  }

  for (GateId gid : n.topo_gates()) {
    const Gate& g = n.gates()[static_cast<std::size_t>(gid.value)];
    const CellVariant& v = lib_.variant(g.type, g.drive);
    const double d =
        v.intrinsic_ns +
        v.drive_res_ns * load[static_cast<std::size_t>(g.output.value)];
    double worst = 0.0;
    NetId worst_in{};
    for (NetId in : g.inputs) {
      const double a = rep.arrival[static_cast<std::size_t>(in.value)];
      if (a >= worst) {
        worst = a;
        worst_in = in;
      }
    }
    rep.arrival[static_cast<std::size_t>(g.output.value)] = worst + d;
    from[static_cast<std::size_t>(g.output.value)] = worst_in;
  }

  NetId worst_net{};
  for (const Bus& b : n.outputs()) {
    for (NetId bit : b.signal.bits) {
      const double a = rep.arrival[static_cast<std::size_t>(bit.value)];
      if (a > rep.longest_path_ns) {
        rep.longest_path_ns = a;
        worst_net = bit;
      }
    }
  }

  // Trace the critical path back to its source.
  std::vector<NetId> path;
  for (NetId cur = worst_net; cur.valid(); cur = from[static_cast<std::size_t>(cur.value)]) {
    path.push_back(cur);
    if (!n.driver(cur)) break;
  }
  std::reverse(path.begin(), path.end());
  rep.critical_path = std::move(path);
  return rep;
}

double Sta::area(const Netlist& n) const {
  double a = 0.0;
  for (const Gate& g : n.gates()) {
    a += lib_.variant(g.type, g.drive).area;
  }
  return a;
}

}  // namespace dpmerge::netlist
