#pragma once

#include "dpmerge/dfg/graph.h"

namespace dpmerge::transform {

struct FoldStats {
  int constants_folded = 0;    ///< operators evaluated away entirely
  int strength_reduced = 0;    ///< mul-by-2^k -> shift, mul-by-(-1) -> neg
  int identities_removed = 0;  ///< x+0, x*1, x<<0, x-x, x*0
  bool changed() const {
    return constants_folded || strength_reduced || identities_removed;
  }
};

/// Constant folding and strength reduction on the DFG, returning a new
/// functionally equivalent graph:
///   - operators whose operands are all constants are evaluated (with the
///     exact edge-resize semantics) into Const nodes;
///   - multiplication by a delivered constant 0 / 1 / -1 / 2^k becomes a
///     constant, a wire, a negation, or a constant shift — the shift form
///     matters for merging: a `Shl` is a mergeable operator (its addends
///     are column-shifted rows) while a multiplier operand edge is a hard
///     cluster boundary (Synthesizability Condition 1);
///   - x+0, 0+x, x-0, x<<0 and x-x collapse.
/// Pure width adaptations left behind by a removed operator materialise as
/// Extension nodes (wiring only). Runs to a local fixpoint in one topo pass
/// (operands are folded before their consumers are inspected).
dfg::Graph fold_constants(const dfg::Graph& g, FoldStats* stats = nullptr);

}  // namespace dpmerge::transform
