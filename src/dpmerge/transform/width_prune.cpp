#include "dpmerge/transform/width_prune.h"

#include <algorithm>
#include <vector>

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/analysis/required_precision.h"
#include "dpmerge/check/check.h"
#include "dpmerge/obs/obs.h"

namespace dpmerge::transform {

using analysis::InfoContent;
using dfg::Edge;
using dfg::EdgeId;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

std::string PruneStats::to_string() const {
  return "nodes narrowed: " + std::to_string(nodes_narrowed) +
         ", edges narrowed: " + std::to_string(edges_narrowed) +
         ", extensions inserted: " + std::to_string(extensions_inserted) +
         ", node bits removed: " + std::to_string(bits_removed);
}

PruneStats prune_required_precision(Graph& g) {
  PruneStats stats;
  const auto rp = analysis::compute_required_precision(g);
  for (const Node& n : g.nodes()) {
    // Comparators are excluded: their width is the comparison width of the
    // operands, not the precision of the (1-bit) result.
    if (!dfg::is_arith_operator(n.kind) && n.kind != OpKind::Extension) {
      continue;
    }
    const int target = std::max(1, std::min(n.width, rp.r_out(n.id)));
    if (target < n.width) {
      stats.bits_removed += n.width - target;
      ++stats.nodes_narrowed;
      g.set_node_width(n.id, target);
    }
  }
  for (const Edge& e : g.edges()) {
    const int target = std::max(1, std::min(e.width, rp.r_in(e.dst)));
    if (target < e.width) {
      ++stats.edges_narrowed;
      g.set_edge_width(e.id, target);
    }
  }
  return stats;
}

PruneStats prune_info_content(Graph& g,
                              const analysis::InfoRefinements* refinements) {
  PruneStats stats;
  auto refine = [refinements](NodeId id, InfoContent ic) {
    if (!refinements) return ic;
    const auto idx = static_cast<std::size_t>(id.value);
    if (idx < refinements->size() && (*refinements)[idx].has_value()) {
      return analysis::ic_meet(ic, *(*refinements)[idx]);
    }
    return ic;
  };
  // Forward sweep over the pre-existing nodes; Extension nodes inserted on
  // the way are given their claims at creation time, so consumers (processed
  // later in the original topological order) can look them up.
  std::vector<InfoContent> out_claim(static_cast<std::size_t>(g.node_count()));
  auto claim_of = [&out_claim](NodeId id) {
    return out_claim[static_cast<std::size_t>(id.value)];
  };
  auto set_claim = [&out_claim](NodeId id, InfoContent ic) {
    if (out_claim.size() <= static_cast<std::size_t>(id.value)) {
      out_claim.resize(static_cast<std::size_t>(id.value) + 1);
    }
    out_claim[static_cast<std::size_t>(id.value)] = ic;
  };

  // Snapshot (copy) the frozen order: the loop below inserts Extension
  // nodes, which invalidates the CSR cache mid-iteration.
  const std::vector<NodeId> order = g.freeze().topo;
  for (NodeId id : order) {
    const OpKind kind = g.node(id).kind;

    // Operand claim for input port `port`, narrowing the edge on the way
    // (Lemma 5.7). The sign rewrite is skipped for Extension destinations,
    // whose second resize uses the node's own t(N) rather than t(e).
    auto operand_ic = [&](int port) {
      const EdgeId eid = g.node(id).in[static_cast<std::size_t>(port)];
      const Edge e = g.edge(eid);
      const InfoContent src_ic = claim_of(e.src);
      const int src_w = g.node(e.src).width;
      const InfoContent on_edge =
          analysis::ic_resize(src_ic, src_w, e.width, e.sign);
      const Sign second_ext =
          kind == OpKind::Extension ? g.node(id).ext_sign : e.sign;
      const InfoContent op =
          analysis::ic_resize(on_edge, e.width, g.node(id).width, second_ext);
      if (kind != OpKind::Extension) {
        const int target = std::max(1, op.width);
        if (target < e.width) {
          ++stats.edges_narrowed;
          g.set_edge_width(eid, target);
          g.set_edge_sign(eid, op.sign);
        }
      }
      return op;
    };

    InfoContent intrinsic;
    switch (kind) {
      case OpKind::Input:
        intrinsic = {g.node(id).width, g.node(id).ext_sign};
        break;
      case OpKind::Const: {
        const BitVector& v = g.node(id).value;
        const int iu = v.min_extension_width(Sign::Unsigned);
        const int is = v.min_extension_width(Sign::Signed);
        intrinsic = iu <= is ? InfoContent{iu, Sign::Unsigned}
                             : InfoContent{is, Sign::Signed};
        break;
      }
      case OpKind::Output:
      case OpKind::Extension:
        intrinsic = operand_ic(0);
        break;
      case OpKind::Neg:
        intrinsic = analysis::ic_neg(operand_ic(0));
        break;
      case OpKind::Add:
        intrinsic = analysis::ic_add(operand_ic(0), operand_ic(1));
        break;
      case OpKind::Sub:
        intrinsic = analysis::ic_sub(operand_ic(0), operand_ic(1));
        break;
      case OpKind::Mul:
        intrinsic = analysis::ic_mul(operand_ic(0), operand_ic(1));
        break;
      case OpKind::Shl: {
        const InfoContent op = operand_ic(0);
        intrinsic = {op.width + g.node(id).shift, op.sign};
        break;
      }
      case OpKind::LtS:
      case OpKind::LtU:
      case OpKind::Eq:
        operand_ic(0);
        operand_ic(1);
        intrinsic = {1, Sign::Unsigned};
        break;
    }
    intrinsic = refine(id, intrinsic);

    const int W = g.node(id).width;
    const InfoContent claim = analysis::ic_clip(intrinsic, W);
    if (dfg::is_arith_operator(kind) && claim.width >= 1 && claim.width < W) {
      // Lemma 5.6: shrink the node to its information content. Out-edges are
      // adjusted so every consumer sees a bit-identical operand; only the
      // signed-content/zero-padding combination needs an explicit Extension
      // node (see DESIGN.md §2 and the comment block above).
      const int i = claim.width;
      const Sign t = claim.sign;
      std::vector<EdgeId> need_ext;
      for (EdgeId eid : g.node(id).out) {
        const Edge& e = g.edge(eid);
        if (e.width <= i || e.sign == t) continue;
        if (t == Sign::Unsigned && e.sign == Sign::Signed) {
          g.set_edge_sign(eid, Sign::Unsigned);
          continue;
        }
        need_ext.push_back(eid);
      }
      stats.bits_removed += W - i;
      ++stats.nodes_narrowed;
      g.set_node_width(id, i);
      set_claim(id, claim);
      if (!need_ext.empty()) {
        ++stats.extensions_inserted;
        const NodeId ext =
            g.insert_extension_retarget(id, W, Sign::Signed, need_ext);
        set_claim(ext, claim);
      }
    } else {
      set_claim(id, claim);
    }
  }
  return stats;
}

PruneStats normalize_widths(Graph& g, int max_rounds,
                            const analysis::InfoRefinements* refinements) {
  obs::Span span("transform.normalize_widths");
  check::enforce_pre(g, "transform.normalize_widths.pre");
  PruneStats total;
  int rounds = 0;
  for (int round = 0; round < max_rounds; ++round) {
    PruneStats s = prune_required_precision(g);
    s += prune_info_content(g, refinements);
    total += s;
    ++rounds;
    if (!s.changed()) break;
  }
  if (obs::StatSink* sink = obs::current_sink()) {
    sink->add("transform.prune.rounds", rounds);
    sink->add("transform.prune.nodes_narrowed", total.nodes_narrowed);
    sink->add("transform.prune.edges_narrowed", total.edges_narrowed);
    sink->add("transform.prune.extensions_inserted",
              total.extensions_inserted);
    sink->add("transform.prune.bits_removed", total.bits_removed);
  }
  check::enforce(g, "transform.normalize_widths");
  return total;
}

}  // namespace dpmerge::transform
