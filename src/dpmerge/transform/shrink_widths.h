#pragma once

/// Absint-driven width shrinking (DESIGN.md §13) — the lint-to-optimizer
/// bridge. Where `normalize_widths` applies the paper's fixed rules
/// (Theorem 4.2 / Lemmas 5.6–5.7 over the IC and RP algebras), this pass
/// resizes against the bidirectional fixpoint of `check::compute_absint`:
///
///   - **Demanded narrowing** (rule `shrink.demanded`): a node or edge whose
///     high bits are undemanded under Truncation semantics is cut down to
///     its demanded width. Strictly generalises required precision — e.g. a
///     multiply by a constant with t trailing zeros drops t bits of demand
///     on the co-factor, which Definition 4.1 cannot see.
///   - **Known-bits narrowing** (rule `shrink.known-bits`): a node whose top
///     bits the forward product domain proves constant (all 0, or all equal
///     to a known sign replica) is shrunk to the live bits, with out-edge
///     sign rewrites / an explicit Extension node keeping every consumer's
///     operand bit-identical (the Lemma 5.6 mechanics, driven by a stronger
///     fact source than the IC algebra).
///
/// Every applied batch is discharged before it is kept: the shrunk graph
/// must match the original on random differential simulation, and — when
/// the design's total input width fits the BDD budget — on a formal
/// `check_graph_vs_graph` proof. A batch that fails verification is
/// reverted wholesale and counted in `reverted` (and nothing is logged for
/// it). Committed shrinks are recorded as node-level decisions in the
/// thread's active `obs::prov::DecisionLog`, so ledgers and
/// `dpmerge-explain` attribute the resulting delay/area to them.

#include <string>

#include "dpmerge/dfg/graph.h"

namespace dpmerge::transform {

struct ShrinkOptions {
  int max_rounds = 4;       ///< shrink/re-analyse alternations
  int sim_trials = 64;      ///< differential random stimuli per batch
  /// Formal proof budget: run the BDD equivalence check only when the sum
  /// of primary-input widths is at most this (negative = never).
  int max_formal_input_bits = 64;
  std::size_t formal_max_nodes = 4u << 20;
};

struct ShrinkStats {
  int nodes_narrowed = 0;
  int edges_narrowed = 0;
  int extensions_inserted = 0;
  int bits_removed = 0;        ///< node-width bits removed
  int demanded_shrinks = 0;    ///< narrowings owed to the backward domain
  int knownbits_shrinks = 0;   ///< narrowings owed to the forward product
  int reverted_batches = 0;    ///< batches rolled back by verification
  bool formally_verified = false;  ///< every kept batch carried a BDD proof

  bool changed() const { return nodes_narrowed || edges_narrowed; }
  std::string to_string() const;
};

/// Shrinks `g` in place to the absint fixpoint's live widths. Safe on any
/// well-formed graph, including already-normalised ones (it then only finds
/// what the fixpoint proves beyond the IC/RP algebras).
ShrinkStats shrink_widths(dfg::Graph& g, const ShrinkOptions& opts = {});

}  // namespace dpmerge::transform
