#include "dpmerge/transform/const_fold.h"

#include <cassert>
#include <optional>
#include <vector>

#include "dpmerge/check/check.h"
#include "dpmerge/obs/obs.h"

namespace dpmerge::transform {

using dfg::Edge;
using dfg::EdgeId;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

namespace {

/// Is v (width w) exactly 2^k? Returns k, or -1.
int power_of_two(const BitVector& v) {
  int k = -1;
  for (int i = 0; i < v.width(); ++i) {
    if (!v.bit(i)) continue;
    if (k >= 0) return -1;
    k = i;
  }
  return k;
}

bool all_ones(const BitVector& v) {
  for (int i = 0; i < v.width(); ++i) {
    if (!v.bit(i)) return false;
  }
  return v.width() > 0;
}

/// Keep only nodes that reach an output (inputs always stay — they are the
/// design interface).
Graph eliminate_dead(const Graph& g) {
  std::vector<bool> live(static_cast<std::size_t>(g.node_count()), false);
  const auto& order = g.freeze().topo;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Node& n = g.node(*it);
    bool l = n.kind == OpKind::Output || n.kind == OpKind::Input;
    for (EdgeId eid : n.out) {
      if (live[static_cast<std::size_t>(g.edge(eid).dst.value)]) l = true;
    }
    live[static_cast<std::size_t>(n.id.value)] = l;
  }
  Graph ng;
  std::vector<NodeId> map(static_cast<std::size_t>(g.node_count()), NodeId{});
  for (NodeId id : g.freeze().topo) {
    const Node& n = g.node(id);
    if (!live[static_cast<std::size_t>(id.value)]) continue;
    const NodeId nn = n.kind == OpKind::Const
                          ? ng.add_const(n.value, g.name(n))
                          : ng.add_node(n.kind, n.width, g.name(n));
    ng.set_node_ext_sign(nn, n.ext_sign);
    ng.set_node_shift(nn, n.shift);
    for (std::size_t p = 0; p < n.in.size(); ++p) {
      const Edge& e = g.edge(n.in[p]);
      ng.add_edge(map[static_cast<std::size_t>(e.src.value)], nn,
                  static_cast<int>(p), e.width, e.sign);
    }
    map[static_cast<std::size_t>(id.value)] = nn;
  }
  return ng;
}

}  // namespace

Graph fold_constants(const Graph& g, FoldStats* stats) {
  obs::Span span("transform.const_fold");
  check::enforce_pre(g, "transform.const_fold.pre");
  Graph ng;
  std::vector<NodeId> map(static_cast<std::size_t>(g.node_count()), NodeId{});
  // Known constant value of each *old* node's result.
  std::vector<std::optional<BitVector>> cv(
      static_cast<std::size_t>(g.node_count()));

  FoldStats local;

  for (NodeId id : g.freeze().topo) {
    const Node& n = g.node(id);
    auto& slot = map[static_cast<std::size_t>(id.value)];

    // Delivered operand value when the source is constant.
    auto const_operand = [&](int port) -> std::optional<BitVector> {
      const Edge& e = g.edge(n.in[static_cast<std::size_t>(port)]);
      const auto& src = cv[static_cast<std::size_t>(e.src.value)];
      if (!src) return std::nullopt;
      const Sign second = n.kind == OpKind::Extension ? n.ext_sign : e.sign;
      return src->resize(e.width, e.sign).resize(n.width, second);
    };
    auto make_const = [&](const BitVector& v) {
      slot = ng.add_const(v);
      cv[static_cast<std::size_t>(id.value)] = v;
    };
    // A wire standing in for "old node `id`'s result == delivered operand
    // `port`": Extension nodes reproduce the two resizes where needed.
    auto make_identity = [&](int port) {
      const Edge& e = g.edge(n.in[static_cast<std::size_t>(port)]);
      NodeId cur = map[static_cast<std::size_t>(e.src.value)];
      int cur_w = g.node(e.src).width;
      const Sign second = n.kind == OpKind::Extension ? n.ext_sign : e.sign;
      if (e.width != cur_w) {
        const NodeId ext = ng.add_node(OpKind::Extension, e.width);
        ng.set_node_ext_sign(ext, e.sign);
        ng.add_edge(cur, ext, 0, cur_w, e.sign);
        cur = ext;
        cur_w = e.width;
      }
      if (n.width != cur_w) {
        const NodeId ext = ng.add_node(OpKind::Extension, n.width);
        ng.set_node_ext_sign(ext, second);
        ng.add_edge(cur, ext, 0, cur_w, second);
        cur = ext;
      }
      slot = cur;
    };
    auto clone = [&] {
      const NodeId nn = n.kind == OpKind::Const
                            ? ng.add_const(n.value, g.name(n))
                            : ng.add_node(n.kind, n.width, g.name(n));
      ng.set_node_ext_sign(nn, n.ext_sign);
      ng.set_node_shift(nn, n.shift);
      for (std::size_t p = 0; p < n.in.size(); ++p) {
        const Edge& e = g.edge(n.in[p]);
        ng.add_edge(map[static_cast<std::size_t>(e.src.value)], nn,
                    static_cast<int>(p), e.width, e.sign);
      }
      slot = nn;
    };

    switch (n.kind) {
      case OpKind::Const:
        clone();
        cv[static_cast<std::size_t>(id.value)] = n.value;
        continue;
      case OpKind::Input:
      case OpKind::Output:
        clone();
        continue;
      default:
        break;
    }

    // All-constant operands: evaluate the operator away.
    {
      bool all_const = !n.in.empty();
      std::vector<BitVector> ops;
      for (std::size_t p = 0; p < n.in.size() && all_const; ++p) {
        const auto v = const_operand(static_cast<int>(p));
        if (!v) {
          all_const = false;
        } else {
          ops.push_back(*v);
        }
      }
      if (all_const) {
        BitVector r;
        switch (n.kind) {
          case OpKind::Add:
            r = ops[0].add(ops[1]);
            break;
          case OpKind::Sub:
            r = ops[0].sub(ops[1]);
            break;
          case OpKind::Mul:
            r = ops[0].mul(ops[1]);
            break;
          case OpKind::Neg:
            r = ops[0].negate();
            break;
          case OpKind::Shl:
            r = ops[0].shl(n.shift);
            break;
          case OpKind::Extension:
            r = ops[0];
            break;
          case OpKind::LtS:
            r = BitVector::from_uint(n.width, ops[0].signed_lt(ops[1]));
            break;
          case OpKind::LtU:
            r = BitVector::from_uint(n.width, ops[0].unsigned_lt(ops[1]));
            break;
          case OpKind::Eq:
            r = BitVector::from_uint(n.width, ops[0] == ops[1]);
            break;
          default:
            break;
        }
        ++local.constants_folded;
        make_const(r);
        continue;
      }
    }

    // Identities and strength reduction.
    if (n.kind == OpKind::Mul) {
      for (int p = 0; p < 2; ++p) {
        const auto v = const_operand(p);
        if (!v) continue;
        const int other = 1 - p;
        if (v->is_zero()) {
          ++local.identities_removed;
          make_const(BitVector(n.width));
          break;
        }
        if (v->to_uint64() == 1 && power_of_two(*v) == 0) {
          ++local.identities_removed;
          make_identity(other);
          break;
        }
        if (all_ones(*v)) {  // delivered -1 (mod 2^w)
          ++local.strength_reduced;
          const Edge& e = g.edge(n.in[static_cast<std::size_t>(other)]);
          const NodeId neg = ng.add_node(OpKind::Neg, n.width);
          ng.add_edge(map[static_cast<std::size_t>(e.src.value)], neg, 0,
                      e.width, e.sign);
          slot = neg;
          break;
        }
        const int k = power_of_two(*v);
        if (k >= 1) {
          ++local.strength_reduced;
          const Edge& e = g.edge(n.in[static_cast<std::size_t>(other)]);
          const NodeId sh = ng.add_node(OpKind::Shl, n.width);
          ng.set_node_shift(sh, k);
          ng.add_edge(map[static_cast<std::size_t>(e.src.value)], sh, 0,
                      e.width, e.sign);
          slot = sh;
          break;
        }
      }
      if (slot.valid()) continue;
    }
    if (n.kind == OpKind::Add || n.kind == OpKind::Sub) {
      const Edge& e0 = g.edge(n.in[0]);
      const Edge& e1 = g.edge(n.in[1]);
      const auto v0 = const_operand(0);
      const auto v1 = const_operand(1);
      if (v1 && v1->is_zero()) {
        ++local.identities_removed;
        make_identity(0);
        continue;
      }
      if (n.kind == OpKind::Add && v0 && v0->is_zero()) {
        ++local.identities_removed;
        make_identity(1);
        continue;
      }
      if (n.kind == OpKind::Sub && e0.src == e1.src &&
          e0.width == e1.width && e0.sign == e1.sign) {
        ++local.identities_removed;
        make_const(BitVector(n.width));  // x - x == 0
        continue;
      }
    }
    if (n.kind == OpKind::Shl && n.shift == 0) {
      ++local.identities_removed;
      make_identity(0);
      continue;
    }

    clone();
  }

  if (obs::StatSink* sink = obs::current_sink()) {
    sink->add("transform.fold.constants_folded", local.constants_folded);
    sink->add("transform.fold.strength_reduced", local.strength_reduced);
    sink->add("transform.fold.identities_removed", local.identities_removed);
  }
  if (stats) *stats = local;
  Graph out = eliminate_dead(ng);
  check::enforce(out, "transform.const_fold");
  return out;
}

}  // namespace dpmerge::transform
