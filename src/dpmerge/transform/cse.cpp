#include "dpmerge/transform/cse.h"

#include <map>
#include <tuple>
#include <vector>

#include "dpmerge/check/check.h"
#include "dpmerge/obs/obs.h"

namespace dpmerge::transform {

using dfg::Edge;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

namespace {

bool commutative(OpKind k) {
  return k == OpKind::Add || k == OpKind::Mul || k == OpKind::Eq;
}

/// Structural key of a rebuilt node: kind, width, attrs, and the mapped
/// operand descriptors.
using OperandKey = std::tuple<int /*src*/, int /*width*/, int /*sign*/>;
using NodeKey =
    std::tuple<int /*kind*/, int /*width*/, int /*shift*/, int /*ext_sign*/,
               std::vector<OperandKey>>;

}  // namespace

Graph share_common_subexpressions(const Graph& g, CseStats* stats) {
  obs::Span span("transform.cse");
  check::enforce_pre(g, "transform.cse.pre");
  Graph ng;
  std::vector<NodeId> map(static_cast<std::size_t>(g.node_count()), NodeId{});
  std::map<NodeKey, NodeId> seen;
  std::map<std::string, NodeId> const_seen;  // value string -> node
  CseStats local;

  for (NodeId id : g.freeze().topo) {
    const Node& n = g.node(id);
    auto& slot = map[static_cast<std::size_t>(id.value)];

    if (n.kind == OpKind::Const) {
      const std::string key =
          std::to_string(n.width) + ":" + n.value.to_string();
      const auto it = const_seen.find(key);
      if (it != const_seen.end()) {
        slot = it->second;
        ++local.nodes_merged;
      } else {
        slot = ng.add_const(n.value, g.name(n));
        const_seen.emplace(key, slot);
      }
      continue;
    }

    // Inputs and outputs are interface — never merged.
    const bool shareable = dfg::is_operator(n.kind);
    std::vector<OperandKey> ops;
    for (std::size_t p = 0; p < n.in.size(); ++p) {
      const Edge& e = g.edge(n.in[p]);
      ops.emplace_back(map[static_cast<std::size_t>(e.src.value)].value,
                       e.width, static_cast<int>(e.sign));
    }
    if (shareable && commutative(n.kind) && ops.size() == 2 &&
        ops[1] < ops[0]) {
      std::swap(ops[0], ops[1]);
    }
    const NodeKey key{static_cast<int>(n.kind), n.width, n.shift,
                      static_cast<int>(n.ext_sign), ops};
    if (shareable) {
      const auto it = seen.find(key);
      if (it != seen.end()) {
        slot = it->second;
        ++local.nodes_merged;
        continue;
      }
    }
    const NodeId nn = ng.add_node(n.kind, n.width, g.name(n));
    ng.set_node_ext_sign(nn, n.ext_sign);
    ng.set_node_shift(nn, n.shift);
    // Commutative operand normalisation must also reorder the edges.
    std::vector<OperandKey> wire = ops;
    for (std::size_t p = 0; p < wire.size(); ++p) {
      ng.add_edge(NodeId{std::get<0>(wire[p])}, nn, static_cast<int>(p),
                  std::get<1>(wire[p]),
                  static_cast<Sign>(std::get<2>(wire[p])));
    }
    if (shareable) seen.emplace(key, nn);
    slot = nn;
  }

  obs::stat_add("transform.cse.nodes_merged", local.nodes_merged);
  if (stats) *stats = local;
  check::enforce(ng, "transform.cse");
  return ng;
}

}  // namespace dpmerge::transform
