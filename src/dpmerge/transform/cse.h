#pragma once

#include "dpmerge/dfg/graph.h"

namespace dpmerge::transform {

struct CseStats {
  int nodes_merged = 0;
};

/// DFG-level common-subexpression elimination: structurally identical
/// operator nodes (same kind, width, shift/extension attributes, and the
/// same <source, width, signedness> on every operand — commutative operands
/// normalised) are merged, as are equal-valued constants. Returns a new,
/// functionally equivalent graph.
///
/// Interacts with merging in both directions: sharing reduces area (the
/// shared cone is synthesised once), but a newly shared node that feeds two
/// different clusters becomes a cluster root (Synthesizability Condition
/// 2), so sharing can split clusters. Run it before the flow and measure —
/// the kernels bench does.
dfg::Graph share_common_subexpressions(const dfg::Graph& g,
                                       CseStats* stats = nullptr);

}  // namespace dpmerge::transform
