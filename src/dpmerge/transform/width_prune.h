#pragma once

#include <string>

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/dfg/graph.h"

namespace dpmerge::transform {

/// Bookkeeping for the width-pruning passes; `bits_removed` counts the total
/// reduction in node widths (a proxy for datapath hardware saved before any
/// synthesis runs).
struct PruneStats {
  int nodes_narrowed = 0;
  int edges_narrowed = 0;
  int extensions_inserted = 0;
  int bits_removed = 0;

  PruneStats& operator+=(const PruneStats& o) {
    nodes_narrowed += o.nodes_narrowed;
    edges_narrowed += o.edges_narrowed;
    extensions_inserted += o.extensions_inserted;
    bits_removed += o.bits_removed;
    return *this;
  }
  bool changed() const {
    return nodes_narrowed || edges_narrowed || extensions_inserted;
  }
  std::string to_string() const;
};

/// Theorem 4.2: narrows every operator node to min{w(n), r(p_o)} and every
/// edge to min{w(e), r(p_d)}, where r is required precision (Definition
/// 4.1). Functionality-preserving. Primary input/output nodes keep their
/// widths (they are the design interface); their adjacent edges may shrink.
PruneStats prune_required_precision(dfg::Graph& g);

/// Lemmas 5.6 and 5.7: a single forward sweep that (a) narrows each edge to
/// the information content of the operand it delivers and (b) shrinks each
/// arithmetic operator whose width exceeds its intrinsic information
/// content, materialising the lost extension as an explicit Extension node.
/// Functionality-preserving. Optional `refinements` (from cluster
/// rebalancing, Section 5.2) tighten the per-node intrinsic bounds — this is
/// how the Huffman analysis feeds back into width reduction.
PruneStats prune_info_content(
    dfg::Graph& g, const analysis::InfoRefinements* refinements = nullptr);

/// The full normalisation used before clustering: alternates the two passes
/// to a fixpoint (information-content shrinkage can expose further
/// required-precision slack and vice versa).
PruneStats normalize_widths(dfg::Graph& g, int max_rounds = 8,
                            const analysis::InfoRefinements* refinements =
                                nullptr);

}  // namespace dpmerge::transform
