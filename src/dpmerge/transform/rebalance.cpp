#include "dpmerge/transform/rebalance.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/cluster/clusterer.h"
#include "dpmerge/cluster/flatten.h"
#include "dpmerge/check/check.h"
#include "dpmerge/obs/obs.h"

namespace dpmerge::transform {

using analysis::InfoContent;
using cluster::Term;
using dfg::Edge;
using dfg::EdgeId;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

int arith_depth(const Graph& g) {
  std::vector<int> depth(static_cast<std::size_t>(g.node_count()), 0);
  int best = 0;
  for (NodeId id : g.freeze().topo) {
    const Node& n = g.node(id);
    int d = 0;
    for (EdgeId eid : n.in) {
      d = std::max(d, depth[static_cast<std::size_t>(g.edge(eid).src.value)]);
    }
    if (dfg::is_arith_operator(n.kind)) ++d;
    depth[static_cast<std::size_t>(id.value)] = d;
    best = std::max(best, d);
  }
  return best;
}

namespace {

/// One operand of the balanced tree being built: a node in the new graph
/// whose (claim-signed) value is the magnitude of a term, plus the term's
/// sign and a claim used both for combination ordering and for the edge
/// signedness that reconstructs the ideal value at the wider tree nodes.
struct Item {
  NodeId node;       // in the new graph
  int out_width;     // width of `node`
  InfoContent claim;
  bool neg;
};

struct ItemOrder {
  bool operator()(const Item& a, const Item& b) const {
    if (a.claim.width != b.claim.width) return a.claim.width > b.claim.width;
    return a.node.value > b.node.value;  // deterministic tie-break
  }
};

}  // namespace

Graph rebalance_clusters(const Graph& g, RebalanceStats* stats) {
  obs::Span span("transform.rebalance");
  check::enforce_pre(g, "transform.rebalance.pre");
  int rebuilt = 0;
  const auto cr = cluster::cluster_maximal(g);
  const auto& ia = cr.info;

  Graph ng;
  std::vector<NodeId> map(static_cast<std::size_t>(g.node_count()), NodeId{});
  auto mapped = [&map](NodeId old) {
    const NodeId m = map[static_cast<std::size_t>(old.value)];
    assert(m.valid() && "source node not yet rebuilt");
    return m;
  };
  auto clone_edges = [&](const Node& n, NodeId nn) {
    for (std::size_t p = 0; p < n.in.size(); ++p) {
      const Edge& e = g.edge(n.in[p]);
      ng.add_edge(mapped(e.src), nn, static_cast<int>(p), e.width, e.sign);
    }
  };

  // Clone sources first, in original id order, so the rebuilt graph's
  // input/const interface order matches the original exactly.
  for (const Node& n : g.nodes()) {
    if (n.kind == OpKind::Input) {
      const NodeId nn = ng.add_node(OpKind::Input, n.width, g.name(n));
      ng.set_node_ext_sign(nn, n.ext_sign);
      map[static_cast<std::size_t>(n.id.value)] = nn;
    } else if (n.kind == OpKind::Const) {
      map[static_cast<std::size_t>(n.id.value)] = ng.add_const(n.value, g.name(n));
    }
  }

  for (NodeId id : g.freeze().topo) {
    const Node& n = g.node(id);
    auto& slot = map[static_cast<std::size_t>(id.value)];
    if (slot.valid()) continue;  // inputs/consts already cloned
    if (!dfg::is_arith_operator(n.kind)) {
      // Inputs, consts, outputs, extensions, comparators: clone verbatim.
      const NodeId nn = n.kind == OpKind::Const
                            ? ng.add_const(n.value, g.name(n))
                            : ng.add_node(n.kind, n.width, g.name(n));
      ng.set_node_ext_sign(nn, n.ext_sign);
      clone_edges(n, nn);
      slot = nn;
      continue;
    }
    const int ci = cr.partition.index_of(id);
    const auto& c = cr.partition.clusters[static_cast<std::size_t>(ci)];
    if (c.root != id) continue;  // interior nodes dissolve into the tree

    const int W = n.width;
    const auto flat = cluster::flatten_cluster(g, c);

    std::priority_queue<Item, std::vector<Item>, ItemOrder> heap;
    for (const Term& t : flat.terms) {
      Item item{};
      item.neg = t.negate;
      if (t.factors.size() == 2) {
        // Keep the member multiplier as a leaf, re-instantiated verbatim.
        const Node& mul = g.node(g.edge(t.factors[0]).dst);
        const NodeId nm = ng.add_node(OpKind::Mul, mul.width);
        clone_edges(mul, nm);
        item.node = nm;
        item.out_width = mul.width;
        item.claim = ia.out(mul.id);
      } else {
        // Materialise the delivered entry operand with an Extension node
        // (pure wiring) so the tree leaf has exactly the original value.
        const Edge& e = g.edge(t.factors[0]);
        const NodeId ext = ng.add_node(OpKind::Extension, t.consumed_width);
        ng.set_node_ext_sign(ext, e.sign);
        ng.add_edge(mapped(e.src), ext, 0, e.width, e.sign);
        item.node = ext;
        item.out_width = t.consumed_width;
        item.claim = ia.operand(e.id);
      }
      if (t.shift > 0) {
        const NodeId sh = ng.add_node(OpKind::Shl, W);
        ng.set_node_shift(sh, t.shift);
        ng.add_edge(item.node, sh, 0, item.out_width, item.claim.sign);
        item.node = sh;
        item.out_width = W;
        item.claim = analysis::ic_clip(
            {item.claim.width + t.shift, item.claim.sign}, W);
      }
      heap.push(item);
    }

    // Huffman combination order (Section 5.2): repeatedly join the two
    // smallest-content operands; signs fold into add/sub selection.
    while (heap.size() > 1) {
      Item a = heap.top();
      heap.pop();
      Item b = heap.top();
      heap.pop();
      Item r{};
      r.out_width = W;
      if (a.neg == b.neg) {
        const NodeId nn = ng.add_node(OpKind::Add, W);
        ng.add_edge(a.node, nn, 0, a.out_width, a.claim.sign);
        ng.add_edge(b.node, nn, 1, b.out_width, b.claim.sign);
        r.node = nn;
        r.neg = a.neg;
        r.claim = analysis::ic_clip(analysis::ic_add(a.claim, b.claim), W);
      } else {
        const Item& pos = a.neg ? b : a;
        const Item& negv = a.neg ? a : b;
        const NodeId nn = ng.add_node(OpKind::Sub, W);
        ng.add_edge(pos.node, nn, 0, pos.out_width, pos.claim.sign);
        ng.add_edge(negv.node, nn, 1, negv.out_width, negv.claim.sign);
        r.node = nn;
        r.neg = false;
        r.claim = analysis::ic_clip(analysis::ic_sub(pos.claim, negv.claim), W);
      }
      heap.push(r);
    }

    Item top = heap.top();
    if (top.neg) {
      const NodeId nn = ng.add_node(OpKind::Neg, W);
      ng.add_edge(top.node, nn, 0, top.out_width, top.claim.sign);
      top.node = nn;
      top.out_width = W;
    } else if (top.out_width != W) {
      // Single positive leaf narrower/wider than the root (degenerate
      // cluster): restore the root width with an Extension node.
      const NodeId nn = ng.add_node(OpKind::Extension, W);
      ng.set_node_ext_sign(nn, top.claim.sign);
      ng.add_edge(top.node, nn, 0, top.out_width, top.claim.sign);
      top.node = nn;
      top.out_width = W;
    }
    slot = top.node;
    ++rebuilt;
  }

  if (stats) {
    stats->clusters_rebuilt = rebuilt;
    stats->max_depth_before = arith_depth(g);
    stats->max_depth_after = arith_depth(ng);
  }
  if (obs::StatSink* sink = obs::current_sink()) {
    sink->add("transform.rebalance.clusters_rebuilt", rebuilt);
  }
  check::enforce(ng, "transform.rebalance");
  return ng;
}

}  // namespace dpmerge::transform
