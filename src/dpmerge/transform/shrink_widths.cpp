#include "dpmerge/transform/shrink_widths.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "dpmerge/check/absint_engine.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/formal/equiv.h"
#include "dpmerge/obs/obs.h"
#include "dpmerge/obs/provenance.h"
#include "dpmerge/support/rng.h"

namespace dpmerge::transform {

using check::AbsFact;
using check::AbsintResult;
using dfg::Edge;
using dfg::EdgeId;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

namespace {

/// One committed narrowing, staged until the batch verifies.
struct PendingDecision {
  int node;
  OpKind kind;
  const char* rule;
  int old_width;
  int new_width;
};

/// Number of top bits of `f` that are known and share one value; the shared
/// value is returned through `bit`. 0 when the MSB itself is unknown.
int known_top_run(const check::KnownBits& kb, bool* bit) {
  const int w = kb.width();
  if (w == 0 || !kb.known.bit(w - 1)) return 0;
  *bit = kb.value.bit(w - 1);
  int run = 1;
  while (run < w && kb.known.bit(w - 1 - run) &&
         kb.value.bit(w - 1 - run) == *bit) {
    ++run;
  }
  return run;
}

/// Lemma 5.6 out-edge mechanics shared by both shrink rules: make every
/// consumer of `id` see a bit-identical operand after the node narrows from
/// `W` to `i` with content signedness `t`. Wide signed edges of an unsigned
/// content just flip to unsigned; wide differently-signed edges of a signed
/// content need the wide value materialised by an Extension node.
void retarget_out_edges(Graph& g, NodeId id, int W, int i, Sign t,
                        ShrinkStats& stats) {
  std::vector<EdgeId> need_ext;
  for (EdgeId eid : g.node(id).out) {
    const Edge& e = g.edge(eid);
    if (e.width <= i || e.sign == t) continue;
    if (t == Sign::Unsigned && e.sign == Sign::Signed) {
      g.set_edge_sign(eid, Sign::Unsigned);
      continue;
    }
    need_ext.push_back(eid);
  }
  g.set_node_width(id, i);
  if (!need_ext.empty()) {
    ++stats.extensions_inserted;
    g.insert_extension_retarget(id, W, Sign::Signed, need_ext);
  }
}

/// One pass over the fixpoint facts: apply every narrowing the analysis
/// licenses. Returns the per-pass stats; `pending` collects the decision
/// rows to log if the batch survives verification.
ShrinkStats apply_batch(Graph& g, std::vector<PendingDecision>& pending) {
  ShrinkStats stats;
  const AbsintResult r = check::compute_absint(
      g, {.max_rounds = 4, .demand = check::DemandSemantics::Truncation});

  // Edges first (edge demand is computed against the current widths; node
  // narrowing below re-runs the fixpoint next round anyway).
  for (const Edge& e : g.edges()) {
    int target = 0;
    const BitVector& de = r.demand_edge(e.id);
    for (int i = de.width() - 1; i >= 0; --i) {
      if (de.bit(i)) {
        target = i + 1;
        break;
      }
    }
    target = std::max(1, std::min(e.width, target));
    if (target < e.width) {
      ++stats.edges_narrowed;
      g.set_edge_width(e.id, target);
    }
  }

  // Snapshot the order: Extension insertion invalidates the CSR mid-loop.
  const std::vector<NodeId> order = g.freeze().topo;
  for (NodeId id : order) {
    const Node& n = g.node(id);
    if (!dfg::is_arith_operator(n.kind) && n.kind != OpKind::Extension) {
      continue;  // comparators/IO/Const keep their widths (interface/semantics)
    }
    const int W = n.width;

    // Demanded narrowing: undemanded high bits may be truncated outright —
    // modular arithmetic's low bits do not read them, and no consumer's
    // demanded operand bit maps onto them (check/absint_engine.h).
    const int demanded = std::max(1, std::min(W, r.demanded_width(id)));

    // Known-bits narrowing: a known top run leaves i live bits with content
    // signedness t, exactly an information-content claim <i, t> proved by
    // the product domain instead of the IC algebra.
    int kb_width = W;
    Sign kb_sign = Sign::Unsigned;
    bool top_bit = false;
    const int run = known_top_run(r.out(id).bits, &top_bit);
    if (run > 0 && run < W) {
      if (!top_bit) {
        kb_width = W - run;
      } else {
        kb_width = W - run + 1;  // keep one sign replica
        kb_sign = Sign::Signed;
      }
    } else if (run == W) {
      kb_width = 1;
      kb_sign = top_bit ? Sign::Signed : Sign::Unsigned;
    }
    kb_width = std::max(1, kb_width);

    if (demanded < W && demanded <= kb_width) {
      stats.bits_removed += W - demanded;
      ++stats.nodes_narrowed;
      ++stats.demanded_shrinks;
      g.set_node_width(id, demanded);
      pending.push_back(
          {id.value, n.kind, "shrink.demanded", W, demanded});
    } else if (kb_width < W) {
      stats.bits_removed += W - kb_width;
      ++stats.nodes_narrowed;
      ++stats.knownbits_shrinks;
      retarget_out_edges(g, id, W, kb_width, kb_sign, stats);
      pending.push_back(
          {id.value, n.kind, "shrink.known-bits", W, kb_width});
    }
  }
  return stats;
}

bool verify_batch(const Graph& before, const Graph& after,
                  const ShrinkOptions& opts, bool* formal_proved) {
  Rng rng(0x5121c0de);
  if (!dfg::equivalent_by_simulation(before, after, opts.sim_trials, rng)) {
    return false;
  }
  int input_bits = 0;
  for (NodeId id : before.inputs()) input_bits += before.node(id).width;
  if (opts.max_formal_input_bits >= 0 &&
      input_bits <= opts.max_formal_input_bits) {
    const formal::EquivResult res =
        formal::check_graph_vs_graph(before, after, opts.formal_max_nodes);
    if (res.status == formal::EquivResult::Status::Different) return false;
    if (res.equivalent()) {
      *formal_proved = true;
      return true;
    }
  }
  *formal_proved = false;  // simulation-only evidence this batch
  return true;
}

void log_decisions(const std::vector<PendingDecision>& pending) {
  obs::prov::DecisionLog* log = obs::prov::current_log();
  if (!log) return;
  for (const PendingDecision& p : pending) {
    obs::prov::Decision d;
    d.node = p.node;
    d.node_op =
        std::string(dfg::to_string(p.kind)) + "#" + std::to_string(p.node);
    d.rule = p.rule;
    d.verdict = obs::prov::Verdict::Accept;
    d.node_width = p.old_width;
    d.info_width = p.new_width;
    d.width_savings = p.old_width - p.new_width;
    log->add(d);
  }
}

}  // namespace

std::string ShrinkStats::to_string() const {
  return "nodes narrowed: " + std::to_string(nodes_narrowed) +
         " (demanded: " + std::to_string(demanded_shrinks) +
         ", known-bits: " + std::to_string(knownbits_shrinks) +
         "), edges narrowed: " + std::to_string(edges_narrowed) +
         ", extensions inserted: " + std::to_string(extensions_inserted) +
         ", node bits removed: " + std::to_string(bits_removed) +
         ", reverted batches: " + std::to_string(reverted_batches) +
         (formally_verified ? ", formally verified" : ", simulation only");
}

ShrinkStats shrink_widths(Graph& g, const ShrinkOptions& opts) {
  obs::Span span("transform.shrink_widths");
  ShrinkStats total;
  total.formally_verified = true;
  for (int round = 0; round < std::max(1, opts.max_rounds); ++round) {
    const Graph before = g;  // revert point for this batch
    std::vector<PendingDecision> pending;
    ShrinkStats batch = apply_batch(g, pending);
    if (!batch.changed()) break;

    bool formal_proved = false;
    if (!verify_batch(before, g, opts, &formal_proved)) {
      // The analysis licensed a shrink the oracle refutes: keep the design
      // correct (restore), surface the event, and stop — re-running would
      // reproduce the same bad batch.
      g = before;
      ++total.reverted_batches;
      obs::stat_add("transform.shrink.reverted_batches");
      break;
    }
    log_decisions(pending);
    const bool fv = total.formally_verified && formal_proved;
    const int rb = total.reverted_batches;
    batch.reverted_batches = 0;
    total.nodes_narrowed += batch.nodes_narrowed;
    total.edges_narrowed += batch.edges_narrowed;
    total.extensions_inserted += batch.extensions_inserted;
    total.bits_removed += batch.bits_removed;
    total.demanded_shrinks += batch.demanded_shrinks;
    total.knownbits_shrinks += batch.knownbits_shrinks;
    total.reverted_batches = rb;
    total.formally_verified = fv;
  }
  if (!total.changed()) total.formally_verified = false;
  if (obs::StatSink* sink = obs::current_sink()) {
    sink->add("transform.shrink.nodes_narrowed", total.nodes_narrowed);
    sink->add("transform.shrink.edges_narrowed", total.edges_narrowed);
    sink->add("transform.shrink.bits_removed", total.bits_removed);
  }
  return total;
}

}  // namespace dpmerge::transform
