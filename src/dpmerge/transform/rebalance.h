#pragma once

#include "dpmerge/dfg/graph.h"

namespace dpmerge::transform {

/// Statistics from a rebalancing run.
struct RebalanceStats {
  int clusters_rebuilt = 0;
  int max_depth_before = 0;  ///< longest arith-operator chain, whole graph
  int max_depth_after = 0;
};

/// The "other problem scenario" the paper's introduction points at:
/// *rebalancing of computation graphs consisting of associative operators*.
///
/// Every cluster found by the mergeability analysis is safely rebalanceable
/// (Observation 5.8) — its output is a sum of addends derived from its
/// inputs — so the cluster's operator tree can be rebuilt in the
/// information-content-optimal (Huffman) combination order of Section 5.2
/// instead of whatever skewed shape the RTL happened to have. Unlike
/// operator merging (which dissolves the tree into one CSA reduction), this
/// keeps discrete adders, so it is the right transformation when each
/// operator must remain addressable — e.g. ahead of a non-merging synthesis
/// flow, where it shortens the operator-chain critical path from linear to
/// logarithmic.
///
/// Returns a new, functionally equivalent graph (same inputs/outputs by
/// name and width). Member multipliers are preserved as tree leaves;
/// adds/subs/negs/shifts are re-emitted as a balanced tree at the cluster
/// root's width.
dfg::Graph rebalance_clusters(const dfg::Graph& g,
                              RebalanceStats* stats = nullptr);

/// Longest chain of arithmetic operator nodes (a structural depth metric
/// used to quantify rebalancing).
int arith_depth(const dfg::Graph& g);

}  // namespace dpmerge::transform
