#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dpmerge/support/sign.h"

namespace dpmerge {

/// Arbitrary-width bit vector with two's-complement arithmetic semantics.
///
/// `BitVector` is the single source of arithmetic truth in dpmerge: the DFG
/// interpreter, the gate-level netlist simulator cross-checks, and the
/// information-content soundness property tests all evaluate through it.
///
/// A `BitVector` has a fixed `width()` in bits. All arithmetic operations are
/// performed modulo 2^width (both operands must have equal width); signedness
/// is not a property of the vector but of how it is *extended* (Definition
/// 2.1 of the paper) or interpreted (`to_int64`, `signed_lt`, ...).
///
/// Bits are stored little-endian in 64-bit words; unused high bits of the top
/// word are kept zero as a class invariant.
class BitVector {
 public:
  /// The zero-width vector (identity for `concat`-style uses; rarely needed).
  BitVector() = default;

  /// A `width`-bit vector of all zeros. `width >= 0`.
  explicit BitVector(int width);

  /// Builds a `width`-bit vector from the low bits of `v` (zero-extended).
  static BitVector from_uint(int width, std::uint64_t v);

  /// Builds a `width`-bit vector from `v` reduced modulo 2^width
  /// (i.e. sign bits of `v` propagate into widths above 64).
  static BitVector from_int(int width, std::int64_t v);

  /// Parses a binary string, MSB first, e.g. "0101" -> width 4, value 5.
  static BitVector from_string(std::string_view bits);

  int width() const { return width_; }
  bool empty() const { return width_ == 0; }

  /// Value of bit `i` (bit 0 = least significant). Requires 0 <= i < width.
  bool bit(int i) const;
  void set_bit(int i, bool value);

  /// Most significant bit; requires width >= 1.
  bool msb() const { return bit(width_ - 1); }

  bool is_zero() const;

  /// Keeps the `w` least significant bits. Requires 0 <= w <= width.
  BitVector truncate(int w) const;

  /// Pads to `w` bits (w >= width) with zeros (`Sign::Unsigned`) or with
  /// copies of the MSB (`Sign::Signed`). A signed extension of a zero-width
  /// vector is defined as all zeros.
  BitVector extend(int w, Sign t) const;

  /// `truncate` when w <= width, `extend` otherwise. This is exactly the
  /// width-adaptation operation the DFG edge semantics of Section 2.2 need.
  BitVector resize(int w, Sign t) const;

  /// Modular arithmetic; operands must have equal widths.
  BitVector add(const BitVector& rhs) const;
  BitVector sub(const BitVector& rhs) const;
  BitVector mul(const BitVector& rhs) const;

  /// Two's-complement negation (modulo 2^width).
  BitVector negate() const;

  /// Left shift by `s` bits within the same width (modulo 2^width).
  BitVector shl(int s) const;

  /// Bitwise complement.
  BitVector bit_not() const;

  bool operator==(const BitVector& rhs) const;
  bool operator!=(const BitVector& rhs) const { return !(*this == rhs); }

  /// Low 64 bits, zero-extended.
  std::uint64_t to_uint64() const;

  /// Two's-complement interpretation; requires width <= 64.
  std::int64_t to_int64() const;

  /// MSB-first binary string, e.g. width-4 value 5 -> "0101".
  std::string to_string() const;

  /// True iff this vector equals the `t`-extension of its `i` least
  /// significant bits — i.e. `<i, t>` is a valid information-content claim
  /// for this value (Definition 5.1). Requires 0 <= i <= width.
  bool is_extension_of_low(int i, Sign t) const;

  /// Smallest `i` such that the vector is a `t`-extension of its `i` LSBs.
  int min_extension_width(Sign t) const;

  /// Unsigned / signed comparisons (equal widths required).
  bool unsigned_lt(const BitVector& rhs) const;
  bool signed_lt(const BitVector& rhs) const;

 private:
  void normalize();  // zero the unused bits of the top word
  int num_words() const { return static_cast<int>(words_.size()); }

  int width_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace dpmerge
