#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

#include "dpmerge/support/annotations.h"

namespace dpmerge::support {

/// std::mutex wrapped as a Clang Thread Safety Analysis capability.
/// libstdc++'s std::mutex carries no annotations, so locking it is
/// invisible to -Wthread-safety; this wrapper gives every lock/unlock a
/// capability effect the analysis can track. Zero overhead: the calls
/// inline to the std::mutex ones.
class DPMERGE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DPMERGE_ACQUIRE() { mu_.lock(); }
  void unlock() DPMERGE_RELEASE() { mu_.unlock(); }
  bool try_lock() DPMERGE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Runtime no-op asserting to the analysis that this mutex is held.
  /// For condition-variable predicates, which run under the lock via a
  /// protocol (CondVar::wait) the analysis cannot follow.
  void assert_held() DPMERGE_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock over Mutex. std::lock_guard/unique_lock are invisible
/// to the analysis; this is the annotated equivalent of lock_guard.
class DPMERGE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DPMERGE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DPMERGE_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to support::Mutex. `wait` requires the caller
/// to hold the mutex (checked by the analysis) and returns holding it
/// again; internally it adopts the held lock into a std::unique_lock for
/// the duration of the wait and releases ownership back on return, so the
/// native std::condition_variable fast path is kept.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <class Pred>
  void wait(Mutex& mu, Pred pred) DPMERGE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk, std::move(pred));
    lk.release();  // ownership stays with the caller's capability
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dpmerge::support
