#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "dpmerge/support/annotations.h"
#include "dpmerge/support/mutex.h"

namespace dpmerge::support {

/// Observability hooks for the thread pool. support cannot depend on
/// dpmerge::obs (layering), so the pool publishes job/task lifecycle through
/// this struct instead of calling the flight recorder directly; obs installs
/// its sink once via set_pool_telemetry() (FlightRecorder::instance() does
/// it on first use). Both pointers must be non-null and the struct must have
/// program lifetime. Hooks run on pool threads, outside every pool lock, and
/// must not call back into the pool.
///
/// The serial fast path (no workers, n == 1, or max_threads == 1 with no
/// audit/stress) never opens a job descriptor and therefore emits no
/// telemetry — by design: that path is the zero-synchronisation degradation
/// the single-core contract promises, and a serial loop has nothing to say
/// about queue depth or worker utilization.
struct PoolTelemetryHooks {
  /// One call per dispatched job, after the descriptor is published:
  /// `tasks` = number of positions, `width` = admitted parallel width
  /// (workers + the participating caller).
  void (*job)(std::uint64_t job_id, int tasks, int width);
  /// One call per completed task: `t0_us`/`dur_us` are steady-clock
  /// microseconds (same epoch as obs::now_us).
  void (*task)(std::uint64_t job_id, int pos, std::int64_t t0_us,
               std::int64_t dur_us);
};

/// Installs (or, with nullptr, removes) the process-wide telemetry sink.
/// Relaxed atomics: a job racing the install may miss events, never crash.
void set_pool_telemetry(const PoolTelemetryHooks* hooks);
const PoolTelemetryHooks* pool_telemetry();

/// A persistent worker pool with a deterministic `parallel_for`. One shared
/// instance (`ThreadPool::shared()`) serves the whole process: the table and
/// scale benches spread their (design x flow) cells on it, and the parallel
/// clusterer spreads its per-iteration stages on it.
///
/// Determinism contract (DESIGN.md §11): `parallel_for(n, fn)` guarantees
/// only that `fn(i)` runs exactly once for every i in [0, n) before the call
/// returns — never which thread runs it or in what order. A caller that
/// wants schedule-independent results must make each `fn(i)` a pure function
/// of `i` that writes only into its own pre-sized result slot; any
/// randomness must come from an Rng seeded per index. Every use in this
/// library follows that rule, which is what makes the parallel clusterer
/// bit-identical to the serial one — and `audit::AccessAudit` plus the
/// seeded stress scheduler (`set_stress`) check it instead of trusting it
/// (DESIGN.md §12).
///
/// Exceptions: if a task throws, the job stops dispensing further indices,
/// every participating thread finishes its current task, and `parallel_for`
/// rethrows one of the captured exceptions on the calling thread (which one
/// is unspecified when several tasks throw). Indices not yet dispatched
/// when the first exception lands do NOT run. The pool stays usable.
///
/// Locking discipline (checked by -Wthread-safety on Clang):
///   `job_mu_` serialises whole `parallel_for` calls — acquired first, held
///   for a job's entire lifetime. `mu_` guards the worker handshake and the
///   job descriptor — acquired under `job_mu_` for setup, alone by workers.
///   Never acquire `job_mu_` while holding `mu_`.
///
/// The calling thread always participates in the loop, so a pool of size 1
/// (or a machine reporting one core) degrades to a plain serial loop with no
/// synchronisation. Nested `parallel_for` calls from inside a worker run the
/// inner loop inline on that worker (no deadlock, no oversubscription).
class ThreadPool {
 public:
  /// `threads` is the total parallel width including the calling thread;
  /// 0 means hardware concurrency. The pool spawns `threads - 1` workers.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallel width (workers + the participating caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `fn(i)` exactly once for every i in [0, n), using at most
  /// `max_threads` threads (0 = the pool's full width). Blocks until every
  /// index ran (or a task threw; see the exception contract above). Safe to
  /// call from inside a worker (runs inline).
  void parallel_for(int n, const std::function<void(int)>& fn,
                    int max_threads = 0) DPMERGE_EXCLUDES(job_mu_, mu_);

  /// Chunked variant: runs `fn(begin, end)` over [0, n) split into chunks of
  /// at most `grain` indices. Lower dispatch overhead for cheap bodies.
  void parallel_for_chunks(int n, int grain,
                           const std::function<void(int, int)>& fn,
                           int max_threads = 0) DPMERGE_EXCLUDES(job_mu_, mu_);

  /// Caps the width of future `parallel_for`/`parallel_for_chunks` calls
  /// that pass `max_threads == 0` (0 restores the pool's full width).
  /// Deferred-safe: the cap is read exactly once per job, at job open,
  /// under the pool mutex — a store racing an in-flight job changes only
  /// *future* jobs, never the one running.
  void set_default_cap(int cap) { default_cap_.store(cap); }

  /// Seeded stress scheduler (DESIGN.md §12): while enabled, every job
  /// dispatches its tasks in a seed-derived random order and inserts a
  /// small seed-derived busy/yield jitter before each task, so repeated
  /// runs with different seeds explore different interleavings. Applies to
  /// the serial inline fallback too (tasks run in the permuted order), so
  /// single-core runs still exercise order-independence. A workload that
  /// honours the determinism contract produces byte-identical results under
  /// every seed — which the stress tests and `dpmerge-lint --concurrency`
  /// assert. Serialises against in-flight jobs; takes effect from the next
  /// job.
  struct StressOptions {
    bool enabled = false;
    std::uint64_t seed = 0;
    /// Upper bound on the per-task jitter spin (0 disables jitter but
    /// keeps the dispatch-order permutation).
    int max_spin = 256;
  };
  void set_stress(const StressOptions& opts) DPMERGE_EXCLUDES(job_mu_, mu_);

  /// The process-wide pool, created on first use with the
  /// `set_shared_threads` width (0 = hardware concurrency at creation time).
  static ThreadPool& shared();

  /// Sets the width used when `shared()` first creates the pool, and the
  /// default cap applied to later `parallel_for` calls on it (a CLI
  /// `--threads N` lands here; 0 restores "use everything"). The pool's
  /// worker count is fixed at first `shared()` use; later calls only move
  /// the cap — and the cap is read once per job at job open, so calling
  /// this while a `shared()` job is in flight is safe and affects only
  /// subsequent jobs. Calling it from *inside* pool work (a worker task,
  /// or a nested inline loop) is a lifecycle error — the reconfiguration
  /// would race the very job executing it — and throws std::logic_error
  /// with a diagnostic naming the misuse.
  static void set_shared_threads(int threads);
  static int shared_threads();

 private:
  void worker_loop();
  void drain();
  void run_one(int pos);
  void record_job_error(std::exception_ptr e) DPMERGE_EXCLUDES(mu_);

  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar cv_;       // workers wait for a new job epoch
  CondVar done_cv_;  // caller waits for workers to finish
  std::uint64_t epoch_ DPMERGE_GUARDED_BY(mu_) = 0;
  bool stop_ DPMERGE_GUARDED_BY(mu_) = false;
  int running_ DPMERGE_GUARDED_BY(mu_) = 0;   // workers inside drain()
  int participants_ DPMERGE_GUARDED_BY(mu_) = 0;  // admitted to current job
  int max_participants_ DPMERGE_GUARDED_BY(mu_) = 0;
  std::atomic<int> default_cap_{0};

  // Current job descriptor (valid while job_open_). Written under both
  // job_mu_ and mu_ at job open; held constant for the job's lifetime by
  // job_mu_ and published to workers by the mu_ release/acquire of the
  // epoch handshake — which is why drain()/run_one() may read the
  // descriptor lock-free (annotated on the implementations; manual proof
  // in thread_pool.cpp).
  Mutex job_mu_;  // serialises concurrent parallel_for callers
  bool job_open_ DPMERGE_GUARDED_BY(mu_) = false;
  bool chunked_ DPMERGE_GUARDED_BY(mu_) = false;
  int job_n_ DPMERGE_GUARDED_BY(mu_) = 0;      // index count (or chunk count)
  int job_grain_ DPMERGE_GUARDED_BY(mu_) = 1;
  int job_limit_ DPMERGE_GUARDED_BY(mu_) = 0;  // exclusive end of raw range
  const std::function<void(int)>* fn_ DPMERGE_GUARDED_BY(mu_) = nullptr;
  const std::function<void(int, int)>* chunk_fn_ DPMERGE_GUARDED_BY(mu_) =
      nullptr;
  bool job_audited_ DPMERGE_GUARDED_BY(mu_) = false;
  std::uint64_t job_id_ DPMERGE_GUARDED_BY(mu_) = 0;  // from job_counter_
  std::vector<int> perm_ DPMERGE_GUARDED_BY(mu_);  // stress dispatch order
  std::uint64_t job_jitter_seed_ DPMERGE_GUARDED_BY(mu_) = 0;
  int job_max_spin_ DPMERGE_GUARDED_BY(mu_) = 0;
  std::exception_ptr job_error_ DPMERGE_GUARDED_BY(mu_);
  /// Raised by the first failing task; checked (relaxed) by the dispensers
  /// to stop handing out further work. Lock-free on purpose: timeliness
  /// only — correctness of the abort path rests on mu_ (job_error_).
  std::atomic<bool> job_abort_{false};
  std::atomic<int> next_{0};  // position dispenser for the current job

  // Stress configuration (applies from the next job). `stress_on_` mirrors
  // stress_.enabled so the serial fast path can test it without job_mu_.
  StressOptions stress_ DPMERGE_GUARDED_BY(job_mu_);
  std::uint64_t job_counter_ DPMERGE_GUARDED_BY(job_mu_) = 0;
  std::atomic<bool> stress_on_{false};

  // Opens the job descriptor (audit job, stress permutation, dispatch
  // state) and admits workers; returns whether any worker may join (false
  // degrades to an instrumented serial drain by the caller alone).
  bool open_job(int count, bool chunked, int limit, int grain,
                const std::function<void(int)>* fn,
                const std::function<void(int, int)>* chunk_fn,
                int max_threads) DPMERGE_REQUIRES(job_mu_)
      DPMERGE_EXCLUDES(mu_);
  void close_job() DPMERGE_REQUIRES(job_mu_) DPMERGE_EXCLUDES(mu_);
};

}  // namespace dpmerge::support
