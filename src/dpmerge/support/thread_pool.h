#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dpmerge::support {

/// A persistent worker pool with a deterministic `parallel_for`. One shared
/// instance (`ThreadPool::shared()`) serves the whole process: the table and
/// scale benches spread their (design x flow) cells on it, and the parallel
/// clusterer spreads its per-iteration stages on it.
///
/// Determinism contract (DESIGN.md §11): `parallel_for(n, fn)` guarantees
/// only that `fn(i)` runs exactly once for every i in [0, n) before the call
/// returns — never which thread runs it or in what order. A caller that
/// wants schedule-independent results must make each `fn(i)` a pure function
/// of `i` that writes only into its own pre-sized result slot; any
/// randomness must come from an Rng seeded per index. Every use in this
/// library follows that rule, which is what makes the parallel clusterer
/// bit-identical to the serial one.
///
/// The calling thread always participates in the loop, so a pool of size 1
/// (or a machine reporting one core) degrades to a plain serial loop with no
/// synchronisation. Nested `parallel_for` calls from inside a worker run the
/// inner loop inline on that worker (no deadlock, no oversubscription).
class ThreadPool {
 public:
  /// `threads` is the total parallel width including the calling thread;
  /// 0 means hardware concurrency. The pool spawns `threads - 1` workers.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallel width (workers + the participating caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `fn(i)` exactly once for every i in [0, n), using at most
  /// `max_threads` threads (0 = the pool's full width). Blocks until every
  /// index ran. Safe to call from inside a worker (runs inline).
  void parallel_for(int n, const std::function<void(int)>& fn,
                    int max_threads = 0);

  /// Chunked variant: runs `fn(begin, end)` over [0, n) split into chunks of
  /// at most `grain` indices. Lower dispatch overhead for cheap bodies.
  void parallel_for_chunks(int n, int grain,
                           const std::function<void(int, int)>& fn,
                           int max_threads = 0);

  /// Caps the width of future `parallel_for`/`parallel_for_chunks` calls
  /// that pass `max_threads == 0` (0 restores the pool's full width).
  void set_default_cap(int cap) { default_cap_.store(cap); }

  /// The process-wide pool, created on first use with the
  /// `set_shared_threads` width (0 = hardware concurrency at creation time).
  static ThreadPool& shared();

  /// Sets the width used when `shared()` first creates the pool, and the
  /// default cap applied to later `parallel_for` calls on it (a CLI
  /// `--threads N` lands here; 0 restores "use everything"). The pool's
  /// worker count is fixed at first `shared()` use; later calls only move
  /// the cap.
  static void set_shared_threads(int threads);
  static int shared_threads();

 private:
  void worker_loop();
  void drain();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;       // workers wait for a new job epoch
  std::condition_variable done_cv_;  // caller waits for workers to finish
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  int running_ = 0;       // workers currently inside drain()
  int participants_ = 0;  // workers admitted to the current job
  int max_participants_ = 0;
  std::atomic<int> default_cap_{0};

  // Current job (valid while job_open_): an atomic index dispenser.
  std::mutex job_mu_;  // serialises concurrent parallel_for callers
  bool job_open_ = false;
  bool chunked_ = false;
  int job_n_ = 0;
  int job_grain_ = 1;
  std::atomic<int> next_{0};
  const std::function<void(int)>* fn_ = nullptr;
  const std::function<void(int, int)>* chunk_fn_ = nullptr;
};

}  // namespace dpmerge::support
