#pragma once

/// Clang Thread Safety Analysis attribute macros (DESIGN.md §12).
///
/// Every shared-mutable surface in the library (ThreadPool, obs::stats
/// Registry, obs::Tracer) declares its locking discipline with these macros
/// so that a Clang build with -Wthread-safety turns the discipline into a
/// compile-time check: reading a DPMERGE_GUARDED_BY(mu) field without
/// holding `mu`, returning while still holding a lock, or calling a
/// DPMERGE_REQUIRES(mu) function lock-free is a hard error in the
/// thread-safety-warnings CI job. On every other compiler (and on Clang
/// without the warning enabled) the macros expand to nothing, so the
/// annotations are free documentation.
///
/// The capability model follows the Clang documentation
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html): a
/// DPMERGE_CAPABILITY type (support::Mutex) protects data; functions
/// declare what they acquire, release, require, or must not hold.

#if defined(__clang__) && !defined(SWIG)
#define DPMERGE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DPMERGE_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a capability (e.g. a mutex type). The string names the
/// capability kind in diagnostics ("mutex").
#define DPMERGE_CAPABILITY(x) DPMERGE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (support::MutexLock).
#define DPMERGE_SCOPED_CAPABILITY DPMERGE_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads and writes require holding the named capability.
#define DPMERGE_GUARDED_BY(x) DPMERGE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer-field annotation: the *pointee* is protected by the capability.
#define DPMERGE_PT_GUARDED_BY(x) DPMERGE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (held on return, not on entry).
#define DPMERGE_ACQUIRE(...) \
  DPMERGE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on return).
#define DPMERGE_RELEASE(...) \
  DPMERGE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the capability; first argument is the success value.
#define DPMERGE_TRY_ACQUIRE(...) \
  DPMERGE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability across the call.
#define DPMERGE_REQUIRES(...) \
  DPMERGE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself —
/// documents non-reentrancy and the lock hierarchy).
#define DPMERGE_EXCLUDES(...) \
  DPMERGE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime no-op that tells the analysis the capability is held here.
/// The sanctioned escape hatch for condition-variable predicates: the
/// lambda body runs under the lock, but the analysis cannot see the
/// wait protocol, so the predicate asserts the fact.
#define DPMERGE_ASSERT_CAPABILITY(x) \
  DPMERGE_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define DPMERGE_RETURN_CAPABILITY(x) \
  DPMERGE_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis. Reserved for code whose safety
/// argument is a protocol the analysis cannot express (the ThreadPool
/// epoch/participant handshake); every use carries a comment stating the
/// manual proof.
#define DPMERGE_NO_THREAD_SAFETY_ANALYSIS \
  DPMERGE_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Documentation-only marker for types that are safe because they are
/// *thread-confined*, not because they lock: StatSink, DecisionLog and
/// their TLS accessors (obs::current_sink / obs::prov::current_log) belong
/// to exactly one thread at a time — the thread that installed the scope.
/// The parallel clusterer obeys this by buffering per-chunk and merging on
/// the owning thread (DESIGN.md §11/§12); AccessAudit checks it at runtime.
#define DPMERGE_THREAD_CONFINED
