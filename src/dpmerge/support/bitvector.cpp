#include "dpmerge/support/bitvector.h"

#include <cassert>
#include <stdexcept>

namespace dpmerge {

namespace {
constexpr int kWordBits = 64;

int words_for(int width) { return (width + kWordBits - 1) / kWordBits; }
}  // namespace

BitVector::BitVector(int width) : width_(width) {
  assert(width >= 0);
  words_.assign(words_for(width), 0);
}

BitVector BitVector::from_uint(int width, std::uint64_t v) {
  BitVector r(width);
  if (width > 0) {
    r.words_[0] = v;
    r.normalize();
  }
  return r;
}

BitVector BitVector::from_int(int width, std::int64_t v) {
  BitVector r(width);
  const std::uint64_t fill = v < 0 ? ~std::uint64_t{0} : 0;
  for (auto& w : r.words_) w = fill;
  if (width > 0) r.words_[0] = static_cast<std::uint64_t>(v);
  r.normalize();
  return r;
}

BitVector BitVector::from_string(std::string_view bits) {
  BitVector r(static_cast<int>(bits.size()));
  for (int i = 0; i < r.width_; ++i) {
    const char c = bits[bits.size() - 1 - static_cast<std::size_t>(i)];
    if (c != '0' && c != '1') throw std::invalid_argument("bad bit string");
    r.set_bit(i, c == '1');
  }
  return r;
}

void BitVector::normalize() {
  if (width_ == 0) return;
  const int top_bits = width_ % kWordBits;
  if (top_bits != 0) {
    words_.back() &= (~std::uint64_t{0}) >> (kWordBits - top_bits);
  }
}

bool BitVector::bit(int i) const {
  assert(i >= 0 && i < width_);
  return (words_[static_cast<std::size_t>(i / kWordBits)] >>
          (i % kWordBits)) &
         1u;
}

void BitVector::set_bit(int i, bool value) {
  assert(i >= 0 && i < width_);
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  auto& w = words_[static_cast<std::size_t>(i / kWordBits)];
  if (value) {
    w |= mask;
  } else {
    w &= ~mask;
  }
}

bool BitVector::is_zero() const {
  for (auto w : words_) {
    if (w != 0) return false;
  }
  return true;
}

BitVector BitVector::truncate(int w) const {
  assert(w >= 0 && w <= width_);
  BitVector r(w);
  for (int i = 0; i < r.num_words(); ++i) {
    r.words_[static_cast<std::size_t>(i)] =
        words_[static_cast<std::size_t>(i)];
  }
  r.normalize();
  return r;
}

BitVector BitVector::extend(int w, Sign t) const {
  assert(w >= width_);
  BitVector r(w);
  const bool fill = (t == Sign::Signed) && width_ > 0 && msb();
  if (fill) {
    for (auto& word : r.words_) word = ~std::uint64_t{0};
  }
  // Copy the original bits over the fill. The fill pattern within the last
  // partially-used word must be patched bitwise.
  const int full_words = width_ / kWordBits;
  for (int i = 0; i < full_words; ++i) {
    r.words_[static_cast<std::size_t>(i)] =
        words_[static_cast<std::size_t>(i)];
  }
  for (int i = full_words * kWordBits; i < width_; ++i) {
    r.set_bit(i, bit(i));
  }
  r.normalize();
  return r;
}

BitVector BitVector::resize(int w, Sign t) const {
  return w <= width_ ? truncate(w) : extend(w, t);
}

BitVector BitVector::add(const BitVector& rhs) const {
  assert(width_ == rhs.width_);
  BitVector r(width_);
  std::uint64_t carry = 0;
  for (int i = 0; i < num_words(); ++i) {
    const std::uint64_t a = words_[static_cast<std::size_t>(i)];
    const std::uint64_t b = rhs.words_[static_cast<std::size_t>(i)];
    const std::uint64_t s = a + b;
    const std::uint64_t s2 = s + carry;
    r.words_[static_cast<std::size_t>(i)] = s2;
    carry = (s < a) || (s2 < s) ? 1 : 0;
  }
  r.normalize();
  return r;
}

BitVector BitVector::sub(const BitVector& rhs) const {
  return add(rhs.negate());
}

BitVector BitVector::mul(const BitVector& rhs) const {
  assert(width_ == rhs.width_);
  BitVector r(width_);
  const int n = num_words();
  // Schoolbook multiplication on 64-bit words via 32-bit halves, keeping only
  // the low `width_` bits of the product.
  std::vector<std::uint64_t> acc(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const std::uint64_t a = words_[static_cast<std::size_t>(i)];
    if (a == 0) continue;
    std::uint64_t carry = 0;
    for (int j = 0; i + j < n; ++j) {
      const std::uint64_t b = rhs.words_[static_cast<std::size_t>(j)];
      // 64x64 -> 128 via __uint128_t (GCC/Clang).
      const unsigned __int128 p =
          static_cast<unsigned __int128>(a) * b +
          acc[static_cast<std::size_t>(i + j)] + carry;
      acc[static_cast<std::size_t>(i + j)] = static_cast<std::uint64_t>(p);
      carry = static_cast<std::uint64_t>(p >> 64);
    }
  }
  r.words_ = std::move(acc);
  r.normalize();
  return r;
}

BitVector BitVector::negate() const { return bit_not().add(from_uint(width_, width_ > 0 ? 1 : 0)); }

BitVector BitVector::shl(int s) const {
  assert(s >= 0);
  BitVector r(width_);
  for (int i = width_ - 1; i >= s; --i) r.set_bit(i, bit(i - s));
  return r;
}

BitVector BitVector::bit_not() const {
  BitVector r(width_);
  for (int i = 0; i < num_words(); ++i) {
    r.words_[static_cast<std::size_t>(i)] =
        ~words_[static_cast<std::size_t>(i)];
  }
  r.normalize();
  return r;
}

bool BitVector::operator==(const BitVector& rhs) const {
  return width_ == rhs.width_ && words_ == rhs.words_;
}

std::uint64_t BitVector::to_uint64() const {
  return words_.empty() ? 0 : words_[0];
}

std::int64_t BitVector::to_int64() const {
  assert(width_ <= 64);
  if (width_ == 0) return 0;
  std::uint64_t v = words_[0];
  if (width_ < 64 && msb()) {
    v |= (~std::uint64_t{0}) << width_;
  }
  return static_cast<std::int64_t>(v);
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(static_cast<std::size_t>(width_));
  for (int i = width_ - 1; i >= 0; --i) s.push_back(bit(i) ? '1' : '0');
  return s;
}

bool BitVector::is_extension_of_low(int i, Sign t) const {
  assert(i >= 0 && i <= width_);
  if (i == width_) return true;
  const bool fill = (t == Sign::Signed) && i > 0 && bit(i - 1);
  for (int k = i; k < width_; ++k) {
    if (bit(k) != fill) return false;
  }
  return true;
}

int BitVector::min_extension_width(Sign t) const {
  int i = width_;
  while (i > 0 && is_extension_of_low(i - 1, t)) --i;
  return i;
}

bool BitVector::unsigned_lt(const BitVector& rhs) const {
  assert(width_ == rhs.width_);
  for (int i = num_words() - 1; i >= 0; --i) {
    const auto a = words_[static_cast<std::size_t>(i)];
    const auto b = rhs.words_[static_cast<std::size_t>(i)];
    if (a != b) return a < b;
  }
  return false;
}

bool BitVector::signed_lt(const BitVector& rhs) const {
  assert(width_ == rhs.width_);
  if (width_ == 0) return false;
  if (msb() != rhs.msb()) return msb();  // negative < non-negative
  return unsigned_lt(rhs);
}

}  // namespace dpmerge
