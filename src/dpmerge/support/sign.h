#pragma once

#include <string_view>

namespace dpmerge {

/// Signedness of a width extension (Definition 2.1 of the paper).
///
/// An *unsigned* extension pads with 0 bits; a *signed* extension pads with
/// copies of the most significant bit of the original signal. The paper also
/// encodes these as the bits {0, 1}; `Sign::Unsigned` corresponds to 0 and
/// `Sign::Signed` to 1.
enum class Sign : unsigned char {
  Unsigned = 0,
  Signed = 1,
};

/// The paper's `t1 | t2` combination: signed if either operand is signed.
constexpr Sign operator|(Sign a, Sign b) {
  return (a == Sign::Signed || b == Sign::Signed) ? Sign::Signed
                                                  : Sign::Unsigned;
}

constexpr std::string_view to_string(Sign s) {
  return s == Sign::Signed ? "signed" : "unsigned";
}

}  // namespace dpmerge
