#include "dpmerge/support/thread_pool.h"

#include <algorithm>

namespace dpmerge::support {

namespace {

/// True on a thread currently executing pool work; nested parallel_for calls
/// from such a thread run inline instead of re-entering the dispatcher.
bool& t_in_pool_work() {
  thread_local bool in = false;
  return in;
}

std::atomic<int>& shared_threads_config() {
  static std::atomic<int> threads{0};
  return threads;
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 0; t < threads - 1; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    ++epoch_;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain() {
  if (chunked_) {
    const int grain = job_grain_;
    for (int b = next_.fetch_add(grain); b < job_n_;
         b = next_.fetch_add(grain)) {
      (*chunk_fn_)(b, std::min(b + grain, job_n_));
    }
  } else {
    for (int i = next_.fetch_add(1); i < job_n_; i = next_.fetch_add(1)) {
      (*fn_)(i);
    }
  }
}

void ThreadPool::worker_loop() {
  t_in_pool_work() = true;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    if (!job_open_ || participants_ >= max_participants_) continue;
    ++participants_;
    ++running_;
    lk.unlock();
    drain();
    lk.lock();
    if (--running_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn,
                              int max_threads) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1 || max_threads == 1 || t_in_pool_work()) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> job_lock(job_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_open_ = true;
    chunked_ = false;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    fn_ = &fn;
    participants_ = 0;
    const int def = default_cap_.load();
    const int cap = max_threads > 0 ? max_threads : (def > 0 ? def : size());
    max_participants_ = std::min({static_cast<int>(workers_.size()),
                                  std::max(cap - 1, 0), n - 1});
    ++epoch_;
  }
  cv_.notify_all();
  t_in_pool_work() = true;
  drain();
  t_in_pool_work() = false;
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return running_ == 0; });
  job_open_ = false;
}

void ThreadPool::parallel_for_chunks(int n, int grain,
                                     const std::function<void(int, int)>& fn,
                                     int max_threads) {
  if (n <= 0) return;
  grain = std::max(grain, 1);
  if (workers_.empty() || n <= grain || max_threads == 1 ||
      t_in_pool_work()) {
    fn(0, n);
    return;
  }
  std::lock_guard<std::mutex> job_lock(job_mu_);
  const int chunks = (n + grain - 1) / grain;
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_open_ = true;
    chunked_ = true;
    job_n_ = n;
    job_grain_ = grain;
    next_.store(0, std::memory_order_relaxed);
    chunk_fn_ = &fn;
    participants_ = 0;
    const int def = default_cap_.load();
    const int cap = max_threads > 0 ? max_threads : (def > 0 ? def : size());
    max_participants_ = std::min({static_cast<int>(workers_.size()),
                                  std::max(cap - 1, 0), chunks - 1});
    ++epoch_;
  }
  cv_.notify_all();
  t_in_pool_work() = true;
  drain();
  t_in_pool_work() = false;
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return running_ == 0; });
  job_open_ = false;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(shared_threads_config().load());
  return pool;
}

void ThreadPool::set_shared_threads(int threads) {
  threads = std::max(threads, 0);
  shared_threads_config().store(threads);
  shared().set_default_cap(threads);
}

int ThreadPool::shared_threads() { return shared_threads_config().load(); }

}  // namespace dpmerge::support
