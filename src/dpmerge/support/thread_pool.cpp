#include "dpmerge/support/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>

#include "dpmerge/support/access_audit.h"
#include "dpmerge/support/rng.h"

namespace dpmerge::support {

namespace {

std::atomic<const PoolTelemetryHooks*>& telemetry_slot() {
  static std::atomic<const PoolTelemetryHooks*> hooks{nullptr};
  return hooks;
}

/// Steady-clock microseconds, same epoch as obs::now_us (both read
/// std::chrono::steady_clock), so pool task events interleave correctly
/// with obs spans.
std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// True on a thread currently executing pool work; nested parallel_for calls
/// from such a thread run inline instead of re-entering the dispatcher.
bool& t_in_pool_work() {
  thread_local bool in = false;
  return in;
}

std::atomic<int>& shared_threads_config() {
  static std::atomic<int> threads{0};
  return threads;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void set_pool_telemetry(const PoolTelemetryHooks* hooks) {
  telemetry_slot().store(hooks, std::memory_order_release);
}

const PoolTelemetryHooks* pool_telemetry() {
  return telemetry_slot().load(std::memory_order_acquire);
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 0; t < threads - 1; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(mu_);
    stop_ = true;
    ++epoch_;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

// Reads the job descriptor lock-free. Manual proof (the analysis cannot
// express a publication protocol): the descriptor is written in open_job
// under mu_ *before* the epoch increment; a worker enters drain() only
// after observing the new epoch under mu_, so the mu_ release/acquire pair
// orders every descriptor read after the writes. The caller thread reads
// its own writes. job_mu_ holds the descriptor constant until close_job,
// which first waits for running_ == 0 under mu_ — no worker can still be
// inside drain() when the descriptor is torn down.
void ThreadPool::run_one(int pos) DPMERGE_NO_THREAD_SAFETY_ANALYSIS {
  const int slot =
      perm_.empty() ? pos : perm_[static_cast<std::size_t>(pos)];
  if (job_max_spin_ > 0) {
    // Seeded per-task jitter: perturbs the relative timing of tasks so
    // different stress seeds explore different interleavings.
    const std::uint64_t r = splitmix64(
        job_jitter_seed_ ^ (static_cast<std::uint64_t>(slot) << 17));
    const int spins =
        static_cast<int>(r % static_cast<std::uint64_t>(job_max_spin_));
    for (int s = 0; s < spins; ++s) {
      if ((s & 63) == 63) std::this_thread::yield();
    }
  }
  const bool audited = job_audited_;
  if (audited) audit::AccessAudit::instance().begin_task(slot);
  const PoolTelemetryHooks* tel = pool_telemetry();
  const std::int64_t t0_us = tel != nullptr ? steady_now_us() : 0;
  try {
    if (chunked_) {
      const int lo = slot * job_grain_;
      const int hi = std::min(lo + job_grain_, job_limit_);
      (*chunk_fn_)(lo, hi);
    } else {
      (*fn_)(slot);
    }
  } catch (...) {
    record_job_error(std::current_exception());
  }
  if (tel != nullptr) {
    tel->task(job_id_, slot, t0_us, steady_now_us() - t0_us);
  }
  if (audited) audit::AccessAudit::instance().end_task();
}

void ThreadPool::drain() DPMERGE_NO_THREAD_SAFETY_ANALYSIS {
  // Position dispenser over [0, job_n_): each position maps to one task
  // (an index, or a chunk id), permuted by run_one under stress. Stops
  // dispensing once a task has thrown; already-dispensed tasks finish.
  for (int pos = next_.fetch_add(1); pos < job_n_;
       pos = next_.fetch_add(1)) {
    if (job_abort_.load(std::memory_order_relaxed)) break;
    run_one(pos);
  }
}

// The epoch/participant handshake holds mu_ across loop iterations and
// releases it only around drain(); the analysis cannot track a lock held
// across a loop back-edge with a mid-body release, so the proof is manual:
// every field touched here (stop_, epoch_, job_open_, participants_,
// running_) is read/written strictly between mu_.lock() and mu_.unlock().
void ThreadPool::worker_loop() DPMERGE_NO_THREAD_SAFETY_ANALYSIS {
  t_in_pool_work() = true;
  std::uint64_t seen = 0;
  mu_.lock();
  for (;;) {
    cv_.wait(mu_, [&] {
      mu_.assert_held();
      return stop_ || epoch_ != seen;
    });
    if (stop_) break;
    seen = epoch_;
    if (!job_open_ || participants_ >= max_participants_) continue;
    ++participants_;
    ++running_;
    mu_.unlock();
    drain();
    mu_.lock();
    if (--running_ == 0) done_cv_.notify_all();
  }
  mu_.unlock();
}

void ThreadPool::record_job_error(std::exception_ptr e) {
  MutexLock lk(mu_);
  if (!job_error_) job_error_ = std::move(e);
  job_abort_.store(true, std::memory_order_relaxed);
}

bool ThreadPool::open_job(int count, bool chunked, int limit, int grain,
                          const std::function<void(int)>* fn,
                          const std::function<void(int, int)>* chunk_fn,
                          int max_threads) {
  const bool audited =
      audit::audit_enabled() && !audit::AccessAudit::in_task();
  if (audited) {
    audit::AccessAudit::instance().begin_job(audit::JobLabel::current());
  }
  std::vector<int> perm;
  std::uint64_t jitter_seed = 0;
  int max_spin = 0;
  if (stress_.enabled) {
    perm.resize(static_cast<std::size_t>(count));
    std::iota(perm.begin(), perm.end(), 0);
    Rng rng(splitmix64(stress_.seed) ^ job_counter_);
    std::shuffle(perm.begin(), perm.end(), rng.engine());
    jitter_seed = splitmix64(stress_.seed ^ (job_counter_ * 0x2545F4914F6CDD1DULL));
    max_spin = stress_.max_spin;
  }
  const std::uint64_t job_id = ++job_counter_;

  int width = 0;
  {
    MutexLock lk(mu_);
    job_open_ = true;
    chunked_ = chunked;
    job_n_ = count;
    job_limit_ = limit;
    job_grain_ = grain;
    fn_ = fn;
    chunk_fn_ = chunk_fn;
    job_audited_ = audited;
    job_id_ = job_id;
    perm_ = std::move(perm);
    job_jitter_seed_ = jitter_seed;
    job_max_spin_ = max_spin;
    job_error_ = nullptr;
    job_abort_.store(false, std::memory_order_relaxed);
    next_.store(0, std::memory_order_relaxed);
    participants_ = 0;
    const int def = default_cap_.load();
    const int cap = max_threads > 0 ? max_threads : (def > 0 ? def : size());
    max_participants_ = std::min({static_cast<int>(workers_.size()),
                                  std::max(cap - 1, 0), count - 1});
    ++epoch_;
    width = max_participants_ + 1;
  }
  // Telemetry outside mu_: the hook may take its own locks (registry) and
  // must never nest under a pool mutex. job_mu_ is still held, so the
  // descriptor (and job_id_) stays valid for the callee.
  if (const PoolTelemetryHooks* tel = pool_telemetry()) {
    tel->job(job_id, count, width);
  }
  return width > 1;
}

void ThreadPool::close_job() {
  std::exception_ptr err;
  bool audited = false;
  {
    MutexLock lk(mu_);
    done_cv_.wait(mu_, [this] {
      mu_.assert_held();
      return running_ == 0;
    });
    job_open_ = false;
    audited = job_audited_;
    job_audited_ = false;
    err = job_error_;
    job_error_ = nullptr;
    perm_.clear();
  }
  if (audited) audit::AccessAudit::instance().end_job();
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn,
                              int max_threads) {
  if (n <= 0) return;
  if (t_in_pool_work()) {
    // Nested call from inside pool work: run inline on this worker. Audit
    // hooks (if live) attribute the accesses to the enclosing task, which
    // is where this work really executes.
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  const bool serial = workers_.empty() || n == 1 || max_threads == 1;
  if (serial && !audit::audit_enabled() &&
      !stress_on_.load(std::memory_order_relaxed)) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  MutexLock job_lock(job_mu_);
  const bool workers_join =
      open_job(n, /*chunked=*/false, n, 1, &fn, nullptr,
               serial ? 1 : max_threads);
  if (workers_join) cv_.notify_all();
  t_in_pool_work() = true;
  drain();
  t_in_pool_work() = false;
  close_job();
}

void ThreadPool::parallel_for_chunks(int n, int grain,
                                     const std::function<void(int, int)>& fn,
                                     int max_threads) {
  if (n <= 0) return;
  grain = std::max(grain, 1);
  if (t_in_pool_work()) {
    fn(0, n);
    return;
  }
  const bool serial = workers_.empty() || n <= grain || max_threads == 1;
  if (serial && !audit::audit_enabled() &&
      !stress_on_.load(std::memory_order_relaxed)) {
    fn(0, n);
    return;
  }
  const int chunks = (n + grain - 1) / grain;
  MutexLock job_lock(job_mu_);
  const bool workers_join =
      open_job(chunks, /*chunked=*/true, n, grain, nullptr, &fn,
               serial ? 1 : max_threads);
  if (workers_join) cv_.notify_all();
  t_in_pool_work() = true;
  drain();
  t_in_pool_work() = false;
  close_job();
}

void ThreadPool::set_stress(const StressOptions& opts) {
  // job_mu_ serialises against in-flight jobs: the new configuration is
  // visible from the next job on, never mid-job.
  MutexLock job_lock(job_mu_);
  stress_ = opts;
  stress_on_.store(opts.enabled, std::memory_order_relaxed);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(shared_threads_config().load());
  return pool;
}

void ThreadPool::set_shared_threads(int threads) {
  if (t_in_pool_work()) {
    throw std::logic_error(
        "ThreadPool::set_shared_threads: called from inside pool work (a "
        "parallel_for task or a nested inline loop); reconfiguring the "
        "shared pool would race the very job executing this task — move "
        "the call outside the parallel region");
  }
  threads = std::max(threads, 0);
  shared_threads_config().store(threads);
  shared().set_default_cap(threads);
}

int ThreadPool::shared_threads() { return shared_threads_config().load(); }

}  // namespace dpmerge::support
