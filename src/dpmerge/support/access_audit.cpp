#include "dpmerge/support/access_audit.h"

#include <algorithm>

namespace dpmerge::support::audit {

namespace {

// Packed access entry. Layout (most-significant first) sorts groups by
// (domain, id), then task, then read-before-write:
//   [63:60] domain   [59:28] id (unsigned 32)   [27:1] task   [0] write
constexpr int kDomainShift = 60;
constexpr int kIdShift = 28;
constexpr int kTaskShift = 1;
constexpr std::uint64_t kTaskMask = (1ULL << 27) - 1;

std::uint64_t pack(Domain d, int id, bool write) {
  return (static_cast<std::uint64_t>(d) << kDomainShift) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id))
          << kIdShift) |
         (write ? 1ULL : 0ULL);
}

Domain unpack_domain(std::uint64_t e) {
  return static_cast<Domain>(e >> kDomainShift);
}
int unpack_id(std::uint64_t e) {
  return static_cast<int>(static_cast<std::uint32_t>(e >> kIdShift));
}
int unpack_task(std::uint64_t e) {
  return static_cast<int>((e >> kTaskShift) & kTaskMask);
}
bool unpack_write(std::uint64_t e) { return (e & 1ULL) != 0; }

/// Per-thread open-task footprint. `depth` folds nested inline
/// parallel_for calls into the outermost task (DPMERGE_THREAD_CONFINED:
/// only the executing thread touches its buffer).
struct TaskBuf {
  int task = -1;
  int depth = 0;
  std::vector<std::uint64_t> entries;  ///< packed without the task stamp
};

TaskBuf& t_task() {
  thread_local TaskBuf buf;
  return buf;
}

const char*& t_job_label() {
  thread_local const char* label = nullptr;
  return label;
}

}  // namespace

std::string_view to_string(Domain d) {
  switch (d) {
    case Domain::IcNode: return "ic.node";
    case Domain::IcEdge: return "ic.edge";
    case Domain::RpNode: return "rp.node";
    case Domain::BreakVerdict: return "break.verdict";
    case Domain::ClusterBound: return "cluster.bound";
    case Domain::DecisionBuf: return "decision.chunk";
    case Domain::StatBuf: return "stat.chunk";
    case Domain::Custom: return "custom";
  }
  return "?";
}

std::string Violation::to_text() const {
  std::string s = job;
  s += ": ";
  s += write_write ? "write/write" : "write/read";
  s += " overlap on ";
  s += to_string(domain);
  s += '#';
  s += std::to_string(id);
  s += " between tasks ";
  s += std::to_string(task_a);
  s += " and ";
  s += std::to_string(task_b);
  return s;
}

AccessAudit& AccessAudit::instance() {
  static AccessAudit a;
  return a;
}

void AccessAudit::begin_job(std::string label) {
  MutexLock lock(mu_);
  job_open_ = true;
  job_label_ = std::move(label);
  job_accesses_.clear();
}

void AccessAudit::end_job() {
  MutexLock lock(mu_);
  if (!job_open_) return;
  job_open_ = false;
  ++jobs_audited_;
  // Group by (domain, id); flag any resource touched by more than one task
  // with at least one write. One violation per resource, between the first
  // writer and the first distinct other task — deterministic because the
  // sort order is schedule-independent.
  std::sort(job_accesses_.begin(), job_accesses_.end());
  job_accesses_.erase(
      std::unique(job_accesses_.begin(), job_accesses_.end()),
      job_accesses_.end());
  const std::size_t n = job_accesses_.size();
  for (std::size_t b = 0; b < n;) {
    std::size_t e = b + 1;
    const std::uint64_t key_bits = job_accesses_[b] >> kIdShift;
    while (e < n && (job_accesses_[e] >> kIdShift) == key_bits) ++e;
    int first_writer = -1;
    for (std::size_t i = b; i < e; ++i) {
      if (unpack_write(job_accesses_[i])) {
        first_writer = unpack_task(job_accesses_[i]);
        break;
      }
    }
    if (first_writer >= 0) {
      // A writer exists: any access by a different task conflicts.
      for (std::size_t i = b; i < e; ++i) {
        const int task = unpack_task(job_accesses_[i]);
        if (task == first_writer) continue;
        Violation v;
        v.job = job_label_;
        v.domain = unpack_domain(job_accesses_[b]);
        v.id = unpack_id(job_accesses_[b]);
        v.task_a = std::min(first_writer, task);
        v.task_b = std::max(first_writer, task);
        // write/write dominates if *any* second task writes this key.
        v.write_write = false;
        for (std::size_t j = b; j < e; ++j) {
          if (unpack_write(job_accesses_[j]) &&
              unpack_task(job_accesses_[j]) != first_writer) {
            v.write_write = true;
            v.task_b = unpack_task(job_accesses_[j]);
            v.task_a = std::min(first_writer, v.task_b);
            v.task_b = std::max(first_writer, v.task_b);
            break;
          }
        }
        violations_.push_back(std::move(v));
        break;
      }
    }
    b = e;
  }
  job_accesses_.clear();
}

void AccessAudit::begin_task(int task) {
  TaskBuf& b = t_task();
  if (++b.depth > 1) return;  // nested inline loop: fold into the outer task
  b.task = task;
  b.entries.clear();
}

void AccessAudit::end_task() {
  TaskBuf& b = t_task();
  if (--b.depth > 0) return;
  const int task = b.task;
  b.task = -1;
  if (b.entries.empty()) return;
  std::sort(b.entries.begin(), b.entries.end());
  b.entries.erase(std::unique(b.entries.begin(), b.entries.end()),
                  b.entries.end());
  AccessAudit& a = instance();
  MutexLock lock(a.mu_);
  if (!a.job_open_) return;
  a.accesses_ += static_cast<std::int64_t>(b.entries.size());
  const std::uint64_t stamp =
      (static_cast<std::uint64_t>(task) & kTaskMask) << kTaskShift;
  for (std::uint64_t e : b.entries) a.job_accesses_.push_back(e | stamp);
}

bool AccessAudit::in_task() { return t_task().depth > 0; }

void AccessAudit::read(Domain d, int id) {
  TaskBuf& b = t_task();
  if (b.task < 0) return;
  b.entries.push_back(pack(d, id, false));
}

void AccessAudit::write(Domain d, int id) {
  TaskBuf& b = t_task();
  if (b.task < 0) return;
  b.entries.push_back(pack(d, id, true));
}

std::vector<Violation> AccessAudit::take_violations() {
  MutexLock lock(mu_);
  std::vector<Violation> out = std::move(violations_);
  violations_.clear();
  return out;
}

std::int64_t AccessAudit::jobs_audited() const {
  MutexLock lock(mu_);
  return jobs_audited_;
}

std::int64_t AccessAudit::accesses_recorded() const {
  MutexLock lock(mu_);
  return accesses_;
}

void AccessAudit::clear() {
  MutexLock lock(mu_);
  job_open_ = false;
  job_accesses_.clear();
  violations_.clear();
  jobs_audited_ = 0;
  accesses_ = 0;
}

JobLabel::JobLabel(const char* label) : prev_(t_job_label()) {
  t_job_label() = label;
}

JobLabel::~JobLabel() { t_job_label() = prev_; }

const char* JobLabel::current() {
  const char* l = t_job_label();
  return l ? l : "parallel_for";
}

}  // namespace dpmerge::support::audit
