#pragma once

#include <cstdint>
#include <random>

#include "dpmerge/support/bitvector.h"

namespace dpmerge {

/// Deterministic random source used by tests, property sweeps and workload
/// generators. Thin wrapper over std::mt19937_64 with helpers for the types
/// dpmerge traffics in; fixed seeds keep every experiment reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// True with probability p.
  bool chance(double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_) < p;
  }

  std::uint64_t next_u64() { return engine_(); }

  /// Uniformly random `width`-bit vector.
  BitVector bits(int width) {
    BitVector v(width);
    for (int i = 0; i < width; i += 64) {
      const std::uint64_t w = engine_();
      for (int b = 0; b < 64 && i + b < width; ++b) {
        v.set_bit(i + b, (w >> b) & 1u);
      }
    }
    return v;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dpmerge
