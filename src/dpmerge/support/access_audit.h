#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dpmerge/support/annotations.h"
#include "dpmerge/support/mutex.h"

namespace dpmerge::support::audit {

/// Resource domains the audit tracks. Each (domain, id) pair names one
/// independently-writable slot of shared state touched by the parallel
/// sweeps; keeping the domains separate is what lets the checker prove
/// write disjointness without false conflicts between, say, the break
/// sweep's verdict writes and its reads of the info-content results.
enum class Domain : unsigned char {
  IcNode,       ///< info-content per-node slots (at_output_port/intrinsic)
  IcEdge,       ///< info-content per-edge slots (at_edge/at_operand)
  RpNode,       ///< required-precision per-node slots (r_in/r_out)
  BreakVerdict, ///< break-sweep verdict byte per node
  ClusterBound, ///< Huffman-rebalanced bound slot per cluster
  DecisionBuf,  ///< per-chunk Decision buffer (id = chunk index)
  StatBuf,      ///< per-chunk stat tally buffer (id = chunk index)
  Custom,       ///< test/tooling-defined resources
};

std::string_view to_string(Domain d);

/// One detected overlap between the footprints of two concurrent tasks of
/// the same parallel_for job. `write_write` distinguishes two writers from
/// a writer racing a reader.
struct Violation {
  std::string job;  ///< owning sweep label, e.g. "cluster.break_sweep"
  Domain domain = Domain::Custom;
  int id = -1;           ///< resource id within the domain (node/edge/chunk)
  int task_a = -1;       ///< conflicting task indices within the job
  int task_b = -1;
  bool write_write = false;  ///< else write/read

  std::string to_text() const;
};

/// Debug instrumentation mode of `ThreadPool::parallel_for`
/// (DESIGN.md §12): while enabled, each task of an audited job records its
/// read/write footprint over (domain, id) resources, and after the job the
/// auditor verifies pairwise write/write and read/write disjointness across
/// tasks — turning the determinism contract ("each fn(i) writes only its
/// own slots") from a convention into a checked property.
///
/// The audit is schedule-independent by construction: footprints are keyed
/// by *task index*, not thread, and the serial inline fallback records the
/// same per-index footprints as a genuinely parallel dispatch. A single-
/// core run therefore proves exactly what a 64-core run would.
///
/// Recording is thread-confined (each executing thread appends to its own
/// open task buffer); buffers are handed to the auditor under `mu_` at
/// task end. When disabled (the default), every hook is one relaxed atomic
/// load and a branch.
class AccessAudit {
 public:
  static AccessAudit& instance();

  /// Turns footprint recording on/off process-wide. Enable only around an
  /// audited region; jobs started while disabled record nothing.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  static bool enabled() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }

  // -- Job lifecycle (driven by ThreadPool::parallel_for) -----------------
  // Jobs never overlap: the pool serialises parallel_for callers on its
  // job mutex, and nested inline loops fold into the enclosing task.

  /// Opens an audited job. `label` names the owning sweep in reports.
  void begin_job(std::string label) DPMERGE_EXCLUDES(mu_);
  /// Closes the job and runs the disjointness check; violations accumulate
  /// until `take_violations`.
  void end_job() DPMERGE_EXCLUDES(mu_);

  // -- Task scoping (on the executing thread) -----------------------------

  /// Marks the calling thread as executing task `task` of the open job.
  /// Nested calls (inline nested parallel_for) fold into the outermost
  /// task: the inner work really does run within the enclosing task.
  void begin_task(int task);
  void end_task() DPMERGE_EXCLUDES(mu_);

  /// Whether the calling thread currently has an open audited task (a
  /// parallel_for issued from inside one folds in rather than opening a
  /// nested job).
  static bool in_task();

  // -- Footprint recording -------------------------------------------------

  /// Records a read/write of (d, id) by the calling thread's open task.
  /// No-ops (cheaply) when the thread has no open task, so instrumented
  /// code paths are safe to run serially outside any audited job.
  static void read(Domain d, int id);
  static void write(Domain d, int id);

  /// Drains accumulated violations (deterministic order: job sequence,
  /// then domain, then id).
  std::vector<Violation> take_violations() DPMERGE_EXCLUDES(mu_);

  /// Jobs audited since the last clear — lets tooling report coverage.
  std::int64_t jobs_audited() const DPMERGE_EXCLUDES(mu_);
  std::int64_t accesses_recorded() const DPMERGE_EXCLUDES(mu_);

  void clear() DPMERGE_EXCLUDES(mu_);

 private:
  AccessAudit() = default;

  std::atomic<bool> enabled_{false};

  mutable Mutex mu_;
  bool job_open_ DPMERGE_GUARDED_BY(mu_) = false;
  std::string job_label_ DPMERGE_GUARDED_BY(mu_);
  /// Flushed task footprints of the open job: (key, task, is_write).
  /// Key packs (domain, id); see access_audit.cpp.
  std::vector<std::uint64_t> job_accesses_ DPMERGE_GUARDED_BY(mu_);
  std::vector<Violation> violations_ DPMERGE_GUARDED_BY(mu_);
  std::int64_t jobs_audited_ DPMERGE_GUARDED_BY(mu_) = 0;
  std::int64_t accesses_ DPMERGE_GUARDED_BY(mu_) = 0;
};

/// Records a read of (d, id) into the calling thread's open audited task.
/// One relaxed load + branch when auditing is off.
inline void audit_read(Domain d, int id) {
  if (AccessAudit::enabled()) AccessAudit::read(d, id);
}
inline void audit_write(Domain d, int id) {
  if (AccessAudit::enabled()) AccessAudit::write(d, id);
}
inline bool audit_enabled() { return AccessAudit::enabled(); }

/// RAII label for the parallel_for jobs issued in its scope: the pool
/// stamps the innermost live label onto each audited job so violations
/// name the owning sweep. Thread-local; nests.
class JobLabel {
 public:
  explicit JobLabel(const char* label);
  ~JobLabel();
  JobLabel(const JobLabel&) = delete;
  JobLabel& operator=(const JobLabel&) = delete;

  /// The innermost live label on this thread ("parallel_for" if none).
  static const char* current();

 private:
  const char* prev_;
};

}  // namespace dpmerge::support::audit
