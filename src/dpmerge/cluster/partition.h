#pragma once

#include <string>
#include <vector>

#include "dpmerge/dfg/graph.h"

namespace dpmerge::cluster {

/// A cluster of datapath operators (Section 3): a connected induced subgraph
/// of arithmetic operator nodes with a unique output node (the root), whose
/// output value is expressible as a sum of addends derived from the cluster's
/// inputs. Each cluster is synthesised as one CSA reduction tree plus a
/// single final carry-propagate adder.
struct Cluster {
  std::vector<dfg::NodeId> nodes;  ///< Member operator nodes.
  dfg::NodeId root;                ///< Unique output node of the cluster.
  /// Edges entering the cluster from non-member nodes, in deterministic
  /// (edge-id) order; these carry the signals the addends are derived from.
  std::vector<dfg::EdgeId> input_edges;

  int size() const { return static_cast<int>(nodes.size()); }
};

/// A partitioning of a DFG's arithmetic operator nodes into clusters.
struct Partition {
  std::vector<Cluster> clusters;
  /// Node id -> index into `clusters`, or -1 for non-arithmetic nodes
  /// (inputs, outputs, constants, extension nodes).
  std::vector<int> cluster_of;

  int num_clusters() const { return static_cast<int>(clusters.size()); }

  /// Every cluster implies one final carry-propagate adder — the quantity
  /// the paper's merging minimises (Section 1). Clusters whose root performs
  /// no addition at all (a lone Extension would not be clustered; a lone Neg
  /// still needs its +1 increment) all count.
  int num_final_adders() const { return num_clusters(); }

  int index_of(dfg::NodeId n) const {
    return cluster_of[static_cast<std::size_t>(n.value)];
  }

  std::string summary(const dfg::Graph& g) const;
};

/// Builds a Partition from a per-node break decision: every arithmetic
/// operator either joins the (unique, already-decided) cluster of its
/// operator consumers or roots a new cluster. `is_break[n]` = true means n
/// roots its own cluster. Runs in reverse topological order and fills in the
/// member lists and input edges.
Partition partition_from_breaks(const dfg::Graph& g,
                                const std::vector<bool>& is_break);

/// Structural sanity checks for a partition: clusters are connected, each
/// has exactly one node whose out-edges leave the cluster (the root), and
/// every arithmetic node belongs to exactly one cluster. Returns violations.
std::vector<std::string> validate_partition(const dfg::Graph& g,
                                            const Partition& p);

/// Weakly connected components of the DFG, over the frozen CSR view.
/// `component[n]` is the component id of node n; ids are dense, assigned in
/// ascending order of each component's smallest node id (so the labelling is
/// deterministic and independent of traversal order). `count` is the number
/// of components. Large designs are frequently forests of independent
/// kernels; component structure bounds how much work any one clustering
/// sweep can share and is what a partition-parallel driver shards on.
struct Components {
  std::vector<int> component;
  int count = 0;
};
Components connected_components(const dfg::Graph& g);

}  // namespace dpmerge::cluster
