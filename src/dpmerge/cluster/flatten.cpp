#include "dpmerge/cluster/flatten.h"

#include <cstdlib>

namespace dpmerge::cluster {

using analysis::Addend;
using analysis::InfoAnalysis;
using analysis::InfoContent;
using dfg::Edge;
using dfg::EdgeId;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

FlattenedCluster flatten_cluster(const Graph& g, const Cluster& c) {
  FlattenedCluster out;
  std::vector<bool> member(static_cast<std::size_t>(g.node_count()), false);
  for (NodeId n : c.nodes) member[static_cast<std::size_t>(n.value)] = true;

  // Explicit-stack pre-order walk (clusters can be 100k-node chains; a
  // recursive walk overflows the stack). Each stack item is either a member
  // node to expand or an already-resolved term; both are pushed in reverse
  // operand order so terms pop out in the same left-to-right order the
  // natural recursion would emit them.
  struct Item {
    bool is_term;
    Term term;    // valid when is_term
    NodeId id;    // valid when !is_term
    bool neg;
    int shift;
  };
  std::vector<Item> stack;
  stack.push_back(Item{false, {}, c.root, false, 0});
  Item pending[2];
  while (!stack.empty()) {
    const Item f = std::move(stack.back());
    stack.pop_back();
    if (f.is_term) {
      out.terms.push_back(std::move(f.term));
      continue;
    }
    const Node& n = g.node(f.id);
    int npending = 0;
    auto handle = [&](EdgeId eid, bool sub_neg, int shift) {
      const NodeId src = g.edge(eid).src;
      if (member[static_cast<std::size_t>(src.value)]) {
        pending[npending++] = Item{false, {}, src, sub_neg, shift};
      } else {
        pending[npending++] =
            Item{true, Term{sub_neg, {eid}, n.width, shift}, {}, false, 0};
      }
    };
    switch (n.kind) {
      case OpKind::Add:
        handle(n.in[0], f.neg, f.shift);
        handle(n.in[1], f.neg, f.shift);
        break;
      case OpKind::Sub:
        handle(n.in[0], f.neg, f.shift);
        handle(n.in[1], !f.neg, f.shift);
        break;
      case OpKind::Neg:
        handle(n.in[0], !f.neg, f.shift);
        break;
      case OpKind::Shl:
        // x << s scales every addend below by 2^s.
        handle(n.in[0], f.neg, f.shift + n.shift);
        break;
      case OpKind::Mul:
        // Synthesizability Condition 1 guarantees multiplier operands enter
        // the cluster from outside; the product is a single addend.
        out.terms.push_back(Term{f.neg, {n.in[0], n.in[1]}, n.width, f.shift});
        break;
      default:
        // Clusters contain only arithmetic operators.
        break;
    }
    for (int k = npending - 1; k >= 0; --k) {
      stack.push_back(std::move(pending[k]));
    }
  }
  return out;
}

std::vector<Addend> cluster_addends(const Graph& g, const Cluster& c,
                                    const FlattenedCluster& flat,
                                    const InfoAnalysis& ia) {
  (void)c;
  std::vector<Addend> addends;
  for (const Term& t : flat.terms) {
    const std::int64_t sign = t.negate ? -1 : 1;
    // A path shift of s scales the addend by 2^s: s more content bits.
    auto shifted = [&t](InfoContent ic) {
      return ic.width == 0 ? ic : InfoContent{ic.width + t.shift, ic.sign};
    };
    if (t.factors.size() == 1) {
      addends.push_back(Addend{shifted(ia.operand(t.factors[0])), sign});
      continue;
    }
    // Product term: fold a small Const factor into a coefficient
    // (Observation 5.9); otherwise use the product's intrinsic content.
    const InfoContent ic0 = ia.operand(t.factors[0]);
    const InfoContent ic1 = ia.operand(t.factors[1]);
    int const_idx = -1;
    for (int k = 0; k < 2; ++k) {
      const Node& src = g.node(g.edge(t.factors[static_cast<std::size_t>(k)]).src);
      if (src.kind == OpKind::Const && src.value.width() <= 63 &&
          const_idx == -1) {
        const_idx = k;
      }
    }
    if (const_idx >= 0) {
      const Node& src =
          g.node(g.edge(t.factors[static_cast<std::size_t>(const_idx)]).src);
      // Interpret the constant through its own minimal claim: unsigned
      // content reads as a non-negative integer, signed content as two's
      // complement.
      const int iu = src.value.min_extension_width(Sign::Unsigned);
      const std::int64_t cval = iu < src.value.width()
                                    ? static_cast<std::int64_t>(
                                          src.value.to_uint64())
                                    : src.value.to_int64();
      if (std::llabs(cval) <= 64) {
        const InfoContent other = const_idx == 0 ? ic1 : ic0;
        addends.push_back(Addend{shifted(other), sign * cval});
        continue;
      }
    }
    addends.push_back(Addend{shifted(analysis::ic_mul(ic0, ic1)), sign});
  }
  return addends;
}

InfoContent rebalanced_cluster_bound(const Graph& g, const Cluster& c,
                                     const InfoAnalysis& ia) {
  const FlattenedCluster flat = flatten_cluster(g, c);
  return analysis::huffman_rebalanced_bound(cluster_addends(g, c, flat, ia));
}

}  // namespace dpmerge::cluster
