#include "dpmerge/cluster/partition.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <sstream>

namespace dpmerge::cluster {

using dfg::Edge;
using dfg::EdgeId;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

std::string Partition::summary(const Graph& g) const {
  std::ostringstream os;
  os << clusters.size() << " cluster(s):";
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    os << " [";
    for (std::size_t k = 0; k < clusters[i].nodes.size(); ++k) {
      if (k) os << " ";
      const Node& n = g.node(clusters[i].nodes[k]);
      os << dfg::to_string(n.kind) << n.id.value;
    }
    os << "]";
  }
  return os.str();
}

Partition partition_from_breaks(const Graph& g,
                                const std::vector<bool>& is_break) {
  Partition p;
  p.cluster_of.assign(static_cast<std::size_t>(g.node_count()), -1);

  const auto& order = g.freeze().topo;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Node& n = g.node(*it);
    if (!dfg::is_arith_operator(n.kind)) continue;
    const auto idx = static_cast<std::size_t>(n.id.value);

    // A non-break node may only join a cluster if *all* of its consumers are
    // clustered operators sharing one cluster; otherwise its value is needed
    // in more than one place and it must root its own cluster. This realises
    // Synthesizability Condition 2 (unique cluster outputs) — see DESIGN.md
    // §2 on the paper's garbled statement of that condition.
    int target = -1;
    bool must_root = is_break[idx] || n.out.empty();
    for (EdgeId eid : n.out) {
      if (must_root) break;
      const NodeId dst = g.edge(eid).dst;
      const int c = p.cluster_of[static_cast<std::size_t>(dst.value)];
      if (c < 0 || (target != -1 && target != c)) {
        must_root = true;
      } else {
        target = c;
      }
    }

    if (must_root) {
      p.cluster_of[idx] = static_cast<int>(p.clusters.size());
      Cluster c;
      c.root = n.id;
      c.nodes.push_back(n.id);
      p.clusters.push_back(std::move(c));
    } else {
      p.cluster_of[idx] = target;
      p.clusters[static_cast<std::size_t>(target)].nodes.push_back(n.id);
    }
  }

  // Collect input edges (edges whose destination is a member but whose
  // source is not), in deterministic edge-id order.
  for (const Edge& e : g.edges()) {
    const int cd = p.cluster_of[static_cast<std::size_t>(e.dst.value)];
    if (cd < 0) continue;
    const int cs = p.cluster_of[static_cast<std::size_t>(e.src.value)];
    if (cs != cd) {
      p.clusters[static_cast<std::size_t>(cd)].input_edges.push_back(e.id);
    }
  }
  return p;
}

std::vector<std::string> validate_partition(const Graph& g,
                                            const Partition& p) {
  std::vector<std::string> errs;
  auto err = [&errs](std::string m) { errs.push_back(std::move(m)); };

  std::vector<int> seen(static_cast<std::size_t>(g.node_count()), -1);
  for (std::size_t ci = 0; ci < p.clusters.size(); ++ci) {
    const Cluster& c = p.clusters[ci];
    if (c.nodes.empty()) {
      err("cluster " + std::to_string(ci) + " is empty");
      continue;
    }
    for (NodeId n : c.nodes) {
      if (!dfg::is_arith_operator(g.node(n).kind)) {
        err("cluster " + std::to_string(ci) +
            " contains a non-arithmetic node");
      }
      if (seen[static_cast<std::size_t>(n.value)] != -1) {
        err("node " + std::to_string(n.value) + " in two clusters");
      }
      seen[static_cast<std::size_t>(n.value)] = static_cast<int>(ci);
      if (p.index_of(n) != static_cast<int>(ci)) {
        err("cluster_of inconsistent for node " + std::to_string(n.value));
      }
    }
    // Unique output: exactly one member (the root) has out-edges leaving the
    // cluster; all other members' fanout stays inside.
    std::set<int> members;
    for (NodeId n : c.nodes) members.insert(n.value);
    int exits = 0;
    for (NodeId n : c.nodes) {
      bool leaves = false;
      for (EdgeId eid : g.node(n).out) {
        if (!members.count(g.edge(eid).dst.value)) leaves = true;
      }
      if (leaves || g.node(n).out.empty()) {
        ++exits;
        if (n != c.root) {
          err("cluster " + std::to_string(ci) + ": node " +
              std::to_string(n.value) + " exits but is not the root");
        }
      }
    }
    if (exits != 1) {
      err("cluster " + std::to_string(ci) + " has " + std::to_string(exits) +
          " exit nodes");
    }
    // Connectivity (as an undirected subgraph).
    std::set<int> reached;
    std::vector<NodeId> stack{c.root};
    reached.insert(c.root.value);
    while (!stack.empty()) {
      const NodeId cur = stack.back();
      stack.pop_back();
      const Node& nd = g.node(cur);
      auto visit = [&](NodeId nb) {
        if (members.count(nb.value) && !reached.count(nb.value)) {
          reached.insert(nb.value);
          stack.push_back(nb);
        }
      };
      for (EdgeId eid : nd.in) visit(g.edge(eid).src);
      for (EdgeId eid : nd.out) visit(g.edge(eid).dst);
    }
    if (reached.size() != members.size()) {
      err("cluster " + std::to_string(ci) + " is not connected");
    }
  }
  // Coverage: every arithmetic node clustered.
  for (const Node& n : g.nodes()) {
    if (dfg::is_arith_operator(n.kind) &&
        seen[static_cast<std::size_t>(n.id.value)] == -1) {
      err("arithmetic node " + std::to_string(n.id.value) + " unclustered");
    }
  }
  return errs;
}

Components connected_components(const Graph& g) {
  const dfg::Csr& c = g.freeze();
  const int n = g.node_count();
  Components out;
  out.component.assign(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> stack;
  for (std::int32_t seed = 0; seed < n; ++seed) {
    if (out.component[static_cast<std::size_t>(seed)] != -1) continue;
    const int id = out.count++;
    out.component[static_cast<std::size_t>(seed)] = id;
    stack.push_back(seed);
    while (!stack.empty()) {
      const std::int32_t v = stack.back();
      stack.pop_back();
      auto visit = [&](std::int32_t w) {
        auto& cw = out.component[static_cast<std::size_t>(w)];
        if (cw == -1) {
          cw = id;
          stack.push_back(w);
        }
      };
      for (std::int32_t eid : c.out(NodeId{v})) visit(g.edge(EdgeId{eid}).dst.value);
      for (std::int32_t eid : c.in(NodeId{v})) visit(g.edge(EdgeId{eid}).src.value);
    }
  }
  return out;
}

}  // namespace dpmerge::cluster
