#pragma once

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/analysis/required_precision.h"
#include "dpmerge/cluster/partition.h"

namespace dpmerge::cluster {

/// Knobs for the Section 6 maximal-clustering algorithm; the defaults run
/// the full paper algorithm. Switching `iterate_rebalancing` off yields the
/// single-pass variant (used by the ablation bench), and `max_iterations`
/// bounds the refinement loop (it converges long before the bound in
/// practice — widths only shrink).
struct ClusterOptions {
  bool iterate_rebalancing = true;
  int max_iterations = 16;
  /// Parallel width for the per-iteration stages (analyses, break-node
  /// evaluation, cluster rebalancing): 1 = serial, 0 = one thread per core,
  /// n = at most n threads. Results are bit-identical to serial at any
  /// setting — partitions, netlists, DecisionLogs and stat counters all
  /// match byte for byte (DESIGN.md §11).
  int threads = 1;
};

/// What one iteration of the maximal-merging loop produced: the partition
/// size, how many arithmetic operators were merged into a consumer's
/// cluster, and how many cluster-output bounds the Huffman rebalancing
/// tightened (driving the next iteration). Surfaced by the ablation bench
/// and the obs flow reports — the observable form of the paper's
/// "iterative maximal merging converges in a few iterations" claim.
struct ClusterIterationStat {
  int clusters = 0;
  int merged_nodes = 0;
  int refined_roots = 0;
};

/// Result of the iterative maximal-clustering algorithm, including the final
/// analyses (the synthesizer reuses the information-content claims to derive
/// addend signedness).
struct ClusterResult {
  Partition partition;
  analysis::InfoAnalysis info;
  analysis::RequiredPrecision rp;
  int iterations = 0;
  /// One entry per iteration, in order (across `prepare_new_merge`'s outer
  /// width-feedback rounds too).
  std::vector<ClusterIterationStat> per_iteration;
  /// Per-node refined intrinsic bounds discovered by cluster rebalancing.
  analysis::InfoRefinements refinements;
};

/// The paper's new algorithm (Section 6): identifies break nodes from the
/// required-precision and information-content analyses, partitions, then
/// iteratively tightens cluster-output bounds by Huffman rebalancing
/// (Section 5.2) and re-partitions until a fixpoint. The graph should
/// normally be width-normalised first (transform::normalize_widths).
///
/// Break-node conditions implemented (Section 6, with the corrections
/// documented in DESIGN.md §2):
///  - Safety 1: some out-edge's destination is an Extension node (or any
///    non-arithmetic node: primary outputs end clusters too).
///  - Safety 2: min{î_int(N), max r(p_d)} > w(N) — the node truncates real
///    information that a consumer later widens.
///  - Safety 2' (per-edge analogue): min{î(p_src), r(p_d)} > w(e) for some
///    out-edge — the truncate-then-extend happens on the edge itself.
///  - Synthesizability 1: some out-edge feeds a multiplier.
///  - Synthesizability 2: fanout to more than one cluster (enforced during
///    partitioning; see partition_from_breaks).
ClusterResult cluster_maximal(const dfg::Graph& g,
                              const ClusterOptions& opt = {});

/// The "old merging algorithm" baseline of Section 7: mergeability analysis
/// with a width-only criterion similar to the leakage-of-bits notion of Kim,
/// Jao & Tjiang (DAC'98) — natural operator widths are computed from operand
/// *widths* rather than information content, there are no width-reducing
/// transformations and no rebalancing iteration.
Partition cluster_leakage(const dfg::Graph& g);

/// No merging at all: every arithmetic operator is its own cluster
/// (the "No mg" rows of Table 1).
Partition cluster_none(const dfg::Graph& g);

}  // namespace dpmerge::cluster
