#include "dpmerge/cluster/clusterer.h"

#include <algorithm>

#include "dpmerge/check/check.h"
#include "dpmerge/cluster/flatten.h"
#include "dpmerge/obs/obs.h"
#include "dpmerge/obs/provenance.h"
#include "dpmerge/support/access_audit.h"
#include "dpmerge/support/thread_pool.h"

namespace dpmerge::cluster {

using analysis::InfoAnalysis;
using analysis::InfoContent;
using analysis::RequiredPrecision;
using dfg::Edge;
using dfg::EdgeId;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;

namespace {

constexpr int kExact = 1 << 28;  // "all bits of the delivered value match"

/// One resize stage of the exact-low-bits analysis behind Safety Condition
/// 2. `m` is how many low bits of the running value still equal the ideal
/// (claim-interpreted) contribution of node N; `c` is the running claim.
/// Truncation below the claim and *reinterpreting* extensions (extending a
/// lossy value, zero-padding signed content, or extending a value whose
/// signedness claim is vacuous with the opposite type) cap `m` — a consumer
/// needing more than `m` bits makes N unmergeable with it, because the
/// sum-of-addends form regenerates the ideal value, not the reinterpreted
/// one.
void resize_stage(InfoContent& c, int& m, int from, int to, Sign ext) {
  if (to <= from) {
    if (to < c.width) m = std::min(m, to);
    c = analysis::ic_resize(c, from, to, ext);
    return;
  }
  const bool exact =
      (c.width < from && c.sign == ext) ||
      (c.width < from && c.sign == Sign::Unsigned && ext == Sign::Signed) ||
      (c.width == from && c.sign == ext);
  // Widening a value whose upper structure is unknown or mismatched: the
  // bits at and above the old carrier no longer track the ideal value.
  if (!exact) m = std::min(m, from);
  c = analysis::ic_resize(c, from, to, ext);
}

/// Display name of a node for decision logs ("Add#7").
std::string node_label(const Node& n) {
  return std::string(dfg::to_string(n.kind)) + "#" + std::to_string(n.id.value);
}

/// The fixed reject-reason vocabulary of the break analysis. Per-chunk
/// counters are indexed by position here so the parallel path can merge
/// them into the same `cluster.reject.<reason>` stat keys the serial sweep
/// emits.
constexpr const char* kBreakReasons[] = {
    "no_consumer",
    "safety1_non_arith",
    "synth1_mul_operand",
    "safety2_precision",
};
constexpr int kNumBreakReasons =
    static_cast<int>(sizeof(kBreakReasons) / sizeof(kBreakReasons[0]));

/// Accept/reject tallies for a contiguous node-id range of the break sweep.
struct BreakStats {
  std::int64_t accept = 0;
  std::int64_t reject = 0;
  std::int64_t by_reason[kNumBreakReasons] = {};
};

/// Break verdict for one arithmetic node (Section 6 conditions, with the
/// corrections and the per-edge exactness generalisation documented in
/// DESIGN.md §2/§5). Every candidate merge evaluated lands in `decisions`
/// (when non-null): one per-edge decision with the analysis evidence the
/// rule acted on, and one node-level verdict. Pure apart from the optional
/// trace emission, so it can run from any thread; callers flush `decisions`
/// to the DecisionLog on the thread that owns it.
bool evaluate_break(const Graph& g, const InfoAnalysis& ia,
                    const RequiredPrecision& rp, const Node& n,
                    std::vector<obs::prov::Decision>* decisions,
                    BreakStats& stats) {
  bool b = n.out.empty();
  int reason = b ? 0 : -1;  // index into kBreakReasons
  support::audit::audit_read(support::audit::Domain::IcNode, n.id.value);
  for (EdgeId eid : n.out) {
    if (b) break;
    const Edge& e = g.edge(eid);
    const Node& dst = g.node(e.dst);
    support::audit::audit_read(support::audit::Domain::RpNode, e.dst.value);
    int edge_reason = -1;
    int r_in = -1, exact = -1;
    // Safety Condition 1 (+ primary outputs end clusters).
    if (!dfg::is_arith_operator(dst.kind)) {
      edge_reason = 1;
    } else if (dst.kind == OpKind::Mul) {
      // Synthesizability Condition 1.
      edge_reason = 2;
    } else {
      // Safety Condition 2, exact-low-bits form: track how many low bits
      // of the operand delivered through e still equal N's ideal
      // contribution; the node-level clip and both edge resizes can each
      // cap it.
      InfoContent c = ia.out(n.id);
      int m = ia.intr(n.id).width > n.width ? n.width : kExact;
      resize_stage(c, m, n.width, e.width, e.sign);
      resize_stage(c, m, e.width, dst.width, e.sign);
      r_in = rp.r_in(e.dst);
      exact = m >= kExact ? -1 : m;
      if (r_in > m) edge_reason = 3;
    }
    if (edge_reason >= 0) {
      b = true;
      reason = edge_reason;
    }
    if (decisions) {
      obs::prov::Decision d;
      d.node = n.id.value;
      d.dst_node = e.dst.value;
      d.edge = eid.value;
      d.node_op = node_label(n);
      d.rule = std::string("cluster.") +
               (edge_reason >= 0 ? kBreakReasons[edge_reason] : "merge");
      d.verdict = edge_reason >= 0 ? obs::prov::Verdict::Reject
                                   : obs::prov::Verdict::Accept;
      d.info_width = ia.out(n.id).width;
      d.r_in = r_in;
      d.exact_bits = exact;
      d.node_width = n.width;
      d.edge_width = e.width;
      d.width_savings = std::max(0, n.width - ia.out(n.id).width);
      decisions->push_back(std::move(d));
    }
    if (obs::tracing()) {
      obs::instant("cluster.decision",
                   obs::TraceArgs()
                       .add("src", node_label(n))
                       .add("dst", node_label(dst))
                       .add("r_in", rp.r_in(e.dst))
                       .add("exact_bits", exact)
                       .add("verdict", b ? "reject" : "accept")
                       .str());
    }
  }
  if (decisions) {
    obs::prov::Decision d;
    d.node = n.id.value;
    d.node_op = node_label(n);
    d.rule = std::string("cluster.") +
             (reason >= 0 ? kBreakReasons[reason] : "merge");
    d.verdict = b ? obs::prov::Verdict::Reject : obs::prov::Verdict::Accept;
    d.info_width = ia.out(n.id).width;
    d.node_width = n.width;
    d.width_savings = std::max(0, n.width - ia.out(n.id).width);
    decisions->push_back(std::move(d));
  }
  if (b) {
    ++stats.reject;
    if (reason >= 0) ++stats.by_reason[reason];
  } else {
    ++stats.accept;
  }
  return b;
}

/// Break-node analysis over the whole graph. With `threads != 1` the sweep
/// runs chunk-parallel over contiguous node-id ranges; because every chunk
/// buffers its Decisions and stat tallies locally and the merge below
/// flushes them in ascending chunk (= node-id) order, the DecisionLog and
/// the stat counters are byte-identical to the serial sweep's.
std::vector<bool> compute_breaks(const Graph& g, const InfoAnalysis& ia,
                                 const RequiredPrecision& rp,
                                 int threads = 1) {
  const int n_nodes = g.node_count();
  obs::prov::DecisionLog* plog = obs::prov::current_log();
  // Shared verdict array: one byte per node (vector<bool> packs bits and is
  // not safe for concurrent writes to distinct elements).
  std::vector<char> verdict(static_cast<std::size_t>(n_nodes), 0);

  constexpr int kGrain = 1024;
  const int num_chunks = n_nodes > 0 ? (n_nodes + kGrain - 1) / kGrain : 0;
  struct ChunkOut {
    std::vector<obs::prov::Decision> decisions;
    BreakStats stats;
  };
  std::vector<ChunkOut> chunks(static_cast<std::size_t>(num_chunks));

  auto run_chunk = [&](int ci) {
    ChunkOut& co = chunks[static_cast<std::size_t>(ci)];
    support::audit::audit_write(support::audit::Domain::DecisionBuf, ci);
    support::audit::audit_write(support::audit::Domain::StatBuf, ci);
    const int lo = ci * kGrain;
    const int hi = std::min(lo + kGrain, n_nodes);
    for (int i = lo; i < hi; ++i) {
      const Node& n = g.node(NodeId{i});
      if (!dfg::is_arith_operator(n.kind)) continue;
      support::audit::audit_write(support::audit::Domain::BreakVerdict, i);
      verdict[static_cast<std::size_t>(i)] =
          evaluate_break(g, ia, rp, n, plog ? &co.decisions : nullptr,
                         co.stats)
              ? 1
              : 0;
    }
  };
  support::audit::JobLabel job_label("cluster.break_sweep");
  if (threads == 1 || num_chunks <= 1) {
    for (int ci = 0; ci < num_chunks; ++ci) run_chunk(ci);
  } else {
    support::ThreadPool::shared().parallel_for(num_chunks, run_chunk,
                                               threads);
  }

  // Canonical merge, ascending node-id order: DecisionLog::add stamps
  // sequence ids at add time, so this reproduces the serial log exactly.
  BreakStats total;
  for (ChunkOut& co : chunks) {
    if (plog) {
      for (auto& d : co.decisions) plog->add(std::move(d));
    }
    total.accept += co.stats.accept;
    total.reject += co.stats.reject;
    for (int k = 0; k < kNumBreakReasons; ++k) {
      total.by_reason[k] += co.stats.by_reason[k];
    }
  }
  if (obs::StatSink* sink = obs::current_sink()) {
    // Only touch keys the serial sweep would have created.
    if (total.accept) sink->add("cluster.decisions.accept", total.accept);
    if (total.reject) sink->add("cluster.decisions.reject", total.reject);
    for (int k = 0; k < kNumBreakReasons; ++k) {
      if (total.by_reason[k]) {
        sink->add(std::string("cluster.reject.") + kBreakReasons[k],
                  total.by_reason[k]);
      }
    }
  }
  return std::vector<bool>(verdict.begin(), verdict.end());
}

}  // namespace

ClusterResult cluster_maximal(const Graph& g, const ClusterOptions& opt) {
  obs::Span span("cluster.maximal");
  ClusterResult res;
  res.refinements.assign(static_cast<std::size_t>(g.node_count()),
                         std::nullopt);

  int arith_nodes = 0;
  for (const Node& n : g.nodes()) {
    if (dfg::is_arith_operator(n.kind)) ++arith_nodes;
  }

  const int rounds = opt.iterate_rebalancing ? opt.max_iterations : 1;
  for (int iter = 0; iter < rounds; ++iter) {
    obs::Span iter_span("cluster.iteration");
    if (obs::prov::DecisionLog* plog = obs::prov::current_log()) {
      plog->next_iteration();
    }
    res.iterations = iter + 1;
    res.info = analysis::compute_info_content(g, res.refinements, opt.threads);
    res.rp = analysis::compute_required_precision(g, opt.threads);
    const auto breaks = compute_breaks(g, res.info, res.rp, opt.threads);
    res.partition = partition_from_breaks(g, breaks);
    res.per_iteration.push_back(
        {res.partition.num_clusters(),
         arith_nodes - res.partition.num_clusters(), 0});
    obs::stat_add("cluster.iterations");
    if (!opt.iterate_rebalancing) break;

    // Section 5.2 / Section 6 refinement: recompute each cluster output's
    // information content under the optimal (Huffman) operation ordering;
    // any tightening may dissolve a break in the next round. The bound of
    // each cluster is independent of every other's (flatten + Huffman over
    // const analyses), so they are computed cluster-parallel and applied
    // serially in cluster order — bit-identical to the serial loop.
    const auto& clusters = res.partition.clusters;
    std::vector<InfoContent> bounds(clusters.size());
    auto eval_bound = [&](int i) {
      const auto& cl = clusters[static_cast<std::size_t>(i)];
      if (support::audit::audit_enabled()) {
        support::audit::audit_write(support::audit::Domain::ClusterBound, i);
        for (NodeId m : cl.nodes) {
          support::audit::audit_read(support::audit::Domain::IcNode, m.value);
        }
      }
      bounds[static_cast<std::size_t>(i)] =
          rebalanced_cluster_bound(g, cl, res.info);
    };
    support::audit::JobLabel job_label("cluster.huffman_bounds");
    if (opt.threads == 1) {
      for (int i = 0; i < static_cast<int>(clusters.size()); ++i) {
        eval_bound(i);
      }
    } else {
      support::ThreadPool::shared().parallel_for(
          static_cast<int>(clusters.size()), eval_bound, opt.threads);
    }
    int refined = 0;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      const InfoContent& h = bounds[i];
      const InfoContent cur = res.info.intr(clusters[i].root);
      if (h.width < cur.width) {
        auto& slot =
            res.refinements[static_cast<std::size_t>(clusters[i].root.value)];
        slot = slot.has_value() ? analysis::ic_meet(*slot, h) : h;
        ++refined;
      }
    }
    res.per_iteration.back().refined_roots = refined;
    obs::stat_add("cluster.refined_roots", refined);
    if (refined == 0) break;
  }
  check::enforce_analyses(g, res.info, &res.rp, "cluster.maximal");
  return res;
}

namespace {

/// Width-only "natural width" of every node: what the old algorithm believes
/// each operator needs. Deliberately *local*, in the spirit of the DAC'98
/// leakage-of-bits criterion: an operand's width is the connection width
/// min{w(e), w(N)} — no propagation of smaller upstream content, no
/// signedness reasoning. This is exactly the pessimism the paper's
/// information-content analysis removes.
std::vector<int> natural_widths(const Graph& g) {
  std::vector<int> nat(static_cast<std::size_t>(g.node_count()), 0);
  for (NodeId id : g.freeze().topo) {
    const Node& n = g.node(id);
    auto opw = [&](int port) {
      const Edge& e = g.edge(n.in[static_cast<std::size_t>(port)]);
      return std::min(e.width, n.width);
    };
    int v = n.width;
    switch (n.kind) {
      case OpKind::Input:
      case OpKind::Const:
        v = n.width;
        break;
      case OpKind::Output:
      case OpKind::Extension:
        v = opw(0);
        break;
      case OpKind::Neg:
        v = opw(0) + 1;
        break;
      case OpKind::Add:
      case OpKind::Sub:
        v = std::max(opw(0), opw(1)) + 1;
        break;
      case OpKind::Mul:
        v = opw(0) + opw(1);
        break;
      case OpKind::Shl:
        v = opw(0) + n.shift;
        break;
      case OpKind::LtS:
      case OpKind::LtU:
      case OpKind::Eq:
        v = 1;
        break;
    }
    nat[static_cast<std::size_t>(id.value)] = v;
  }
  return nat;
}

}  // namespace

Partition cluster_leakage(const Graph& g) {
  obs::Span span("cluster.leakage");
  obs::prov::DecisionLog* plog = obs::prov::current_log();
  if (plog) plog->next_iteration();
  const auto nat = natural_widths(g);
  const auto rp = analysis::compute_required_precision(g);
  // The width-only criterion cannot see signedness reinterpretation
  // (zero-extension of signed content); any real tool has the RTL types and
  // breaks there too. Start from the minimal functionally-required break
  // set and add the width-pessimistic leakage breaks on top.
  std::vector<bool> brk =
      compute_breaks(g, analysis::compute_info_content(g), rp);
  for (const Node& n : g.nodes()) {
    if (!dfg::is_arith_operator(n.kind)) continue;
    bool b = n.out.empty();
    int max_r = 0;
    const int nat_n = nat[static_cast<std::size_t>(n.id.value)];
    const char* leak_reason = nullptr;
    for (EdgeId eid : n.out) {
      if (b) break;
      const Edge& e = g.edge(eid);
      const Node& dst = g.node(e.dst);
      if (!dfg::is_arith_operator(dst.kind)) b = true;
      if (dst.kind == OpKind::Mul) b = true;
      const int r_d = rp.r_in(e.dst);
      max_r = std::max(max_r, r_d);
      // Leakage on the edge: the edge drops bits the node really produced
      // and a consumer widens the truncated value again.
      if (std::min(std::min(nat_n, n.width), r_d) > e.width) {
        b = true;
        leak_reason = "leakage_edge";
        if (plog) {
          obs::prov::Decision d;
          d.node = n.id.value;
          d.dst_node = e.dst.value;
          d.edge = eid.value;
          d.node_op = node_label(n);
          d.rule = "cluster.leakage_edge";
          d.verdict = obs::prov::Verdict::Reject;
          d.natural_width = nat_n;
          d.r_in = r_d;
          d.node_width = n.width;
          d.edge_width = e.width;
          d.width_savings = std::max(0, nat_n - n.width);
          plog->add(std::move(d));
        }
      }
      if (obs::tracing()) {
        // The width-only score the old algorithm acts on, next to the RP
        // the new analysis would have used — the per-edge gap between the
        // two criteria, visible in the trace.
        obs::instant("cluster.leakage_decision",
                     obs::TraceArgs()
                         .add("src", std::string(dfg::to_string(n.kind)) +
                                         "#" + std::to_string(n.id.value))
                         .add("dst", std::string(dfg::to_string(dst.kind)) +
                                         "#" + std::to_string(e.dst.value))
                         .add("natural_width", nat_n)
                         .add("edge_width", e.width)
                         .add("r_in", r_d)
                         .add("verdict", b ? "reject" : "accept")
                         .str());
      }
    }
    // Leakage at the node: the operator's natural width exceeds its declared
    // width (bits leak) and some consumer requires more than it produces.
    if (!b && std::min(nat_n, max_r) > n.width) {
      b = true;
      leak_reason = "leakage_node";
    }
    // OR into the functionally-required break set seeded above.
    if (b && !brk[static_cast<std::size_t>(n.id.value)]) {
      brk[static_cast<std::size_t>(n.id.value)] = true;
      obs::stat_add("cluster.reject.leakage");
      // Leakage flipped this node's verdict: supersede the seed's
      // node-level accept with the width-only reject that really decided.
      if (plog) {
        obs::prov::Decision d;
        d.node = n.id.value;
        d.node_op = node_label(n);
        d.rule = std::string("cluster.") +
                 (leak_reason ? leak_reason : "leakage_node");
        d.verdict = obs::prov::Verdict::Reject;
        d.natural_width = nat_n;
        d.r_in = max_r;
        d.node_width = n.width;
        d.width_savings = std::max(0, nat_n - n.width);
        plog->add(std::move(d));
      }
    }
  }
  return partition_from_breaks(g, brk);
}

Partition cluster_none(const Graph& g) {
  if (obs::prov::DecisionLog* plog = obs::prov::current_log()) {
    plog->next_iteration();
    for (const Node& n : g.nodes()) {
      if (!dfg::is_arith_operator(n.kind)) continue;
      obs::prov::Decision d;
      d.node = n.id.value;
      d.node_op = node_label(n);
      d.rule = "cluster.no_merge_flow";
      d.verdict = obs::prov::Verdict::Reject;
      d.node_width = n.width;
      plog->add(std::move(d));
    }
  }
  std::vector<bool> brk(static_cast<std::size_t>(g.node_count()), true);
  return partition_from_breaks(g, brk);
}

}  // namespace dpmerge::cluster
