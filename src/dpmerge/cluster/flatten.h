#pragma once

#include <vector>

#include "dpmerge/analysis/huffman.h"
#include "dpmerge/analysis/info_content.h"
#include "dpmerge/cluster/partition.h"

namespace dpmerge::cluster {

/// One addend of a cluster's sum-of-addends form (Section 3): an optionally
/// negated product of at most two signals entering the cluster. Signals are
/// identified by the entry edges that deliver them; a product of two entry
/// signals comes from a member multiplier (whose operands Synthesizability
/// Condition 1 forces to be cluster inputs).
struct Term {
  bool negate = false;
  std::vector<dfg::EdgeId> factors;  ///< 1 (plain signal) or 2 (product).
  /// Width of the node that consumed the factors (the entry operand width):
  /// the factor values are the operands delivered at this width.
  int consumed_width = 0;
  /// Accumulated constant left-shift from Shl members on the path to the
  /// root: the addend's weight is scaled by 2^shift (columns shift left).
  int shift = 0;
};

/// A cluster's output expressed as a sum of terms over its entry signals.
struct FlattenedCluster {
  std::vector<Term> terms;
};

/// Flattens a cluster rooted at `c.root` into sum-of-addends form by a
/// recursive walk over member nodes. Reconvergent member fanout duplicates
/// terms (x + x), which is the correct multiset semantics.
FlattenedCluster flatten_cluster(const dfg::Graph& g, const Cluster& c);

/// Converts a flattened cluster into the addend multiset consumed by
/// Huffman_Rebalancing (Section 5.2), using the information-content claims
/// of the entry operands. A multiplication by a Const entry whose value
/// fits 63 bits becomes a coefficient (Observation 5.9: c*I is |c| copies of
/// ±I); other products contribute a single addend with the product's
/// intrinsic content.
std::vector<analysis::Addend> cluster_addends(const dfg::Graph& g,
                                              const Cluster& c,
                                              const FlattenedCluster& flat,
                                              const analysis::InfoAnalysis& ia);

/// The rebalanced upper bound on the cluster output's information content:
/// Huffman_Rebalancing over `cluster_addends`.
analysis::InfoContent rebalanced_cluster_bound(const dfg::Graph& g,
                                               const Cluster& c,
                                               const analysis::InfoAnalysis& ia);

}  // namespace dpmerge::cluster
